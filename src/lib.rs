//! MPAccel reproduction facade crate.
//!
//! Re-exports the full stack of the reproduction of *Energy-Efficient
//! Realtime Motion Planning* (ISCA '23) so downstream users (and the
//! examples in `examples/`) can depend on a single crate:
//!
//! * [`fixed`] — 16-bit fixed-point arithmetic,
//! * [`geometry`] — OBB/AABB/sphere primitives and intersection kernels,
//! * [`octree`] — environment octrees and scene generation,
//! * [`robot`] — kinematics and robot models (Jaco2, Baxter),
//! * [`collision`] — software reference collision detection,
//! * [`sim`] — cycle/energy/area modelling,
//! * [`accel`] — the MPAccel accelerator (SAS + CECDUs),
//! * [`planner`] — MPNet-style neural planner and RRT baselines,
//! * [`service`] — deterministic multi-tenant planning service (admission
//!   control, EDF scheduling, degradation ladder) over a pool of
//!   simulated accelerators,
//! * [`baselines`] — CPU/GPU comparison models,
//! * [`telemetry`] — deterministic spans/counters/histograms, the flight
//!   recorder, and the Chrome/Perfetto trace exporter (hot-kernel spans
//!   gate behind the `telemetry` cargo feature).

#![forbid(unsafe_code)]

pub use mp_baselines as baselines;
pub use mp_collision as collision;
pub use mp_fixed as fixed;
pub use mp_geometry as geometry;
pub use mp_octree as octree;
pub use mp_planner as planner;
pub use mp_robot as robot;
pub use mp_service as service;
pub use mp_sim as sim;
pub use mp_telemetry as telemetry;
pub use mpaccel_core as accel;
