//! End-to-end integration: scene generation → neural planning → trace →
//! MPAccel replay, across crate boundaries.

use mpaccel::accel::mpaccel::{MpAccelSystem, SystemConfig};
use mpaccel::collision::{check_path, SoftwareChecker};
use mpaccel::octree::{Scene, SceneConfig};
use mpaccel::planner::mpnet::{plan, MpnetConfig};
use mpaccel::planner::queries::generate_queries;
use mpaccel::planner::sampler::OracleSampler;
use mpaccel::robot::RobotModel;

/// Plans one query; retries seeds because the planner is stochastic.
fn plan_with_retries(
    robot: &RobotModel,
    scene: &Scene,
    seed: u64,
) -> Option<mpaccel::planner::mpnet::PlanOutcome> {
    let q = generate_queries(robot, scene, 1, seed).expect("query generation")[0].clone();
    for attempt in 0..6 {
        let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
        let mut sampler = OracleSampler::new(robot.clone(), seed * 10 + attempt);
        let cfg = MpnetConfig {
            seed: seed + attempt,
            ..MpnetConfig::default()
        };
        let out = plan(&mut checker, &mut sampler, &q.start, &q.goal, &cfg);
        if out.solved() {
            return Some(out);
        }
    }
    None
}

#[test]
fn full_pipeline_produces_feasible_realtime_plans() {
    let robot = RobotModel::baxter();
    let mut solved = 0;
    for seed in 0..3 {
        let scene = Scene::random(SceneConfig::paper(), seed);
        let Some(out) = plan_with_retries(&robot, &scene, seed + 1) else {
            continue;
        };
        solved += 1;
        // The path is feasible per an independent checker.
        let mut verifier = SoftwareChecker::new(robot.clone(), scene.octree());
        assert_eq!(
            check_path(&mut verifier, out.path.as_ref().unwrap(), 0.04),
            None
        );
        // Replaying the trace on the accelerator meets the 1 ms budget.
        let sys = MpAccelSystem::new(robot.clone(), scene.octree(), SystemConfig::paper_default());
        let report = sys.run_trace(&out.trace);
        assert!(report.total_ms > 0.0);
        assert!(
            report.total_ms < 1.0,
            "{} ms breaks real-time",
            report.total_ms
        );
        assert!(report.cd_queries > 0);
        // Timing components are consistent.
        let sum = report.cd_ms + report.nn_ms + report.controller_ms + report.bus_ms;
        assert!((report.total_ms - sum).abs() < 1e-9);
        // CD dominates NN on the accelerator too (the paper's profile).
        assert!(report.cd_ms + report.nn_ms > 0.0);
    }
    assert!(solved >= 2, "only {solved}/3 scenes produced a plan");
}

#[test]
fn trace_replay_is_deterministic() {
    let robot = RobotModel::jaco2();
    let scene = Scene::random(SceneConfig::paper(), 5);
    let Some(out) = plan_with_retries(&robot, &scene, 9) else {
        panic!("no plan found for determinism test");
    };
    let sys = MpAccelSystem::new(robot.clone(), scene.octree(), SystemConfig::paper_default());
    let a = sys.run_trace(&out.trace);
    let b = sys.run_trace(&out.trace);
    assert_eq!(a.cd_cycles, b.cd_cycles);
    assert_eq!(a.cd_queries, b.cd_queries);
    assert_eq!(a.total_ms, b.total_ms);
}

#[test]
fn planning_is_deterministic_per_seed() {
    let robot = RobotModel::jaco2();
    let scene = Scene::random(SceneConfig::paper(), 2);
    let q = generate_queries(&robot, &scene, 1, 4).expect("query generation")[0].clone();
    let run = || {
        let mut checker = SoftwareChecker::new(robot.clone(), scene.octree());
        let mut sampler = OracleSampler::new(robot.clone(), 33);
        let cfg = MpnetConfig {
            seed: 33,
            ..MpnetConfig::default()
        };
        plan(&mut checker, &mut sampler, &q.start, &q.goal, &cfg)
    };
    let a = run();
    let b = run();
    assert_eq!(a.path, b.path);
    assert_eq!(a.trace.events.len(), b.trace.events.len());
    assert_eq!(a.stats.cd_queries, b.stats.cd_queries);
}

#[test]
fn faster_accelerator_configs_do_not_change_answers() {
    use mpaccel::sim::{CecduConfig, IuKind, MpaccelConfig};
    let robot = RobotModel::jaco2();
    // Try a few scene/query seeds: the stochastic planner occasionally
    // fails a hard query on every sampler seed.
    let (scene, out) = (0..5)
        .find_map(|s| {
            let scene = Scene::random(SceneConfig::paper(), 7 + s);
            plan_with_retries(&robot, &scene, 14 + s).map(|o| (scene, o))
        })
        .expect("no plan found on any seed");
    let mut reports = Vec::new();
    for cfg in [
        MpaccelConfig::new(4, CecduConfig::new(1, IuKind::MultiCycle)),
        MpaccelConfig::new(16, CecduConfig::new(4, IuKind::MultiCycle)),
        MpaccelConfig::new(16, CecduConfig::new(4, IuKind::Pipelined)),
    ] {
        let sys = MpAccelSystem::new(robot.clone(), scene.octree(), SystemConfig::with_accel(cfg));
        reports.push(sys.run_trace(&out.trace));
    }
    // Same functional work (queries may differ slightly across scheduler
    // timing, but the pose population is bounded by the trace).
    for r in &reports {
        assert!(r.cd_queries > 0);
        assert!(r.cd_queries <= out.trace.max_cd_poses() + 16);
    }
    // The big pipelined config is fastest.
    assert!(reports[2].cd_ms <= reports[0].cd_ms);
}
