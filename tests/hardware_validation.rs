//! Cross-crate validation: the cycle-level hardware models must agree with
//! the software oracle functionally, and their relative timings must obey
//! the paper's ordering claims.

use mpaccel::accel::cecdu::{CecduChecker, CecduSim};
use mpaccel::accel::oocd::{reference_outcome, run_oocd, OocdConfig};
use mpaccel::accel::sas::{run_sas, CecduCdu, FunctionMode, IdealCdu, SasConfig};
use mpaccel::collision::{CollisionChecker, SoftwareChecker};
use mpaccel::geometry::cascade::CascadeConfig;
use mpaccel::octree::{Scene, SceneConfig};
use mpaccel::robot::{Motion, RobotModel};
use mpaccel::sim::{CecduConfig, IuKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn cecdu_functionally_matches_software_oracle() {
    let robot = RobotModel::baxter();
    let mut rng = StdRng::seed_from_u64(100);
    let mut total = 0u32;
    let mut disagreements = 0u32;
    for seed in 0..3 {
        let scene = Scene::random(SceneConfig::paper(), seed);
        let hw = CecduSim::new(robot.clone(), scene.octree(), CecduConfig::default());
        let mut sw = SoftwareChecker::new(robot.clone(), scene.octree());
        for _ in 0..120 {
            let pose = robot.sample_config(&mut rng);
            total += 1;
            if hw.check_pose(&pose).colliding != sw.check_pose(&pose) {
                disagreements += 1;
            }
        }
    }
    // Quantized geometry + approximate trig may flip only razor-edge poses.
    assert!(
        disagreements * 33 <= total,
        "{disagreements}/{total} hardware-vs-oracle disagreements"
    );
}

#[test]
fn oocd_simulation_matches_functional_traversal_everywhere() {
    let mut rng = StdRng::seed_from_u64(8);
    for seed in 0..4 {
        let tree = Scene::random(SceneConfig::paper(), seed).octree();
        for _ in 0..100 {
            let obb = mpaccel::baselines::workload::random_link_obb(&mut rng).quantize();
            for iu in [IuKind::MultiCycle, IuKind::Pipelined] {
                let cfg = OocdConfig::new(iu);
                let sim = run_oocd(&tree, &obb, &cfg);
                assert_eq!(
                    sim.colliding,
                    reference_outcome(&tree, &obb, &cfg.cascade),
                    "scene {seed}, iu {iu:?}"
                );
            }
        }
    }
}

#[test]
fn sas_with_hardware_cdus_matches_ideal_verdicts() {
    let robot = RobotModel::jaco2();
    let scene = Scene::random(SceneConfig::paper(), 1);
    let mut rng = StdRng::seed_from_u64(55);
    let motions: Vec<_> = (0..6)
        .map(|_| {
            Motion::new(robot.sample_config(&mut rng), robot.sample_config(&mut rng))
                .descriptor(0.05)
        })
        .collect();
    let cfg = SasConfig::mcsp(8);
    // Hardware CDUs.
    let sim = CecduSim::new(robot.clone(), scene.octree(), CecduConfig::default());
    let mut hw_cdu = CecduCdu::new(sim.clone());
    let hw = run_sas(&motions, FunctionMode::Complete, &cfg, &mut hw_cdu);
    // Hardware checker behind the *ideal* CDU (same functional outcomes,
    // unit latency): verdicts must match exactly.
    let mut ideal_cdu = IdealCdu::new(CecduChecker::new(sim));
    let ideal = run_sas(&motions, FunctionMode::Complete, &cfg, &mut ideal_cdu);
    assert_eq!(hw.motion_results, ideal.motion_results);
    assert!(hw.cycles > ideal.cycles, "hardware latency must show up");
}

#[test]
fn ablation_orderings_hold_on_hardware() {
    // §7.2.1/§7.2.2 orderings at the robot-pose level: the proposed
    // cascade beats the no-filter variant on multiplications.
    let robot = RobotModel::jaco2();
    let scene = Scene::random(SceneConfig::paper(), 3);
    let mut rng = StdRng::seed_from_u64(21);
    let proposed = CecduSim::new(robot.clone(), scene.octree(), CecduConfig::default());
    let no_filters = CecduSim::new(robot.clone(), scene.octree(), CecduConfig::default())
        .with_cascade(CascadeConfig::without_filters());
    let mut mults_proposed = 0u64;
    let mut mults_nofilter = 0u64;
    for _ in 0..150 {
        let pose = robot.sample_config(&mut rng);
        let a = proposed.check_pose(&pose);
        let b = no_filters.check_pose(&pose);
        assert_eq!(a.colliding, b.colliding, "filters must not change answers");
        mults_proposed += a.ops.mults;
        mults_nofilter += b.ops.mults;
    }
    assert!(
        (mults_proposed as f64) < 0.8 * mults_nofilter as f64,
        "filters should save >20% multiplications: {mults_proposed} vs {mults_nofilter}"
    );
}

#[test]
fn pruned_octrees_trade_precision_for_speed_conservatively() {
    // The §8 RoboRun-style knob: pruning the environment octree must never
    // introduce false negatives on the hardware path, and should reduce
    // traversal work.
    let robot = RobotModel::jaco2();
    let scene = Scene::random(SceneConfig::paper(), 4);
    let full_tree = scene.octree();
    let pruned_tree = full_tree.pruned(2);
    let full = CecduSim::new(robot.clone(), full_tree, CecduConfig::default());
    let pruned = CecduSim::new(robot.clone(), pruned_tree, CecduConfig::default());
    let mut rng = StdRng::seed_from_u64(66);
    let mut full_cycles = 0u64;
    let mut pruned_cycles = 0u64;
    for _ in 0..150 {
        let pose = robot.sample_config(&mut rng);
        let a = full.check_pose(&pose);
        let b = pruned.check_pose(&pose);
        // Conservative: anything colliding at full precision stays
        // colliding at reduced precision.
        if a.colliding {
            assert!(b.colliding, "pruning lost a collision");
        }
        full_cycles += a.cycles;
        pruned_cycles += b.cycles;
    }
    assert!(
        pruned_cycles < full_cycles,
        "pruned {pruned_cycles} should beat full {full_cycles}"
    );
}

#[test]
fn checker_adapter_is_a_drop_in_for_planners() {
    // The CECDU checker can drive the RRT planner directly.
    use mpaccel::planner::rrt::{rrt_connect, RrtConfig};
    let robot = RobotModel::jaco2();
    let scene = Scene::random(SceneConfig::paper(), 0);
    let sim = CecduSim::new(robot.clone(), scene.octree(), CecduConfig::default());
    let mut checker = CecduChecker::new(sim);
    let queries = mpaccel::planner::queries::generate_queries(&robot, &scene, 1, 31)
        .expect("query generation");
    let out = rrt_connect(
        &mut checker,
        &queries[0].start,
        &queries[0].goal,
        &RrtConfig::default(),
        3,
    );
    // Whether or not it solves, the hardware checker must have done work
    // and counted cycles.
    assert!(checker.busy_cycles() > 0);
    assert!(checker.stats().pose_queries > 0);
    let _ = out;
}
