//! Property-based tests of the consistent-hash ring: key balance within a
//! bound at 1/4/16 shards, and minimal key movement on removal/rejoin.

use mp_service::HashRing;
use proptest::prelude::*;

const KEYS: u64 = 4_096;
const VNODES: usize = 64;

fn owners(ring: &HashRing) -> Vec<usize> {
    (0..KEYS).map(|k| ring.primary(k).expect("alive")).collect()
}

fn shares(ring: &HashRing, shards: usize) -> Vec<usize> {
    let mut counts = vec![0usize; shards];
    for owner in owners(ring) {
        counts[owner] += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With enough vnodes, every shard's share of the key space stays
    /// within a constant factor of fair at N ∈ {1, 4, 16}.
    #[test]
    fn keys_balance_within_bound(seed in any::<u64>()) {
        for shards in [1usize, 4, 16] {
            let ring = HashRing::new(shards, VNODES, seed);
            let counts = shares(&ring, shards);
            let fair = KEYS as usize / shards;
            for (shard, &n) in counts.iter().enumerate() {
                prop_assert!(
                    n * 2 >= fair && n <= fair * 2,
                    "seed {seed}: shard {shard}/{shards} owns {n} of {KEYS} keys (fair {fair})"
                );
            }
        }
    }

    /// Removing one shard moves exactly that shard's keys — everyone
    /// else's primary is untouched — and restoring it recovers the
    /// original mapping byte for byte.
    #[test]
    fn removal_is_minimal_and_rejoin_exact(seed in any::<u64>(), dead in 0usize..16) {
        let mut ring = HashRing::new(16, VNODES, seed);
        let before = owners(&ring);
        ring.remove(dead);
        prop_assert_eq!(ring.alive_count(), 15);
        let during = owners(&ring);
        for (k, (&b, &d)) in before.iter().zip(&during).enumerate() {
            if b == dead {
                prop_assert!(d != dead, "key {k} still routed to the dead shard");
            } else {
                prop_assert!(d == b, "key {k} moved although its owner lived");
            }
        }
        ring.restore(dead);
        prop_assert_eq!(owners(&ring), before, "rejoin must recover the exact mapping");
    }

    /// The two hedge/spill choices are always alive and distinct whenever
    /// at least two shards are alive, for any subset of dead shards.
    #[test]
    fn primary_and_secondary_stay_alive_and_distinct(
        seed in any::<u64>(),
        dead_mask in 0u16..u16::MAX, // never all-dead
    ) {
        let mut ring = HashRing::new(16, 8, seed);
        for shard in 0..16 {
            if dead_mask & (1 << shard) != 0 {
                ring.remove(shard);
            }
        }
        for key in 0..256u64 {
            let p = ring.primary(key).expect("at least one shard alive");
            prop_assert!(ring.is_alive(p));
            if ring.alive_count() >= 2 {
                let s = ring.secondary(key).expect("two alive shards");
                prop_assert!(ring.is_alive(s));
                prop_assert_ne!(p, s);
            } else {
                prop_assert_eq!(ring.secondary(key), None);
            }
        }
    }
}
