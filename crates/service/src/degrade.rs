//! Load-level controller: map queue pressure to a quality tier.
//!
//! The controller reads one robust congestion signal — queued requests per
//! healthy instance — and maps it through fixed occupancy thresholds to a
//! base [`QualityTier`]. The dispatcher may still step *further* down the
//! ladder for an individual request whose deadline slack cannot fit the
//! chosen tier's service time (slack-fit, see `service.rs`), but never
//! back up above the controller's tier while the queue is congested.

use mp_planner::QualityTier;

/// Degradation policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradeConfig {
    /// Master switch; when false every request is served at full quality.
    pub enabled: bool,
    /// Queued-requests-per-healthy-instance thresholds at which the
    /// controller steps down to Reduced / Fallback / Coarse (must be
    /// non-decreasing).
    pub occupancy_thresholds: [f64; QualityTier::COUNT - 1],
}

impl Default for DegradeConfig {
    fn default() -> DegradeConfig {
        DegradeConfig {
            enabled: true,
            occupancy_thresholds: [1.0, 2.5, 5.0],
        }
    }
}

impl DegradeConfig {
    /// A disabled controller (always full quality).
    pub fn off() -> DegradeConfig {
        DegradeConfig {
            enabled: false,
            ..DegradeConfig::default()
        }
    }

    /// The base tier for the current congestion level.
    pub fn load_tier(&self, queued: usize, healthy_instances: usize) -> QualityTier {
        if !self.enabled {
            return QualityTier::Full;
        }
        let occupancy = queued as f64 / healthy_instances.max(1) as f64;
        let mut tier = QualityTier::Full;
        for (i, &threshold) in self.occupancy_thresholds.iter().enumerate() {
            if occupancy >= threshold {
                tier = QualityTier::from_index(i + 1);
            }
        }
        tier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_down_with_occupancy() {
        let d = DegradeConfig::default();
        assert_eq!(d.load_tier(0, 4), QualityTier::Full);
        assert_eq!(d.load_tier(3, 4), QualityTier::Full); // 0.75 < 1.0
        assert_eq!(d.load_tier(4, 4), QualityTier::Reduced);
        assert_eq!(d.load_tier(10, 4), QualityTier::Fallback);
        assert_eq!(d.load_tier(20, 4), QualityTier::Coarse);
    }

    #[test]
    fn quarantines_raise_effective_occupancy() {
        let d = DegradeConfig::default();
        // Same queue, fewer healthy instances: deeper degradation.
        assert_eq!(d.load_tier(4, 4), QualityTier::Reduced);
        assert_eq!(d.load_tier(4, 1), QualityTier::Fallback);
    }

    #[test]
    fn disabled_controller_always_serves_full() {
        let d = DegradeConfig::off();
        assert_eq!(d.load_tier(1_000, 1), QualityTier::Full);
    }
}
