//! The plan catalog: every (scene, query, tier) combination planned once.
//!
//! The service simulates *thousands* of requests against a handful of
//! distinct planning problems. Planning each (scene, query) at each
//! quality tier once — up front, in parallel, with seeds derived from the
//! (scene, query, tier) coordinates alone — gives the event loop exact
//! deterministic service times and solve outcomes as O(1) lookups, the
//! same trick the benchmark engine uses for its trace corpus. An arriving
//! request references a catalog key; dispatching it at tier T costs the
//! modeled time recorded here.

use mp_collision::SoftwareChecker;
use mp_octree::{Octree, Scene};
use mp_planner::batch::{plan_at_tier_batch, BatchQuery};
use mp_planner::queries::generate_queries;
use mp_planner::sampler::OracleSampler;
use mp_planner::{PlanCertifier, QualityTier};
use mp_robot::RobotModel;
use mp_telemetry::{self as telemetry, arg1, ArgValue, TelemetrySession};
use threadpool::ThreadPool;

/// The planned outcome of one (scene, query, tier) combination.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CatalogEntry {
    /// Whether the tier produced a collision-free path.
    pub solved: bool,
    /// Modeled accelerator time for the attempt (µs).
    pub modeled_us: f64,
    /// CD pose queries spent.
    pub cd_queries: u64,
    /// Neural inferences spent.
    pub nn_calls: u64,
    /// Dynamic CD datapath energy the attempt spent (pJ), from the
    /// planner's counter-delta attribution (`TierOutcome::energy_pj`).
    pub energy_pj: f64,
    /// Software pose queries an independent certification of the
    /// returned plan costs (zero when unsolved — there is no plan).
    pub certify_queries: u64,
    /// Modeled host-CPU time (µs) for that certification pass.
    pub certify_us: f64,
}

/// A precomputed catalog of planning outcomes, indexed by
/// `(key, tier)` where `key` enumerates (scene, query) pairs.
#[derive(Clone, Debug)]
pub struct PlanCatalog {
    entries: Vec<[CatalogEntry; QualityTier::COUNT]>,
    mean_us: [f64; QualityTier::COUNT],
}

impl PlanCatalog {
    /// Plans every (scene, query, tier) combination and builds the
    /// catalog. Scenes fan out over `pool` (results are collected in
    /// scene order, so the catalog is identical for any thread count);
    /// all randomness derives from `(seed, scene, query, tier)`.
    ///
    /// # Errors
    ///
    /// Returns a message if a scene cannot yield valid queries.
    pub fn build(
        robot: &RobotModel,
        scenes: &[Scene],
        queries_per_scene: usize,
        seed: u64,
        pool: &ThreadPool,
    ) -> Result<PlanCatalog, String> {
        PlanCatalog::build_inner(robot, scenes, queries_per_scene, seed, pool, None)
    }

    /// [`PlanCatalog::build`] with telemetry: each scene's planning work
    /// records into its own `("catalog", scene_index)` stream of
    /// `session`, so the planner/collision spans from the build are
    /// identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns a message if a scene cannot yield valid queries.
    pub fn build_traced(
        robot: &RobotModel,
        scenes: &[Scene],
        queries_per_scene: usize,
        seed: u64,
        pool: &ThreadPool,
        session: &TelemetrySession,
    ) -> Result<PlanCatalog, String> {
        PlanCatalog::build_inner(robot, scenes, queries_per_scene, seed, pool, Some(session))
    }

    fn build_inner(
        robot: &RobotModel,
        scenes: &[Scene],
        queries_per_scene: usize,
        seed: u64,
        pool: &ThreadPool,
        session: Option<&TelemetrySession>,
    ) -> Result<PlanCatalog, String> {
        let per_scene: Vec<Result<Vec<[CatalogEntry; QualityTier::COUNT]>, String>> =
            pool.map(scenes, |si, scene| {
                let _stream = session.map(|s| s.install("catalog", si as u32));
                let queries = generate_queries(
                    robot,
                    scene,
                    queries_per_scene,
                    seed.wrapping_mul(0x9E37_79B9).wrapping_add(si as u64),
                )
                .map_err(|e| format!("scene {si}: {e}"))?;
                // One octree per depth the ladder uses, shared across the
                // scene's queries.
                let depths: Vec<Octree> = QualityTier::LADDER
                    .iter()
                    .map(|t| Octree::build(scene.obstacles(), t.octree_depth()))
                    .collect();
                // The certifier's octree is built independently of the
                // planner's (same obstacle list, fresh build at the
                // paper-default depth): certification costs recorded in
                // the catalog are the real software-cascade costs of the
                // produced paths.
                let mut certifier = PlanCertifier::new(robot.clone(), scene.obstacles(), 4);
                // Tier-major batched build: all of the scene's queries are
                // planned at one tier through one shared checker (the
                // cross-query batch engine), so the octree clone and the
                // checker's traversal state are paid once per (scene,
                // tier) instead of once per (query, tier). Per-entry
                // outcomes are bit-identical to the old query-major loop —
                // seeds depend only on the (scene, query, tier)
                // coordinates, and the batch engine matches the sequential
                // planners lane-for-lane.
                let mut rows = vec![
                    [CatalogEntry {
                        solved: false,
                        modeled_us: 0.0,
                        cd_queries: 0,
                        nn_calls: 0,
                        energy_pj: 0.0,
                        certify_queries: 0,
                        certify_us: 0.0,
                    }; QualityTier::COUNT];
                    queries.len()
                ];
                for tier in QualityTier::LADDER {
                    let tier_span = telemetry::span_args(
                        "catalog",
                        "tier_batch",
                        arg1("tier", ArgValue::Str(tier.label())),
                    );
                    let lanes: Vec<BatchQuery> = queries
                        .iter()
                        .enumerate()
                        .map(|(qi, q)| BatchQuery {
                            start: q.start.clone(),
                            goal: q.goal.clone(),
                            seed: seed
                                .wrapping_mul(0x85EB_CA6B)
                                .wrapping_add((si * 10_000 + qi * 10 + tier.index()) as u64),
                        })
                        .collect();
                    let mut checker =
                        SoftwareChecker::new(robot.clone(), depths[tier.index()].clone());
                    let planned = plan_at_tier_batch(&mut checker, &lanes, tier, |i| {
                        OracleSampler::new(robot.clone(), lanes[i].seed)
                    });
                    for (qi, (out, path)) in planned.into_iter().enumerate() {
                        let cert = path.filter(|_| out.solved).map(|p| certifier.certify(&p));
                        rows[qi][tier.index()] = CatalogEntry {
                            solved: out.solved,
                            modeled_us: out.modeled_us,
                            cd_queries: out.cd_queries,
                            nn_calls: out.nn_calls,
                            energy_pj: out.energy_pj,
                            certify_queries: cert.map_or(0, |c| c.cd_queries),
                            certify_us: cert.map_or(0.0, |c| c.modeled_us),
                        };
                    }
                    drop(tier_span);
                }
                Ok(rows)
            });
        let mut entries = Vec::new();
        for scene_rows in per_scene {
            entries.extend(scene_rows?);
        }
        if entries.is_empty() {
            return Err("catalog has no (scene, query) entries".to_string());
        }
        let mut mean_us = [0.0f64; QualityTier::COUNT];
        for row in &entries {
            for (acc, e) in mean_us.iter_mut().zip(row.iter()) {
                *acc += e.modeled_us;
            }
        }
        for m in &mut mean_us {
            *m /= entries.len() as f64;
        }
        Ok(PlanCatalog { entries, mean_us })
    }

    /// Number of distinct (scene, query) keys.
    pub fn num_keys(&self) -> usize {
        self.entries.len()
    }

    /// The planned outcome for a key at a tier.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn entry(&self, key: usize, tier: QualityTier) -> &CatalogEntry {
        &self.entries[key][tier.index()]
    }

    /// Mean modeled service time at a tier (µs) — the capacity planning
    /// figure: one instance saturates at `1e6 / mean_service_us(Full)`
    /// requests per second of full-quality traffic.
    pub fn mean_service_us(&self, tier: QualityTier) -> f64 {
        self.mean_us[tier.index()]
    }

    /// Offered rate (requests/s) that saturates a pool of `instances`
    /// serving everything at full quality.
    pub fn saturating_rate_per_s(&self, instances: usize) -> f64 {
        instances as f64 * 1e6 / self.mean_service_us(QualityTier::Full).max(1e-9)
    }

    /// Mean dynamic CD energy per planning attempt at a tier (pJ) — the
    /// energy-side analogue of [`PlanCatalog::mean_service_us`], used by
    /// capacity planning to trade joules against deadline slack.
    pub fn mean_energy_pj(&self, tier: QualityTier) -> f64 {
        let sum: f64 = self
            .entries
            .iter()
            .map(|row| row[tier.index()].energy_pj)
            .sum();
        sum / self.entries.len() as f64
    }

    /// Mean certification cost over the keys the tier solves (µs) — the
    /// per-plan host-CPU overhead the integrity pipeline pays. Zero when
    /// the tier solves nothing.
    pub fn mean_certify_us(&self, tier: QualityTier) -> f64 {
        let (mut sum, mut n) = (0.0f64, 0u64);
        for row in &self.entries {
            let e = &row[tier.index()];
            if e.solved {
                sum += e.certify_us;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Fraction of keys the tier solves.
    pub fn solve_rate(&self, tier: QualityTier) -> f64 {
        let solved = self
            .entries
            .iter()
            .filter(|row| row[tier.index()].solved)
            .count();
        solved as f64 / self.num_keys() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_octree::benchmark_scenes;

    fn small_catalog(threads: usize) -> PlanCatalog {
        let scenes: Vec<Scene> = benchmark_scenes().into_iter().take(2).collect();
        PlanCatalog::build(
            &RobotModel::jaco2(),
            &scenes,
            2,
            7,
            &ThreadPool::new(threads),
        )
        .expect("catalog builds")
    }

    #[test]
    fn catalog_is_thread_count_invariant() {
        let a = small_catalog(1);
        let b = small_catalog(4);
        assert_eq!(a.num_keys(), b.num_keys());
        for key in 0..a.num_keys() {
            for tier in QualityTier::LADDER {
                assert_eq!(a.entry(key, tier), b.entry(key, tier), "key {key}");
            }
        }
    }

    #[test]
    fn catalog_has_sane_costs_and_capacity() {
        let c = small_catalog(2);
        assert_eq!(c.num_keys(), 4);
        for tier in QualityTier::LADDER {
            assert!(c.mean_service_us(tier) > 0.0);
            assert!(c.mean_energy_pj(tier) > 0.0);
        }
        // Degraded tiers must be cheaper on average than full quality —
        // the premise of the whole degradation ladder.
        assert!(c.mean_service_us(QualityTier::Coarse) < c.mean_service_us(QualityTier::Full));
        assert!(c.saturating_rate_per_s(4) > 0.0);
        // Full quality solves most benchmark queries.
        assert!(c.solve_rate(QualityTier::Full) >= 0.5);
        // Every solved plan carries a measured certification cost.
        for key in 0..c.num_keys() {
            for tier in QualityTier::LADDER {
                let e = c.entry(key, tier);
                if e.solved {
                    assert!(e.certify_queries > 0, "key {key} {}", tier.label());
                    assert!(e.certify_us > 0.0);
                } else {
                    assert_eq!(e.certify_queries, 0);
                }
            }
        }
        assert!(c.mean_certify_us(QualityTier::Full) > 0.0);
    }
}
