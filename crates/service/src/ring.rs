//! Consistent-hash ring with bounded-load power-of-two-choices routing.
//!
//! The fleet partitions the plan catalog across shards by hashing each
//! request's `(tenant, key)` route key onto a circle of virtual nodes.
//! Consistent hashing gives the two properties failover needs:
//!
//! * **Minimal movement** — removing a shard re-routes *only* that
//!   shard's keys (everything else keeps its primary), and restoring it
//!   recovers the exact original mapping.
//! * **Balance** — with enough virtual nodes per shard, each shard owns a
//!   near-equal slice of the key space.
//!
//! Pure hashing ignores instantaneous load, so on top of the ring the
//! router applies *bounded-load power-of-two-choices*: a request goes to
//! its primary shard unless that shard's queue exceeds a bound derived
//! from the fleet-average load, in which case it spills to the next
//! distinct shard clockwise (its deterministic second choice). The bound
//! follows consistent-hashing-with-bounded-loads: capacity is
//! `ceil(c · (total_load + 1) / alive_shards)` with `c` a percentage knob.
//!
//! Everything is integer arithmetic on seeded hashes: the same ring and
//! the same loads route the same request identically on any machine.

/// splitmix64-style finalizer; the same mixer the service loop uses for
/// request-key assignment, duplicated here so the ring stays freestanding.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring over `shards` shards with liveness tracking.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Sorted `(circle point, shard)` virtual nodes.
    points: Vec<(u64, usize)>,
    /// Per-shard liveness (dead shards are skipped by alive lookups).
    alive: Vec<bool>,
    alive_count: usize,
    /// Salt for hashing route keys onto the circle.
    key_salt: u64,
}

impl HashRing {
    /// Builds a ring of `shards` shards with `vnodes` virtual nodes each,
    /// placed by the seed. All shards start alive.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `vnodes == 0`.
    pub fn new(shards: usize, vnodes: usize, seed: u64) -> HashRing {
        assert!(shards > 0, "ring needs at least one shard");
        assert!(vnodes > 0, "ring needs at least one vnode per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for v in 0..vnodes {
                let h = mix(seed ^ ((shard as u64) << 32) ^ ((v as u64) << 1) ^ 0x51D0_0C1E);
                points.push((h, shard));
            }
        }
        // Sorting by (point, shard) also breaks the astronomically rare
        // point collision deterministically.
        points.sort_unstable();
        HashRing {
            points,
            alive: vec![true; shards],
            alive_count: shards,
            key_salt: mix(seed ^ 0x6B3A_5CA1),
        }
    }

    /// Total shards (alive or dead).
    pub fn shards(&self) -> usize {
        self.alive.len()
    }

    /// Shards currently alive.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Whether `shard` is alive.
    pub fn is_alive(&self, shard: usize) -> bool {
        self.alive[shard]
    }

    /// Marks `shard` dead; its keys flow to their clockwise successors.
    pub fn remove(&mut self, shard: usize) {
        if self.alive[shard] {
            self.alive[shard] = false;
            self.alive_count -= 1;
        }
    }

    /// Marks `shard` alive again; its keys return to it exactly.
    pub fn restore(&mut self, shard: usize) {
        if !self.alive[shard] {
            self.alive[shard] = true;
            self.alive_count += 1;
        }
    }

    /// Index into `points` of the first vnode clockwise of `key`'s point.
    fn start(&self, key: u64) -> usize {
        let h = mix(self.key_salt ^ key);
        match self.points.binary_search(&(h, usize::MAX)) {
            Ok(i) | Err(i) => i % self.points.len(),
        }
    }

    /// The shard owning `key` ignoring liveness — where an unrouted
    /// client would still send the request while the shard is down.
    pub fn owner(&self, key: u64) -> usize {
        self.points[self.start(key)].1
    }

    /// First *alive* shard clockwise of `key` (`None` if all are dead).
    pub fn primary(&self, key: u64) -> Option<usize> {
        self.nth_alive(key, 0)
    }

    /// The next alive shard clockwise after the primary, distinct from
    /// it — the hedge / spill target (`None` with fewer than two alive).
    pub fn secondary(&self, key: u64) -> Option<usize> {
        self.nth_alive(key, 1)
    }

    fn nth_alive(&self, key: u64, n: usize) -> Option<usize> {
        if self.alive_count <= n {
            return None;
        }
        let start = self.start(key);
        let mut seen: Vec<usize> = Vec::with_capacity(n + 1);
        for off in 0..self.points.len() {
            let shard = self.points[(start + off) % self.points.len()].1;
            if self.alive[shard] && !seen.contains(&shard) {
                if seen.len() == n {
                    return Some(shard);
                }
                seen.push(shard);
            }
        }
        None
    }

    /// Routes `key` with bounded-load power-of-two-choices: the primary
    /// shard, unless its entry in `loads` exceeds
    /// `ceil(bound_pct% · (total + 1) / alive)`, in which case the
    /// secondary; if both exceed the bound, the less loaded of the two
    /// (ties to the primary). `loads` is indexed by shard; dead shards'
    /// entries are ignored.
    pub fn route(&self, key: u64, loads: &[usize], bound_pct: u64) -> Option<usize> {
        debug_assert_eq!(loads.len(), self.alive.len());
        let p = self.primary(key)?;
        let Some(s) = self.secondary(key) else {
            return Some(p);
        };
        let total: u64 = self
            .alive
            .iter()
            .zip(loads)
            .filter(|(a, _)| **a)
            .map(|(_, &l)| l as u64)
            .sum();
        let bound = (bound_pct * (total + 1)).div_ceil(100 * self.alive_count as u64) as usize;
        if loads[p] < bound || (loads[s] >= bound && loads[s] >= loads[p]) {
            Some(p)
        } else {
            Some(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_is_deterministic_and_alive() {
        let ring = HashRing::new(8, 32, 42);
        for key in 0..1_000u64 {
            let p = ring.primary(key).unwrap();
            assert_eq!(Some(p), ring.primary(key));
            assert!(ring.is_alive(p));
            assert_eq!(p, ring.owner(key));
        }
    }

    #[test]
    fn secondary_is_distinct_from_primary() {
        let ring = HashRing::new(4, 16, 7);
        for key in 0..500u64 {
            assert_ne!(ring.primary(key), ring.secondary(key));
        }
    }

    #[test]
    fn removal_moves_only_the_dead_shards_keys() {
        let mut ring = HashRing::new(8, 32, 3);
        let before: Vec<usize> = (0..2_000u64).map(|k| ring.primary(k).unwrap()).collect();
        ring.remove(5);
        for (k, &owner) in before.iter().enumerate() {
            let now = ring.primary(k as u64).unwrap();
            if owner != 5 {
                assert_eq!(now, owner, "key {k} moved although its owner lived");
            } else {
                assert_ne!(now, 5, "key {k} still routed to the dead shard");
            }
        }
        ring.restore(5);
        let after: Vec<usize> = (0..2_000u64).map(|k| ring.primary(k).unwrap()).collect();
        assert_eq!(before, after, "restore must recover the exact mapping");
    }

    #[test]
    fn route_spills_off_an_overloaded_primary() {
        let ring = HashRing::new(4, 16, 9);
        let key = 1234;
        let p = ring.primary(key).unwrap();
        let s = ring.secondary(key).unwrap();
        // Balanced loads: stay on the primary.
        assert_eq!(ring.route(key, &[1; 4], 125), Some(p));
        // Primary far above the bound: spill to the secondary.
        let mut loads = [0usize; 4];
        loads[p] = 100;
        assert_eq!(ring.route(key, &loads, 125), Some(s));
        // Both above the bound: the less loaded of the two wins.
        let mut loads = [0usize; 4];
        loads[p] = 100;
        loads[s] = 60;
        assert_eq!(ring.route(key, &loads, 125), Some(s));
    }

    #[test]
    fn lone_survivor_takes_everything_and_extinction_routes_nowhere() {
        let mut ring = HashRing::new(3, 8, 1);
        ring.remove(0);
        ring.remove(2);
        for key in 0..100u64 {
            assert_eq!(ring.primary(key), Some(1));
            assert_eq!(ring.secondary(key), None);
            assert_eq!(ring.route(key, &[7, 7, 7], 125), Some(1));
        }
        ring.remove(1);
        assert_eq!(ring.primary(0), None);
        assert_eq!(ring.alive_count(), 0);
    }
}
