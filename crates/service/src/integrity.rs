//! The service-side integrity pipeline: certification accounting,
//! suspicion-scored voting, and scrub/readmission of lying instances.
//!
//! The service's fault machinery so far (retries, circuit breaker,
//! failover) only ever sees *detected* faults. Silent data corruption — a
//! wrong-but-plausible plan delivered with a clean status — defeats all of
//! it, so this module adds the defense-in-depth ladder the integrity
//! experiments sweep:
//!
//! 1. **Certification** (`certify`): every returned plan is re-validated
//!    through an independent software cascade before the request resolves
//!    (the cost is the catalog's measured
//!    [`certify_us`](crate::catalog::CatalogEntry::certify_us)); a
//!    rejection re-plans at a degraded tier instead of shipping.
//! 2. **Suspicion scoreboard → voting** (`vote`): certify failures are
//!    attributed to the instance that produced the plan; instances past
//!    the suspicion threshold get their dispatches re-executed
//!    (temporal duplicate-dispatch) and a mismatch ships the clean result.
//! 3. **Scrub/readmission** (`scrub`): instances that keep lying under
//!    voting are benched and probed with known-answer work until a clean
//!    streak readmits them — still under voting, until certification
//!    decays their suspicion away.
//!
//! All randomness comes from per-instance [`SdcInjector`] streams derived
//! from the run seed, so runs stay a pure function of their configuration.

use mp_sim::fault::{SdcInjector, SdcPlan};
use mp_telemetry::{HistSnapshot, Registry};

/// Which integrity defenses a run enables, and their thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntegrityConfig {
    /// Re-validate every returned plan through the independent software
    /// cascade before resolving the request.
    pub certify: bool,
    /// Re-execute dispatches on suspicion-flagged instances and compare.
    pub vote: bool,
    /// Bench persistent liars and readmit them via known-answer probes.
    pub scrub: bool,
    /// Suspicion score at which an instance's dispatches get voted.
    pub vote_threshold: u32,
    /// Suspicion added per certification failure attributed to an
    /// instance.
    pub accuse_weight: u32,
    /// Suspicion decay shift per clean certification:
    /// `s -= max(1, s >> decay_shift)`.
    pub decay_shift: u32,
    /// Vote overrides before a suspect is benched for scrubbing.
    pub liar_strikes: u32,
    /// Consecutive clean scrub probes required for readmission.
    pub scrub_clean_target: u32,
    /// Virtual time between scrub probes of a benched instance (µs).
    pub scrub_period_us: u64,
}

impl IntegrityConfig {
    /// Every defense off — the undefended baseline. This is the default,
    /// so existing configurations are untouched by the pipeline.
    pub fn off() -> IntegrityConfig {
        IntegrityConfig {
            certify: false,
            vote: false,
            scrub: false,
            vote_threshold: 8,
            accuse_weight: 4,
            decay_shift: 2,
            liar_strikes: 3,
            scrub_clean_target: 4,
            scrub_period_us: 500,
        }
    }

    /// Certification only: unsafe plans are caught and re-planned, but
    /// lying instances stay in rotation at full trust.
    pub fn certify_only() -> IntegrityConfig {
        IntegrityConfig {
            certify: true,
            ..IntegrityConfig::off()
        }
    }

    /// The full ladder: certify + suspicion-scored voting + scrub.
    pub fn full() -> IntegrityConfig {
        IntegrityConfig {
            certify: true,
            vote: true,
            scrub: true,
            ..IntegrityConfig::off()
        }
    }
}

impl Default for IntegrityConfig {
    fn default() -> IntegrityConfig {
        IntegrityConfig::off()
    }
}

/// Integrity counters for one run.
#[derive(Clone, Debug, Default)]
pub struct IntegrityStats {
    /// Completions where at least one execution produced a silently
    /// corrupted plan.
    pub sdc_injected: u64,
    /// Corrupted plans that shipped as `Completed` — the unsafe-escape
    /// count the defended policies must hold at zero.
    pub sdc_escaped: u64,
    /// Plans certified clean.
    pub certified: u64,
    /// Plans the certifier rejected (each one a re-plan, not a shipped
    /// hazard).
    pub certify_failed: u64,
    /// Total modeled host-CPU time spent certifying (ns).
    pub certify_ns: u64,
    /// Dispatches re-executed because the instance was a suspect.
    pub votes: u64,
    /// Re-executions that disagreed with the primary run (the corruption
    /// was masked before certification).
    pub vote_overrides: u64,
    /// Instances benched for persistent lying.
    pub liars_benched: u64,
    /// Known-answer scrub probes run against benched instances.
    pub scrub_probes: u64,
    /// Benched instances readmitted after a clean probe streak.
    pub scrub_readmits: u64,
    /// Per-plan certification cost distribution (µs).
    pub certify_hist: HistSnapshot,
}

impl IntegrityStats {
    /// Unsafe plans shipped per completed request (0 when nothing
    /// completed).
    pub fn escape_rate(&self, completed: u64) -> f64 {
        if completed == 0 {
            return 0.0;
        }
        self.sdc_escaped as f64 / completed as f64
    }

    /// Merges another run's counters into this one (histogram included).
    pub fn merge(&mut self, other: &IntegrityStats) {
        self.sdc_injected += other.sdc_injected;
        self.sdc_escaped += other.sdc_escaped;
        self.certified += other.certified;
        self.certify_failed += other.certify_failed;
        self.certify_ns += other.certify_ns;
        self.votes += other.votes;
        self.vote_overrides += other.vote_overrides;
        self.liars_benched += other.liars_benched;
        self.scrub_probes += other.scrub_probes;
        self.scrub_readmits += other.scrub_readmits;
        self.certify_hist.absorb(&other.certify_hist);
    }

    /// Exports the counters and the certification-cost histogram into a
    /// telemetry registry under `<prefix>.<field>` names.
    pub fn export_into(&self, prefix: &str, registry: &Registry) {
        registry.set_counter(&format!("{prefix}.sdc_injected"), self.sdc_injected);
        registry.set_counter(&format!("{prefix}.sdc_escaped"), self.sdc_escaped);
        registry.set_counter(&format!("{prefix}.certified"), self.certified);
        registry.set_counter(&format!("{prefix}.certify_failed"), self.certify_failed);
        registry.set_counter(&format!("{prefix}.certify_ns"), self.certify_ns);
        registry.set_counter(&format!("{prefix}.votes"), self.votes);
        registry.set_counter(&format!("{prefix}.vote_overrides"), self.vote_overrides);
        registry.set_counter(&format!("{prefix}.liars_benched"), self.liars_benched);
        registry.set_counter(&format!("{prefix}.scrub_probes"), self.scrub_probes);
        registry.set_counter(&format!("{prefix}.scrub_readmits"), self.scrub_readmits);
        registry.observe_hist(&format!("{prefix}.certify_us"), &self.certify_hist);
    }
}

/// What the integrity layer decided about one clean completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompletionIntegrity {
    /// The plan leaving the instance (after any vote masking) is
    /// corrupted.
    pub ships_corrupt: bool,
    /// This completion crossed the liar threshold: the caller must bench
    /// the instance and start its scrub schedule.
    pub bench: bool,
}

/// Per-instance integrity state for one service (or shard) event loop:
/// SDC streams, the suspicion scoreboard, liar strikes, and scrub
/// streaks.
#[derive(Clone, Debug)]
pub struct IntegrityState {
    cfg: IntegrityConfig,
    /// Per-instance dispatch-corruption streams.
    sdc: Vec<SdcInjector>,
    /// Per-instance scrub-probe streams (decorrelated from dispatches so
    /// probing never perturbs the corruption a policy sweep compares).
    scrub: Vec<SdcInjector>,
    suspicion: Vec<u32>,
    lies: Vec<u32>,
    streak: Vec<u32>,
    benched: Vec<bool>,
    /// Defense-side counters (injection-side counts live in the
    /// injectors and are merged into `sdc_injected` at completion time).
    pub stats: IntegrityStats,
}

/// Salt separating each instance's scrub stream from its dispatch stream.
const SCRUB_STREAM_SALT: u64 = 0x5C12_0000;

impl IntegrityState {
    /// Builds per-instance integrity state. `plan` carries the base SDC
    /// rate and seed; `hot` (with `hot_factor`) marks the instance with an
    /// elevated silent-corruption rate. `salt` separates shards of a
    /// fleet (0 for a single-shard run).
    pub fn new(
        cfg: IntegrityConfig,
        plan: SdcPlan,
        instances: usize,
        hot: Option<usize>,
        hot_factor: f64,
        salt: u64,
    ) -> IntegrityState {
        let per_instance = |i: usize, stream_salt: u64| {
            let scaled = if hot == Some(i) {
                plan.scaled(hot_factor)
            } else {
                plan
            };
            SdcInjector::new(scaled.stream((salt << 24) ^ stream_salt ^ i as u64))
        };
        IntegrityState {
            cfg,
            sdc: (0..instances).map(|i| per_instance(i, 0)).collect(),
            scrub: (0..instances)
                .map(|i| per_instance(i, SCRUB_STREAM_SALT))
                .collect(),
            suspicion: vec![0; instances],
            lies: vec![0; instances],
            streak: vec![0; instances],
            benched: vec![false; instances],
            stats: IntegrityStats::default(),
        }
    }

    /// The configuration this state enforces.
    pub fn config(&self) -> &IntegrityConfig {
        &self.cfg
    }

    /// Current suspicion score of an instance.
    pub fn suspicion(&self, inst: usize) -> u32 {
        self.suspicion[inst]
    }

    /// Whether an instance's dispatches are currently voted.
    pub fn is_suspect(&self, inst: usize) -> bool {
        self.suspicion[inst] >= self.cfg.vote_threshold
    }

    /// Called at dispatch: returns whether this dispatch is re-executed
    /// for voting (doubling its modeled service time) and counts it.
    pub fn dispatch_vote(&mut self, inst: usize) -> bool {
        let vote = self.cfg.vote && self.is_suspect(inst);
        if vote {
            self.stats.votes += 1;
        }
        vote
    }

    /// Called on every clean, solved completion: draws the instance's
    /// silent-corruption stream (twice when voted — the re-execution) and
    /// resolves the vote. The caller handles certification and, when
    /// `bench` is set, pulls the instance from rotation and starts its
    /// scrub schedule.
    pub fn completion(&mut self, inst: usize, voted: bool) -> CompletionIntegrity {
        let primary = self.sdc[inst].flips_verdict();
        let mut ships_corrupt = primary;
        let mut injected = primary;
        let mut bench = false;
        if voted {
            let rerun = self.sdc[inst].flips_verdict();
            injected |= rerun;
            if primary != rerun {
                // The two executions disagree: one of them lied. Ship the
                // clean result and charge the instance with the lie.
                self.stats.vote_overrides += 1;
                self.lies[inst] += 1;
                self.suspicion[inst] = self.suspicion[inst].saturating_add(self.cfg.accuse_weight);
                ships_corrupt = false;
                if self.cfg.scrub && self.lies[inst] >= self.cfg.liar_strikes && !self.benched[inst]
                {
                    self.benched[inst] = true;
                    self.lies[inst] = 0;
                    self.streak[inst] = 0;
                    self.stats.liars_benched += 1;
                    bench = true;
                }
            }
            // Agreement ships the agreed verdict: both-clean is clean,
            // both-corrupt slips past the vote (certification's job).
        }
        if injected {
            self.stats.sdc_injected += 1;
        }
        CompletionIntegrity {
            ships_corrupt,
            bench,
        }
    }

    /// Attributes a certification failure to the instance that produced
    /// the rejected plan.
    pub fn accuse(&mut self, inst: usize) {
        self.suspicion[inst] = self.suspicion[inst].saturating_add(self.cfg.accuse_weight);
    }

    /// Decays an instance's suspicion after a clean certification:
    /// `s -= max(1, s >> decay_shift)`, monotone and terminating.
    pub fn exonerate(&mut self, inst: usize) {
        let s = self.suspicion[inst];
        if s > 0 {
            self.suspicion[inst] = s - (s >> self.cfg.decay_shift).max(1);
        }
    }

    /// Whether an instance is currently benched for scrubbing.
    pub fn is_benched(&self, inst: usize) -> bool {
        self.benched[inst]
    }

    /// Runs one known-answer scrub probe against a benched instance;
    /// returns `true` when the probe completes the clean streak and the
    /// instance is readmitted. Readmission keeps suspicion pinned at the
    /// voting threshold: a readmitted liar re-enters service *under
    /// voting* and must earn trust back through clean certifications.
    pub fn scrub_probe(&mut self, inst: usize) -> bool {
        debug_assert!(self.benched[inst], "scrub probes target benched instances");
        self.stats.scrub_probes += 1;
        if self.scrub[inst].flips_verdict() {
            self.streak[inst] = 0;
            return false;
        }
        self.streak[inst] += 1;
        if self.streak[inst] < self.cfg.scrub_clean_target {
            return false;
        }
        self.benched[inst] = false;
        self.streak[inst] = 0;
        self.suspicion[inst] = self.suspicion[inst].max(self.cfg.vote_threshold);
        self.stats.scrub_readmits += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn state(cfg: IntegrityConfig, rate: f64, hot_factor: f64) -> IntegrityState {
        IntegrityState::new(cfg, SdcPlan::uniform(rate, 77), 4, Some(0), hot_factor, 0)
    }

    #[test]
    fn undefended_state_is_inert() {
        let mut s = state(IntegrityConfig::off(), 0.5, 1.0);
        let mut injected = 0;
        for _ in 0..100 {
            assert!(!s.dispatch_vote(1));
            let c = s.completion(1, false);
            assert!(!c.bench);
            injected += u64::from(c.ships_corrupt);
        }
        assert!(injected > 0, "rate 0.5 must corrupt");
        assert_eq!(s.stats.sdc_injected, injected);
        assert_eq!(s.stats.votes, 0);
        assert_eq!(s.stats.vote_overrides, 0);
    }

    #[test]
    fn accusations_cross_the_threshold_and_decay_back() {
        let mut s = state(IntegrityConfig::full(), 0.0, 1.0);
        assert!(!s.is_suspect(2));
        s.accuse(2);
        s.accuse(2);
        assert!(s.is_suspect(2), "2 × accuse_weight reaches the threshold");
        assert!(s.dispatch_vote(2));
        for _ in 0..64 {
            s.exonerate(2);
        }
        assert_eq!(s.suspicion(2), 0);
        assert!(!s.dispatch_vote(2));
        assert_eq!(s.stats.votes, 1);
    }

    #[test]
    fn votes_mask_corruption_and_bench_liars() {
        // A mid corruption rate: high enough to strike out fast, low
        // enough that disagreeing (maskable) votes dominate the
        // both-corrupt agreements that slip past voting.
        let mut s2 = state(IntegrityConfig::full(), 0.4, 1.0);
        s2.accuse(1);
        s2.accuse(1);
        let mut benched = false;
        let mut shipped_corrupt = 0;
        for _ in 0..200 {
            let voted = s2.dispatch_vote(1);
            assert!(voted || s2.is_benched(1));
            let c = s2.completion(1, voted);
            shipped_corrupt += u64::from(c.ships_corrupt);
            if c.bench {
                benched = true;
                break;
            }
        }
        assert!(benched, "a 40%-liar under voting must strike out");
        assert_eq!(s2.stats.liars_benched, 1);
        assert!(s2.stats.vote_overrides >= s2.config().liar_strikes as u64);
        // Voting masks disagreements; only both-corrupt agreements ship.
        assert!(shipped_corrupt < s2.stats.sdc_injected);
    }

    #[test]
    fn scrub_readmits_after_the_clean_streak_and_keeps_suspicion() {
        let cfg = IntegrityConfig::full();
        let mut s = state(cfg, 0.0, 1.0);
        s.accuse(3);
        s.accuse(3);
        s.accuse(3);
        // Force a bench through the public path: three overrides need a
        // liar; with rate 0 the stream never lies, so bench directly via
        // the internal invariantly-reachable state.
        s.benched[3] = true;
        s.stats.liars_benched += 1;
        let mut probes = 0;
        while !s.scrub_probe(3) {
            probes += 1;
            assert!(probes < 100, "clean probes must readmit");
        }
        assert!(!s.is_benched(3));
        assert_eq!(s.stats.scrub_readmits, 1);
        assert_eq!(s.stats.scrub_probes, cfg.scrub_clean_target as u64);
        assert!(
            s.is_suspect(3),
            "a readmitted liar must re-enter under voting"
        );
    }

    #[test]
    fn policy_presets_differ_only_in_switches() {
        let off = IntegrityConfig::off();
        let certify = IntegrityConfig::certify_only();
        let full = IntegrityConfig::full();
        assert_eq!(off, IntegrityConfig::default());
        assert!(!off.certify && !off.vote && !off.scrub);
        assert!(certify.certify && !certify.vote && !certify.scrub);
        assert!(full.certify && full.vote && full.scrub);
        assert_eq!(off.vote_threshold, full.vote_threshold);
        assert_eq!(certify.scrub_period_us, full.scrub_period_us);
    }

    #[test]
    fn stats_merge_and_export() {
        let mut a = IntegrityStats {
            sdc_injected: 3,
            sdc_escaped: 1,
            certified: 10,
            certify_failed: 2,
            certify_ns: 5_000,
            votes: 4,
            vote_overrides: 2,
            liars_benched: 1,
            scrub_probes: 8,
            scrub_readmits: 1,
            ..IntegrityStats::default()
        };
        a.certify_hist.observe(120);
        let mut b = IntegrityStats::default();
        b.certify_hist.observe(80);
        b.merge(&a);
        assert_eq!(b.sdc_injected, 3);
        assert_eq!(b.certify_hist.count(), 2);
        assert!((a.escape_rate(10) - 0.1).abs() < 1e-12);
        assert_eq!(IntegrityStats::default().escape_rate(0), 0.0);
        let r = Registry::new();
        b.export_into("svc.integrity", &r);
        assert_eq!(r.counter_value("svc.integrity.sdc_escaped"), Some(1));
        assert_eq!(r.counter_value("svc.integrity.votes"), Some(4));
        assert_eq!(r.histogram("svc.integrity.certify_us").unwrap().count(), 2);
    }

    proptest! {
        /// The decay rule is monotone non-increasing and reaches zero in
        /// finitely many steps from any starting score.
        #[test]
        fn suspicion_decay_is_monotone_and_terminates(
            start in 0u32..1_000_000,
            shift in 0u32..8,
        ) {
            let cfg = IntegrityConfig { decay_shift: shift, ..IntegrityConfig::full() };
            let mut s = IntegrityState::new(cfg, SdcPlan::none(1), 1, None, 1.0, 0);
            s.suspicion[0] = start;
            let mut prev = start;
            let mut steps = 0u32;
            while s.suspicion(0) > 0 {
                s.exonerate(0);
                let cur = s.suspicion(0);
                prop_assert!(cur < prev, "decay must strictly shrink ({prev} -> {cur})");
                prev = cur;
                steps += 1;
                // Geometric phase (~2^shift · ln(start) steps) plus the
                // final linear -1 phase (~2^shift steps).
                prop_assert!(steps <= 10_000, "decay must terminate");
            }
            s.exonerate(0);
            prop_assert_eq!(s.suspicion(0), 0, "zero is a fixed point");
        }

        /// Scrub readmission is live: under any probe-corruption pattern
        /// with a bounded run of lies, a benched instance is eventually
        /// readmitted, and readmission never happens before
        /// `scrub_clean_target` probes.
        #[test]
        fn scrub_readmission_is_live(
            lies in proptest::collection::vec(any::<bool>(), 0..48),
            target in 1u32..6,
        ) {
            let cfg = IntegrityConfig {
                scrub_clean_target: target,
                ..IntegrityConfig::full()
            };
            let mut s = IntegrityState::new(cfg, SdcPlan::none(5), 1, None, 1.0, 0);
            s.benched[0] = true;
            let mut probes = 0u32;
            let mut readmitted = false;
            // Replay the adversarial lie pattern, then honest probes.
            for lie in lies.iter().copied().chain(std::iter::repeat(false)) {
                // Model the probe verdict directly through streak logic:
                // a lying probe resets the streak, a clean one extends it.
                probes += 1;
                s.stats.scrub_probes += 1;
                if lie {
                    s.streak[0] = 0;
                } else {
                    s.streak[0] += 1;
                    if s.streak[0] >= target {
                        readmitted = true;
                        break;
                    }
                }
                prop_assert!(probes < 48 + 8, "liveness bound exceeded");
            }
            prop_assert!(readmitted);
            prop_assert!(probes >= target, "readmission needs the full streak");
        }
    }
}
