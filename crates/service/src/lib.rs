//! A deterministic, simulated-time, multi-tenant planning **service** over
//! a pool of simulated MPAccel instances.
//!
//! The paper's premise is *realtime* motion planning: a plan must land
//! within a hard latency envelope. One resilient query (PR 1) is not a
//! realtime system — the overload regime, where many queries contend for
//! a pool of accelerators under deadline pressure, is where realtime
//! systems actually fail. This crate models that regime end to end:
//!
//! ```text
//!  tenants ──► admission ──► bounded queue ──► dispatcher ──► pool of N
//!  (arrival     control        (FIFO/EDF)        │             instances
//!   streams)    (shed on       deadline-aware    │ per-request  │
//!               overflow)                        ▼ tier choice  ▼
//!                                        degradation ladder   faults →
//!                                        (full → reduced →    retry/backoff,
//!                                         RRT → coarse RRT)   circuit breaker
//! ```
//!
//! * [`catalog`] — every (scene, query, tier) planned once, up front, so
//!   the event loop knows exact deterministic service times;
//! * [`request`] — tenants, deadlines, and per-request verdicts;
//! * [`queue`] — bounded FIFO/EDF queues with deterministic tie-breaks;
//! * [`degrade`] — the load-level controller choosing quality tiers;
//! * [`breaker`] — per-instance circuit breaking (strikes → quarantine);
//! * [`service`] — the discrete-event loop tying it all together;
//! * [`metrics`] — goodput, miss rate, exact p50/p99/p999, tier mix.
//!
//! One shard is still one blast radius, so the service scales out into a
//! sharded fleet:
//!
//! * [`ring`] — consistent-hash ring with bounded-load
//!   power-of-two-choices spill (minimal key movement on shard death);
//! * [`tenant`] — per-tenant token-bucket admission and weighted fair
//!   queueing, so one abusive tenant degrades only itself;
//! * [`fleet`] — N shards under seeded shard-failure chaos
//!   (`mp_sim::fault::ShardFaultPlan`): crash failover with re-enqueue
//!   budgets, rejoin catch-up throttling, and deadline-aware hedged
//!   requests with first-response-wins cancellation.
//!
//! Every run is a pure function of its configuration: seeded arrival
//! streams (`mp_sim::arrival`), seeded per-instance fault injectors
//! (`mp_sim::fault`), and integer-nanosecond virtual time
//! (`mp_sim::vtime`) make campaigns byte-identical on any machine and at
//! any `MPACCEL_THREADS` setting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod catalog;
pub mod degrade;
pub mod fleet;
pub mod integrity;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod ring;
pub mod service;
pub mod tenant;

pub use breaker::BreakerConfig;
pub use catalog::{CatalogEntry, PlanCatalog};
pub use degrade::DegradeConfig;
pub use fleet::{run_fleet, run_fleet_traced, FailoverConfig, FleetConfig, HedgeConfig};
pub use integrity::{IntegrityConfig, IntegrityState, IntegrityStats};
pub use metrics::{FleetSummary, ServiceSummary, ShardStats, TenantStats};
pub use queue::{QueuePolicy, RequestQueue};
pub use request::{Request, ShedReason, TenantSpec, Verdict};
pub use ring::HashRing;
pub use service::{run_service, run_service_traced, FaultProfile, RetryConfig, ServiceConfig};
pub use tenant::{FairQueue, TenantPolicy, TokenBucket};
