//! Service-level metrics: goodput, deadline-miss rate, exact latency
//! percentiles, tier mix, and the resilience counters.

use mp_planner::QualityTier;
use mp_sim::fault::ResilienceCounters;
use mp_sim::vtime::VirtualNs;
use mp_telemetry::{HistSnapshot, Registry};

use crate::integrity::IntegrityStats;

/// The aggregate outcome of one service run.
#[derive(Clone, Debug, Default)]
pub struct ServiceSummary {
    /// Length of the arrival window (virtual ns). Completions may land
    /// after it (the run drains), but rates are per arrival-window second.
    pub duration_ns: VirtualNs,
    /// Instances in the pool.
    pub instances: usize,
    /// Requests offered by all tenants.
    pub offered: u64,
    /// Served with a plan before the deadline (the goodput numerator).
    pub on_time: u64,
    /// Served with a plan after the deadline.
    pub late: u64,
    /// Shed on arrival: bounded queue full.
    pub shed_queue_full: u64,
    /// Shed at dispatch: no tier could meet the deadline.
    pub shed_hopeless: u64,
    /// Shed by per-tenant token-bucket admission (fleet runs only).
    pub shed_throttled: u64,
    /// Lost to a shard death with failover off or exhausted (fleet runs
    /// only).
    pub shed_shard_lost: u64,
    /// Abandoned after the fault-retry budget ran out.
    pub failed_faults: u64,
    /// Every allowed tier exhausted its budget without a path.
    pub unsolved: u64,
    /// Fault-triggered re-dispatches (retry-with-backoff).
    pub retries: u64,
    /// Ladder step-downs after a tier ran to budget exhaustion.
    pub tier_stepdowns: u64,
    /// Circuit-breaker quarantine episodes.
    pub quarantines: u64,
    /// Completions (on-time + late) by serving tier.
    pub tier_served: [u64; QualityTier::COUNT],
    /// Dynamic CD datapath energy spent by the *winning* attempt of each
    /// completed request (pJ), from the plan catalog's counter-delta
    /// attribution. Non-winning attempts (faulted dispatches, tier
    /// step-downs, certify-rejected replans, losing hedge copies) land in
    /// `wasted_energy_pj` instead.
    pub energy_pj: f64,
    /// Energy spent by serving tier (pJ); sums to `energy_pj`.
    pub tier_energy_pj: [f64; QualityTier::COUNT],
    /// Energy spent on work whose result was discarded (pJ): fault-retry
    /// attempts that were re-dispatched, and hedge copies that lost the
    /// race (fleet runs only). Counted *in addition to* `energy_pj`.
    pub wasted_energy_pj: f64,
    /// Energy the ladder avoided by serving below full quality (pJ):
    /// Σ over degraded completions of (what the same key costs at the
    /// full tier − what the serving tier spent). The degradation story
    /// in joules.
    pub degraded_saved_pj: f64,
    /// Completions that breached the per-plan energy budget (0 when no
    /// budget is configured).
    pub energy_breaches: u64,
    /// Total busy time across the pool (ns).
    pub busy_ns: u64,
    /// Merged fault-injection / recovery counters.
    pub resilience: ResilienceCounters,
    /// Integrity-pipeline counters (SDC injection/escape, certification,
    /// voting, scrub) and the certification-cost histogram.
    pub integrity: IntegrityStats,
    /// Arrival-to-completion latencies of served requests (ns), stored as
    /// a telemetry histogram (raw samples kept sorted, so percentiles stay
    /// exact nearest-rank).
    latency_hist: HistSnapshot,
}

impl ServiceSummary {
    /// An empty summary for a run of the given shape.
    pub fn for_run(duration_ns: VirtualNs, instances: usize, offered: u64) -> ServiceSummary {
        ServiceSummary {
            duration_ns,
            instances,
            offered,
            ..ServiceSummary::default()
        }
    }

    /// Stores and sorts the served-request latencies.
    pub fn set_latencies(&mut self, mut latencies_ns: Vec<VirtualNs>) {
        latencies_ns.sort_unstable();
        let mut hist = HistSnapshot::new();
        hist.observe_all(&latencies_ns);
        self.latency_hist = hist;
    }

    /// The served-latency distribution (ns).
    pub fn latency_histogram(&self) -> &HistSnapshot {
        &self.latency_hist
    }

    /// Requests served with a plan (on time or late).
    pub fn completed(&self) -> u64 {
        self.on_time + self.late
    }

    /// On-time completions per arrival-window second.
    pub fn goodput_rps(&self) -> f64 {
        self.on_time as f64 / (self.duration_ns as f64 * 1e-9).max(1e-12)
    }

    /// Fraction of offered requests that did not complete on time (late,
    /// shed, failed, or unsolved).
    pub fn miss_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        1.0 - self.on_time as f64 / self.offered as f64
    }

    /// Exact nearest-rank percentile of served latency, in µs (`q` in
    /// `0..=1`). `None` when nothing was served.
    pub fn latency_percentile_us(&self, q: f64) -> Option<f64> {
        self.latency_hist
            .percentile(q)
            .map(|ns| ns as f64 / 1_000.0)
    }

    /// Median served latency (µs); 0 when nothing was served.
    pub fn p50_us(&self) -> f64 {
        self.latency_percentile_us(0.50).unwrap_or(0.0)
    }

    /// 99th-percentile served latency (µs); 0 when nothing was served.
    pub fn p99_us(&self) -> f64 {
        self.latency_percentile_us(0.99).unwrap_or(0.0)
    }

    /// 99.9th-percentile served latency (µs); 0 when nothing was served.
    pub fn p999_us(&self) -> f64 {
        self.latency_percentile_us(0.999).unwrap_or(0.0)
    }

    /// Pool utilization over the arrival window (busy time / capacity;
    /// can exceed 1 when the run drains a backlog past the window).
    pub fn utilization(&self) -> f64 {
        self.busy_ns as f64 / (self.duration_ns as f64 * self.instances.max(1) as f64).max(1.0)
    }

    /// Compact `full/reduced/fallback/coarse` tier-mix cell.
    pub fn tier_mix(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.tier_served[0], self.tier_served[1], self.tier_served[2], self.tier_served[3]
        )
    }

    /// Total shed requests.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_hopeless + self.shed_throttled + self.shed_shard_lost
    }

    /// Mean dynamic CD energy per completed request (pJ); 0 when nothing
    /// completed. Retried attempts are billed to the request, so this is
    /// joules-per-delivered-plan, not joules-per-attempt.
    pub fn energy_per_plan_pj(&self) -> f64 {
        if self.completed() == 0 {
            return 0.0;
        }
        self.energy_pj / self.completed() as f64
    }

    /// Mean energy per completion served at `tier` (pJ); 0 when the tier
    /// served nothing.
    pub fn tier_energy_per_plan_pj(&self, tier: QualityTier) -> f64 {
        let served = self.tier_served[tier.index()];
        if served == 0 {
            return 0.0;
        }
        self.tier_energy_pj[tier.index()] / served as f64
    }

    /// Fraction of all energy spent (useful + wasted) that produced no
    /// delivered plan; 0 when no energy was spent.
    pub fn wasted_energy_frac(&self) -> f64 {
        let total = self.energy_pj + self.wasted_energy_pj;
        if total <= 0.0 {
            return 0.0;
        }
        self.wasted_energy_pj / total
    }

    /// Average power the planning datapath drew over the arrival window
    /// (µW): total energy (useful + wasted) over virtual wall time. pJ/µs
    /// is exactly µW, so this is `Σ pJ / (duration in µs)`.
    pub fn mean_power_uw(&self) -> f64 {
        let duration_us = self.duration_ns as f64 / 1_000.0;
        (self.energy_pj + self.wasted_energy_pj) / duration_us.max(1e-12)
    }

    /// Exports the whole summary — counts, rates, the latency histogram,
    /// and the merged resilience counters — into a telemetry registry
    /// under `<prefix>.<field>` names.
    pub fn export_into(&self, prefix: &str, registry: &Registry) {
        registry.set_counter(&format!("{prefix}.offered"), self.offered);
        registry.set_counter(&format!("{prefix}.on_time"), self.on_time);
        registry.set_counter(&format!("{prefix}.late"), self.late);
        registry.set_counter(&format!("{prefix}.shed_queue_full"), self.shed_queue_full);
        registry.set_counter(&format!("{prefix}.shed_hopeless"), self.shed_hopeless);
        registry.set_counter(&format!("{prefix}.shed_throttled"), self.shed_throttled);
        registry.set_counter(&format!("{prefix}.shed_shard_lost"), self.shed_shard_lost);
        registry.set_counter(&format!("{prefix}.failed_faults"), self.failed_faults);
        registry.set_counter(&format!("{prefix}.unsolved"), self.unsolved);
        registry.set_counter(&format!("{prefix}.retries"), self.retries);
        registry.set_counter(&format!("{prefix}.tier_stepdowns"), self.tier_stepdowns);
        registry.set_counter(&format!("{prefix}.quarantines"), self.quarantines);
        for tier in QualityTier::LADDER {
            registry.set_counter(
                &format!("{prefix}.served.{}", tier.label()),
                self.tier_served[tier.index()],
            );
        }
        registry.set_counter(&format!("{prefix}.busy_ns"), self.busy_ns);
        registry.set_gauge(&format!("{prefix}.energy_pj"), self.energy_pj);
        for tier in QualityTier::LADDER {
            registry.set_gauge(
                &format!("{prefix}.energy_pj.{}", tier.label()),
                self.tier_energy_pj[tier.index()],
            );
        }
        registry.set_gauge(
            &format!("{prefix}.energy_per_plan_pj"),
            self.energy_per_plan_pj(),
        );
        registry.set_gauge(&format!("{prefix}.wasted_energy_pj"), self.wasted_energy_pj);
        registry.set_gauge(
            &format!("{prefix}.degraded_saved_pj"),
            self.degraded_saved_pj,
        );
        registry.set_counter(&format!("{prefix}.energy_breaches"), self.energy_breaches);
        registry.set_gauge(&format!("{prefix}.mean_power_uw"), self.mean_power_uw());
        registry.set_gauge(&format!("{prefix}.goodput_rps"), self.goodput_rps());
        registry.set_gauge(&format!("{prefix}.miss_rate"), self.miss_rate());
        registry.set_gauge(&format!("{prefix}.utilization"), self.utilization());
        registry.observe_hist(&format!("{prefix}.latency_ns"), &self.latency_hist);
        self.resilience
            .export_into(&format!("{prefix}.resilience"), registry);
        self.integrity
            .export_into(&format!("{prefix}.integrity"), registry);
    }

    /// Unsafe-plan escape rate: silently corrupted plans shipped per
    /// completed request.
    pub fn escape_rate(&self) -> f64 {
        self.integrity.escape_rate(self.completed())
    }

    /// Mean certification overhead per completed request (µs).
    pub fn certify_overhead_us(&self) -> f64 {
        if self.completed() == 0 {
            return 0.0;
        }
        self.integrity.certify_ns as f64 / 1_000.0 / self.completed() as f64
    }
}

/// Per-shard outcome of a fleet run. `offered` counts enqueued request
/// *copies* (retries, failovers, and hedges land on a shard again), so the
/// shard columns can sum to more than the fleet's offered requests.
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Request copies enqueued on this shard.
    pub offered: u64,
    /// Completions (on-time + late) this shard produced.
    pub served: u64,
    /// On-time completions this shard produced.
    pub on_time: u64,
    /// Copies shed while assigned here (queue full / hopeless / lost).
    pub sheds: u64,
    /// Crash episodes this shard suffered.
    pub kills: u32,
    /// Busy time across the shard's instances (ns), summed across crash
    /// epochs.
    pub busy_ns: u64,
    /// Dynamic CD energy this shard's completions spent (pJ), including
    /// hedge copies that lost (the shard did the work either way).
    pub energy_pj: f64,
    /// Circuit-breaker quarantines on this shard's instances.
    pub quarantines: u64,
    /// Latencies of requests this shard completed (ns).
    latency_hist: HistSnapshot,
}

impl ShardStats {
    /// Stores and sorts this shard's served-request latencies.
    pub fn set_latencies(&mut self, mut latencies_ns: Vec<VirtualNs>) {
        latencies_ns.sort_unstable();
        let mut hist = HistSnapshot::new();
        hist.observe_all(&latencies_ns);
        self.latency_hist = hist;
    }

    /// 99.9th-percentile latency this shard served (µs); 0 when idle.
    pub fn p999_us(&self) -> f64 {
        self.latency_hist
            .percentile(0.999)
            .map(|ns| ns as f64 / 1_000.0)
            .unwrap_or(0.0)
    }
}

/// Per-tenant outcome of a fleet run (each request belongs to exactly one
/// tenant, so tenant rows sum to the fleet totals).
#[derive(Clone, Debug, Default)]
pub struct TenantStats {
    /// Tenant label from its [`crate::request::TenantSpec`].
    pub label: &'static str,
    /// Arrival-window length (ns), for rate denominators.
    pub duration_ns: VirtualNs,
    /// Requests this tenant offered.
    pub offered: u64,
    /// Served before the deadline.
    pub on_time: u64,
    /// Served after the deadline.
    pub late: u64,
    /// Shed (queue full, hopeless, or shard lost).
    pub shed: u64,
    /// Rejected by the tenant's token bucket.
    pub throttled: u64,
    /// Dynamic CD energy this tenant's completed requests spent (pJ) —
    /// the chargeback figure for per-tenant energy billing.
    pub energy_pj: f64,
    /// Latencies of this tenant's served requests (ns).
    latency_hist: HistSnapshot,
}

impl TenantStats {
    /// An empty breakdown for `label` over an arrival window.
    pub fn new(label: &'static str, duration_ns: VirtualNs) -> TenantStats {
        TenantStats {
            label,
            duration_ns,
            ..TenantStats::default()
        }
    }

    /// Stores and sorts this tenant's served-request latencies.
    pub fn set_latencies(&mut self, mut latencies_ns: Vec<VirtualNs>) {
        latencies_ns.sort_unstable();
        let mut hist = HistSnapshot::new();
        hist.observe_all(&latencies_ns);
        self.latency_hist = hist;
    }

    /// On-time completions per arrival-window second.
    pub fn goodput_rps(&self) -> f64 {
        self.on_time as f64 / (self.duration_ns as f64 * 1e-9).max(1e-12)
    }

    /// Fraction of offered requests that did not complete on time.
    pub fn miss_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        1.0 - self.on_time as f64 / self.offered as f64
    }

    /// 99.9th-percentile served latency (µs); 0 when nothing was served.
    pub fn p999_us(&self) -> f64 {
        self.latency_hist
            .percentile(0.999)
            .map(|ns| ns as f64 / 1_000.0)
            .unwrap_or(0.0)
    }

    /// Mean energy per completed request (pJ); 0 when nothing was served.
    pub fn energy_per_plan_pj(&self) -> f64 {
        let served = self.on_time + self.late;
        if served == 0 {
            return 0.0;
        }
        self.energy_pj / served as f64
    }
}

/// The outcome of one sharded-fleet run: fleet-wide aggregates (in the
/// same shape as a single-shard run) plus per-shard and per-tenant
/// breakdowns and the fleet-only robustness counters.
#[derive(Clone, Debug, Default)]
pub struct FleetSummary {
    /// Fleet-wide aggregates; `instances` is the total across shards.
    pub fleet: ServiceSummary,
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Per-tenant breakdown, in tenant order.
    pub tenants: Vec<TenantStats>,
    /// Shard crash episodes that actually took a live shard down.
    pub shard_kills: u64,
    /// Request copies re-routed off a dead shard by failover.
    pub rerouted: u64,
    /// Requests lost to shard deaths (failover off or budget exhausted).
    pub lost_to_shards: u64,
    /// Hedge duplicates enqueued on a second shard.
    pub hedges_fired: u64,
    /// Requests whose winning completion came from the hedge shard.
    pub hedge_wins: u64,
    /// Hedge copies that completed after the request was already resolved.
    pub hedge_wasted: u64,
    /// Arrivals routed off their primary shard by the bounded-load rule.
    pub spills: u64,
}

impl FleetSummary {
    /// Cross-shard load imbalance: max over mean of per-shard offered
    /// copies (1.0 = perfectly even; 0 when nothing was offered).
    pub fn imbalance(&self) -> f64 {
        let max = self.shards.iter().map(|s| s.offered).max().unwrap_or(0);
        let sum: u64 = self.shards.iter().map(|s| s.offered).sum();
        if sum == 0 || self.shards.is_empty() {
            return 0.0;
        }
        max as f64 * self.shards.len() as f64 / sum as f64
    }

    /// Exports fleet aggregates, robustness counters, and the per-shard /
    /// per-tenant breakdowns into a telemetry registry.
    pub fn export_into(&self, prefix: &str, registry: &Registry) {
        self.fleet.export_into(prefix, registry);
        registry.set_counter(&format!("{prefix}.shard_kills"), self.shard_kills);
        registry.set_counter(&format!("{prefix}.rerouted"), self.rerouted);
        registry.set_counter(&format!("{prefix}.lost_to_shards"), self.lost_to_shards);
        registry.set_counter(&format!("{prefix}.hedges_fired"), self.hedges_fired);
        registry.set_counter(&format!("{prefix}.hedge_wins"), self.hedge_wins);
        registry.set_counter(&format!("{prefix}.hedge_wasted"), self.hedge_wasted);
        registry.set_counter(&format!("{prefix}.spills"), self.spills);
        registry.set_gauge(&format!("{prefix}.imbalance"), self.imbalance());
        for (i, s) in self.shards.iter().enumerate() {
            let p = format!("{prefix}.shard.{i:02}");
            registry.set_counter(&format!("{p}.offered"), s.offered);
            registry.set_counter(&format!("{p}.on_time"), s.on_time);
            registry.set_counter(&format!("{p}.sheds"), s.sheds);
            registry.set_counter(&format!("{p}.kills"), s.kills as u64);
            registry.set_gauge(&format!("{p}.energy_pj"), s.energy_pj);
            registry.set_gauge(&format!("{p}.p999_us"), s.p999_us());
        }
        for t in &self.tenants {
            let p = format!("{prefix}.tenant.{}", t.label);
            registry.set_counter(&format!("{p}.offered"), t.offered);
            registry.set_counter(&format!("{p}.on_time"), t.on_time);
            registry.set_counter(&format!("{p}.throttled"), t.throttled);
            registry.set_gauge(&format!("{p}.energy_pj"), t.energy_pj);
            registry.set_gauge(&format!("{p}.energy_per_plan_pj"), t.energy_per_plan_pj());
            registry.set_gauge(&format!("{p}.goodput_rps"), t.goodput_rps());
            registry.set_gauge(&format!("{p}.miss_rate"), t.miss_rate());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut s = ServiceSummary {
            duration_ns: 1_000_000_000,
            offered: 100,
            on_time: 4,
            ..ServiceSummary::default()
        };
        s.set_latencies(vec![4_000, 1_000, 3_000, 2_000]);
        assert_eq!(s.latency_percentile_us(0.50), Some(2.0));
        assert_eq!(s.latency_percentile_us(0.99), Some(4.0));
        assert_eq!(s.latency_percentile_us(0.001), Some(1.0));
        assert_eq!(s.p50_us(), 2.0);
        assert_eq!(s.latency_histogram().count(), 4);
    }

    #[test]
    fn export_into_registry_round_trips() {
        let mut s = ServiceSummary {
            duration_ns: 1_000_000_000,
            offered: 10,
            on_time: 8,
            late: 1,
            ..ServiceSummary::default()
        };
        s.tier_served[0] = 9;
        s.energy_pj = 1_800.0;
        s.tier_energy_pj[0] = 1_800.0;
        s.set_latencies(vec![5_000; 9]);
        let r = Registry::new();
        s.export_into("service", &r);
        assert_eq!(r.counter_value("service.on_time"), Some(8));
        assert_eq!(r.gauge_value("service.energy_pj"), Some(1_800.0));
        assert_eq!(r.gauge_value("service.energy_pj.full"), Some(1_800.0));
        assert_eq!(r.gauge_value("service.energy_per_plan_pj"), Some(200.0));
        assert_eq!(r.counter_value("service.energy_breaches"), Some(0));
        assert_eq!(r.counter_value("service.served.full"), Some(9));
        assert_eq!(r.gauge_value("service.goodput_rps"), Some(8.0));
        let h = r.histogram("service.latency_ns").unwrap();
        assert_eq!(h.count(), 9);
        assert_eq!(h.percentile(0.99), Some(5_000));
        assert_eq!(r.counter_value("service.resilience.queries"), Some(0));
        assert_eq!(r.counter_value("service.integrity.sdc_escaped"), Some(0));
    }

    #[test]
    fn integrity_rates_follow_the_counts() {
        let mut s = ServiceSummary {
            duration_ns: 1_000_000_000,
            offered: 100,
            on_time: 40,
            late: 10,
            ..ServiceSummary::default()
        };
        s.integrity.sdc_escaped = 5;
        s.integrity.certify_ns = 50_000_000;
        assert!((s.escape_rate() - 0.1).abs() < 1e-12);
        assert!((s.certify_overhead_us() - 1_000.0).abs() < 1e-9);
        assert_eq!(ServiceSummary::default().escape_rate(), 0.0);
        assert_eq!(ServiceSummary::default().certify_overhead_us(), 0.0);
    }

    #[test]
    fn rates_follow_the_counts() {
        let s = ServiceSummary {
            duration_ns: 500_000_000, // 0.5 s
            offered: 200,
            on_time: 150,
            late: 10,
            shed_queue_full: 30,
            shed_hopeless: 5,
            failed_faults: 3,
            unsolved: 2,
            instances: 2,
            busy_ns: 600_000_000,
            ..ServiceSummary::default()
        };
        assert_eq!(s.completed(), 160);
        assert_eq!(s.shed(), 35);
        assert!((s.goodput_rps() - 300.0).abs() < 1e-9);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert!((s.utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn energy_rates_follow_the_counts() {
        let mut s = ServiceSummary {
            duration_ns: 2_000_000_000, // 2 s = 2e6 µs
            offered: 20,
            on_time: 8,
            late: 2,
            energy_pj: 4_000.0,
            wasted_energy_pj: 1_000.0,
            ..ServiceSummary::default()
        };
        s.tier_served[1] = 4;
        s.tier_energy_pj[1] = 1_200.0;
        assert!((s.energy_per_plan_pj() - 400.0).abs() < 1e-12);
        assert!((s.tier_energy_per_plan_pj(QualityTier::Reduced) - 300.0).abs() < 1e-12);
        assert_eq!(s.tier_energy_per_plan_pj(QualityTier::Coarse), 0.0);
        assert!((s.wasted_energy_frac() - 0.2).abs() < 1e-12);
        // 5 000 pJ over 2e6 µs = 2.5e-3 µW.
        assert!((s.mean_power_uw() - 2.5e-3).abs() < 1e-15);
        let empty = ServiceSummary::default();
        assert_eq!(empty.energy_per_plan_pj(), 0.0);
        assert_eq!(empty.wasted_energy_frac(), 0.0);
    }

    #[test]
    fn set_latencies_overwrites_previous_samples() {
        let mut s = ServiceSummary::default();
        s.set_latencies(vec![1_000]);
        s.set_latencies(vec![2_000, 3_000]);
        assert_eq!(s.latency_histogram().count(), 2);
        assert_eq!(s.latency_percentile_us(1.0), Some(3.0));
    }

    #[test]
    fn empty_run_is_well_defined() {
        let s = ServiceSummary::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.latency_percentile_us(0.5), None);
        assert_eq!(s.p999_us(), 0.0);
    }
}
