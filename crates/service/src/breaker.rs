//! Circuit breaker: quarantine a persistently faulty instance.
//!
//! The per-instance strike streak lives in
//! [`AcceleratorPool`](mpaccel_core::pool::AcceleratorPool); this module
//! owns the *policy*: how many consecutive faulted dispatches trip the
//! breaker and how long the instance sits out. While quarantined, the
//! dispatcher simply never acquires the instance, so its load
//! redistributes to the healthy ones; on expiry it re-enters on probation
//! (one more streak re-trips it). The breaker never quarantines the last
//! healthy instance — a degraded pool beats a dead service.

use mp_sim::vtime::{VirtualNs, NS_PER_US};
use mpaccel_core::pool::AcceleratorPool;

/// Circuit-breaker policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive faulted dispatches on one instance that trip the
    /// breaker.
    pub strike_threshold: u32,
    /// Quarantine duration in microseconds.
    pub cooldown_us: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            strike_threshold: 3,
            cooldown_us: 5_000,
        }
    }
}

impl BreakerConfig {
    /// Records a faulted dispatch on `inst` and quarantines it when the
    /// streak reaches the threshold (unless it is the last healthy
    /// instance). Returns the quarantine expiry when the breaker tripped.
    pub fn on_fault(
        &self,
        pool: &mut AcceleratorPool,
        inst: usize,
        now: VirtualNs,
    ) -> Option<VirtualNs> {
        let streak = pool.record_fault(inst);
        if streak >= self.strike_threshold && pool.healthy(now) > 1 {
            let until = now + self.cooldown_us * NS_PER_US;
            pool.quarantine(inst, until);
            Some(until)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_strikes() {
        let cfg = BreakerConfig {
            strike_threshold: 3,
            cooldown_us: 100,
        };
        let mut pool = AcceleratorPool::new(2);
        assert_eq!(cfg.on_fault(&mut pool, 0, 0), None);
        assert_eq!(cfg.on_fault(&mut pool, 0, 10), None);
        assert_eq!(cfg.on_fault(&mut pool, 0, 20), Some(20 + 100_000));
        assert!(pool.is_quarantined(0, 21));
        assert!(!pool.is_quarantined(0, 20 + 100_000));
    }

    #[test]
    fn success_between_faults_resets_the_streak() {
        let cfg = BreakerConfig::default();
        let mut pool = AcceleratorPool::new(2);
        cfg.on_fault(&mut pool, 1, 0);
        cfg.on_fault(&mut pool, 1, 1);
        pool.record_success(1);
        assert_eq!(cfg.on_fault(&mut pool, 1, 2), None, "streak was reset");
    }

    #[test]
    fn never_quarantines_the_last_healthy_instance() {
        let cfg = BreakerConfig {
            strike_threshold: 1,
            cooldown_us: 1_000,
        };
        let mut pool = AcceleratorPool::new(2);
        assert!(cfg.on_fault(&mut pool, 0, 0).is_some());
        // Instance 1 is now the last healthy one: it may strike forever
        // but stays in service.
        for t in 0..10 {
            assert_eq!(cfg.on_fault(&mut pool, 1, t), None);
        }
        assert_eq!(pool.healthy(5), 1);
    }
}
