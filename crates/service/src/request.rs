//! Requests, tenants, and the verdicts the service hands back.

use mp_planner::QualityTier;
use mp_sim::arrival::ArrivalProcess;
use mp_sim::vtime::VirtualNs;

/// A tenant's traffic contract: an arrival stream plus a per-request
/// deadline. Every request inherits its tenant's deadline relative to its
/// arrival time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantSpec {
    /// Tenant label (reported in per-tenant breakdowns).
    pub label: &'static str,
    /// The tenant's open-loop arrival process.
    pub process: ArrivalProcess,
    /// Relative deadline in microseconds from arrival.
    pub deadline_us: u64,
}

/// Why a request was shed by admission control or the dispatcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was full on arrival (backpressure).
    QueueFull,
    /// At dispatch no tier could finish before the deadline; running it
    /// would only burn an instance on a guaranteed miss.
    Hopeless,
    /// Per-tenant token-bucket admission rejected it (fleet fairness).
    Throttled,
    /// Its shard died with the request queued or in flight, and failover
    /// was off or exhausted (fleet chaos).
    ShardLost,
}

/// The final disposition of one request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Verdict {
    /// Served with a collision-free plan before its deadline.
    OnTime {
        /// Tier that served it.
        tier: QualityTier,
        /// Arrival-to-completion latency (ns).
        latency_ns: VirtualNs,
    },
    /// Served with a plan, but after the deadline passed.
    Late {
        /// Tier that served it.
        tier: QualityTier,
        /// Arrival-to-completion latency (ns).
        latency_ns: VirtualNs,
    },
    /// Dropped without service.
    Shed(ShedReason),
    /// Retry budget exhausted by repeated injected faults.
    FailedFaults,
    /// Every allowed tier ran to budget exhaustion without a path.
    Unsolved,
}

impl Verdict {
    /// Whether the request counts toward goodput (served, with a plan,
    /// before its deadline).
    pub fn is_goodput(&self) -> bool {
        matches!(self, Verdict::OnTime { .. })
    }

    /// Whether the request counts as a deadline miss (everything that is
    /// not an on-time completion: late, shed, failed, unsolved).
    pub fn is_miss(&self) -> bool {
        !self.is_goodput()
    }
}

/// One planning request flowing through the service.
#[derive(Clone, Debug)]
pub struct Request {
    /// Tenant index into the campaign's tenant list.
    pub tenant: usize,
    /// Arrival timestamp (virtual ns).
    pub arrival_ns: VirtualNs,
    /// Absolute deadline (virtual ns).
    pub deadline_ns: VirtualNs,
    /// Catalog key identifying the (scene, query) this request plans.
    pub key: usize,
    /// Dispatch attempts so far (fault retries re-dispatch).
    pub attempts: u32,
    /// Lowest ladder index this request may still be served at: raised
    /// when a tier runs to budget exhaustion without a path, so the next
    /// attempt steps down instead of repeating the failed tier.
    pub tier_floor: usize,
    /// Final verdict, once resolved.
    pub verdict: Option<Verdict>,
}

impl Request {
    /// Remaining slack before the deadline at `now` (zero if passed).
    pub fn slack_ns(&self, now: VirtualNs) -> VirtualNs {
        self.deadline_ns.saturating_sub(now)
    }
}
