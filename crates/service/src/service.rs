//! The deterministic simulated-time planning service event loop.
//!
//! One run is a single-threaded discrete-event simulation (parallelism
//! lives in campaign sweeps *around* runs and in the catalog build, both
//! order-collected): tenants' pregenerated arrival streams feed an
//! admission-controlled, bounded, deadline-aware queue; a dispatcher moves
//! requests onto the first idle healthy instance of an
//! [`AcceleratorPool`]; per-instance [`FaultInjector`]s strike dispatches,
//! which retry with exponential backoff until the circuit breaker
//! quarantines a persistently faulty instance; and a load-level controller
//! steps congested traffic down the quality ladder instead of missing
//! deadlines. Every random draw is seeded from the run configuration, so
//! a run is a pure function of `(catalog, tenants, duration, config)`.

use mp_planner::QualityTier;
use mp_sim::fault::{FaultInjector, FaultKind, FaultPlan, SdcPlan};
use mp_sim::vtime::{EventQueue, VirtualNs, NS_PER_US};
use mp_telemetry::{self as telemetry, arg1, arg2, ArgValue, Lane};
use mpaccel_core::pool::AcceleratorPool;

use crate::breaker::BreakerConfig;
use crate::catalog::PlanCatalog;
use crate::degrade::DegradeConfig;
use crate::integrity::{IntegrityConfig, IntegrityState};
use crate::metrics::ServiceSummary;
use crate::queue::{QueuePolicy, RequestQueue};
use crate::request::{Request, ShedReason, TenantSpec, Verdict};

/// Retry-with-backoff policy for faulted dispatches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryConfig {
    /// Re-dispatches allowed after the first attempt.
    pub max_retries: u32,
    /// Base backoff in microseconds; doubles per attempt.
    pub backoff_us: u64,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            max_retries: 3,
            backoff_us: 50,
        }
    }
}

/// Fault environment for a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProfile {
    /// Per-kind fault probability per dispatch (see
    /// [`FaultKind::ALL`]; a dispatch rolls every kind).
    pub rate_per_kind: f64,
    /// Instance with an elevated fault rate (the "lemon"), exercising the
    /// circuit breaker.
    pub lemon: Option<usize>,
    /// Rate multiplier for the lemon instance.
    pub lemon_factor: f64,
    /// Service-time multiplier for [`FaultKind::SlowUnit`] faults (the
    /// dispatch completes correctly, just slower).
    pub slow_factor: u64,
    /// Probability a clean, solved completion silently returns a
    /// corrupted (unsafe) plan — the SDC hazard no detection layer sees.
    pub sdc_rate: f64,
    /// Instance with an elevated silent-corruption rate (the "hot lane").
    pub sdc_hot: Option<usize>,
    /// Rate multiplier for the hot instance.
    pub sdc_hot_factor: f64,
}

impl FaultProfile {
    /// A fault-free environment.
    pub fn none() -> FaultProfile {
        FaultProfile {
            rate_per_kind: 0.0,
            lemon: None,
            lemon_factor: 1.0,
            slow_factor: 4,
            sdc_rate: 0.0,
            sdc_hot: None,
            sdc_hot_factor: 1.0,
        }
    }

    /// A uniform fault rate with one lemon instance at `lemon_factor`×
    /// that rate.
    pub fn with_lemon(rate_per_kind: f64, lemon: usize, lemon_factor: f64) -> FaultProfile {
        FaultProfile {
            lemon: Some(lemon),
            lemon_factor,
            rate_per_kind,
            ..FaultProfile::none()
        }
    }

    /// Adds silent data corruption: `rate` per clean completion, with
    /// `hot` (if any) corrupting at `hot_factor`× that rate.
    pub fn with_sdc(mut self, rate: f64, hot: Option<usize>, hot_factor: f64) -> FaultProfile {
        self.sdc_rate = rate;
        self.sdc_hot = hot;
        self.sdc_hot_factor = hot_factor;
        self
    }
}

/// Full configuration of one service run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceConfig {
    /// Simulated MPAccel instances in the pool.
    pub instances: usize,
    /// Queue discipline.
    pub policy: QueuePolicy,
    /// Admission control: bounded queue with shedding, plus hopeless-miss
    /// shedding at dispatch. Off reproduces the naive unbounded baseline.
    pub admission: bool,
    /// Queue capacity when admission control is on.
    pub queue_capacity: usize,
    /// Graceful-degradation controller.
    pub degrade: DegradeConfig,
    /// Fault-retry policy.
    pub retry: RetryConfig,
    /// Circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// Fault environment.
    pub faults: FaultProfile,
    /// Integrity pipeline (certification / voting / scrub); off by
    /// default.
    pub integrity: IntegrityConfig,
    /// Per-plan dynamic-energy budget (pJ): a completion whose winning
    /// attempt spent more raises an `energy_budget_breach` incident and
    /// counts in [`ServiceSummary::energy_breaches`]. `None` (the
    /// default) disables the check entirely, so existing runs are
    /// byte-identical.
    pub energy_budget_pj_per_plan: Option<f64>,
    /// Run seed (fault streams, request→query assignment).
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            instances: 4,
            policy: QueuePolicy::Edf,
            admission: true,
            queue_capacity: 64,
            degrade: DegradeConfig::default(),
            retry: RetryConfig::default(),
            breaker: BreakerConfig::default(),
            faults: FaultProfile::none(),
            integrity: IntegrityConfig::off(),
            energy_budget_pj_per_plan: None,
            seed: 0,
        }
    }
}

enum Event {
    /// A request arrives (or re-enters the queue after backoff or a tier
    /// step-down).
    Enqueue(usize),
    /// Instance `inst` finishes the dispatch of request `req`.
    Complete { inst: usize, req: usize },
    /// Re-run the dispatcher (quarantine expiry / busy instance freed).
    Wake,
    /// Run one known-answer scrub probe against a benched instance.
    Scrub { inst: usize },
}

/// Bench horizon for integrity quarantines: far enough that only a scrub
/// readmission brings the instance back, finite so pool arithmetic never
/// overflows.
pub(crate) const BENCH_HORIZON_NS: VirtualNs = VirtualNs::MAX / 4;

pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) fn us_to_ns(us: f64) -> VirtualNs {
    (us * NS_PER_US as f64).round().max(1.0) as VirtualNs
}

/// Exact service time (ns) of catalog `key` at ladder index `tier_idx`,
/// before any fault slowdown.
pub(crate) fn service_time_ns(catalog: &PlanCatalog, key: usize, tier_idx: usize) -> VirtualNs {
    us_to_ns(
        catalog
            .entry(key, QualityTier::from_index(tier_idx))
            .modeled_us,
    )
}

/// The dispatcher's tier decision for one request, shared verbatim by the
/// single-shard loop and the fleet shards: the congestion controller's
/// base tier, raised to the request's floor from failed attempts, then
/// stepped down the ladder until the tier fits the remaining slack.
/// `None` means no admissible tier fits (the hopeless-shed case; never
/// returned when admission control is off).
pub(crate) fn choose_tier(
    catalog: &PlanCatalog,
    cfg: &ServiceConfig,
    req: &Request,
    queued: usize,
    healthy: usize,
    now: VirtualNs,
) -> Option<usize> {
    let base = cfg.degrade.load_tier(queued, healthy);
    let mut tier_idx = base.index().max(req.tier_floor);
    if cfg.admission {
        let slack = req.slack_ns(now);
        while cfg.degrade.enabled
            && tier_idx + 1 < QualityTier::COUNT
            && service_time_ns(catalog, req.key, tier_idx) > slack
        {
            tier_idx += 1;
        }
        if service_time_ns(catalog, req.key, tier_idx) > slack {
            return None;
        }
    }
    Some(tier_idx)
}

/// Rolls the fault environment for one dispatch, shared verbatim by both
/// loops. A slow-unit fault stretches the service time but still
/// completes (masked); every other kind wastes the dispatch (detected at
/// completion) and is returned for the retry path.
pub(crate) fn roll_dispatch_fault(
    inj: &mut FaultInjector,
    slow_factor: u64,
    service_ns: &mut VirtualNs,
) -> Option<FaultKind> {
    inj.counters_mut().queries += 1;
    let mut fault = FaultKind::ALL.into_iter().find(|&k| inj.fires(k));
    if fault == Some(FaultKind::SlowUnit) {
        *service_ns *= slow_factor.max(1);
        inj.counters_mut().masked += 1;
        fault = None;
    }
    fault
}

/// Builds the seeded per-instance fault injectors for a pool, applying
/// the lemon multiplier to the configured instance. `salt` separates the
/// fault streams of different shards in a fleet (0 for a single shard).
pub(crate) fn build_injectors(
    faults: &FaultProfile,
    instances: usize,
    seed: u64,
    salt: u64,
) -> Vec<FaultInjector> {
    (0..instances)
        .map(|i| {
            let rate = faults.rate_per_kind
                * if faults.lemon == Some(i) {
                    faults.lemon_factor
                } else {
                    1.0
                };
            FaultInjector::new(FaultPlan::uniform(
                rate.min(0.9),
                mix(seed ^ 0xFA17_0000 ^ (salt << 8) ^ i as u64),
            ))
        })
        .collect()
}

/// Builds the per-instance integrity state for a pool, deriving every
/// silent-corruption stream from `(seed, salt, instance)`. Shared by the
/// single-shard loop and the fleet shards.
pub(crate) fn build_integrity(
    integrity: IntegrityConfig,
    faults: &FaultProfile,
    instances: usize,
    seed: u64,
    salt: u64,
) -> IntegrityState {
    let plan = SdcPlan {
        seed: mix(seed ^ 0x5DC0_0000 ^ (salt << 8)),
        verdict_flip_rate: faults.sdc_rate,
        memo_corrupt_rate: 0.0,
        node_corrupt_rate: 0.0,
    };
    IntegrityState::new(
        integrity,
        plan,
        instances,
        faults.sdc_hot,
        faults.sdc_hot_factor,
        salt,
    )
}

struct Run<'a> {
    catalog: &'a PlanCatalog,
    cfg: &'a ServiceConfig,
    reqs: Vec<Request>,
    queue: RequestQueue,
    pool: AcceleratorPool,
    injectors: Vec<FaultInjector>,
    integrity: IntegrityState,
    events: EventQueue<Event>,
    /// Per-instance in-flight dispatch: (request, rolled fault, voted).
    inflight: Vec<(usize, Option<FaultKind>, bool)>,
    summary: ServiceSummary,
    latencies: Vec<VirtualNs>,
    /// Requests resolved so far; once every request has a verdict the
    /// scrub schedule stops re-arming and the event queue drains.
    resolved: usize,
    /// Earliest outstanding [`Event::Wake`], if any. Without this guard
    /// every stalled dispatch would push a fresh wake and overload runs
    /// would drown in duplicate wake events (one per queued request per
    /// completion epoch).
    wake_at: Option<VirtualNs>,
}

impl Run<'_> {
    fn schedule_wake(&mut self, at: VirtualNs) {
        if self.wake_at.is_none_or(|w| at < w) {
            self.wake_at = Some(at);
            self.events.push(at, Event::Wake);
        }
    }

    fn resolve(&mut self, id: usize, verdict: Verdict) {
        debug_assert!(self.reqs[id].verdict.is_none(), "request resolved twice");
        match verdict {
            Verdict::OnTime { .. } => self.summary.on_time += 1,
            Verdict::Late { .. } => self.summary.late += 1,
            Verdict::Shed(ShedReason::QueueFull) => self.summary.shed_queue_full += 1,
            Verdict::Shed(ShedReason::Hopeless) => self.summary.shed_hopeless += 1,
            Verdict::Shed(ShedReason::Throttled) => self.summary.shed_throttled += 1,
            Verdict::Shed(ShedReason::ShardLost) => self.summary.shed_shard_lost += 1,
            Verdict::FailedFaults => self.summary.failed_faults += 1,
            Verdict::Unsolved => self.summary.unsolved += 1,
        }
        self.reqs[id].verdict = Some(verdict);
        self.resolved += 1;
    }

    fn enqueue(&mut self, id: usize, now: VirtualNs) {
        if self.cfg.admission && self.queue.len() >= self.cfg.queue_capacity {
            telemetry::instant_args(
                "service",
                "shed_queue_full",
                arg1("req", ArgValue::U64(id as u64)),
            );
            if telemetry::active() {
                telemetry::incident(&format!("shed_queue_full req={id} t_ns={now}"));
            }
            self.resolve(id, Verdict::Shed(ShedReason::QueueFull));
            return;
        }
        let deadline = self.reqs[id].deadline_ns;
        self.queue.push(id, deadline);
        telemetry::counter("queue_depth", self.queue.len() as f64);
        let _ = now;
    }

    /// Exact service time (ns) of `req` at ladder index `tier_idx`,
    /// before any fault slowdown.
    fn service_ns(&self, id: usize, tier_idx: usize) -> VirtualNs {
        let tier = QualityTier::from_index(tier_idx);
        us_to_ns(self.catalog.entry(self.reqs[id].key, tier).modeled_us)
    }

    fn dispatch(&mut self, now: VirtualNs) {
        loop {
            let Some(inst) = self.pool.acquire(now) else {
                if !self.queue.is_empty() {
                    if let Some(at) = self.pool.next_dispatchable_at(now) {
                        self.schedule_wake(at);
                    }
                }
                return;
            };
            let Some(id) = self.queue.pop() else { return };
            telemetry::counter("queue_depth", self.queue.len() as f64);

            // Tier choice: congestion controller first, then the
            // request's floor from failed attempts, then slack-fit.
            let Some(tier_idx) = choose_tier(
                self.catalog,
                self.cfg,
                &self.reqs[id],
                self.queue.len(),
                self.pool.healthy(now),
                now,
            ) else {
                let slack = self.reqs[id].slack_ns(now);
                telemetry::instant_args(
                    "service",
                    "shed_hopeless",
                    arg1("req", ArgValue::U64(id as u64)),
                );
                if telemetry::active() {
                    telemetry::incident(&format!(
                        "shed_hopeless req={id} slack_ns={slack} t_ns={now}"
                    ));
                }
                self.resolve(id, Verdict::Shed(ShedReason::Hopeless));
                continue;
            };

            let mut service_ns = self.service_ns(id, tier_idx);
            // Roll the fault environment for this dispatch (see
            // `roll_dispatch_fault`): masked slow-units stretch the
            // service time; everything else triggers the retry path.
            let fault = roll_dispatch_fault(
                &mut self.injectors[inst],
                self.cfg.faults.slow_factor,
                &mut service_ns,
            );
            // Suspicion-scored voting: a suspect instance re-executes the
            // dispatch (temporal duplicate-dispatch), doubling its
            // modeled service time.
            let voted = self.integrity.dispatch_vote(inst);
            if voted {
                service_ns *= 2;
            }
            self.reqs[id].attempts += 1;
            self.inflight[inst] = (id, fault, voted);
            self.reqs[id].tier_floor = tier_idx; // remember the served tier
            self.pool.begin(inst, now, service_ns);
            // Instance occupancy as one Perfetto row per instance.
            telemetry::complete_at(
                Lane::new("inst", inst as u32),
                "service",
                if fault.is_some() {
                    "serve_faulted"
                } else {
                    "serve"
                },
                now,
                service_ns,
                arg2(
                    "req",
                    ArgValue::U64(id as u64),
                    "tier",
                    ArgValue::Str(QualityTier::from_index(tier_idx).label()),
                ),
            );
            self.events
                .push(now + service_ns, Event::Complete { inst, req: id });
        }
    }

    /// Benches a lying instance for scrubbing: out of rotation until a
    /// scrub probe streak readmits it. The last healthy instance is never
    /// pulled (degraded service beats no service), but its scrub schedule
    /// still runs so the integrity state stays live.
    fn bench_liar(&mut self, inst: usize, now: VirtualNs) {
        if self.pool.healthy(now) > 1 {
            self.pool.quarantine(inst, BENCH_HORIZON_NS);
            telemetry::instant_args(
                "service",
                "bench_liar",
                arg1("inst", ArgValue::U64(inst as u64)),
            );
            if telemetry::active() {
                telemetry::incident(&format!("quarantine inst={inst} liar=1 t_ns={now}"));
            }
        }
        self.events.push(
            now + self.cfg.integrity.scrub_period_us * NS_PER_US,
            Event::Scrub { inst },
        );
    }

    /// One known-answer scrub probe against a benched instance.
    fn scrub(&mut self, inst: usize, now: VirtualNs) {
        if !self.integrity.is_benched(inst) {
            return;
        }
        if self.integrity.scrub_probe(inst) {
            self.pool.readmit(inst, now);
            telemetry::instant_args(
                "service",
                "scrub_readmit",
                arg1("inst", ArgValue::U64(inst as u64)),
            );
            if telemetry::active() {
                telemetry::incident(&format!(
                    "scrub_readmit inst={inst} probes={} t_ns={now}",
                    self.integrity.stats.scrub_probes
                ));
            }
            self.dispatch(now);
        } else if self.resolved < self.reqs.len() {
            self.events.push(
                now + self.cfg.integrity.scrub_period_us * NS_PER_US,
                Event::Scrub { inst },
            );
        }
    }

    fn complete(&mut self, inst: usize, id: usize, now: VirtualNs) {
        let (_, fault, voted) = self.inflight[inst];
        let tier_idx = self.reqs[id].tier_floor;
        let tier = QualityTier::from_index(tier_idx);
        let entry = *self.catalog.entry(self.reqs[id].key, tier);
        // Energy the dispatch actually spent: the catalog attempt cost,
        // doubled when suspicion voting re-executed it. Slow-unit faults
        // stretch time, not work, so the energy is unchanged.
        let attempt_pj = if voted {
            2.0 * entry.energy_pj
        } else {
            entry.energy_pj
        };
        // Power-rail counter track: the datapath power this dispatch drew
        // while it ran (pJ/µs ≡ µW). Vote re-execution doubles energy and
        // time alike, so the rail shows the per-execution figure.
        telemetry::counter_on(
            Lane::new("rail", inst as u32),
            "power_uw",
            entry.energy_pj / entry.modeled_us.max(1e-9),
        );
        if let Some(_kind) = fault {
            self.summary.wasted_energy_pj += attempt_pj;
            self.injectors[inst].counters_mut().detected += 1;
            if self
                .cfg
                .breaker
                .on_fault(&mut self.pool, inst, now)
                .is_some()
            {
                self.injectors[inst].counters_mut().quarantined += 1;
                telemetry::instant_args(
                    "service",
                    "quarantine",
                    arg1("inst", ArgValue::U64(inst as u64)),
                );
                if telemetry::active() {
                    telemetry::incident(&format!("quarantine inst={inst} t_ns={now}"));
                }
                // The expiry needs a wake in case the whole pool is idle
                // but quarantined when it lands.
                if let Some(at) = self.pool.next_dispatchable_at(now) {
                    self.schedule_wake(at);
                }
            }
            if self.reqs[id].attempts > self.cfg.retry.max_retries {
                telemetry::instant_args(
                    "service",
                    "failed_faults",
                    arg1("req", ArgValue::U64(id as u64)),
                );
                if telemetry::active() {
                    telemetry::incident(&format!(
                        "failed_faults req={id} attempts={} t_ns={now}",
                        self.reqs[id].attempts
                    ));
                }
                self.resolve(id, Verdict::FailedFaults);
            } else {
                let shift = (self.reqs[id].attempts - 1).min(16);
                let backoff = (self.cfg.retry.backoff_us * NS_PER_US) << shift;
                self.injectors[inst].counters_mut().redispatches += 1;
                self.summary.retries += 1;
                self.events.push(now + backoff, Event::Enqueue(id));
            }
        } else {
            self.pool.record_success(inst);
            if entry.solved {
                // Integrity pipeline: roll this instance's silent-
                // corruption stream (resolving any vote), then certify
                // before the request may resolve as Completed.
                let ci = self.integrity.completion(inst, voted);
                if ci.bench {
                    self.bench_liar(inst, now);
                }
                let mut done = now;
                if self.cfg.integrity.certify {
                    let certify_ns = us_to_ns(entry.certify_us);
                    self.integrity.stats.certify_ns += certify_ns;
                    self.integrity
                        .stats
                        .certify_hist
                        .observe(entry.certify_us.round() as u64);
                    done = now + certify_ns;
                    if ci.ships_corrupt {
                        // The independent cascade rejects the corrupted
                        // plan: attribute, then re-plan degraded under
                        // whatever budget remains. The rejected attempt's
                        // energy bought nothing.
                        self.summary.wasted_energy_pj += attempt_pj;
                        self.integrity.stats.certify_failed += 1;
                        self.integrity.accuse(inst);
                        telemetry::instant_args(
                            "service",
                            "certify_failed",
                            arg2(
                                "req",
                                ArgValue::U64(id as u64),
                                "inst",
                                ArgValue::U64(inst as u64),
                            ),
                        );
                        if telemetry::active() {
                            telemetry::incident(&format!(
                                "certify_failed req={id} inst={inst} tier={} t_ns={now}",
                                tier.label()
                            ));
                        }
                        if self.reqs[id].attempts > self.cfg.retry.max_retries {
                            // Replan budget exhausted: fail closed — an
                            // unresolved request, never an unsafe plan.
                            self.resolve(id, Verdict::FailedFaults);
                            return;
                        }
                        if tier_idx + 1 < QualityTier::COUNT {
                            self.reqs[id].tier_floor = tier_idx + 1;
                            self.summary.tier_stepdowns += 1;
                        }
                        self.events.push(done, Event::Enqueue(id));
                        return;
                    }
                    self.integrity.stats.certified += 1;
                    self.integrity.exonerate(inst);
                } else if ci.ships_corrupt {
                    // Undefended: the unsafe plan ships as a "success".
                    self.integrity.stats.sdc_escaped += 1;
                    telemetry::instant_args(
                        "service",
                        "sdc_escaped",
                        arg2(
                            "req",
                            ArgValue::U64(id as u64),
                            "inst",
                            ArgValue::U64(inst as u64),
                        ),
                    );
                    if telemetry::active() {
                        telemetry::incident(&format!(
                            "sdc_escaped req={id} inst={inst} tier={} t_ns={now}",
                            tier.label()
                        ));
                    }
                }
                let now = done;
                let latency = now - self.reqs[id].arrival_ns;
                let verdict = if now <= self.reqs[id].deadline_ns {
                    Verdict::OnTime {
                        tier,
                        latency_ns: latency,
                    }
                } else {
                    let late_ns = now - self.reqs[id].deadline_ns;
                    telemetry::instant_args(
                        "service",
                        "deadline_miss",
                        arg2(
                            "req",
                            ArgValue::U64(id as u64),
                            "late_ns",
                            ArgValue::U64(late_ns),
                        ),
                    );
                    if telemetry::active() {
                        telemetry::incident(&format!(
                            "deadline_miss req={id} tier={} late_ns={late_ns} t_ns={now}",
                            tier.label()
                        ));
                    }
                    Verdict::Late {
                        tier,
                        latency_ns: latency,
                    }
                };
                self.summary.tier_served[tier_idx] += 1;
                self.summary.energy_pj += attempt_pj;
                self.summary.tier_energy_pj[tier_idx] += attempt_pj;
                if tier_idx > 0 {
                    // Energy the ladder saved by serving this key below
                    // full quality.
                    let full_pj = self
                        .catalog
                        .entry(self.reqs[id].key, QualityTier::Full)
                        .energy_pj;
                    self.summary.degraded_saved_pj += full_pj - entry.energy_pj;
                }
                if let Some(budget) = self.cfg.energy_budget_pj_per_plan {
                    if attempt_pj > budget {
                        self.summary.energy_breaches += 1;
                        telemetry::instant_args(
                            "service",
                            "energy_budget_breach",
                            arg2(
                                "req",
                                ArgValue::U64(id as u64),
                                "pj",
                                ArgValue::F64(attempt_pj),
                            ),
                        );
                        if telemetry::active() {
                            telemetry::incident(&format!(
                                "energy_budget_breach req={id} tier={} pj={:.0} \
                                 budget_pj={budget:.0} t_ns={now}",
                                tier.label(),
                                attempt_pj
                            ));
                        }
                    }
                }
                self.latencies.push(latency);
                self.resolve(id, verdict);
            } else if tier_idx + 1 < QualityTier::COUNT {
                // Budget exhausted without a path: step down the ladder
                // and try again immediately (the cheap re-plan path). The
                // exhausted attempt's energy is spent either way.
                self.summary.wasted_energy_pj += attempt_pj;
                self.reqs[id].tier_floor = tier_idx + 1;
                self.summary.tier_stepdowns += 1;
                self.enqueue(id, now);
            } else {
                self.summary.wasted_energy_pj += attempt_pj;
                self.resolve(id, Verdict::Unsolved);
            }
        }
    }
}

/// Runs the service simulation and returns its aggregate summary.
/// Deterministic: identical inputs yield an identical summary, on any
/// machine and at any ambient thread count.
///
/// # Panics
///
/// Panics if the catalog is empty or `cfg.instances == 0`.
pub fn run_service(
    catalog: &PlanCatalog,
    tenants: &[TenantSpec],
    duration_ns: VirtualNs,
    cfg: &ServiceConfig,
) -> ServiceSummary {
    assert!(catalog.num_keys() > 0, "empty catalog");
    let mut reqs = Vec::new();
    let mut events = EventQueue::new();
    for (ti, tenant) in tenants.iter().enumerate() {
        for (ai, arrival_ns) in tenant.process.generate(duration_ns).into_iter().enumerate() {
            let key = (mix(cfg.seed ^ ((ti as u64) << 40) ^ ai as u64) % catalog.num_keys() as u64)
                as usize;
            let id = reqs.len();
            reqs.push(Request {
                tenant: ti,
                arrival_ns,
                deadline_ns: arrival_ns + tenant.deadline_us * NS_PER_US,
                key,
                attempts: 0,
                tier_floor: 0,
                verdict: None,
            });
            events.push(arrival_ns, Event::Enqueue(id));
        }
    }

    let injectors = build_injectors(&cfg.faults, cfg.instances, cfg.seed, 0);
    let integrity = build_integrity(cfg.integrity, &cfg.faults, cfg.instances, cfg.seed, 0);

    let summary = ServiceSummary::for_run(duration_ns, cfg.instances, reqs.len() as u64);
    let mut run = Run {
        catalog,
        cfg,
        reqs,
        queue: RequestQueue::new(cfg.policy),
        pool: AcceleratorPool::new(cfg.instances),
        injectors,
        integrity,
        events,
        inflight: vec![(usize::MAX, None, false); cfg.instances],
        summary,
        latencies: Vec::new(),
        resolved: 0,
        wake_at: None,
    };

    while let Some((now, ev)) = run.events.pop() {
        telemetry::set_time(now);
        match ev {
            Event::Enqueue(id) => {
                run.enqueue(id, now);
                run.dispatch(now);
            }
            Event::Complete { inst, req } => {
                run.complete(inst, req, now);
                run.dispatch(now);
            }
            Event::Wake => {
                if run.wake_at.is_some_and(|w| w <= now) {
                    run.wake_at = None;
                }
                run.dispatch(now);
            }
            Event::Scrub { inst } => {
                run.scrub(inst, now);
            }
        }
    }

    debug_assert!(
        run.reqs.iter().all(|r| r.verdict.is_some()),
        "every request must resolve"
    );
    run.summary.quarantines = run.pool.total_quarantines();
    run.summary.busy_ns = run.pool.total_busy_ns();
    for inj in &run.injectors {
        run.summary.resilience.merge(inj.counters());
    }
    run.summary.integrity = run.integrity.stats.clone();
    let latencies = std::mem::take(&mut run.latencies);
    run.summary.set_latencies(latencies);
    run.summary
}

/// [`run_service`] with telemetry: installs a `("service", stream_index)`
/// stream on this thread for the duration of the run, so the event loop's
/// spans, queue-depth samples, and flight-recorder incidents land in
/// `session`.
///
/// The summary is identical to the untraced run — recording never
/// perturbs the simulation.
///
/// # Panics
///
/// Panics if the catalog is empty or `cfg.instances == 0`.
pub fn run_service_traced(
    catalog: &PlanCatalog,
    tenants: &[TenantSpec],
    duration_ns: VirtualNs,
    cfg: &ServiceConfig,
    session: &telemetry::TelemetrySession,
    stream_index: u32,
) -> ServiceSummary {
    let _stream = session.install("service", stream_index);
    run_service(catalog, tenants, duration_ns, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_octree::{benchmark_scenes, Scene};
    use mp_robot::RobotModel;
    use mp_sim::arrival::{ArrivalKind, ArrivalProcess};
    use std::sync::OnceLock;
    use threadpool::ThreadPool;

    fn catalog() -> &'static PlanCatalog {
        static CAT: OnceLock<PlanCatalog> = OnceLock::new();
        CAT.get_or_init(|| {
            let scenes: Vec<Scene> = benchmark_scenes().into_iter().take(2).collect();
            PlanCatalog::build(&RobotModel::jaco2(), &scenes, 2, 3, &ThreadPool::new(2))
                .expect("catalog builds")
        })
    }

    fn tenants(rate: f64) -> Vec<TenantSpec> {
        let deadline_us = (4.0 * catalog().mean_service_us(QualityTier::Full)) as u64;
        vec![
            TenantSpec {
                label: "interactive",
                process: ArrivalProcess {
                    kind: ArrivalKind::Poisson,
                    rate_per_s: rate * 0.7,
                    seed: 101,
                },
                deadline_us,
            },
            TenantSpec {
                label: "bursty",
                process: ArrivalProcess {
                    kind: ArrivalKind::Bursty {
                        burst_factor: 5.0,
                        period_us: 5_000,
                        duty: 0.2,
                    },
                    rate_per_s: rate * 0.3,
                    seed: 202,
                },
                deadline_us: deadline_us * 2,
            },
        ]
    }

    const DURATION: VirtualNs = 50_000_000; // 50 ms simulated

    #[test]
    fn runs_are_deterministic_and_conserving() {
        let cfg = ServiceConfig {
            faults: FaultProfile::with_lemon(0.01, 0, 10.0),
            ..ServiceConfig::default()
        };
        let rate = catalog().saturating_rate_per_s(cfg.instances);
        let a = run_service(catalog(), &tenants(rate), DURATION, &cfg);
        let b = run_service(catalog(), &tenants(rate), DURATION, &cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "summaries differ");
        assert_eq!(
            a.offered,
            a.on_time + a.late + a.shed() + a.failed_faults + a.unsolved,
            "every request must resolve exactly once"
        );
        assert!(a.offered > 100, "expected meaningful traffic");
        // Energy accounting: completions carry energy, the per-tier split
        // sums to the total, and faulted dispatches wasted some.
        assert!(a.energy_pj > 0.0, "completions must spend energy");
        let tier_sum: f64 = a.tier_energy_pj.iter().sum();
        assert!((tier_sum - a.energy_pj).abs() < 1e-6 * a.energy_pj.max(1.0));
        assert!(a.energy_per_plan_pj() > 0.0);
        assert!(a.wasted_energy_pj > 0.0, "retries must waste energy");
        assert_eq!(a.energy_breaches, 0, "no budget configured");
    }

    #[test]
    fn energy_budget_breaches_are_counted() {
        // A zero budget makes every completion a breach; no budget makes
        // none — and the budget check never perturbs the simulation.
        let strict = ServiceConfig {
            energy_budget_pj_per_plan: Some(0.0),
            ..ServiceConfig::default()
        };
        let unbounded = ServiceConfig::default();
        let rate = 0.5 * catalog().saturating_rate_per_s(strict.instances);
        let a = run_service(catalog(), &tenants(rate), DURATION, &strict);
        let b = run_service(catalog(), &tenants(rate), DURATION, &unbounded);
        assert_eq!(a.energy_breaches, a.completed());
        assert_eq!(b.energy_breaches, 0);
        assert_eq!(a.completed(), b.completed());
        assert_eq!(a.energy_pj, b.energy_pj);
        assert_eq!(a.p999_us(), b.p999_us());
    }

    #[test]
    fn degraded_tiers_save_energy_under_overload() {
        let rate = 2.0 * catalog().saturating_rate_per_s(4);
        let s = run_service(
            catalog(),
            &tenants(rate),
            DURATION,
            &ServiceConfig::default(),
        );
        assert!(
            s.tier_served[1..].iter().sum::<u64>() > 0,
            "overload must degrade"
        );
        assert!(
            s.degraded_saved_pj > 0.0,
            "degraded completions must bank savings"
        );
    }

    #[test]
    fn underload_serves_nearly_everything_on_time() {
        let cfg = ServiceConfig::default();
        let rate = 0.3 * catalog().saturating_rate_per_s(cfg.instances);
        let s = run_service(catalog(), &tenants(rate), DURATION, &cfg);
        assert!(
            s.miss_rate() < 0.35,
            "underloaded service misses {:.1}% (catalog solve rate {:.2})",
            100.0 * s.miss_rate(),
            catalog().solve_rate(QualityTier::Full),
        );
        assert!(s.p50_us() > 0.0);
    }

    #[test]
    fn degradation_beats_the_naive_baseline_under_overload() {
        let rate = 2.0 * catalog().saturating_rate_per_s(4);
        let naive = ServiceConfig {
            policy: QueuePolicy::Fifo,
            admission: false,
            degrade: DegradeConfig::off(),
            ..ServiceConfig::default()
        };
        let degrading = ServiceConfig::default();
        let a = run_service(catalog(), &tenants(rate), DURATION, &naive);
        let b = run_service(catalog(), &tenants(rate), DURATION, &degrading);
        assert!(
            b.goodput_rps() > a.goodput_rps(),
            "degradation goodput {:.0} <= naive {:.0}",
            b.goodput_rps(),
            a.goodput_rps()
        );
        assert!(
            b.miss_rate() < a.miss_rate(),
            "degradation miss {:.3} >= naive {:.3}",
            b.miss_rate(),
            a.miss_rate()
        );
        // The degrading run actually used cheaper tiers.
        assert!(b.tier_served[1..].iter().sum::<u64>() > 0);
        // The naive run only ever serves full quality.
        assert_eq!(a.tier_served[1..].iter().sum::<u64>(), 0);
    }

    #[test]
    fn lemon_instance_gets_quarantined_and_retries_happen() {
        let cfg = ServiceConfig {
            faults: FaultProfile::with_lemon(0.02, 0, 25.0),
            ..ServiceConfig::default()
        };
        let rate = catalog().saturating_rate_per_s(cfg.instances);
        let s = run_service(catalog(), &tenants(rate), DURATION, &cfg);
        assert!(s.retries > 0, "faults must trigger retries");
        assert!(s.quarantines > 0, "the lemon must trip the breaker");
        assert!(s.resilience.injected_total() > 0);
        assert_eq!(s.resilience.redispatches, s.retries);
    }

    #[test]
    fn undefended_sdc_ships_unsafe_plans() {
        let cfg = ServiceConfig {
            faults: FaultProfile::none().with_sdc(0.01, Some(0), 30.0),
            ..ServiceConfig::default()
        };
        let rate = catalog().saturating_rate_per_s(cfg.instances);
        let s = run_service(catalog(), &tenants(rate), DURATION, &cfg);
        assert!(s.integrity.sdc_injected > 0, "SDC must fire at this rate");
        assert_eq!(
            s.integrity.sdc_escaped, s.integrity.sdc_injected,
            "undefended, every corrupted plan ships"
        );
        assert!(s.escape_rate() > 0.0);
        assert_eq!(s.integrity.certify_ns, 0, "no certification was paid for");
    }

    #[test]
    fn certification_stops_every_escape_and_replans() {
        let cfg = ServiceConfig {
            faults: FaultProfile::none().with_sdc(0.01, Some(0), 30.0),
            integrity: IntegrityConfig::certify_only(),
            ..ServiceConfig::default()
        };
        let rate = catalog().saturating_rate_per_s(cfg.instances);
        let s = run_service(catalog(), &tenants(rate), DURATION, &cfg);
        assert!(s.integrity.sdc_injected > 0);
        assert_eq!(s.integrity.sdc_escaped, 0, "certification must be sound");
        assert!(s.integrity.certify_failed > 0, "rejections must re-plan");
        assert!(s.integrity.certified > 0);
        assert!(s.integrity.certify_ns > 0);
        assert!(s.certify_overhead_us() > 0.0);
        assert_eq!(
            s.integrity.certify_hist.count(),
            s.integrity.certified + s.integrity.certify_failed
        );
        // Defense-off counters stay off without voting enabled.
        assert_eq!(s.integrity.votes, 0);
        assert_eq!(s.integrity.scrub_probes, 0);
    }

    #[test]
    fn full_ladder_votes_on_the_hot_instance_and_scrubs_liars() {
        // A very hot lane: certify failures pile suspicion onto instance
        // 0 fast, voting engages, overrides accumulate, the liar is
        // benched and scrub-readmitted within the run.
        let cfg = ServiceConfig {
            faults: FaultProfile::none().with_sdc(0.004, Some(0), 100.0),
            integrity: IntegrityConfig::full(),
            ..ServiceConfig::default()
        };
        let rate = catalog().saturating_rate_per_s(cfg.instances);
        let s = run_service(catalog(), &tenants(rate), 2 * DURATION, &cfg);
        assert_eq!(s.integrity.sdc_escaped, 0, "the full ladder must be sound");
        assert!(s.integrity.votes > 0, "suspicion must engage voting");
        assert!(s.integrity.vote_overrides > 0, "votes must catch lies");
        assert!(
            s.integrity.liars_benched > 0,
            "the hot lane must strike out"
        );
        assert!(s.integrity.scrub_probes > 0);
        assert!(
            s.integrity.scrub_readmits > 0,
            "scrub must readmit within the run"
        );
        // Voting masks corruption before certification: fewer rejections
        // per injection than certify-only would pay.
        assert!(s.integrity.certify_failed < s.integrity.sdc_injected);
    }

    #[test]
    fn integrity_runs_are_deterministic() {
        let cfg = ServiceConfig {
            faults: FaultProfile::none().with_sdc(0.01, Some(1), 40.0),
            integrity: IntegrityConfig::full(),
            ..ServiceConfig::default()
        };
        let rate = 1.5 * catalog().saturating_rate_per_s(cfg.instances);
        let a = run_service(catalog(), &tenants(rate), DURATION, &cfg);
        let b = run_service(catalog(), &tenants(rate), DURATION, &cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(
            a.offered,
            a.on_time + a.late + a.shed() + a.failed_faults + a.unsolved,
            "every request resolves exactly once under the integrity path"
        );
    }

    #[test]
    fn bounded_queue_sheds_under_adversarial_bursts() {
        let cfg = ServiceConfig {
            queue_capacity: 8,
            ..ServiceConfig::default()
        };
        let rate = 3.0 * catalog().saturating_rate_per_s(cfg.instances);
        let t = vec![TenantSpec {
            label: "adversarial",
            process: ArrivalProcess {
                kind: ArrivalKind::Adversarial { batch: 64 },
                rate_per_s: rate,
                seed: 9,
            },
            deadline_us: 2_000,
        }];
        let s = run_service(catalog(), &t, DURATION, &cfg);
        assert!(s.shed_queue_full > 0, "batches must overflow the queue");
    }
}
