//! Bounded, deadline-aware request queues.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mp_sim::vtime::VirtualNs;

/// Queue discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueuePolicy {
    /// First-in first-out (arrival order).
    Fifo,
    /// Earliest-deadline-first.
    Edf,
}

impl QueuePolicy {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            QueuePolicy::Fifo => "fifo",
            QueuePolicy::Edf => "edf",
        }
    }
}

/// A bounded priority queue of request ids. Under FIFO the priority is the
/// insertion sequence; under EDF it is the absolute deadline with the
/// insertion sequence as a deterministic tie-break.
#[derive(Clone, Debug)]
pub struct RequestQueue {
    policy: QueuePolicy,
    // (priority, seq, request id) min-heap.
    heap: BinaryHeap<Reverse<(VirtualNs, u64, usize)>>,
    seq: u64,
}

impl RequestQueue {
    /// An empty queue with the given discipline.
    pub fn new(policy: QueuePolicy) -> RequestQueue {
        RequestQueue {
            policy,
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// The queue discipline.
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// Enqueues request `id` with the given absolute deadline.
    pub fn push(&mut self, id: usize, deadline_ns: VirtualNs) {
        let seq = self.seq;
        self.seq += 1;
        let prio = match self.policy {
            QueuePolicy::Fifo => seq,
            QueuePolicy::Edf => deadline_ns,
        };
        self.heap.push(Reverse((prio, seq, id)));
    }

    /// Removes and returns the highest-priority request id.
    pub fn pop(&mut self) -> Option<usize> {
        self.heap.pop().map(|Reverse((_, _, id))| id)
    }

    /// Queued requests.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_pops_in_arrival_order_regardless_of_deadline() {
        let mut q = RequestQueue::new(QueuePolicy::Fifo);
        q.push(10, 900);
        q.push(11, 100);
        q.push(12, 500);
        assert_eq!([q.pop(), q.pop(), q.pop()], [Some(10), Some(11), Some(12)]);
    }

    #[test]
    fn edf_pops_earliest_deadline_with_stable_ties() {
        let mut q = RequestQueue::new(QueuePolicy::Edf);
        q.push(10, 900);
        q.push(11, 100);
        q.push(12, 500);
        q.push(13, 100); // same deadline as 11: insertion order breaks it
        assert_eq!(
            [q.pop(), q.pop(), q.pop(), q.pop()],
            [Some(11), Some(13), Some(12), Some(10)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = RequestQueue::new(QueuePolicy::Edf);
        assert_eq!(q.len(), 0);
        q.push(1, 5);
        q.push(2, 3);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.policy(), QueuePolicy::Edf);
    }
}
