//! The sharded planning fleet: consistent-hash routing, seeded shard
//! chaos with failover, hedged requests, and per-tenant isolation.
//!
//! A fleet is N independent shards, each a full single-shard service
//! (bounded queue, dispatcher, accelerator pool, fault injectors,
//! degradation ladder, circuit breakers), joined by a router:
//!
//! ```text
//!  tenants ─► token buckets ─► consistent-hash ring ─► shard 0..N
//!  (arrival    (per-tenant      (tenant, key) → primary,  each: fair
//!   streams)    admission)       bounded-load p2c spill    queue + pool
//!                                       │                      │
//!                  hedge after deadline-aware delay       chaos: crash /
//!                  (duplicate to second shard,            stall / flap →
//!                   first response wins)                  failover + rejoin
//! ```
//!
//! Robustness mechanics, all deterministic in virtual time:
//!
//! * **Routing** ([`crate::ring`]): requests hash by `(tenant, key)` to a
//!   primary shard; the bounded-load power-of-two-choices rule spills to
//!   the deterministic second choice when the primary's queue runs ahead
//!   of the fleet average.
//! * **Chaos & failover** (`mp_sim::fault::ShardFaultPlan`): seeded
//!   crashes, stalls, and flaps. A defended fleet removes a dead shard
//!   from the ring and re-enqueues its queued *and* in-flight requests on
//!   surviving shards under a per-request failover budget; on rejoin the
//!   shard re-enters the ring behind a catch-up window that keeps routing
//!   spilling away until it drains. An undefended fleet keeps sending a
//!   dead shard its keys and loses them.
//! * **Hedging**: a request still unresolved after a deadline-aware delay
//!   (`min(hedge delay, slack/2)`) is duplicated to the next distinct
//!   ring shard; the first completion wins and stragglers are counted,
//!   not served twice to the tenant.
//! * **Tenant isolation** ([`crate::tenant`]): per-tenant token buckets
//!   at the fleet door and weighted fair queueing inside every shard, so
//!   an adversarial tenant throttles and starves itself, not its
//!   neighbors.
//!
//! One run is still a single-threaded discrete-event simulation over one
//! global event queue, so a 16-shard chaos soak is a pure function of its
//! configuration — byte-identical on any machine at any thread count.

use mp_planner::QualityTier;
use mp_sim::fault::{FaultInjector, FaultKind, ShardFaultKind, ShardFaultPlan};
use mp_sim::vtime::{EventQueue, VirtualNs, NS_PER_US};
use mp_telemetry::{self as telemetry, arg2, ArgValue, IncidentKind, Lane};
use mpaccel_core::pool::AcceleratorPool;

use crate::catalog::PlanCatalog;
use crate::integrity::IntegrityState;
use crate::metrics::{FleetSummary, ServiceSummary, ShardStats, TenantStats};
use crate::request::{Request, ShedReason, TenantSpec, Verdict};
use crate::ring::HashRing;
use crate::service::{
    build_injectors, build_integrity, choose_tier, mix, roll_dispatch_fault, service_time_ns,
    us_to_ns, ServiceConfig, BENCH_HORIZON_NS,
};
use crate::tenant::{FairQueue, TenantPolicy, TokenBucket};

/// Hedged-request policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Whether hedging is on.
    pub enabled: bool,
    /// Base hedge delay in µs; the effective delay is deadline-aware:
    /// `min(delay_us, slack/2)` so tight-deadline requests hedge sooner.
    pub delay_us: u64,
}

impl Default for HedgeConfig {
    fn default() -> HedgeConfig {
        HedgeConfig {
            enabled: true,
            delay_us: 400,
        }
    }
}

/// Shard-failure handling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailoverConfig {
    /// Whether failover is on. Off models the undefended baseline: the
    /// ring keeps routing to dead shards and their requests are lost.
    pub enabled: bool,
    /// Times one request may be re-routed off dying shards before it is
    /// abandoned as lost.
    pub max_failovers: u32,
    /// Catch-up window after a rejoin (µs): the shard re-enters the ring
    /// but reports itself overloaded, so bounded-load routing keeps
    /// spilling new arrivals elsewhere while it drains.
    pub catchup_us: u64,
}

impl Default for FailoverConfig {
    fn default() -> FailoverConfig {
        FailoverConfig {
            enabled: true,
            max_failovers: 2,
            catchup_us: 5_000,
        }
    }
}

/// Full configuration of one fleet run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetConfig {
    /// Number of shards.
    pub shards: usize,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub vnodes_per_shard: usize,
    /// Bounded-load spill threshold as a percentage of the fleet-average
    /// load (125 = spill when the primary exceeds 1.25× average).
    pub spill_bound_pct: u64,
    /// Per-shard service configuration (instances, queue, degradation,
    /// retries, breaker, accelerator faults). The shard seed is ignored;
    /// `seed` below governs the whole fleet.
    pub shard: ServiceConfig,
    /// Hedged-request policy.
    pub hedge: HedgeConfig,
    /// Shard-failure handling policy.
    pub failover: FailoverConfig,
    /// Per-tenant isolation (token buckets + weighted fair queueing).
    /// Off collapses every shard queue to the shared single-shard
    /// discipline and admits all traffic.
    pub fairness: bool,
    /// Fleet seed (request keys, ring placement, fault streams).
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 4,
            vnodes_per_shard: 16,
            spill_bound_pct: 125,
            shard: ServiceConfig::default(),
            hedge: HedgeConfig::default(),
            failover: FailoverConfig::default(),
            fairness: true,
            seed: 0,
        }
    }
}

enum Event {
    /// A request reaches the fleet door: admission, routing, enqueue.
    Arrive(usize),
    /// A request copy (re-)enters shard `shard`'s queue (retry backoff,
    /// tier step-down, failover re-route).
    Enqueue { shard: usize, req: usize },
    /// Shard `shard`'s instance `inst` finishes a dispatch begun in
    /// epoch `epoch` at tier `tier` (stale epochs are crash casualties).
    /// The rolled fault and tier ride in the event: an instance freed at
    /// exactly this timestamp can be re-acquired by an earlier-queued
    /// event before this one pops, so the inflight slot may already hold
    /// the next dispatch.
    Complete {
        shard: usize,
        inst: usize,
        req: usize,
        epoch: u32,
        tier: usize,
        token: u64,
        fault: Option<FaultKind>,
        voted: bool,
    },
    /// Re-run the given shard's dispatcher (quarantine expiry / busy
    /// instance freed).
    Wake(usize),
    /// Hedge check: duplicate the request if it is still unresolved.
    Hedge(usize),
    /// Index into the precomputed chaos schedule fires.
    Chaos(usize),
    /// A crashed shard comes back.
    Rejoin(usize),
    /// Run one known-answer scrub probe against a benched instance of the
    /// given shard.
    Scrub { shard: usize, inst: usize },
}

/// Fleet-side per-request state (the [`Request`] itself carries the
/// single-shard fields).
#[derive(Clone, Debug)]
struct ReqState {
    /// Ring route key (`(tenant, catalog key)` hashed by the ring).
    route_key: u64,
    /// Shard the request was first enqueued on.
    primary: usize,
    /// Whether a hedge duplicate was fired.
    hedged: bool,
    /// Shard the hedge duplicate landed on, for win attribution.
    twin: Option<usize>,
    /// Live copies (queued or in flight) across shards. When the last
    /// copy dies without a completion, the request resolves failed.
    copies: u32,
    /// Failover re-routes consumed.
    failovers: u32,
}

struct Shard {
    queue: FairQueue,
    pool: AcceleratorPool,
    injectors: Vec<FaultInjector>,
    /// Silent-corruption streams, suspicion scoreboard, and scrub state
    /// for this shard's instances. Survives crash epochs: SDC is a
    /// property of the silicon, not of the queue the crash wiped.
    integrity: IntegrityState,
    /// Per-instance `(request, dispatch token)` for the running dispatch
    /// (`usize::MAX` when idle); the token disambiguates back-to-back
    /// dispatches that share a timestamp.
    inflight: Vec<(usize, u64)>,
    /// Monotone per-shard dispatch counter feeding the tokens.
    dispatch_seq: u64,
    /// Earliest outstanding wake, as in the single-shard loop.
    wake_at: Option<VirtualNs>,
    alive: bool,
    /// Crash epoch; completions from older epochs are ignored.
    epoch: u32,
    /// Dispatches begun before this instant run `stall_factor`× slower.
    stall_until: VirtualNs,
    stall_factor: u64,
    /// Until this instant the shard reports itself overloaded to the
    /// router (post-rejoin catch-up).
    catchup_until: VirtualNs,
    /// Pool busy-ns / quarantines accumulated across crash epochs (the
    /// pool itself is rebuilt on every crash).
    busy_accum: u64,
    quar_accum: u64,
    stats: ShardStats,
    latencies: Vec<VirtualNs>,
}

struct Fleet<'a> {
    catalog: &'a PlanCatalog,
    cfg: &'a FleetConfig,
    ring: HashRing,
    reqs: Vec<Request>,
    states: Vec<ReqState>,
    shards: Vec<Shard>,
    buckets: Vec<Option<TokenBucket>>,
    events: EventQueue<Event>,
    chaos: Vec<mp_sim::fault::ShardFaultEvent>,
    summary: FleetSummary,
    tenants: Vec<TenantStats>,
    tenant_lat: Vec<Vec<VirtualNs>>,
    latencies: Vec<VirtualNs>,
    /// Requests resolved so far; once every request has a verdict the
    /// scrub schedules stop re-arming and the event queue drains.
    resolved: usize,
}

impl Fleet<'_> {
    fn schedule_wake(&mut self, s: usize, at: VirtualNs) {
        if self.shards[s].wake_at.is_none_or(|w| at < w) {
            self.shards[s].wake_at = Some(at);
            self.events.push(at, Event::Wake(s));
        }
    }

    fn resolve(&mut self, id: usize, verdict: Verdict) {
        debug_assert!(self.reqs[id].verdict.is_none(), "request resolved twice");
        let t = self.reqs[id].tenant;
        let fleet = &mut self.summary.fleet;
        match verdict {
            Verdict::OnTime { .. } => {
                fleet.on_time += 1;
                self.tenants[t].on_time += 1;
            }
            Verdict::Late { .. } => {
                fleet.late += 1;
                self.tenants[t].late += 1;
            }
            Verdict::Shed(reason) => {
                match reason {
                    ShedReason::QueueFull => fleet.shed_queue_full += 1,
                    ShedReason::Hopeless => fleet.shed_hopeless += 1,
                    ShedReason::Throttled => fleet.shed_throttled += 1,
                    ShedReason::ShardLost => fleet.shed_shard_lost += 1,
                }
                if reason == ShedReason::Throttled {
                    self.tenants[t].throttled += 1;
                } else {
                    self.tenants[t].shed += 1;
                }
            }
            Verdict::FailedFaults => fleet.failed_faults += 1,
            Verdict::Unsolved => fleet.unsolved += 1,
        }
        self.reqs[id].verdict = Some(verdict);
        self.resolved += 1;
    }

    /// One copy of `id` dies (shed, lost, exhausted). When it was the
    /// last live copy and no twin completed, the request resolves with
    /// `verdict`.
    fn copy_dies(&mut self, id: usize, verdict: Verdict) {
        let st = &mut self.states[id];
        st.copies = st.copies.saturating_sub(1);
        if st.copies == 0 && self.reqs[id].verdict.is_none() {
            self.resolve(id, verdict);
        }
    }

    /// Per-shard router load: queued plus running copies, inflated for
    /// shards still in their post-rejoin catch-up window.
    fn loads(&self, now: VirtualNs) -> Vec<usize> {
        self.shards
            .iter()
            .map(|sh| {
                let running = sh.inflight.iter().filter(|e| e.0 != usize::MAX).count();
                let mut l = sh.queue.len() + running;
                if now < sh.catchup_until {
                    l += self.cfg.shard.queue_capacity.max(8);
                }
                l
            })
            .collect()
    }

    /// Enqueues a copy of `id` on shard `s`. Returns `false` (and sheds
    /// nothing itself) when the tenant's queue share is full.
    fn enqueue_on(&mut self, s: usize, id: usize, _now: VirtualNs) -> bool {
        let t = self.reqs[id].tenant;
        let deadline = self.reqs[id].deadline_ns;
        if !self.shards[s].queue.try_push(t, id, deadline) {
            return false;
        }
        self.shards[s].stats.offered += 1;
        true
    }

    fn arrive(&mut self, id: usize, now: VirtualNs) {
        let t = self.reqs[id].tenant;
        if self.cfg.fairness {
            if let Some(bucket) = &mut self.buckets[t] {
                if !bucket.try_take(now) {
                    telemetry::instant_args(
                        "fleet",
                        "throttled",
                        arg2(
                            "req",
                            ArgValue::U64(id as u64),
                            "tenant",
                            ArgValue::U64(t as u64),
                        ),
                    );
                    self.resolve(id, Verdict::Shed(ShedReason::Throttled));
                    return;
                }
            }
        }
        let key = self.states[id].route_key;
        let target = if self.cfg.failover.enabled {
            let loads = self.loads(now);
            let Some(s) = self.ring.route(key, &loads, self.cfg.spill_bound_pct) else {
                // Every shard is dead: nothing can take the request.
                self.summary.lost_to_shards += 1;
                self.resolve(id, Verdict::Shed(ShedReason::ShardLost));
                return;
            };
            if Some(s) != self.ring.primary(key) {
                self.summary.spills += 1;
            }
            s
        } else {
            // Undefended: clients keep addressing the hash owner even
            // while it is down, and those requests are simply lost.
            let s = self.ring.owner(key);
            if !self.shards[s].alive {
                self.shards[s].stats.sheds += 1;
                self.summary.lost_to_shards += 1;
                self.resolve(id, Verdict::Shed(ShedReason::ShardLost));
                return;
            }
            s
        };
        self.states[id].primary = target;
        if !self.enqueue_on(target, id, now) {
            self.shards[target].stats.sheds += 1;
            telemetry::instant_args(
                "fleet",
                "shed_queue_full",
                arg2(
                    "req",
                    ArgValue::U64(id as u64),
                    "shard",
                    ArgValue::U64(target as u64),
                ),
            );
            if telemetry::active() {
                telemetry::incident(&format!(
                    "shed_queue_full req={id} shard={target} t_ns={now}"
                ));
            }
            self.resolve(id, Verdict::Shed(ShedReason::QueueFull));
            return;
        }
        self.states[id].copies = 1;
        if self.cfg.hedge.enabled && self.ring.alive_count() > 1 {
            let slack = self.reqs[id].slack_ns(now);
            let delay = (self.cfg.hedge.delay_us * NS_PER_US).min(slack / 2).max(1);
            self.events.push(now + delay, Event::Hedge(id));
        }
        self.dispatch(target, now);
    }

    fn hedge(&mut self, id: usize, now: VirtualNs) {
        if self.reqs[id].verdict.is_some() || self.states[id].hedged {
            return;
        }
        let key = self.states[id].route_key;
        // Duplicate onto the next distinct alive shard; fall back to the
        // ring's secondary when the original target is already gone.
        let twin = match self.ring.secondary(key) {
            Some(s) if s != self.states[id].primary => Some(s),
            _ => self
                .ring
                .primary(key)
                .filter(|&s| s != self.states[id].primary),
        };
        let Some(twin) = twin else { return };
        if !self.enqueue_on(twin, id, now) {
            return; // hedge suppressed: the twin's queue share is full
        }
        self.states[id].hedged = true;
        self.states[id].twin = Some(twin);
        self.states[id].copies += 1;
        self.summary.hedges_fired += 1;
        telemetry::instant_args(
            "fleet",
            "hedge_fired",
            arg2(
                "req",
                ArgValue::U64(id as u64),
                "shard",
                ArgValue::U64(twin as u64),
            ),
        );
        if telemetry::active() {
            telemetry::incident_kind(
                IncidentKind::HedgeFired,
                &format!("req={id} twin={twin} t_ns={now}"),
            );
        }
        self.dispatch(twin, now);
    }

    fn dispatch(&mut self, s: usize, now: VirtualNs) {
        if !self.shards[s].alive {
            return;
        }
        loop {
            let Some(inst) = self.shards[s].pool.acquire(now) else {
                if !self.shards[s].queue.is_empty() {
                    if let Some(at) = self.shards[s].pool.next_dispatchable_at(now) {
                        self.schedule_wake(s, at);
                    }
                }
                return;
            };
            // Pop, skipping stale copies whose twin already resolved the
            // request (hedge won elsewhere, or failover raced).
            let id = loop {
                match self.shards[s].queue.pop() {
                    None => return,
                    Some(id) if self.reqs[id].verdict.is_some() => continue,
                    Some(id) => break id,
                }
            };

            let Some(tier_idx) = choose_tier(
                self.catalog,
                &self.cfg.shard,
                &self.reqs[id],
                self.shards[s].queue.len(),
                self.shards[s].pool.healthy(now),
                now,
            ) else {
                self.shards[s].stats.sheds += 1;
                if telemetry::active() {
                    telemetry::incident(&format!("shed_hopeless req={id} shard={s} t_ns={now}"));
                }
                self.copy_dies(id, Verdict::Shed(ShedReason::Hopeless));
                continue;
            };

            let mut service_ns = service_time_ns(self.catalog, self.reqs[id].key, tier_idx);
            let fault = roll_dispatch_fault(
                &mut self.shards[s].injectors[inst],
                self.cfg.shard.faults.slow_factor,
                &mut service_ns,
            );
            // A stalled shard serves, just several times slower — the
            // latency-tail failure hedging is for.
            if now < self.shards[s].stall_until {
                service_ns *= self.shards[s].stall_factor.max(1);
            }
            // Suspicion-scored voting: a suspect instance re-executes the
            // dispatch (temporal duplicate-dispatch), doubling its
            // modeled service time.
            let voted = self.shards[s].integrity.dispatch_vote(inst);
            if voted {
                service_ns *= 2;
            }
            self.reqs[id].attempts += 1;
            self.reqs[id].tier_floor = tier_idx;
            let token = self.shards[s].dispatch_seq;
            self.shards[s].dispatch_seq += 1;
            self.shards[s].inflight[inst] = (id, token);
            self.shards[s].pool.begin(inst, now, service_ns);
            telemetry::complete_at(
                Lane::new("inst", (s * self.cfg.shard.instances + inst) as u32),
                "fleet",
                if fault.is_some() {
                    "serve_faulted"
                } else {
                    "serve"
                },
                now,
                service_ns,
                arg2(
                    "req",
                    ArgValue::U64(id as u64),
                    "tier",
                    ArgValue::Str(QualityTier::from_index(tier_idx).label()),
                ),
            );
            let epoch = self.shards[s].epoch;
            self.events.push(
                now + service_ns,
                Event::Complete {
                    shard: s,
                    inst,
                    req: id,
                    epoch,
                    tier: tier_idx,
                    token,
                    fault,
                    voted,
                },
            );
        }
    }

    /// Benches a lying instance for scrubbing: out of rotation until a
    /// scrub probe streak readmits it. A shard's last healthy instance is
    /// never pulled (degraded service beats no service), but its scrub
    /// schedule still runs so the integrity state stays live.
    fn bench_liar(&mut self, s: usize, inst: usize, now: VirtualNs) {
        if self.shards[s].pool.healthy(now) > 1 {
            self.shards[s].pool.quarantine(inst, BENCH_HORIZON_NS);
            telemetry::instant_args(
                "fleet",
                "bench_liar",
                arg2(
                    "shard",
                    ArgValue::U64(s as u64),
                    "inst",
                    ArgValue::U64(inst as u64),
                ),
            );
            if telemetry::active() {
                telemetry::incident(&format!(
                    "quarantine shard={s} inst={inst} liar=1 t_ns={now}"
                ));
            }
        }
        self.events.push(
            now + self.cfg.shard.integrity.scrub_period_us * NS_PER_US,
            Event::Scrub { shard: s, inst },
        );
    }

    /// One known-answer scrub probe against a benched instance.
    fn scrub(&mut self, s: usize, inst: usize, now: VirtualNs) {
        if !self.shards[s].integrity.is_benched(inst) {
            return;
        }
        if self.shards[s].integrity.scrub_probe(inst) {
            self.shards[s].pool.readmit(inst, now);
            telemetry::instant_args(
                "fleet",
                "scrub_readmit",
                arg2(
                    "shard",
                    ArgValue::U64(s as u64),
                    "inst",
                    ArgValue::U64(inst as u64),
                ),
            );
            if telemetry::active() {
                telemetry::incident(&format!(
                    "scrub_readmit shard={s} inst={inst} probes={} t_ns={now}",
                    self.shards[s].integrity.stats.scrub_probes
                ));
            }
            self.dispatch(s, now);
        } else if self.resolved < self.reqs.len() {
            self.events.push(
                now + self.cfg.shard.integrity.scrub_period_us * NS_PER_US,
                Event::Scrub { shard: s, inst },
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn complete(
        &mut self,
        s: usize,
        inst: usize,
        id: usize,
        epoch: u32,
        tier: usize,
        token: u64,
        fault: Option<FaultKind>,
        voted: bool,
        now: VirtualNs,
    ) {
        if epoch != self.shards[s].epoch {
            // The shard crashed while this dispatch ran; the copy was
            // already failed over or written off at crash time.
            return;
        }
        // Clear the inflight slot unless the instance was re-acquired at
        // this exact timestamp (the slot then belongs to the next
        // dispatch and must stay).
        if self.shards[s].inflight[inst] == (id, token) {
            self.shards[s].inflight[inst] = (usize::MAX, 0);
        }

        let quality = QualityTier::from_index(tier);
        let entry = *self.catalog.entry(self.reqs[id].key, quality);
        // Energy the dispatch actually spent: the catalog attempt cost,
        // doubled when suspicion voting re-executed it. The shard is
        // billed for every completion it produced — including copies
        // whose result turns out to be useless — while the fleet ledger
        // splits winning attempts from wasted ones below.
        let attempt_pj = if voted {
            2.0 * entry.energy_pj
        } else {
            entry.energy_pj
        };
        self.shards[s].stats.energy_pj += attempt_pj;
        // Per-shard power-rail counter track (pJ/µs ≡ µW), one lane per
        // fleet-global instance, mirroring the dispatch occupancy lanes.
        telemetry::counter_on(
            Lane::new("rail", (s * self.cfg.shard.instances + inst) as u32),
            "power_uw",
            entry.energy_pj / entry.modeled_us.max(1e-9),
        );

        if let Some(_kind) = fault {
            self.summary.fleet.wasted_energy_pj += attempt_pj;
            self.shards[s].injectors[inst].counters_mut().detected += 1;
            let quarantined = self
                .cfg
                .shard
                .breaker
                .on_fault(&mut self.shards[s].pool, inst, now)
                .is_some();
            if quarantined {
                self.shards[s].injectors[inst].counters_mut().quarantined += 1;
                if telemetry::active() {
                    telemetry::incident(&format!("quarantine shard={s} inst={inst} t_ns={now}"));
                }
                if let Some(at) = self.shards[s].pool.next_dispatchable_at(now) {
                    self.schedule_wake(s, at);
                }
            }
            if self.reqs[id].verdict.is_some() {
                return; // a twin already won; drop the faulted copy
            }
            if self.reqs[id].attempts > self.cfg.shard.retry.max_retries {
                if telemetry::active() {
                    telemetry::incident(&format!(
                        "failed_faults req={id} shard={s} attempts={} t_ns={now}",
                        self.reqs[id].attempts
                    ));
                }
                self.copy_dies(id, Verdict::FailedFaults);
            } else {
                let shift = (self.reqs[id].attempts - 1).min(16);
                let backoff = (self.cfg.shard.retry.backoff_us * NS_PER_US) << shift;
                self.shards[s].injectors[inst].counters_mut().redispatches += 1;
                self.summary.fleet.retries += 1;
                self.events
                    .push(now + backoff, Event::Enqueue { shard: s, req: id });
            }
            return;
        }

        self.shards[s].pool.record_success(inst);
        if self.reqs[id].verdict.is_some() {
            // The hedge twin (or a failover copy) already resolved it:
            // the straggler's energy bought nothing.
            self.summary.hedge_wasted += 1;
            self.summary.fleet.wasted_energy_pj += attempt_pj;
            return;
        }
        if entry.solved {
            // Integrity pipeline: roll this instance's silent-corruption
            // stream (resolving any vote), then certify before the
            // request may resolve as Completed.
            let ci = self.shards[s].integrity.completion(inst, voted);
            if ci.bench {
                self.bench_liar(s, inst, now);
            }
            let mut done = now;
            if self.cfg.shard.integrity.certify {
                let certify_ns = us_to_ns(entry.certify_us);
                let stats = &mut self.shards[s].integrity.stats;
                stats.certify_ns += certify_ns;
                stats.certify_hist.observe(entry.certify_us.round() as u64);
                done = now + certify_ns;
                if ci.ships_corrupt {
                    // The independent cascade rejects the corrupted plan:
                    // attribute, then re-plan degraded under whatever
                    // budget remains. The rejected attempt's energy
                    // bought nothing.
                    self.summary.fleet.wasted_energy_pj += attempt_pj;
                    self.shards[s].integrity.stats.certify_failed += 1;
                    self.shards[s].integrity.accuse(inst);
                    telemetry::instant_args(
                        "fleet",
                        "certify_failed",
                        arg2(
                            "req",
                            ArgValue::U64(id as u64),
                            "shard",
                            ArgValue::U64(s as u64),
                        ),
                    );
                    if telemetry::active() {
                        telemetry::incident(&format!(
                            "certify_failed req={id} shard={s} inst={inst} tier={} t_ns={now}",
                            quality.label()
                        ));
                    }
                    if self.reqs[id].attempts > self.cfg.shard.retry.max_retries {
                        // Replan budget exhausted: fail closed — an
                        // unresolved request, never an unsafe plan.
                        self.copy_dies(id, Verdict::FailedFaults);
                        return;
                    }
                    if tier + 1 < QualityTier::COUNT {
                        self.reqs[id].tier_floor = self.reqs[id].tier_floor.max(tier + 1);
                        self.summary.fleet.tier_stepdowns += 1;
                    }
                    self.events.push(done, Event::Enqueue { shard: s, req: id });
                    return;
                }
                self.shards[s].integrity.stats.certified += 1;
                self.shards[s].integrity.exonerate(inst);
            } else if ci.ships_corrupt {
                // Undefended: the unsafe plan ships as a "success".
                self.shards[s].integrity.stats.sdc_escaped += 1;
                telemetry::instant_args(
                    "fleet",
                    "sdc_escaped",
                    arg2(
                        "req",
                        ArgValue::U64(id as u64),
                        "shard",
                        ArgValue::U64(s as u64),
                    ),
                );
                if telemetry::active() {
                    telemetry::incident(&format!(
                        "sdc_escaped req={id} shard={s} inst={inst} tier={} t_ns={now}",
                        quality.label()
                    ));
                }
            }
            let now = done;
            let latency = now - self.reqs[id].arrival_ns;
            let verdict = if now <= self.reqs[id].deadline_ns {
                Verdict::OnTime {
                    tier: quality,
                    latency_ns: latency,
                }
            } else {
                let late_ns = now - self.reqs[id].deadline_ns;
                if telemetry::active() {
                    telemetry::incident(&format!(
                        "deadline_miss req={id} shard={s} tier={} late_ns={late_ns} t_ns={now}",
                        quality.label()
                    ));
                }
                Verdict::Late {
                    tier: quality,
                    latency_ns: latency,
                }
            };
            if self.states[id].twin == Some(s) {
                self.summary.hedge_wins += 1;
            }
            self.summary.fleet.tier_served[tier] += 1;
            self.summary.fleet.energy_pj += attempt_pj;
            self.summary.fleet.tier_energy_pj[tier] += attempt_pj;
            if tier > 0 {
                // Energy the ladder saved by serving this key below full
                // quality.
                let full_pj = self
                    .catalog
                    .entry(self.reqs[id].key, QualityTier::Full)
                    .energy_pj;
                self.summary.fleet.degraded_saved_pj += full_pj - entry.energy_pj;
            }
            if let Some(budget) = self.cfg.shard.energy_budget_pj_per_plan {
                if attempt_pj > budget {
                    self.summary.fleet.energy_breaches += 1;
                    telemetry::instant_args(
                        "fleet",
                        "energy_budget_breach",
                        arg2(
                            "req",
                            ArgValue::U64(id as u64),
                            "pj",
                            ArgValue::F64(attempt_pj),
                        ),
                    );
                    if telemetry::active() {
                        telemetry::incident_kind(
                            IncidentKind::EnergyBudgetBreach,
                            &format!(
                                "req={id} shard={s} tier={} pj={:.0} budget_pj={budget:.0} \
                                 t_ns={now}",
                                quality.label(),
                                attempt_pj
                            ),
                        );
                    }
                }
            }
            self.latencies.push(latency);
            self.shards[s].latencies.push(latency);
            self.shards[s].stats.served += 1;
            if matches!(verdict, Verdict::OnTime { .. }) {
                self.shards[s].stats.on_time += 1;
            }
            let t = self.reqs[id].tenant;
            self.tenants[t].energy_pj += attempt_pj;
            self.tenant_lat[t].push(latency);
            self.resolve(id, verdict);
        } else if tier + 1 < QualityTier::COUNT {
            // Budget exhausted without a path: the attempt's energy is
            // spent either way.
            self.summary.fleet.wasted_energy_pj += attempt_pj;
            self.reqs[id].tier_floor = self.reqs[id].tier_floor.max(tier + 1);
            self.summary.fleet.tier_stepdowns += 1;
            if !self.enqueue_on(s, id, now) {
                self.shards[s].stats.sheds += 1;
                self.copy_dies(id, Verdict::Shed(ShedReason::QueueFull));
            }
        } else {
            self.summary.fleet.wasted_energy_pj += attempt_pj;
            self.copy_dies(id, Verdict::Unsolved);
        }
    }

    /// A copy re-enters shard `s` (retry backoff, failover, step-down
    /// deferred through the event queue). Dead-shard targets re-route
    /// (defended) or die (undefended).
    fn re_enqueue(&mut self, s: usize, id: usize, now: VirtualNs) {
        if self.reqs[id].verdict.is_some() {
            return;
        }
        if !self.shards[s].alive {
            self.failover_copy(id, s, now);
            return;
        }
        if self.enqueue_on(s, id, now) {
            self.dispatch(s, now);
        } else {
            self.shards[s].stats.sheds += 1;
            self.copy_dies(id, Verdict::Shed(ShedReason::QueueFull));
        }
    }

    /// Re-routes one copy off dead shard `from`, consuming failover
    /// budget; without budget (or an alive target, or failover at all)
    /// the copy is lost.
    fn failover_copy(&mut self, id: usize, from: usize, now: VirtualNs) {
        if self.cfg.failover.enabled && self.states[id].failovers < self.cfg.failover.max_failovers
        {
            let loads = self.loads(now);
            if let Some(target) =
                self.ring
                    .route(self.states[id].route_key, &loads, self.cfg.spill_bound_pct)
            {
                self.states[id].failovers += 1;
                self.summary.rerouted += 1;
                self.events.push(
                    now,
                    Event::Enqueue {
                        shard: target,
                        req: id,
                    },
                );
                return;
            }
        }
        self.shards[from].stats.sheds += 1;
        self.summary.lost_to_shards += 1;
        self.copy_dies(id, Verdict::Shed(ShedReason::ShardLost));
    }

    fn crash(&mut self, s: usize, duration_ns: VirtualNs, now: VirtualNs) {
        if !self.shards[s].alive {
            return; // already down; the earlier rejoin stands
        }
        self.shards[s].alive = false;
        self.shards[s].epoch += 1;
        self.shards[s].stats.kills += 1;
        self.summary.shard_kills += 1;
        if self.cfg.failover.enabled {
            self.ring.remove(s);
        }
        // The pool state dies with the shard: bank its counters and
        // rebuild it for the rejoin.
        self.shards[s].busy_accum += self.shards[s].pool.total_busy_ns();
        self.shards[s].quar_accum += self.shards[s].pool.total_quarantines();
        self.shards[s].pool = AcceleratorPool::new(self.cfg.shard.instances);
        self.shards[s].wake_at = None;
        let mut victims = self.shards[s].queue.drain();
        for entry in &mut self.shards[s].inflight {
            if entry.0 != usize::MAX {
                victims.push(entry.0);
                *entry = (usize::MAX, 0);
            }
        }
        let before_rerouted = self.summary.rerouted;
        let before_lost = self.summary.lost_to_shards;
        for id in victims {
            if self.reqs[id].verdict.is_some() {
                continue;
            }
            self.failover_copy(id, s, now);
        }
        let rerouted = self.summary.rerouted - before_rerouted;
        let lost = self.summary.lost_to_shards - before_lost;
        telemetry::instant_args(
            "fleet",
            "shard_crash",
            arg2(
                "shard",
                ArgValue::U64(s as u64),
                "rerouted",
                ArgValue::U64(rerouted),
            ),
        );
        if telemetry::active() {
            telemetry::incident_kind(
                IncidentKind::ShardFailover,
                &format!("shard={s} rerouted={rerouted} lost={lost} t_ns={now}"),
            );
        }
        self.events.push(now + duration_ns.max(1), Event::Rejoin(s));
    }

    fn rejoin(&mut self, s: usize, now: VirtualNs) {
        if self.shards[s].alive {
            return;
        }
        self.shards[s].alive = true;
        self.shards[s].stall_until = 0;
        if self.cfg.failover.enabled {
            self.ring.restore(s);
            self.shards[s].catchup_until = now + self.cfg.failover.catchup_us * NS_PER_US;
        }
        telemetry::instant_args(
            "fleet",
            "shard_rejoin",
            arg2("shard", ArgValue::U64(s as u64), "t_ns", ArgValue::U64(now)),
        );
        self.dispatch(s, now);
    }

    fn chaos(&mut self, idx: usize, now: VirtualNs) {
        let ev = self.chaos[idx];
        match ev.kind {
            ShardFaultKind::Crash => self.crash(ev.shard, ev.duration_ns, now),
            ShardFaultKind::Stall => {
                let sh = &mut self.shards[ev.shard];
                sh.stall_until = sh.stall_until.max(now + ev.duration_ns);
                sh.stall_factor = ev.slow_factor.max(2);
                telemetry::instant_args(
                    "fleet",
                    "shard_stall",
                    arg2(
                        "shard",
                        ArgValue::U64(ev.shard as u64),
                        "factor",
                        ArgValue::U64(sh.stall_factor),
                    ),
                );
            }
            // `ShardFaultPlan::schedule` unrolls flaps into crashes.
            ShardFaultKind::Flap => self.crash(ev.shard, ev.duration_ns, now),
        }
    }
}

/// Runs the sharded fleet simulation and returns its summary.
/// Deterministic: identical inputs yield an identical summary, on any
/// machine and at any ambient thread count.
///
/// `policies` pairs with `tenants` (weights, token buckets, activity
/// windows); pass an empty slice for all-default policies.
///
/// # Panics
///
/// Panics if the catalog is empty, `cfg.shards == 0`,
/// `cfg.shard.instances == 0`, or `policies` is non-empty with a length
/// different from `tenants`.
pub fn run_fleet(
    catalog: &PlanCatalog,
    tenants: &[TenantSpec],
    policies: &[TenantPolicy],
    duration_ns: VirtualNs,
    cfg: &FleetConfig,
    chaos_plan: &ShardFaultPlan,
) -> FleetSummary {
    assert!(catalog.num_keys() > 0, "empty catalog");
    assert!(cfg.shards > 0, "fleet needs at least one shard");
    assert!(
        policies.is_empty() || policies.len() == tenants.len(),
        "policies must pair with tenants"
    );
    let default_policy = TenantPolicy::default();
    let policy = |t: usize| {
        if policies.is_empty() {
            &default_policy
        } else {
            &policies[t]
        }
    };

    let mut reqs = Vec::new();
    let mut states = Vec::new();
    let mut events = EventQueue::new();
    let mut tenant_stats = Vec::with_capacity(tenants.len());
    for (ti, tenant) in tenants.iter().enumerate() {
        let arrivals = match policy(ti).window_us {
            Some((start_us, end_us)) => tenant
                .process
                .generate_between(start_us * NS_PER_US, (end_us * NS_PER_US).min(duration_ns)),
            None => tenant.process.generate(duration_ns),
        };
        let mut stats = TenantStats::new(tenant.label, duration_ns);
        for (ai, arrival_ns) in arrivals.into_iter().enumerate() {
            let key = (mix(cfg.seed ^ ((ti as u64) << 40) ^ ai as u64) % catalog.num_keys() as u64)
                as usize;
            let id = reqs.len();
            reqs.push(Request {
                tenant: ti,
                arrival_ns,
                deadline_ns: arrival_ns + tenant.deadline_us * NS_PER_US,
                key,
                attempts: 0,
                tier_floor: 0,
                verdict: None,
            });
            states.push(ReqState {
                route_key: ((ti as u64) << 40) ^ key as u64,
                primary: 0,
                hedged: false,
                twin: None,
                copies: 0,
                failovers: 0,
            });
            stats.offered += 1;
            events.push(arrival_ns, Event::Arrive(id));
        }
        tenant_stats.push(stats);
    }

    let weights: Vec<u64> = (0..tenants.len()).map(|t| policy(t).weight).collect();
    let queue_capacity = if cfg.shard.admission {
        cfg.shard.queue_capacity
    } else {
        // The naive baseline queues without bound (capped only to keep
        // the share arithmetic in range).
        1 << 32
    };
    let shards: Vec<Shard> = (0..cfg.shards)
        .map(|s| Shard {
            queue: FairQueue::new(cfg.shard.policy, queue_capacity, &weights, cfg.fairness),
            pool: AcceleratorPool::new(cfg.shard.instances),
            injectors: build_injectors(
                &cfg.shard.faults,
                cfg.shard.instances,
                cfg.seed,
                s as u64 + 1,
            ),
            integrity: build_integrity(
                cfg.shard.integrity,
                &cfg.shard.faults,
                cfg.shard.instances,
                cfg.seed,
                s as u64 + 1,
            ),
            inflight: vec![(usize::MAX, 0); cfg.shard.instances],
            dispatch_seq: 0,
            wake_at: None,
            alive: true,
            epoch: 0,
            stall_until: 0,
            stall_factor: 1,
            catchup_until: 0,
            busy_accum: 0,
            quar_accum: 0,
            stats: ShardStats::default(),
            latencies: Vec::new(),
        })
        .collect();

    let buckets: Vec<Option<TokenBucket>> = (0..tenants.len())
        .map(|t| {
            policy(t)
                .bucket
                .map(|(rate, burst)| TokenBucket::new(rate, burst))
        })
        .collect();

    let chaos = chaos_plan.schedule(cfg.shards, duration_ns);
    for (i, ev) in chaos.iter().enumerate() {
        events.push(ev.at_ns, Event::Chaos(i));
    }

    let offered = reqs.len() as u64;
    let mut fleet = Fleet {
        catalog,
        cfg,
        ring: HashRing::new(cfg.shards, cfg.vnodes_per_shard, cfg.seed),
        reqs,
        states,
        shards,
        buckets,
        events,
        chaos,
        summary: FleetSummary {
            fleet: ServiceSummary::for_run(duration_ns, cfg.shards * cfg.shard.instances, offered),
            ..FleetSummary::default()
        },
        tenants: tenant_stats,
        tenant_lat: vec![Vec::new(); tenants.len()],
        latencies: Vec::new(),
        resolved: 0,
    };

    while let Some((now, ev)) = fleet.events.pop() {
        telemetry::set_time(now);
        match ev {
            Event::Arrive(id) => fleet.arrive(id, now),
            Event::Enqueue { shard, req } => fleet.re_enqueue(shard, req, now),
            Event::Complete {
                shard,
                inst,
                req,
                epoch,
                tier,
                token,
                fault,
                voted,
            } => {
                fleet.complete(shard, inst, req, epoch, tier, token, fault, voted, now);
                fleet.dispatch(shard, now);
            }
            Event::Wake(s) => {
                if fleet.shards[s].wake_at.is_some_and(|w| w <= now) {
                    fleet.shards[s].wake_at = None;
                }
                fleet.dispatch(s, now);
            }
            Event::Hedge(id) => fleet.hedge(id, now),
            Event::Chaos(idx) => fleet.chaos(idx, now),
            Event::Rejoin(s) => fleet.rejoin(s, now),
            Event::Scrub { shard, inst } => fleet.scrub(shard, inst, now),
        }
    }

    debug_assert!(
        fleet.reqs.iter().all(|r| r.verdict.is_some()),
        "every request must resolve"
    );

    let mut summary = fleet.summary;
    for (t, lat) in fleet.tenant_lat.into_iter().enumerate() {
        fleet.tenants[t].set_latencies(lat);
    }
    summary.tenants = fleet.tenants;
    for mut sh in fleet.shards {
        summary.fleet.quarantines += sh.quar_accum + sh.pool.total_quarantines();
        summary.fleet.busy_ns += sh.busy_accum + sh.pool.total_busy_ns();
        sh.stats.quarantines = sh.quar_accum + sh.pool.total_quarantines();
        sh.stats.busy_ns = sh.busy_accum + sh.pool.total_busy_ns();
        for inj in &sh.injectors {
            summary.fleet.resilience.merge(inj.counters());
        }
        summary.fleet.integrity.merge(&sh.integrity.stats);
        sh.stats.set_latencies(std::mem::take(&mut sh.latencies));
        summary.shards.push(sh.stats);
    }
    summary.fleet.set_latencies(fleet.latencies);
    summary
}

/// [`run_fleet`] with telemetry: installs a `("fleet", stream_index)`
/// stream on this thread for the duration of the run, so routing
/// decisions, shard crashes, hedges, and flight-recorder incidents land
/// in `session`. The summary is identical to the untraced run.
#[allow(clippy::too_many_arguments)]
pub fn run_fleet_traced(
    catalog: &PlanCatalog,
    tenants: &[TenantSpec],
    policies: &[TenantPolicy],
    duration_ns: VirtualNs,
    cfg: &FleetConfig,
    chaos_plan: &ShardFaultPlan,
    session: &telemetry::TelemetrySession,
    stream_index: u32,
) -> FleetSummary {
    let _stream = session.install("fleet", stream_index);
    run_fleet(catalog, tenants, policies, duration_ns, cfg, chaos_plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_octree::{benchmark_scenes, Scene};
    use mp_robot::RobotModel;
    use mp_sim::arrival::{ArrivalKind, ArrivalProcess};
    use mp_sim::fault::ShardFaultEvent;
    use std::sync::OnceLock;
    use threadpool::ThreadPool;

    fn catalog() -> &'static PlanCatalog {
        static CAT: OnceLock<PlanCatalog> = OnceLock::new();
        CAT.get_or_init(|| {
            let scenes: Vec<Scene> = benchmark_scenes().into_iter().take(2).collect();
            PlanCatalog::build(&RobotModel::jaco2(), &scenes, 2, 3, &ThreadPool::new(2))
                .expect("catalog builds")
        })
    }

    const DURATION: VirtualNs = 50_000_000; // 50 ms simulated

    fn fleet_cfg(shards: usize) -> FleetConfig {
        FleetConfig {
            shards,
            shard: ServiceConfig {
                instances: 2,
                ..ServiceConfig::default()
            },
            ..FleetConfig::default()
        }
    }

    fn tenants(rate: f64) -> Vec<TenantSpec> {
        let deadline_us = (4.0 * catalog().mean_service_us(QualityTier::Full)) as u64;
        vec![
            TenantSpec {
                label: "interactive",
                process: ArrivalProcess {
                    kind: ArrivalKind::Poisson,
                    rate_per_s: rate * 0.7,
                    seed: 101,
                },
                deadline_us,
            },
            TenantSpec {
                label: "batchy",
                process: ArrivalProcess {
                    kind: ArrivalKind::Bursty {
                        burst_factor: 5.0,
                        period_us: 5_000,
                        duty: 0.2,
                    },
                    rate_per_s: rate * 0.3,
                    seed: 202,
                },
                deadline_us: deadline_us * 2,
            },
        ]
    }

    fn kill_two(at_ns: u64, down_ns: u64) -> ShardFaultPlan {
        ShardFaultPlan::scripted(
            5,
            vec![
                ShardFaultEvent {
                    at_ns,
                    shard: 0,
                    kind: ShardFaultKind::Crash,
                    duration_ns: down_ns,
                    slow_factor: 1,
                },
                ShardFaultEvent {
                    at_ns,
                    shard: 2,
                    kind: ShardFaultKind::Crash,
                    duration_ns: down_ns,
                    slow_factor: 1,
                },
            ],
        )
    }

    #[test]
    fn chaos_runs_are_deterministic_and_conserving() {
        let cfg = fleet_cfg(4);
        let rate = catalog().saturating_rate_per_s(4 * cfg.shard.instances);
        let chaos = ShardFaultPlan {
            crash_rate_per_s: 20.0,
            stall_rate_per_s: 20.0,
            flap_rate_per_s: 10.0,
            ..ShardFaultPlan::none(7)
        };
        let a = run_fleet(catalog(), &tenants(rate), &[], DURATION, &cfg, &chaos);
        let b = run_fleet(catalog(), &tenants(rate), &[], DURATION, &cfg, &chaos);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "summaries differ");
        let f = &a.fleet;
        assert_eq!(
            f.offered,
            f.on_time + f.late + f.shed() + f.failed_faults + f.unsolved,
            "every request must resolve exactly once"
        );
        assert!(f.offered > 100, "expected meaningful traffic");
        assert_eq!(a.shards.len(), 4);
        assert_eq!(a.tenants.len(), 2);
        assert_eq!(
            a.tenants.iter().map(|t| t.offered).sum::<u64>(),
            f.offered,
            "tenant rows must partition the offered traffic"
        );
        assert!(a.imbalance() >= 1.0);
        // Energy accounting: completions carry energy, the tier split and
        // the tenant rows both sum to the fleet total, and the shard rows
        // cover everything the fleet spent (winning + wasted attempts;
        // shards may also bill crash-stale copies the fleet never saw
        // resolve, so they bound the fleet ledger from above).
        assert!(f.energy_pj > 0.0, "completions must spend energy");
        let tier_sum: f64 = f.tier_energy_pj.iter().sum();
        assert!((tier_sum - f.energy_pj).abs() < 1e-6 * f.energy_pj.max(1.0));
        let tenant_sum: f64 = a.tenants.iter().map(|t| t.energy_pj).sum();
        assert!((tenant_sum - f.energy_pj).abs() < 1e-6 * f.energy_pj.max(1.0));
        let shard_sum: f64 = a.shards.iter().map(|s| s.energy_pj).sum();
        assert!(
            shard_sum >= f.energy_pj + f.wasted_energy_pj - 1e-6 * shard_sum.max(1.0),
            "shard rows must cover the fleet ledger: {shard_sum} < {}",
            f.energy_pj + f.wasted_energy_pj
        );
        assert!(f.energy_per_plan_pj() > 0.0);
    }

    #[test]
    fn failover_beats_the_undefended_fleet_through_a_double_kill() {
        let rate = 1.2 * catalog().saturating_rate_per_s(4 * 2);
        let chaos = kill_two(DURATION / 4, DURATION / 2);
        let defended = fleet_cfg(4);
        let undefended = FleetConfig {
            failover: FailoverConfig {
                enabled: false,
                ..FailoverConfig::default()
            },
            hedge: HedgeConfig {
                enabled: false,
                delay_us: 400,
            },
            fairness: false,
            ..fleet_cfg(4)
        };
        let d = run_fleet(catalog(), &tenants(rate), &[], DURATION, &defended, &chaos);
        let u = run_fleet(
            catalog(),
            &tenants(rate),
            &[],
            DURATION,
            &undefended,
            &chaos,
        );
        assert!(d.shard_kills >= 2 && u.shard_kills >= 2);
        assert!(
            d.rerouted > 0,
            "failover must re-route the dead shards' load"
        );
        assert_eq!(d.fleet.shed_shard_lost, d.lost_to_shards);
        assert!(
            u.fleet.shed_shard_lost > 0,
            "undefended kills must lose requests"
        );
        assert!(
            d.fleet.goodput_rps() > u.fleet.goodput_rps(),
            "defended goodput {:.0} <= undefended {:.0}",
            d.fleet.goodput_rps(),
            u.fleet.goodput_rps()
        );
    }

    #[test]
    fn fairness_shields_the_steady_tenant_from_an_adversary() {
        let rate = catalog().saturating_rate_per_s(4 * 2);
        let deadline_us = (4.0 * catalog().mean_service_us(QualityTier::Full)) as u64;
        let steady = TenantSpec {
            label: "steady",
            process: ArrivalProcess {
                kind: ArrivalKind::Poisson,
                rate_per_s: rate * 0.5,
                seed: 11,
            },
            deadline_us,
        };
        let adversary = TenantSpec {
            label: "adversary",
            process: ArrivalProcess {
                kind: ArrivalKind::Adversarial { batch: 64 },
                rate_per_s: rate * 2.0,
                seed: 12,
            },
            deadline_us,
        };
        let policies = vec![
            TenantPolicy {
                weight: 4,
                ..TenantPolicy::default()
            },
            TenantPolicy {
                weight: 1,
                bucket: Some((rate * 0.5, 32)),
                ..TenantPolicy::default()
            },
        ];
        let chaos = ShardFaultPlan::none(1);
        let fair = fleet_cfg(4);
        let unfair = FleetConfig {
            fairness: false,
            ..fleet_cfg(4)
        };
        let specs = [steady, adversary];
        let f = run_fleet(catalog(), &specs, &policies, DURATION, &fair, &chaos);
        let u = run_fleet(catalog(), &specs, &policies, DURATION, &unfair, &chaos);
        assert!(
            f.tenants[1].throttled > 0,
            "the adversary must hit its token bucket"
        );
        assert!(
            f.tenants[0].on_time > u.tenants[0].on_time,
            "fairness must shield the steady tenant: fair {} <= unfair {}",
            f.tenants[0].on_time,
            u.tenants[0].on_time
        );
    }

    #[test]
    fn hedging_fires_on_a_stalled_shard_and_wins() {
        let rate = 0.5 * catalog().saturating_rate_per_s(4 * 2);
        let chaos = ShardFaultPlan::scripted(
            3,
            (0..4)
                .map(|shard| ShardFaultEvent {
                    at_ns: DURATION / 8,
                    shard,
                    kind: ShardFaultKind::Stall,
                    duration_ns: DURATION / 2,
                    slow_factor: 16,
                })
                .take(1)
                .collect(),
        );
        let hedged = fleet_cfg(4);
        let unhedged = FleetConfig {
            hedge: HedgeConfig {
                enabled: false,
                delay_us: 400,
            },
            ..fleet_cfg(4)
        };
        let h = run_fleet(catalog(), &tenants(rate), &[], DURATION, &hedged, &chaos);
        let n = run_fleet(catalog(), &tenants(rate), &[], DURATION, &unhedged, &chaos);
        assert!(h.hedges_fired > 0, "stalls must trigger hedges");
        assert!(h.hedge_wins > 0, "some hedges must win the race");
        assert_eq!(n.hedges_fired, 0);
        assert!(
            h.fleet.on_time >= n.fleet.on_time,
            "hedging must not lose goodput: {} < {}",
            h.fleet.on_time,
            n.fleet.on_time
        );
    }

    #[test]
    fn fleet_certification_is_sound_under_sdc_and_chaos() {
        use crate::integrity::IntegrityConfig;
        use crate::service::FaultProfile;
        let rate = catalog().saturating_rate_per_s(4 * 2);
        let chaos = kill_two(DURATION / 4, DURATION / 4);
        let sdc = FaultProfile::none().with_sdc(0.01, Some(0), 30.0);
        let undefended = FleetConfig {
            shard: ServiceConfig {
                instances: 2,
                faults: sdc,
                ..ServiceConfig::default()
            },
            ..fleet_cfg(4)
        };
        let defended = FleetConfig {
            shard: ServiceConfig {
                integrity: IntegrityConfig::full(),
                ..undefended.shard
            },
            ..undefended
        };
        let u = run_fleet(
            catalog(),
            &tenants(rate),
            &[],
            DURATION,
            &undefended,
            &chaos,
        );
        let d = run_fleet(catalog(), &tenants(rate), &[], DURATION, &defended, &chaos);
        assert!(u.fleet.integrity.sdc_injected > 0, "SDC must fire");
        assert!(
            u.fleet.integrity.sdc_escaped > 0,
            "undefended shards must ship unsafe plans"
        );
        assert_eq!(
            d.fleet.integrity.sdc_escaped, 0,
            "the defended fleet must ship zero unsafe plans"
        );
        assert!(d.fleet.integrity.certified > 0);
        assert!(d.fleet.integrity.certify_failed > 0);
        assert!(d.fleet.integrity.certify_ns > 0);
        // Both runs stay conserving through crashes + certification.
        for s in [&u, &d] {
            let f = &s.fleet;
            assert_eq!(
                f.offered,
                f.on_time + f.late + f.shed() + f.failed_faults + f.unsolved,
                "every request must resolve exactly once"
            );
        }
        // Determinism of the defended run.
        let d2 = run_fleet(catalog(), &tenants(rate), &[], DURATION, &defended, &chaos);
        assert_eq!(format!("{d:?}"), format!("{d2:?}"));
    }

    #[test]
    fn fleet_scrub_readmits_a_benched_hot_lane() {
        use crate::integrity::IntegrityConfig;
        use crate::service::FaultProfile;
        let rate = catalog().saturating_rate_per_s(2 * 2);
        let cfg = FleetConfig {
            shard: ServiceConfig {
                instances: 2,
                faults: FaultProfile::none().with_sdc(0.004, Some(0), 100.0),
                integrity: IntegrityConfig::full(),
                ..ServiceConfig::default()
            },
            ..fleet_cfg(2)
        };
        let s = run_fleet(
            catalog(),
            &tenants(rate),
            &[],
            2 * DURATION,
            &cfg,
            &ShardFaultPlan::none(0),
        );
        assert_eq!(s.fleet.integrity.sdc_escaped, 0);
        assert!(s.fleet.integrity.votes > 0, "suspicion must engage voting");
        assert!(s.fleet.integrity.vote_overrides > 0);
        assert!(s.fleet.integrity.liars_benched > 0);
        assert!(
            s.fleet.integrity.scrub_readmits > 0,
            "scrub must readmit within the run"
        );
    }

    #[test]
    fn single_shard_fleet_degenerates_gracefully() {
        let cfg = FleetConfig {
            hedge: HedgeConfig {
                enabled: true,
                delay_us: 400,
            },
            ..fleet_cfg(1)
        };
        let rate = 0.5 * catalog().saturating_rate_per_s(cfg.shard.instances);
        let s = run_fleet(
            catalog(),
            &tenants(rate),
            &[],
            DURATION,
            &cfg,
            &ShardFaultPlan::none(0),
        );
        assert_eq!(s.hedges_fired, 0, "nowhere to hedge with one shard");
        assert_eq!(s.fleet.shed_shard_lost, 0);
        assert!(s.fleet.on_time > 0);
    }
}
