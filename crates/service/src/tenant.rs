//! Per-tenant isolation: token-bucket admission and weighted fair
//! queueing.
//!
//! The single-shard service treats all tenants as one traffic stream, so
//! one adversarial tenant fills the bounded queue and everyone sheds. The
//! fleet isolates tenants twice:
//!
//! * **Admission** ([`TokenBucket`]): each tenant may carry a rate
//!   contract; arrivals beyond it are throttled at the door before they
//!   can occupy any queue. The bucket runs on integer micro-tokens in
//!   virtual nanoseconds, so refills are exact and deterministic.
//! * **Queueing** ([`FairQueue`]): each shard queue splits into
//!   per-tenant subqueues (EDF or FIFO *within* a tenant, as before) and
//!   serves them by weighted fair queueing — a virtual-finish-time
//!   scheduler, so a tenant's share of dispatches tracks its weight no
//!   matter how deep its own backlog gets. Each tenant also gets a
//!   weight-proportional slice of the queue capacity, so queue-full
//!   sheds land on the tenant that overflowed, not on its neighbors.
//!
//! With fairness disabled the queue degenerates to the single shared
//! bounded queue of the single-shard service, which keeps the undefended
//! baseline honest.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mp_sim::vtime::VirtualNs;

use crate::queue::QueuePolicy;

/// A tenant's fleet policy: its fair-queueing weight, optional rate
/// contract, and optional activity window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantPolicy {
    /// Weighted-fair-queueing weight (dispatch share and queue share are
    /// proportional to it).
    pub weight: u64,
    /// Token-bucket contract as `(rate_per_s, burst)`; `None` admits
    /// everything.
    pub bucket: Option<(f64, u32)>,
    /// Arrival window in µs from run start; `None` spans the whole run.
    /// Lets a chaos scenario switch an adversarial tenant on mid-run.
    pub window_us: Option<(u64, u64)>,
}

impl Default for TenantPolicy {
    fn default() -> TenantPolicy {
        TenantPolicy {
            weight: 1,
            bucket: None,
            window_us: None,
        }
    }
}

/// Micro-tokens per admission token.
const UTOKENS: u64 = 1_000_000;

/// A deterministic token bucket in integer micro-tokens: refill is
/// `rate · Δt` computed exactly in u128, truncated to micro-tokens, so a
/// run replays identically everywhere.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    /// Refill rate in micro-tokens per second.
    rate_utps: u64,
    /// Bucket capacity in micro-tokens (the burst allowance).
    cap_ut: u64,
    level_ut: u64,
    last_ns: VirtualNs,
}

impl TokenBucket {
    /// A bucket admitting `rate_per_s` sustained with `burst` extra
    /// requests of headroom, starting full.
    pub fn new(rate_per_s: f64, burst: u32) -> TokenBucket {
        let cap = u64::from(burst.max(1)) * UTOKENS;
        TokenBucket {
            rate_utps: (rate_per_s.max(0.0) * UTOKENS as f64).round() as u64,
            cap_ut: cap,
            level_ut: cap,
            last_ns: 0,
        }
    }

    /// Refills for the elapsed virtual time, then takes one token.
    /// Returns `false` (throttle) if the bucket is empty.
    pub fn try_take(&mut self, now: VirtualNs) -> bool {
        let dt = now.saturating_sub(self.last_ns);
        self.last_ns = now;
        let refill = (u128::from(self.rate_utps) * u128::from(dt) / 1_000_000_000) as u64;
        self.level_ut = (self.level_ut.saturating_add(refill)).min(self.cap_ut);
        if self.level_ut >= UTOKENS {
            self.level_ut -= UTOKENS;
            true
        } else {
            false
        }
    }
}

/// Virtual-time scale for WFQ strides (`stride = SCALE / weight`).
const WFQ_SCALE: u64 = 1 << 32;

/// A bounded per-tenant fair queue: EDF/FIFO within a tenant, weighted
/// fair queueing across tenants, weight-proportional capacity shares.
#[derive(Clone, Debug)]
pub struct FairQueue {
    policy: QueuePolicy,
    fair: bool,
    /// Per-tenant `(priority, seq, id)` min-heaps (one shared heap at
    /// index 0 when fairness is off).
    heaps: Vec<BinaryHeap<Reverse<(VirtualNs, u64, usize)>>>,
    /// Per-tenant capacity shares (the full capacity when unfair).
    shares: Vec<usize>,
    /// Per-tenant WFQ strides.
    strides: Vec<u64>,
    /// Per-tenant virtual finish time of the head request.
    vft: Vec<u64>,
    /// Scheduler virtual clock (the vft of the last dispatched tenant).
    vnow: u64,
    seq: u64,
    len: usize,
}

impl FairQueue {
    /// A fair queue of total capacity `capacity` over tenants with the
    /// given weights. `fair == false` collapses it to one shared bounded
    /// queue (the single-shard discipline), ignoring the weights.
    pub fn new(policy: QueuePolicy, capacity: usize, weights: &[u64], fair: bool) -> FairQueue {
        let n = if fair { weights.len().max(1) } else { 1 };
        let total_w: u64 = weights.iter().map(|&w| w.max(1)).sum::<u64>().max(1);
        let (shares, strides) = if fair {
            (
                weights
                    .iter()
                    .map(|&w| ((capacity as u64 * w.max(1) / total_w) as usize).max(1))
                    .collect(),
                weights.iter().map(|&w| WFQ_SCALE / w.max(1)).collect(),
            )
        } else {
            (vec![capacity; 1], vec![WFQ_SCALE; 1])
        };
        FairQueue {
            policy,
            fair,
            heaps: (0..n).map(|_| BinaryHeap::new()).collect(),
            shares,
            strides,
            vft: vec![0; n],
            vnow: 0,
            seq: 0,
            len: 0,
        }
    }

    /// Queued requests across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues request `id` for `tenant`. Returns `false` when the
    /// tenant's capacity share (or the shared capacity, when unfair) is
    /// full — the caller sheds the request.
    pub fn try_push(&mut self, tenant: usize, id: usize, deadline_ns: VirtualNs) -> bool {
        let t = if self.fair { tenant } else { 0 };
        if self.heaps[t].len() >= self.shares[t] {
            return false;
        }
        let seq = self.seq;
        self.seq += 1;
        let prio = match self.policy {
            QueuePolicy::Fifo => seq,
            QueuePolicy::Edf => deadline_ns,
        };
        if self.heaps[t].is_empty() {
            // A tenant returning from idle resumes at the scheduler's
            // virtual now, not at its stale finish time — the standard
            // start-time reset that keeps WFQ work-conserving.
            self.vft[t] = self.vft[t].max(self.vnow) + self.strides[t];
        }
        self.heaps[t].push(Reverse((prio, seq, id)));
        self.len += 1;
        true
    }

    /// Dispatches the next request: the head of the non-empty tenant
    /// with the smallest virtual finish time (ties to the lowest tenant
    /// index), then advances that tenant's finish time by its stride.
    pub fn pop(&mut self) -> Option<usize> {
        let t = (0..self.heaps.len())
            .filter(|&t| !self.heaps[t].is_empty())
            .min_by_key(|&t| (self.vft[t], t))?;
        // Invariant: `t` was selected from the non-empty heaps above, so
        // this pop cannot fail; the fallthrough keeps the hot path
        // panic-free in release builds.
        let Some(Reverse((_, _, id))) = self.heaps[t].pop() else {
            debug_assert!(false, "selected tenant heap is empty");
            return None;
        };
        self.len -= 1;
        self.vnow = self.vft[t];
        if !self.heaps[t].is_empty() {
            self.vft[t] += self.strides[t];
        }
        Some(id)
    }

    /// Empties the queue, returning the ids in dispatch order (used when
    /// a shard dies and its backlog fails over).
    pub fn drain(&mut self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(id) = self.pop() {
            out.push(id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_enforces_rate_and_burst() {
        // 1000 req/s, burst of 4: the burst drains instantly, then one
        // token per millisecond.
        let mut b = TokenBucket::new(1_000.0, 4);
        let taken = (0..10).filter(|_| b.try_take(0)).count();
        assert_eq!(taken, 4, "burst allowance");
        assert!(!b.try_take(999_000), "no full token yet");
        assert!(b.try_take(1_100_000), "refilled after ~1 ms");
        assert!(!b.try_take(1_100_000), "and spent again");
        // A long idle period refills only to the cap.
        let taken = (0..10).filter(|_| b.try_take(60_000_000_000)).count();
        assert_eq!(taken, 4, "cap bounds the refill");
    }

    #[test]
    fn token_bucket_is_deterministic() {
        let mut a = TokenBucket::new(3_333.5, 7);
        let mut b = TokenBucket::new(3_333.5, 7);
        for i in 0..5_000u64 {
            let now = i * 137_911;
            assert_eq!(a.try_take(now), b.try_take(now));
        }
    }

    #[test]
    fn wfq_shares_track_weights() {
        // Tenant 0 at weight 3, tenant 1 at weight 1, both with deep
        // backlogs: dispatches should interleave roughly 3:1.
        let mut q = FairQueue::new(QueuePolicy::Fifo, 64, &[3, 1], true);
        for i in 0..24 {
            assert!(q.try_push(0, i, 0));
        }
        for i in 24..32 {
            assert!(q.try_push(1, i, 0));
        }
        let first16: Vec<usize> = (0..16).map(|_| q.pop().unwrap()).collect();
        let t1_served = first16.iter().filter(|&&id| id >= 24).count();
        assert_eq!(t1_served, 4, "weight-1 tenant got {t1_served}/16");
    }

    #[test]
    fn capacity_shares_isolate_queue_full() {
        let mut q = FairQueue::new(QueuePolicy::Edf, 8, &[1, 1], true);
        // Tenant 0 floods: only its own share (4) admits.
        let admitted = (0..20).filter(|&i| q.try_push(0, i, 100)).count();
        assert_eq!(admitted, 4);
        // Tenant 1 is untouched by the flood.
        assert!(q.try_push(1, 100, 50));
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn unfair_mode_is_one_shared_edf_queue() {
        let mut q = FairQueue::new(QueuePolicy::Edf, 3, &[1, 1], false);
        assert!(q.try_push(0, 10, 900));
        assert!(q.try_push(1, 11, 100));
        assert!(q.try_push(0, 12, 500));
        assert!(!q.try_push(1, 13, 1), "shared capacity bounds everyone");
        assert_eq!(
            [q.pop(), q.pop(), q.pop(), q.pop()],
            [Some(11), Some(12), Some(10), None]
        );
    }

    #[test]
    fn drain_returns_dispatch_order_and_empties() {
        let mut q = FairQueue::new(QueuePolicy::Edf, 16, &[1, 1], true);
        q.try_push(0, 1, 300);
        q.try_push(0, 2, 100);
        q.try_push(1, 3, 200);
        let drained = q.drain();
        assert_eq!(drained.len(), 3);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // EDF within tenant 0: id 2 (deadline 100) precedes id 1.
        let pos = |id| drained.iter().position(|&x| x == id).unwrap();
        assert!(pos(2) < pos(1));
    }
}
