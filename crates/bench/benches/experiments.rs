//! Criterion benches: one group per paper artifact, timing the simulation
//! that regenerates it, plus microbenchmarks of the core kernels.
//!
//! Run with `cargo bench -p mp-bench`. Each experiment's report is printed
//! once before timing so a bench run regenerates every table/figure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mp_bench::experiments::*;
use mp_bench::Scale;

fn scale() -> Scale {
    Scale::from_env()
}

macro_rules! experiment_bench {
    ($fn_name:ident, $module:ident, $samples:expr) => {
        fn $fn_name(c: &mut Criterion) {
            // Print the regenerated artifact once.
            println!("{}", $module::run(scale()));
            let mut g = c.benchmark_group("experiments");
            g.sample_size($samples);
            g.bench_function(stringify!($module), |b| {
                b.iter(|| black_box($module::data(black_box(scale()))))
            });
            g.finish();
        }
    };
}

experiment_bench!(bench_fig01b, fig01b, 10);
experiment_bench!(bench_fig07, fig07, 10);
experiment_bench!(bench_fig08, fig08, 10);
experiment_bench!(bench_fig15, fig15, 10);
experiment_bench!(bench_fig16, fig16, 10);
experiment_bench!(bench_fig17, fig17, 10);
experiment_bench!(bench_fig18, fig18, 10);
experiment_bench!(bench_fig19, fig19, 10);
experiment_bench!(bench_fig20, fig20, 10);
experiment_bench!(bench_table1, table1, 10);
experiment_bench!(bench_table3, table3, 10);
experiment_bench!(bench_codacc, codacc, 10);
experiment_bench!(bench_planners, planners, 10);
experiment_bench!(bench_batch_planning, batch_planning, 10);

fn bench_ablation(c: &mut Criterion) {
    println!("{}", ablation::run(scale()));
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("ablation_stage_split", |b| {
        b.iter(|| black_box(ablation::stage_split_data(black_box(scale()))))
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    println!("{}", table2::run(scale()));
    let mut g = c.benchmark_group("experiments");
    g.bench_function("table2", |b| b.iter(|| black_box(table2::data())));
    g.finish();
}

/// Microbenchmarks of the hot simulation kernels.
fn bench_kernels(c: &mut Criterion) {
    use mp_geometry::cascade::{cascaded_obb_aabb, CascadeConfig};
    use mp_geometry::sat::sat_first_separating;
    use mp_geometry::soa::{cascade_batch_soa, sat_batch_soa, CascadeBatchScratch};
    use mp_geometry::{Aabb, Mat3, Obb, Vec3};
    use mp_octree::{Scene, SceneConfig};
    use mp_planner::nn::{Activation, Mlp, MlpScratch};
    use mp_robot::{fk, RobotModel, TrigMode};
    use mp_sim::IuKind;
    use mpaccel_core::oocd::{run_oocd, OocdConfig};

    let obb_f32 = Obb::new(
        Vec3::new(0.3, 0.1, -0.2),
        Vec3::new(0.25, 0.06, 0.06),
        Mat3::rotation_z(0.7) * Mat3::rotation_y(0.3),
    );
    let obb = obb_f32.quantize();
    let aabb_f32 = Aabb::new(Vec3::new(0.25, 0.0, 0.0), Vec3::splat(0.25));
    let aabb = aabb_f32.quantize();
    let sphere = obb_f32.bounding_sphere();
    let cfg = CascadeConfig::proposed();
    let tree = Scene::random(SceneConfig::paper(), 0).octree();
    let robot = RobotModel::jaco2();
    let home = robot.home();
    let oocd_cfg = OocdConfig::new(IuKind::MultiCycle);
    // An MPNet-shaped MLP (scene encoding + 2 poses in, pose delta out).
    let mlp = Mlp::new(&[66, 128, 128, 6], Activation::Tanh, 7);
    let mlp_input = vec![0.1f32; 66];
    let mut mlp_scratch = MlpScratch::default();
    let mut frames = Vec::new();
    let mut obbs = Vec::new();

    let mut g = c.benchmark_group("kernels");
    g.bench_function("sphere_aabb", |b| {
        b.iter(|| black_box(black_box(&sphere).overlaps_aabb(black_box(&aabb_f32))))
    });
    g.bench_function("sat_15_axes", |b| {
        b.iter(|| black_box(sat_first_separating(black_box(&obb), black_box(&aabb))))
    });
    g.bench_function("cascaded_intersection", |b| {
        b.iter(|| black_box(cascaded_obb_aabb(black_box(&obb), black_box(&aabb), &cfg)))
    });
    g.bench_function("oocd_query", |b| {
        b.iter(|| black_box(run_oocd(black_box(&tree), black_box(&obb), &oocd_cfg)))
    });
    g.bench_function("octree_query", |b| {
        // The software checker's traversal: SAT test at every candidate leaf.
        b.iter(|| {
            black_box(tree.collides_with_stats(&mut |leaf| {
                cascaded_obb_aabb(black_box(&obb_f32), leaf, &cfg).colliding
            }))
        })
    });
    // Batched counterparts of the two benches above: one OBB against a
    // whole SoA lane range, and the flat-arena traversal the software
    // checker now runs.
    let flat = tree.flat();
    let full_range = 0..flat.entry_count();
    let mut batch_scratch = CascadeBatchScratch::default();
    let mut sat_out = Vec::new();
    let mut cascade_out = Vec::new();
    g.bench_function("sat_batch_soa_all_axes", |b| {
        b.iter(|| {
            sat_batch_soa(
                black_box(&obb_f32),
                flat.aabbs(),
                black_box(full_range.clone()),
                1,
                15,
                &mut batch_scratch,
                &mut sat_out,
            );
            black_box(sat_out.len())
        })
    });
    let mut stack: Vec<u32> = Vec::new();
    g.bench_function("octree_query_flat_batched", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            stack.clear();
            stack.push(0);
            while let Some(addr) = stack.pop() {
                let range = flat.entries(addr);
                cascade_batch_soa(
                    black_box(&obb_f32),
                    &cfg,
                    flat.aabbs(),
                    range.clone(),
                    &mut batch_scratch,
                    &mut cascade_out,
                );
                for (lane, e) in range.enumerate() {
                    if cascade_out[lane].colliding {
                        if flat.is_full(e) {
                            hits += 1;
                        } else {
                            stack.push(flat.child(e));
                        }
                    }
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("forward_kinematics_obbs", |b| {
        b.iter(|| {
            fk::link_obbs_into(
                &robot,
                black_box(&home),
                TrigMode::Hardware,
                &mut frames,
                &mut obbs,
            );
            black_box(obbs.len())
        })
    });
    g.bench_function("mlp_forward", |b| {
        // The allocating baseline, kept as the scratch variant's foil.
        #[allow(deprecated)]
        b.iter(|| black_box(mlp.forward(black_box(&mlp_input))))
    });
    g.bench_function("mlp_forward_scratch", |b| {
        b.iter(|| {
            black_box(
                mlp.forward_scratch(black_box(&mlp_input), &mut mlp_scratch)
                    .len(),
            )
        })
    });
    g.bench_function("octree_build", |b| {
        let scene = Scene::random(SceneConfig::paper(), 3);
        b.iter(|| black_box(scene.octree()))
    });
    g.finish();
}

/// Microbenchmarks of the batch planning engine's two hot kernels: the
/// rake-style motion validator (shared-checker edge stream) and the
/// per-round cross-query gather (eight lanes' nearest-neighbour lookups
/// against a grown SoA tree).
fn bench_batch_engine(c: &mut Criterion) {
    use mp_collision::{RakeValidator, SoftwareChecker};
    use mp_octree::{Scene, SceneConfig};
    use mp_planner::rrt::Tree;
    use mp_robot::{Motion, RobotModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let robot = RobotModel::jaco2();
    let tree = Scene::random(SceneConfig::paper(), 0).octree();
    let mut checker = SoftwareChecker::new(robot.clone(), tree);
    let mut rng = StdRng::seed_from_u64(42);

    // A mid-length motion between two sampled configurations — the shape
    // of one pending batch edge.
    let motion = Motion::new(robot.sample_config(&mut rng), robot.sample_config(&mut rng));
    let mut rake = RakeValidator::new();

    // A grown tree (4096 nodes) plus one round of lane targets.
    let mut grown = Tree::new(robot.home());
    for i in 0..4095 {
        grown.push(robot.sample_config(&mut rng), i / 2);
    }
    let targets: Vec<_> = (0..8).map(|_| robot.sample_config(&mut rng)).collect();

    let mut g = c.benchmark_group("batch_engine");
    g.bench_function("rake_validate", |b| {
        b.iter(|| {
            black_box(
                rake.check_motion(&mut checker, black_box(&motion), 0.04)
                    .colliding,
            )
        })
    });
    g.bench_function("cross_query_gather", |b| {
        // One lockstep round's gather: all eight lanes' NN scans.
        b.iter(|| {
            let mut acc = 0usize;
            for t in &targets {
                acc = acc.wrapping_add(grown.nearest(black_box(t)));
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Overhead guard for the telemetry layer: the collision hot loop timed
/// with no sink installed versus a sink installed but sampling disabled
/// (`sample_every: 0`, the always-on production setting for hot kernels).
///
/// In the default build the two are identical by construction — the span
/// call sites are compiled out without `--features telemetry`. Run
/// `cargo bench -p mp-bench --features telemetry -- telemetry_overhead`
/// to measure the armed-but-unsampled cost; EXPERIMENTS.md records the
/// expected numbers.
fn bench_telemetry_overhead(c: &mut Criterion) {
    use mp_collision::{CollisionChecker, SoftwareChecker};
    use mp_octree::{Scene, SceneConfig};
    use mp_robot::RobotModel;
    use mp_telemetry::{SinkConfig, TelemetrySession};

    let robot = RobotModel::jaco2();
    let tree = Scene::random(SceneConfig::paper(), 0).octree();
    let mut checker = SoftwareChecker::new(robot.clone(), tree);
    let mut pose = robot.home();
    pose.as_mut_slice()[0] += 0.4;
    pose.as_mut_slice()[2] -= 0.3;

    let mut g = c.benchmark_group("telemetry_overhead");
    g.bench_function("check_pose_telemetry_off", |b| {
        b.iter(|| black_box(checker.check_pose(black_box(&pose))))
    });
    g.bench_function("check_pose_telemetry_unsampled", |b| {
        let session = TelemetrySession::with_config(SinkConfig {
            sample_every: 0,
            ..SinkConfig::default()
        });
        let _guard = session.install("bench", 0);
        b.iter(|| black_box(checker.check_pose(black_box(&pose))))
    });
    g.bench_function("check_pose_telemetry_sampled", |b| {
        let session = TelemetrySession::new();
        let _guard = session.install("bench", 0);
        b.iter(|| black_box(checker.check_pose(black_box(&pose))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_batch_engine,
    bench_telemetry_overhead,
    bench_table2,
    bench_fig01b,
    bench_fig07,
    bench_fig08,
    bench_fig15,
    bench_fig16,
    bench_fig17,
    bench_fig18,
    bench_table1,
    bench_fig19,
    bench_fig20,
    bench_table3,
    bench_codacc,
    bench_planners,
    bench_batch_planning,
    bench_ablation,
);
criterion_main!(benches);
