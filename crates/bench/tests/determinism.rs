//! Determinism regression test for the parallel benchmark engine: the
//! rendered reports must be byte-identical whatever the thread-pool width
//! (the engine's core contract — see `engine.rs` and `--bin all`).
//!
//! A representative subset keeps the test fast in debug builds while still
//! crossing every source of shared state: the workload cache (all), the
//! replay memo (fig01b, fig16), the process-wide fault plan (faults),
//! per-experiment RNG seeding (fig17, planners), and the service soak
//! campaign's catalog cache (soak).

use mp_bench::engine::{run_selected, select};
use mp_bench::experiments::{energy_observatory, fleet, integrity, soak};
use mp_bench::Scale;
use threadpool::ThreadPool;

/// Experiments covering the engine's shared-state surfaces.
const SUBSET: [&str; 6] = ["fig01b", "fig16", "fig17", "planners", "faults", "soak"];

fn rendered(threads: usize) -> Vec<(String, String)> {
    let pool = ThreadPool::new(threads);
    let list = select(&SUBSET).expect("known names");
    run_selected(&list, Scale::Quick, &pool)
        .results
        .into_iter()
        .map(|r| (r.name.to_string(), r.report.to_string()))
        .collect()
}

#[test]
fn parallel_run_matches_serial_byte_for_byte() {
    let serial = rendered(1);
    let parallel = rendered(4);
    assert_eq!(serial.len(), parallel.len());
    for ((sn, sr), (pn, pr)) in serial.iter().zip(&parallel) {
        assert_eq!(sn, pn, "result order must be canonical");
        assert_eq!(sr, pr, "report `{sn}` differs between 1 and 4 threads");
    }
}

#[test]
fn repeated_runs_are_stable() {
    // Same width twice: catches per-run global state leaking into reports
    // (e.g. the workload cache warming up differently on the second pass).
    let a = rendered(2);
    let b = rendered(2);
    assert_eq!(a, b, "reports must be stable across runs in one process");
}

#[test]
fn soak_report_is_byte_identical_at_one_and_eight_threads() {
    // The service satellite contract: same seeds and policies must yield a
    // byte-identical soak report whatever the pool width. Goes through the
    // uncached catalog path so both widths really build their own catalog.
    let one = soak::run_with_pool(Scale::Quick, &ThreadPool::new(1)).to_string();
    let eight = soak::run_with_pool(Scale::Quick, &ThreadPool::new(8)).to_string();
    assert_eq!(one, eight, "soak report differs between 1 and 8 threads");
}

#[test]
fn fleet_soak_is_byte_identical_at_one_and_eight_threads() {
    // The fleet contract: a 16-shard chaos soak — shard kills mid-run,
    // failover, hedged requests, per-tenant fair queueing — renders
    // byte-identically whatever the catalog-build pool width. The fleet
    // event loop is single-threaded vtime; only the catalog build fans
    // out, so the whole report (per-shard and per-tenant rows included)
    // must survive the width change untouched.
    let one = fleet::run_with_pool(Scale::Quick, &ThreadPool::new(1)).to_string();
    let eight = fleet::run_with_pool(Scale::Quick, &ThreadPool::new(8)).to_string();
    assert!(one.contains("chaos-defended") && one.contains("shard:15"));
    assert_eq!(one, eight, "fleet report differs between 1 and 8 threads");
}

#[test]
fn integrity_soak_is_byte_identical_at_one_and_eight_threads() {
    // The integrity contract: the SDC-rate x defense-policy sweep —
    // seeded corruption streams, certification, suspicion-scored voting,
    // scrub readmission — renders byte-identically whatever the
    // catalog-build pool width. Certification costs are measured during
    // the catalog build (which fans out), so this crosses the one shared
    // surface the new pipeline added.
    let one = integrity::run_with_pool(Scale::Quick, &ThreadPool::new(1)).to_string();
    let eight = integrity::run_with_pool(Scale::Quick, &ThreadPool::new(8)).to_string();
    assert!(one.contains("certify-vote-scrub") && one.contains("undefended"));
    assert_eq!(
        one, eight,
        "integrity report differs between 1 and 8 threads"
    );
}

#[test]
fn energy_observatory_is_byte_identical_at_one_and_eight_threads() {
    // The energy contract: pJ/CD-check, uJ/plan-by-tier, and the
    // accelerator-vs-baseline joule comparison are all integer-counter or
    // seed-derived, so the rendered table must not move with the
    // catalog-build pool width.
    let one = energy_observatory::run_with_pool(Scale::Quick, &ThreadPool::new(1)).to_string();
    let eight = energy_observatory::run_with_pool(Scale::Quick, &ThreadPool::new(8)).to_string();
    assert!(one.contains("cd-check") && one.contains("uJ/plan"));
    assert_eq!(
        one, eight,
        "energy observatory differs between 1 and 8 threads"
    );
}

#[test]
fn chrome_trace_is_byte_identical_at_one_and_eight_threads() {
    // The telemetry contract: the exported Perfetto trace itself must be
    // byte-identical whatever the catalog-build pool width. Labelled
    // streams + monotone per-stream cursors + sorted export make this
    // hold even though scene planning lands on arbitrary worker threads.
    let json = |threads| {
        let (session, _) = soak::capture_trace(Scale::Quick, &ThreadPool::new(threads));
        mp_telemetry::chrome_trace_json(&session.streams())
    };
    let one = json(1);
    let eight = json(8);
    assert!(!one.is_empty());
    // The power-rail counter tracks (pJ/us = uW per accelerator instance,
    // emitted at every completion) ride the same determinism guarantee.
    assert!(
        one.contains("power_uw"),
        "power-rail counter track missing from the trace"
    );
    assert_eq!(one, eight, "trace JSON differs between 1 and 8 threads");
}
