//! End-to-end telemetry acceptance tests over the soak capture: the
//! exported Chrome trace must be valid JSON carrying spans from every
//! instrumented layer, the flight recorder must hold at least one
//! deadline-miss incident from the overloaded run, and — the zero-cost
//! contract — recording must not perturb the simulation or the rendered
//! soak report.

use mp_bench::experiments::soak;
use mp_bench::Scale;
use threadpool::ThreadPool;

#[test]
fn capture_emits_valid_trace_spanning_the_stack_plus_flight_incidents() {
    let pool = ThreadPool::new(2);
    let (session, summary) = soak::capture_trace(Scale::Quick, &pool);
    let streams = session.streams();
    let json = mp_telemetry::chrome_trace_json(&streams);
    mp_telemetry::validate_json(&json).expect("exporter must emit valid JSON");

    // Spans from each instrumented crate, by category: the planner tiers
    // and phases, the service event loop, the catalog build fan-out, and
    // the accelerator core (trace replay / SAS). With the `telemetry`
    // feature the collision hot kernel shows up too.
    for cat in ["planner", "service", "catalog", "core"] {
        assert!(
            json.contains(&format!("\"cat\":\"{cat}\"")),
            "trace is missing category `{cat}`"
        );
    }
    #[cfg(feature = "telemetry")]
    assert!(
        json.contains("\"cat\":\"collision\"") && json.contains("\"name\":\"cd_query\""),
        "telemetry feature build must include collision hot-kernel spans"
    );

    // The 2x-overloaded faulted run must strand requests past their
    // deadlines, and each miss must leave a flight-recorder snapshot.
    assert!(summary.miss_rate() > 0.0, "capture run must induce misses");
    assert!(session.incidents_seen() > 0, "incidents must be recorded");
    let flight = mp_telemetry::flight_report(&streams);
    assert!(
        flight.contains("deadline_miss"),
        "flight recorder must snapshot a deadline miss:\n{flight}"
    );

    // The metrics registry unifies the service summary and collision
    // counters with exact percentile semantics.
    let reg = soak::metrics_registry(&summary);
    assert_eq!(reg.counter_value("service.offered"), Some(summary.offered));
    assert!(reg.counter_value("collision.pose_checks_total").is_some());
    let hist = reg
        .histogram("service.latency_ns")
        .expect("latency histogram");
    assert_eq!(
        hist.percentile(0.99).map(|ns| ns as f64 / 1_000.0),
        summary.latency_percentile_us(0.99),
        "registry histogram must reproduce the summary's exact p99"
    );
    assert!(reg.render_text().contains("service.latency_ns"));
    assert!(reg
        .to_csv()
        .starts_with("name,kind,count,value,p50,p99,p999"));
}

#[test]
fn tracing_does_not_perturb_the_simulation_or_the_report() {
    // Same seeds, traced vs untraced: the service summary and the rendered
    // soak report must be byte-identical. This is the quick-scale stdout
    // identity criterion in test form.
    let pool = ThreadPool::new(2);
    let before = soak::run_with_pool(Scale::Quick, &pool).to_string();
    let (_session, _summary) = soak::capture_trace(Scale::Quick, &pool);
    let after = soak::run_with_pool(Scale::Quick, &pool).to_string();
    assert_eq!(
        before, after,
        "a trace capture must not change the soak report"
    );
}
