//! Plain-text experiment reports: titled tables with aligned columns and
//! optional paper-vs-measured annotations.

use std::fmt;

/// A report: a title, optional notes, and one aligned table.
///
/// # Examples
///
/// ```
/// use mp_bench::Report;
///
/// let mut r = Report::new("Table X: demo");
/// r.columns(&["config", "value"]);
/// r.row(&["a".into(), "1.00".into()]);
/// let text = r.to_string();
/// assert!(text.contains("Table X"));
/// assert!(text.contains("config"));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    title: String,
    notes: Vec<String>,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>) -> Report {
        Report {
            title: title.into(),
            ..Report::default()
        }
    }

    /// Adds a free-form note line (printed under the title).
    pub fn note(&mut self, line: impl Into<String>) -> &mut Report {
        self.notes.push(line.into());
        self
    }

    /// Sets the column headers.
    pub fn columns(&mut self, names: &[&str]) -> &mut Report {
        self.header = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Report {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable values.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) -> &mut Report {
        let owned: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&owned)
    }

    /// The data rows (for assertions in tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Looks up a cell by row label (first column) and column name.
    pub fn cell(&self, row_label: &str, column: &str) -> Option<&str> {
        let c = self.header.iter().position(|h| h == column)?;
        let r = self.rows.iter().find(|r| r[0] == row_label)?;
        Some(&r[c])
    }

    /// Serializes the table to CSV (header + rows; notes become `#`
    /// comment lines), for downstream plotting tools.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        for n in &self.notes {
            out.push_str(&format!("# {n}\n"));
        }
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        for n in &self.notes {
            writeln!(f, "   {n}")?;
        }
        if self.header.is_empty() {
            return Ok(());
        }
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "  {}", line.join("  "))
        };
        print_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a ratio as `x.xx×`.
pub fn times(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a value as a percentage change versus a baseline of 1.0
/// (e.g. `1.06` → `+6.0%`).
pub fn pct_change(v: f64) -> String {
    format!("{:+.1}%", (v - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut r = Report::new("T");
        r.note("a note");
        r.columns(&["name", "wide-column"]);
        r.row(&["x".into(), "1".into()]);
        r.row(&["longer-name".into(), "2".into()]);
        let s = r.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("a note"));
        assert!(s.contains("longer-name"));
        // Header and rows align on the same column width.
        let lines: Vec<&str> = s.lines().collect();
        let name_col_end = lines[2].find("wide-column").unwrap();
        assert_eq!(lines[4].find('1').map(|p| p > name_col_end), Some(true));
    }

    #[test]
    fn cell_lookup() {
        let mut r = Report::new("T");
        r.columns(&["cfg", "v"]);
        r.row(&["a".into(), "1.5".into()]);
        assert_eq!(r.cell("a", "v"), Some("1.5"));
        assert_eq!(r.cell("b", "v"), None);
        assert_eq!(r.cell("a", "nope"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_validated() {
        let mut r = Report::new("T");
        r.columns(&["a", "b"]);
        r.row(&["only-one".into()]);
    }

    #[test]
    fn csv_escapes_and_renders() {
        let mut r = Report::new("T, with comma");
        r.note("a note");
        r.columns(&["name", "v"]);
        r.row(&["plain".into(), "1".into()]);
        r.row(&["with,comma".into(), "quo\"te".into()]);
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "# T, with comma");
        assert_eq!(lines[1], "# a note");
        assert_eq!(lines[2], "name,v");
        assert_eq!(lines[3], "plain,1");
        assert_eq!(lines[4], "\"with,comma\",\"quo\"\"te\"");
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00"); // default rounding
        assert_eq!(times(7.0), "7.00x");
        assert_eq!(pct_change(1.06), "+6.0%");
        assert_eq!(pct_change(0.94), "-6.0%");
        assert_eq!(f3(0.123456), "0.123");
    }
}
