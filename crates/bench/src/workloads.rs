//! Shared workload construction for the experiment harness.

use std::sync::Arc;

use mp_collision::SoftwareChecker;
use mp_geometry::{AabbF, Obb};
use mp_octree::{benchmark_scenes, Octree, Scene};
use mp_planner::batch::mpnet_stream;
use mp_planner::mpnet::MpnetConfig;
use mp_planner::queries::generate_queries;
use mp_planner::sampler::OracleSampler;
use mp_robot::{MotionDescriptor, RobotModel};
use mpaccel_core::sas::FunctionMode;
use mpaccel_core::trace::{PlannerTrace, TraceEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use threadpool::ThreadPool;

/// Workload scale: `quick` for tests/CI, `full` for paper-scale runs
/// (10 scenes × 100 queries, §6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small workloads (seconds).
    #[default]
    Quick,
    /// Paper-scale workloads (minutes to hours).
    Full,
}

impl Scale {
    /// Reads `MPACCEL_BENCH_SCALE` (`quick`/`full`), defaulting to quick.
    pub fn from_env() -> Scale {
        match std::env::var("MPACCEL_BENCH_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Number of benchmark scenes.
    pub fn scenes(self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Full => 10,
        }
    }

    /// Planning queries per scene.
    pub fn queries_per_scene(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 100,
        }
    }

    /// Random pose samples for collision-detection microbenchmarks.
    pub fn cd_samples(self) -> usize {
        match self {
            Scale::Quick => 400,
            Scale::Full => 5000,
        }
    }
}

/// One collision-detection batch extracted from a planner trace.
#[derive(Clone, Debug, PartialEq)]
pub struct CdBatchSpec {
    /// Index of the scene the batch ran against.
    pub scene: usize,
    /// Motions in schedule order.
    pub motions: Vec<MotionDescriptor>,
    /// SAS function mode.
    pub mode: FunctionMode,
}

/// A full benchmark workload: scenes, their prebuilt octrees, planner
/// traces, and the CD batches they contain.
#[derive(Clone, Debug)]
pub struct BenchWorkload {
    /// The robot under evaluation.
    pub robot: RobotModel,
    /// Benchmark scenes (subset of the §6 suite at quick scale).
    pub scenes: Vec<Scene>,
    /// One prebuilt octree per scene. Experiments replay thousands of CD
    /// batches against the same handful of environments; building each
    /// scene's tree once here (instead of per batch) removes the dominant
    /// redundant setup cost of a full evaluation run.
    octrees: Vec<Octree>,
    /// Per-query planner traces, tagged with their scene index.
    pub traces: Vec<(usize, PlannerTrace)>,
    /// All CD batches of all traces.
    pub batches: Vec<CdBatchSpec>,
}

impl BenchWorkload {
    /// Returns the shared workload for a robot/scale, building it at most
    /// once per process. Trace generation (planning hundreds of queries)
    /// dominates experiment setup; every experiment and Criterion bench
    /// shares the cached instance through the returned [`Arc`] without
    /// deep-copying scenes or traces.
    pub fn cached(robot: RobotModel, scale: Scale) -> Arc<BenchWorkload> {
        BenchWorkload::cached_seeded(robot, scale, 0)
    }

    /// Like [`BenchWorkload::cached`], keyed by an additional base seed.
    /// The cache key is the full workload content key `(robot, scale,
    /// seed)`: two callers with the same key observe the identical
    /// workload object; seed 0 reproduces the historical corpus
    /// byte-for-byte.
    pub fn cached_seeded(robot: RobotModel, scale: Scale, seed: u64) -> Arc<BenchWorkload> {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        // Two-level locking: the map mutex is held only to look up or
        // insert a per-key slot, never during a build, so concurrent
        // experiments building *different* workloads (e.g. Jaco2 and
        // Baxter) do not serialize; same-key callers block inside the
        // slot's `OnceLock` until the one build finishes.
        type Slot = Arc<OnceLock<Arc<BenchWorkload>>>;
        type Cache = Mutex<HashMap<(String, Scale, u64), Slot>>;
        static CACHE: OnceLock<Cache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (robot.name().to_string(), scale, seed);
        let slot = Arc::clone(
            cache
                .lock()
                .expect("workload cache poisoned")
                .entry(key)
                .or_default(),
        );
        Arc::clone(slot.get_or_init(|| Arc::new(BenchWorkload::build_seeded(robot, scale, seed))))
    }

    /// Builds the MPNet workload for a robot at the given scale
    /// (deterministic, base seed 0).
    pub fn build(robot: RobotModel, scale: Scale) -> BenchWorkload {
        BenchWorkload::build_seeded(robot, scale, 0)
    }

    /// Builds the MPNet workload for a robot/scale/seed triple. Every
    /// random stream (query generation, planner sampling) is derived from
    /// `(seed, scene index, query index)` alone, so the corpus is
    /// identical however many threads build it.
    pub fn build_seeded(robot: RobotModel, scale: Scale, seed: u64) -> BenchWorkload {
        let scenes: Vec<Scene> = benchmark_scenes()
            .into_iter()
            .take(scale.scenes())
            .collect();
        let octrees: Vec<Octree> = scenes.iter().map(Scene::octree).collect();
        // Planning is embarrassingly parallel across scenes; full-scale
        // workloads (10 scenes x 100 queries) benefit substantially. The
        // pool honours MPACCEL_THREADS and returns per-scene results in
        // scene order, so the corpus is independent of the thread count.
        let pool = ThreadPool::from_env();
        let per_scene: Vec<Vec<PlannerTrace>> = pool.map(&scenes, |si, scene| {
            let queries = generate_queries(
                &robot,
                scene,
                scale.queries_per_scene(),
                90 + seed.wrapping_mul(0x9E37_79B9) + si as u64,
            )
            .expect("benchmark scenes yield valid queries");
            // All of a scene's queries stream through one shared checker
            // (cross-query batch engine): the octree clone and traversal
            // buffers are paid once per scene, and the per-query traces
            // are bit-identical to the old one-checker-per-query loop.
            let qseed = |qi: usize| seed.wrapping_mul(0x85EB_CA6B) + (si * 1000 + qi) as u64;
            let stream: Vec<_> = queries
                .iter()
                .enumerate()
                .map(|(qi, q)| {
                    let cfg = MpnetConfig {
                        seed: qseed(qi),
                        ..MpnetConfig::default()
                    };
                    (q.start.clone(), q.goal.clone(), cfg)
                })
                .collect();
            let mut checker = SoftwareChecker::new(robot.clone(), octrees[si].clone());
            mpnet_stream(&mut checker, &stream, |qi| {
                OracleSampler::new(robot.clone(), qseed(qi))
            })
            .into_iter()
            .map(|r| r.outcome.trace)
            .collect()
        });
        let mut traces = Vec::new();
        let mut batches = Vec::new();
        for (si, scene_traces) in per_scene.into_iter().enumerate() {
            for trace in scene_traces {
                for e in &trace.events {
                    if let TraceEvent::CdBatch { motions, mode } = e {
                        if !motions.is_empty() {
                            batches.push(CdBatchSpec {
                                scene: si,
                                motions: motions.clone(),
                                mode: *mode,
                            });
                        }
                    }
                }
                traces.push((si, trace));
            }
        }
        BenchWorkload {
            robot,
            scenes,
            octrees,
            traces,
            batches,
        }
    }

    /// Octree of scene `i` (a cheap clone of the prebuilt tree).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn octree(&self, i: usize) -> Octree {
        self.octrees[i].clone()
    }

    /// Borrowed octree of scene `i` (for callers that only query).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn octree_ref(&self, i: usize) -> &Octree {
        &self.octrees[i]
    }

    /// Total poses across all batches (upper bound on CD queries).
    pub fn total_poses(&self) -> u64 {
        self.batches
            .iter()
            .flat_map(|b| &b.motions)
            .map(|m| m.count as u64)
            .sum()
    }
}

/// Whether any motion of the batch collides (ground truth via the software
/// oracle, with per-motion early exit).
pub fn batch_has_collision(workload: &BenchWorkload, batch: &CdBatchSpec) -> bool {
    let mut checker = SoftwareChecker::new(workload.robot.clone(), workload.octree(batch.scene));
    batch.motions.iter().any(|m| {
        (0..m.count).any(|i| mp_collision::CollisionChecker::check_pose(&mut checker, &m.pose(i)))
    })
}

/// Collects the actual OBB–AABB test pairs an OBB–octree traversal
/// generates for random link-sized OBBs — the §4/Fig 8 test population
/// ("collision detection tests between OBBs for random poses of the
/// Jaco2 robot and octree for random environmental scenarios").
pub fn collect_test_pairs(octree: &Octree, n_queries: usize, seed: u64) -> Vec<(Obb<f32>, AabbF)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::new();
    for _ in 0..n_queries {
        let obb = mp_baselines::workload::random_link_obb(&mut rng);
        let mut record = |aabb: &AabbF| {
            pairs.push((obb, *aabb));
            mp_geometry::sat::overlaps(&obb, aabb)
        };
        let _ = octree.collides_with(&mut record);
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_quick() {
        assert_eq!(Scale::default(), Scale::Quick);
        assert!(Scale::Quick.scenes() <= Scale::Full.scenes());
    }

    #[test]
    fn workload_builds_with_batches() {
        let w = BenchWorkload::build(RobotModel::jaco2(), Scale::Quick);
        assert_eq!(w.scenes.len(), Scale::Quick.scenes());
        assert!(!w.traces.is_empty());
        assert!(!w.batches.is_empty());
        assert!(w.total_poses() > 100);
        // Both function modes appear (feasibility always; connectivity when
        // shortcutting had candidates).
        assert!(w
            .batches
            .iter()
            .any(|b| b.mode == FunctionMode::Feasibility));
    }

    #[test]
    fn test_pairs_population_is_nonempty_and_mixed() {
        let tree = Scene::random(mp_octree::SceneConfig::paper(), 0).octree();
        let pairs = collect_test_pairs(&tree, 200, 3);
        assert!(pairs.len() > 200);
        let hits = pairs
            .iter()
            .filter(|(o, a)| mp_geometry::sat::overlaps(o, a))
            .count();
        // The traversal only descends where hits occur, so a healthy mix.
        assert!(hits > 0 && hits < pairs.len());
    }
}
