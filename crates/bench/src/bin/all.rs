//! Regenerates every table and figure in one run (the per-experiment
//! binaries are faster for iterating on a single artifact).
//!
//! Set `MPACCEL_CSV_DIR=<dir>` to additionally write each report as CSV
//! for downstream plotting.

use mp_bench::Report;

fn emit(name: &str, report: Report) {
    println!("{report}");
    if let Ok(dir) = std::env::var("MPACCEL_CSV_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) =
            std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, report.to_csv()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

fn main() {
    let scale = mp_bench::Scale::from_env();
    println!("MPAccel reproduction — full evaluation at {scale:?} scale\n");
    use mp_bench::experiments as e;
    emit("fig01b", e::fig01b::run(scale));
    emit("fig07", e::fig07::run(scale));
    emit("fig08", e::fig08::run(scale));
    emit("fig15", e::fig15::run(scale));
    emit("fig16", e::fig16::run(scale));
    emit("fig17", e::fig17::run(scale));
    emit("fig18", e::fig18::run(scale));
    emit("table1", e::table1::run(scale));
    emit("table2", e::table2::run(scale));
    emit("fig19", e::fig19::run(scale));
    emit("fig20", e::fig20::run(scale));
    emit("table3", e::table3::run(scale));
    emit("codacc", e::codacc::run(scale));
    emit("ablation", e::ablation::run(scale));
    emit("planners", e::planners::run(scale));
    emit("faults", e::faults::run(scale));
}
