//! Regenerates every table and figure in one run (the per-experiment
//! binaries are faster for iterating on a single artifact).
//!
//! Experiments fan out over a work-stealing thread pool sized by
//! `MPACCEL_THREADS` (default: all cores); reports are collected and
//! printed in canonical order, bit-identical to a serial run. A
//! machine-readable timing summary is written to `BENCH.json` (path
//! override: `MPACCEL_BENCH_JSON`).
//!
//! Set `MPACCEL_CSV_DIR=<dir>` to additionally write each report as CSV
//! for downstream plotting.

use mp_bench::{engine, Report};
use threadpool::ThreadPool;

fn emit(name: &str, report: &Report) {
    println!("{report}");
    if let Ok(dir) = std::env::var("MPACCEL_CSV_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) =
            std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, report.to_csv()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

fn main() {
    let scale = mp_bench::Scale::from_env();
    let pool = ThreadPool::from_env();
    // Thread count and wall-clock timings go to stderr: stdout carries only
    // deterministic report content, byte-identical for any MPACCEL_THREADS.
    println!("MPAccel reproduction — full evaluation at {scale:?} scale\n");
    eprintln!("running with {} thread(s)", pool.threads());
    let summary = engine::run_all(scale, &pool);
    for r in &summary.results {
        emit(r.name, &r.report);
    }
    eprintln!("{}", summary.timing_report());
    match engine::write_bench_json(&summary) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH.json: {e}"),
    }
}
