//! Runs the integrity soak: silent-data-corruption rate × defense policy
//! (undefended / certify / certify-vote-scrub) at 2× saturation. Usage:
//!
//! ```text
//! cargo run -p mp-bench --release --bin integrity [-- --out FILE]
//!     [--csv FILE] [--trace FILE] [--flight FILE] [--metrics FILE]
//! ```
//!
//! Prints the report to stdout; `--out` additionally writes the text
//! report and `--csv` the CSV table. Set `MPACCEL_BENCH_SCALE=full` for
//! paper-scale workloads and `MPACCEL_THREADS` for the catalog-build pool
//! width (the report is byte-identical at any width).
//!
//! The telemetry flags run one extra fully-instrumented capture of the
//! worst-case defended run (SDC rate 1e-3, certify-vote-scrub):
//!
//! * `--trace FILE` — Chrome trace-event JSON (open in Perfetto);
//!   validated before it is written.
//! * `--flight FILE` — flight-recorder snapshots: the spans leading up to
//!   each certification rejection / liar benching / scrub readmission —
//!   the raw material of the SDC post-mortem in `EXPERIMENTS.md`.
//! * `--metrics FILE` — unified metrics registry dump including the
//!   `service.integrity.*` counters and the certification-cost histogram
//!   (text table, or CSV when the path ends in `.csv`).

use std::process::ExitCode;

fn write_file(what: &str, path: &str, content: &str) -> Result<(), ExitCode> {
    std::fs::write(path, content).map_err(|e| {
        eprintln!("integrity: cannot write {what} to `{path}`: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let mut out: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut flight: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let flag = arg.as_str();
        match flag {
            "--out" | "--csv" | "--trace" | "--flight" | "--metrics" => {
                let Some(path) = args.next() else {
                    eprintln!("integrity: {flag} requires a file path");
                    return ExitCode::from(2);
                };
                match flag {
                    "--out" => out = Some(path),
                    "--csv" => csv = Some(path),
                    "--trace" => trace = Some(path),
                    "--flight" => flight = Some(path),
                    _ => metrics = Some(path),
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: integrity [--out FILE] [--csv FILE] [--trace FILE] [--flight FILE] [--metrics FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("integrity: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let scale = mp_bench::Scale::from_env();
    let report = mp_bench::experiments::integrity::run(scale);
    println!("{report}");
    let write = |what: &str, path: &Option<String>, content: &dyn Fn() -> String| match path {
        Some(p) => write_file(what, p, &content()),
        None => Ok(()),
    };
    if let Err(code) = write("report", &out, &|| report.to_string())
        .and_then(|()| write("CSV", &csv, &|| report.to_csv()))
    {
        return code;
    }

    if trace.is_some() || flight.is_some() || metrics.is_some() {
        use mp_bench::experiments::integrity::{capture_trace, metrics_registry};
        let pool = threadpool::ThreadPool::from_env();
        let (session, summary) = capture_trace(scale, &pool);
        let streams = session.streams();
        if let Some(path) = &trace {
            let json = mp_telemetry::chrome_trace_json(&streams);
            if let Err(e) = mp_telemetry::validate_json(&json) {
                eprintln!("integrity: generated trace JSON is invalid: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(code) = write_file("trace", path, &json) {
                return code;
            }
            let events: usize = streams.iter().map(|s| s.events.len()).sum();
            eprintln!(
                "integrity: wrote {events} events across {} streams to `{path}` (open in https://ui.perfetto.dev)",
                streams.len()
            );
        }
        if let Some(path) = &flight {
            if let Err(code) = write_file(
                "flight report",
                path,
                &mp_telemetry::flight_report(&streams),
            ) {
                return code;
            }
            eprintln!(
                "integrity: wrote flight recorder ({} incidents seen) to `{path}`",
                session.incidents_seen()
            );
        }
        if let Some(path) = &metrics {
            let reg = metrics_registry(&summary);
            let dump = if path.ends_with(".csv") {
                reg.to_csv()
            } else {
                reg.render_text()
            };
            if let Err(code) = write_file("metrics", path, &dump) {
                return code;
            }
            eprintln!("integrity: wrote {} metrics to `{path}`", reg.len());
        }
    }
    ExitCode::SUCCESS
}
