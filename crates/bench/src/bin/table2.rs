//! Regenerates the paper's table2 evaluation artifact.
//! Usage: `cargo run -p mp-bench --release --bin table2`
//! (set `MPACCEL_BENCH_SCALE=full` for paper-scale workloads).

fn main() {
    let scale = mp_bench::Scale::from_env();
    println!("{}", mp_bench::experiments::table2::run(scale));
}
