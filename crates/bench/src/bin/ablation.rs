//! Regenerates the ablation study.
//! Usage: `cargo run -p mp-bench --release --bin ablation`

fn main() {
    let scale = mp_bench::Scale::from_env();
    println!("{}", mp_bench::experiments::ablation::run(scale));
}
