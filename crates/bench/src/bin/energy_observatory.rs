//! Regenerates the energy-observatory evaluation artifact.
//! Usage: `cargo run -p mp-bench --release --bin energy_observatory
//! [-- --out FILE --csv FILE]`
//! (set `MPACCEL_BENCH_SCALE=full` for paper-scale workloads).

fn main() {
    let scale = mp_bench::Scale::from_env();
    let report = mp_bench::experiments::energy_observatory::run(scale);
    println!("{report}");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let write = |path: &str, text: String| {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("error: could not write {path}: {e}");
                std::process::exit(1);
            }
        };
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                i += 1;
                write(&args[i], report.to_string());
            }
            "--csv" if i + 1 < args.len() => {
                i += 1;
                write(&args[i], report.to_csv());
            }
            other => {
                eprintln!(
                    "unknown or incomplete flag `{other}` (supported: --out FILE, --csv FILE)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
}
