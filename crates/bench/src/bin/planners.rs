//! Regenerates the planner comparison study.
//! Usage: `cargo run -p mp-bench --release --bin planners`

fn main() {
    let scale = mp_bench::Scale::from_env();
    println!("{}", mp_bench::experiments::planners::run(scale));
}
