//! Perf smoke runner: executes the full experiment suite, prints only the
//! timing summary, and writes `BENCH.json` — the repository's perf
//! trajectory tracker (CI runs this at quick scale on every push).
//!
//! Knobs: `MPACCEL_BENCH_SCALE` (quick/full), `MPACCEL_THREADS` (pool
//! width, default all cores), `MPACCEL_BENCH_JSON` (output path, default
//! `BENCH.json`). Pass experiment names as arguments to time a subset,
//! e.g. `perf fig07 table3`.

use mp_bench::engine;
use threadpool::ThreadPool;

fn main() {
    let scale = mp_bench::Scale::from_env();
    let pool = ThreadPool::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let list = if args.is_empty() {
        engine::experiments()
    } else {
        let names: Vec<&str> = args.iter().map(String::as_str).collect();
        match engine::select(&names) {
            Ok(list) => list,
            Err(unknown) => {
                eprintln!(
                    "unknown experiment `{unknown}`; available: {}",
                    engine::experiments()
                        .iter()
                        .map(|x| x.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
        }
    };
    let summary = engine::run_selected(&list, scale, &pool);
    println!("{}", summary.timing_report());
    match engine::write_bench_json(&summary) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write BENCH.json: {e}");
            std::process::exit(1);
        }
    }
}
