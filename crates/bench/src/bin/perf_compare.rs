//! Diffs two `BENCH.json` files (schema `mpaccel-bench/1`): per-experiment
//! wall-time deltas plus the headline CD-throughput change and the modeled
//! energy trajectory (pJ/CD-check and uJ/plan — absent in baselines
//! written before those keys existed, in which case the energy rows are
//! skipped).
//!
//! Usage: `perf_compare [BASELINE [FRESH]]`, defaulting to
//! `BENCH.baseline.json` vs `BENCH.json`. Intended as a non-gating CI
//! step: copy the committed `BENCH.json` aside, regenerate it with the
//! `perf` bin, then run this to print the trajectory. Comparison never
//! fails the build — only unreadable/unparseable inputs exit non-zero.
//!
//! The parser is hand-rolled for the one schema the engine writes (the
//! workspace is hermetic, no serde): top-level scalar keys plus the flat
//! `experiments` array of `{"name": ..., "wall_s": ...}` records.

use std::process::ExitCode;

/// The fields of one `BENCH.json` this comparison reads.
struct Summary {
    scale: String,
    threads: u64,
    total_wall_s: f64,
    cd_checks: u64,
    cd_checks_per_sec: f64,
    /// Modeled energy keys (`None` for baselines predating them).
    pj_per_cd_check: Option<f64>,
    uj_per_plan_full: Option<f64>,
    experiments: Vec<(String, f64)>,
}

/// Value of a top-level `"key": value` scalar (number or quoted string),
/// as the raw token text.
fn scalar<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

fn parse(json: &str, origin: &str) -> Result<Summary, String> {
    let err = |what: &str| format!("{origin}: missing or malformed {what}");
    if scalar(json, "schema") != Some("mpaccel-bench/1") {
        return Err(err("schema (want mpaccel-bench/1)"));
    }
    let mut experiments = Vec::new();
    // Records are flat and one per line; split on the object openers past
    // the "experiments" key.
    let tail = &json[json
        .find("\"experiments\"")
        .ok_or_else(|| err("experiments"))?..];
    for rec in tail.split('{').skip(1) {
        let name = scalar(rec, "name").ok_or_else(|| err("experiment name"))?;
        let wall: f64 = scalar(rec, "wall_s")
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("experiment wall_s"))?;
        experiments.push((name.to_string(), wall));
    }
    let num = |key: &str| -> Result<f64, String> {
        scalar(json, key)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err(key))
    };
    Ok(Summary {
        scale: scalar(json, "scale")
            .ok_or_else(|| err("scale"))?
            .to_string(),
        threads: num("threads")? as u64,
        total_wall_s: num("total_wall_s")?,
        cd_checks: num("cd_checks")? as u64,
        cd_checks_per_sec: num("cd_checks_per_sec")?,
        pj_per_cd_check: num("pj_per_cd_check").ok(),
        uj_per_plan_full: num("uj_per_plan_full").ok(),
        experiments,
    })
}

fn load(path: &str) -> Result<Summary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text, path)
}

/// `new` relative to `old` as a signed percentage; 0 when the baseline is 0.
fn pct(old: f64, new: f64) -> f64 {
    if old.abs() < 1e-12 {
        0.0
    } else {
        (new - old) / old * 100.0
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH.baseline.json");
    let fresh_path = args.get(1).map(String::as_str).unwrap_or("BENCH.json");
    let (base, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for r in [b, f] {
                if let Err(e) = r {
                    eprintln!("error: {e}");
                }
            }
            return ExitCode::from(2);
        }
    };

    println!("perf comparison: {baseline_path} (baseline) vs {fresh_path} (fresh)");
    if base.scale != fresh.scale || base.threads != fresh.threads {
        println!(
            "warning: configurations differ (baseline {} scale, {} thread(s) vs fresh {} scale, {} thread(s)); deltas are not like-for-like",
            base.scale, base.threads, fresh.scale, fresh.threads
        );
    }
    println!(
        "  total wall      {:>10.3} s  -> {:>10.3} s  ({:+.1}%)",
        base.total_wall_s,
        fresh.total_wall_s,
        pct(base.total_wall_s, fresh.total_wall_s)
    );
    println!(
        "  cd checks       {:>10}    -> {:>10}",
        base.cd_checks, fresh.cd_checks
    );
    println!(
        "  cd checks/sec   {:>10.0}    -> {:>10.0}  ({:+.1}%, {:.2}x)",
        base.cd_checks_per_sec,
        fresh.cd_checks_per_sec,
        pct(base.cd_checks_per_sec, fresh.cd_checks_per_sec),
        fresh.cd_checks_per_sec / base.cd_checks_per_sec.max(1e-12),
    );
    // Energy trajectory (modeled, so deltas here are real regressions or
    // wins in work done, never host noise). Skipped when either side
    // predates the energy keys.
    match (base.pj_per_cd_check, fresh.pj_per_cd_check) {
        (Some(b), Some(f)) => println!(
            "  pJ/CD-check     {b:>10.3}    -> {f:>10.3}  ({:+.1}%)",
            pct(b, f)
        ),
        _ => println!("  pJ/CD-check     (absent on one side; skipped)"),
    }
    match (base.uj_per_plan_full, fresh.uj_per_plan_full) {
        (Some(b), Some(f)) => println!(
            "  uJ/plan (full)  {b:>10.3}    -> {f:>10.3}  ({:+.1}%)",
            pct(b, f)
        ),
        _ => println!("  uJ/plan (full)  (absent on one side; skipped)"),
    }
    println!(
        "  {:<12} {:>12} {:>12} {:>9}",
        "experiment", "base [ms]", "fresh [ms]", "delta"
    );
    for (name, old_wall) in &base.experiments {
        match fresh.experiments.iter().find(|(n, _)| n == name) {
            Some((_, new_wall)) => println!(
                "  {:<12} {:>12.1} {:>12.1} {:>+8.1}%",
                name,
                old_wall * 1e3,
                new_wall * 1e3,
                pct(*old_wall, *new_wall)
            ),
            None => println!(
                "  {name:<12} {:>12.1} {:>12} (removed)",
                old_wall * 1e3,
                "-"
            ),
        }
    }
    for (name, new_wall) in &fresh.experiments {
        if !base.experiments.iter().any(|(n, _)| n == name) {
            println!("  {name:<12} {:>12} {:>12.1} (new)", "-", new_wall * 1e3);
        }
    }

    // On CI, surface the two headline numbers — CD throughput and the
    // planners experiment wall — in the job's step summary so the perf
    // trajectory is readable without opening the log.
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        let wall = |s: &Summary| {
            s.experiments
                .iter()
                .find(|(n, _)| n == "planners")
                .map(|(_, w)| *w)
        };
        let planners = match (wall(&base), wall(&fresh)) {
            (Some(b), Some(f)) => format!(
                "| planners wall | {:.1} ms | {:.1} ms | {:+.1}% |\n",
                b * 1e3,
                f * 1e3,
                pct(b, f)
            ),
            _ => String::new(),
        };
        let energy_row = |label: &str, b: Option<f64>, f: Option<f64>| match (b, f) {
            (Some(b), Some(f)) => {
                format!("| {label} | {b:.3} | {f:.3} | {:+.1}% |\n", pct(b, f))
            }
            _ => String::new(),
        };
        let energy = format!(
            "{}{}",
            energy_row("pJ/CD-check", base.pj_per_cd_check, fresh.pj_per_cd_check),
            energy_row(
                "uJ/plan (full tier)",
                base.uj_per_plan_full,
                fresh.uj_per_plan_full
            ),
        );
        let md = format!(
            "### Perf vs committed baseline ({} scale, {} thread(s))\n\n\
             | metric | baseline | fresh | delta |\n|---|---|---|---|\n\
             | cd_checks_per_sec | {:.0} | {:.0} | {:+.1}% ({:.2}x) |\n\
             | total wall | {:.3} s | {:.3} s | {:+.1}% |\n{energy}{planners}",
            fresh.scale,
            fresh.threads,
            base.cd_checks_per_sec,
            fresh.cd_checks_per_sec,
            pct(base.cd_checks_per_sec, fresh.cd_checks_per_sec),
            fresh.cd_checks_per_sec / base.cd_checks_per_sec.max(1e-12),
            base.total_wall_s,
            fresh.total_wall_s,
            pct(base.total_wall_s, fresh.total_wall_s),
        );
        if let Err(e) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| std::io::Write::write_all(&mut f, md.as_bytes()))
        {
            eprintln!("warning: could not write step summary {path}: {e}");
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "mpaccel-bench/1",
  "scale": "quick",
  "threads": 1,
  "total_wall_s": 0.50,
  "workload": {"build_wall_s": 0.01, "scenes": 4, "traces": 12, "scenes_per_sec": 400.0},
  "cd_checks": 75324,
  "cd_checks_per_sec": 150648.0,
  "cd_energy_pj": 602592.0,
  "pj_per_cd_check": 8.001,
  "uj_per_plan_full": 1.234,
  "experiments": [
    {"name": "fig01b", "wall_s": 0.007803},
    {"name": "planners", "wall_s": 0.104}
  ]
}
"#;

    #[test]
    fn parses_engine_schema() {
        let s = parse(SAMPLE, "sample").expect("parse");
        assert_eq!(s.scale, "quick");
        assert_eq!(s.threads, 1);
        assert_eq!(s.cd_checks, 75324);
        assert!((s.total_wall_s - 0.5).abs() < 1e-9);
        assert!((s.cd_checks_per_sec - 150648.0).abs() < 1e-6);
        assert!((s.pj_per_cd_check.unwrap() - 8.001).abs() < 1e-9);
        assert!((s.uj_per_plan_full.unwrap() - 1.234).abs() < 1e-9);
        assert_eq!(s.experiments.len(), 2);
        assert_eq!(s.experiments[0].0, "fig01b");
        assert!((s.experiments[1].1 - 0.104).abs() < 1e-9);
    }

    #[test]
    fn tolerates_baselines_without_energy_keys() {
        let legacy: String = SAMPLE
            .lines()
            .filter(|l| {
                !l.contains("cd_energy_pj")
                    && !l.contains("pj_per_cd_check")
                    && !l.contains("uj_per_plan_full")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let s = parse(&legacy, "legacy").expect("parse");
        assert!(s.pj_per_cd_check.is_none());
        assert!(s.uj_per_plan_full.is_none());
        assert_eq!(s.cd_checks, 75324);
    }

    #[test]
    fn rejects_unknown_schema() {
        let bad = SAMPLE.replace("mpaccel-bench/1", "other/9");
        assert!(parse(&bad, "bad").is_err());
    }

    #[test]
    fn percentage_is_signed_and_zero_safe() {
        assert!((pct(2.0, 1.0) + 50.0).abs() < 1e-9);
        assert!((pct(1.0, 2.0) - 100.0).abs() < 1e-9);
        assert_eq!(pct(0.0, 5.0), 0.0);
    }
}
