//! Trace generation and replay — the artifact's A.3/A.4 workflow: generate
//! MPNet traces once (expensive planning), store them as text, and replay
//! them on the accelerator models any number of times.
//!
//! ```text
//! cargo run -p mp-bench --release --bin traces [out-dir]
//! ```

use std::fs;
use std::path::PathBuf;

use mp_bench::workloads::{BenchWorkload, Scale};
use mp_robot::RobotModel;
use mpaccel_core::mpaccel::{MpAccelSystem, SystemConfig};
use mpaccel_core::trace::PlannerTrace;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/mpnet_traces"));
    let scale = Scale::from_env();
    let robot = RobotModel::baxter();

    // 1. Generate (or reuse) the planner workload.
    println!("generating MPNet traces at {scale:?} scale…");
    let w = BenchWorkload::cached(robot.clone(), scale);
    fs::create_dir_all(&out_dir).expect("create trace directory");

    // 2. Store every trace in the text format.
    let mut paths = Vec::new();
    for (i, (scene, trace)) in w.traces.iter().enumerate() {
        let path = out_dir.join(format!("bench{scene}_query{i}.trace"));
        fs::write(&path, trace.to_text()).expect("write trace");
        paths.push((path, *scene));
    }
    println!("wrote {} traces to {}", paths.len(), out_dir.display());

    // 3. Reload and replay on the headline configuration, verifying the
    //    round trip reproduces the in-memory replay exactly.
    let mut total_ms = 0.0;
    let mut mismatches = 0;
    for ((path, scene), (_, original)) in paths.iter().zip(&w.traces) {
        let text = fs::read_to_string(path).expect("read trace");
        let loaded = PlannerTrace::from_text(&text).expect("parse trace");
        let sys = MpAccelSystem::new(
            robot.clone(),
            w.octree(*scene),
            SystemConfig::paper_default(),
        );
        let a = sys.run_trace(&loaded);
        let b = sys.run_trace(original);
        total_ms += a.total_ms;
        if a.cd_queries != b.cd_queries {
            mismatches += 1;
        }
    }
    println!(
        "replayed {} traces: cumulative {:.3} ms on MPAccel 16x4 mc; {} replay mismatches",
        paths.len(),
        total_ms,
        mismatches
    );
    assert_eq!(mismatches, 0, "serialized traces must replay identically");
}
