//! Trace generation and replay — the artifact's A.3/A.4 workflow: generate
//! MPNet traces once (expensive planning), store them as text, and replay
//! them on the accelerator models any number of times.
//!
//! ```text
//! cargo run -p mp-bench --release --bin traces [out-dir]
//! ```

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use mp_bench::workloads::{BenchWorkload, Scale};
use mp_robot::RobotModel;
use mpaccel_core::mpaccel::{MpAccelSystem, SystemConfig};
use mpaccel_core::trace::PlannerTrace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: traces [out-dir]   (default: target/mpnet_traces)");
        return ExitCode::SUCCESS;
    }
    if args.len() > 1 {
        eprintln!("traces: expected at most one argument (the output directory), got {args:?}");
        return ExitCode::from(2);
    }
    let out_dir = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/mpnet_traces"));
    let scale = Scale::from_env();
    let robot = RobotModel::baxter();

    // 1. Generate (or reuse) the planner workload.
    println!("generating MPNet traces at {scale:?} scale…");
    let w = BenchWorkload::cached(robot.clone(), scale);
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!(
            "traces: cannot create trace directory `{}`: {e}",
            out_dir.display()
        );
        return ExitCode::FAILURE;
    }

    // 2. Store every trace in the text format.
    let mut paths = Vec::new();
    for (i, (scene, trace)) in w.traces.iter().enumerate() {
        let path = out_dir.join(format!("bench{scene}_query{i}.trace"));
        if let Err(e) = fs::write(&path, trace.to_text()) {
            eprintln!("traces: cannot write `{}`: {e}", path.display());
            return ExitCode::FAILURE;
        }
        paths.push((path, *scene));
    }
    println!("wrote {} traces to {}", paths.len(), out_dir.display());

    // 3. Reload and replay on the headline configuration, verifying the
    //    round trip reproduces the in-memory replay exactly.
    let mut total_ms = 0.0;
    let mut mismatches = 0;
    for ((path, scene), (_, original)) in paths.iter().zip(&w.traces) {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("traces: cannot read back `{}`: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let loaded = match PlannerTrace::from_text(&text) {
            Ok(trace) => trace,
            Err(e) => {
                eprintln!("traces: cannot parse `{}`: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let sys = MpAccelSystem::new(
            robot.clone(),
            w.octree(*scene),
            SystemConfig::paper_default(),
        );
        let a = sys.run_trace(&loaded);
        let b = sys.run_trace(original);
        total_ms += a.total_ms;
        if a.cd_queries != b.cd_queries {
            mismatches += 1;
        }
    }
    println!(
        "replayed {} traces: cumulative {:.3} ms on MPAccel 16x4 mc; {} replay mismatches",
        paths.len(),
        total_ms,
        mismatches
    );
    if mismatches != 0 {
        eprintln!("traces: serialized traces must replay identically ({mismatches} mismatches)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
