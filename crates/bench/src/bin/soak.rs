//! Runs the chaos/soak campaign for the planning service (robustness
//! study). Usage:
//!
//! ```text
//! cargo run -p mp-bench --release --bin soak [-- --out FILE] [--csv FILE]
//! ```
//!
//! Prints the report to stdout; `--out` additionally writes the text
//! report and `--csv` the CSV table. Set `MPACCEL_BENCH_SCALE=full` for
//! paper-scale workloads and `MPACCEL_THREADS` for the catalog-build pool
//! width (the report is byte-identical at any width).

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut out: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => {
                    eprintln!("soak: --out requires a file path");
                    return ExitCode::from(2);
                }
            },
            "--csv" => match args.next() {
                Some(path) => csv = Some(path),
                None => {
                    eprintln!("soak: --csv requires a file path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: soak [--out FILE] [--csv FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("soak: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let scale = mp_bench::Scale::from_env();
    let report = mp_bench::experiments::soak::run(scale);
    println!("{report}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, report.to_string()) {
            eprintln!("soak: cannot write report to `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = csv {
        if let Err(e) = std::fs::write(&path, report.to_csv()) {
            eprintln!("soak: cannot write CSV to `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
