//! Regenerates the paper's table3 evaluation artifact.
//! Usage: `cargo run -p mp-bench --release --bin table3 [-- --timings]`
//! (set `MPACCEL_BENCH_SCALE=full` for paper-scale workloads).
//!
//! `--timings` additionally prints the host per-query wall-clock
//! distribution (mean/p50/p99/p999 from the telemetry histogram behind
//! the ground-truth row). Real wall clock varies run to run, so the dump
//! is opt-in and kept out of the deterministic report.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut timings = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--timings" => timings = true,
            "--help" | "-h" => {
                println!("usage: table3 [--timings]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("table3: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let scale = mp_bench::Scale::from_env();
    let d = mp_bench::experiments::table3::data(scale);
    println!("{}", mp_bench::experiments::table3::render(&d));
    if timings {
        println!("{}", mp_bench::experiments::table3::timings(&d));
    }
    ExitCode::SUCCESS
}
