//! Regenerates the paper's table3 evaluation artifact.
//! Usage: `cargo run -p mp-bench --release --bin table3`
//! (set `MPACCEL_BENCH_SCALE=full` for paper-scale workloads).

fn main() {
    let scale = mp_bench::Scale::from_env();
    println!("{}", mp_bench::experiments::table3::run(scale));
}
