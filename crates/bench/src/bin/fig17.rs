//! Regenerates the paper's fig17 evaluation artifact.
//! Usage: `cargo run -p mp-bench --release --bin fig17`
//! (set `MPACCEL_BENCH_SCALE=full` for paper-scale workloads).

fn main() {
    let scale = mp_bench::Scale::from_env();
    println!("{}", mp_bench::experiments::fig17::run(scale));
}
