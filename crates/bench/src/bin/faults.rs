//! Runs the fault-injection resilience campaign (robustness study).
//! Usage: `cargo run -p mp-bench --release --bin faults`
//! (set `MPACCEL_BENCH_SCALE=full` for paper-scale workloads).

fn main() {
    let scale = mp_bench::Scale::from_env();
    println!("{}", mp_bench::experiments::faults::run(scale));
}
