//! Regenerates the paper's fig01b evaluation artifact.
//! Usage: `cargo run -p mp-bench --release --bin fig01b`
//! (set `MPACCEL_BENCH_SCALE=full` for paper-scale workloads).

fn main() {
    let scale = mp_bench::Scale::from_env();
    println!("{}", mp_bench::experiments::fig01b::run(scale));
}
