//! Regenerates the batched-vs-sequential planning comparison.
//! Usage: `cargo run -p mp-bench --release --bin batch_planning`

fn main() {
    let scale = mp_bench::Scale::from_env();
    println!("{}", mp_bench::experiments::batch_planning::run(scale));
}
