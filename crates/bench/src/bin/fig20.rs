//! Regenerates the paper's fig20 evaluation artifact.
//! Usage: `cargo run -p mp-bench --release --bin fig20`
//! (set `MPACCEL_BENCH_SCALE=full` for paper-scale workloads).

fn main() {
    let scale = mp_bench::Scale::from_env();
    println!("{}", mp_bench::experiments::fig20::run(scale));
}
