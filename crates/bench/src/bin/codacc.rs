//! Regenerates the codacc study.
//! Usage: `cargo run -p mp-bench --release --bin codacc`

fn main() {
    let scale = mp_bench::Scale::from_env();
    println!("{}", mp_bench::experiments::codacc::run(scale));
}
