//! Fault-injection resilience campaign (robustness study; not a paper
//! figure). Sweeps a per-event fault rate across every fault kind of
//! [`mp_sim::fault::FaultKind`] against the recovery modes of
//! [`mpaccel_core::fault::RecoveryMode`], replaying the benchmark CD
//! batches through a [`FaultTolerantCduArray`] under Complete-mode SAS.
//!
//! Reported per sweep point: verdict accuracy against a clean reference
//! run, latency and energy degradation relative to the same mode at rate
//! zero, and the safety metric — wrong-free verdicts (false negatives),
//! which must be zero whenever detection is enabled.

use mp_robot::RobotModel;
use mp_sim::fault::{FaultPlan, ResilienceCounters};
use mp_sim::{CecduConfig, IuKind};
use mpaccel_core::cecdu::CecduSim;
use mpaccel_core::fault::{
    run_sas_with_faults, FaultTolerantCduArray, RecoveryMode, RecoveryPolicy,
};
use mpaccel_core::sas::{FunctionMode, SasConfig};

use crate::experiments::common::SasAggregate;
use crate::report::{f3, Report};
use crate::workloads::{BenchWorkload, Scale};

/// Per-event fault rates swept by the campaign (applied uniformly to all
/// fault kinds; rate 0 is the clean baseline).
pub const FAULT_RATES: [f64; 4] = [0.0, 1e-3, 5e-3, 2e-2];

/// Recovery modes compared at every rate.
pub const MODES: [RecoveryMode; 3] = [
    RecoveryMode::None,
    RecoveryMode::DetectRetry,
    RecoveryMode::DetectRetryVoter,
];

/// CECDUs in the fault-tolerant array (and SAS `num_cdus`).
pub const NUM_UNITS: usize = 4;

/// One sweep point: a (fault rate, recovery mode) pair's aggregate SAS
/// result and resilience counters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPoint {
    /// Per-event fault rate applied to every fault kind.
    pub rate: f64,
    /// Recovery mode in force.
    pub mode: RecoveryMode,
    /// Scheduler-side aggregate (cycles, queries, mults).
    pub agg: SasAggregate,
    /// Resilience counters summed over all replayed batches.
    pub counters: ResilienceCounters,
}

impl FaultPoint {
    /// Fraction of pose verdicts that matched the clean reference run.
    pub fn verdict_accuracy(&self) -> f64 {
        let q = self.counters.queries.max(1) as f64;
        let wrong = (self.counters.false_positives + self.counters.false_negatives) as f64;
        1.0 - wrong / q
    }
}

/// Runs the campaign: every rate x every mode over the same seeded batch
/// set. Deterministic given a scale.
pub fn data(scale: Scale) -> Vec<FaultPoint> {
    let w = BenchWorkload::cached(RobotModel::jaco2(), scale);
    let max_batches = match scale {
        Scale::Quick => 6,
        Scale::Full => 48,
    };
    let limit = max_batches.min(w.batches.len());
    let sas = SasConfig::mcsp(NUM_UNITS);
    let mut points = Vec::new();
    for (mi, &mode) in MODES.iter().enumerate() {
        for (ri, &rate) in FAULT_RATES.iter().enumerate() {
            let mut agg = SasAggregate::default();
            let mut counters = ResilienceCounters::default();
            for (bi, batch) in w.batches[..limit].iter().enumerate() {
                let sim = CecduSim::new(
                    w.robot.clone(),
                    w.octree(batch.scene),
                    CecduConfig::new(4, IuKind::MultiCycle),
                );
                // Seed depends only on the sweep coordinates, so repeated
                // campaigns are bit-identical.
                let seed = 0xFA17_0000 ^ ((mi as u64) << 32) ^ ((ri as u64) << 16) ^ (bi as u64);
                let mut array = FaultTolerantCduArray::new(
                    sim,
                    NUM_UNITS,
                    FaultPlan::uniform(rate, seed),
                    RecoveryPolicy::new(mode),
                );
                // Complete mode isolates resilience effects from
                // function-mode early stops: every motion's verdict is
                // resolved, so accuracy is measured over the full batch.
                let r =
                    run_sas_with_faults(&batch.motions, FunctionMode::Complete, &sas, &mut array);
                agg.cycles += r.cycles;
                agg.queries += r.queries;
                agg.mults += r.ops.mults;
                counters.merge(array.counters());
            }
            points.push(FaultPoint {
                rate,
                mode,
                agg,
                counters,
            });
        }
    }
    points
}

/// Renders the campaign as a degradation table: latency and energy are
/// normalized to the same recovery mode at fault rate zero.
pub fn run(scale: Scale) -> Report {
    let d = data(scale);
    let mut r = Report::new("Fault-injection campaign: rate x recovery-mode sweep");
    r.note("latency/energy = per-query cycles/mults vs the same mode at rate 0");
    r.note(
        "(per query: conservative collision verdicts prune whole motions, so totals can shrink)",
    );
    r.note("safety invariant: FN (wrong-free verdicts) must be 0 whenever detection is on");
    r.columns(&[
        "rate", "mode", "accuracy", "latency", "energy", "injected", "detected", "escaped", "FN",
    ]);
    let per_query = |a: &SasAggregate, v: u64| v as f64 / a.queries.max(1) as f64;
    for p in &d {
        let base = d
            .iter()
            .find(|b| b.mode == p.mode && b.rate == 0.0)
            .expect("rate 0 is part of the sweep");
        r.row(&[
            format!("{:.0e}", p.rate),
            p.mode.label().to_string(),
            f3(p.verdict_accuracy()),
            f3(per_query(&p.agg, p.agg.cycles) / per_query(&base.agg, base.agg.cycles).max(1e-12)),
            f3(per_query(&p.agg, p.agg.mults) / per_query(&base.agg, base.agg.mults).max(1e-12)),
            p.counters.injected_total().to_string(),
            p.counters.detected.to_string(),
            p.counters.escaped.to_string(),
            p.counters.false_negatives.to_string(),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign() -> Vec<FaultPoint> {
        data(Scale::Quick)
    }

    #[test]
    fn detection_modes_never_deliver_a_wrong_free_verdict() {
        for p in campaign() {
            if p.mode.detection() {
                assert_eq!(
                    p.counters.false_negatives,
                    0,
                    "FN at rate {} mode {}",
                    p.rate,
                    p.mode.label()
                );
                assert_eq!(
                    p.counters.escaped,
                    0,
                    "escape at rate {} mode {}",
                    p.rate,
                    p.mode.label()
                );
            }
        }
    }

    #[test]
    fn no_recovery_mode_lets_faults_escape_at_high_rates() {
        let d = campaign();
        let worst = d
            .iter()
            .find(|p| p.mode == RecoveryMode::None && p.rate == FAULT_RATES[3])
            .unwrap();
        assert!(worst.counters.injected_total() > 0);
        assert!(
            worst.counters.escaped > 0,
            "expected escapes without detection at rate {}",
            worst.rate
        );
        assert_eq!(worst.counters.redispatches, 0);
    }

    #[test]
    fn recovery_counters_are_exercised() {
        let d = campaign();
        let retry = d
            .iter()
            .find(|p| p.mode == RecoveryMode::DetectRetry && p.rate == FAULT_RATES[3])
            .unwrap();
        assert!(retry.counters.injected_total() > 0);
        assert!(retry.counters.detected > 0);
        assert!(retry.counters.redispatches > 0);
        // Retries cost latency and energy *per query*: total work can
        // shrink because conservative collision verdicts prune the rest of
        // a motion, so compare per-query averages, not totals.
        let base = d
            .iter()
            .find(|p| p.mode == RecoveryMode::DetectRetry && p.rate == 0.0)
            .unwrap();
        assert!(
            retry.agg.cycles * base.agg.queries > base.agg.cycles * retry.agg.queries,
            "per-query latency should rise under retries"
        );
        assert!(
            retry.agg.mults * base.agg.queries > base.agg.mults * retry.agg.queries,
            "per-query energy should rise under retries"
        );
        // The voter spot-checks free verdicts when enabled.
        let voter = d
            .iter()
            .find(|p| p.mode == RecoveryMode::DetectRetryVoter && p.rate == FAULT_RATES[3])
            .unwrap();
        assert!(voter.counters.oracle_checks > 0);
    }

    #[test]
    fn clean_baseline_is_fault_free() {
        for p in campaign() {
            if p.rate == 0.0 {
                assert_eq!(p.counters.injected_total(), 0);
                assert_eq!(p.counters.false_negatives, 0);
                assert_eq!(p.counters.false_positives, 0);
                assert!(p.counters.queries > 0);
            }
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        assert_eq!(campaign(), campaign());
    }

    #[test]
    fn report_covers_the_whole_sweep() {
        let text = run(Scale::Quick).to_string();
        for mode in MODES {
            assert!(text.contains(mode.label()), "missing {}", mode.label());
        }
        assert!(text.contains("2e-2") || text.contains("2e-02"));
    }
}
