//! Integrity soak: silent-data-corruption rate × defense policy at 2× the
//! saturating load (robustness study; not a paper figure).
//!
//! Sweeps the SDC verdict-flip rate {0, 1e-4, 1e-3} — with a 100× "hot
//! lane" on instance 0, modeling one marginal die — against three defense
//! policies over the deterministic simulated-time service of `mp-service`:
//!
//! * `undefended`   — corrupted plans ship as successes; the escape rate
//!   is the paper-killer this campaign measures.
//! * `certify`      — every plan re-validated by an independent software
//!   cascade before completion; failures re-plan degraded. Zero escapes,
//!   paid for in certification CPU time on every completion.
//! * `certify-vote-scrub` — certification plus suspicion-scored duplicate
//!   dispatch on suspect instances, liar benching, and background scrub
//!   probes that readmit instances after a clean streak.
//!
//! The in-module tests pin the acceptance criteria: at SDC rate 1e-3 the
//! undefended service ships a nonzero unsafe-plan escape rate, both
//! defended policies ship **zero**, the full ladder retains ≥ 90% of its
//! own no-SDC goodput, and the certification overhead is measured
//! (per-completion mean and p99 ride along in the report).
//!
//! Determinism: one service run is a single-threaded discrete-event
//! simulation and the catalog build is order-collected, so the rendered
//! report is byte-identical at any thread count (see
//! `tests/determinism.rs`).

use mp_service::{FaultProfile, IntegrityConfig, PlanCatalog, ServiceConfig, ServiceSummary};
use mp_sim::vtime::VirtualNs;
use threadpool::ThreadPool;

use crate::experiments::soak;
use crate::report::{f3, Report};
use crate::workloads::Scale;

/// Silent-corruption rates swept (probability a clean completion returns
/// a corrupted plan; 0 is the SDC-free baseline).
pub const SDC_RATES: [f64; 3] = [0.0, 1e-4, 1e-3];

/// Rate multiplier of the hot instance (instance 0): one marginal die
/// corrupting far above the fleet baseline, the realistic SDC shape.
pub const HOT_FACTOR: f64 = 100.0;

/// Offered load relative to the pool's full-quality saturating rate.
pub const LOAD: f64 = 2.0;

/// Simulated MPAccel instances in the pool.
pub const INSTANCES: usize = soak::INSTANCES;

/// The defense-policy presets compared at every SDC rate.
pub fn policies() -> [(&'static str, IntegrityConfig); 3] {
    [
        ("undefended", IntegrityConfig::off()),
        ("certify", IntegrityConfig::certify_only()),
        ("certify-vote-scrub", IntegrityConfig::full()),
    ]
}

fn duration_ns(scale: Scale) -> VirtualNs {
    match scale {
        Scale::Quick => 100_000_000, // 100 ms simulated
        Scale::Full => 400_000_000,  // 400 ms simulated
    }
}

/// One sweep point of the campaign.
#[derive(Clone, Debug)]
pub struct IntegrityPoint {
    /// SDC verdict-flip rate in force.
    pub sdc_rate: f64,
    /// Defense-policy label.
    pub policy: &'static str,
    /// The run's aggregate outcome.
    pub summary: ServiceSummary,
}

fn sweep(catalog: &PlanCatalog, scale: Scale) -> Vec<IntegrityPoint> {
    let mut points = Vec::new();
    for (ri, &sdc_rate) in SDC_RATES.iter().enumerate() {
        for (pi, (policy, integrity)) in policies().into_iter().enumerate() {
            let cfg = ServiceConfig {
                instances: INSTANCES,
                faults: FaultProfile::none().with_sdc(sdc_rate, Some(0), HOT_FACTOR),
                integrity,
                // Same seed across policies at one rate: the three
                // policies face the identical corruption pattern.
                seed: 0x1D7E_6000 ^ ((ri as u64) << 8) ^ pi as u64,
                ..ServiceConfig::default()
            };
            let summary = run_one(catalog, scale, &cfg);
            points.push(IntegrityPoint {
                sdc_rate,
                policy,
                summary,
            });
        }
    }
    points
}

fn run_one(catalog: &PlanCatalog, scale: Scale, cfg: &ServiceConfig) -> ServiceSummary {
    mp_service::run_service(
        catalog,
        &soak::tenants(catalog, LOAD * catalog.saturating_rate_per_s(INSTANCES)),
        duration_ns(scale),
        cfg,
    )
}

/// Runs the campaign against the cached per-scale soak catalog.
pub fn data(scale: Scale) -> Vec<IntegrityPoint> {
    sweep(&soak::catalog(scale), scale)
}

fn render(points: &[IntegrityPoint], catalog: &PlanCatalog) -> Report {
    let mut r = Report::new("Integrity soak: SDC rate x defense policy at 2x saturation");
    r.note(format!(
        "pool of {} instances, instance 0 corrupts at {}x the swept rate; load {:.1}x saturation",
        INSTANCES, HOT_FACTOR, LOAD
    ));
    r.note(
        "escapes = corrupted plans shipped as successes; the defended policies must hold this at 0",
    );
    r.note("retention = goodput vs the same policy at SDC rate 0; certify cols are per-completion overhead");
    r.note(format!(
        "catalog mean certify cost at full quality: {:.1} us/plan",
        catalog.mean_certify_us(mp_planner::QualityTier::Full)
    ));
    r.columns(&[
        "sdc", "policy", "offered", "goodput", "retain", "miss", "injected", "escapes", "esc_rate",
        "cfail", "cert_us", "cert_p99", "votes", "ovrd", "bench", "readmit",
    ]);
    let baseline = |policy: &str| {
        points
            .iter()
            .find(|p| p.sdc_rate == 0.0 && p.policy == policy)
            .map(|p| p.summary.goodput_rps())
            .unwrap_or(0.0)
    };
    for p in points {
        let s = &p.summary;
        let i = &s.integrity;
        let base = baseline(p.policy);
        r.row(&[
            format!("{:.0e}", p.sdc_rate),
            p.policy.to_string(),
            s.offered.to_string(),
            format!("{:.0}", s.goodput_rps()),
            if base > 0.0 {
                f3(s.goodput_rps() / base)
            } else {
                "-".to_string()
            },
            f3(s.miss_rate()),
            i.sdc_injected.to_string(),
            i.sdc_escaped.to_string(),
            f3(s.escape_rate()),
            i.certify_failed.to_string(),
            format!("{:.1}", s.certify_overhead_us()),
            i.certify_hist
                .percentile(0.99)
                .map(|v| format!("{v}"))
                .unwrap_or_else(|| "-".to_string()),
            i.votes.to_string(),
            i.vote_overrides.to_string(),
            i.liars_benched.to_string(),
            i.scrub_readmits.to_string(),
        ]);
    }
    r
}

/// Runs the campaign and renders the report (cached catalog).
pub fn run(scale: Scale) -> Report {
    let catalog = soak::catalog(scale);
    render(&sweep(&catalog, scale), &catalog)
}

/// Like [`run`], but builds the catalog on the given pool, uncached — the
/// thread-invariance regression test compares widths 1 and 8 through this
/// entry point.
pub fn run_with_pool(scale: Scale, pool: &ThreadPool) -> Report {
    let catalog = soak::build_catalog(scale, pool);
    render(&sweep(&catalog, scale), &catalog)
}

/// Captures one fully-instrumented defended run at the worst swept SDC
/// rate into a telemetry session (catalog build + certify-vote-scrub
/// service run on the `("service", 0)` stream), returning the session
/// plus the run's summary. Certification rejections, liar benchings, and
/// scrub readmissions all leave flight-recorder incidents — the SDC
/// post-mortem walkthrough in `EXPERIMENTS.md` reads this capture.
pub fn capture_trace(
    scale: Scale,
    pool: &ThreadPool,
) -> (mp_telemetry::TelemetrySession, ServiceSummary) {
    use mp_octree::{benchmark_scenes, Scene};
    let session = mp_telemetry::TelemetrySession::new();
    let scenes: Vec<Scene> = benchmark_scenes().into_iter().take(2).collect();
    let catalog = mp_service::PlanCatalog::build_traced(
        &mp_robot::RobotModel::jaco2(),
        &scenes,
        2,
        11,
        pool,
        &session,
    )
    .expect("benchmark scenes yield valid soak catalogs");
    let cfg = ServiceConfig {
        instances: INSTANCES,
        faults: FaultProfile::none().with_sdc(SDC_RATES[2], Some(0), HOT_FACTOR),
        integrity: IntegrityConfig::full(),
        seed: 0x1D7E_6000 ^ (2 << 8) ^ 2,
        ..ServiceConfig::default()
    };
    let summary = mp_service::run_service_traced(
        &catalog,
        &soak::tenants(&catalog, LOAD * catalog.saturating_rate_per_s(INSTANCES)),
        duration_ns(scale),
        &cfg,
        &session,
        0,
    );
    (session, summary)
}

/// Builds the unified metrics registry for a captured run: the service
/// summary including the `service.integrity.*` counters and the
/// certification-cost histogram, plus the process-wide collision
/// counters.
pub fn metrics_registry(summary: &ServiceSummary) -> mp_telemetry::Registry {
    let reg = mp_telemetry::Registry::new();
    summary.export_into("service", &reg);
    mp_collision::metrics::export_into(&reg);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point<'a>(d: &'a [IntegrityPoint], rate: f64, policy: &str) -> &'a IntegrityPoint {
        d.iter()
            .find(|p| p.sdc_rate == rate && p.policy == policy)
            .expect("sweep point exists")
    }

    #[test]
    fn undefended_ships_unsafe_plans_and_defenses_ship_none() {
        let d = data(Scale::Quick);
        let worst = SDC_RATES[2];
        let u = point(&d, worst, "undefended");
        assert!(
            u.summary.integrity.sdc_injected > 0,
            "the hot lane must corrupt at rate {worst}"
        );
        assert!(
            u.summary.integrity.sdc_escaped > 0 && u.summary.escape_rate() > 0.0,
            "undefended, corrupted plans must ship"
        );
        for policy in ["certify", "certify-vote-scrub"] {
            for &rate in &SDC_RATES {
                let p = point(&d, rate, policy);
                assert_eq!(
                    p.summary.integrity.sdc_escaped, 0,
                    "{policy} at rate {rate} must ship zero unsafe plans"
                );
            }
        }
    }

    #[test]
    fn full_ladder_retains_goodput_under_attack() {
        let d = data(Scale::Quick);
        let clean = point(&d, 0.0, "certify-vote-scrub").summary.goodput_rps();
        let attacked = point(&d, SDC_RATES[2], "certify-vote-scrub")
            .summary
            .goodput_rps();
        assert!(
            attacked >= 0.90 * clean,
            "certify-vote-scrub goodput {attacked:.0} < 90% of its no-SDC {clean:.0}"
        );
    }

    #[test]
    fn certification_overhead_is_measured() {
        let d = data(Scale::Quick);
        let p = point(&d, SDC_RATES[2], "certify");
        let i = &p.summary.integrity;
        assert!(i.certify_ns > 0, "certification time must be accounted");
        assert!(p.summary.certify_overhead_us() > 0.0);
        assert_eq!(i.certify_hist.count(), i.certified + i.certify_failed);
        // Undefended runs pay nothing.
        let u = point(&d, SDC_RATES[2], "undefended");
        assert_eq!(u.summary.integrity.certify_ns, 0);
    }

    #[test]
    fn voting_and_scrub_engage_on_the_hot_lane() {
        let d = data(Scale::Quick);
        let p = point(&d, SDC_RATES[2], "certify-vote-scrub");
        let i = &p.summary.integrity;
        assert!(i.votes > 0, "suspicion must escalate to voting");
        // Certify-only never votes or scrubs.
        let c = point(&d, SDC_RATES[2], "certify");
        assert_eq!(c.summary.integrity.votes, 0);
        assert_eq!(c.summary.integrity.scrub_probes, 0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = format!("{:?}", data(Scale::Quick));
        let b = format!("{:?}", data(Scale::Quick));
        assert_eq!(a, b);
    }

    #[test]
    fn report_covers_the_whole_sweep() {
        let text = run(Scale::Quick).to_string();
        for (label, _) in policies() {
            assert!(text.contains(label), "missing policy {label}");
        }
        assert!(text.contains("1e-3") || text.contains("1e-03"));
        assert!(text.contains("0e0") || text.contains("0e+0") || text.contains("0e00"));
    }
}
