//! Fig 16: effect of the inter-motion group size on MCSP runtime and
//! energy (8 CDUs).

use mp_robot::RobotModel;
use mp_sim::{CecduConfig, IuKind};
use mpaccel_core::sas::SasConfig;

use crate::experiments::common::{replay_memo, CduKind, ReplayMemo, SasAggregate};
use crate::report::{f3, Report};
use crate::workloads::{BenchWorkload, Scale};

/// Group sizes swept in Fig 16.
pub const GROUP_SIZES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Raw sweep data: `(group_size, aggregate)`.
pub fn data(scale: Scale) -> Vec<(usize, SasAggregate)> {
    data_with(scale, false)
}

/// Like [`data`], optionally restricted to connectivity-test batches (the
/// shortcut pools where §7.1.1's "discardable motions get scheduled
/// anyway" energy effect lives).
pub fn data_with(scale: Scale, connectivity_only: bool) -> Vec<(usize, SasAggregate)> {
    let mut w = (*BenchWorkload::cached(RobotModel::jaco2(), scale)).clone();
    // Group size only matters for multi-motion batches (full-path
    // feasibility checks and shortcut pools); single-motion direct-connect
    // probes would dilute the sweep.
    w.batches.retain(|b| b.motions.len() >= 4);
    if connectivity_only {
        w.batches
            .retain(|b| b.mode == mpaccel_core::sas::FunctionMode::Connectivity);
    }
    let cdu = CduKind::Cecdu(CecduConfig::new(4, IuKind::MultiCycle));
    // Full scale caps the replay at a statistically ample batch count:
    // unbounded replay of ~30k batches x every configuration would take
    // hours without changing the aggregates.
    let max_batches = match scale {
        Scale::Quick => 16,
        Scale::Full => 300,
    };
    // Every group size replays the same batches: share pose responses.
    let mut memo = ReplayMemo::new(cdu);
    GROUP_SIZES
        .iter()
        .map(|&g| {
            let cfg = SasConfig::mcsp(8).with_group_size(g);
            (g, replay_memo(&w, &cfg, cdu, max_batches, None, &mut memo))
        })
        .collect()
}

/// Renders Fig 16 (runtime and energy normalized to the worst point, as in
/// the paper's normalized axes).
pub fn run(scale: Scale) -> Report {
    let d = data(scale);
    let max_cycles = d.iter().map(|(_, a)| a.cycles).max().unwrap_or(1) as f64;
    let max_queries = d.iter().map(|(_, a)| a.queries).max().unwrap_or(1) as f64;
    let mut r = Report::new("Figure 16: inter-motion group size sweep for MCSP (8 CDUs)");
    r.note("paper: runtime improves up to group size 16, then both runtime and energy degrade");
    r.columns(&["group size", "runtime (norm)", "energy (norm)"]);
    for (g, a) in &d {
        r.row(&[
            g.to_string(),
            f3(a.cycles as f64 / max_cycles),
            f3(a.queries as f64 / max_queries),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_size_sweep_shape() {
        let d = data(Scale::Quick);
        let get = |g: usize| d.iter().find(|(x, _)| *x == g).map(|(_, a)| *a).unwrap();
        // Group 1 (no inter-motion parallelism) is slower than group 16.
        assert!(
            get(1).cycles > get(16).cycles,
            "group1 {} vs group16 {}",
            get(1).cycles,
            get(16).cycles
        );
        // Large groups waste energy on connectivity batches: motions that
        // could have been discarded get scheduled anyway (§7.1.1).
        let conn = data_with(Scale::Quick, true);
        if conn[0].1.queries > 0 {
            let getc = |g: usize| conn.iter().find(|(x, _)| *x == g).map(|(_, a)| *a).unwrap();
            // Within 20%: the quick workload has only a handful of
            // connectivity pools, so the trend sits inside sampling noise.
            assert!(
                getc(64).queries * 10 >= getc(4).queries * 8,
                "connectivity energy at 64 ({}) should not undercut 4 ({})",
                getc(64).queries,
                getc(4).queries
            );
        }
    }

    #[test]
    fn report_lists_all_groups() {
        let text = run(Scale::Quick).to_string();
        for g in GROUP_SIZES {
            assert!(text.contains(&format!("\n  {:>10}", g)) || text.contains(&g.to_string()));
        }
    }
}
