//! Table 2: area and power breakdown for all hardware units, plus the two
//! MPAccel configurations.

use mp_sim::power::blocks;
use mp_sim::{AreaPower, CecduConfig, IuKind, MpaccelConfig};

use crate::report::Report;
use crate::workloads::Scale;

/// The rows of Table 2: `(name, area mm², power W)`.
pub fn data() -> Vec<(&'static str, AreaPower)> {
    vec![
        ("Scheduler", blocks::SCHEDULER),
        (
            "CECDU (with four multi-cycle OOCD)",
            CecduConfig::new(4, IuKind::MultiCycle).area_power(),
        ),
        ("OBB Transformation Unit", blocks::OBB_UNIT),
        ("Octree Traversal Unit", blocks::TRAVERSAL_UNIT),
        ("Intersection Unit (Multi-cycle)", blocks::IU_MULTI_CYCLE),
        ("Intersection Unit (Pipelined)", blocks::IU_PIPELINED),
        (
            "MPAccel Config 1 (16x 4 mc OOCD)",
            MpaccelConfig::config1().area_power(),
        ),
        (
            "MPAccel Config 2 (16x 4 p OOCD)",
            MpaccelConfig::config2().area_power(),
        ),
    ]
}

/// Renders Table 2 (scale is unused; the table is analytic).
pub fn run(_scale: Scale) -> Report {
    let mut r = Report::new("Table 2: area and power breakdown (45 nm synthesis constants)");
    r.note(
        "per-block values are the paper's synthesized results; MPAccel rows compose structurally",
    );
    // §5's storage claim, itemized for the headline config on a benchmark.
    let budget = mpaccel_core::sram::sram_budget(
        &mp_robot::RobotModel::baxter(),
        &mp_octree::Scene::random(mp_octree::SceneConfig::paper(), 0).octree(),
        &MpaccelConfig::config1(),
    );
    r.note(format!(
        "on-chip SRAM, Baxter + benchmark scene on Config 1: {} B total ({} B octree x {} OOCDs) — fits the §5 50 KB budget: {}",
        budget.total_bytes(),
        budget.octree_bytes,
        budget.octree_copies,
        budget.fits_50kb()
    ));
    r.columns(&["module", "area (mm^2)", "power"]);
    for (name, ap) in data() {
        let power = if ap.power_w >= 1.0 {
            format!("{:.2} W", ap.power_w)
        } else {
            format!("{:.1} mW", ap.power_w * 1e3)
        };
        r.row(&[name.to_string(), format!("{:.3}", ap.area_mm2), power]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table2() {
        let d = data();
        let get = |n: &str| d.iter().find(|(name, _)| name.starts_with(n)).unwrap().1;
        assert!((get("Scheduler").area_mm2 - 0.110).abs() < 1e-9);
        assert!((get("Scheduler").power_w - 0.0607).abs() < 1e-9);
        assert!((get("MPAccel Config 1").area_mm2 - 11.21).abs() < 0.02);
        assert!((get("MPAccel Config 1").power_w - 3.51).abs() < 0.01);
        assert!((get("MPAccel Config 2").area_mm2 - 18.12).abs() < 0.12);
        assert!((get("MPAccel Config 2").power_w - 4.03).abs() < 0.02);
    }

    #[test]
    fn renders_eight_rows() {
        assert_eq!(run(Scale::Quick).rows().len(), 8);
    }
}
