//! Fig 8: (a) sequential vs parallel separating-axis execution for
//! collision-free cases; (b) distribution of the first successful
//! separating-axis identifier and the share the bounding-sphere filter
//! catches.

use mp_geometry::sat::{sat_first_separating, SAT_ALL_MULS};
use mp_geometry::Sphere;

use crate::report::{f2, Report};
use crate::workloads::{collect_test_pairs, BenchWorkload, Scale};
use mp_robot::RobotModel;

/// Per-axis histogram data.
#[derive(Clone, Debug, Default)]
pub struct Fig08Data {
    /// Count of collision-free tests whose first separating axis is id
    /// `i+1`.
    pub axis_counts: [u64; 15],
    /// Of those, how many the bounding-sphere filter would have caught.
    pub filtered_counts: [u64; 15],
    /// Sequential SAT cycles over the collision-free population.
    pub seq_cycles: u64,
    /// Sequential SAT multiplications.
    pub seq_mults: u64,
    /// Parallel SAT cycles (all axes each cycle).
    pub par_cycles: u64,
    /// Parallel SAT multiplications.
    pub par_mults: u64,
    /// Collision-free tests observed.
    pub free_tests: u64,
}

/// Measures the Fig 8 population: the OBB–AABB tests arising from
/// OBB–octree traversals of random Jaco2-scale OBBs over the benchmark
/// scenes.
pub fn data(scale: Scale) -> Fig08Data {
    let w = BenchWorkload::cached(RobotModel::jaco2(), Scale::Quick);
    let queries = scale.cd_samples();
    let mut d = Fig08Data::default();
    for (si, scene) in w.scenes.iter().enumerate() {
        let tree = scene.octree();
        for (obb, aabb) in collect_test_pairs(&tree, queries / w.scenes.len(), si as u64) {
            let r = sat_first_separating(&obb.quantize(), &aabb.quantize());
            let Some(axis) = r.separating else {
                continue; // colliding: no separating axis
            };
            d.free_tests += 1;
            let i = (axis.get() - 1) as usize;
            d.axis_counts[i] += 1;
            // Would the bounding-sphere filter have caught it?
            let bs = Sphere::new(obb.center, obb.bounding_radius);
            if !bs.overlaps_aabb(&aabb) {
                d.filtered_counts[i] += 1;
            }
            d.seq_cycles += r.axes_tested as u64;
            d.seq_mults += r.mults as u64;
            d.par_cycles += 1;
            d.par_mults += SAT_ALL_MULS as u64;
        }
    }
    d
}

/// Renders both panels.
pub fn run(scale: Scale) -> Report {
    let d = data(scale);
    let mut r = Report::new("Figure 8: separating-axis test behaviour for collision-free cases");
    r.note(format!(
        "(a) sequential vs parallel SAT: parallel is {:.2}x faster but spends {:.2}x the multiplications (paper: ~3x energy)",
        d.seq_cycles as f64 / d.par_cycles.max(1) as f64,
        d.par_mults as f64 / d.seq_mults.max(1) as f64,
    ));
    r.columns(&[
        "axis id",
        "frequency",
        "caught by sphere filter",
        "share of total",
    ]);
    for i in 0..15 {
        r.row(&[
            format!("{}", i + 1),
            d.axis_counts[i].to_string(),
            d.filtered_counts[i].to_string(),
            f2(d.axis_counts[i] as f64 / d.free_tests.max(1) as f64 * 100.0) + "%",
        ]);
    }
    let first6: u64 = d.axis_counts[..6].iter().sum();
    r.note(format!(
        "paper: in most cases a separating axis is found within the first six axes; measured share: {:.1}%",
        first6 as f64 / d.free_tests.max(1) as f64 * 100.0
    ));
    let axis1_filtered = if d.axis_counts[0] > 0 {
        d.filtered_counts[0] as f64 / d.axis_counts[0] as f64 * 100.0
    } else {
        0.0
    };
    r.note(format!(
        "paper: the majority of axis-1 exits are filtered by the bounding-sphere test; measured: {axis1_filtered:.1}%"
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_matches_paper_shape() {
        let d = data(Scale::Quick);
        assert!(d.free_tests > 200, "population too small: {}", d.free_tests);
        // Most separating axes are found in the first six candidates.
        let first6: u64 = d.axis_counts[..6].iter().sum();
        assert!(
            first6 as f64 > 0.7 * d.free_tests as f64,
            "first-6 share {} / {}",
            first6,
            d.free_tests
        );
        // Parallel SAT costs several times the multiplications of
        // sequential (paper Fig 8a: ~3x; our population exits even earlier
        // — axis 1-2 — so the ratio is larger).
        let energy = d.par_mults as f64 / d.seq_mults as f64;
        assert!((1.5..=27.0).contains(&energy), "energy ratio {energy}");
        // The bounding-sphere filter catches a substantial share of the
        // axis-1 exits.
        assert!(d.filtered_counts[0] * 2 > d.axis_counts[0]);
        // Filter never exceeds the bin it filters from.
        for i in 0..15 {
            assert!(d.filtered_counts[i] <= d.axis_counts[i]);
        }
    }

    #[test]
    fn report_has_15_axis_rows() {
        let r = run(Scale::Quick);
        assert_eq!(r.rows().len(), 15);
    }
}
