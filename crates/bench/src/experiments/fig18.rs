//! Fig 18: effect of environmental complexity — (a) CECDU runtime/energy
//! vs number of obstacles, (b) exit-cycle breakdown of the cascaded test.

use mp_geometry::cascade::{cascaded_obb_aabb, CascadeConfig};
use mp_octree::{Scene, SceneConfig};
use mp_robot::RobotModel;
use mp_sim::{CecduConfig, IuKind};
use mpaccel_core::cecdu::CecduSim;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{f2, Report};
use crate::workloads::{collect_test_pairs, Scale};

/// Obstacle counts swept (the paper doubles the count repeatedly).
pub const OBSTACLE_COUNTS: [usize; 4] = [2, 4, 8, 16];

/// Per-environment measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnvPoint {
    /// Obstacles in the scene.
    pub obstacles: usize,
    /// Mean CECDU cycles per robot-pose query.
    pub avg_cycles: f64,
    /// Mean multiplications per pose query.
    pub avg_mults: f64,
    /// Exit-cycle distribution of the cascaded test (cycle 1..=4 shares).
    pub exit_shares: [f64; 4],
}

/// Runs the sweep.
pub fn data(scale: Scale) -> Vec<EnvPoint> {
    let robot = RobotModel::jaco2();
    let poses = scale.cd_samples() / 4;
    let mut rng = StdRng::seed_from_u64(18);
    OBSTACLE_COUNTS
        .iter()
        .map(|&n| {
            let scene = Scene::random(SceneConfig::with_obstacles(n), 180 + n as u64);
            let tree = scene.octree();
            let cecdu = CecduSim::new(
                robot.clone(),
                tree.clone(),
                CecduConfig::new(4, IuKind::MultiCycle),
            );
            let mut cycles = 0u64;
            let mut mults = 0u64;
            for _ in 0..poses {
                let pose = robot.sample_config(&mut rng);
                let out = cecdu.check_pose(&pose);
                cycles += out.cycles;
                mults += out.ops.mults;
            }
            // Exit-cycle breakdown over the traversal test population.
            let mut exits = [0u64; 4];
            let mut total = 0u64;
            for (obb, aabb) in collect_test_pairs(&tree, 400, 7 + n as u64) {
                let out = cascaded_obb_aabb(
                    &obb.quantize(),
                    &aabb.quantize(),
                    &CascadeConfig::proposed(),
                );
                exits[(out.exit.exit_cycle() - 1) as usize] += 1;
                total += 1;
            }
            let mut exit_shares = [0.0; 4];
            for i in 0..4 {
                exit_shares[i] = exits[i] as f64 / total.max(1) as f64;
            }
            EnvPoint {
                obstacles: n,
                avg_cycles: cycles as f64 / poses as f64,
                avg_mults: mults as f64 / poses as f64,
                exit_shares,
            }
        })
        .collect()
}

/// Renders both panels.
pub fn run(scale: Scale) -> Report {
    let d = data(scale);
    let mut r =
        Report::new("Figure 18: environmental complexity vs CECDU cost and cascade exit cycles");
    r.note("paper: runtime grows ~50% per obstacle doubling; cycle-1 filtering stays effective");
    r.columns(&[
        "obstacles",
        "avg cycles/pose",
        "avg mults/pose",
        "exit cyc1",
        "exit cyc2",
        "exit cyc3",
        "exit cyc4",
    ]);
    for p in &d {
        r.row(&[
            p.obstacles.to_string(),
            f2(p.avg_cycles),
            f2(p.avg_mults),
            f2(p.exit_shares[0] * 100.0) + "%",
            f2(p.exit_shares[1] * 100.0) + "%",
            f2(p.exit_shares[2] * 100.0) + "%",
            f2(p.exit_shares[3] * 100.0) + "%",
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_grows_with_clutter() {
        let d = data(Scale::Quick);
        assert!(
            d[0].avg_cycles < d[3].avg_cycles,
            "{} !< {}",
            d[0].avg_cycles,
            d[3].avg_cycles
        );
        assert!(d[0].avg_mults < d[3].avg_mults);
        // Growth per doubling is moderate (paper: ~1.5x), not explosive.
        for w in d.windows(2) {
            let g = w[1].avg_cycles / w[0].avg_cycles;
            assert!((0.9..=3.0).contains(&g), "growth {g}");
        }
    }

    #[test]
    fn cycle1_filtering_dominates_across_complexity() {
        // Fig 18b: the first cycle (sphere filters) resolves most tests in
        // every environment.
        for p in data(Scale::Quick) {
            assert!(
                p.exit_shares[0] > 0.4,
                "cycle-1 share {} at {} obstacles",
                p.exit_shares[0],
                p.obstacles
            );
            let sum: f64 = p.exit_shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }
}
