//! One module per paper table/figure. Every experiment is a pure function
//! from a [`Scale`](crate::workloads::Scale) to a
//! [`Report`](crate::report::Report) (or a small set of reports), so the
//! same code backs the CLI binaries, the Criterion benches, and the
//! shape-assertion tests.

pub mod ablation;
pub mod batch_planning;
pub mod codacc;
pub mod common;
pub mod energy_observatory;
pub mod faults;
pub mod fig01b;
pub mod fig07;
pub mod fig08;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fleet;
pub mod fleet_scaling;
pub mod integrity;
pub mod planners;
pub mod soak;
pub mod table1;
pub mod table2;
pub mod table3;
