//! Energy observatory (not a paper figure): the end-to-end energy
//! roll-up of the reproduction, priced by the Horowitz-calibrated
//! per-op-class model of `mp_sim::energy`.
//!
//! Three sections share one table:
//!
//! * `cd-check` — dynamic energy per dispatched CD query: the software
//!   f32 oracle chain (SAT cascade, per-op attribution via
//!   [`mp_collision::attributed`]) against the cycle-level CECDU Q3.12
//!   chain, which additionally pays OBB generation and large-SRAM
//!   octree/config fetches.
//! * `plan` — mean CD-datapath energy per planning attempt at each
//!   quality tier, from the soak catalog's counter-delta attribution
//!   (`TierOutcome::energy_pj`): the degradation ladder's energy slope.
//! * `baseline-2^20` — the §7.5 comparison restated in joules: each
//!   CPU/GPU platform's *best* CD kernel for 2^20 OBB–octree queries
//!   (modeled time × package power) against MPAccel's package energy at
//!   the same query count, plus the pure datapath dynamic energy.
//!
//! Determinism: everything is seed- or catalog-derived; the rendered
//! report is byte-identical at any thread count (see
//! `tests/determinism.rs`).

use mp_baselines::cpu::{cpu_cd_time_ms, CpuVariant, CORTEX_A57, I7_4771};
use mp_baselines::gpu::{gpu_cd_time_ms, GpuVariant, JETSON_TX2, TITAN_V};
use mp_baselines::workload::{measure_workload, random_link_obb, WorkloadStats};
use mp_collision::{attributed, CollisionChecker, SoftwareChecker};
use mp_octree::benchmark_scenes;
use mp_planner::QualityTier;
use mp_robot::{JointConfig, RobotModel};
use mp_service::PlanCatalog;
use mp_sim::{CecduConfig, IuKind};
use mpaccel_core::oocd::{run_oocd, OocdConfig};
use mpaccel_core::sas::{run_sas, CduModel, CduResponse, SasConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use threadpool::ThreadPool;

use super::common::{replay, CduKind, SasAggregate};
use super::soak;
use crate::report::{f2, f3, times, Report};
use crate::workloads::{BenchWorkload, Scale};

/// Queries in the baseline energy comparison (same as Table 3).
pub const QUERIES: u64 = 1 << 20;

/// CD batches replayed per chain (0 = all; kept small at quick scale —
/// the cycle-level CECDU chain dominates the experiment's wall-clock).
fn replay_batches(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 8,
        Scale::Full => 0,
    }
}

/// A CDU backed by the software f32 oracle that reports the checker's
/// *real* per-op work (node fetches, box tests, SAT mults) instead of
/// the bare query count [`mpaccel_core::sas::IdealCdu`] bills.
struct MeasuredSoftwareCdu {
    checker: SoftwareChecker,
}

impl CduModel for MeasuredSoftwareCdu {
    fn query(&mut self, pose: &JointConfig) -> CduResponse {
        let (colliding, work) = attributed(&mut self.checker, |c| c.check_pose(pose));
        CduResponse {
            colliding,
            latency: 1,
            ops: work.to_ops(),
        }
    }
}

/// Replays the workload's CD batches through the software oracle with
/// full op attribution (the f32 side of the pJ/CD-check comparison).
fn software_replay(workload: &BenchWorkload, max_batches: usize) -> SasAggregate {
    let mut agg = SasAggregate::default();
    let limit = if max_batches == 0 {
        workload.batches.len()
    } else {
        max_batches.min(workload.batches.len())
    };
    for batch in &workload.batches[..limit] {
        let mut model = MeasuredSoftwareCdu {
            checker: SoftwareChecker::new(
                workload.robot.clone(),
                workload.octree_ref(batch.scene).clone(),
            ),
        };
        let r = run_sas(
            &batch.motions,
            batch.mode,
            &SasConfig::sequential(),
            &mut model,
        );
        agg.cycles += r.cycles;
        agg.queries += r.queries;
        agg.mults += r.ops.mults;
        agg.ops += r.ops;
    }
    agg
}

/// All observatory measurements.
#[derive(Clone, Debug)]
pub struct ObservatoryData {
    /// Software-f32 oracle replay (full op attribution).
    pub software: SasAggregate,
    /// Cycle-level CECDU Q3.12 replay.
    pub cecdu: SasAggregate,
    /// Mean CD-datapath microjoules per planning attempt, ladder order.
    pub tier_uj: Vec<(QualityTier, f64)>,
    /// `(platform, best CD kernel ms, energy mJ)` for 2^20 queries.
    pub baseline_mj: Vec<(&'static str, f64, f64)>,
    /// MPAccel 16x4 multi-cycle: modeled ms for 2^20 queries.
    pub accel_ms: f64,
    /// MPAccel package power (W) behind [`ObservatoryData::accel_mj`].
    pub accel_power_w: f64,
    /// MPAccel package energy (mJ) for 2^20 queries.
    pub accel_mj: f64,
    /// Pure CECDU-datapath dynamic energy (mJ) for 2^20 queries.
    pub datapath_mj: f64,
}

/// Runs all measurements using the cached soak catalog.
pub fn data(scale: Scale) -> ObservatoryData {
    data_with_catalog(scale, &soak::catalog(scale))
}

/// Like [`data`], against a caller-supplied catalog (the determinism
/// test builds one per pool width through this path).
pub fn data_with_catalog(scale: Scale, catalog: &PlanCatalog) -> ObservatoryData {
    let w = BenchWorkload::cached(RobotModel::jaco2(), scale);
    let limit = replay_batches(scale);
    let software = software_replay(&w, limit);
    let cecdu = replay(
        &w,
        &SasConfig::sequential(),
        CduKind::Cecdu(CecduConfig::new(4, IuKind::MultiCycle)),
        limit,
    );

    let tier_uj = QualityTier::LADDER
        .iter()
        .map(|&t| (t, catalog.mean_energy_pj(t) / 1e6))
        .collect();

    // Per-query workload mix over the benchmark scenes (same averaging as
    // Table 3).
    let scenes: Vec<_> = benchmark_scenes().into_iter().take(4).collect();
    let samples = scale.cd_samples();
    let mut stats = WorkloadStats::default();
    for (i, s) in scenes.iter().enumerate() {
        let m = measure_workload(&s.octree(), samples / scenes.len(), i as u64);
        stats.avg_nodes += m.avg_nodes / scenes.len() as f64;
        stats.avg_tests += m.avg_tests / scenes.len() as f64;
        stats.avg_warp_union_nodes += m.avg_warp_union_nodes / scenes.len() as f64;
        stats.avg_warp_union_nodes_unsorted +=
            m.avg_warp_union_nodes_unsorted / scenes.len() as f64;
        stats.leaf_count += m.leaf_count / scenes.len() as f64;
        stats.collision_rate += m.collision_rate / scenes.len() as f64;
    }

    // Each platform gets its best kernel: energy = time × package power.
    let gpu_best = |m: &mp_baselines::gpu::GpuModel| {
        [
            GpuVariant::Basic,
            GpuVariant::Optimized,
            GpuVariant::LeafNodes,
        ]
        .iter()
        .map(|&v| gpu_cd_time_ms(m, v, &stats, QUERIES))
        .fold(f64::INFINITY, f64::min)
    };
    let cpu_best = |m: &mp_baselines::cpu::CpuModel| {
        [CpuVariant::Traversal, CpuVariant::LeafNodes]
            .iter()
            .map(|&v| cpu_cd_time_ms(m, v, &stats, QUERIES))
            .fold(f64::INFINITY, f64::min)
    };
    let baseline_mj = vec![
        (TITAN_V.name, gpu_best(&TITAN_V), TITAN_V.power_w),
        (JETSON_TX2.name, gpu_best(&JETSON_TX2), JETSON_TX2.power_w),
        (I7_4771.name, cpu_best(&I7_4771), I7_4771.power_w),
        (CORTEX_A57.name, cpu_best(&CORTEX_A57), CORTEX_A57.power_w),
    ]
    .into_iter()
    .map(|(name, ms, power_w)| (name, ms, ms * power_w))
    .collect();

    // MPAccel package energy: 16 CECDUs × 4 OOCDs on independent queries
    // (the Table 3 configuration), multi-cycle IUs.
    let iu = IuKind::MultiCycle;
    let cfg = OocdConfig::new(iu);
    let mut rng = StdRng::seed_from_u64(21);
    let mut cycles = 0u64;
    let mut n = 0u64;
    for s in &scenes {
        let tree = s.octree();
        for _ in 0..(samples / scenes.len()).max(64) {
            let obb = random_link_obb(&mut rng).quantize();
            cycles += run_oocd(&tree, &obb, &cfg).cycles;
            n += 1;
        }
    }
    let avg_cycles = cycles as f64 / n.max(1) as f64;
    let accel_ms = QUERIES as f64 * avg_cycles * iu.clock().period_ns() / 64.0 / 1e6;
    let accel_power_w = mp_sim::MpaccelConfig::new(16, CecduConfig::new(4, iu))
        .area_power()
        .power_w;
    let accel_mj = accel_ms * accel_power_w;
    let datapath_mj = cecdu.pj_per_query() * QUERIES as f64 / 1e9;

    ObservatoryData {
        software,
        cecdu,
        tier_uj,
        baseline_mj,
        accel_ms,
        accel_power_w,
        accel_mj,
        datapath_mj,
    }
}

/// Renders the observatory table.
pub fn render(d: &ObservatoryData) -> Report {
    let mut r = Report::new(
        "Energy observatory: pJ/CD-check, J/plan by quality tier, accelerator vs baselines",
    );
    r.note(format!(
        "op prices (45 nm, Horowitz ISSCC'14 calibration): mult {} pJ, add {} pJ, SRAM read {} pJ, big-SRAM read {} pJ, DRAM {} pJ/B, MLP MAC {} pJ, box-test overhead {} pJ",
        mp_sim::energy::MULT_PJ,
        mp_sim::energy::ADD_PJ,
        mp_sim::energy::SRAM_READ_PJ,
        mp_sim::energy::BIG_SRAM_READ_PJ,
        mp_sim::energy::DRAM_BYTE_PJ,
        mp_sim::energy::MLP_MAC_PJ,
        mp_sim::energy::TEST_OVERHEAD_PJ,
    ));
    r.columns(&["section", "item", "energy", "unit", "vs ref"]);
    let sw_pj = d.software.pj_per_query();
    let hw_pj = d.cecdu.pj_per_query();
    r.row(&[
        "cd-check".into(),
        "software-f32 oracle".into(),
        f2(sw_pj),
        "pJ/check".into(),
        times(1.0),
    ]);
    r.row(&[
        "cd-check".into(),
        "cecdu-q3.12".into(),
        f2(hw_pj),
        "pJ/check".into(),
        times(hw_pj / sw_pj.max(1e-12)),
    ]);
    let full_uj = d.tier_uj.first().map_or(0.0, |(_, uj)| *uj);
    for (tier, uj) in &d.tier_uj {
        r.row(&[
            "plan".into(),
            tier.label().into(),
            f3(*uj),
            "uJ/plan".into(),
            times(uj / full_uj.max(1e-12)),
        ]);
    }
    for (name, ms, mj) in &d.baseline_mj {
        r.row(&[
            "baseline-2^20".into(),
            (*name).into(),
            f2(*mj),
            "mJ".into(),
            times(mj / d.accel_mj.max(1e-12)),
        ]);
        let _ = ms;
    }
    r.row(&[
        "baseline-2^20".into(),
        format!("MPAccel 16x4 mc package ({} W)", f2(d.accel_power_w)),
        f2(d.accel_mj),
        "mJ".into(),
        times(1.0),
    ]);
    r.row(&[
        "baseline-2^20".into(),
        "MPAccel CECDU datapath (dynamic)".into(),
        f3(d.datapath_mj),
        "mJ".into(),
        times(d.datapath_mj / d.accel_mj.max(1e-12)),
    ]);
    r.note(
        "cd-check: SAS replay of the same CD batches through each chain; plan: soak-catalog mean CD-datapath energy per attempt; baseline-2^20: best kernel per platform, energy = modeled time x package power",
    );
    r.note(format!(
        "MPAccel package row: {} ms modeled for 2^20 queries at 64 OOCDs; datapath row excludes leakage/clock overhead (dynamic op energy only)",
        f2(d.accel_ms)
    ));
    r
}

/// Runs the observatory at a scale (cached catalog).
pub fn run(scale: Scale) -> Report {
    render(&data(scale))
}

/// Like [`run`], building the soak catalog on the given pool (uncached;
/// the determinism test compares pool widths through this).
pub fn run_with_pool(scale: Scale, pool: &ThreadPool) -> Report {
    render(&data_with_catalog(scale, &soak::build_catalog(scale, pool)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observatory_shape_holds() {
        let d = data(Scale::Quick);
        // Both chains dispatched the same batches and did real work.
        assert!(d.software.queries > 0 && d.cecdu.queries > 0);
        let sw = d.software.pj_per_query();
        let hw = d.cecdu.pj_per_query();
        assert!(sw > 0.0 && hw > 0.0, "sw {sw} hw {hw}");
        // The ladder saves energy: the coarsest tier is cheaper than full.
        let full = d.tier_uj.first().unwrap().1;
        let coarsest = d.tier_uj.last().unwrap().1;
        assert!(full > 0.0 && coarsest > 0.0);
        assert!(coarsest < full, "coarsest {coarsest} !< full {full}");
        // MPAccel wins on energy against every baseline's best kernel.
        assert!(d.accel_mj > 0.0);
        for (name, _, mj) in &d.baseline_mj {
            assert!(
                *mj > d.accel_mj,
                "{name} {mj} mJ !> accel {} mJ",
                d.accel_mj
            );
        }
        // Datapath dynamic energy is a fraction of package energy.
        assert!(d.datapath_mj > 0.0 && d.datapath_mj < d.accel_mj);
    }

    #[test]
    fn observatory_report_renders_all_sections() {
        let r = run(Scale::Quick).to_string();
        for needle in [
            "cd-check",
            "software-f32 oracle",
            "cecdu-q3.12",
            "uJ/plan",
            "baseline-2^20",
            "MPAccel CECDU datapath",
        ] {
            assert!(r.contains(needle), "report missing `{needle}`:\n{r}");
        }
    }
}
