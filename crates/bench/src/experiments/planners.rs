//! Planner comparison — the §1 context claim: "MPNet has shown 15× speedup
//! on CPU and 40 % improvement in the path quality compared to the
//! traditional sampling-based motion planning algorithms". We compare the
//! MPNet-style neural planner against RRT and RRT-Connect on collision-
//! detection work (the dominant cost) and path quality, and show that the
//! accelerator serves classical planners too (§6: "MPAccel can also be
//! used for other sampling-based motion planning algorithms").

use mp_collision::SoftwareChecker;
use mp_octree::benchmark_scenes;
use mp_planner::batch::{mpnet_stream, rrt_batch, rrt_connect_batch, BatchQuery};
use mp_planner::mpnet::MpnetConfig;
use mp_planner::queries::generate_queries;
use mp_planner::rrt::RrtConfig;
use mp_planner::sampler::OracleSampler;
use mp_robot::{JointConfig, RobotModel};

use crate::report::{f2, Report};
use crate::workloads::Scale;

/// Aggregate results of one planner over the query set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlannerStats {
    /// Queries attempted.
    pub attempted: u32,
    /// Queries solved.
    pub solved: u32,
    /// Mean CD pose queries per solved query.
    pub avg_cd_queries: f64,
    /// Mean C-space path length of solved queries.
    pub avg_path_length: f64,
}

fn path_length(path: &[JointConfig]) -> f32 {
    path.windows(2).map(|w| w[0].distance(&w[1])).sum()
}

/// Runs all three planners on the same query set.
pub fn data(scale: Scale) -> Vec<(&'static str, PlannerStats)> {
    let robot = RobotModel::jaco2();
    let scenes: Vec<_> = benchmark_scenes()
        .into_iter()
        .take(match scale {
            Scale::Quick => 3,
            Scale::Full => 10,
        })
        .collect();
    let queries_per_scene = match scale {
        Scale::Quick => 2,
        Scale::Full => 20,
    };

    let mut out = vec![
        ("MPNet-style", PlannerStats::default()),
        ("RRT", PlannerStats::default()),
        ("RRT-Connect", PlannerStats::default()),
    ];
    // Each planner runs its whole per-scene query block through the
    // cross-query batch engine: one shared checker per (scene, planner),
    // all edge validations streamed together. Per-query outcomes are
    // bit-identical to the old one-checker-per-query loop (see
    // `mp_planner::batch`), so the aggregates below are unchanged.
    for (si, scene) in scenes.iter().enumerate() {
        let tree = scene.octree();
        let queries: Vec<BatchQuery> =
            generate_queries(&robot, scene, queries_per_scene, 300 + si as u64)
                .expect("benchmark scenes yield valid queries")
                .into_iter()
                .enumerate()
                .map(|(qi, q)| BatchQuery {
                    start: q.start,
                    goal: q.goal,
                    seed: (si * 100 + qi) as u64,
                })
                .collect();
        // MPNet-style.
        {
            let s = &mut out[0].1;
            let mut checker = SoftwareChecker::new(robot.clone(), tree.clone());
            let mpnet_queries: Vec<_> = queries
                .iter()
                .map(|q| {
                    let cfg = MpnetConfig {
                        seed: q.seed,
                        ..MpnetConfig::default()
                    };
                    (q.start.clone(), q.goal.clone(), cfg)
                })
                .collect();
            let results = mpnet_stream(&mut checker, &mpnet_queries, |i| {
                OracleSampler::new(robot.clone(), queries[i].seed)
            });
            for r in results {
                s.attempted += 1;
                if let Some(p) = &r.outcome.path {
                    s.solved += 1;
                    s.avg_cd_queries += r.outcome.stats.cd_queries as f64;
                    s.avg_path_length += path_length(p) as f64;
                }
            }
        }
        // RRT.
        {
            let s = &mut out[1].1;
            let mut checker = SoftwareChecker::new(robot.clone(), tree.clone());
            for r in rrt_batch(&mut checker, &queries, &RrtConfig::default()) {
                s.attempted += 1;
                if let Some(p) = &r.outcome.path {
                    s.solved += 1;
                    s.avg_cd_queries += r.outcome.cd_queries as f64;
                    s.avg_path_length += path_length(p) as f64;
                }
            }
        }
        // RRT-Connect.
        {
            let s = &mut out[2].1;
            let mut checker = SoftwareChecker::new(robot.clone(), tree.clone());
            for r in rrt_connect_batch(&mut checker, &queries, &RrtConfig::default()) {
                s.attempted += 1;
                if let Some(p) = &r.outcome.path {
                    s.solved += 1;
                    s.avg_cd_queries += r.outcome.cd_queries as f64;
                    s.avg_path_length += path_length(p) as f64;
                }
            }
        }
    }
    for (_, s) in &mut out {
        if s.solved > 0 {
            s.avg_cd_queries /= s.solved as f64;
            s.avg_path_length /= s.solved as f64;
        }
    }
    out
}

/// Renders the comparison.
pub fn run(scale: Scale) -> Report {
    let d = data(scale);
    let mut r = Report::new("Planner comparison: neural (MPNet-style) vs classical sampling");
    r.note("paper (§1): MPNet ≈ 15x less CPU work and ~40% better paths than traditional sampling");
    r.columns(&[
        "planner",
        "solved",
        "avg CD queries",
        "avg path length (rad)",
    ]);
    for (name, s) in &d {
        r.row(&[
            name.to_string(),
            format!("{}/{}", s.solved, s.attempted),
            f2(s.avg_cd_queries),
            f2(s.avg_path_length),
        ]);
    }
    let neural = d[0].1;
    let classical = d[1].1;
    if neural.solved > 0 && classical.solved > 0 {
        r.note(format!(
            "measured: neural needs {:.1}x fewer CD queries and produces {:.0}% shorter paths than RRT",
            classical.avg_cd_queries / neural.avg_cd_queries.max(1.0),
            (1.0 - neural.avg_path_length / classical.avg_path_length) * 100.0
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neural_planner_is_more_work_efficient_than_rrt() {
        let d = data(Scale::Quick);
        let neural = d[0].1;
        let rrt_s = d[1].1;
        assert!(neural.solved >= 1, "neural solved nothing");
        if rrt_s.solved >= 1 {
            // The §1 claim's direction: fewer CD queries. (The paper's 15x
            // is on harder, full-scale query sets; quick-scale queries are
            // easy enough that goal-biased RRT closes part of the gap.)
            assert!(
                neural.avg_cd_queries * 1.2 < rrt_s.avg_cd_queries,
                "neural {} vs RRT {}",
                neural.avg_cd_queries,
                rrt_s.avg_cd_queries
            );
            // And shorter (or at least not much longer) paths.
            assert!(neural.avg_path_length <= rrt_s.avg_path_length * 1.1);
        }
    }

    #[test]
    fn report_lists_three_planners() {
        assert_eq!(run(Scale::Quick).rows().len(), 3);
    }
}
