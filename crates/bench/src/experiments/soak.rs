//! Chaos/soak campaign for the planning service (robustness study; not a
//! paper figure). Sweeps offered load × fault rate × serving policy over
//! the deterministic simulated-time service of `mp-service`, reporting
//! goodput, deadline-miss rate, modeled latency percentiles, shed/retry/
//! quarantine counts, and the quality-tier mix.
//!
//! The campaign is the overload argument of the PR in one table: at twice
//! the saturating load, a policy with admission control, EDF scheduling,
//! and graceful degradation must beat the naive unbounded-FIFO baseline on
//! *both* goodput and miss rate (the in-module test enforces this, and the
//! committed `results/` artifacts demonstrate it).
//!
//! Determinism: the plan catalog build fans out over a thread pool but is
//! collected in scene order, and each service run is a single-threaded
//! discrete-event simulation, so the rendered report is byte-identical at
//! any thread count (see `tests/determinism.rs`).

use std::sync::Arc;

use mp_octree::{benchmark_scenes, Scene};
use mp_planner::QualityTier;
use mp_robot::RobotModel;
use mp_service::{
    run_service, run_service_traced, DegradeConfig, FaultProfile, PlanCatalog, QueuePolicy,
    ServiceConfig, ServiceSummary, TenantSpec,
};
use mp_sim::arrival::{ArrivalKind, ArrivalProcess};
use mp_sim::vtime::VirtualNs;
use mp_telemetry::TelemetrySession;
use mpaccel_core::mpaccel::{MpAccelSystem, SystemConfig};
use threadpool::ThreadPool;

use crate::report::{f3, Report};
use crate::workloads::{BenchWorkload, Scale};

/// Offered-load multipliers, relative to the pool's full-quality
/// saturating rate.
pub const LOADS: [f64; 3] = [0.5, 1.0, 2.0];

/// Per-kind fault rates swept (0 is the fault-free baseline; the nonzero
/// rate includes a 10× "lemon" instance to exercise the circuit breaker).
pub const FAULT_RATES: [f64; 2] = [0.0, 0.01];

/// Simulated MPAccel instances in the pool.
pub const INSTANCES: usize = 4;

/// The serving-policy presets compared at every sweep point, from the
/// naive baseline to the fully defended configuration.
pub fn policies() -> [(&'static str, ServiceConfig); 4] {
    let base = ServiceConfig::default();
    [
        (
            "naive-fifo",
            ServiceConfig {
                policy: QueuePolicy::Fifo,
                admission: false,
                degrade: DegradeConfig::off(),
                ..base
            },
        ),
        (
            "fifo-shed",
            ServiceConfig {
                policy: QueuePolicy::Fifo,
                degrade: DegradeConfig::off(),
                ..base
            },
        ),
        (
            "edf-shed",
            ServiceConfig {
                degrade: DegradeConfig::off(),
                ..base
            },
        ),
        ("edf-degrade", base),
    ]
}

fn catalog_shape(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Quick => (2, 2),
        Scale::Full => (4, 3),
    }
}

fn duration_ns(scale: Scale) -> VirtualNs {
    match scale {
        Scale::Quick => 50_000_000, // 50 ms simulated
        Scale::Full => 200_000_000, // 200 ms simulated
    }
}

/// Builds the soak plan catalog for a scale on the given pool (uncached;
/// identical for any pool width — scenes are collected in order).
///
/// # Panics
///
/// Panics if the benchmark scenes cannot yield valid queries.
pub fn build_catalog(scale: Scale, pool: &ThreadPool) -> PlanCatalog {
    let (scenes, queries) = catalog_shape(scale);
    let scenes: Vec<Scene> = benchmark_scenes().into_iter().take(scenes).collect();
    PlanCatalog::build(&RobotModel::jaco2(), &scenes, queries, 11, pool)
        .expect("benchmark scenes yield valid soak catalogs")
}

/// The cached per-scale soak catalog (built at most once per process on a
/// `MPACCEL_THREADS`-sized pool).
pub fn catalog(scale: Scale) -> Arc<PlanCatalog> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type Slot = Arc<OnceLock<Arc<PlanCatalog>>>;
    static CACHE: OnceLock<Mutex<HashMap<Scale, Slot>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let slot = Arc::clone(
        cache
            .lock()
            .expect("soak catalog cache poisoned")
            .entry(scale)
            .or_default(),
    );
    Arc::clone(slot.get_or_init(|| Arc::new(build_catalog(scale, &ThreadPool::from_env()))))
}

/// The soak tenant mix: 70% interactive Poisson traffic with a tight
/// deadline, 30% bursty traffic with a looser one.
pub fn tenants(catalog: &PlanCatalog, rate_per_s: f64) -> Vec<TenantSpec> {
    let deadline_us = (4.0 * catalog.mean_service_us(QualityTier::Full)) as u64;
    vec![
        TenantSpec {
            label: "interactive",
            process: ArrivalProcess {
                kind: ArrivalKind::Poisson,
                rate_per_s: rate_per_s * 0.7,
                seed: 101,
            },
            deadline_us,
        },
        TenantSpec {
            label: "bursty",
            process: ArrivalProcess {
                kind: ArrivalKind::Bursty {
                    burst_factor: 5.0,
                    period_us: 5_000,
                    duty: 0.2,
                },
                rate_per_s: rate_per_s * 0.3,
                seed: 202,
            },
            deadline_us: deadline_us * 2,
        },
    ]
}

/// One sweep point of the campaign.
#[derive(Clone, Debug)]
pub struct SoakPoint {
    /// Offered load as a multiple of the saturating rate.
    pub load: f64,
    /// Per-kind fault rate in force.
    pub fault_rate: f64,
    /// Serving-policy label.
    pub policy: &'static str,
    /// The run's aggregate outcome.
    pub summary: ServiceSummary,
}

fn sweep(catalog: &PlanCatalog, scale: Scale) -> Vec<SoakPoint> {
    let sat = catalog.saturating_rate_per_s(INSTANCES);
    let mut points = Vec::new();
    for (li, &load) in LOADS.iter().enumerate() {
        for (fi, &fault_rate) in FAULT_RATES.iter().enumerate() {
            for (pi, (policy, cfg)) in policies().into_iter().enumerate() {
                let cfg = ServiceConfig {
                    instances: INSTANCES,
                    faults: if fault_rate > 0.0 {
                        FaultProfile::with_lemon(fault_rate, 0, 10.0)
                    } else {
                        FaultProfile::none()
                    },
                    seed: ((li as u64) << 16) ^ ((fi as u64) << 8) ^ pi as u64,
                    ..cfg
                };
                let summary = run_service(
                    catalog,
                    &tenants(catalog, load * sat),
                    duration_ns(scale),
                    &cfg,
                );
                points.push(SoakPoint {
                    load,
                    fault_rate,
                    policy,
                    summary,
                });
            }
        }
    }
    points
}

/// Runs the campaign against the cached per-scale catalog.
pub fn data(scale: Scale) -> Vec<SoakPoint> {
    sweep(&catalog(scale), scale)
}

fn render(points: &[SoakPoint], catalog: &PlanCatalog) -> Report {
    let mut r = Report::new("Soak campaign: load x fault-rate x policy sweep");
    r.note(format!(
        "pool of {} instances; saturating rate {:.0} req/s at full quality",
        INSTANCES,
        catalog.saturating_rate_per_s(INSTANCES)
    ));
    r.note("goodput = on-time completions per second; miss = 1 - on_time/offered");
    r.note("tiers = completions at full/reduced/fallback-rrt/coarse-rrt quality");
    r.columns(&[
        "load", "faults", "policy", "offered", "goodput", "miss", "p50us", "p99us", "p999us",
        "shed", "retries", "quar", "tiers",
    ]);
    for p in points {
        let s = &p.summary;
        r.row(&[
            format!("{:.1}x", p.load),
            format!("{:.0e}", p.fault_rate),
            p.policy.to_string(),
            s.offered.to_string(),
            format!("{:.0}", s.goodput_rps()),
            f3(s.miss_rate()),
            format!("{:.1}", s.p50_us()),
            format!("{:.1}", s.p99_us()),
            format!("{:.1}", s.p999_us()),
            s.shed().to_string(),
            s.retries.to_string(),
            s.quarantines.to_string(),
            s.tier_mix(),
        ]);
    }
    r
}

/// Runs the campaign and renders the report (cached catalog).
pub fn run(scale: Scale) -> Report {
    let catalog = catalog(scale);
    render(&sweep(&catalog, scale), &catalog)
}

/// Like [`run`], but builds the catalog on the given pool, uncached — the
/// thread-invariance regression test compares widths 1 and 8 through this
/// entry point.
pub fn run_with_pool(scale: Scale, pool: &ThreadPool) -> Report {
    let catalog = build_catalog(scale, pool);
    render(&sweep(&catalog, scale), &catalog)
}

/// Captures one fully-instrumented soak run into a telemetry session:
///
/// 1. the catalog build (planner + collision spans, one `("catalog", i)`
///    stream per scene),
/// 2. an overloaded *and* faulted service run at 2× the saturating rate
///    under the defended policy (`("service", 0)` stream — deadline
///    misses, sheds, and quarantines all leave flight-recorder
///    incidents),
/// 3. a trace replay of two catalog workload queries through the full
///    [`MpAccelSystem`] hardware model (`("accel", i)` streams — SAS
///    batch / CDU-lane / OOCD spans).
///
/// Returns the session plus the service run's summary. The capture is
/// deterministic: streams are labelled, the service loop is
/// single-threaded, and the replay runs on the calling thread, so the
/// exported Chrome trace is byte-identical at any pool width.
pub fn capture_trace(scale: Scale, pool: &ThreadPool) -> (TelemetrySession, ServiceSummary) {
    let session = TelemetrySession::new();
    let (scenes, queries) = catalog_shape(scale);
    let scenes: Vec<Scene> = benchmark_scenes().into_iter().take(scenes).collect();
    let robot = RobotModel::jaco2();
    let catalog = PlanCatalog::build_traced(&robot, &scenes, queries, 11, pool, &session)
        .expect("benchmark scenes yield valid soak catalogs");

    let sat = catalog.saturating_rate_per_s(INSTANCES);
    let cfg = ServiceConfig {
        instances: INSTANCES,
        faults: FaultProfile::with_lemon(FAULT_RATES[1], 0, 10.0),
        seed: 7,
        ..ServiceConfig::default()
    };
    let summary = run_service_traced(
        &catalog,
        &tenants(&catalog, 2.0 * sat),
        duration_ns(scale),
        &cfg,
        &session,
        0,
    );

    let w = BenchWorkload::cached(robot.clone(), scale);
    for (i, (si, trace)) in w.traces.iter().take(2).enumerate() {
        let _stream = session.install("accel", i as u32);
        let sys = MpAccelSystem::new(robot.clone(), w.octree(*si), SystemConfig::paper_default());
        std::hint::black_box(sys.run_trace(trace));
    }
    (session, summary)
}

/// Builds the unified metrics registry for a captured run: the service
/// summary (counters, gauges, exact-percentile latency histogram) plus
/// the process-wide collision counters.
pub fn metrics_registry(summary: &ServiceSummary) -> mp_telemetry::Registry {
    let reg = mp_telemetry::Registry::new();
    summary.export_into("service", &reg);
    mp_collision::metrics::export_into(&reg);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point<'a>(d: &'a [SoakPoint], load: f64, rate: f64, policy: &str) -> &'a SoakPoint {
        d.iter()
            .find(|p| p.load == load && p.fault_rate == rate && p.policy == policy)
            .expect("sweep point exists")
    }

    #[test]
    fn degradation_beats_naive_at_double_load_with_faults() {
        let d = data(Scale::Quick);
        for &rate in &FAULT_RATES {
            let naive = point(&d, 2.0, rate, "naive-fifo");
            let defended = point(&d, 2.0, rate, "edf-degrade");
            assert!(
                defended.summary.goodput_rps() > naive.summary.goodput_rps(),
                "at rate {rate}: defended goodput {:.0} <= naive {:.0}",
                defended.summary.goodput_rps(),
                naive.summary.goodput_rps()
            );
            assert!(
                defended.summary.miss_rate() < naive.summary.miss_rate(),
                "at rate {rate}: defended miss {:.3} >= naive {:.3}",
                defended.summary.miss_rate(),
                naive.summary.miss_rate()
            );
        }
    }

    #[test]
    fn faults_exercise_retries_and_the_breaker() {
        let d = data(Scale::Quick);
        let p = point(&d, 1.0, FAULT_RATES[1], "edf-degrade");
        assert!(p.summary.retries > 0, "faults must trigger retries");
        assert!(p.summary.quarantines > 0, "the lemon must trip the breaker");
        let clean = point(&d, 1.0, 0.0, "edf-degrade");
        assert_eq!(clean.summary.retries, 0);
        assert_eq!(clean.summary.resilience.injected_total(), 0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = format!("{:?}", data(Scale::Quick));
        let b = format!("{:?}", data(Scale::Quick));
        assert_eq!(a, b);
    }

    #[test]
    fn report_covers_the_whole_sweep() {
        let text = run(Scale::Quick).to_string();
        for (label, _) in policies() {
            assert!(text.contains(label), "missing policy {label}");
        }
        assert!(text.contains("0.5x") && text.contains("2.0x"));
        assert!(text.contains("1e-2") || text.contains("1e-02"));
    }
}
