//! §7.2.2's CODAcc comparison: voxelized OBB–voxelized-environment
//! collision detection (the RACOD/CODAcc approach) versus the OOCD's
//! octree + separating-axis design.
//!
//! Paper: "for voxels of size 2.56 cm (environment's extent is 180 cm),
//! the voxelized environment requires 32 KB storage and 30–154 memory
//! accesses. In contrast, OOCD uses an octree-based compact environment
//! representation and performs collision detection between
//! OBB-environment in < 40 cycles with 0.75 KB on-chip SRAM."

use mp_octree::{benchmark_scenes, VoxelGrid};
use mp_sim::IuKind;
use mpaccel_core::oocd::{run_oocd, OocdConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{f2, Report};
use crate::workloads::Scale;

/// Measurements of both designs over the same query population.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CodaccData {
    /// Voxel grid resolution (per dimension).
    pub resolution: usize,
    /// Voxelized environment storage (bytes).
    pub voxel_storage: usize,
    /// Mean memory accesses per query for the CODAcc-style unit
    /// (one read per voxel the OBB rasterizes to).
    pub voxel_accesses_avg: f64,
    /// Max memory accesses observed.
    pub voxel_accesses_max: f64,
    /// Octree storage (bytes).
    pub octree_storage: usize,
    /// Mean OOCD cycles per query.
    pub oocd_cycles_avg: f64,
    /// Agreement rate between the two designs' verdicts.
    pub agreement: f64,
}

/// Runs both designs on random link OBBs over the benchmark scenes.
pub fn data(scale: Scale) -> CodaccData {
    let resolution = 64; // 2.56 cm voxels on a 180 cm extent ≈ 64³ after padding
    let scenes: Vec<_> = benchmark_scenes().into_iter().take(3).collect();
    let queries = (scale.cd_samples() / 3).max(50);
    let mut rng = StdRng::seed_from_u64(11);
    let mut d = CodaccData {
        resolution,
        ..CodaccData::default()
    };
    let mut total_queries = 0u64;
    let mut agreements = 0u64;
    let cfg = OocdConfig::new(IuKind::MultiCycle);
    for scene in &scenes {
        let grid: VoxelGrid = scene.voxel_grid(resolution);
        let tree = scene.octree();
        d.voxel_storage = grid.storage_bytes();
        d.octree_storage = d.octree_storage.max(tree.storage_bytes());
        for _ in 0..queries {
            let obb = mp_baselines::workload::random_link_obb(&mut rng);
            // CODAcc: rasterize the OBB, one memory access per voxel, OR
            // the occupancy bits.
            let voxels = grid.rasterize_obb(&obb);
            let voxel_hit = voxels.iter().any(|&(x, y, z)| grid.get(x, y, z));
            d.voxel_accesses_avg += voxels.len() as f64;
            d.voxel_accesses_max = d.voxel_accesses_max.max(voxels.len() as f64);
            // OOCD.
            let oocd = run_oocd(&tree, &obb.quantize(), &cfg);
            d.oocd_cycles_avg += oocd.cycles as f64;
            total_queries += 1;
            if voxel_hit == oocd.colliding {
                agreements += 1;
            }
        }
    }
    d.voxel_accesses_avg /= total_queries as f64;
    d.oocd_cycles_avg /= total_queries as f64;
    d.agreement = agreements as f64 / total_queries as f64;
    d
}

/// Renders the comparison.
pub fn run(scale: Scale) -> Report {
    let d = data(scale);
    let mut r = Report::new("§7.2.2: CODAcc-style voxelized CD vs the OOCD design");
    r.columns(&["design", "storage", "work per query"]);
    r.row(&[
        format!("voxelized ({res}^3)", res = d.resolution),
        format!("{} KB", d.voxel_storage / 1024),
        format!(
            "{}–{} memory accesses (avg {})",
            0,
            d.voxel_accesses_max,
            f2(d.voxel_accesses_avg)
        ),
    ]);
    r.row(&[
        "OOCD (octree + SAT)".into(),
        format!("{} B", d.octree_storage),
        format!("{} cycles avg", f2(d.oocd_cycles_avg)),
    ]);
    r.note(format!(
        "paper: 32 KB + 30–154 accesses vs < 40 cycles + 0.75 KB; verdict agreement between designs: {:.1}%",
        d.agreement * 100.0
    ));
    r.note("voxelization also loses precision: both designs over-approximate, but the voxel grid by a whole voxel per surface");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_gap_matches_paper() {
        let d = data(Scale::Quick);
        // 64^3 bits = 32 KB, exactly the paper's voxel figure.
        assert_eq!(d.voxel_storage, 32 * 1024);
        // Octree fits the 0.75 KB SRAM budget.
        assert!(d.octree_storage <= 768, "octree {} B", d.octree_storage);
        // > 40x storage advantage.
        assert!(d.voxel_storage as f64 / d.octree_storage as f64 > 40.0);
    }

    #[test]
    fn work_shape_matches_paper() {
        let d = data(Scale::Quick);
        // OOCD stays under ~40 cycles on average.
        assert!(d.oocd_cycles_avg < 45.0, "OOCD avg {}", d.oocd_cycles_avg);
        // The voxel design needs many more memory accesses than the OOCD
        // needs cycles (paper band: 30–154 accesses).
        assert!(d.voxel_accesses_avg > d.oocd_cycles_avg);
        assert!(d.voxel_accesses_max >= 100.0);
        // The two designs agree on the vast majority of verdicts.
        assert!(d.agreement > 0.9, "agreement {}", d.agreement);
    }
}
