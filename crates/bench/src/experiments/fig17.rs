//! Fig 17 + §7.2.1: sequential vs parallel collision detection and the
//! effect of the cascade's sphere filters, over the real OBB–AABB test
//! population.

use mp_geometry::cascade::{cascaded_obb_aabb, CascadeConfig};
use mp_geometry::sat::sat_first_separating;
use mp_robot::RobotModel;

use crate::report::{f2, Report};
use crate::workloads::{collect_test_pairs, BenchWorkload, Scale};

/// Aggregate cost of one execution strategy over the population.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StrategyCost {
    /// Total cycles.
    pub cycles: u64,
    /// Total multiplications.
    pub mults: u64,
}

/// All strategies measured for Fig 17 (in display order).
#[derive(Clone, Debug, Default)]
pub struct Fig17Data {
    /// One axis per cycle, early exit, no filters.
    pub sequential: StrategyCost,
    /// Staged 6-5-4 SAT, 2 cycles/stage (multi-cycle unit), no filters.
    pub parallel_mc: StrategyCost,
    /// Staged SAT on the pipelined unit (initiation interval 1), no
    /// filters.
    pub parallel_pipelined: StrategyCost,
    /// Multi-cycle cascade with only the bounding-sphere filter.
    pub bounding_only: StrategyCost,
    /// The proposed cascade (both filters), multi-cycle.
    pub proposed: StrategyCost,
    /// Tests in the population.
    pub tests: u64,
}

/// Measures the strategies over the traversal-generated test population.
pub fn data(scale: Scale) -> Fig17Data {
    let w = BenchWorkload::cached(RobotModel::jaco2(), Scale::Quick);
    let mut d = Fig17Data::default();
    let per_scene = scale.cd_samples() / w.scenes.len();
    for (si, scene) in w.scenes.iter().enumerate() {
        let tree = scene.octree();
        for (obb, aabb) in collect_test_pairs(&tree, per_scene, 77 + si as u64) {
            let (fo, fa) = (obb.quantize(), aabb.quantize());
            d.tests += 1;

            let seq = sat_first_separating(&fo, &fa);
            d.sequential.cycles += seq.axes_tested as u64;
            d.sequential.mults += seq.mults as u64;

            let nof = cascaded_obb_aabb(&fo, &fa, &CascadeConfig::without_filters());
            d.parallel_mc.cycles += 2 * nof.stages_executed as u64;
            d.parallel_mc.mults += nof.mults as u64;
            d.parallel_pipelined.cycles += 1; // II = 1
            d.parallel_pipelined.mults += nof.mults as u64;

            let bo = cascaded_obb_aabb(&fo, &fa, &CascadeConfig::bounding_only());
            d.bounding_only.cycles += cascade_mc_cycles(bo.stages_executed, true);
            d.bounding_only.mults += bo.mults as u64;

            let prop = cascaded_obb_aabb(&fo, &fa, &CascadeConfig::proposed());
            d.proposed.cycles += cascade_mc_cycles(prop.stages_executed, true);
            d.proposed.mults += prop.mults as u64;
        }
    }
    d
}

/// Multi-cycle cascade cycle count: 1 cycle for the sphere stage (when
/// present) + 2 per executed SAT stage.
fn cascade_mc_cycles(stages_executed: u32, sphere_stage: bool) -> u64 {
    if sphere_stage {
        let sat_stages = stages_executed.saturating_sub(1);
        (1 + 2 * sat_stages) as u64
    } else {
        (2 * stages_executed) as u64
    }
}

/// Renders Fig 17 with the §7.2.1 headline ratios.
pub fn run(scale: Scale) -> Report {
    let d = data(scale);
    let base = d.sequential;
    let mut r = Report::new("Figure 17 / §7.2.1: sequential vs parallel collision detection");
    r.columns(&[
        "strategy",
        "speedup vs sequential",
        "computation vs sequential",
    ]);
    let mut add = |name: &str, c: StrategyCost| {
        let speedup = base.cycles as f64 / c.cycles.max(1) as f64;
        let comp = c.mults as f64 / base.mults.max(1) as f64;
        r.row(&[name.to_string(), f2(speedup), f2(comp)]);
        (speedup, comp)
    };
    add("sequential SAT (baseline)", d.sequential);
    let (s_mc, c_mc) = add("parallel SAT, multi-cycle, no filters", d.parallel_mc);
    let (s_p, _) = add("parallel SAT, pipelined, no filters", d.parallel_pipelined);
    add("+ bounding-sphere filter (mc)", d.bounding_only);
    let (s_prop, c_prop) = add("+ both filters — proposed (mc)", d.proposed);
    r.note(format!(
        "paper: parallel-no-filters = +46% computation, 2.52x (mc) / 1.77x (p, per-unit) speedup; measured: {:+.0}% computation, {:.2}x / {:.2}x",
        (c_mc - 1.0) * 100.0,
        s_mc,
        s_p / s_mc.max(1e-9), // pipelined gain relative to mc staging
    ));
    r.note(format!(
        "paper: both filters ≈ 4.1x speedup with 61% computation savings vs sequential; measured: {:.2}x speedup, {:.0}% savings",
        s_prop,
        (1.0 - c_prop) * 100.0,
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_721_shapes() {
        let d = data(Scale::Quick);
        let base = d.sequential;
        // Parallel (staged, no filters) is faster but costs more mults.
        assert!(d.parallel_mc.cycles < base.cycles);
        let comp = d.parallel_mc.mults as f64 / base.mults as f64;
        assert!((1.1..=2.2).contains(&comp), "computation overhead {comp}");
        // The bounding-sphere filter claws back most of the overhead
        // (paper: +1.3% vs sequential).
        let bo = d.bounding_only.mults as f64 / base.mults as f64;
        assert!(bo < comp, "bounding filter should reduce mults");
        // The proposed cascade *saves* computation vs sequential
        // (paper: 61% savings) and is much faster (paper: ~4.1x).
        let prop_comp = d.proposed.mults as f64 / base.mults as f64;
        assert!(prop_comp < 0.85, "proposed computation {prop_comp}");
        let speedup = base.cycles as f64 / d.proposed.cycles as f64;
        assert!(speedup > 2.0, "proposed speedup {speedup}");
        // Inscribed filter helps colliding cases beyond bounding-only.
        assert!(d.proposed.mults <= d.bounding_only.mults);
    }

    #[test]
    fn report_has_five_strategies() {
        assert_eq!(run(Scale::Quick).rows().len(), 5);
    }
}
