//! Shared machinery: replaying CD batches through SAS under different
//! scheduler configurations and CDU models.

use mp_collision::SoftwareChecker;
use mp_sim::CecduConfig;
use mpaccel_core::cecdu::CecduSim;
use mpaccel_core::sas::{run_sas, CduModel, CecduCdu, IdealCdu, SasConfig};

use crate::workloads::BenchWorkload;

/// Which collision-detection unit backs the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CduKind {
    /// Idealized 1-cycle CDU over the software oracle (§3 limit study).
    Ideal,
    /// Full cycle-level CECDU model.
    Cecdu(CecduConfig),
}

/// Aggregate result of replaying a workload's batches through SAS.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SasAggregate {
    /// Total scheduler cycles across all batches.
    pub cycles: u64,
    /// Total CD queries dispatched (the paper's energy proxy, §7.1).
    pub queries: u64,
    /// Total multiplications (fine-grained energy proxy).
    pub mults: u64,
}

impl SasAggregate {
    /// Speedup of this run versus a baseline (cycles ratio).
    pub fn speedup_vs(&self, baseline: &SasAggregate) -> f64 {
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Energy (CD-test count) normalized to a baseline.
    pub fn energy_vs(&self, baseline: &SasAggregate) -> f64 {
        self.queries as f64 / baseline.queries.max(1) as f64
    }
}

/// Replays every batch of the workload through SAS with the given
/// scheduler configuration and CDU kind, summing cycles and queries.
///
/// `max_batches` bounds the replay (0 = no bound) so quick-scale runs stay
/// fast; the same bound must be used for every configuration being
/// compared.
pub fn replay(
    workload: &BenchWorkload,
    sas: &SasConfig,
    cdu: CduKind,
    max_batches: usize,
) -> SasAggregate {
    replay_with_mode(workload, sas, cdu, max_batches, None)
}

/// Like [`replay`], optionally overriding every batch's function mode
/// (the §3 limit study uses Complete semantics to isolate scheduling
/// redundancy from function-mode early stops).
pub fn replay_with_mode(
    workload: &BenchWorkload,
    sas: &SasConfig,
    cdu: CduKind,
    max_batches: usize,
    mode_override: Option<mpaccel_core::sas::FunctionMode>,
) -> SasAggregate {
    let mut agg = SasAggregate::default();
    let limit = if max_batches == 0 {
        workload.batches.len()
    } else {
        max_batches.min(workload.batches.len())
    };
    for batch in &workload.batches[..limit] {
        let octree = workload.octree(batch.scene);
        let mode = mode_override.unwrap_or(batch.mode);
        let r = match cdu {
            CduKind::Ideal => {
                let checker = SoftwareChecker::new(workload.robot.clone(), octree);
                let mut model = IdealCdu::new(checker);
                run_sas(&batch.motions, mode, sas, &mut model)
            }
            CduKind::Cecdu(cfg) => {
                let sim = CecduSim::new(workload.robot.clone(), octree, cfg);
                let mut model = CecduCdu::new(sim);
                run_sas(&batch.motions, mode, sas, &mut model)
            }
        };
        agg.cycles += r.cycles;
        agg.queries += r.queries;
        agg.mults += r.ops.mults;
    }
    agg
}

/// Runs one batch through a CDU model (helper for Criterion micro benches).
pub fn run_one_batch(
    workload: &BenchWorkload,
    batch_index: usize,
    sas: &SasConfig,
    model: &mut impl CduModel,
) -> u64 {
    let b = &workload.batches[batch_index % workload.batches.len()];
    run_sas(&b.motions, b.mode, sas, model).cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Scale;
    use mp_robot::RobotModel;
    use mp_sim::IuKind;

    #[test]
    fn replay_aggregates_consistently() {
        let w = BenchWorkload::cached(RobotModel::jaco2(), Scale::Quick);
        let seq = replay(&w, &SasConfig::sequential(), CduKind::Ideal, 10);
        assert!(seq.cycles > 0 && seq.queries > 0);
        let np = replay(
            &w,
            &SasConfig::naive_parallel(8).idealized(),
            CduKind::Ideal,
            10,
        );
        assert!(np.speedup_vs(&seq) > 1.0);
        assert!(np.energy_vs(&seq) >= 1.0);
    }

    #[test]
    fn cecdu_replay_has_latency() {
        let w = BenchWorkload::cached(RobotModel::jaco2(), Scale::Quick);
        let hw = replay(
            &w,
            &SasConfig::sequential(),
            CduKind::Cecdu(CecduConfig::new(4, IuKind::MultiCycle)),
            4,
        );
        let ideal = replay(&w, &SasConfig::sequential(), CduKind::Ideal, 4);
        assert_eq!(hw.queries, ideal.queries); // same schedule, same work
        assert!(hw.cycles > ideal.cycles); // but real latency
        assert!(hw.mults > 0);
    }
}
