//! Shared machinery: replaying CD batches through SAS under different
//! scheduler configurations and CDU models.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use mp_collision::SoftwareChecker;
use mp_robot::JointConfig;
use mp_sim::{CecduConfig, OpCounter};
use mpaccel_core::cecdu::CecduSim;
use mpaccel_core::sas::{run_sas, CduModel, CduResponse, CecduCdu, IdealCdu, SasConfig};

use crate::workloads::BenchWorkload;

/// Which collision-detection unit backs the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CduKind {
    /// Idealized 1-cycle CDU over the software oracle (§3 limit study).
    Ideal,
    /// Full cycle-level CECDU model.
    Cecdu(CecduConfig),
}

/// Aggregate result of replaying a workload's batches through SAS.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SasAggregate {
    /// Total scheduler cycles across all batches.
    pub cycles: u64,
    /// Total CD queries dispatched (the paper's energy proxy, §7.1).
    pub queries: u64,
    /// Total multiplications (fine-grained energy proxy).
    pub mults: u64,
    /// Full per-class operation ledger across all batches (superset of
    /// `mults`; priced by [`SasAggregate::energy_pj`]).
    pub ops: OpCounter,
}

impl SasAggregate {
    /// Speedup of this run versus a baseline (cycles ratio).
    pub fn speedup_vs(&self, baseline: &SasAggregate) -> f64 {
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Energy (CD-test count) normalized to a baseline.
    pub fn energy_vs(&self, baseline: &SasAggregate) -> f64 {
        self.queries as f64 / baseline.queries.max(1) as f64
    }

    /// Absolute dynamic energy (pJ) of the replay, priced per op class.
    pub fn energy_pj(&self) -> f64 {
        mp_sim::energy::dynamic_energy_pj(&self.ops)
    }

    /// Mean dynamic energy (pJ) per dispatched CD query.
    pub fn pj_per_query(&self) -> f64 {
        self.energy_pj() / self.queries.max(1) as f64
    }
}

/// Memo key: scene index, DOF, and the pose's joint values as bits padded
/// to a fixed width, so lookups allocate nothing.
type PoseKey = (usize, u8, [u32; MAX_KEY_DOF]);

/// Widest robot the memo supports (Baxter has 7 joints).
const MAX_KEY_DOF: usize = 8;

fn pose_key(scene: usize, pose: &JointConfig) -> PoseKey {
    let joints = pose.as_slice();
    assert!(joints.len() <= MAX_KEY_DOF, "pose exceeds memo key width");
    let mut bits = [0u32; MAX_KEY_DOF];
    for (b, v) in bits.iter_mut().zip(joints) {
        *b = v.to_bits();
    }
    (scene, joints.len() as u8, bits)
}

/// FNV-1a over the key bytes. The keys are short fixed-size integer tuples
/// queried millions of times; FNV beats the default SipHash severalfold
/// there, and hash-flooding resistance is irrelevant for a benchmark memo.
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

/// Memoized per-pose CDU responses shared across replays of one workload.
///
/// The Fig 7/15/16 sweeps replay the *same* batches under dozens of
/// scheduler configurations; a CDU answers a pose query as a pure function
/// of `(scene, pose)` for a fixed CDU kind ([`CecduSim::check_pose`] takes
/// `&self`, and the ideal CDU's verdict/ops depend on the pose alone), so
/// the response is computed once per distinct pose and reused across every
/// configuration. Aggregates are bit-identical to the unmemoized replay —
/// the scheduler decides *which* poses are queried, the memo only skips
/// recomputing answers it has already produced.
pub struct ReplayMemo {
    cdu: CduKind,
    map: HashMap<PoseKey, CduResponse, BuildHasherDefault<FnvHasher>>,
}

impl ReplayMemo {
    /// Creates an empty memo for one CDU kind. Replays through this memo
    /// must use the same kind (different CDU configurations answer with
    /// different latencies/ops).
    pub fn new(cdu: CduKind) -> ReplayMemo {
        ReplayMemo {
            cdu,
            map: HashMap::default(),
        }
    }

    /// Distinct `(scene, pose)` queries answered so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no query has been answered yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A CDU wrapper that consults the memo before the wrapped model.
struct MemoCdu<'a, M> {
    inner: M,
    scene: usize,
    map: &'a mut HashMap<PoseKey, CduResponse, BuildHasherDefault<FnvHasher>>,
}

impl<M: CduModel> CduModel for MemoCdu<'_, M> {
    fn query(&mut self, pose: &JointConfig) -> CduResponse {
        let key = pose_key(self.scene, pose);
        if let Some(r) = self.map.get(&key) {
            return *r;
        }
        let r = self.inner.query(pose);
        self.map.insert(key, r);
        r
    }
}

/// Replays every batch of the workload through SAS with the given
/// scheduler configuration and CDU kind, summing cycles and queries.
///
/// `max_batches` bounds the replay (0 = no bound) so quick-scale runs stay
/// fast; the same bound must be used for every configuration being
/// compared.
pub fn replay(
    workload: &BenchWorkload,
    sas: &SasConfig,
    cdu: CduKind,
    max_batches: usize,
) -> SasAggregate {
    replay_inner(workload, sas, cdu, max_batches, None, None)
}

/// Like [`replay`], optionally overriding every batch's function mode
/// (the §3 limit study uses Complete semantics to isolate scheduling
/// redundancy from function-mode early stops).
pub fn replay_with_mode(
    workload: &BenchWorkload,
    sas: &SasConfig,
    cdu: CduKind,
    max_batches: usize,
    mode_override: Option<mpaccel_core::sas::FunctionMode>,
) -> SasAggregate {
    replay_inner(workload, sas, cdu, max_batches, mode_override, None)
}

/// Like [`replay_with_mode`], answering pose queries through a shared
/// [`ReplayMemo`] so configuration sweeps over the same batches pay for
/// each distinct pose only once.
///
/// # Panics
///
/// Panics if the memo was created for a different [`CduKind`].
pub fn replay_memo(
    workload: &BenchWorkload,
    sas: &SasConfig,
    cdu: CduKind,
    max_batches: usize,
    mode_override: Option<mpaccel_core::sas::FunctionMode>,
    memo: &mut ReplayMemo,
) -> SasAggregate {
    assert_eq!(memo.cdu, cdu, "memo was built for a different CDU kind");
    replay_inner(workload, sas, cdu, max_batches, mode_override, Some(memo))
}

fn replay_inner(
    workload: &BenchWorkload,
    sas: &SasConfig,
    cdu: CduKind,
    max_batches: usize,
    mode_override: Option<mpaccel_core::sas::FunctionMode>,
    mut memo: Option<&mut ReplayMemo>,
) -> SasAggregate {
    let mut agg = SasAggregate::default();
    let limit = if max_batches == 0 {
        workload.batches.len()
    } else {
        max_batches.min(workload.batches.len())
    };
    for batch in &workload.batches[..limit] {
        let mode = mode_override.unwrap_or(batch.mode);
        let r = match cdu {
            CduKind::Ideal => {
                let checker = SoftwareChecker::new(
                    workload.robot.clone(),
                    workload.octree_ref(batch.scene).clone(),
                );
                let model = IdealCdu::new(checker);
                match memo.as_deref_mut() {
                    Some(m) => {
                        let mut model = MemoCdu {
                            inner: model,
                            scene: batch.scene,
                            map: &mut m.map,
                        };
                        run_sas(&batch.motions, mode, sas, &mut model)
                    }
                    None => {
                        let mut model = model;
                        run_sas(&batch.motions, mode, sas, &mut model)
                    }
                }
            }
            CduKind::Cecdu(cfg) => {
                let sim = CecduSim::new(
                    workload.robot.clone(),
                    workload.octree_ref(batch.scene).clone(),
                    cfg,
                );
                let model = CecduCdu::new(sim);
                match memo.as_deref_mut() {
                    Some(m) => {
                        let mut model = MemoCdu {
                            inner: model,
                            scene: batch.scene,
                            map: &mut m.map,
                        };
                        run_sas(&batch.motions, mode, sas, &mut model)
                    }
                    None => {
                        let mut model = model;
                        run_sas(&batch.motions, mode, sas, &mut model)
                    }
                }
            }
        };
        agg.cycles += r.cycles;
        agg.queries += r.queries;
        agg.mults += r.ops.mults;
        agg.ops += r.ops;
    }
    agg
}

/// Runs one batch through a CDU model (helper for Criterion micro benches).
pub fn run_one_batch(
    workload: &BenchWorkload,
    batch_index: usize,
    sas: &SasConfig,
    model: &mut impl CduModel,
) -> u64 {
    let b = &workload.batches[batch_index % workload.batches.len()];
    run_sas(&b.motions, b.mode, sas, model).cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Scale;
    use mp_robot::RobotModel;
    use mp_sim::IuKind;

    #[test]
    fn replay_aggregates_consistently() {
        let w = BenchWorkload::cached(RobotModel::jaco2(), Scale::Quick);
        let seq = replay(&w, &SasConfig::sequential(), CduKind::Ideal, 10);
        assert!(seq.cycles > 0 && seq.queries > 0);
        let np = replay(
            &w,
            &SasConfig::naive_parallel(8).idealized(),
            CduKind::Ideal,
            10,
        );
        assert!(np.speedup_vs(&seq) > 1.0);
        assert!(np.energy_vs(&seq) >= 1.0);
    }

    #[test]
    fn memoized_replay_is_bit_identical() {
        let w = BenchWorkload::cached(RobotModel::jaco2(), Scale::Quick);
        let cdu = CduKind::Cecdu(CecduConfig::new(4, IuKind::MultiCycle));
        let mut memo = ReplayMemo::new(cdu);
        for cfg in [
            SasConfig::sequential(),
            SasConfig::mcsp(8),
            SasConfig::naive_parallel(4),
        ] {
            let plain = replay(&w, &cfg, cdu, 6);
            let memoized = replay_memo(&w, &cfg, cdu, 6, None, &mut memo);
            assert_eq!(plain, memoized, "memo must not change aggregates");
        }
        assert!(!memo.is_empty());
        assert!(memo.len() >= 6, "memo should hold many distinct poses");
    }

    #[test]
    #[should_panic(expected = "different CDU kind")]
    fn memo_rejects_mismatched_cdu_kind() {
        let w = BenchWorkload::cached(RobotModel::jaco2(), Scale::Quick);
        let mut memo = ReplayMemo::new(CduKind::Ideal);
        let cdu = CduKind::Cecdu(CecduConfig::new(4, IuKind::MultiCycle));
        let _ = replay_memo(&w, &SasConfig::sequential(), cdu, 1, None, &mut memo);
    }

    #[test]
    fn cecdu_replay_has_latency() {
        let w = BenchWorkload::cached(RobotModel::jaco2(), Scale::Quick);
        let hw = replay(
            &w,
            &SasConfig::sequential(),
            CduKind::Cecdu(CecduConfig::new(4, IuKind::MultiCycle)),
            4,
        );
        let ideal = replay(&w, &SasConfig::sequential(), CduKind::Ideal, 4);
        assert_eq!(hw.queries, ideal.queries); // same schedule, same work
        assert!(hw.cycles > ideal.cycles); // but real latency
        assert!(hw.mults > 0);
    }
}
