//! Fig 7: the §3 limit study — speedup and normalized CD-test count for
//! every scheduling policy at 1–64 CDUs, with an ideal scheduler (full
//! dispatch each cycle) and 1-cycle CDUs.

use mp_robot::RobotModel;
use mpaccel_core::sas::{IntraPolicy, SasConfig};

use crate::experiments::common::{replay_memo, CduKind, ReplayMemo, SasAggregate};
use crate::report::{f2, Report};
use crate::workloads::{BenchWorkload, Scale};
use mpaccel_core::sas::FunctionMode;

/// The CDU counts swept in Fig 7.
pub const CDU_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The eight policies of Fig 7, in legend order.
pub fn policies(n: usize) -> Vec<(&'static str, SasConfig)> {
    let brp = SasConfig {
        intra: IntraPolicy::BinaryRecursive,
        ..SasConfig::csp(n)
    };
    let rnd = SasConfig {
        intra: IntraPolicy::Random { seed: 11 },
        ..SasConfig::csp(n)
    };
    vec![
        ("NP", SasConfig::naive_parallel(n)),
        ("RND", rnd),
        ("BRP", brp),
        ("CSP", SasConfig::csp(n)),
        ("MS", SasConfig::ms(n)),
        (
            "MNP",
            SasConfig {
                intra: IntraPolicy::InOrder,
                ..SasConfig::mcsp(n)
            },
        ),
        (
            "MBRP",
            SasConfig {
                intra: IntraPolicy::BinaryRecursive,
                ..SasConfig::mcsp(n)
            },
        ),
        ("MCSP", SasConfig::mcsp(n)),
    ]
}

/// Raw data of one limit-study run.
#[derive(Clone, Debug)]
pub struct Fig07Data {
    /// Sequential baseline.
    pub sequential: SasAggregate,
    /// `(policy, cdus, aggregate)` triples.
    pub points: Vec<(&'static str, usize, SasAggregate)>,
}

/// Runs the limit study.
pub fn data(scale: Scale) -> Fig07Data {
    let mut w = (*BenchWorkload::cached(RobotModel::jaco2(), scale)).clone();
    // Redundant work only materializes when motions collide part-way:
    // prefer multi-motion batches that contain at least one colliding
    // motion (the MPNet workload's coarse proposals before replanning),
    // as in the paper's limit-study traces.
    w.batches.retain(|b| b.motions.len() >= 2);
    // Full scale caps the replay at a statistically ample batch count:
    // unbounded replay of ~30k batches x every configuration would take
    // hours without changing the aggregates.
    let max_batches = match scale {
        Scale::Quick => 24,
        Scale::Full => 400,
    };
    // Complete-mode semantics: the limit study measures scheduling
    // redundancy per motion, independent of function-mode early stops.
    // All 57 configurations replay the same batches, so pose verdicts are
    // shared through one memo (bit-identical aggregates, ~1 CD evaluation
    // per distinct pose instead of ~57).
    let mut memo = ReplayMemo::new(CduKind::Ideal);
    let sequential = replay_memo(
        &w,
        &SasConfig::sequential().idealized(),
        CduKind::Ideal,
        max_batches,
        Some(FunctionMode::Complete),
        &mut memo,
    );
    let mut points = Vec::new();
    for &n in &CDU_COUNTS {
        for (name, cfg) in policies(n) {
            let agg = replay_memo(
                &w,
                &cfg.idealized(),
                CduKind::Ideal,
                max_batches,
                Some(FunctionMode::Complete),
                &mut memo,
            );
            points.push((name, n, agg));
        }
    }
    Fig07Data { sequential, points }
}

/// Renders the two panels of Fig 7 (speedup, normalized #CD tests).
pub fn run(scale: Scale) -> Report {
    let d = data(scale);
    let mut r = Report::new(
        "Figure 7: limit study — scheduling policies vs number of CDUs (ideal scheduler, 1-cycle CDU)",
    );
    r.note("top value: speedup over sequential; bottom value (in parens): #CD tests normalized to sequential");
    let mut header = vec!["policy"];
    let labels: Vec<String> = CDU_COUNTS.iter().map(|n| format!("{n} CDUs")).collect();
    header.extend(labels.iter().map(String::as_str));
    r.columns(&header);
    for (name, _) in policies(1) {
        let mut cells = vec![name.to_string()];
        for &n in &CDU_COUNTS {
            let agg = d
                .points
                .iter()
                .find(|(p, c, _)| *p == name && *c == n)
                .map(|(_, _, a)| a)
                .expect("every point computed");
            cells.push(format!(
                "{} ({})",
                f2(agg.speedup_vs(&d.sequential)),
                f2(agg.energy_vs(&d.sequential))
            ));
        }
        r.row(&cells);
    }
    // §3 headline numbers.
    let np16 = d
        .points
        .iter()
        .find(|(p, c, _)| *p == "NP" && *c == 16)
        .unwrap();
    let mcsp16 = d
        .points
        .iter()
        .find(|(p, c, _)| *p == "MCSP" && *c == 16)
        .unwrap();
    r.note(format!(
        "paper (§3): 16x naive parallelization -> 2.4x tests; measured NP-16: {:.2}x tests, {:.2}x speedup",
        np16.2.energy_vs(&d.sequential),
        np16.2.speedup_vs(&d.sequential),
    ));
    r.note(format!(
        "paper (§3): MCSP-16 -> 13.5x speedup at +10.5% tests; measured: {:.2}x speedup at {:+.1}% tests",
        mcsp16.2.speedup_vs(&d.sequential),
        (mcsp16.2.energy_vs(&d.sequential) - 1.0) * 100.0,
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_study_shapes_match_paper() {
        let d = data(Scale::Quick);
        let get = |p: &str, n: usize| {
            d.points
                .iter()
                .find(|(q, c, _)| *q == p && *c == n)
                .map(|(_, _, a)| *a)
                .unwrap()
        };
        // 1 CDU: CSP is at least as fast as NP (coarse-first exploration
        // finds colliding poses sooner).
        assert!(get("CSP", 1).cycles <= get("NP", 1).cycles);
        // 16 CDUs: MCSP dominates NP on work efficiency.
        let np = get("NP", 16);
        let mcsp = get("MCSP", 16);
        assert!(mcsp.energy_vs(&d.sequential) < np.energy_vs(&d.sequential));
        // NP wastes work, and the waste grows with the parallelization
        // scale (paper: 2.4x @16; the magnitude depends on how early the
        // workload's colliding motions hit — see EXPERIMENTS.md — so we
        // assert the direction and monotonicity, not the constant).
        assert!(np.energy_vs(&d.sequential) > 1.04);
        assert!(
            get("NP", 64).energy_vs(&d.sequential) > np.energy_vs(&d.sequential),
            "NP waste must grow with CDUs"
        );
        // MCSP keeps the overhead moderate (paper: +10.5%; we allow <40%).
        assert!(mcsp.energy_vs(&d.sequential) < 1.4);
        // CSP beats in-order even sequentially (§3: "CSP results in faster
        // collision detection than the ordered selection of poses for
        // sequential evaluation").
        assert!(get("CSP", 1).cycles < d.sequential.cycles);
        // Speedup grows with CDUs for MCSP.
        assert!(
            get("MCSP", 16).speedup_vs(&d.sequential) > get("MCSP", 4).speedup_vs(&d.sequential)
        );
        // BRP and CSP behave similarly (within 25% on both axes).
        let brp = get("BRP", 16);
        let csp = get("CSP", 16);
        let ratio = brp.cycles as f64 / csp.cycles as f64;
        assert!(
            (0.75..=1.34).contains(&ratio),
            "BRP/CSP cycle ratio {ratio}"
        );
    }

    #[test]
    fn report_renders_all_policies() {
        let r = run(Scale::Quick);
        let text = r.to_string();
        for p in ["NP", "RND", "BRP", "CSP", "MS", "MNP", "MBRP", "MCSP"] {
            assert!(text.contains(p), "missing policy {p}");
        }
    }
}
