//! Fleet chaos soak: the sharded multi-tenant planning fleet under shard
//! kills and an adversarial tenant (robustness study; not a paper figure).
//!
//! Five scenarios over the same 16-shard fleet at 2× the fleet-saturating
//! load, all driven by the deterministic discrete-event engine:
//!
//! * `no-failure`    — defended fleet (failover + hedging + fairness),
//!   no chaos: the goodput reference.
//! * `chaos-defended` — same fleet with 2 of 16 shards crash-killed
//!   mid-run; failover re-routes, hedges cover the tail, the rejoining
//!   shards catch up under throttled admission.
//! * `chaos-undefended` — the same double kill with failover and hedging
//!   off: the ring keeps routing to the dead shards and their traffic is
//!   lost (the documented collapse).
//! * `adversary`     — defended fleet, no chaos, plus an adversarial
//!   tenant offering ~2× the fleet's capacity on its own; its token
//!   bucket and low WFQ weight confine the blast radius.
//! * `adversary-unfair` — the same adversary with per-tenant isolation
//!   off: the shared queue lets it starve everyone (the contrast row).
//!
//! The in-module tests pin the acceptance criteria: the defended fleet
//! sustains ≥ 70% of its no-failure goodput through the double kill, and
//! the adversary costs the steady tenants < 10% goodput when fairness is
//! on. Per-tenant and per-shard breakdowns ride along in the report (and
//! in the CSV via `--csv`) in deterministic order.

use mp_service::{FleetConfig, FleetSummary, HedgeConfig, PlanCatalog, TenantPolicy, TenantSpec};
use mp_sim::arrival::{ArrivalKind, ArrivalProcess};
use mp_sim::fault::{ShardFaultEvent, ShardFaultKind, ShardFaultPlan};
use mp_sim::vtime::VirtualNs;
use threadpool::ThreadPool;

use crate::experiments::soak;
use crate::report::{f3, Report};
use crate::workloads::Scale;

/// Shards in the fleet.
pub const SHARDS: usize = 16;

/// Simulated MPAccel instances per shard.
pub const INSTANCES_PER_SHARD: usize = 2;

/// Offered load relative to the fleet's full-quality saturating rate.
pub const LOAD: f64 = 2.0;

/// The two shards the chaos scenarios kill mid-run.
pub const KILLED: [usize; 2] = [3, 11];

/// Shard counts swept by the goodput-vs-shards scaling curve, at the
/// fixed offered load of the 16-shard reference fleet.
pub const SCALING_SHARDS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn duration_ns(scale: Scale) -> VirtualNs {
    match scale {
        Scale::Quick => 50_000_000, // 50 ms simulated
        Scale::Full => 200_000_000, // 200 ms simulated
    }
}

/// The defended fleet configuration (failover + hedging + fairness on).
pub fn fleet_config() -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        shard: mp_service::ServiceConfig {
            instances: INSTANCES_PER_SHARD,
            ..mp_service::ServiceConfig::default()
        },
        seed: 61,
        ..FleetConfig::default()
    }
}

/// The steady tenant mix (the soak tenants) plus, when `adversary` is
/// set, a third tenant bursting at ~2× the whole fleet's capacity.
pub fn tenants(catalog: &PlanCatalog, adversary: bool) -> Vec<TenantSpec> {
    let sat = catalog.saturating_rate_per_s(SHARDS * INSTANCES_PER_SHARD);
    let mut ts = soak::tenants(catalog, LOAD * sat);
    if adversary {
        let deadline_us = (4.0 * catalog.mean_service_us(mp_planner::QualityTier::Full)) as u64;
        ts.push(TenantSpec {
            label: "adversary",
            process: ArrivalProcess {
                kind: ArrivalKind::Bursty {
                    burst_factor: 10.0,
                    period_us: 2_000,
                    duty: 0.1,
                },
                rate_per_s: 2.0 * sat,
                seed: 999,
            },
            deadline_us,
        });
    }
    ts
}

/// Per-tenant isolation policies paired with [`tenants`]: the interactive
/// tenant gets the largest WFQ weight, and the adversary is confined by a
/// small weight plus a token bucket admitting ~4% of fleet capacity.
pub fn policies(catalog: &PlanCatalog, adversary: bool) -> Vec<TenantPolicy> {
    let sat = catalog.saturating_rate_per_s(SHARDS * INSTANCES_PER_SHARD);
    let mut ps = vec![
        TenantPolicy {
            weight: 4,
            ..TenantPolicy::default()
        },
        TenantPolicy {
            weight: 2,
            ..TenantPolicy::default()
        },
    ];
    if adversary {
        ps.push(TenantPolicy {
            weight: 1,
            bucket: Some((0.04 * sat, 8)),
            ..TenantPolicy::default()
        });
    }
    ps
}

/// The double-kill chaos plan: both [`KILLED`] shards crash at 1/4 of the
/// run and stay down for a quarter of it, then rejoin and catch up.
pub fn double_kill(scale: Scale) -> ShardFaultPlan {
    let d = duration_ns(scale);
    ShardFaultPlan::scripted(
        17,
        KILLED
            .iter()
            .map(|&shard| ShardFaultEvent {
                at_ns: d / 4,
                shard,
                kind: ShardFaultKind::Crash,
                duration_ns: d / 4,
                slow_factor: 1,
            })
            .collect(),
    )
}

/// One scenario's outcome.
#[derive(Clone, Debug)]
pub struct FleetPoint {
    /// Scenario label.
    pub scenario: &'static str,
    /// The run's full fleet summary.
    pub summary: FleetSummary,
}

/// The scenario labels in report order.
pub const SCENARIOS: [&str; 5] = [
    "no-failure",
    "chaos-defended",
    "chaos-undefended",
    "adversary",
    "adversary-unfair",
];

fn run_scenario(catalog: &PlanCatalog, scale: Scale, scenario: &'static str) -> FleetPoint {
    let defended = fleet_config();
    let none = ShardFaultPlan::none(defended.seed);
    let (cfg, adversary, chaos) = match scenario {
        "no-failure" => (defended, false, none),
        "chaos-defended" => (defended, false, double_kill(scale)),
        "chaos-undefended" => (
            FleetConfig {
                failover: mp_service::FailoverConfig {
                    enabled: false,
                    ..mp_service::FailoverConfig::default()
                },
                hedge: HedgeConfig {
                    enabled: false,
                    ..HedgeConfig::default()
                },
                ..defended
            },
            false,
            double_kill(scale),
        ),
        "adversary" => (defended, true, none),
        "adversary-unfair" => (
            FleetConfig {
                fairness: false,
                ..defended
            },
            true,
            none,
        ),
        other => unreachable!("unknown scenario {other}"),
    };
    let tenants = tenants(catalog, adversary);
    let policies = policies(catalog, adversary);
    let summary = mp_service::run_fleet(
        catalog,
        &tenants,
        &policies,
        duration_ns(scale),
        &cfg,
        &chaos,
    );
    FleetPoint { scenario, summary }
}

fn sweep(catalog: &PlanCatalog, scale: Scale) -> Vec<FleetPoint> {
    SCENARIOS
        .iter()
        .map(|s| run_scenario(catalog, scale, s))
        .collect()
}

/// Runs all scenarios against the cached per-scale soak catalog.
pub fn data(scale: Scale) -> Vec<FleetPoint> {
    sweep(&soak::catalog(scale), scale)
}

/// One point of the goodput-vs-shards scaling curve.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Shard count of this run.
    pub shards: usize,
    /// The run's full fleet summary.
    pub summary: FleetSummary,
}

fn scaling_sweep(catalog: &PlanCatalog, scale: Scale) -> Vec<ScalingPoint> {
    // The offered load is FIXED at the 16-shard reference (2x its
    // saturating rate) for every shard count: the curve shows how goodput
    // scales out under one unmoving workload, not a per-size re-tune.
    let tenants = tenants(catalog, false);
    let policies = policies(catalog, false);
    SCALING_SHARDS
        .iter()
        .map(|&shards| {
            let cfg = FleetConfig {
                shards,
                ..fleet_config()
            };
            let summary = mp_service::run_fleet(
                catalog,
                &tenants,
                &policies,
                duration_ns(scale),
                &cfg,
                &ShardFaultPlan::none(cfg.seed),
            );
            ScalingPoint { shards, summary }
        })
        .collect()
}

/// Runs the scaling curve against the cached per-scale soak catalog.
pub fn scaling_data(scale: Scale) -> Vec<ScalingPoint> {
    scaling_sweep(&soak::catalog(scale), scale)
}

/// Renders the goodput-vs-shards curve as its own report (the
/// `fleet_soak --scaling-csv` artifact, `results/csv/fleet_scaling.csv`).
pub fn scaling_report(scale: Scale) -> Report {
    let catalog = soak::catalog(scale);
    let points = scaling_sweep(&catalog, scale);
    render_scaling(&points, &catalog)
}

fn render_scaling(points: &[ScalingPoint], catalog: &PlanCatalog) -> Report {
    let sat = catalog.saturating_rate_per_s(SHARDS * INSTANCES_PER_SHARD);
    let mut r = Report::new("Fleet scaling: goodput vs shard count at fixed offered load");
    r.note(format!(
        "offered load fixed at {:.1}x the {}-shard saturating rate ({:.0} req/s); {} instances/shard; no chaos",
        LOAD, SHARDS, sat, INSTANCES_PER_SHARD
    ));
    r.note("undersized fleets shed at the bounded queues; goodput should grow until the offered load is covered");
    r.columns(&[
        "shards", "offered", "goodput", "miss", "p50us", "p999us", "shed", "spill", "imbal", "util",
    ]);
    for p in points {
        let s = &p.summary;
        let cap_ns = s.fleet.duration_ns as u128 * (p.shards * INSTANCES_PER_SHARD) as u128;
        r.row(&[
            p.shards.to_string(),
            s.fleet.offered.to_string(),
            format!("{:.0}", s.fleet.goodput_rps()),
            f3(s.fleet.miss_rate()),
            format!("{:.1}", s.fleet.p50_us()),
            format!("{:.1}", s.fleet.p999_us()),
            s.fleet.shed().to_string(),
            s.spills.to_string(),
            format!("{:.2}", s.imbalance()),
            f3(s.fleet.busy_ns as f64 / cap_ns as f64),
        ]);
    }
    r
}

fn render(points: &[FleetPoint], catalog: &PlanCatalog) -> Report {
    let sat = catalog.saturating_rate_per_s(SHARDS * INSTANCES_PER_SHARD);
    let mut r = Report::new("Fleet chaos soak: 16 shards, double kill, adversarial tenant");
    r.note(format!(
        "{} shards x {} instances; fleet saturating rate {:.0} req/s; steady load {:.1}x",
        SHARDS, INSTANCES_PER_SHARD, sat, LOAD
    ));
    r.note(format!(
        "chaos rows kill shards {:?} at T/4 for T/4; adversary rows add a 2x-capacity burst tenant",
        KILLED
    ));
    r.note("scope: fleet = aggregates, tenant:<label> = per-tenant, shard:<id> = per-shard (chaos-defended only)");
    r.columns(&[
        "scenario", "scope", "offered", "goodput", "miss", "p999us", "shed", "thrtl", "kills",
        "reroute", "lost", "hedge", "hwin", "spill", "imbal",
    ]);
    let dash = || "-".to_string();
    for p in points {
        let s = &p.summary;
        r.row(&[
            p.scenario.to_string(),
            "fleet".to_string(),
            s.fleet.offered.to_string(),
            format!("{:.0}", s.fleet.goodput_rps()),
            f3(s.fleet.miss_rate()),
            format!("{:.1}", s.fleet.p999_us()),
            s.fleet.shed().to_string(),
            s.fleet.shed_throttled.to_string(),
            s.shard_kills.to_string(),
            s.rerouted.to_string(),
            s.lost_to_shards.to_string(),
            s.hedges_fired.to_string(),
            s.hedge_wins.to_string(),
            s.spills.to_string(),
            format!("{:.2}", s.imbalance()),
        ]);
        for t in &s.tenants {
            r.row(&[
                p.scenario.to_string(),
                format!("tenant:{}", t.label),
                t.offered.to_string(),
                format!("{:.0}", t.goodput_rps()),
                f3(t.miss_rate()),
                format!("{:.1}", t.p999_us()),
                t.shed.to_string(),
                t.throttled.to_string(),
                dash(),
                dash(),
                dash(),
                dash(),
                dash(),
                dash(),
                dash(),
            ]);
        }
        if p.scenario == "chaos-defended" {
            for (i, sh) in s.shards.iter().enumerate() {
                r.row(&[
                    p.scenario.to_string(),
                    format!("shard:{i:02}"),
                    sh.offered.to_string(),
                    format!(
                        "{:.0}",
                        sh.on_time as f64 / (s.fleet.duration_ns as f64 * 1e-9).max(1e-12)
                    ),
                    f3(if sh.offered == 0 {
                        0.0
                    } else {
                        1.0 - sh.on_time as f64 / sh.offered as f64
                    }),
                    format!("{:.1}", sh.p999_us()),
                    sh.sheds.to_string(),
                    dash(),
                    sh.kills.to_string(),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                ]);
            }
        }
    }
    r
}

/// Runs the campaign and renders the report (cached catalog).
pub fn run(scale: Scale) -> Report {
    let catalog = soak::catalog(scale);
    render(&sweep(&catalog, scale), &catalog)
}

/// Like [`run`], but builds the catalog on the given pool, uncached — the
/// thread-invariance regression test compares widths 1 and 8 through this
/// entry point.
pub fn run_with_pool(scale: Scale, pool: &ThreadPool) -> Report {
    let catalog = soak::build_catalog(scale, pool);
    render(&sweep(&catalog, scale), &catalog)
}

/// Captures one fully-instrumented `chaos-defended` run into a telemetry
/// session (catalog build + the double-kill fleet run on the `("fleet",
/// 0)` stream), returning the session plus the run's summary. Shard
/// failovers, hedges, deadline misses, and sheds all leave
/// flight-recorder incidents; the capture is deterministic at any pool
/// width.
pub fn capture_trace(
    scale: Scale,
    pool: &ThreadPool,
) -> (mp_telemetry::TelemetrySession, FleetSummary) {
    use mp_octree::{benchmark_scenes, Scene};
    let session = mp_telemetry::TelemetrySession::new();
    let scenes: Vec<Scene> = benchmark_scenes().into_iter().take(2).collect();
    let catalog = PlanCatalog::build_traced(
        &mp_robot::RobotModel::jaco2(),
        &scenes,
        2,
        11,
        pool,
        &session,
    )
    .expect("benchmark scenes yield valid soak catalogs");
    let summary = mp_service::run_fleet_traced(
        &catalog,
        &tenants(&catalog, false),
        &policies(&catalog, false),
        duration_ns(scale),
        &fleet_config(),
        &double_kill(scale),
        &session,
        0,
    );
    (session, summary)
}

/// Builds the unified metrics registry for a captured fleet run: fleet
/// aggregates, robustness counters, and the per-shard / per-tenant
/// breakdowns (deterministically named), plus the process-wide collision
/// counters.
pub fn metrics_registry(summary: &FleetSummary) -> mp_telemetry::Registry {
    let reg = mp_telemetry::Registry::new();
    summary.export_into("fleet", &reg);
    mp_collision::metrics::export_into(&reg);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point<'a>(d: &'a [FleetPoint], scenario: &str) -> &'a FleetPoint {
        d.iter()
            .find(|p| p.scenario == scenario)
            .expect("scenario exists")
    }

    #[test]
    fn defended_fleet_survives_the_double_kill() {
        let d = data(Scale::Quick);
        let clean = point(&d, "no-failure").summary.fleet.goodput_rps();
        let chaos = &point(&d, "chaos-defended").summary;
        let naive = &point(&d, "chaos-undefended").summary;
        assert_eq!(chaos.shard_kills, 2, "both kills must land");
        assert!(chaos.rerouted > 0, "failover must re-route victims");
        assert!(
            chaos.fleet.goodput_rps() >= 0.70 * clean,
            "defended goodput {:.0} < 70% of no-failure {:.0}",
            chaos.fleet.goodput_rps(),
            clean
        );
        assert!(
            naive.fleet.goodput_rps() < chaos.fleet.goodput_rps(),
            "undefended {:.0} must collapse below defended {:.0}",
            naive.fleet.goodput_rps(),
            chaos.fleet.goodput_rps()
        );
        assert!(
            naive.lost_to_shards > 0,
            "the undefended fleet must lose traffic to dead shards"
        );
    }

    #[test]
    fn fairness_confines_the_adversary() {
        let d = data(Scale::Quick);
        let quiet = &point(&d, "no-failure").summary;
        let noisy = &point(&d, "adversary").summary;
        for (q, n) in quiet.tenants.iter().zip(&noisy.tenants) {
            assert_eq!(q.label, n.label);
            assert!(
                n.goodput_rps() >= 0.90 * q.goodput_rps(),
                "tenant {}: adversary cut goodput {:.0} -> {:.0} (> 10%)",
                q.label,
                q.goodput_rps(),
                n.goodput_rps()
            );
        }
        let adv = noisy.tenants.last().expect("adversary tenant present");
        assert_eq!(adv.label, "adversary");
        assert!(adv.throttled > 0, "the token bucket must bite");
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = format!("{:?}", data(Scale::Quick));
        let b = format!("{:?}", data(Scale::Quick));
        assert_eq!(a, b);
    }

    #[test]
    fn report_covers_scenarios_tenants_and_shards() {
        let text = run(Scale::Quick).to_string();
        for s in SCENARIOS {
            assert!(text.contains(s), "missing scenario {s}");
        }
        assert!(text.contains("tenant:interactive"));
        assert!(text.contains("tenant:adversary"));
        assert!(text.contains("shard:00") && text.contains("shard:15"));
    }
}
