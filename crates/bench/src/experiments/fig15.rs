//! Fig 15 (+ §7.1 headline numbers): scheduler comparison with the real
//! CECDU latency — MCSP vs NP vs CSP vs MP over the CDU count, with one
//! query dispatched per cycle.

use mp_robot::RobotModel;
use mp_sim::{CecduConfig, IuKind};
use mpaccel_core::sas::SasConfig;

use crate::experiments::common::{replay_memo, CduKind, ReplayMemo, SasAggregate};
use crate::report::{f2, pct_change, Report};
use crate::workloads::{BenchWorkload, Scale};

/// CDU counts swept in Fig 15.
pub const CDU_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The four schedulers compared in Fig 15.
pub fn schedulers(n: usize) -> Vec<(&'static str, SasConfig)> {
    vec![
        ("MCSP", SasConfig::mcsp(n)),
        ("NP", SasConfig::naive_parallel(n)),
        ("CSP", SasConfig::csp(n)),
        ("MP", SasConfig::inter_only(n)),
    ]
}

/// Raw Fig 15 data.
#[derive(Clone, Debug)]
pub struct Fig15Data {
    /// Sequential baseline (1 CDU, in-order).
    pub sequential: SasAggregate,
    /// `(scheduler, cdus, aggregate)`.
    pub points: Vec<(&'static str, usize, SasAggregate)>,
}

/// Runs the Fig 15 sweep with CECDUs (4 multi-cycle OOCDs) as CDUs.
pub fn data(scale: Scale) -> Fig15Data {
    let w = BenchWorkload::cached(RobotModel::jaco2(), scale);
    let cdu = CduKind::Cecdu(CecduConfig::new(4, IuKind::MultiCycle));
    // Full scale caps the replay at a statistically ample batch count:
    // unbounded replay of ~30k batches x every configuration would take
    // hours without changing the aggregates.
    let max_batches = match scale {
        Scale::Quick => 24,
        Scale::Full => 200,
    };
    // The 25 scheduler configurations replay the same batches; one memo
    // shares each pose's CECDU response across them (bit-identical
    // aggregates, each distinct pose simulated once).
    let mut memo = ReplayMemo::new(cdu);
    let sequential = replay_memo(
        &w,
        &SasConfig::sequential(),
        cdu,
        max_batches,
        None,
        &mut memo,
    );
    let mut points = Vec::new();
    for &n in &CDU_COUNTS {
        for (name, cfg) in schedulers(n) {
            points.push((
                name,
                n,
                replay_memo(&w, &cfg, cdu, max_batches, None, &mut memo),
            ));
        }
    }
    Fig15Data { sequential, points }
}

/// Renders Fig 15 and prints the §7.1 comparison lines.
pub fn run(scale: Scale) -> Report {
    let d = data(scale);
    let mut r =
        Report::new("Figure 15: schedulers for coarse-grained parallelism (real CECDU latency)");
    r.note("cells: speedup over sequential (energy as #CD tests vs sequential)");
    let mut header = vec!["scheduler"];
    let labels: Vec<String> = CDU_COUNTS.iter().map(|n| format!("{n} CDUs")).collect();
    header.extend(labels.iter().map(String::as_str));
    r.columns(&header);
    for (name, _) in schedulers(1) {
        let mut cells = vec![name.to_string()];
        for &n in &CDU_COUNTS {
            let a = point(&d, name, n);
            cells.push(format!(
                "{} ({})",
                f2(a.speedup_vs(&d.sequential)),
                pct_change(a.energy_vs(&d.sequential))
            ));
        }
        r.row(&cells);
    }
    let m8 = point(&d, "MCSP", 8);
    let n8 = point(&d, "NP", 8);
    let m16 = point(&d, "MCSP", 16);
    let n16 = point(&d, "NP", 16);
    r.note(format!(
        "paper (§7.1, 8 CDUs): MCSP 7x @ +6% energy vs NP 3.7x @ +83%; measured: MCSP {}x @ {} vs NP {}x @ {}",
        f2(m8.speedup_vs(&d.sequential)),
        pct_change(m8.energy_vs(&d.sequential)),
        f2(n8.speedup_vs(&d.sequential)),
        pct_change(n8.energy_vs(&d.sequential)),
    ));
    r.note(format!(
        "paper (§7.1, 16 CDUs): MCSP 11.03x @ +22% vs NP 6.2x @ +113%; measured: MCSP {}x @ {} vs NP {}x @ {}",
        f2(m16.speedup_vs(&d.sequential)),
        pct_change(m16.energy_vs(&d.sequential)),
        f2(n16.speedup_vs(&d.sequential)),
        pct_change(n16.energy_vs(&d.sequential)),
    ));
    r
}

fn point(d: &Fig15Data, name: &str, n: usize) -> SasAggregate {
    d.points
        .iter()
        .find(|(p, c, _)| *p == name && *c == n)
        .map(|(_, _, a)| *a)
        .expect("point computed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_shapes() {
        let d = data(Scale::Quick);
        let m8 = point(&d, "MCSP", 8);
        let n8 = point(&d, "NP", 8);
        // MCSP beats NP on both axes at 8 CDUs (paper: 7x@+6% vs 3.7x@+83%).
        assert!(m8.speedup_vs(&d.sequential) > n8.speedup_vs(&d.sequential));
        assert!(m8.energy_vs(&d.sequential) < n8.energy_vs(&d.sequential));
        // MCSP-8 achieves a healthy speedup with small energy overhead.
        assert!(m8.speedup_vs(&d.sequential) > 3.0);
        assert!(m8.energy_vs(&d.sequential) < 1.35);
        // Speedup saturates: doubling 16 -> 32 CDUs falls clearly short of
        // a 2x gain (dispatch limit). The quick workload sits near 1.6, so
        // leave headroom for sampling noise in the planner-generated
        // batches.
        let m16 = point(&d, "MCSP", 16);
        let m32 = point(&d, "MCSP", 32);
        let gain = m32.speedup_vs(&d.sequential) / m16.speedup_vs(&d.sequential);
        assert!(gain < 1.75, "32-CDU gain over 16: {gain}");
    }

    #[test]
    fn report_mentions_paper_comparison() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("paper (§7.1, 8 CDUs)"));
        assert!(text.contains("MCSP"));
    }
}
