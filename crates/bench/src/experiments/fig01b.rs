//! Fig 1b: the motivating comparison — speedup and computation for
//! sequential, small-scale parallel, large-scale parallel, and MPAccel
//! execution on the accelerator hardware.

use mp_robot::RobotModel;
use mp_sim::{CecduConfig, IuKind};
use mpaccel_core::sas::SasConfig;

use crate::experiments::common::{replay_memo, CduKind, ReplayMemo, SasAggregate};
use crate::report::{f2, Report};
use crate::workloads::{BenchWorkload, Scale};

/// The four execution modes of Fig 1b.
pub fn modes() -> Vec<(&'static str, SasConfig)> {
    vec![
        ("Sequential", SasConfig::sequential()),
        ("Parallel (small)", SasConfig::naive_parallel(8)),
        ("Parallel (large)", SasConfig::naive_parallel(64)),
        ("MPAccel", SasConfig::mcsp(16)),
    ]
}

/// Raw data: `(mode, aggregate)`.
pub fn data(scale: Scale) -> Vec<(&'static str, SasAggregate)> {
    let w = BenchWorkload::cached(RobotModel::jaco2(), scale);
    let cdu = CduKind::Cecdu(CecduConfig::new(4, IuKind::MultiCycle));
    // Full scale caps the replay at a statistically ample batch count:
    // unbounded replay of ~30k batches x every configuration would take
    // hours without changing the aggregates.
    let max_batches = match scale {
        Scale::Quick => 24,
        Scale::Full => 300,
    };
    // The four modes replay the same batches: share pose responses.
    let mut memo = ReplayMemo::new(cdu);
    modes()
        .into_iter()
        .map(|(name, cfg)| {
            (
                name,
                replay_memo(&w, &cfg, cdu, max_batches, None, &mut memo),
            )
        })
        .collect()
}

/// Renders Fig 1b.
pub fn run(scale: Scale) -> Report {
    let d = data(scale);
    let seq = d[0].1;
    let mut r =
        Report::new("Figure 1b: speedup and computation of execution modes on ASIC hardware");
    r.note("paper: large-scale naive parallelism buys speedup at ~3.4x computation; MPAccel keeps computation near 1x");
    r.columns(&["mode", "speedup", "computation (norm)"]);
    for (name, a) in &d {
        r.row(&[
            name.to_string(),
            f2(a.speedup_vs(&seq)),
            f2(a.energy_vs(&seq)),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1b_shape() {
        let d = data(Scale::Quick);
        let seq = d[0].1;
        let small = d[1].1;
        let large = d[2].1;
        let mpaccel = d[3].1;
        // Parallelism gives speedup, at growing computation cost.
        assert!(small.speedup_vs(&seq) > 1.5);
        assert!(large.speedup_vs(&seq) >= small.speedup_vs(&seq));
        assert!(large.energy_vs(&seq) > small.energy_vs(&seq));
        // MPAccel: speedup comparable to large-parallel, computation near 1.
        assert!(mpaccel.speedup_vs(&seq) > small.speedup_vs(&seq));
        // 0.85: the quick workload's batches are small enough that naive
        // large-scale parallelism wastes less than the paper's 3.4x, which
        // compresses the gap MPAccel can show.
        assert!(mpaccel.energy_vs(&seq) < large.energy_vs(&seq) * 0.85);
        assert!(mpaccel.energy_vs(&seq) < 1.4);
    }
}
