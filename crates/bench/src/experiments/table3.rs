//! Table 3: collision-detection and motion-planning runtime on CPUs and
//! GPUs versus MPAccel (2^20 OBB–octree queries).

use mp_baselines::cpu::{cpu_cd_time_ms, CpuVariant, CORTEX_A57, I7_4771};
use mp_baselines::gpu::{gpu_cd_time_ms, GpuVariant, JETSON_TX2, TITAN_V};
use mp_baselines::motion_planning_time_ms;
use mp_baselines::workload::{measure_workload, random_link_obb, WorkloadStats};
use mp_octree::benchmark_scenes;
use mp_robot::RobotModel;
use mp_sim::{CecduConfig, IuKind};
use mpaccel_core::oocd::{run_oocd, OocdConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{f2, Report};
use crate::workloads::{BenchWorkload, Scale};

/// Queries in the §7.5 benchmark.
pub const QUERIES: u64 = 1 << 20;

/// All Table 3 measurements.
#[derive(Clone, Debug)]
pub struct Table3Data {
    /// The measured per-query workload.
    pub workload: WorkloadStats,
    /// `(platform, basic, optimized, leaf, power W)` CD times in ms.
    pub cd_rows: Vec<(&'static str, f64, Option<f64>, f64, f64)>,
    /// MPAccel CD rows: `(label, ms, area mm², power W)`.
    pub mpaccel_rows: Vec<(String, f64, f64, f64)>,
    /// `(platform, avg motion-planning ms)`.
    pub mp_rows: Vec<(&'static str, f64)>,
    /// MPAccel average motion-planning ms.
    pub mpaccel_mp_ms: f64,
    /// Real single-thread wall-clock time measured on *this* host for 2^20
    /// OBB–octree queries (extrapolated from a smaller timed run) — the one
    /// genuinely empirical row of the table.
    pub host_measured_ms: f64,
    /// Per-query wall-clock nanoseconds behind [`Table3Data::host_measured_ms`],
    /// as a log-bucketed histogram with exact percentiles (`--timings` on
    /// the `table3` binary prints mean/p50/p99 from it).
    pub host_hist: mp_telemetry::HistSnapshot,
}

/// Paper values for side-by-side display: `(platform, basic, opt, leaf,
/// power, mp_ms)`.
pub const PAPER: [(&str, f64, f64, f64, f64, f64); 4] = [
    ("NVIDIA Titan V", 24.0, 12.0, 6.0, 156.8, 1.42),
    ("NVIDIA Jetson TX2 GPU", 5833.0, 3403.0, 1373.0, 3.5, 110.27),
    ("i7-4771 (8-core)", 153.0, f64::NAN, 890.0, 65.0, 4.13),
    ("Cortex-A57 (4-core)", 360.0, f64::NAN, 3304.0, 4.2, 11.62),
];

/// Runs all models.
pub fn data(scale: Scale) -> Table3Data {
    // Measure the per-query workload over a mix of benchmark scenes.
    let scenes: Vec<_> = benchmark_scenes().into_iter().take(4).collect();
    let samples = scale.cd_samples();
    let mut agg = WorkloadStats::default();
    for (i, s) in scenes.iter().enumerate() {
        let w = measure_workload(&s.octree(), samples / scenes.len(), i as u64);
        agg.avg_nodes += w.avg_nodes / scenes.len() as f64;
        agg.avg_tests += w.avg_tests / scenes.len() as f64;
        agg.avg_warp_union_nodes += w.avg_warp_union_nodes / scenes.len() as f64;
        agg.avg_warp_union_nodes_unsorted += w.avg_warp_union_nodes_unsorted / scenes.len() as f64;
        agg.leaf_count += w.leaf_count / scenes.len() as f64;
        agg.collision_rate += w.collision_rate / scenes.len() as f64;
    }

    let cd_rows = vec![
        (
            TITAN_V.name,
            gpu_cd_time_ms(&TITAN_V, GpuVariant::Basic, &agg, QUERIES),
            Some(gpu_cd_time_ms(
                &TITAN_V,
                GpuVariant::Optimized,
                &agg,
                QUERIES,
            )),
            gpu_cd_time_ms(&TITAN_V, GpuVariant::LeafNodes, &agg, QUERIES),
            TITAN_V.power_w,
        ),
        (
            JETSON_TX2.name,
            gpu_cd_time_ms(&JETSON_TX2, GpuVariant::Basic, &agg, QUERIES),
            Some(gpu_cd_time_ms(
                &JETSON_TX2,
                GpuVariant::Optimized,
                &agg,
                QUERIES,
            )),
            gpu_cd_time_ms(&JETSON_TX2, GpuVariant::LeafNodes, &agg, QUERIES),
            JETSON_TX2.power_w,
        ),
        (
            I7_4771.name,
            cpu_cd_time_ms(&I7_4771, CpuVariant::Traversal, &agg, QUERIES),
            None,
            cpu_cd_time_ms(&I7_4771, CpuVariant::LeafNodes, &agg, QUERIES),
            I7_4771.power_w,
        ),
        (
            CORTEX_A57.name,
            cpu_cd_time_ms(&CORTEX_A57, CpuVariant::Traversal, &agg, QUERIES),
            None,
            cpu_cd_time_ms(&CORTEX_A57, CpuVariant::LeafNodes, &agg, QUERIES),
            CORTEX_A57.power_w,
        ),
    ];

    // MPAccel: 16 CECDUs × 4 OOCDs = 64 OOCDs working on independent
    // OBB–octree queries (§7.5 compares exactly this).
    let mut mpaccel_rows = Vec::new();
    for iu in [IuKind::MultiCycle, IuKind::Pipelined] {
        let mut rng = StdRng::seed_from_u64(9);
        let mut cycles = 0u64;
        let mut n = 0u64;
        let cfg = OocdConfig::new(iu);
        for s in &scenes {
            let tree = s.octree();
            for _ in 0..(samples / scenes.len()).max(64) {
                let obb = random_link_obb(&mut rng).quantize();
                cycles += run_oocd(&tree, &obb, &cfg).cycles;
                n += 1;
            }
        }
        let avg_cycles = cycles as f64 / n as f64;
        let clock = iu.clock();
        let oocds = 64.0;
        let ms = QUERIES as f64 * avg_cycles * clock.period_ns() / oocds / 1e6;
        let accel = mp_sim::MpaccelConfig::new(16, CecduConfig::new(4, iu));
        let ap = accel.area_power();
        mpaccel_rows.push((format!("MPAccel 16x4 {iu}"), ms, ap.area_mm2, ap.power_w));
    }

    // Motion-planning rows: CD queries per plan from the Baxter workload.
    let w = BenchWorkload::cached(RobotModel::baxter(), Scale::Quick);
    let plans = w.traces.len().max(1) as f64;
    // Each pose query tests several link OBBs (early exit averages ~5 of 7).
    let obb_queries_per_plan = w.total_poses() as f64 / plans * 5.0;
    let nn_per_plan = w
        .traces
        .iter()
        .map(|(_, t)| t.nn_inferences() as u64)
        .sum::<u64>() as f64
        / plans;
    let mp_rows = vec![
        (
            TITAN_V.name,
            motion_planning_time_ms(
                gpu_cd_time_ms(&TITAN_V, GpuVariant::Optimized, &agg, QUERIES) / QUERIES as f64,
                obb_queries_per_plan,
                nn_per_plan * 0.02, // cuDNN-class inference on the same GPU
                0.3,                // host/driver overhead per plan
            ),
        ),
        (
            JETSON_TX2.name,
            motion_planning_time_ms(
                gpu_cd_time_ms(&JETSON_TX2, GpuVariant::Optimized, &agg, QUERIES) / QUERIES as f64,
                obb_queries_per_plan,
                nn_per_plan * 0.6,
                2.0,
            ),
        ),
        (
            I7_4771.name,
            motion_planning_time_ms(
                cpu_cd_time_ms(&I7_4771, CpuVariant::Traversal, &agg, QUERIES) / QUERIES as f64,
                obb_queries_per_plan,
                nn_per_plan * 0.15,
                0.2,
            ),
        ),
        (
            CORTEX_A57.name,
            motion_planning_time_ms(
                cpu_cd_time_ms(&CORTEX_A57, CpuVariant::Traversal, &agg, QUERIES) / QUERIES as f64,
                obb_queries_per_plan,
                nn_per_plan * 0.5,
                0.5,
            ),
        ),
    ];

    // MPAccel end-to-end average from the system model.
    let mpaccel_mp_ms = {
        let robot = RobotModel::baxter();
        let mut total = 0.0;
        let mut n = 0u32;
        for (si, trace) in w.traces.iter().take(6) {
            let sys = mpaccel_core::mpaccel::MpAccelSystem::new(
                robot.clone(),
                w.octree(*si),
                mpaccel_core::mpaccel::SystemConfig::paper_default(),
            );
            total += sys.run_trace(trace).total_ms;
            n += 1;
        }
        total / n.max(1) as f64
    };

    // Real measurement on this host: time a batch of software OBB–octree
    // queries per query into a telemetry histogram and extrapolate the
    // mean to 2^20 (single thread).
    let (host_measured_ms, host_hist) = {
        let tree = scenes[0].octree();
        let mut rng = StdRng::seed_from_u64(3);
        let obbs: Vec<_> = (0..2048).map(|_| random_link_obb(&mut rng)).collect();
        // Warm up caches once.
        for o in obbs.iter().take(256) {
            std::hint::black_box(tree.collides_with(|a| mp_geometry::sat::overlaps(o, a)));
        }
        let mut hist = mp_telemetry::HistSnapshot::new();
        for o in &obbs {
            let t0 = std::time::Instant::now();
            std::hint::black_box(tree.collides_with(|a| mp_geometry::sat::overlaps(o, a)));
            hist.observe(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        let per_query_ns = hist.mean().unwrap_or(0.0);
        (per_query_ns * QUERIES as f64 / 1e6, hist)
    };

    Table3Data {
        workload: agg,
        cd_rows,
        mpaccel_rows,
        mp_rows,
        mpaccel_mp_ms,
        host_measured_ms,
        host_hist,
    }
}

/// Renders the host per-query timing distribution (real wall clock, so
/// never part of the deterministic report; the `table3` binary prints it
/// under `--timings`).
pub fn timings(d: &Table3Data) -> String {
    let h = &d.host_hist;
    let ns = |q| h.percentile(q).unwrap_or(0);
    format!(
        "host OBB-octree query wall clock ({} samples): mean={:.0}ns p50={}ns p99={}ns p999={}ns -> {:.0} ms extrapolated to 2^20 queries",
        h.count(),
        h.mean().unwrap_or(0.0),
        ns(0.50),
        ns(0.99),
        ns(0.999),
        d.host_measured_ms
    )
}

/// Renders Table 3 with paper values side by side.
pub fn run(scale: Scale) -> Report {
    render(&data(scale))
}

/// Renders already-computed [`Table3Data`] (the binary reuses one
/// computation for the report and the `--timings` dump).
pub fn render(d: &Table3Data) -> Report {
    let mut r = Report::new(
        "Table 3: collision detection (2^20 OBB-octree queries) and motion planning runtime",
    );
    r.note("model (paper) — analytic platform models calibrated per DESIGN.md substitution 3");
    r.columns(&[
        "platform",
        "OBB-octree (ms)",
        "+GPU opts (ms)",
        "leaf nodes (ms)",
        "power (W)",
        "avg MP (ms)",
    ]);
    for (name, basic, opt, leaf, power) in &d.cd_rows {
        let paper = PAPER.iter().find(|(n, ..)| n == name).unwrap();
        let mp = d.mp_rows.iter().find(|(n, _)| n == name).unwrap().1;
        r.row(&[
            name.to_string(),
            format!("{} ({})", f2(*basic), f2(paper.1)),
            match opt {
                Some(o) => format!("{} ({})", f2(*o), f2(paper.2)),
                None => "N/A".to_string(),
            },
            format!("{} ({})", f2(*leaf), f2(paper.3)),
            f2(*power),
            format!("{} ({})", f2(mp), f2(paper.5)),
        ]);
    }
    for (label, ms, area, power) in &d.mpaccel_rows {
        r.row(&[
            label.clone(),
            f2(*ms),
            "-".into(),
            "-".into(),
            f2(*power),
            "-".into(),
        ]);
        let _ = area;
    }
    r.note(format!(
        "paper: MPAccel 16x4 mc = 0.91 ms (11.1 mm², 3.4 W), 16x4 p = 0.53 ms; MPAccel avg MP: measured {:.3} ms (paper 0.099 ms)",
        d.mpaccel_mp_ms
    ));
    // The host measurement is real wall clock and varies run to run; it
    // goes to stderr so the rendered report stays bit-identical across
    // runs and thread counts (the determinism test relies on this).
    eprintln!(
        "table3: ground truth on THIS host (1 thread, real wall clock): {:.0} ms for 2^20 queries — sanity-anchors the CPU models",
        d.host_measured_ms
    );
    r.note(
        "ground truth wall clock for 2^20 queries is measured on this host each run and printed to stderr (kept out of the table so reports are reproducible)",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_holds() {
        let d = data(Scale::Quick);
        let cd = |name: &str| d.cd_rows.iter().find(|(n, ..)| *n == name).unwrap();
        let titan = cd("NVIDIA Titan V");
        let tx2 = cd("NVIDIA Jetson TX2 GPU");
        let i7 = cd("i7-4771 (8-core)");
        let a57 = cd("Cortex-A57 (4-core)");
        // Platform ordering (basic kernel): Titan < i7 < A57 < TX2.
        assert!(titan.1 < i7.1 && i7.1 < a57.1 && a57.1 < tx2.1);
        // MPAccel beats every baseline by a wide margin on CD.
        for (_, ms, _, _) in &d.mpaccel_rows {
            assert!(*ms < titan.1, "MPAccel {ms} !< Titan {}", titan.1);
        }
        // Pipelined MPAccel beats multi-cycle (paper: 0.53 vs 0.91).
        assert!(d.mpaccel_rows[1].1 < d.mpaccel_rows[0].1);
        // MPAccel CD time is in the paper's ballpark (0.53–0.91 ms).
        assert!(
            (0.1..=8.0).contains(&d.mpaccel_rows[0].1),
            "MPAccel mc {} ms",
            d.mpaccel_rows[0].1
        );
        // Motion planning: MPAccel fastest, TX2 slowest of the baselines.
        let mp = |name: &str| d.mp_rows.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!(d.mpaccel_mp_ms < mp("NVIDIA Titan V"));
        assert!(mp("NVIDIA Titan V") < mp("Cortex-A57 (4-core)"));
        assert!(mp("Cortex-A57 (4-core)") < mp("NVIDIA Jetson TX2 GPU"));
        // Real-time on MPAccel, with a wide margin over the best baseline
        // (paper: 0.099 ms vs 1.42 ms on Titan V ≈ 14x).
        assert!(d.mpaccel_mp_ms < 1.0);
        assert!(
            mp("NVIDIA Titan V") > 2.0 * d.mpaccel_mp_ms,
            "Titan {} vs MPAccel {}",
            mp("NVIDIA Titan V"),
            d.mpaccel_mp_ms
        );
    }
}
