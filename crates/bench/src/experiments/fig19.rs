//! Fig 19: end-to-end motion-planning runtime on MPAccel per benchmark
//! environment (Baxter, 16 CECDUs × 4 multi-cycle OOCDs).

use mp_robot::RobotModel;
use mpaccel_core::mpaccel::{MpAccelSystem, SystemConfig};

use crate::report::{f3, Report};
use crate::workloads::{BenchWorkload, Scale};

/// Per-benchmark runtime summary (milliseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BenchRuntime {
    /// Scene index.
    pub scene: usize,
    /// Fastest query.
    pub min_ms: f64,
    /// Mean.
    pub avg_ms: f64,
    /// Slowest query.
    pub max_ms: f64,
    /// Queries measured.
    pub queries: usize,
}

/// Replays every trace of the Baxter workload on the headline MPAccel
/// configuration, grouped per scene. Returns per-scene stats plus the
/// global list of per-query times.
pub fn data(scale: Scale) -> (Vec<BenchRuntime>, Vec<f64>) {
    let robot = RobotModel::baxter();
    let w = BenchWorkload::cached(robot.clone(), scale);
    let max_per_scene = match scale {
        Scale::Quick => 2,
        Scale::Full => usize::MAX,
    };
    let mut per_scene: Vec<Vec<f64>> = vec![Vec::new(); w.scenes.len()];
    for (si, trace) in &w.traces {
        if per_scene[*si].len() >= max_per_scene {
            continue;
        }
        let sys = MpAccelSystem::new(robot.clone(), w.octree(*si), SystemConfig::paper_default());
        let report = sys.run_trace(trace);
        per_scene[*si].push(report.total_ms);
    }
    let mut all = Vec::new();
    let stats: Vec<BenchRuntime> = per_scene
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(si, v)| {
            all.extend_from_slice(v);
            BenchRuntime {
                scene: si,
                min_ms: v.iter().copied().fold(f64::INFINITY, f64::min),
                avg_ms: v.iter().sum::<f64>() / v.len() as f64,
                max_ms: v.iter().copied().fold(0.0, f64::max),
                queries: v.len(),
            }
        })
        .collect();
    (stats, all)
}

/// Renders Fig 19.
pub fn run(scale: Scale) -> Report {
    let (stats, all) = data(scale);
    let mut r = Report::new("Figure 19: motion planning runtime on MPAccel per benchmark (Baxter, 16 CECDUs x 4 mc OOCDs)");
    r.columns(&["benchmark", "min (ms)", "avg (ms)", "max (ms)", "queries"]);
    for s in &stats {
        r.row(&[
            format!("bench_{}", s.scene),
            f3(s.min_ms),
            f3(s.avg_ms),
            f3(s.max_ms),
            s.queries.to_string(),
        ]);
    }
    let avg = all.iter().sum::<f64>() / all.len().max(1) as f64;
    let min = all.iter().copied().fold(f64::INFINITY, f64::min);
    let max = all.iter().copied().fold(0.0f64, f64::max);
    r.note(format!(
        "paper (§7.4): 0.014–0.49 ms, average 0.099 ms; measured: {min:.3}–{max:.3} ms, average {avg:.3} ms"
    ));
    let mut sorted = all.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let pct = |p: f64| sorted[(p * (sorted.len() - 1) as f64).round() as usize];
    r.note(format!(
        "distribution: p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms over {} queries",
        pct(0.50),
        pct(0.90),
        pct(0.99),
        sorted.len()
    ));
    r.note("real-time budget: < 1 ms (1 kHz actuator response rate)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realtime_band() {
        let (stats, all) = data(Scale::Quick);
        assert!(!stats.is_empty());
        assert!(!all.is_empty());
        let avg = all.iter().sum::<f64>() / all.len() as f64;
        // Paper band: 0.014–0.49 ms, avg 0.099 ms. Accept an order-of-
        // magnitude envelope while requiring the real-time budget holds.
        assert!(avg < 1.0, "average {avg} ms breaks the 1 ms budget");
        assert!(avg > 0.001, "average {avg} ms suspiciously small");
        for &t in &all {
            assert!(t < 2.0, "query took {t} ms");
        }
    }
}
