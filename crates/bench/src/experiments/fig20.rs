//! Fig 20: motion-planning runtime and performance-per-watt-per-area for
//! the eight MPAccel configurations (`X_Y_mc/p`).

use mp_robot::RobotModel;
use mp_sim::{CecduConfig, IuKind, MpaccelConfig};
use mpaccel_core::mpaccel::{MpAccelSystem, SystemConfig};

use crate::report::{f2, f3, Report};
use crate::workloads::{BenchWorkload, Scale};

/// The eight configurations of Fig 20, in plot order.
pub fn configs() -> Vec<MpaccelConfig> {
    let mut out = Vec::new();
    for (cecdus, oocds, iu) in [
        (8, 4, IuKind::MultiCycle),
        (16, 4, IuKind::MultiCycle),
        (8, 4, IuKind::Pipelined),
        (16, 4, IuKind::Pipelined),
        (8, 1, IuKind::MultiCycle),
        (16, 1, IuKind::MultiCycle),
        (8, 1, IuKind::Pipelined),
        (16, 1, IuKind::Pipelined),
    ] {
        out.push(MpaccelConfig::new(cecdus, CecduConfig::new(oocds, iu)));
    }
    out
}

/// One configuration's measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigPoint {
    /// Fig 20 label (`16_4_mc` …).
    pub label: String,
    /// Mean per-query runtime in ms.
    pub avg_ms: f64,
    /// Max per-query runtime in ms.
    pub max_ms: f64,
    /// Queries / (second × watt × mm²).
    pub perf: f64,
}

/// Runs all configurations over the workload.
pub fn data(scale: Scale) -> Vec<ConfigPoint> {
    let robot = RobotModel::baxter();
    let w = BenchWorkload::cached(robot.clone(), scale);
    let max_traces = match scale {
        Scale::Quick => 4,
        Scale::Full => 60,
    };
    let traces: Vec<_> = w.traces.iter().take(max_traces).collect();
    configs()
        .into_iter()
        .map(|cfg| {
            let mut times = Vec::new();
            for (si, trace) in &traces {
                let sys =
                    MpAccelSystem::new(robot.clone(), w.octree(*si), SystemConfig::with_accel(cfg));
                times.push(sys.run_trace(trace).total_ms);
            }
            let total_s: f64 = times.iter().sum::<f64>() / 1e3;
            let avg_ms = times.iter().sum::<f64>() / times.len().max(1) as f64;
            let max_ms = times.iter().copied().fold(0.0, f64::max);
            ConfigPoint {
                label: cfg.label(),
                avg_ms,
                max_ms,
                perf: cfg.perf_metric(times.len() as u64, total_s.max(1e-12)),
            }
        })
        .collect()
}

/// Renders Fig 20.
pub fn run(scale: Scale) -> Report {
    let d = data(scale);
    let mut r =
        Report::new("Figure 20: MPAccel configurations — runtime and queries/(s x W x mm^2)");
    r.note("labels: <CECDUs>_<OOCDs per CECDU>_<multi-cycle|pipelined>");
    r.columns(&["config", "avg (ms)", "max (ms)", "perf (q/(s*W*mm^2))"]);
    for p in &d {
        r.row(&[p.label.clone(), f3(p.avg_ms), f3(p.max_ms), f2(p.perf)]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_count_and_labels() {
        let cfgs = configs();
        assert_eq!(cfgs.len(), 8);
        assert!(cfgs.iter().any(|c| c.label() == "16_4_mc"));
        assert!(cfgs.iter().any(|c| c.label() == "8_1_p"));
    }

    #[test]
    fn fig20_shapes() {
        let d = data(Scale::Quick);
        let get = |l: &str| d.iter().find(|p| p.label == l).unwrap();
        // More CECDUs -> faster (same OOCD config).
        assert!(get("16_4_mc").avg_ms <= get("8_4_mc").avg_ms * 1.02);
        // 4-OOCD CECDUs beat 1-OOCD CECDUs on runtime.
        assert!(get("16_4_mc").avg_ms < get("16_1_mc").avg_ms);
        // Every config stays within the real-time budget on this workload.
        for p in &d {
            assert!(p.avg_ms < 2.0, "{} avg {} ms", p.label, p.avg_ms);
            assert!(p.perf > 0.0);
        }
        // Perf-per-area-watt favours smaller configs when speedup is
        // sublinear: 8_4_mc should beat 16_4_mc on the metric, as in the
        // paper's right axis.
        assert!(get("8_4_mc").perf > get("16_4_mc").perf * 0.8);
    }
}
