//! Ablations backing the design choices the paper asserts but does not
//! plot: the 6-5-4 SAT stage split (§4), the MCSP step size (§5.1 fixes 8),
//! and the octree depth / SRAM budget trade-off (§5.2).

use mp_geometry::cascade::{cascaded_obb_aabb, CascadeConfig, StageSplit};
use mp_octree::{Octree, Scene, SceneConfig};
use mp_robot::RobotModel;
use mp_sim::{CecduConfig, IuKind};
use mpaccel_core::sas::{IntraPolicy, SasConfig};

use crate::experiments::common::{replay_memo, CduKind, ReplayMemo, SasAggregate};
use crate::report::{f2, f3, Report};
use crate::workloads::{collect_test_pairs, BenchWorkload, Scale};

/// Stage splits evaluated for the cascade ablation.
pub const SPLITS: [[u8; 3]; 5] = [[6, 5, 4], [5, 5, 5], [3, 6, 6], [10, 3, 2], [1, 7, 7]];

/// Aggregate cost of one stage split over the test population.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SplitCost {
    /// The split.
    pub split: [u8; 3],
    /// Mean multi-cycle IU cycles per test.
    pub avg_cycles: f64,
    /// Mean multiplications per test.
    pub avg_mults: f64,
}

/// Measures every candidate stage split on the traversal test population.
pub fn stage_split_data(scale: Scale) -> Vec<SplitCost> {
    let w = BenchWorkload::cached(RobotModel::jaco2(), Scale::Quick);
    let per_scene = scale.cd_samples() / w.scenes.len();
    let mut pairs = Vec::new();
    for (si, scene) in w.scenes.iter().enumerate() {
        pairs.extend(collect_test_pairs(
            &scene.octree(),
            per_scene,
            500 + si as u64,
        ));
    }
    SPLITS
        .iter()
        .map(|&sizes| {
            let cfg = CascadeConfig {
                split: StageSplit::new(sizes),
                ..CascadeConfig::proposed()
            };
            let mut cycles = 0u64;
            let mut mults = 0u64;
            for (obb, aabb) in &pairs {
                let out = cascaded_obb_aabb(&obb.quantize(), &aabb.quantize(), &cfg);
                // Multi-cycle IU: 1 cycle sphere stage + 2 per SAT stage.
                cycles += (1 + 2 * out.stages_executed.saturating_sub(1)) as u64;
                mults += out.mults as u64;
            }
            SplitCost {
                split: sizes,
                avg_cycles: cycles as f64 / pairs.len() as f64,
                avg_mults: mults as f64 / pairs.len() as f64,
            }
        })
        .collect()
}

/// MCSP step sizes swept (§5.1 fixes step = 8 in hardware).
pub const STEPS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Sweeps the MCSP coarse-step size at 8 CDUs with real CECDUs.
pub fn step_size_data(scale: Scale) -> Vec<(usize, SasAggregate)> {
    let mut w = (*BenchWorkload::cached(RobotModel::jaco2(), scale)).clone();
    w.batches.retain(|b| b.motions.len() >= 2);
    let cdu = CduKind::Cecdu(CecduConfig::new(4, IuKind::MultiCycle));
    let max_batches = match scale {
        Scale::Quick => 16,
        Scale::Full => 0,
    };
    // Every step size replays the same batches: share pose responses.
    let mut memo = ReplayMemo::new(cdu);
    STEPS
        .iter()
        .map(|&step| {
            let cfg = SasConfig {
                intra: IntraPolicy::CoarseStep { step },
                ..SasConfig::mcsp(8)
            };
            (
                step,
                replay_memo(&w, &cfg, cdu, max_batches, None, &mut memo),
            )
        })
        .collect()
}

/// Octree depths swept for the SRAM budget ablation.
pub const DEPTHS: [u32; 4] = [3, 4, 5, 6];

/// Octree depth vs storage and query cost.
pub fn depth_data(scale: Scale) -> Vec<(u32, usize, bool, f64)> {
    use mpaccel_core::oocd::{run_oocd, OocdConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let scene = Scene::random(SceneConfig::paper(), 0);
    let mut rng = StdRng::seed_from_u64(77);
    let poses = (scale.cd_samples() / 2).max(100);
    DEPTHS
        .iter()
        .map(|&depth| {
            let tree = Octree::build_in(
                mp_geometry::Aabb::new(mp_geometry::Vec3::zero(), mp_geometry::Vec3::splat(1.0)),
                scene.obstacles(),
                depth,
            );
            let cfg = OocdConfig::new(IuKind::MultiCycle);
            let mut cycles = 0u64;
            for _ in 0..poses {
                let obb = mp_baselines::workload::random_link_obb(&mut rng).quantize();
                cycles += run_oocd(&tree, &obb, &cfg).cycles;
            }
            (
                depth,
                tree.storage_bytes(),
                tree.fits_hardware(),
                cycles as f64 / poses as f64,
            )
        })
        .collect()
}

/// Renders all three ablations.
pub fn run(scale: Scale) -> Report {
    let mut r =
        Report::new("Ablations: stage split (§4), MCSP step size (§5.1), octree depth (§5.2)");

    let splits = stage_split_data(scale);
    r.note("cascade stage split — avg multi-cycle IU cycles / mults per test:");
    for s in &splits {
        r.note(format!(
            "  {:>2}-{}-{}: {} cycles, {} mults",
            s.split[0],
            s.split[1],
            s.split[2],
            f2(s.avg_cycles),
            f2(s.avg_mults)
        ));
    }

    let steps = step_size_data(scale);
    let base = steps.iter().find(|(s, _)| *s == 8).unwrap().1;
    r.note("MCSP coarse-step size at 8 CDUs — cycles / queries normalized to step 8:");
    for (s, a) in &steps {
        r.note(format!(
            "  step {:>2}: runtime {}, energy {}",
            s,
            f3(a.cycles as f64 / base.cycles as f64),
            f3(a.queries as f64 / base.queries as f64)
        ));
    }

    let depths = depth_data(scale);
    r.note("octree depth — storage vs mean OOCD cycles:");
    for (d, bytes, fits, cycles) in &depths {
        r.note(format!(
            "  depth {d}: {bytes} B ({}), {} cycles/query",
            if *fits {
                "fits 8-bit addressing"
            } else {
                "EXCEEDS hardware budget"
            },
            f2(*cycles)
        ));
    }
    r.columns(&["ablation", "winner"]);
    r.row(&["stage split".into(), best_split_label(&splits)]);
    r.row(&["step size".into(), best_step_label(&steps)]);
    r
}

fn best_split_label(splits: &[SplitCost]) -> String {
    let best = splits
        .iter()
        .min_by(|a, b| a.avg_cycles.partial_cmp(&b.avg_cycles).unwrap())
        .unwrap();
    format!("{}-{}-{}", best.split[0], best.split[1], best.split[2])
}

fn best_step_label(steps: &[(usize, SasAggregate)]) -> String {
    let best = steps.iter().min_by_key(|(_, a)| a.cycles).unwrap();
    format!("step {}", best.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_loaded_splits_win() {
        // §4 picked 6-5-4 from the Fig 8b distribution: front-loaded splits
        // (more axes in stage 1) must not lose to back-loaded ones.
        let d = stage_split_data(Scale::Quick);
        let get = |s: [u8; 3]| d.iter().find(|x| x.split == s).unwrap();
        let proposed = get([6, 5, 4]);
        let back_loaded = get([1, 7, 7]);
        assert!(proposed.avg_cycles <= back_loaded.avg_cycles + 1e-9);
        // All splits agree on mult totals within the filter prefix; the
        // split only changes latency and stage-granularity of mults.
        assert!(proposed.avg_mults <= back_loaded.avg_mults * 1.35);
    }

    #[test]
    fn moderate_steps_beat_step_one() {
        // Step 1 degenerates to in-order scheduling: strictly worse runtime
        // than the hardware's step 8 on colliding workloads.
        let d = step_size_data(Scale::Quick);
        let get = |s: usize| d.iter().find(|(x, _)| *x == s).unwrap().1;
        assert!(get(8).cycles <= get(1).cycles);
    }

    #[test]
    fn deeper_trees_cost_more_storage() {
        let d = depth_data(Scale::Quick);
        for w in d.windows(2) {
            assert!(w[1].1 >= w[0].1, "storage must grow with depth");
        }
        // Depth 4 (the default) fits the hardware budget on scene 0.
        let depth4 = d.iter().find(|(x, ..)| *x == 4).unwrap();
        assert!(depth4.2);
    }

    #[test]
    fn report_renders() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("stage split"));
        assert!(text.contains("step 8"));
    }
}
