//! Goodput-vs-shards scaling curve (robustness study; not a paper
//! figure): the defended fleet swept over 1/2/4/8/16/32 shards under the
//! *fixed* offered load of the 16-shard reference (2× its saturating
//! rate), no chaos. Undersized fleets shed at their bounded queues;
//! goodput grows with the shard count until the offered load is covered,
//! then flattens — the curve the capacity-planning satellite reads.
//!
//! Thin experiment wrapper around
//! [`fleet::scaling_report`](crate::experiments::fleet), so the curve
//! rides the engine: `BENCH.json` timing entry, `results/csv/
//! fleet_scaling.csv` via `MPACCEL_CSV_DIR`, and the determinism
//! regression alongside every other experiment.

use crate::experiments::fleet;
use crate::report::Report;
use crate::workloads::Scale;

/// Runs the scaling sweep and renders the curve (cached catalog).
pub fn run(scale: Scale) -> Report {
    fleet::scaling_report(scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fleet::{scaling_data, SCALING_SHARDS};

    #[test]
    fn goodput_grows_with_shards_until_the_load_is_covered() {
        let d = scaling_data(Scale::Quick);
        assert_eq!(d.len(), SCALING_SHARDS.len());
        let goodput: Vec<f64> = d.iter().map(|p| p.summary.fleet.goodput_rps()).collect();
        // Identical offered traffic at every size.
        let offered = d[0].summary.fleet.offered;
        assert!(d.iter().all(|p| p.summary.fleet.offered == offered));
        // Scaling out must pay: the 16-shard fleet beats the single shard
        // by a wide margin under 32x its load.
        assert!(
            goodput[4] > 2.0 * goodput[0],
            "16 shards ({:.0} rps) must far outscale 1 shard ({:.0} rps)",
            goodput[4],
            goodput[0]
        );
        // The undersized fleets shed; the right-sized ones shed less.
        let sheds: Vec<u64> = d.iter().map(|p| p.summary.fleet.shed()).collect();
        assert!(
            sheds[0] > sheds[4],
            "1 shard must shed more than 16 ({} vs {})",
            sheds[0],
            sheds[4]
        );
    }

    #[test]
    fn curve_is_deterministic() {
        let a = format!("{:?}", scaling_data(Scale::Quick));
        let b = format!("{:?}", scaling_data(Scale::Quick));
        assert_eq!(a, b);
    }

    #[test]
    fn report_lists_every_shard_count() {
        let text = run(Scale::Quick).to_string();
        for s in SCALING_SHARDS {
            assert!(
                text.lines()
                    .any(|l| l.trim_start().starts_with(&format!("{s} "))
                        || l.trim_start().starts_with(&format!("{s}\t"))
                        || l.split_whitespace().next() == Some(&s.to_string())),
                "missing shard count {s}"
            );
        }
    }
}
