//! Table 1: CECDU collision-detection latency, area, and power for the
//! four configurations ({1, 4} intersection units × {multi-cycle,
//! pipelined}) on the Jaco2 arm.

use mp_octree::benchmark_scenes;
use mp_robot::RobotModel;
use mp_sim::{CecduConfig, IuKind};
use mpaccel_core::cecdu::CecduSim;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{f2, Report};
use crate::workloads::Scale;

/// One Table 1 column.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table1Entry {
    /// OOCDs per CECDU (1 or 4).
    pub oocds: usize,
    /// Intersection-unit kind.
    pub iu: IuKind,
    /// Mean pose-query latency in cycles.
    pub latency_cycles: f64,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// Paper values for the latency row (for side-by-side printing).
pub const PAPER_LATENCY: [(usize, &str, f64); 4] = [
    (1, "mc", 154.4),
    (1, "p", 137.5),
    (4, "mc", 54.8),
    (4, "p", 46.3),
];

/// Measures the four configurations.
pub fn data(scale: Scale) -> Vec<Table1Entry> {
    let robot = RobotModel::jaco2();
    let scenes: Vec<_> = benchmark_scenes().into_iter().take(5).collect();
    let poses_per_scene = scale.cd_samples() / scenes.len();
    let mut out = Vec::new();
    for (oocds, iu) in [
        (1, IuKind::MultiCycle),
        (1, IuKind::Pipelined),
        (4, IuKind::MultiCycle),
        (4, IuKind::Pipelined),
    ] {
        let cfg = CecduConfig::new(oocds, iu);
        let mut rng = StdRng::seed_from_u64(1);
        let mut cycles = 0u64;
        let mut n = 0u64;
        for scene in &scenes {
            let unit = CecduSim::new(robot.clone(), scene.octree(), cfg);
            for _ in 0..poses_per_scene {
                let pose = robot.sample_config(&mut rng);
                cycles += unit.check_pose(&pose).cycles;
                n += 1;
            }
        }
        let ap = cfg.area_power();
        out.push(Table1Entry {
            oocds,
            iu,
            latency_cycles: cycles as f64 / n as f64,
            area_mm2: ap.area_mm2,
            power_mw: ap.power_w * 1e3,
        });
    }
    out
}

/// Renders Table 1 with paper-vs-measured latency.
pub fn run(scale: Scale) -> Report {
    let d = data(scale);
    let mut r = Report::new("Table 1: CECDU latency/area/power for the Jaco2 arm (7 links, 6 DOF)");
    r.columns(&[
        "config",
        "latency (cycles)",
        "paper latency",
        "area (mm^2)",
        "power (mW)",
    ]);
    for e in &d {
        let paper = PAPER_LATENCY
            .iter()
            .find(|(o, k, _)| *o == e.oocds && *k == e.iu.to_string())
            .map(|(_, _, v)| *v)
            .unwrap_or(f64::NAN);
        r.row(&[
            format!("{} IU, {}", e.oocds, e.iu),
            f2(e.latency_cycles),
            f2(paper),
            format!("{:.3}", e.area_mm2),
            f2(e.power_mw),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let d = data(Scale::Quick);
        let get = |o: usize, iu: IuKind| d.iter().find(|e| e.oocds == o && e.iu == iu).unwrap();
        let smc = get(1, IuKind::MultiCycle);
        let sp = get(1, IuKind::Pipelined);
        let fmc = get(4, IuKind::MultiCycle);
        let fp = get(4, IuKind::Pipelined);
        // Ordering matches Table 1: 4-OOCD < 1-OOCD; pipelined <= multi-cycle.
        assert!(fmc.latency_cycles < smc.latency_cycles);
        assert!(fp.latency_cycles <= fmc.latency_cycles * 1.02);
        assert!(sp.latency_cycles <= smc.latency_cycles * 1.02);
        // The paper band is 46–154 cycles; allow a generous envelope.
        assert!(
            (20.0..=230.0).contains(&smc.latency_cycles),
            "1xmc latency {}",
            smc.latency_cycles
        );
        assert!(
            (15.0..=120.0).contains(&fp.latency_cycles),
            "4xp latency {}",
            fp.latency_cycles
        );
        // Area/power come straight from the synthesized Table 1 values.
        assert!((smc.area_mm2 - 0.21).abs() < 1e-9);
        assert!((fmc.power_mw - 215.7).abs() < 0.1);
        // More hardware, more area/power.
        assert!(fp.area_mm2 > smc.area_mm2);
        assert!(fp.power_mw > sp.power_mw);
    }
}
