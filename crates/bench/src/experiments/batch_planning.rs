//! Cross-query batched planning — the batch engine's contract and payoff,
//! measured head-to-head. The sequential baseline plans each query with
//! its own freshly built checker (octree clone + cold FK scratch); the
//! batched run streams every lane of a scene through one shared checker
//! with rake-style motion validation (`mp_planner::batch`). The table
//! pins the contract: identical per-lane plans and CD counts, with the
//! per-scene checker builds collapsed from one-per-query to one.
//!
//! All reported numbers are deterministic (counters, not walls); the
//! wall-clock payoff shows up in `BENCH.json` and in the criterion
//! microbenches (`rake_validate`, `cross_query_gather`).

use mp_collision::{CollisionChecker, RakeValidator, SoftwareChecker};
use mp_octree::benchmark_scenes;
use mp_planner::batch::{rrt_connect_batch, BatchQuery};
use mp_planner::queries::generate_queries;
use mp_planner::rrt::{rrt_connect, RrtConfig};
use mp_robot::{Motion, RobotModel};

use crate::report::Report;
use crate::workloads::Scale;

/// One scene's sequential-vs-batched comparison.
#[derive(Clone, Debug)]
pub struct ScenePoint {
    /// Scene index within [`benchmark_scenes`].
    pub scene: usize,
    /// Lanes (queries) planned in the scene.
    pub lanes: usize,
    /// Lanes solved (identical between the two runs by contract).
    pub solved: usize,
    /// Total CD pose checks of the batched run (also identical).
    pub cd_checks: u64,
    /// Checkers built by the sequential baseline (one per query).
    pub seq_checkers: usize,
    /// Whether every lane's path, node count and CD-query count matched
    /// the sequential run exactly.
    pub identical: bool,
    /// CD pose checks spent re-validating the solved plans as one rake
    /// stream through the still-hot shared checker.
    pub replay_checks: u64,
    /// Whether every solved plan stayed collision-free in every replay
    /// round (true by construction — plans were validated when grown).
    pub replay_all_valid: bool,
}

/// Plans every scene's query block twice — sequentially with fresh
/// checkers, then batched over one shared checker — and compares
/// lane-for-lane.
pub fn data(scale: Scale) -> Vec<ScenePoint> {
    let robot = RobotModel::jaco2();
    let (n_scenes, per_scene, replay_rounds) = match scale {
        Scale::Quick => (4, 6, 48),
        Scale::Full => (8, 24, 12),
    };
    let scenes: Vec<_> = benchmark_scenes().into_iter().take(n_scenes).collect();
    let cfg = RrtConfig::default();
    let mut out = Vec::with_capacity(scenes.len());
    for (si, scene) in scenes.iter().enumerate() {
        let tree = scene.octree();
        let queries: Vec<BatchQuery> = generate_queries(&robot, scene, per_scene, 900 + si as u64)
            .expect("benchmark scenes yield valid queries")
            .into_iter()
            .enumerate()
            .map(|(qi, q)| BatchQuery {
                start: q.start,
                goal: q.goal,
                seed: (si * 1000 + qi) as u64,
            })
            .collect();
        // Sequential baseline: every query pays its own checker build.
        let seq: Vec<_> = queries
            .iter()
            .map(|q| {
                let mut checker = SoftwareChecker::new(robot.clone(), tree.clone());
                rrt_connect(&mut checker, &q.start, &q.goal, &cfg, q.seed)
            })
            .collect();
        // Batched: one checker, all lanes in lockstep.
        let mut checker = SoftwareChecker::new(robot.clone(), tree.clone());
        let batched = rrt_connect_batch(&mut checker, &queries, &cfg);
        let identical = seq.iter().zip(&batched).all(|(s, b)| {
            s.path == b.outcome.path
                && s.nodes == b.outcome.nodes
                && s.cd_queries == b.outcome.cd_queries
                && s.cd_queries == b.stats.pose_queries
        });
        let plan_checks = checker.stats().pose_queries;
        // Replay: every solved plan's edges re-validated as one rake
        // stream through the still-hot checker — the steady-state shape
        // of a motion server streaming certified plans back out.
        let mut rake = RakeValidator::new();
        let mut replay_all_valid = true;
        for _ in 0..replay_rounds {
            for b in &batched {
                let Some(path) = &b.outcome.path else {
                    continue;
                };
                for w in path.windows(2) {
                    let edge = Motion::new(w[0].clone(), w[1].clone());
                    if rake
                        .check_motion(&mut checker, &edge, cfg.cspace_step)
                        .colliding
                    {
                        replay_all_valid = false;
                    }
                }
            }
        }
        out.push(ScenePoint {
            scene: si,
            lanes: queries.len(),
            solved: batched.iter().filter(|b| b.outcome.solved()).count(),
            cd_checks: plan_checks,
            seq_checkers: queries.len(),
            identical,
            replay_checks: checker.stats().pose_queries - plan_checks,
            replay_all_valid,
        });
    }
    out
}

/// Renders the comparison.
pub fn run(scale: Scale) -> Report {
    let d = data(scale);
    let mut r = Report::new("Batched planning engine: lockstep lanes vs sequential queries");
    r.note("contract: each batched lane is bit-identical to the sequential planner on its seed");
    r.columns(&[
        "scene",
        "lanes",
        "solved",
        "plan CD checks",
        "replay CD checks",
        "checkers (seq->batch)",
        "lanes identical",
    ]);
    for p in &d {
        r.row(&[
            format!("{}", p.scene),
            format!("{}", p.lanes),
            format!("{}", p.solved),
            format!("{}", p.cd_checks),
            format!("{}", p.replay_checks),
            format!("{}->1", p.seq_checkers),
            if p.identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let (lanes, checks, replay): (usize, u64, u64) = d.iter().fold((0, 0, 0), |(l, c, rp), p| {
        (l + p.lanes, c + p.cd_checks, rp + p.replay_checks)
    });
    r.note(format!(
        "measured: {lanes} lanes, {checks} planning CD checks, {replay} rake-replay CD checks through one shared checker per scene"
    ));
    if d.iter().all(|p| p.replay_all_valid) {
        r.note("every solved plan stayed valid under rake replay");
    }
    if d.iter().all(|p| p.identical) {
        r.note("all lanes identical to their sequential runs (plans, nodes, CD counts)");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_lane_matches_its_sequential_run() {
        for p in data(Scale::Quick) {
            assert!(p.identical, "scene {} diverged", p.scene);
            assert!(p.lanes > 0 && p.cd_checks > 0);
        }
    }

    #[test]
    fn report_flags_the_contract() {
        let r = run(Scale::Quick);
        let text = format!("{r}");
        assert!(text.contains("lanes identical"));
        assert!(!text.contains("NO"));
    }
}
