//! Deterministic parallel execution engine for the benchmark suite.
//!
//! Every experiment is a pure function `Scale -> Report` with all
//! randomness derived from fixed seeds, so experiments are independent
//! jobs: the engine fans them out over a [`ThreadPool`] (the
//! `MPACCEL_THREADS` knob) and collects the reports *in canonical order*.
//! The rendered reports are bit-identical to a serial run — the
//! determinism regression test in `tests/determinism.rs` enforces this —
//! while wall-clock drops with available cores.
//!
//! The engine also meters the run: per-experiment wall-clock plus
//! process-wide CD-check throughput, serialized as `BENCH.json` (see
//! [`RunSummary::to_json`]) so the repository's performance trajectory is
//! machine-readable from commit to commit.

use std::time::{Duration, Instant};

use mp_robot::RobotModel;
use threadpool::ThreadPool;

use crate::experiments as e;
use crate::report::Report;
use crate::workloads::{BenchWorkload, Scale};

/// One named experiment of the evaluation suite.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// Artifact name (`fig07`, `table1`, ...), also the CSV file stem.
    pub name: &'static str,
    /// The experiment entry point.
    pub runner: fn(Scale) -> Report,
}

/// The full suite in canonical (paper) order — the order `--bin all`
/// prints and `BENCH.json` lists.
pub fn experiments() -> Vec<Experiment> {
    macro_rules! exp {
        ($name:ident) => {
            Experiment {
                name: stringify!($name),
                runner: e::$name::run,
            }
        };
    }
    vec![
        exp!(fig01b),
        exp!(fig07),
        exp!(fig08),
        exp!(fig15),
        exp!(fig16),
        exp!(fig17),
        exp!(fig18),
        exp!(table1),
        exp!(table2),
        exp!(fig19),
        exp!(fig20),
        exp!(table3),
        exp!(codacc),
        exp!(ablation),
        exp!(batch_planning),
        exp!(planners),
        exp!(faults),
        exp!(soak),
        exp!(fleet),
        exp!(fleet_scaling),
        exp!(integrity),
        exp!(energy_observatory),
    ]
}

/// Looks up experiments by name (for running a subset).
///
/// # Errors
///
/// Returns the first unknown name.
pub fn select(names: &[&str]) -> Result<Vec<Experiment>, String> {
    let all = experiments();
    names
        .iter()
        .map(|n| {
            all.iter()
                .find(|x| x.name == *n)
                .copied()
                .ok_or_else(|| (*n).to_string())
        })
        .collect()
}

/// One experiment's report plus its wall-clock.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Artifact name.
    pub name: &'static str,
    /// The rendered result.
    pub report: Report,
    /// Wall-clock of this experiment's runner (includes any lazily built
    /// workloads it triggered).
    pub wall: Duration,
}

/// The outcome of one engine run: ordered results plus run-level metrics.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Workload scale of the run.
    pub scale: Scale,
    /// Thread-pool width used.
    pub threads: usize,
    /// Wall-clock of the shared-workload warmup (scene corpus + planner
    /// traces for the primary robot).
    pub workload_wall: Duration,
    /// Scenes in the shared workload.
    pub scenes: usize,
    /// Planner traces in the shared workload.
    pub traces: usize,
    /// Total wall-clock (warmup + all experiments).
    pub total_wall: Duration,
    /// Pose-level CD checks executed across the whole run.
    pub cd_checks: u64,
    /// Modeled dynamic energy (pJ) of those checks, priced by
    /// `mp_sim::energy` from the process-wide collision op counters.
    pub cd_energy_pj: f64,
    /// Mean CD-datapath microjoules per full-tier planning attempt (the
    /// soak catalog's J/plan baseline — the figure `perf_compare` gates
    /// energy regressions against).
    pub uj_per_plan_full: f64,
    /// Per-experiment results in canonical order.
    pub results: Vec<ExperimentResult>,
}

impl RunSummary {
    /// Scenes planned per second during workload warmup.
    pub fn scenes_per_sec(&self) -> f64 {
        self.scenes as f64 / self.workload_wall.as_secs_f64().max(1e-9)
    }

    /// Pose-level CD checks per second across the whole run.
    pub fn cd_checks_per_sec(&self) -> f64 {
        self.cd_checks as f64 / self.total_wall.as_secs_f64().max(1e-9)
    }

    /// Mean modeled dynamic energy per pose-level CD check, picojoules.
    pub fn pj_per_cd_check(&self) -> f64 {
        self.cd_energy_pj / self.cd_checks.max(1) as f64
    }

    /// Serializes the run metrics as `BENCH.json` (hand-rolled: the
    /// workspace is hermetic, no serde). Schema:
    ///
    /// ```json
    /// {
    ///   "schema": "mpaccel-bench/1",
    ///   "scale": "quick",
    ///   "threads": 4,
    ///   "total_wall_s": 1.23,
    ///   "workload": {"build_wall_s": 0.4, "scenes": 4, "traces": 12,
    ///                "scenes_per_sec": 10.0},
    ///   "cd_checks": 123456,
    ///   "cd_checks_per_sec": 100371.0,
    ///   "cd_energy_pj": 987654.3,
    ///   "pj_per_cd_check": 8.001,
    ///   "uj_per_plan_full": 1.234,
    ///   "experiments": [{"name": "fig01b", "wall_s": 0.01}, ...]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"mpaccel-bench/1\",\n");
        s.push_str(&format!(
            "  \"scale\": \"{}\",\n",
            match self.scale {
                Scale::Quick => "quick",
                Scale::Full => "full",
            }
        ));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!(
            "  \"total_wall_s\": {:.6},\n",
            self.total_wall.as_secs_f64()
        ));
        s.push_str(&format!(
            "  \"workload\": {{\"build_wall_s\": {:.6}, \"scenes\": {}, \"traces\": {}, \"scenes_per_sec\": {:.3}}},\n",
            self.workload_wall.as_secs_f64(),
            self.scenes,
            self.traces,
            self.scenes_per_sec(),
        ));
        s.push_str(&format!("  \"cd_checks\": {},\n", self.cd_checks));
        s.push_str(&format!(
            "  \"cd_checks_per_sec\": {:.1},\n",
            self.cd_checks_per_sec()
        ));
        s.push_str(&format!("  \"cd_energy_pj\": {:.1},\n", self.cd_energy_pj));
        s.push_str(&format!(
            "  \"pj_per_cd_check\": {:.3},\n",
            self.pj_per_cd_check()
        ));
        s.push_str(&format!(
            "  \"uj_per_plan_full\": {:.3},\n",
            self.uj_per_plan_full
        ));
        s.push_str("  \"experiments\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_s\": {:.6}}}{}\n",
                r.name,
                r.wall.as_secs_f64(),
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders a human-readable timing table.
    pub fn timing_report(&self) -> Report {
        let mut r = Report::new(format!(
            "Perf summary — {:?} scale, {} thread(s)",
            self.scale, self.threads
        ));
        r.note(format!(
            "workload warmup {:.3}s ({} scenes, {} traces, {:.1} scenes/sec)",
            self.workload_wall.as_secs_f64(),
            self.scenes,
            self.traces,
            self.scenes_per_sec(),
        ));
        r.note(format!(
            "total {:.3}s, {} CD checks ({:.0} checks/sec)",
            self.total_wall.as_secs_f64(),
            self.cd_checks,
            self.cd_checks_per_sec(),
        ));
        r.note(format!(
            "modeled CD energy {:.3} uJ ({:.2} pJ/check, {:.3} uJ/plan at full tier)",
            self.cd_energy_pj / 1e6,
            self.pj_per_cd_check(),
            self.uj_per_plan_full,
        ));
        r.columns(&["experiment", "wall [ms]"]);
        for res in &self.results {
            r.row(&[
                res.name.to_string(),
                format!("{:.1}", res.wall.as_secs_f64() * 1e3),
            ]);
        }
        r
    }
}

/// Runs the given experiments on the pool and collects ordered results.
///
/// The shared Jaco2 workload is warmed up *before* the fan-out so every
/// experiment hits the cache instead of racing to build it (other
/// workloads — e.g. Baxter's — are built lazily by the first experiment
/// that needs them, without blocking different-keyed cache hits).
pub fn run_selected(list: &[Experiment], scale: Scale, pool: &ThreadPool) -> RunSummary {
    let t0 = Instant::now();
    let checks0 = mp_collision::metrics::pose_checks_total();
    let energy0 = mp_collision::metrics::energy_pj_total();
    let warm = Instant::now();
    let workload = BenchWorkload::cached(RobotModel::jaco2(), scale);
    let workload_wall = warm.elapsed();
    let (scenes, traces) = (workload.scenes.len(), workload.traces.len());
    drop(workload);

    let results: Vec<ExperimentResult> = pool.map(list, |_, exp| {
        let t = Instant::now();
        let report = (exp.runner)(scale);
        ExperimentResult {
            name: exp.name,
            report,
            wall: t.elapsed(),
        }
    });

    RunSummary {
        scale,
        threads: pool.threads(),
        workload_wall,
        scenes,
        traces,
        total_wall: t0.elapsed(),
        cd_checks: mp_collision::metrics::pose_checks_total() - checks0,
        cd_energy_pj: mp_collision::metrics::energy_pj_total() - energy0,
        uj_per_plan_full: e::soak::catalog(scale).mean_energy_pj(mp_planner::QualityTier::Full)
            / 1e6,
        results,
    }
}

/// Runs the full suite ([`experiments`]) on the pool.
pub fn run_all(scale: Scale, pool: &ThreadPool) -> RunSummary {
    run_selected(&experiments(), scale, pool)
}

/// Writes `BENCH.json` for a run. The path comes from the
/// `MPACCEL_BENCH_JSON` environment variable, defaulting to
/// `BENCH.json` in the current directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(summary: &RunSummary) -> std::io::Result<std::path::PathBuf> {
    let path = std::env::var("MPACCEL_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&path, summary.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete_and_uniquely_named() {
        let all = experiments();
        assert_eq!(all.len(), 22);
        let mut names: Vec<&str> = all.iter().map(|x| x.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 22, "duplicate experiment names");
    }

    #[test]
    fn select_resolves_names_and_rejects_unknown() {
        let subset = select(&["fig07", "table1"]).unwrap();
        assert_eq!(subset[0].name, "fig07");
        assert_eq!(subset[1].name, "table1");
        assert_eq!(select(&["nope"]).unwrap_err(), "nope");
    }

    #[test]
    fn run_produces_ordered_results_and_metrics() {
        let pool = ThreadPool::new(2);
        let subset = select(&["fig17", "table2"]).unwrap();
        let summary = run_selected(&subset, Scale::Quick, &pool);
        assert_eq!(summary.results.len(), 2);
        assert_eq!(summary.results[0].name, "fig17");
        assert_eq!(summary.results[1].name, "table2");
        assert!(summary.total_wall >= summary.results.iter().map(|r| r.wall).max().unwrap());
        assert!(summary.cd_checks > 0, "fig17 replays CD batches");
        assert!(summary.cd_energy_pj > 0.0, "CD work carries energy");
        assert!(summary.pj_per_cd_check() > 0.0);
        assert!(
            summary.uj_per_plan_full > 0.0,
            "soak catalog J/plan baseline"
        );
        let json = summary.to_json();
        assert!(json.contains("\"schema\": \"mpaccel-bench/1\""));
        assert!(json.contains("\"name\": \"fig17\""));
        assert!(json.contains("\"scale\": \"quick\""));
        assert!(json.contains("\"cd_energy_pj\""));
        assert!(json.contains("\"pj_per_cd_check\""));
        assert!(json.contains("\"uj_per_plan_full\""));
        // The timing table lists both experiments.
        let table = summary.timing_report().to_string();
        assert!(table.contains("fig17") && table.contains("table2"));
    }
}
