//! Benchmark harness regenerating every table and figure of the MPAccel
//! paper's evaluation (§7).
//!
//! Each experiment lives in [`experiments`] as a pure function returning a
//! [`report::Report`]; thin binaries in `src/bin/` print them
//! (`cargo run -p mp-bench --release --bin fig07`), Criterion benches in
//! `benches/` time the underlying simulations, and the experiment index in
//! `DESIGN.md` maps paper artifacts to these targets.
//!
//! Workload sizes honour the `MPACCEL_BENCH_SCALE` environment variable:
//! `quick` (default for tests) or `full` (paper-scale: 10 scenes × 100
//! queries).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod experiments;
pub mod report;
pub mod workloads;

pub use engine::RunSummary;
pub use report::Report;
pub use workloads::Scale;
