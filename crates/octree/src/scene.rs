//! Randomized environment scenarios matching the paper's benchmarks.
//!
//! §6: "We use ten environmental scenarios with 100 pairs of start and end
//! goals per each environmental scenario. Each sample environment contains
//! 5–9 randomly placed cuboid-shaped obstacles. The size of these obstacles
//! in each dimension is limited to 3%–12% of the environment's extent."

use mp_geometry::{Aabb, AabbF, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::octree::Octree;
use crate::voxel::VoxelGrid;

/// Parameters of the random scene generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SceneConfig {
    /// Inclusive range of obstacle counts (paper: 5–9).
    pub obstacle_count: (usize, usize),
    /// Range of obstacle size per dimension as a fraction of the
    /// environment's extent (paper: 3%–12%).
    pub size_fraction: (f32, f32),
    /// Obstacles are kept at least this far from the origin so the robot's
    /// base is never embedded in an obstacle.
    pub clear_radius: f32,
    /// Octree depth used by [`Scene::octree`].
    pub octree_depth: u32,
}

impl SceneConfig {
    /// The paper's benchmark configuration.
    pub fn paper() -> SceneConfig {
        SceneConfig {
            obstacle_count: (5, 9),
            size_fraction: (0.03, 0.12),
            clear_radius: 0.3,
            octree_depth: 4,
        }
    }

    /// Like [`SceneConfig::paper`] but with a fixed obstacle count — used by
    /// the environment-complexity sweep of Fig 18.
    pub fn with_obstacles(n: usize) -> SceneConfig {
        SceneConfig {
            obstacle_count: (n, n),
            ..SceneConfig::paper()
        }
    }
}

impl Default for SceneConfig {
    fn default() -> SceneConfig {
        SceneConfig::paper()
    }
}

/// A generated environment: the obstacle set plus the config that made it.
///
/// # Examples
///
/// ```
/// use mp_octree::{Scene, SceneConfig};
///
/// let scene = Scene::random(SceneConfig::paper(), 7);
/// assert!((5..=9).contains(&scene.obstacles().len()));
/// let tree = scene.octree();
/// assert!(tree.node_count() >= 1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Scene {
    obstacles: Vec<AabbF>,
    config: SceneConfig,
    seed: u64,
}

impl Scene {
    /// Generates a random scene from a seed (deterministic).
    ///
    /// # Panics
    ///
    /// Panics if the configured ranges are empty or inverted.
    pub fn random(config: SceneConfig, seed: u64) -> Scene {
        assert!(
            config.obstacle_count.0 >= 1 && config.obstacle_count.0 <= config.obstacle_count.1,
            "invalid obstacle count range {:?}",
            config.obstacle_count
        );
        assert!(
            config.size_fraction.0 > 0.0 && config.size_fraction.0 <= config.size_fraction.1,
            "invalid size fraction range {:?}",
            config.size_fraction
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(config.obstacle_count.0..=config.obstacle_count.1);
        let mut obstacles = Vec::with_capacity(n);
        // The environment is the normalized [-1, 1]^3 cube, extent = 2.
        // A size fraction f gives a full side of 2f, i.e. half-extent f.
        while obstacles.len() < n {
            let half = Vec3::new(
                rng.gen_range(config.size_fraction.0..=config.size_fraction.1),
                rng.gen_range(config.size_fraction.0..=config.size_fraction.1),
                rng.gen_range(config.size_fraction.0..=config.size_fraction.1),
            );
            let center = Vec3::new(
                rng.gen_range(-1.0 + half.x..=1.0 - half.x),
                rng.gen_range(-1.0 + half.y..=1.0 - half.y),
                rng.gen_range(-1.0 + half.z..=1.0 - half.z),
            );
            let b = Aabb::new(center, half);
            // Keep the robot's mount region free: a vertical column from
            // the origin up to z = 0.4 (both evaluation arms keep their
            // immobile base link inside it).
            let too_close = (0..=4).any(|i| {
                let p = Vec3::new(0.0, 0.0, 0.1 * i as f32);
                (b.closest_point(p) - p).length() < config.clear_radius
            });
            if too_close {
                continue;
            }
            obstacles.push(b);
        }
        Scene {
            obstacles,
            config,
            seed,
        }
    }

    /// Builds a scene directly from explicit obstacles.
    pub fn from_obstacles(obstacles: Vec<AabbF>, octree_depth: u32) -> Scene {
        Scene {
            obstacles,
            config: SceneConfig {
                octree_depth,
                ..SceneConfig::paper()
            },
            seed: 0,
        }
    }

    /// The obstacle boxes.
    pub fn obstacles(&self) -> &[AabbF] {
        &self.obstacles
    }

    /// The generator configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// The generator seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builds the environment octree (what the mapping accelerator of
    /// Jia et al. would stream to MPAccel).
    pub fn octree(&self) -> Octree {
        Octree::build(&self.obstacles, self.config.octree_depth)
    }

    /// Rasterizes the obstacles into a dense voxel grid (the CODAcc-style
    /// environment representation).
    pub fn voxel_grid(&self, resolution: usize) -> VoxelGrid {
        let mut g = VoxelGrid::new(Aabb::new(Vec3::zero(), Vec3::splat(1.0)), resolution);
        for o in &self.obstacles {
            g.rasterize_aabb(o);
        }
        g
    }
}

/// The ten benchmark scenes of §6 (seeds 0..10 of the paper config).
pub fn benchmark_scenes() -> Vec<Scene> {
    (0..10)
        .map(|seed| Scene::random(SceneConfig::paper(), seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Scene::random(SceneConfig::paper(), 42);
        let b = Scene::random(SceneConfig::paper(), 42);
        assert_eq!(a, b);
        let c = Scene::random(SceneConfig::paper(), 43);
        assert_ne!(a.obstacles(), c.obstacles());
    }

    #[test]
    fn obstacles_respect_config_bounds() {
        for seed in 0..20 {
            let s = Scene::random(SceneConfig::paper(), seed);
            assert!((5..=9).contains(&s.obstacles().len()));
            for o in s.obstacles() {
                for i in 0..3 {
                    assert!(o.half[i] >= 0.03 - 1e-6 && o.half[i] <= 0.12 + 1e-6);
                }
                // Inside the environment.
                assert!(o.min_corner().min_element() >= -1.0 - 1e-6);
                assert!(o.max_corner().max_element() <= 1.0 + 1e-6);
                // Outside the clear radius.
                assert!(o.closest_point(Vec3::zero()).length() >= 0.3 - 1e-6);
            }
        }
    }

    #[test]
    fn fixed_count_config() {
        let s = Scene::random(SceneConfig::with_obstacles(12), 3);
        assert_eq!(s.obstacles().len(), 12);
    }

    #[test]
    fn benchmark_suite_has_ten_distinct_scenes() {
        let scenes = benchmark_scenes();
        assert_eq!(scenes.len(), 10);
        for w in scenes.windows(2) {
            assert_ne!(w[0].obstacles(), w[1].obstacles());
        }
    }

    #[test]
    fn octrees_typically_fit_hardware_budget() {
        // The paper stores benchmark octrees in 0.75 KB SRAM (≤256 nodes);
        // our default depth-4 trees must fit for the benchmark suite.
        for s in benchmark_scenes() {
            let t = s.octree();
            assert!(
                t.fits_hardware(),
                "scene {} needs {} nodes",
                s.seed(),
                t.node_count()
            );
        }
    }

    #[test]
    fn octree_and_voxel_grid_agree_on_obstacle_centers() {
        let s = Scene::random(SceneConfig::paper(), 5);
        let t = s.octree();
        let g = s.voxel_grid(64);
        for o in s.obstacles() {
            assert!(t.contains_point(o.center));
            assert!(g.is_occupied_at(o.center));
        }
    }

    #[test]
    #[should_panic(expected = "invalid obstacle count")]
    fn empty_count_range_rejected() {
        let cfg = SceneConfig {
            obstacle_count: (0, 0),
            ..SceneConfig::paper()
        };
        let _ = Scene::random(cfg, 0);
    }
}
