//! Octree nodes and their packed 24-bit hardware encoding.
//!
//! §5.2: "The node information (24 bits) consists of occupancy information
//! of all octants and the addresses for children nodes corresponding to
//! partially occupied octants." We encode 8 octants × 2-bit occupancy
//! (16 bits) plus an 8-bit *child base address*: the children of the
//! partially occupied octants are stored contiguously starting at that
//! address, in octant order. This is exactly 24 bits per node and gives the
//! 0.75 KB SRAM budget quoted in §7.2.2 for a 256-node octree.

/// Occupancy state of one octant (2 bits in hardware).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Occupancy {
    /// No obstacle intersects this octant.
    #[default]
    Empty,
    /// Obstacles cover part of the octant; a child node refines it.
    Partial,
    /// The octant is entirely inside an obstacle (or is an occupied leaf).
    Full,
}

impl Occupancy {
    /// The 2-bit hardware encoding (00 empty, 01 partial, 10 full).
    pub fn to_bits(self) -> u8 {
        match self {
            Occupancy::Empty => 0b00,
            Occupancy::Partial => 0b01,
            Occupancy::Full => 0b10,
        }
    }

    /// Decodes the 2-bit encoding.
    ///
    /// # Errors
    ///
    /// Returns `Err` on the reserved pattern `0b11` or values above 3.
    pub fn from_bits(bits: u8) -> Result<Occupancy, DecodeNodeError> {
        match bits {
            0b00 => Ok(Occupancy::Empty),
            0b01 => Ok(Occupancy::Partial),
            0b10 => Ok(Occupancy::Full),
            other => Err(DecodeNodeError::ReservedOccupancy(other)),
        }
    }

    /// Whether this octant holds any obstacle volume.
    pub fn is_occupied(self) -> bool {
        !matches!(self, Occupancy::Empty)
    }
}

/// Error decoding a packed node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeNodeError {
    /// An octant used the reserved `0b11` occupancy pattern.
    ReservedOccupancy(u8),
}

impl core::fmt::Display for DecodeNodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeNodeError::ReservedOccupancy(bits) => {
                write!(f, "reserved occupancy bit pattern {bits:#04b}")
            }
        }
    }
}

impl std::error::Error for DecodeNodeError {}

/// Error packing a node into the 24-bit format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackNodeError {
    /// The child base address does not fit in 8 bits (octree has more than
    /// 256 nodes — exceeds the accelerator's on-chip SRAM budget).
    ChildBaseTooLarge(u32),
}

impl core::fmt::Display for PackNodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PackNodeError::ChildBaseTooLarge(base) => {
                write!(
                    f,
                    "child base address {base} exceeds the 8-bit hardware limit"
                )
            }
        }
    }
}

impl std::error::Error for PackNodeError {}

/// One octree node: eight octant occupancies plus the base address where the
/// children of its partial octants are stored contiguously.
///
/// # Examples
///
/// ```
/// use mp_octree::node::{Node, Occupancy};
///
/// let mut n = Node::empty();
/// n.set_occupancy(3, Occupancy::Full);
/// assert_eq!(n.occupancy(3), Occupancy::Full);
/// assert_eq!(n.occupied_octants().count(), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Node {
    occupancy: [Occupancy; 8],
    child_base: u32,
}

impl Node {
    /// A node with all octants empty.
    pub fn empty() -> Node {
        Node::default()
    }

    /// Creates a node from occupancies and the child base address.
    pub fn new(occupancy: [Occupancy; 8], child_base: u32) -> Node {
        Node {
            occupancy,
            child_base,
        }
    }

    /// Occupancy of octant `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 7`.
    pub fn occupancy(&self, i: usize) -> Occupancy {
        self.occupancy[i]
    }

    /// Sets the occupancy of octant `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 7`.
    pub fn set_occupancy(&mut self, i: usize, occ: Occupancy) {
        self.occupancy[i] = occ;
    }

    /// The base address of this node's children block.
    pub fn child_base(&self) -> u32 {
        self.child_base
    }

    /// Sets the child base address.
    pub fn set_child_base(&mut self, base: u32) {
        self.child_base = base;
    }

    /// Octant indices that hold any obstacle volume (partial or full).
    pub fn occupied_octants(&self) -> impl Iterator<Item = usize> + '_ {
        (0..8).filter(|&i| self.occupancy[i].is_occupied())
    }

    /// Octant indices that are partially occupied (have children).
    pub fn partial_octants(&self) -> impl Iterator<Item = usize> + '_ {
        (0..8).filter(|&i| self.occupancy[i] == Occupancy::Partial)
    }

    /// The child node address for partial octant `i`: children are stored
    /// contiguously from `child_base` in octant order, counting only partial
    /// octants. Returns `None` for non-partial octants.
    ///
    /// # Panics
    ///
    /// Panics if `i > 7`.
    pub fn child_address(&self, i: usize) -> Option<u32> {
        if self.occupancy[i] != Occupancy::Partial {
            return None;
        }
        let rank = self.occupancy[..i]
            .iter()
            .filter(|&&o| o == Occupancy::Partial)
            .count() as u32;
        Some(self.child_base + rank)
    }

    /// Number of children (= partial octants).
    pub fn child_count(&self) -> usize {
        self.partial_octants().count()
    }

    /// Packs into the 24-bit hardware word: bits 0..16 are the 8 × 2-bit
    /// occupancies (octant 0 in the low bits), bits 16..24 the child base.
    ///
    /// # Errors
    ///
    /// Fails if the child base exceeds 8 bits.
    pub fn pack(&self) -> Result<u32, PackNodeError> {
        if self.child_base > 0xFF {
            return Err(PackNodeError::ChildBaseTooLarge(self.child_base));
        }
        let mut word = 0u32;
        for (i, occ) in self.occupancy.iter().enumerate() {
            word |= (occ.to_bits() as u32) << (2 * i);
        }
        word |= self.child_base << 16;
        Ok(word)
    }

    /// Decodes a 24-bit hardware word.
    ///
    /// # Errors
    ///
    /// Fails on reserved occupancy bit patterns.
    pub fn unpack(word: u32) -> Result<Node, DecodeNodeError> {
        let mut occupancy = [Occupancy::Empty; 8];
        for (i, occ) in occupancy.iter_mut().enumerate() {
            *occ = Occupancy::from_bits(((word >> (2 * i)) & 0b11) as u8)?;
        }
        Ok(Node {
            occupancy,
            child_base: (word >> 16) & 0xFF,
        })
    }

    /// Size of one packed node in bits.
    pub const PACKED_BITS: u32 = 24;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_bits_roundtrip() {
        for occ in [Occupancy::Empty, Occupancy::Partial, Occupancy::Full] {
            assert_eq!(Occupancy::from_bits(occ.to_bits()), Ok(occ));
        }
        assert!(Occupancy::from_bits(0b11).is_err());
    }

    #[test]
    fn child_addresses_are_contiguous_by_rank() {
        let mut n = Node::empty();
        n.set_occupancy(1, Occupancy::Partial);
        n.set_occupancy(4, Occupancy::Full);
        n.set_occupancy(6, Occupancy::Partial);
        n.set_child_base(10);
        assert_eq!(n.child_address(1), Some(10));
        assert_eq!(n.child_address(6), Some(11));
        assert_eq!(n.child_address(4), None); // full, no child
        assert_eq!(n.child_address(0), None); // empty
        assert_eq!(n.child_count(), 2);
    }

    #[test]
    fn occupied_vs_partial_iterators() {
        let mut n = Node::empty();
        n.set_occupancy(0, Occupancy::Full);
        n.set_occupancy(7, Occupancy::Partial);
        assert_eq!(n.occupied_octants().collect::<Vec<_>>(), vec![0, 7]);
        assert_eq!(n.partial_octants().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut n = Node::empty();
        n.set_occupancy(2, Occupancy::Partial);
        n.set_occupancy(3, Occupancy::Full);
        n.set_occupancy(5, Occupancy::Partial);
        n.set_child_base(0xAB);
        let word = n.pack().unwrap();
        assert!(word < (1 << 24));
        assert_eq!(Node::unpack(word).unwrap(), n);
    }

    #[test]
    fn pack_rejects_wide_child_base() {
        let mut n = Node::empty();
        n.set_child_base(256);
        assert_eq!(n.pack(), Err(PackNodeError::ChildBaseTooLarge(256)));
    }

    #[test]
    fn unpack_rejects_reserved_pattern() {
        // Octant 0 = 0b11.
        assert!(Node::unpack(0b11).is_err());
    }

    #[test]
    fn packed_word_layout() {
        let mut n = Node::empty();
        n.set_occupancy(0, Occupancy::Partial); // 0b01 at bits 0-1
        n.set_occupancy(7, Occupancy::Full); // 0b10 at bits 14-15
        n.set_child_base(1);
        let w = n.pack().unwrap();
        assert_eq!(w & 0b11, 0b01);
        assert_eq!((w >> 14) & 0b11, 0b10);
        assert_eq!(w >> 16, 1);
    }
}
