//! Flattened, cache-ordered octree arena.
//!
//! [`crate::Octree`] stores BFS-ordered nodes whose octant AABBs are
//! *recomputed* on every traversal (and, on the OOCD hardware-model path,
//! re-*quantized* on every visit — the dominant cost in profiles). The
//! [`FlatOctree`] mirror precomputes everything a traversal touches into
//! linear arrays once at build time:
//!
//! * per node, the contiguous **entry range** of its occupied octants —
//!   a traversal step yields a candidate *range*, not a candidate node;
//! * per entry, the octant id, a full/partial flag, the child address
//!   (partials only), and the octant AABB mirrored into structure-of-arrays
//!   form ([`AabbSoa`]) ready for the batch kernels in `mp_geometry::soa`;
//! * two AABB chains, because the two consumers derive boxes differently:
//!   the **pure `f32` chain** (each child box is an exact eighth of its
//!   parent — what `Octree::collides_with` computes on the fly) and the
//!   **OOCD chain**, where the hardware model re-quantizes each level's box
//!   to Q3.12 and children subdivide the *dequantized* box. Both are
//!   bit-identical to what the corresponding on-the-fly traversal produces.
//!
//! Nodes are BFS-ordered (children have higher addresses than parents), so
//! the arena is built in one forward pass and is a pure function of the
//! node array and root box.

use mp_fixed::Fx;
use mp_geometry::soa::AabbSoa;
use mp_geometry::AabbF;

use crate::node::{Node, Occupancy};
use crate::octree::Octree;

/// Child-address sentinel for fully occupied entries (no child node).
pub const NO_CHILD: u32 = u32::MAX;

/// The flattened arena (see the module docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlatOctree {
    /// `entry_start[n]..entry_start[n + 1]` indexes node `n`'s entries.
    entry_start: Vec<u32>,
    /// Octant id (0–7) of each entry, ascending within a node.
    octants: Vec<u8>,
    /// Whether the entry's octant is fully occupied (else partial).
    full: Vec<bool>,
    /// Child node address of partial entries; [`NO_CHILD`] for full ones.
    children: Vec<u32>,
    /// Octant AABBs, pure `f32` chain, SoA layout.
    aabbs: AabbSoa<f32>,
    /// Octant AABBs, OOCD quantize-roundtrip chain, SoA layout (the Q3.12
    /// boxes the Intersection Unit is fed).
    aabbs_oocd: AabbSoa<Fx>,
    /// Per-node box, pure chain (what the entry boxes subdivide).
    node_aabbs: Vec<AabbF>,
    /// Per-node box, OOCD chain: the *dequantized* parent the hardware
    /// model subdivides at this node.
    node_aabbs_oocd: Vec<AabbF>,
}

impl FlatOctree {
    /// Flattens a BFS-ordered node array over the given root box.
    pub(crate) fn build(nodes: &[Node], root: AabbF) -> FlatOctree {
        let n = nodes.len();
        let mut flat = FlatOctree {
            entry_start: Vec::with_capacity(n + 1),
            octants: Vec::new(),
            full: Vec::new(),
            children: Vec::new(),
            aabbs: AabbSoa::new(),
            aabbs_oocd: AabbSoa::new(),
            node_aabbs: vec![root; n],
            node_aabbs_oocd: vec![root; n],
        };
        for (idx, node) in nodes.iter().enumerate() {
            flat.entry_start.push(flat.octants.len() as u32);
            let parent = flat.node_aabbs[idx];
            let parent_oocd = flat.node_aabbs_oocd[idx];
            for octant in 0..8 {
                let occ = node.occupancy(octant);
                if !occ.is_occupied() {
                    continue;
                }
                let oct = Octree::octant_aabb(&parent, octant);
                let oct_fx = Octree::octant_aabb(&parent_oocd, octant).quantize();
                flat.octants.push(octant as u8);
                flat.full.push(occ == Occupancy::Full);
                flat.aabbs.push(&oct);
                flat.aabbs_oocd.push(&oct_fx);
                if occ == Occupancy::Partial {
                    let child = node
                        .child_address(octant)
                        .expect("partial octant must have a child");
                    flat.children.push(child);
                    flat.node_aabbs[child as usize] = oct;
                    flat.node_aabbs_oocd[child as usize] = oct_fx.to_f32();
                } else {
                    flat.children.push(NO_CHILD);
                }
            }
        }
        flat.entry_start.push(flat.octants.len() as u32);
        flat
    }

    /// Total entries (occupied octants) in the arena.
    #[inline]
    pub fn entry_count(&self) -> usize {
        self.octants.len()
    }

    /// The entry range of node `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn entries(&self, addr: u32) -> core::ops::Range<usize> {
        let a = addr as usize;
        self.entry_start[a] as usize..self.entry_start[a + 1] as usize
    }

    /// The octant id (0–7) of entry `e`.
    #[inline]
    pub fn octant(&self, e: usize) -> u8 {
        self.octants[e]
    }

    /// Whether entry `e` is fully occupied (else partially).
    #[inline]
    pub fn is_full(&self, e: usize) -> bool {
        self.full[e]
    }

    /// The child node address of a partial entry ([`NO_CHILD`] for full).
    #[inline]
    pub fn child(&self, e: usize) -> u32 {
        self.children[e]
    }

    /// All entry AABBs of the pure `f32` chain, in SoA layout.
    #[inline]
    pub fn aabbs(&self) -> &AabbSoa<f32> {
        &self.aabbs
    }

    /// All entry AABBs of the OOCD quantize-roundtrip chain, in SoA layout.
    #[inline]
    pub fn aabbs_oocd(&self) -> &AabbSoa<Fx> {
        &self.aabbs_oocd
    }

    /// Entry `e`'s box of the pure chain, reconstructed (bit-identical to
    /// what `Octree::octant_aabb` produces along the same path).
    #[inline]
    pub fn aabb(&self, e: usize) -> AabbF {
        self.aabbs.get(e)
    }

    /// Node `addr`'s box of the pure chain.
    #[inline]
    pub fn node_aabb(&self, addr: u32) -> AabbF {
        self.node_aabbs[addr as usize]
    }

    /// Node `addr`'s *dequantized* parent box of the OOCD chain — what the
    /// hardware model subdivides when visiting the node.
    #[inline]
    pub fn node_aabb_oocd(&self, addr: u32) -> AabbF {
        self.node_aabbs_oocd[addr as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_geometry::{Aabb, Vec3};

    fn sample_tree() -> Octree {
        let obs = [
            Aabb::new(Vec3::new(0.5, 0.5, 0.5), Vec3::splat(0.08)),
            Aabb::new(Vec3::new(-0.4, 0.1, -0.2), Vec3::splat(0.11)),
        ];
        Octree::build(&obs, 4)
    }

    #[test]
    fn entries_mirror_nodes_exactly() {
        let t = sample_tree();
        let flat = t.flat();
        assert_eq!(flat.entry_start.len(), t.node_count() + 1);
        for addr in 0..t.node_count() as u32 {
            let node = t.node(addr);
            let range = flat.entries(addr);
            let occupied: Vec<usize> = (0..8)
                .filter(|&o| node.occupancy(o).is_occupied())
                .collect();
            assert_eq!(range.len(), occupied.len());
            for (e, &octant) in range.clone().zip(occupied.iter()) {
                assert_eq!(flat.octant(e) as usize, octant);
                assert_eq!(flat.is_full(e), node.occupancy(octant) == Occupancy::Full);
                if flat.is_full(e) {
                    assert_eq!(flat.child(e), NO_CHILD);
                } else {
                    assert_eq!(Some(flat.child(e)), node.child_address(octant));
                }
            }
        }
    }

    #[test]
    fn pure_chain_matches_on_the_fly_subdivision() {
        let t = sample_tree();
        let flat = t.flat();
        // Walk like collides_with does and compare boxes bit-for-bit.
        let mut stack = vec![(0u32, t.root_aabb())];
        while let Some((addr, parent)) = stack.pop() {
            assert_eq!(flat.node_aabb(addr), parent);
            for e in flat.entries(addr) {
                let want = Octree::octant_aabb(&parent, flat.octant(e) as usize);
                assert_eq!(flat.aabb(e), want, "entry {e}");
                if !flat.is_full(e) {
                    stack.push((flat.child(e), want));
                }
            }
        }
    }

    #[test]
    fn oocd_chain_matches_quantize_roundtrip_subdivision() {
        let t = sample_tree();
        let flat = t.flat();
        // Walk like run_oocd does: quantize each level, subdivide the
        // dequantized box.
        let mut stack = vec![(0u32, t.root_aabb())];
        while let Some((addr, parent)) = stack.pop() {
            assert_eq!(flat.node_aabb_oocd(addr), parent);
            for e in flat.entries(addr) {
                let want = Octree::octant_aabb(&parent, flat.octant(e) as usize).quantize();
                let got = flat.aabbs_oocd().get(e);
                assert_eq!((got.center, got.half), (want.center, want.half));
                if !flat.is_full(e) {
                    stack.push((flat.child(e), want.to_f32()));
                }
            }
        }
    }

    #[test]
    fn empty_tree_has_no_entries() {
        let t = Octree::build(&[], 3);
        let flat = t.flat();
        assert_eq!(flat.entry_count(), 0);
        assert_eq!(flat.entries(0), 0..0);
    }
}
