//! Dense voxel grids — the alternative environment representation used by
//! the CODAcc-style comparison (§7.2.2) and as a rasterization utility.

use mp_geometry::soa::{sat_overlaps_hoisted, SatConsts};
use mp_geometry::{AabbF, Obb, Vec3};

/// A dense occupancy grid over a cubic region, one bit per voxel.
///
/// §7.2.2 compares the OOCD's octree representation against a voxelized
/// environment ("for voxels of size 2.56 cm (environment's extent is
/// 180 cm), the voxelized environment requires 32 KB storage"): a 70³ ≈
/// 2.56 cm grid at 1 bit/voxel ≈ 42 KB, and the paper's 32 KB corresponds
/// to a 64³ grid — which is what [`VoxelGrid::new`] with `resolution = 64`
/// gives.
///
/// # Examples
///
/// ```
/// use mp_geometry::{Aabb, Vec3};
/// use mp_octree::VoxelGrid;
///
/// let mut g = VoxelGrid::new(Aabb::new(Vec3::zero(), Vec3::splat(1.0)), 64);
/// g.rasterize_aabb(&Aabb::new(Vec3::new(0.5, 0.5, 0.5), Vec3::splat(0.1)));
/// assert!(g.is_occupied_at(Vec3::new(0.5, 0.5, 0.5)));
/// assert_eq!(g.storage_bytes(), 64 * 64 * 64 / 8);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct VoxelGrid {
    root: AabbF,
    resolution: usize,
    bits: Vec<u64>,
}

impl VoxelGrid {
    /// Creates an empty grid of `resolution³` voxels over `root`.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is 0 or greater than 512.
    pub fn new(root: AabbF, resolution: usize) -> VoxelGrid {
        assert!(
            (1..=512).contains(&resolution),
            "resolution must be in 1..=512, got {resolution}"
        );
        let n = resolution * resolution * resolution;
        VoxelGrid {
            root,
            resolution,
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// Grid resolution per dimension.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// The region covered by the grid.
    pub fn root_aabb(&self) -> AabbF {
        self.root
    }

    /// Storage in bytes at 1 bit per voxel.
    pub fn storage_bytes(&self) -> usize {
        (self.resolution.pow(3)).div_ceil(8)
    }

    /// Edge length of one voxel.
    pub fn voxel_size(&self) -> Vec3 {
        self.root.half * (2.0 / self.resolution as f32)
    }

    fn linear(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (iz * self.resolution + iy) * self.resolution + ix
    }

    /// Whether voxel `(ix, iy, iz)` is occupied.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn get(&self, ix: usize, iy: usize, iz: usize) -> bool {
        assert!(
            ix < self.resolution && iy < self.resolution && iz < self.resolution,
            "voxel index out of range"
        );
        let l = self.linear(ix, iy, iz);
        self.bits[l / 64] >> (l % 64) & 1 != 0
    }

    /// Marks voxel `(ix, iy, iz)` occupied.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn set(&mut self, ix: usize, iy: usize, iz: usize) {
        assert!(
            ix < self.resolution && iy < self.resolution && iz < self.resolution,
            "voxel index out of range"
        );
        let l = self.linear(ix, iy, iz);
        self.bits[l / 64] |= 1 << (l % 64);
    }

    /// Maps a world point to its voxel index, or `None` outside the grid.
    pub fn world_to_index(&self, p: Vec3) -> Option<(usize, usize, usize)> {
        let min = self.root.min_corner();
        let size = self.root.half * 2.0;
        let f = |v: f32, lo: f32, ext: f32| -> Option<usize> {
            if ext <= 0.0 {
                return None;
            }
            let t = (v - lo) / ext;
            if !(0.0..1.0).contains(&t) {
                // Allow the exact max corner to land in the last voxel.
                if (t - 1.0).abs() < 1e-6 {
                    return Some(self.resolution - 1);
                }
                return None;
            }
            Some(((t * self.resolution as f32) as usize).min(self.resolution - 1))
        };
        Some((
            f(p.x, min.x, size.x)?,
            f(p.y, min.y, size.y)?,
            f(p.z, min.z, size.z)?,
        ))
    }

    /// The AABB of voxel `(ix, iy, iz)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn voxel_aabb(&self, ix: usize, iy: usize, iz: usize) -> AabbF {
        assert!(
            ix < self.resolution && iy < self.resolution && iz < self.resolution,
            "voxel index out of range"
        );
        let vs = self.voxel_size();
        let min = self.root.min_corner();
        let center = Vec3::new(
            min.x + (ix as f32 + 0.5) * vs.x,
            min.y + (iy as f32 + 0.5) * vs.y,
            min.z + (iz as f32 + 0.5) * vs.z,
        );
        AabbF::new(center, vs * 0.5)
    }

    /// Whether the voxel containing `p` is occupied (false outside the grid).
    pub fn is_occupied_at(&self, p: Vec3) -> bool {
        self.world_to_index(p)
            .map(|(x, y, z)| self.get(x, y, z))
            .unwrap_or(false)
    }

    /// Marks every voxel overlapping the obstacle box as occupied.
    pub fn rasterize_aabb(&mut self, obstacle: &AabbF) {
        let Some(range) = self.index_range(obstacle) else {
            return;
        };
        for iz in range.2.clone() {
            for iy in range.1.clone() {
                for ix in range.0.clone() {
                    if self.voxel_aabb(ix, iy, iz).overlaps(obstacle) {
                        self.set(ix, iy, iz);
                    }
                }
            }
        }
    }

    /// Voxel indices overlapped by an OBB — the robot-side rasterization the
    /// CODAcc comparison needs (an OBB is "converted to occupied voxels, and
    /// read requests ... are sent to memory", §7.2.2). Returns the number of
    /// voxels; this scales ~8× when the voxel size halves, which is the
    /// scalability problem the paper's separating-axis design avoids.
    pub fn rasterize_obb(&self, obb: &Obb<f32>) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        let Some(range) = self.index_range(&obb.enclosing_aabb()) else {
            return out;
        };
        // The OBB side of the 15 axis tests is sweep-invariant; hoist it
        // once (verdicts stay bit-identical to per-pair `sat::overlaps`).
        let consts = SatConsts::new(obb);
        for iz in range.2.clone() {
            for iy in range.1.clone() {
                for ix in range.0.clone() {
                    let v = self.voxel_aabb(ix, iy, iz);
                    if sat_overlaps_hoisted(&consts, obb.center, &v) {
                        out.push((ix, iy, iz));
                    }
                }
            }
        }
        out
    }

    /// Number of occupied voxels.
    pub fn occupied_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Index ranges of voxels possibly overlapping `b`, clipped to the grid.
    #[allow(clippy::type_complexity)]
    fn index_range(
        &self,
        b: &AabbF,
    ) -> Option<(
        core::ops::RangeInclusive<usize>,
        core::ops::RangeInclusive<usize>,
        core::ops::RangeInclusive<usize>,
    )> {
        if !self.root.overlaps(b) {
            return None;
        }
        let clip = |v: f32, lo: f32, ext: f32| -> usize {
            let t = ((v - lo) / ext).clamp(0.0, 1.0 - 1e-6);
            ((t * self.resolution as f32) as usize).min(self.resolution - 1)
        };
        let min = self.root.min_corner();
        let size = self.root.half * 2.0;
        let bmin = b.min_corner();
        let bmax = b.max_corner();
        Some((
            clip(bmin.x, min.x, size.x)..=clip(bmax.x, min.x, size.x),
            clip(bmin.y, min.y, size.y)..=clip(bmax.y, min.y, size.y),
            clip(bmin.z, min.z, size.z)..=clip(bmax.z, min.z, size.z),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_geometry::{Aabb, Mat3};

    fn unit_grid(res: usize) -> VoxelGrid {
        VoxelGrid::new(Aabb::new(Vec3::zero(), Vec3::splat(1.0)), res)
    }

    #[test]
    fn new_grid_is_empty() {
        let g = unit_grid(16);
        assert_eq!(g.occupied_count(), 0);
        assert!(!g.get(0, 0, 0));
        assert!(!g.is_occupied_at(Vec3::zero()));
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_rejected() {
        let _ = unit_grid(0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut g = unit_grid(8);
        g.set(1, 2, 3);
        assert!(g.get(1, 2, 3));
        assert!(!g.get(3, 2, 1));
        assert_eq!(g.occupied_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let g = unit_grid(8);
        let _ = g.get(8, 0, 0);
    }

    #[test]
    fn world_to_index_maps_corners() {
        let g = unit_grid(4);
        assert_eq!(g.world_to_index(Vec3::splat(-1.0)), Some((0, 0, 0)));
        assert_eq!(g.world_to_index(Vec3::splat(1.0)), Some((3, 3, 3)));
        assert_eq!(g.world_to_index(Vec3::splat(0.0)), Some((2, 2, 2)));
        assert_eq!(g.world_to_index(Vec3::splat(1.5)), None);
    }

    #[test]
    fn voxel_aabbs_tile_the_root() {
        let g = unit_grid(4);
        let mut vol = 0.0;
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    vol += g.voxel_aabb(x, y, z).volume();
                }
            }
        }
        assert!((vol - g.root_aabb().volume()).abs() < 1e-3);
    }

    #[test]
    fn rasterized_obstacle_covers_its_interior() {
        let mut g = unit_grid(32);
        let obs = Aabb::new(Vec3::new(0.3, -0.2, 0.5), Vec3::new(0.1, 0.15, 0.05));
        g.rasterize_aabb(&obs);
        assert!(g.occupied_count() > 0);
        for dx in [-0.9f32, 0.0, 0.9] {
            let p = obs.center + Vec3::new(dx * obs.half.x, 0.0, 0.0);
            assert!(g.is_occupied_at(p));
        }
        assert!(!g.is_occupied_at(Vec3::new(-0.9, 0.9, -0.9)));
    }

    #[test]
    fn rasterize_outside_root_is_noop() {
        let mut g = unit_grid(8);
        g.rasterize_aabb(&Aabb::new(Vec3::splat(5.0), Vec3::splat(0.1)));
        assert_eq!(g.occupied_count(), 0);
    }

    #[test]
    fn obb_rasterization_scales_with_resolution() {
        // §7.2.2: halving the voxel size grows the voxel count ~5-8x.
        let obb = Obb::new(
            Vec3::new(0.1, 0.0, 0.0),
            Vec3::new(0.25, 0.06, 0.06),
            Mat3::rotation_z(0.4),
        );
        let coarse = unit_grid(32).rasterize_obb(&obb).len();
        let fine = unit_grid(64).rasterize_obb(&obb).len();
        assert!(coarse > 0);
        let ratio = fine as f32 / coarse as f32;
        assert!(
            (3.0..=10.0).contains(&ratio),
            "expected ~5-8x growth, got {ratio} ({coarse} -> {fine})"
        );
    }

    #[test]
    fn storage_matches_paper_figures() {
        // 64^3 bits = 32 KB — the §7.2.2 voxelized-environment number.
        assert_eq!(unit_grid(64).storage_bytes(), 32 * 1024);
    }
}
