//! Octree construction and traversal.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Arc;

use mp_geometry::{AabbF, Vec3};

use crate::flat::FlatOctree;
use crate::node::{Node, Occupancy, PackNodeError};

thread_local! {
    // Reusable depth-first traversal stack. Collision queries run millions
    // of times per benchmark; taking the buffer out of the cell (and
    // putting it back after the walk) keeps the hot path allocation-free
    // while staying safe under reentrancy — a nested query simply finds an
    // empty cell and allocates its own stack. Octant boxes come from the
    // flat arena now, so the stack holds bare node addresses.
    static TRAVERSAL_STACK: Cell<Vec<u32>> = const { Cell::new(Vec::new()) };
}

/// Maximum tree depth the builder accepts (leaf size = extent / 2^depth).
pub const MAX_SUPPORTED_DEPTH: u32 = 10;

/// Statistics from one traversal of the octree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Nodes fetched (≙ SRAM reads in the OOCD).
    pub nodes_visited: u32,
    /// Primitive intersection tests performed against octant AABBs.
    pub tests_performed: u32,
}

/// An octree over the environment, built from cuboid obstacles.
///
/// The environment is the axis-aligned cube the tree was built in (the
/// normalized workspace `[-1, 1]³` by default). Nodes are stored in BFS
/// order so that each node's children occupy a contiguous block, matching
/// the hardware's 8-bit child-base addressing (§5.2).
///
/// # Examples
///
/// ```
/// use mp_geometry::{Aabb, Vec3};
/// use mp_octree::Octree;
///
/// let obstacle = Aabb::new(Vec3::new(0.5, 0.5, 0.5), Vec3::splat(0.1));
/// let tree = Octree::build(&[obstacle], 4);
/// assert!(tree.contains_point(Vec3::new(0.5, 0.5, 0.5)));
/// assert!(!tree.contains_point(Vec3::new(-0.5, -0.5, -0.5)));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Octree {
    nodes: Vec<Node>,
    root: AabbF,
    max_depth: u32,
    // Deterministic function of (nodes, root), rebuilt by the constructors —
    // derived Clone/PartialEq stay consistent. Behind an Arc because trees
    // are cloned per checker throughout the benchmarks and the arena is by
    // far the largest part of the struct.
    flat: Arc<FlatOctree>,
}

impl Octree {
    /// Builds an octree over the normalized workspace `[-1, 1]³`.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is 0 or exceeds [`MAX_SUPPORTED_DEPTH`].
    pub fn build(obstacles: &[AabbF], max_depth: u32) -> Octree {
        Octree::build_in(
            AabbF::new(Vec3::zero(), Vec3::splat(1.0)),
            obstacles,
            max_depth,
        )
    }

    /// Builds an octree over an arbitrary root cube.
    ///
    /// Partially occupied octants at the maximum depth are conservatively
    /// marked fully occupied (leaf quantization), so the tree *over*-covers
    /// the true obstacle set — collision detection against it can produce
    /// false positives but never false negatives.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is 0 or exceeds [`MAX_SUPPORTED_DEPTH`].
    pub fn build_in(root: AabbF, obstacles: &[AabbF], max_depth: u32) -> Octree {
        assert!(
            (1..=MAX_SUPPORTED_DEPTH).contains(&max_depth),
            "max_depth must be in 1..={MAX_SUPPORTED_DEPTH}, got {max_depth}"
        );
        let mut nodes = vec![Node::empty()];
        let mut queue: VecDeque<(usize, AabbF, u32)> = VecDeque::new();
        queue.push_back((0, root, 0));

        while let Some((idx, aabb, depth)) = queue.pop_front() {
            let mut node = Node::empty();
            let mut partial_octants = Vec::new();
            for octant in 0..8 {
                let oct_aabb = Octree::octant_aabb(&aabb, octant);
                let occ = classify(&oct_aabb, obstacles);
                let occ = if occ == Occupancy::Partial && depth + 1 >= max_depth {
                    Occupancy::Full // leaf quantization: conservative
                } else {
                    occ
                };
                node.set_occupancy(octant, occ);
                if occ == Occupancy::Partial {
                    partial_octants.push((octant, oct_aabb));
                }
            }
            node.set_child_base(nodes.len() as u32);
            for &(_, oct_aabb) in &partial_octants {
                let child_idx = nodes.len();
                nodes.push(Node::empty());
                queue.push_back((child_idx, oct_aabb, depth + 1));
            }
            nodes[idx] = node;
        }

        let flat = Arc::new(FlatOctree::build(&nodes, root));
        Octree {
            nodes,
            root,
            max_depth,
            flat,
        }
    }

    /// The flattened arena mirror of this tree (entry ranges, precomputed
    /// octant boxes in SoA layout — see [`crate::flat`]).
    #[inline]
    pub fn flat(&self) -> &FlatOctree {
        &self.flat
    }

    /// The AABB of octant `i` (0–7) of a parent box. Bit 0 selects the +x
    /// half, bit 1 the +y half, bit 2 the +z half.
    ///
    /// # Panics
    ///
    /// Panics if `octant > 7`.
    #[inline]
    pub fn octant_aabb(parent: &AabbF, octant: usize) -> AabbF {
        assert!(octant < 8, "octant index out of range: {octant}");
        let q = parent.half * 0.5;
        let sx = if octant & 1 != 0 { q.x } else { -q.x };
        let sy = if octant & 2 != 0 { q.y } else { -q.y };
        let sz = if octant & 4 != 0 { q.z } else { -q.z };
        AabbF::new(parent.center + Vec3::new(sx, sy, sz), q)
    }

    /// The node at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn node(&self, addr: u32) -> &Node {
        &self.nodes[addr as usize]
    }

    /// All nodes in address order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The root cube of the environment.
    pub fn root_aabb(&self) -> AabbF {
        self.root
    }

    /// The depth limit the tree was built with.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// On-chip storage in bytes (24 bits per node, as stored in the OOCD's
    /// SRAM).
    pub fn storage_bytes(&self) -> usize {
        (self.nodes.len() * Node::PACKED_BITS as usize).div_ceil(8)
    }

    /// Whether the tree fits the accelerator's 8-bit node addressing
    /// (≤ 256 nodes ⇒ 0.75 KB SRAM, §7.2.2).
    pub fn fits_hardware(&self) -> bool {
        self.nodes.len() <= 256
    }

    /// Packs all nodes into their 24-bit hardware words.
    ///
    /// # Errors
    ///
    /// Fails if any node's child base exceeds the 8-bit address space.
    pub fn pack(&self) -> Result<Vec<u32>, PackNodeError> {
        self.nodes.iter().map(Node::pack).collect()
    }

    /// Whether a point lies in occupied space.
    pub fn contains_point(&self, p: Vec3) -> bool {
        let probe = AabbF::new(p, Vec3::zero());
        self.collides_with(|oct| oct.contains_point(p) || oct.overlaps(&probe))
    }

    /// Whether an axis-aligned query box touches occupied space.
    pub fn overlaps_aabb(&self, q: &AabbF) -> bool {
        self.collides_with(|oct| oct.overlaps(q))
    }

    /// Generic collision query: traverses the tree depth-first, calling
    /// `overlaps_octant` for each *occupied* octant AABB. Returns `true` as
    /// soon as a fully occupied octant passes the test; partially occupied
    /// octants that pass are refined through their child node.
    ///
    /// This is the canonical object–octree collision algorithm of §2.2; the
    /// OOCD hardware model executes the same traversal cycle by cycle.
    pub fn collides_with(&self, mut overlaps_octant: impl FnMut(&AabbF) -> bool) -> bool {
        self.collides_with_stats(&mut overlaps_octant).0
    }

    /// Like [`Octree::collides_with`], also returning traversal statistics.
    pub fn collides_with_stats(
        &self,
        overlaps_octant: &mut impl FnMut(&AabbF) -> bool,
    ) -> (bool, TraversalStats) {
        let mut stats = TraversalStats::default();
        let mut stack = TRAVERSAL_STACK.with(Cell::take);
        stack.clear();
        stack.push(0u32);
        let mut hit = false;
        let flat = &self.flat;
        'walk: while let Some(addr) = stack.pop() {
            stats.nodes_visited += 1;
            for e in flat.entries(addr) {
                // Precomputed in the arena — bit-identical to the
                // `octant_aabb` chain the on-the-fly walk used to compute.
                let oct_aabb = flat.aabb(e);
                stats.tests_performed += 1;
                if !overlaps_octant(&oct_aabb) {
                    continue;
                }
                if flat.is_full(e) {
                    hit = true;
                    break 'walk;
                }
                stack.push(flat.child(e));
            }
        }
        stack.clear();
        TRAVERSAL_STACK.with(|cell| cell.set(stack));
        (hit, stats)
    }

    /// All fully occupied leaf boxes (useful for tests and visualization).
    pub fn occupied_leaves(&self) -> Vec<AabbF> {
        let mut out = Vec::new();
        let mut stack = vec![(0u32, self.root)];
        while let Some((addr, aabb)) = stack.pop() {
            let node = &self.nodes[addr as usize];
            for octant in 0..8 {
                let oct_aabb = Octree::octant_aabb(&aabb, octant);
                match node.occupancy(octant) {
                    Occupancy::Full => out.push(oct_aabb),
                    Occupancy::Partial => {
                        let child = node
                            .child_address(octant)
                            .expect("partial octant must have a child");
                        stack.push((child, oct_aabb));
                    }
                    Occupancy::Empty => {}
                }
            }
        }
        out
    }

    /// Prunes the tree to at most `max_depth` levels: partially occupied
    /// octants at the new frontier become fully occupied.
    ///
    /// This is the §8 RoboRun-style variable-precision knob ("the
    /// environment's octree representation supports variable precision
    /// using octree node pruning"): a runtime can trade collision-detection
    /// precision (more false positives, never false negatives) for SRAM
    /// footprint and traversal latency, e.g. when the robot moves fast and
    /// far from obstacles.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is 0.
    pub fn pruned(&self, max_depth: u32) -> Octree {
        assert!(max_depth >= 1, "pruned tree needs at least one level");
        if max_depth >= self.max_depth {
            return self.clone();
        }
        // Rebuild breadth-first, truncating at the new depth.
        let mut nodes = vec![Node::empty()];
        let mut queue: VecDeque<(usize, u32, u32)> = VecDeque::new(); // new idx, old addr, depth
        queue.push_back((0, 0, 0));
        while let Some((new_idx, old_addr, depth)) = queue.pop_front() {
            let old = self.nodes[old_addr as usize];
            let mut node = Node::empty();
            for octant in 0..8 {
                let occ = match old.occupancy(octant) {
                    Occupancy::Partial if depth + 1 >= max_depth => Occupancy::Full,
                    other => other,
                };
                node.set_occupancy(octant, occ);
            }
            node.set_child_base(nodes.len() as u32);
            for octant in 0..8 {
                if node.occupancy(octant) == Occupancy::Partial {
                    let old_child = old
                        .child_address(octant)
                        .expect("partial octant must have a child");
                    let child_idx = nodes.len();
                    nodes.push(Node::empty());
                    queue.push_back((child_idx, old_child, depth + 1));
                }
            }
            nodes[new_idx] = node;
        }
        let flat = Arc::new(FlatOctree::build(&nodes, self.root));
        Octree {
            nodes,
            root: self.root,
            max_depth,
            flat,
        }
    }

    /// Fraction of the root volume that is occupied (leaf-quantized).
    pub fn occupied_volume_fraction(&self) -> f32 {
        let total: f32 = self.root.volume();
        if total <= 0.0 {
            return 0.0;
        }
        self.occupied_leaves()
            .iter()
            .map(AabbF::volume)
            .sum::<f32>()
            / total
    }
}

/// Classifies an octant against the obstacle set.
fn classify(octant: &AabbF, obstacles: &[AabbF]) -> Occupancy {
    let mut any_overlap = false;
    for obs in obstacles {
        if obs.contains_aabb(octant) {
            return Occupancy::Full;
        }
        if obs.overlaps(octant) {
            any_overlap = true;
        }
    }
    if any_overlap {
        Occupancy::Partial
    } else {
        Occupancy::Empty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_geometry::Aabb;

    fn small_obstacle() -> AabbF {
        Aabb::new(Vec3::new(0.5, 0.5, 0.5), Vec3::splat(0.08))
    }

    #[test]
    fn empty_environment_is_a_single_empty_node() {
        let t = Octree::build(&[], 4);
        assert_eq!(t.node_count(), 1);
        assert!(!t.contains_point(Vec3::zero()));
        assert!(!t.overlaps_aabb(&Aabb::new(Vec3::zero(), Vec3::splat(1.0))));
        assert_eq!(t.occupied_volume_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "max_depth")]
    fn zero_depth_rejected() {
        let _ = Octree::build(&[], 0);
    }

    #[test]
    fn octant_indexing_covers_parent() {
        let parent = Aabb::new(Vec3::new(0.1, -0.2, 0.3), Vec3::new(0.4, 0.6, 0.8));
        let mut vol = 0.0;
        for i in 0..8 {
            let o = Octree::octant_aabb(&parent, i);
            vol += o.volume();
            // Tolerate an ulp of float rounding on the shared boundaries.
            assert!(
                o.min_corner()
                    .min(parent.min_corner())
                    .distance(parent.min_corner())
                    < 1e-5
            );
            assert!(
                o.max_corner()
                    .max(parent.max_corner())
                    .distance(parent.max_corner())
                    < 1e-5
            );
        }
        assert!((vol - parent.volume()).abs() < 1e-5);
        // Octant 7 is the +x +y +z corner.
        let o7 = Octree::octant_aabb(&parent, 7);
        assert!(o7.center.x > parent.center.x);
        assert!(o7.center.y > parent.center.y);
        assert!(o7.center.z > parent.center.z);
    }

    #[test]
    fn point_queries_match_obstacles() {
        let obs = small_obstacle();
        let t = Octree::build(&[obs], 5);
        assert!(t.contains_point(obs.center));
        assert!(!t.contains_point(Vec3::new(-0.5, -0.5, -0.5)));
        // Conservative: points just outside may be flagged (leaf quantization),
        // but points far outside must not be.
        assert!(!t.contains_point(Vec3::new(0.5, 0.5, -0.5)));
    }

    #[test]
    fn octree_overcovers_obstacles() {
        // Every point inside an obstacle must be inside the octree's
        // occupied set (no false negatives from leaf quantization).
        let obs = [
            Aabb::new(Vec3::new(0.33, -0.41, 0.12), Vec3::new(0.05, 0.11, 0.07)),
            Aabb::new(Vec3::new(-0.6, 0.2, -0.3), Vec3::new(0.1, 0.04, 0.09)),
        ];
        let t = Octree::build(&obs, 4);
        for o in &obs {
            for dx in [-0.9f32, 0.0, 0.9] {
                for dy in [-0.9f32, 0.0, 0.9] {
                    for dz in [-0.9f32, 0.0, 0.9] {
                        let p = o.center + Vec3::new(dx * o.half.x, dy * o.half.y, dz * o.half.z);
                        assert!(t.contains_point(p), "missed interior point {p:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn deeper_trees_fit_obstacles_tighter() {
        let obs = [small_obstacle()];
        let shallow = Octree::build(&obs, 2);
        let deep = Octree::build(&obs, 5);
        assert!(deep.occupied_volume_fraction() < shallow.occupied_volume_fraction());
        assert!(deep.node_count() > shallow.node_count());
    }

    #[test]
    fn children_are_contiguous_blocks() {
        let obs = [
            small_obstacle(),
            Aabb::new(Vec3::new(-0.4, 0.0, 0.0), Vec3::splat(0.1)),
        ];
        let t = Octree::build(&obs, 4);
        for node in t.nodes() {
            let addrs: Vec<u32> = (0..8).filter_map(|i| node.child_address(i)).collect();
            for (k, &a) in addrs.iter().enumerate() {
                assert_eq!(a, node.child_base() + k as u32);
                assert!((a as usize) < t.node_count());
            }
        }
    }

    #[test]
    fn full_octant_coverage_via_big_obstacle() {
        // One obstacle covering the whole +x+y+z octant exactly.
        let obs = Aabb::new(Vec3::splat(0.5), Vec3::splat(0.5));
        let t = Octree::build(&[obs], 3);
        assert_eq!(t.node(0).occupancy(7), Occupancy::Full);
        // Only the root node is needed: nothing partial at depth 0 except none.
        assert!(t.node(0).partial_octants().count() <= 7);
    }

    #[test]
    fn traversal_stats_monotone_in_query_size() {
        let obs = [
            small_obstacle(),
            Aabb::new(Vec3::new(-0.3, 0.4, -0.5), Vec3::splat(0.09)),
        ];
        let t = Octree::build(&obs, 5);
        let small_q = Aabb::new(Vec3::new(0.9, 0.9, 0.9), Vec3::splat(0.01));
        let big_q = Aabb::new(Vec3::zero(), Vec3::splat(0.95));
        let mut f_small = |o: &AabbF| o.overlaps(&small_q);
        let mut f_big = |o: &AabbF| o.overlaps(&big_q);
        let (hit_small, s_small) = t.collides_with_stats(&mut f_small);
        let (hit_big, s_big) = t.collides_with_stats(&mut f_big);
        assert!(!hit_small);
        assert!(hit_big);
        assert!(s_small.tests_performed <= s_big.tests_performed + 16);
        assert!(s_small.nodes_visited >= 1);
    }

    #[test]
    fn storage_accounting() {
        let t = Octree::build(&[small_obstacle()], 4);
        assert_eq!(t.storage_bytes(), (t.node_count() * 24).div_ceil(8));
        if t.node_count() <= 256 {
            assert!(t.fits_hardware());
            let packed = t.pack().unwrap();
            assert_eq!(packed.len(), t.node_count());
            for (i, &w) in packed.iter().enumerate() {
                assert_eq!(&Node::unpack(w).unwrap(), t.node(i as u32));
            }
        }
    }

    #[test]
    fn pruning_is_conservative_and_smaller() {
        let obs = [
            small_obstacle(),
            Aabb::new(Vec3::new(-0.4, 0.3, -0.2), Vec3::splat(0.07)),
        ];
        let full = Octree::build(&obs, 5);
        for depth in [1, 2, 3, 4] {
            let pruned = full.pruned(depth);
            assert_eq!(pruned.max_depth(), depth);
            assert!(pruned.node_count() <= full.node_count());
            assert!(pruned.storage_bytes() <= full.storage_bytes());
            // Conservative: everything occupied in the full tree stays
            // occupied in the pruned tree.
            for leaf in full.occupied_leaves() {
                assert!(
                    pruned.overlaps_aabb(&leaf),
                    "depth {depth} lost occupied leaf {leaf:?}"
                );
            }
            // Volume only grows as precision drops.
            assert!(pruned.occupied_volume_fraction() >= full.occupied_volume_fraction() - 1e-6);
        }
        // Pruning to >= current depth is a no-op.
        assert_eq!(full.pruned(5), full);
        assert_eq!(full.pruned(9), full);
    }

    #[test]
    fn pruning_reduces_volume_precision_monotonically() {
        let obs = [small_obstacle()];
        let full = Octree::build(&obs, 5);
        let mut last = 0.0f32;
        for depth in [5, 4, 3, 2, 1] {
            let v = full.pruned(depth).occupied_volume_fraction();
            assert!(v >= last - 1e-6, "volume should grow as depth shrinks");
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn pruning_to_zero_rejected() {
        let _ = Octree::build(&[small_obstacle()], 4).pruned(0);
    }

    #[test]
    fn occupied_leaves_cover_and_only_cover_occupied_space() {
        let obs = [small_obstacle()];
        let t = Octree::build(&obs, 4);
        let leaves = t.occupied_leaves();
        assert!(!leaves.is_empty());
        // Every leaf overlaps the obstacle (they were carved from it).
        for leaf in &leaves {
            assert!(
                obs[0].overlaps(leaf),
                "leaf {leaf:?} does not touch obstacle"
            );
        }
    }
}
