//! Environment representation for the MPAccel reproduction.
//!
//! The accelerator stores its environment as an octree (§2.2, Fig 4): each
//! node records the occupancy of its eight octants in a packed 24-bit word
//! and refines partially occupied octants through contiguously stored child
//! nodes. This crate provides:
//!
//! * [`node`] — octree nodes and their 24-bit hardware encoding,
//! * [`octree`] — construction from cuboid obstacles and the canonical
//!   early-exit traversal used for collision queries,
//! * [`voxel`] — dense voxel grids (the CODAcc-style alternative the paper
//!   compares against in §7.2.2),
//! * [`scene`] — randomized benchmark environments matching §6 (5–9 cuboid
//!   obstacles of 3–12 % extent, ten scenarios).
//!
//! # Examples
//!
//! ```
//! use mp_octree::{Scene, SceneConfig};
//!
//! let scene = Scene::random(SceneConfig::paper(), 0);
//! let tree = scene.octree();
//! // The benchmark octrees fit the accelerator's 0.75 KB node SRAM.
//! assert!(tree.fits_hardware());
//! assert!(tree.storage_bytes() <= 768);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flat;
pub mod node;
pub mod octree;
pub mod scene;
pub mod voxel;

pub use flat::FlatOctree;
pub use node::{Node, Occupancy};
pub use octree::{Octree, TraversalStats};
pub use scene::{benchmark_scenes, Scene, SceneConfig};
pub use voxel::VoxelGrid;
