//! Property-based tests for octree construction and traversal.

use mp_geometry::{Aabb, AabbF, Vec3};
use mp_octree::{Node, Occupancy, Octree, Scene, SceneConfig};
use proptest::prelude::*;

fn any_obstacle() -> impl Strategy<Value = AabbF> {
    (
        -0.8f32..0.8,
        -0.8f32..0.8,
        -0.8f32..0.8,
        0.03f32..0.15,
        0.03f32..0.15,
        0.03f32..0.15,
    )
        .prop_map(|(x, y, z, hx, hy, hz)| Aabb::new(Vec3::new(x, y, z), Vec3::new(hx, hy, hz)))
}

fn any_obstacles() -> impl Strategy<Value = Vec<AabbF>> {
    prop::collection::vec(any_obstacle(), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The octree must over-cover the obstacles: every point inside an
    /// obstacle is inside the tree's occupied space (no false negatives).
    #[test]
    fn tree_overcovers_obstacles(obstacles in any_obstacles(), depth in 2u32..6) {
        let tree = Octree::build(&obstacles, depth);
        for o in &obstacles {
            for corner_mix in 0..8 {
                let s = |bit: usize| if corner_mix >> bit & 1 == 0 { -0.99 } else { 0.99 };
                let p = o.center + Vec3::new(s(0) * o.half.x, s(1) * o.half.y, s(2) * o.half.z);
                prop_assert!(tree.contains_point(p), "lost point {p:?} of obstacle {o:?}");
            }
        }
    }

    /// Points far from all obstacles must stay free: the leaf quantization
    /// can inflate occupancy by at most one leaf cell.
    #[test]
    fn tree_does_not_overreach_by_more_than_a_leaf(obstacles in any_obstacles(), depth in 3u32..6) {
        let tree = Octree::build(&obstacles, depth);
        let leaf = 2.0 / (1 << depth) as f32; // leaf edge length
        // Probe a fixed grid of points; any occupied probe must be within
        // one leaf diagonal of some obstacle.
        for xi in -3i32..=3 {
            for yi in -3i32..=3 {
                for zi in -3i32..=3 {
                    let p = Vec3::new(xi as f32 / 3.2, yi as f32 / 3.2, zi as f32 / 3.2);
                    if tree.contains_point(p) {
                        let near = obstacles.iter().any(|o| {
                            (o.closest_point(p) - p).length() <= leaf * 1.8
                        });
                        prop_assert!(near, "point {p:?} occupied but far from all obstacles");
                    }
                }
            }
        }
    }

    /// Node child blocks are contiguous and in-bounds, and every packed
    /// word decodes back to the node (when the tree fits the 8-bit space).
    #[test]
    fn node_layout_invariants(obstacles in any_obstacles(), depth in 2u32..5) {
        let tree = Octree::build(&obstacles, depth);
        for node in tree.nodes() {
            let addrs: Vec<u32> = (0..8).filter_map(|i| node.child_address(i)).collect();
            for (k, &a) in addrs.iter().enumerate() {
                prop_assert_eq!(a, node.child_base() + k as u32);
                prop_assert!((a as usize) < tree.node_count());
            }
        }
        if tree.fits_hardware() {
            let packed = tree.pack().unwrap();
            for (i, &w) in packed.iter().enumerate() {
                prop_assert!(w < (1 << 24));
                prop_assert_eq!(&Node::unpack(w).unwrap(), tree.node(i as u32));
            }
        }
    }

    /// An AABB query against the octree agrees with the direct
    /// obstacle-set query up to leaf quantization: obstacle-set hit implies
    /// octree hit.
    #[test]
    fn aabb_query_conservative(obstacles in any_obstacles(), q in any_obstacle()) {
        let tree = Octree::build(&obstacles, 4);
        let direct_hit = obstacles.iter().any(|o| o.overlaps(&q));
        if direct_hit {
            prop_assert!(tree.overlaps_aabb(&q));
        }
    }

    /// Decoding must be total: `Node::unpack` never panics on any 24-bit
    /// SRAM word — including reserved occupancy patterns, which must come
    /// back as a structured error (the fault-injection study corrupts
    /// words at this exact boundary).
    #[test]
    fn unpack_is_total_over_the_word_space(raw in 0u32..(1 << 24)) {
        match Node::unpack(raw) {
            Ok(node) => {
                // A decodable word re-packs to itself.
                prop_assert_eq!(node.pack().unwrap(), raw);
            }
            Err(_) => {
                // Only reserved occupancy bit pairs (0b11) are undecodable.
                let reserved = (0..8).any(|i| (raw >> (2 * i)) & 0b11 == 0b11);
                prop_assert!(reserved, "word {raw:#08x} rejected without a reserved pattern");
            }
        }
    }

    /// pack ∘ unpack is the identity on every hardware-valid node.
    #[test]
    fn pack_unpack_roundtrip(bits in prop::collection::vec(0u8..3, 8), base in 0u32..=0xFF) {
        let mut occ = [Occupancy::Empty; 8];
        for (i, &b) in bits.iter().enumerate() {
            occ[i] = Occupancy::from_bits(b).unwrap();
        }
        let node = Node::new(occ, base);
        let word = node.pack().unwrap();
        prop_assert!(word < (1 << 24));
        prop_assert_eq!(Node::unpack(word).unwrap(), node);
    }

    /// Scene generation always respects its configured invariants.
    #[test]
    fn scenes_respect_invariants(seed in 0u64..500) {
        let s = Scene::random(SceneConfig::paper(), seed);
        prop_assert!((5..=9).contains(&s.obstacles().len()));
        for o in s.obstacles() {
            prop_assert!(o.closest_point(Vec3::zero()).length() >= 0.3 - 1e-6);
            prop_assert!(o.max_corner().max_element() <= 1.0 + 1e-6);
            prop_assert!(o.min_corner().min_element() >= -1.0 - 1e-6);
        }
        // Trees over benchmark-style scenes stay within hardware budget.
        prop_assert!(s.octree().fits_hardware());
    }
}
