//! Geometric primitives and intersection kernels for the MPAccel reproduction.
//!
//! This crate implements the geometry layer of the paper *Energy-Efficient
//! Realtime Motion Planning* (ISCA '23):
//!
//! * [`Vector3`], [`Matrix3`] and [`Transform`] — linear algebra, generic
//!   over the scalar type so that the same kernels run in `f32` (software
//!   reference) and in the 16-bit fixed-point format the hardware uses
//!   ([`mp_fixed::Fx`]).
//! * [`Aabb`] and [`Obb`] — the two box primitives: axis-aligned boxes come
//!   from the environment octree, oriented boxes bound the robot's links
//!   (§4: "we use a set of oriented bounding boxes (OBB) to represent the
//!   robot").
//! * [`Sphere`] — bounding and inscribed spheres used by the cascaded
//!   early-exit filters (Fig 9).
//! * [`sat`] — the 15-axis separating-axis test between an OBB and an AABB
//!   (§2.2, Fig 5), with per-axis identifiers and multiplication counts that
//!   feed the energy model.
//! * [`cascade`] — the cascaded early-exit intersection test of Fig 10:
//!   bounding-sphere filter → inscribed-sphere filter → separating-axis
//!   stages of 6/5/4 axes.
//!
//! # Examples
//!
//! ```
//! use mp_geometry::{Aabb, Obb, Vec3};
//! use mp_geometry::cascade::{CascadeConfig, ExitStage, cascaded_obb_aabb};
//!
//! let obb = Obb::axis_aligned(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.1, 0.1, 0.1));
//! let near = Aabb::new(Vec3::new(0.05, 0.0, 0.0), Vec3::new(0.1, 0.1, 0.1));
//! let far = Aabb::new(Vec3::new(0.9, 0.9, 0.9), Vec3::new(0.05, 0.05, 0.05));
//!
//! let cfg = CascadeConfig::default();
//! assert!(cascaded_obb_aabb(&obb, &near, &cfg).colliding);
//! let miss = cascaded_obb_aabb(&obb, &far, &cfg);
//! assert!(!miss.colliding);
//! // Far-apart objects are filtered by the bounding-sphere test in one stage.
//! assert_eq!(miss.exit, ExitStage::BoundingSphere);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aabb;
pub mod cascade;
pub mod mat3;
pub mod obb;
pub mod sat;
pub mod scalar;
pub mod soa;
pub mod sphere;
pub mod transform;
pub mod vec3;

pub use aabb::Aabb;
pub use mat3::Matrix3;
pub use obb::Obb;
pub use scalar::Scalar;
pub use sphere::Sphere;
pub use transform::Transform;
pub use vec3::Vector3;

/// 3-component `f32` vector (software reference path).
pub type Vec3 = Vector3<f32>;
/// 3-component fixed-point vector (hardware path).
pub type FxVec3 = Vector3<mp_fixed::Fx>;
/// `f32` 3×3 matrix.
pub type Mat3 = Matrix3<f32>;
/// Fixed-point 3×3 matrix.
pub type FxMat3 = Matrix3<mp_fixed::Fx>;
/// `f32` AABB.
pub type AabbF = Aabb<f32>;
/// Fixed-point AABB (what the octree hardware stores: center + size, 6×16 bits).
pub type FxAabb = Aabb<mp_fixed::Fx>;
/// `f32` OBB.
pub type ObbF = Obb<f32>;
/// Fixed-point OBB (17 × 16-bit values, §5.2).
pub type FxObb = Obb<mp_fixed::Fx>;
