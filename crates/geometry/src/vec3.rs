//! 3-component vectors, generic over the scalar type.

use core::ops::{Add, AddAssign, Index, Mul, Neg, Sub, SubAssign};

use mp_fixed::Fx;

use crate::scalar::Scalar;

/// A 3-component vector over scalar type `S`.
///
/// Use the [`crate::Vec3`] (`f32`) and [`crate::FxVec3`] (fixed-point)
/// aliases in most code.
///
/// # Examples
///
/// ```
/// use mp_geometry::Vec3;
///
/// let a = Vec3::new(1.0, 2.0, 3.0);
/// let b = Vec3::new(4.0, 5.0, 6.0);
/// assert_eq!(a.dot(b), 32.0);
/// assert_eq!(a.cross(b), Vec3::new(-3.0, 6.0, -3.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Vector3<S> {
    /// X component.
    pub x: S,
    /// Y component.
    pub y: S,
    /// Z component.
    pub z: S,
}

impl<S: Scalar> Vector3<S> {
    /// Creates a vector from its components.
    #[inline]
    pub fn new(x: S, y: S, z: S) -> Vector3<S> {
        Vector3 { x, y, z }
    }

    /// The zero vector.
    #[inline]
    pub fn zero() -> Vector3<S> {
        Vector3::new(S::zero(), S::zero(), S::zero())
    }

    /// A vector with all three components equal to `v`.
    #[inline]
    pub fn splat(v: S) -> Vector3<S> {
        Vector3::new(v, v, v)
    }

    /// The `i`-th standard basis vector.
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    #[inline]
    pub fn basis(i: usize) -> Vector3<S> {
        assert!(i < 3, "Vector3 basis index out of range: {i}");
        let mut v = Vector3::zero();
        match i {
            0 => v.x = S::one(),
            1 => v.y = S::one(),
            _ => v.z = S::one(),
        }
        v
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vector3<S>) -> S {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vector3<S>) -> Vector3<S> {
        Vector3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vector3<S> {
        Vector3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vector3<S>) -> Vector3<S> {
        Vector3::new(
            self.x.min_val(rhs.x),
            self.y.min_val(rhs.y),
            self.z.min_val(rhs.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vector3<S>) -> Vector3<S> {
        Vector3::new(
            self.x.max_val(rhs.x),
            self.y.max_val(rhs.y),
            self.z.max_val(rhs.z),
        )
    }

    /// The smallest component.
    #[inline]
    pub fn min_element(self) -> S {
        self.x.min_val(self.y).min_val(self.z)
    }

    /// The largest component.
    #[inline]
    pub fn max_element(self) -> S {
        self.x.max_val(self.y).max_val(self.z)
    }

    /// Component-wise multiplication (Hadamard product).
    #[inline]
    pub fn mul_elementwise(self, rhs: Vector3<S>) -> Vector3<S> {
        Vector3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Scales by a scalar.
    #[inline]
    pub fn scale(self, s: S) -> Vector3<S> {
        Vector3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [S; 3] {
        [self.x, self.y, self.z]
    }

    /// Converts every component to `f32`.
    #[inline]
    pub fn to_f32(self) -> Vector3<f32> {
        Vector3::new(self.x.to_f32(), self.y.to_f32(), self.z.to_f32())
    }
}

impl Vector3<f32> {
    /// Squared Euclidean length.
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.length_squared().sqrt()
    }

    /// Euclidean distance to `rhs`.
    #[inline]
    pub fn distance(self, rhs: Vector3<f32>) -> f32 {
        (self - rhs).length()
    }

    /// Returns the unit vector in this direction, or `None` for (near-)zero
    /// vectors.
    #[inline]
    pub fn normalized(self) -> Option<Vector3<f32>> {
        let len = self.length();
        if len <= 1e-12 {
            None
        } else {
            Some(self.scale(1.0 / len))
        }
    }

    /// Linear interpolation: `self + t * (rhs - self)`.
    #[inline]
    pub fn lerp(self, rhs: Vector3<f32>, t: f32) -> Vector3<f32> {
        self + (rhs - self).scale(t)
    }

    /// Quantizes to the fixed-point representation used by the hardware.
    #[inline]
    pub fn quantize(self) -> Vector3<Fx> {
        Vector3::new(
            Fx::from_f32(self.x),
            Fx::from_f32(self.y),
            Fx::from_f32(self.z),
        )
    }
}

impl Vector3<Fx> {
    /// Widens back to `f32` (exact).
    #[inline]
    pub fn dequantize(self) -> Vector3<f32> {
        self.to_f32()
    }
}

impl<S: Scalar> From<[S; 3]> for Vector3<S> {
    #[inline]
    fn from(a: [S; 3]) -> Vector3<S> {
        Vector3::new(a[0], a[1], a[2])
    }
}

impl<S: Scalar> Add for Vector3<S> {
    type Output = Vector3<S>;
    #[inline]
    fn add(self, rhs: Vector3<S>) -> Vector3<S> {
        Vector3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl<S: Scalar> AddAssign for Vector3<S> {
    #[inline]
    fn add_assign(&mut self, rhs: Vector3<S>) {
        *self = *self + rhs;
    }
}

impl<S: Scalar> Sub for Vector3<S> {
    type Output = Vector3<S>;
    #[inline]
    fn sub(self, rhs: Vector3<S>) -> Vector3<S> {
        Vector3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl<S: Scalar> SubAssign for Vector3<S> {
    #[inline]
    fn sub_assign(&mut self, rhs: Vector3<S>) {
        *self = *self - rhs;
    }
}

impl<S: Scalar> Neg for Vector3<S> {
    type Output = Vector3<S>;
    #[inline]
    fn neg(self) -> Vector3<S> {
        Vector3::new(-self.x, -self.y, -self.z)
    }
}

impl<S: Scalar> Mul<S> for Vector3<S> {
    type Output = Vector3<S>;
    #[inline]
    fn mul(self, s: S) -> Vector3<S> {
        self.scale(s)
    }
}

impl<S> Index<usize> for Vector3<S> {
    type Output = S;
    /// Indexes components 0 (x), 1 (y), 2 (z).
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    #[inline]
    fn index(&self, i: usize) -> &S {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vector3 index out of range: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Vec3;

    #[test]
    fn construction_and_zero() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::zero().length(), 0.0);
        assert_eq!(Vec3::splat(2.0), Vec3::new(2.0, 2.0, 2.0));
    }

    #[test]
    fn basis_vectors() {
        assert_eq!(Vec3::basis(0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(Vec3::basis(1), Vec3::new(0.0, 1.0, 0.0));
        assert_eq!(Vec3::basis(2), Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = Vec3::basis(3);
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::basis(0);
        let y = Vec3::basis(1);
        let z = Vec3::basis(2);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.dot(x), 1.0);
    }

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(0.5, 0.5, 0.5);
        assert_eq!(a + b, Vec3::new(1.5, 2.5, 3.5));
        assert_eq!(a - b, Vec3::new(0.5, 1.5, 2.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a.mul_elementwise(b), Vec3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn length_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        let n = v.normalized().unwrap();
        assert!((n.length() - 1.0).abs() < 1e-6);
        assert_eq!(Vec3::zero().normalized(), None);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(1.0, 2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(0.5, 1.0, 2.0));
    }

    #[test]
    fn min_max_elementwise() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
        assert_eq!(a.min_element(), 1.0);
        assert_eq!(a.max_element(), 5.0);
    }

    #[test]
    fn quantize_dequantize() {
        let v = Vec3::new(0.5, -0.25, 0.125);
        assert_eq!(v.quantize().dequantize(), v);
    }

    #[test]
    fn index_access() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }

    #[test]
    fn fixed_point_vector_ops() {
        use mp_fixed::Fx;
        let a = Vec3::new(0.5, 0.25, -0.5).quantize();
        let b = Vec3::new(0.5, 0.5, 0.5).quantize();
        assert_eq!(a.dot(b), Fx::from_f32(0.125));
        let s = a + b;
        assert_eq!(s.to_f32(), Vec3::new(1.0, 0.75, 0.0));
    }
}
