//! Rigid transforms (rotation + translation) used by the kinematics chain.

use crate::mat3::Matrix3;
use crate::vec3::Vector3;

/// A rigid transform: rotation followed by translation, `p' = R p + t`.
///
/// This is the `f32` software representation of the 4×4 homogeneous
/// transformation matrices the OBB Generation Unit computes (§5.2, Fig 14a);
/// the bottom row of the homogeneous matrix is constant so only `R` and `t`
/// are stored.
///
/// # Examples
///
/// ```
/// use mp_geometry::{Mat3, Transform, Vec3};
///
/// let t = Transform::new(Mat3::rotation_z(std::f32::consts::FRAC_PI_2),
///                        Vec3::new(1.0, 0.0, 0.0));
/// let p = t.apply(Vec3::new(1.0, 0.0, 0.0));
/// assert!((p - Vec3::new(1.0, 1.0, 0.0)).length() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transform {
    /// Rotation part (columns are the transformed frame's axes).
    pub rotation: Matrix3<f32>,
    /// Translation part.
    pub translation: Vector3<f32>,
}

impl Transform {
    /// Creates a transform from rotation and translation.
    #[inline]
    pub fn new(rotation: Matrix3<f32>, translation: Vector3<f32>) -> Transform {
        Transform {
            rotation,
            translation,
        }
    }

    /// The identity transform.
    #[inline]
    pub fn identity() -> Transform {
        Transform::new(Matrix3::identity(), Vector3::zero())
    }

    /// A pure translation.
    #[inline]
    pub fn translation(t: Vector3<f32>) -> Transform {
        Transform::new(Matrix3::identity(), t)
    }

    /// A pure rotation.
    #[inline]
    pub fn rotation(r: Matrix3<f32>) -> Transform {
        Transform::new(r, Vector3::zero())
    }

    /// Applies the transform to a point.
    #[inline]
    pub fn apply(&self, p: Vector3<f32>) -> Vector3<f32> {
        self.rotation * p + self.translation
    }

    /// Applies only the rotation (for direction vectors).
    #[inline]
    pub fn apply_vector(&self, v: Vector3<f32>) -> Vector3<f32> {
        self.rotation * v
    }

    /// Composition: `(self ∘ rhs)(p) = self(rhs(p))`.
    #[inline]
    pub fn compose(&self, rhs: &Transform) -> Transform {
        Transform::new(
            self.rotation * rhs.rotation,
            self.rotation * rhs.translation + self.translation,
        )
    }

    /// The inverse transform (assumes `rotation` is orthonormal).
    #[inline]
    pub fn inverse(&self) -> Transform {
        let rt = self.rotation.transpose();
        Transform::new(rt, -(rt * self.translation))
    }
}

impl Default for Transform {
    fn default() -> Transform {
        Transform::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mat3, Vec3};
    use core::f32::consts::FRAC_PI_2;

    fn close(a: Vec3, b: Vec3) -> bool {
        (a - b).length() < 1e-5
    }

    #[test]
    fn identity_leaves_points() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Transform::identity().apply(p), p);
        assert_eq!(Transform::default().apply(p), p);
    }

    #[test]
    fn translation_only() {
        let t = Transform::translation(Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(t.apply(Vec3::zero()), Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(t.apply_vector(Vec3::basis(0)), Vec3::basis(0));
    }

    #[test]
    fn rotation_then_translation_order() {
        let t = Transform::new(Mat3::rotation_z(FRAC_PI_2), Vec3::new(5.0, 0.0, 0.0));
        // Rotation happens before translation.
        assert!(close(t.apply(Vec3::basis(0)), Vec3::new(5.0, 1.0, 0.0)));
    }

    #[test]
    fn compose_matches_sequential_application() {
        let a = Transform::new(Mat3::rotation_x(0.4), Vec3::new(0.1, 0.2, 0.3));
        let b = Transform::new(Mat3::rotation_z(-0.9), Vec3::new(-0.5, 0.0, 0.7));
        let p = Vec3::new(0.3, -0.6, 0.9);
        assert!(close(a.compose(&b).apply(p), a.apply(b.apply(p))));
    }

    #[test]
    fn inverse_undoes_transform() {
        let t = Transform::new(
            Mat3::rotation_y(1.1) * Mat3::rotation_x(-0.6),
            Vec3::new(0.4, -0.2, 0.9),
        );
        let p = Vec3::new(-0.7, 0.5, 0.1);
        assert!(close(t.inverse().apply(t.apply(p)), p));
        assert!(close(t.compose(&t.inverse()).apply(p), p));
    }
}
