//! Structure-of-arrays batch kernels: one OBB against N AABBs.
//!
//! The scalar kernels in [`crate::sat`] and [`crate::cascade`] test one
//! OBB–AABB pair at a time. The paper's CECDU instead exploits
//! *intra*-collision-detection parallelism — many separating axes and many
//! voxels evaluated concurrently (§4, Fig 9–10). This module is the software
//! analogue: candidate AABBs live in an [`AabbSoa`] (each coordinate in its
//! own contiguous array) and the kernels sweep one axis of arithmetic across
//! all lanes as flat array loops the autovectorizer can widen into SIMD.
//!
//! Every batch kernel is **bit-identical, lane for lane, to its scalar
//! counterpart** — same verdict, same first separating axis, same
//! multiplication count. The cycle-level hardware models and the benchmark
//! engine's replay memoization depend on those outputs exactly, so the batch
//! path only hoists *lane-invariant* OBB-side expressions (identical
//! operands and operation order give identical IEEE-754 and fixed-point
//! results) and never reorders per-lane arithmetic.
//!
//! With the `simd` feature (on by default) the `f32` lane loops run through
//! an explicitly width-blocked path (fixed 8-lane chunks, see
//! [`wide`](self::wide)) instead of relying on the autovectorizer's
//! judgement; results are identical either way. The blocked path sits
//! behind a runtime width switch ([`wide::dispatch_width`]) so a build can
//! fall back to the generic sweep without recompiling; compiling with
//! `--no-default-features` removes the blocked path entirely.

use core::ops::Range;

use crate::aabb::Aabb;
use crate::cascade::{CascadeConfig, CascadeOutcome, ExitStage};
use crate::obb::Obb;
use crate::sat::{range_mult_count, AxisId, SatResult};
use crate::scalar::Scalar;
use crate::sphere::SPHERE_AABB_MULS;
use crate::vec3::Vector3;

/// A batch of AABBs in structure-of-arrays layout (center + half-extents,
/// matching the hardware's center+size octant representation of §5.2 and the
/// scalar [`Aabb`]).
///
/// Each component is a plain `Vec<S>`, so a lane range is a dense,
/// contiguous scalar array the autovectorizer can widen directly (`Fx` is
/// `#[repr(transparent)]` over `i16`, making its lanes dense `i16` arrays).
///
/// # Examples
///
/// ```
/// use mp_geometry::soa::AabbSoa;
/// use mp_geometry::{Aabb, Vec3};
///
/// let mut soa = AabbSoa::new();
/// soa.push(&Aabb::new(Vec3::zero(), Vec3::splat(0.5)));
/// assert_eq!(soa.len(), 1);
/// assert_eq!(soa.get(0).half, Vec3::splat(0.5));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AabbSoa<S> {
    cx: Vec<S>,
    cy: Vec<S>,
    cz: Vec<S>,
    hx: Vec<S>,
    hy: Vec<S>,
    hz: Vec<S>,
}

impl<S: Scalar> AabbSoa<S> {
    /// An empty batch.
    pub fn new() -> AabbSoa<S> {
        AabbSoa {
            cx: Vec::new(),
            cy: Vec::new(),
            cz: Vec::new(),
            hx: Vec::new(),
            hy: Vec::new(),
            hz: Vec::new(),
        }
    }

    /// An empty batch with room for `n` boxes per coordinate array.
    pub fn with_capacity(n: usize) -> AabbSoa<S> {
        AabbSoa {
            cx: Vec::with_capacity(n),
            cy: Vec::with_capacity(n),
            cz: Vec::with_capacity(n),
            hx: Vec::with_capacity(n),
            hy: Vec::with_capacity(n),
            hz: Vec::with_capacity(n),
        }
    }

    /// Number of boxes in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.cx.len()
    }

    /// Whether the batch is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cx.is_empty()
    }

    /// Removes all boxes (capacity is kept).
    #[inline]
    pub fn clear(&mut self) {
        self.cx.clear();
        self.cy.clear();
        self.cz.clear();
        self.hx.clear();
        self.hy.clear();
        self.hz.clear();
    }

    /// Appends a box.
    #[inline]
    pub fn push(&mut self, aabb: &Aabb<S>) {
        self.cx.push(aabb.center.x);
        self.cy.push(aabb.center.y);
        self.cz.push(aabb.center.z);
        self.hx.push(aabb.half.x);
        self.hy.push(aabb.half.y);
        self.hz.push(aabb.half.z);
    }

    /// Reconstructs box `i` in array-of-structs form.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Aabb<S> {
        Aabb {
            center: Vector3::new(self.cx[i], self.cy[i], self.cz[i]),
            half: Vector3::new(self.hx[i], self.hy[i], self.hz[i]),
        }
    }

    /// Borrows the six coordinate lane arrays `[cx, cy, cz, hx, hy, hz]`
    /// directly. This is the zero-copy entry point for fused traversals
    /// (e.g. the collision checker's per-link walk) that index entries out
    /// of a shared batch instead of going through a kernel call per node.
    #[inline]
    pub fn coord_lanes(&self) -> [&[S]; 6] {
        [&self.cx, &self.cy, &self.cz, &self.hx, &self.hy, &self.hz]
    }
}

/// Lane-invariant OBB-side constants of the 15 axis tests, hoisted once per
/// batch. Every value is produced by exactly the scalar kernel's expression
/// on exactly the scalar kernel's operands, so per-lane results stay
/// bit-identical to [`crate::sat::test_axis`].
#[doc(hidden)]
#[derive(Clone, Copy, Debug)]
pub struct SatConsts<S> {
    /// `r.at(i, j)` — the OBB rotation entries.
    pub r: [[S; 3]; 3],
    /// `r.at(i, j).abs()`.
    pub abs_r: [[S; 3]; 3],
    /// `r.at(i, j).abs() + eps` — the cross-axis robustness guard.
    pub eps_r: [[S; 3]; 3],
    /// Axis 1–3 OBB radius: `a.x*|r(i,0)| + a.y*|r(i,1)| + a.z*|r(i,2)|`.
    pub rb_face: [S; 3],
    /// OBB half extents `a` (axis 4–6 radius is `a[j]`).
    pub a: [S; 3],
    /// Axis 7–15 OBB radius: `a[j1]*(|r(i,j2)|+eps) + a[j2]*(|r(i,j1)|+eps)`.
    pub rb_cross: [S; 9],
}

impl<S: Scalar> SatConsts<S> {
    /// Hoists the OBB-side constants.
    pub fn new(obb: &Obb<S>) -> SatConsts<S> {
        let a = obb.half;
        let rm = &obb.rotation;
        let eps = S::epsilon();
        let mut r = [[S::zero(); 3]; 3];
        let mut abs_r = [[S::zero(); 3]; 3];
        let mut eps_r = [[S::zero(); 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                r[i][j] = rm.at(i, j);
                abs_r[i][j] = rm.at(i, j).abs();
                eps_r[i][j] = rm.at(i, j).abs() + eps;
            }
        }
        let mut rb_face = [S::zero(); 3];
        for (i, rb) in rb_face.iter_mut().enumerate() {
            *rb = a.x * rm.at(i, 0).abs() + a.y * rm.at(i, 1).abs() + a.z * rm.at(i, 2).abs();
        }
        let mut rb_cross = [S::zero(); 9];
        for (k, rb) in rb_cross.iter_mut().enumerate() {
            let i = k / 3;
            let j = k % 3;
            let j1 = (j + 1) % 3;
            let j2 = (j + 2) % 3;
            *rb = a[j1] * (rm.at(i, j2).abs() + eps) + a[j2] * (rm.at(i, j1).abs() + eps);
        }
        SatConsts {
            r,
            abs_r,
            eps_r,
            rb_face,
            a: [a.x, a.y, a.z],
            rb_cross,
        }
    }
}

/// Reusable lane buffers for the batch kernels. One instance per checker /
/// traversal keeps the hot path allocation-free.
#[derive(Clone, Debug, Default)]
pub struct CascadeBatchScratch<S> {
    tx: Vec<S>,
    ty: Vec<S>,
    tz: Vec<S>,
    bs_hit: Vec<bool>,
    ins_hit: Vec<bool>,
    first: Vec<u8>,
}

fn resize_fill<T: Copy>(v: &mut Vec<T>, n: usize, fill: T) {
    v.clear();
    v.resize(n, fill);
}

/// Generic per-lane sphere–AABB pass: `out[l]` is the verdict of the scalar
/// [`crate::sphere::sphere_aabb_overlap`] for lane `l`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sphere_lanes_generic<S: Scalar>(
    p: Vector3<S>,
    r2: S,
    cx: &[S],
    cy: &[S],
    cz: &[S],
    hx: &[S],
    hy: &[S],
    hz: &[S],
    out: &mut [bool],
) {
    // Zipped iteration instead of indexing: one length check per slice up
    // front, no per-lane bounds checks inside the sweep.
    let n = out.len();
    let lanes = cx[..n]
        .iter()
        .zip(&cy[..n])
        .zip(&cz[..n])
        .zip(&hx[..n])
        .zip(&hy[..n])
        .zip(&hz[..n]);
    for (o, (((((&cx, &cy), &cz), &hx), &hy), &hz)) in out.iter_mut().zip(lanes) {
        // Scalar reference: closest = p.max(min_corner).min(max_corner);
        // d = closest - p; d.dot(d) <= r*r — identical per-component ops.
        let qx = p.x.max_val(cx - hx).min_val(cx + hx);
        let qy = p.y.max_val(cy - hy).min_val(cy + hy);
        let qz = p.z.max_val(cz - hz).min_val(cz + hz);
        let dx = qx - p.x;
        let dy = qy - p.y;
        let dz = qz - p.z;
        let dist2 = dx * dx + dy * dy + dz * dz;
        *o = dist2 <= r2;
    }
}

/// Generic per-lane evaluation of one SAT axis: where lane `l` has no
/// recorded separating axis yet (`first[l] == 0`) and axis `raw` separates,
/// records `first[l] = raw`. Identical inequality and operand order as
/// [`crate::sat::test_axis`].
pub(crate) fn sat_axis_lanes_generic<S: Scalar>(
    raw: u8,
    c: &SatConsts<S>,
    ts: [&[S]; 3],
    bs: [&[S]; 3],
    first: &mut [u8],
) {
    let n = first.len();
    match raw {
        i @ 1..=3 => {
            let i = (i - 1) as usize;
            let (t_i, b_i, rb) = (ts[i], bs[i], c.rb_face[i]);
            for l in 0..n {
                if first[l] == 0 && t_i[l].abs() > b_i[l] + rb {
                    first[l] = raw;
                }
            }
        }
        j @ 4..=6 => {
            let j = (j - 4) as usize;
            let (r0, r1, r2) = (c.r[0][j], c.r[1][j], c.r[2][j]);
            let (a0, a1, a2) = (c.abs_r[0][j], c.abs_r[1][j], c.abs_r[2][j]);
            let rb = c.a[j];
            let (tx, ty, tz) = (ts[0], ts[1], ts[2]);
            let (bx, by, bz) = (bs[0], bs[1], bs[2]);
            for l in 0..n {
                let dist = (tx[l] * r0 + ty[l] * r1 + tz[l] * r2).abs();
                let ra = bx[l] * a0 + by[l] * a1 + bz[l] * a2;
                if first[l] == 0 && dist > ra + rb {
                    first[l] = raw;
                }
            }
        }
        k => {
            let k = (k - 7) as usize;
            let i = k / 3;
            let j = k % 3;
            let i1 = (i + 1) % 3;
            let i2 = (i + 2) % 3;
            let (ea, eb) = (c.eps_r[i2][j], c.eps_r[i1][j]);
            let (ra_hi, ra_lo) = (c.r[i1][j], c.r[i2][j]);
            let rb = c.rb_cross[k];
            let (t1, t2) = (ts[i1], ts[i2]);
            let (b1, b2) = (bs[i1], bs[i2]);
            for l in 0..n {
                let ra = b1[l] * ea + b2[l] * eb;
                let dist = (t2[l] * ra_hi - t1[l] * ra_lo).abs();
                if first[l] == 0 && dist > ra + rb {
                    first[l] = raw;
                }
            }
        }
    }
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn sphere_lanes<S: Scalar>(
    p: Vector3<S>,
    r2: S,
    cx: &[S],
    cy: &[S],
    cz: &[S],
    hx: &[S],
    hy: &[S],
    hz: &[S],
    out: &mut [bool],
) {
    S::soa_sphere_lanes(p, r2, cx, cy, cz, hx, hy, hz, out);
}

/// Single-lane form of [`sat_axis_lanes_generic`]: does axis `raw` separate
/// the pair with translation `t` and AABB half extents `b`? Same expressions
/// and operand order as [`crate::sat::test_axis`].
#[inline]
fn sat_axis_lane<S: Scalar>(raw: u8, c: &SatConsts<S>, t: [S; 3], b: [S; 3]) -> bool {
    match raw {
        i @ 1..=3 => {
            let i = (i - 1) as usize;
            t[i].abs() > b[i] + c.rb_face[i]
        }
        j @ 4..=6 => {
            let j = (j - 4) as usize;
            let dist = (t[0] * c.r[0][j] + t[1] * c.r[1][j] + t[2] * c.r[2][j]).abs();
            let ra = b[0] * c.abs_r[0][j] + b[1] * c.abs_r[1][j] + b[2] * c.abs_r[2][j];
            dist > ra + c.a[j]
        }
        k => {
            let k = (k - 7) as usize;
            let i = k / 3;
            let j = k % 3;
            let i1 = (i + 1) % 3;
            let i2 = (i + 2) % 3;
            let ra = b[i1] * c.eps_r[i2][j] + b[i2] * c.eps_r[i1][j];
            let dist = (t[i2] * c.r[i1][j] - t[i1] * c.r[i2][j]).abs();
            dist > ra + c.rb_cross[k]
        }
    }
}

/// One OBB–AABB overlap test with the OBB-side constants hoisted: sweeps
/// the 15 axes in [`crate::sat::AxisId`] order and reports whether none
/// separates. The verdict is bit-identical to [`crate::sat::overlaps`];
/// callers testing many AABBs against one OBB (voxel rasterization, broad
/// sweeps) build the consts once instead of re-deriving them per pair.
#[inline]
pub fn sat_overlaps_hoisted<S: Scalar>(
    consts: &SatConsts<S>,
    center: Vector3<S>,
    aabb: &Aabb<S>,
) -> bool {
    let t = [
        center.x - aabb.center.x,
        center.y - aabb.center.y,
        center.z - aabb.center.z,
    ];
    let b = [aabb.half.x, aabb.half.y, aabb.half.z];
    !(1..=15u8).any(|raw| sat_axis_lane(raw, consts, t, b))
}

#[inline]
fn sat_axis_lanes<S: Scalar>(
    raw: u8,
    c: &SatConsts<S>,
    ts: [&[S]; 3],
    bs: [&[S]; 3],
    first: &mut [u8],
) {
    S::soa_sat_axis_lanes(raw, c, ts, bs, first);
}

/// Validates and borrows the six coordinate slices of `range`.
#[allow(clippy::type_complexity)]
fn lanes<'a, S: Scalar>(
    aabbs: &'a AabbSoa<S>,
    range: &Range<usize>,
) -> (&'a [S], &'a [S], &'a [S], &'a [S], &'a [S], &'a [S]) {
    assert!(
        range.start <= range.end && range.end <= aabbs.len(),
        "lane range {range:?} out of bounds for batch of {}",
        aabbs.len()
    );
    (
        &aabbs.cx[range.clone()],
        &aabbs.cy[range.clone()],
        &aabbs.cz[range.clone()],
        &aabbs.hx[range.clone()],
        &aabbs.hy[range.clone()],
        &aabbs.hz[range.clone()],
    )
}

/// Batched sphere–AABB overlap: one sphere (`center`, `radius`) against the
/// AABB lanes `range` of the batch. `out[l]` is bit-identical to the scalar
/// [`crate::sphere::sphere_aabb_overlap`] on lane `range.start + l` — this
/// is the cascade's filter primitive (Fig 9) swept across lanes.
///
/// # Panics
///
/// Panics if `range` exceeds the batch.
pub fn sphere_aabb_batch_soa<S: Scalar>(
    center: Vector3<S>,
    radius: S,
    aabbs: &AabbSoa<S>,
    range: Range<usize>,
    out: &mut Vec<bool>,
) {
    let (cx, cy, cz, hx, hy, hz) = lanes(aabbs, &range);
    resize_fill(out, range.len(), false);
    let r2 = radius * radius;
    sphere_lanes(center, r2, cx, cy, cz, hx, hy, hz, out);
}

/// Batched staged SAT: one OBB against the AABB lanes `range`, testing the
/// contiguous axis range `start..start + len` (1-based ids). `out[l]` is
/// bit-identical to [`crate::sat::sat_batch_range`] on lane
/// `range.start + l`: same first separating axis, same `axes_tested`, same
/// multiplication count.
///
/// # Panics
///
/// Panics if `range` exceeds the batch or the axis range leaves `1..=15`.
pub fn sat_batch_soa<S: Scalar>(
    obb: &Obb<S>,
    aabbs: &AabbSoa<S>,
    range: Range<usize>,
    start: u8,
    len: u8,
    scratch: &mut CascadeBatchScratch<S>,
    out: &mut Vec<SatResult>,
) {
    assert!(
        start >= 1 && len >= 1 && start + len - 1 <= 15,
        "axis range {start}+{len} out of 1..=15"
    );
    let (cx, cy, cz, hx, hy, hz) = lanes(aabbs, &range);
    let n = range.len();
    out.clear();
    if n == 0 {
        return;
    }
    fill_translations(obb, cx, cy, cz, scratch, n);
    let consts = SatConsts::new(obb);
    resize_fill(&mut scratch.first, n, 0);
    for raw in start..start + len {
        sat_axis_lanes(
            raw,
            &consts,
            [&scratch.tx, &scratch.ty, &scratch.tz],
            [hx, hy, hz],
            &mut scratch.first,
        );
    }
    let mults = range_mult_count(start, len);
    out.extend(scratch.first.iter().map(|&f| SatResult {
        separating: (f != 0).then(|| AxisId::new(f)),
        axes_tested: len as u32,
        mults,
    }));
}

/// Per-lane `t = obb.center - aabb.center` (the translation every axis test
/// starts from), identical to the scalar kernel's subtraction.
fn fill_translations<S: Scalar>(
    obb: &Obb<S>,
    cx: &[S],
    cy: &[S],
    cz: &[S],
    scratch: &mut CascadeBatchScratch<S>,
    n: usize,
) {
    resize_fill(&mut scratch.tx, n, S::zero());
    resize_fill(&mut scratch.ty, n, S::zero());
    resize_fill(&mut scratch.tz, n, S::zero());
    let p = obb.center;
    for l in 0..n {
        scratch.tx[l] = p.x - cx[l];
        scratch.ty[l] = p.y - cy[l];
        scratch.tz[l] = p.z - cz[l];
    }
}

/// Batched cascaded intersection test (Fig 10): one OBB against the AABB
/// lanes `range`. `out[l]` is bit-identical to the scalar
/// [`crate::cascade::cascaded_obb_aabb`] on lane `range.start + l` —
/// verdict, exit stage, separating axis, multiplication count and stages
/// executed all match exactly.
///
/// The sphere filters run lane-parallel — in the benchmark traversals they
/// resolve the overwhelming majority of lanes (Fig 8: >96 % of separating
/// exits are caught by the bounding-sphere test), so the batch does the bulk
/// of its arithmetic in the SIMD-width sweeps. Lanes neither filter decides
/// fall back to the scalar cascade, which re-runs the two sphere tests
/// (deterministic arithmetic on identical operands — they conclude exactly
/// as the sweeps did) and continues into the SAT stages with early exit,
/// never paying for axes a resolved lane would have skipped.
///
/// # Panics
///
/// Panics if `range` exceeds the batch.
pub fn cascade_batch_soa<S: Scalar>(
    obb: &Obb<S>,
    cfg: &CascadeConfig,
    aabbs: &AabbSoa<S>,
    range: Range<usize>,
    scratch: &mut CascadeBatchScratch<S>,
    out: &mut Vec<CascadeOutcome>,
) {
    let (cx, cy, cz, hx, hy, hz) = lanes(aabbs, &range);
    let n = range.len();
    out.clear();
    if n == 0 {
        return;
    }

    // Stage 1: bounding-sphere sweep across every lane.
    let mut survivors = n;
    if cfg.bounding_sphere_filter {
        resize_fill(&mut scratch.bs_hit, n, false);
        let r2 = obb.bounding_radius * obb.bounding_radius;
        sphere_lanes(obb.center, r2, cx, cy, cz, hx, hy, hz, &mut scratch.bs_hit);
        survivors = scratch.bs_hit.iter().filter(|&&hit| hit).count();
    }
    // Stage 2: inscribed-sphere sweep, skipped when stage 1 already cleared
    // the whole batch.
    if cfg.inscribed_sphere_filter && survivors > 0 {
        resize_fill(&mut scratch.ins_hit, n, false);
        let r2 = obb.inscribed_radius * obb.inscribed_radius;
        sphere_lanes(obb.center, r2, cx, cy, cz, hx, hy, hz, &mut scratch.ins_hit);
    }

    // Resolve: sphere-decided lanes replay the scalar cascade's control
    // flow as pure flag logic; undecided lanes run the SAT stages with the
    // OBB-side constants hoisted once per batch, early-exiting a stage at
    // its first separating axis (the outcome only records that first axis
    // and the stage's fixed multiplication count, so the skipped axes are
    // unobservable).
    let mut consts: Option<SatConsts<S>> = None;
    let sphere_stage = u32::from(cfg.bounding_sphere_filter || cfg.inscribed_sphere_filter);
    let sphere_mults = (u32::from(cfg.bounding_sphere_filter)
        + u32::from(cfg.inscribed_sphere_filter))
        * SPHERE_AABB_MULS;
    for l in 0..n {
        if cfg.bounding_sphere_filter && !scratch.bs_hit[l] {
            // Bounding sphere *misses* the box => provably free.
            out.push(CascadeOutcome {
                colliding: false,
                exit: ExitStage::BoundingSphere,
                separating_axis: None,
                mults: SPHERE_AABB_MULS,
                stages_executed: 1,
            });
            continue;
        }
        if cfg.inscribed_sphere_filter && scratch.ins_hit[l] {
            let mut mults = SPHERE_AABB_MULS;
            if cfg.bounding_sphere_filter {
                mults += SPHERE_AABB_MULS;
            }
            out.push(CascadeOutcome {
                colliding: true,
                exit: ExitStage::InscribedSphere,
                separating_axis: None,
                mults,
                stages_executed: 1,
            });
            continue;
        }
        let c = consts.get_or_insert_with(|| SatConsts::new(obb));
        let p = obb.center;
        let t = [p.x - cx[l], p.y - cy[l], p.z - cz[l]];
        let b = [hx[l], hy[l], hz[l]];
        let mut mults = sphere_mults;
        let mut stages = sphere_stage;
        let mut resolved = false;
        for k in 0..3 {
            let (start, len) = cfg.split.stage_range(k);
            mults += range_mult_count(start, len);
            stages += 1;
            if let Some(raw) = (start..start + len).find(|&raw| sat_axis_lane(raw, c, t, b)) {
                out.push(CascadeOutcome {
                    colliding: false,
                    exit: ExitStage::Sat(k as u8 + 1),
                    separating_axis: Some(AxisId::new(raw)),
                    mults,
                    stages_executed: stages,
                });
                resolved = true;
                break;
            }
        }
        if !resolved {
            out.push(CascadeOutcome {
                colliding: true,
                exit: ExitStage::Exhausted,
                separating_axis: None,
                mults,
                stages_executed: stages,
            });
        }
    }
}

/// One OBB's cascade state hoisted for a whole traversal (or a whole rake
/// of traversals): the sphere radii are squared once, and the SAT constants
/// are derived lazily on the first lane that reaches the SAT stages — then
/// reused for every subsequent lane instead of being rebuilt per node the
/// way [`cascade_batch_soa`] has to when called once per octree node.
///
/// [`HoistedCascade::outcome`] is **bit-identical** to the scalar
/// [`crate::cascade::cascaded_obb_aabb`] (and therefore to
/// [`cascade_batch_soa`]) on the same pair: same verdict, exit stage, first
/// separating axis, multiplication count and stages executed. It is the
/// per-lane kernel of the rake-style motion validator: one instance per
/// (pose, link) OBB, driven across every entry its octree walk touches.
///
/// # Examples
///
/// ```
/// use mp_geometry::cascade::{cascaded_obb_aabb, CascadeConfig};
/// use mp_geometry::soa::HoistedCascade;
/// use mp_geometry::{Aabb, Mat3, Obb, Vec3};
///
/// let obb = Obb::new(Vec3::zero(), Vec3::splat(0.1), Mat3::rotation_z(0.3));
/// let aabb = Aabb::new(Vec3::new(0.2, 0.0, 0.0), Vec3::splat(0.1));
/// let cfg = CascadeConfig::proposed();
/// let mut hoisted = HoistedCascade::new(&obb, &cfg);
/// assert_eq!(
///     hoisted.outcome(aabb.center.x, aabb.center.y, aabb.center.z,
///                     aabb.half.x, aabb.half.y, aabb.half.z),
///     cascaded_obb_aabb(&obb, &aabb, &cfg),
/// );
/// ```
#[derive(Clone, Debug)]
pub struct HoistedCascade<S: Scalar> {
    obb: Obb<S>,
    cfg: CascadeConfig,
    br2: S,
    ir2: S,
    sphere_stage: u32,
    sphere_mults: u32,
    consts: Option<SatConsts<S>>,
}

impl<S: Scalar> HoistedCascade<S> {
    /// Hoists the per-OBB state (squared radii; SAT constants stay lazy,
    /// exactly as in the scalar cascade, so sphere-resolved traversals
    /// never pay for them).
    pub fn new(obb: &Obb<S>, cfg: &CascadeConfig) -> HoistedCascade<S> {
        HoistedCascade {
            obb: *obb,
            cfg: *cfg,
            br2: obb.bounding_radius * obb.bounding_radius,
            ir2: obb.inscribed_radius * obb.inscribed_radius,
            sphere_stage: u32::from(cfg.bounding_sphere_filter || cfg.inscribed_sphere_filter),
            sphere_mults: (u32::from(cfg.bounding_sphere_filter)
                + u32::from(cfg.inscribed_sphere_filter))
                * SPHERE_AABB_MULS,
            consts: None,
        }
    }

    /// Squared distance from the OBB centre to the box `(c, h)` — the
    /// shared quantity both sphere filters compare against their squared
    /// radius; per-component arithmetic identical to the scalar
    /// [`crate::sphere::sphere_aabb_overlap`].
    #[inline]
    fn sphere_d2(&self, cx: S, cy: S, cz: S, hx: S, hy: S, hz: S) -> S {
        let p = self.obb.center;
        let qx = p.x.max_val(cx - hx).min_val(cx + hx);
        let qy = p.y.max_val(cy - hy).min_val(cy + hy);
        let qz = p.z.max_val(cz - hz).min_val(cz + hz);
        let dx = qx - p.x;
        let dy = qy - p.y;
        let dz = qz - p.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Runs the cascade against one AABB given as raw center/half lanes
    /// (the layout [`AabbSoa::coord_lanes`] exposes). Bit-identical to
    /// [`crate::cascade::cascaded_obb_aabb`] on the reconstructed box.
    #[inline]
    pub fn outcome(&mut self, cx: S, cy: S, cz: S, hx: S, hy: S, hz: S) -> CascadeOutcome {
        let d2 = if self.sphere_stage != 0 {
            self.sphere_d2(cx, cy, cz, hx, hy, hz)
        } else {
            self.br2
        };
        self.outcome_with_d2(d2, cx, cy, cz, hx, hy, hz)
    }

    /// [`HoistedCascade::outcome`] with the sphere-stage squared distance
    /// already computed (e.g. by a lane-blocked prefilter sweep over a
    /// whole octree node). `d2` must equal what
    /// [`HoistedCascade::outcome`] would derive for the same box — the
    /// clamp point is radius-independent, so one value serves both the
    /// bounding and the inscribed filter.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn outcome_with_d2(
        &mut self,
        d2: S,
        cx: S,
        cy: S,
        cz: S,
        hx: S,
        hy: S,
        hz: S,
    ) -> CascadeOutcome {
        // Same polarity as the scalar filter (`overlap = d2 <= r2`, exit
        // on `!overlap`), so incomparable values take the identical arm.
        let bounding_overlap = d2 <= self.br2;
        if self.cfg.bounding_sphere_filter && !bounding_overlap {
            return CascadeOutcome {
                colliding: false,
                exit: ExitStage::BoundingSphere,
                separating_axis: None,
                mults: SPHERE_AABB_MULS,
                stages_executed: 1,
            };
        }
        if self.cfg.inscribed_sphere_filter && d2 <= self.ir2 {
            let mut mults = SPHERE_AABB_MULS;
            if self.cfg.bounding_sphere_filter {
                mults += SPHERE_AABB_MULS;
            }
            return CascadeOutcome {
                colliding: true,
                exit: ExitStage::InscribedSphere,
                separating_axis: None,
                mults,
                stages_executed: 1,
            };
        }
        let obb = &self.obb;
        let c = self.consts.get_or_insert_with(|| SatConsts::new(obb));
        let p = self.obb.center;
        let t = [p.x - cx, p.y - cy, p.z - cz];
        let b = [hx, hy, hz];
        let mut mults = self.sphere_mults;
        let mut stages = self.sphere_stage;
        for k in 0..3 {
            let (start, len) = self.cfg.split.stage_range(k);
            mults += range_mult_count(start, len);
            stages += 1;
            if let Some(raw) = (start..start + len).find(|&raw| sat_axis_lane(raw, c, t, b)) {
                return CascadeOutcome {
                    colliding: false,
                    exit: ExitStage::Sat(k as u8 + 1),
                    separating_axis: Some(AxisId::new(raw)),
                    mults,
                    stages_executed: stages,
                };
            }
        }
        CascadeOutcome {
            colliding: true,
            exit: ExitStage::Exhausted,
            separating_axis: None,
            mults,
            stages_executed: stages,
        }
    }
}

/// Explicitly width-blocked `f32` lane kernels (the `simd` feature).
///
/// The crate forbids `unsafe`, and stable Rust has no portable SIMD API, so
/// "explicit" here means fixed 8-lane blocking with per-chunk local arrays —
/// the shape LLVM reliably turns into packed vector instructions without
/// having to prove anything about dynamic trip counts. The arithmetic per
/// lane is exactly the generic kernel's (f32 SIMD lanes are IEEE-754
/// identical to scalar ops), so results do not change with the feature.
#[cfg(feature = "simd")]
pub mod wide {
    // The fixed-width `for k in 0..LANES` index loops are the point: a
    // constant trip count over local arrays is what LLVM packs into vector
    // registers, where iterator chains can defeat the pattern match.
    #![allow(clippy::needless_range_loop)]

    use super::SatConsts;
    use crate::scalar::Scalar;
    use crate::vec3::Vector3;

    /// Block width: 8 × f32 = one AVX register.
    pub const LANES: usize = 8;

    /// Runtime kernel width: `8` routes `f32` lane sweeps through the
    /// width-blocked kernels below, `1` falls back to the generic sweep
    /// (identical results — the switch exists so a deployment can disable
    /// explicit blocking without a scalar rebuild). Selected once per
    /// process from `MPACCEL_SIMD_WIDTH` (accepted values: `1`, `8`;
    /// default `8`).
    pub fn dispatch_width() -> usize {
        use std::sync::OnceLock;
        static WIDTH: OnceLock<usize> = OnceLock::new();
        *WIDTH.get_or_init(
            || match std::env::var("MPACCEL_SIMD_WIDTH").ok().as_deref() {
                Some("1") => 1,
                _ => LANES,
            },
        )
    }

    /// Width-blocked counterpart of the generic sphere–AABB lane pass.
    #[allow(clippy::too_many_arguments)]
    pub fn sphere_lanes_f32(
        p: Vector3<f32>,
        r2: f32,
        cx: &[f32],
        cy: &[f32],
        cz: &[f32],
        hx: &[f32],
        hy: &[f32],
        hz: &[f32],
        out: &mut [bool],
    ) {
        let n = out.len();
        if dispatch_width() < LANES {
            return super::sphere_lanes_generic(p, r2, cx, cy, cz, hx, hy, hz, out);
        }
        let mut base = 0;
        while base + LANES <= n {
            let mut d2 = [0f32; LANES];
            for k in 0..LANES {
                let l = base + k;
                let qx = p.x.max_val(cx[l] - hx[l]).min_val(cx[l] + hx[l]);
                let qy = p.y.max_val(cy[l] - hy[l]).min_val(cy[l] + hy[l]);
                let qz = p.z.max_val(cz[l] - hz[l]).min_val(cz[l] + hz[l]);
                let dx = qx - p.x;
                let dy = qy - p.y;
                let dz = qz - p.z;
                d2[k] = dx * dx + dy * dy + dz * dz;
            }
            for k in 0..LANES {
                out[base + k] = d2[k] <= r2;
            }
            base += LANES;
        }
        super::sphere_lanes_generic(
            p,
            r2,
            &cx[base..n],
            &cy[base..n],
            &cz[base..n],
            &hx[base..n],
            &hy[base..n],
            &hz[base..n],
            &mut out[base..n],
        );
    }

    /// Width-blocked counterpart of the generic per-axis SAT lane pass.
    pub fn sat_axis_lanes_f32(
        raw: u8,
        c: &SatConsts<f32>,
        ts: [&[f32]; 3],
        bs: [&[f32]; 3],
        first: &mut [u8],
    ) {
        let n = first.len();
        if dispatch_width() < LANES {
            return super::sat_axis_lanes_generic(raw, c, ts, bs, first);
        }
        let mut sep = [false; LANES];
        let mut base = 0;
        while base + LANES <= n {
            match raw {
                i @ 1..=3 => {
                    let i = (i - 1) as usize;
                    let (t_i, b_i, rb) = (ts[i], bs[i], c.rb_face[i]);
                    for k in 0..LANES {
                        let l = base + k;
                        sep[k] = t_i[l].abs() > b_i[l] + rb;
                    }
                }
                j @ 4..=6 => {
                    let j = (j - 4) as usize;
                    let (r0, r1, r2) = (c.r[0][j], c.r[1][j], c.r[2][j]);
                    let (a0, a1, a2) = (c.abs_r[0][j], c.abs_r[1][j], c.abs_r[2][j]);
                    let rb = c.a[j];
                    for k in 0..LANES {
                        let l = base + k;
                        let dist = (ts[0][l] * r0 + ts[1][l] * r1 + ts[2][l] * r2).abs();
                        let ra = bs[0][l] * a0 + bs[1][l] * a1 + bs[2][l] * a2;
                        sep[k] = dist > ra + rb;
                    }
                }
                kx => {
                    let kx = (kx - 7) as usize;
                    let i = kx / 3;
                    let j = kx % 3;
                    let i1 = (i + 1) % 3;
                    let i2 = (i + 2) % 3;
                    let (ea, eb) = (c.eps_r[i2][j], c.eps_r[i1][j]);
                    let (rhi, rlo) = (c.r[i1][j], c.r[i2][j]);
                    let rb = c.rb_cross[kx];
                    for k in 0..LANES {
                        let l = base + k;
                        let ra = bs[i1][l] * ea + bs[i2][l] * eb;
                        let dist = (ts[i2][l] * rhi - ts[i1][l] * rlo).abs();
                        sep[k] = dist > ra + rb;
                    }
                }
            }
            for k in 0..LANES {
                let l = base + k;
                if first[l] == 0 && sep[k] {
                    first[l] = raw;
                }
            }
            base += LANES;
        }
        let ts_tail = [&ts[0][base..n], &ts[1][base..n], &ts[2][base..n]];
        let bs_tail = [&bs[0][base..n], &bs[1][base..n], &bs[2][base..n]];
        super::sat_axis_lanes_generic(raw, c, ts_tail, bs_tail, &mut first[base..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::cascaded_obb_aabb;
    use crate::sat::sat_batch_range;
    use crate::sphere::sphere_aabb_overlap;
    use crate::{Mat3, Vec3};

    fn sample_boxes() -> (Obb<f32>, AabbSoa<f32>) {
        let obb = Obb::new(
            Vec3::new(0.32, -0.11, 0.23),
            Vec3::new(0.3, 0.12, 0.07),
            Mat3::rotation_z(0.6) * Mat3::rotation_x(-0.4),
        );
        let mut soa = AabbSoa::with_capacity(24);
        for i in 0..24 {
            let f = i as f32;
            soa.push(&Aabb::new(
                Vec3::new(
                    (f * 0.37).sin() * 0.8,
                    (f * 0.21).cos() * 0.8,
                    f * 0.05 - 0.6,
                ),
                Vec3::splat(0.04 + 0.03 * (f * 0.5).sin().abs()),
            ));
        }
        (obb, soa)
    }

    #[test]
    fn soa_roundtrip_and_clear() {
        let (_, mut soa) = sample_boxes();
        assert_eq!(soa.len(), 24);
        for i in 0..soa.len() {
            let b = soa.get(i);
            assert!(b.half.x >= 0.0);
        }
        soa.clear();
        assert!(soa.is_empty());
    }

    #[test]
    fn sphere_batch_matches_scalar() {
        let (obb, soa) = sample_boxes();
        let mut out = Vec::new();
        sphere_aabb_batch_soa(
            obb.center,
            obb.bounding_radius,
            &soa,
            0..soa.len(),
            &mut out,
        );
        for (l, &got) in out.iter().enumerate() {
            let want = sphere_aabb_overlap(obb.center, obb.bounding_radius, &soa.get(l));
            assert_eq!(got, want, "lane {l}");
        }
    }

    #[test]
    fn sat_batch_matches_scalar_per_lane() {
        let (obb, soa) = sample_boxes();
        let mut scratch = CascadeBatchScratch::default();
        let mut out = Vec::new();
        for (start, len) in [(1u8, 6u8), (7, 5), (12, 4), (1, 15)] {
            sat_batch_soa(&obb, &soa, 0..soa.len(), start, len, &mut scratch, &mut out);
            for (l, got) in out.iter().enumerate() {
                let want = sat_batch_range(&obb, &soa.get(l), start, len);
                assert_eq!(*got, want, "lane {l} axes {start}+{len}");
            }
        }
    }

    #[test]
    fn cascade_batch_matches_scalar_per_lane() {
        let (obb, soa) = sample_boxes();
        let mut scratch = CascadeBatchScratch::default();
        let mut out = Vec::new();
        for cfg in [
            CascadeConfig::proposed(),
            CascadeConfig::without_filters(),
            CascadeConfig::bounding_only(),
        ] {
            cascade_batch_soa(&obb, &cfg, &soa, 0..soa.len(), &mut scratch, &mut out);
            assert_eq!(out.len(), soa.len());
            for (l, got) in out.iter().enumerate() {
                let want = cascaded_obb_aabb(&obb, &soa.get(l), &cfg);
                assert_eq!(*got, want, "lane {l} cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn hoisted_cascade_matches_scalar_per_lane() {
        let (obb, soa) = sample_boxes();
        for cfg in [
            CascadeConfig::proposed(),
            CascadeConfig::without_filters(),
            CascadeConfig::bounding_only(),
        ] {
            let mut hoisted = HoistedCascade::new(&obb, &cfg);
            let [cx, cy, cz, hx, hy, hz] = soa.coord_lanes();
            for l in 0..soa.len() {
                let got = hoisted.outcome(cx[l], cy[l], cz[l], hx[l], hy[l], hz[l]);
                let want = cascaded_obb_aabb(&obb, &soa.get(l), &cfg);
                assert_eq!(got, want, "lane {l} cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn hoisted_cascade_fixed_point_matches_scalar() {
        let (obb, soa) = sample_boxes();
        let q = obb.quantize();
        let cfg = CascadeConfig::proposed();
        let mut hoisted = HoistedCascade::new(&q, &cfg);
        for l in 0..soa.len() {
            let b = soa.get(l).quantize();
            let got = hoisted.outcome(
                b.center.x, b.center.y, b.center.z, b.half.x, b.half.y, b.half.z,
            );
            assert_eq!(got, cascaded_obb_aabb(&q, &b, &cfg), "lane {l}");
        }
    }

    #[test]
    fn cascade_batch_fixed_point_matches_scalar() {
        let (obb, soa) = sample_boxes();
        let q = obb.quantize();
        let mut qsoa = AabbSoa::new();
        for i in 0..soa.len() {
            qsoa.push(&soa.get(i).quantize());
        }
        let cfg = CascadeConfig::proposed();
        let mut scratch = CascadeBatchScratch::default();
        let mut out = Vec::new();
        cascade_batch_soa(&q, &cfg, &qsoa, 0..qsoa.len(), &mut scratch, &mut out);
        for (l, got) in out.iter().enumerate() {
            let want = cascaded_obb_aabb(&q, &qsoa.get(l), &cfg);
            assert_eq!(*got, want, "lane {l}");
        }
    }

    #[test]
    fn subrange_is_lane_exact() {
        let (obb, soa) = sample_boxes();
        let cfg = CascadeConfig::proposed();
        let mut scratch = CascadeBatchScratch::default();
        let mut out = Vec::new();
        cascade_batch_soa(&obb, &cfg, &soa, 5..13, &mut scratch, &mut out);
        assert_eq!(out.len(), 8);
        for (l, got) in out.iter().enumerate() {
            let want = cascaded_obb_aabb(&obb, &soa.get(5 + l), &cfg);
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn empty_range_yields_no_outcomes() {
        let (obb, soa) = sample_boxes();
        let mut scratch = CascadeBatchScratch::default();
        let mut out = vec![cascaded_obb_aabb(
            &obb,
            &soa.get(0),
            &CascadeConfig::proposed(),
        )];
        cascade_batch_soa(
            &obb,
            &CascadeConfig::proposed(),
            &soa,
            3..3,
            &mut scratch,
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_range_panics() {
        let (obb, soa) = sample_boxes();
        let mut out = Vec::new();
        sphere_aabb_batch_soa(obb.center, obb.bounding_radius, &soa, 0..99, &mut out);
    }
}
