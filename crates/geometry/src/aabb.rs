//! Axis-aligned bounding boxes.

use mp_fixed::Fx;

use crate::scalar::Scalar;
use crate::vec3::Vector3;

/// An axis-aligned bounding box stored as center + half-extents.
///
/// This matches the hardware representation: the OOCD receives each octant's
/// AABB as its center and size, 6 × 16-bit values (§5.2).
///
/// # Examples
///
/// ```
/// use mp_geometry::{Aabb, Vec3};
///
/// let a = Aabb::new(Vec3::zero(), Vec3::splat(1.0));
/// assert!(a.contains_point(Vec3::new(0.5, -0.5, 0.9)));
/// assert!(!a.contains_point(Vec3::new(1.5, 0.0, 0.0)));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Aabb<S> {
    /// Center of the box.
    pub center: Vector3<S>,
    /// Half-extent along each world axis (all non-negative).
    pub half: Vector3<S>,
}

impl<S: Scalar> Aabb<S> {
    /// Creates a box from center and half-extents.
    ///
    /// Negative half-extents are normalized to their absolute value.
    #[inline]
    pub fn new(center: Vector3<S>, half: Vector3<S>) -> Aabb<S> {
        Aabb {
            center,
            half: half.abs(),
        }
    }

    /// Creates a box from its min and max corners.
    ///
    /// Swapped corners are tolerated (the box is normalized).
    pub fn from_min_max(min: Vector3<S>, max: Vector3<S>) -> Aabb<S> {
        let lo = min.min(max);
        let hi = min.max(max);
        let two_center = lo + hi;
        let two_half = hi - lo;
        // Halve by multiplying with 0.5 (exact in both scalar types).
        let half_s = S::from_f32(0.5);
        Aabb::new(two_center * half_s, two_half * half_s)
    }

    /// The minimum corner.
    #[inline]
    pub fn min_corner(&self) -> Vector3<S> {
        self.center - self.half
    }

    /// The maximum corner.
    #[inline]
    pub fn max_corner(&self) -> Vector3<S> {
        self.center + self.half
    }

    /// Whether the point lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Vector3<S>) -> bool {
        let d = (p - self.center).abs();
        d.x <= self.half.x && d.y <= self.half.y && d.z <= self.half.z
    }

    /// Whether two AABBs overlap (touching counts as overlap).
    #[inline]
    pub fn overlaps(&self, other: &Aabb<S>) -> bool {
        let d = (self.center - other.center).abs();
        let r = self.half + other.half;
        d.x <= r.x && d.y <= r.y && d.z <= r.z
    }

    /// Whether `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_aabb(&self, other: &Aabb<S>) -> bool {
        let d = (self.center - other.center).abs();
        d.x + other.half.x <= self.half.x
            && d.y + other.half.y <= self.half.y
            && d.z + other.half.z <= self.half.z
    }

    /// The point of this box closest to `p` (clamping, used by the
    /// sphere–AABB test).
    #[inline]
    pub fn closest_point(&self, p: Vector3<S>) -> Vector3<S> {
        p.max(self.min_corner()).min(self.max_corner())
    }

    /// Converts every component to `f32`.
    #[inline]
    pub fn to_f32(&self) -> Aabb<f32> {
        Aabb::new(self.center.to_f32(), self.half.to_f32())
    }
}

impl Aabb<f32> {
    /// Volume of the box.
    #[inline]
    pub fn volume(&self) -> f32 {
        8.0 * self.half.x * self.half.y * self.half.z
    }

    /// Smallest AABB containing both boxes.
    pub fn union(&self, other: &Aabb<f32>) -> Aabb<f32> {
        Aabb::from_min_max(
            self.min_corner().min(other.min_corner()),
            self.max_corner().max(other.max_corner()),
        )
    }

    /// Quantizes to the fixed-point hardware representation.
    ///
    /// Half-extents round *up* to the next representable value so the
    /// quantized box always contains the exact box (conservative for
    /// collision detection: quantization may add false positives but never
    /// false negatives).
    pub fn quantize(&self) -> Aabb<Fx> {
        let round_up = |v: f32| {
            let q = Fx::from_f32(v);
            if q.to_f32() < v {
                q + Fx::EPSILON
            } else {
                q
            }
        };
        Aabb::new(
            self.center.quantize(),
            Vector3::new(
                round_up(self.half.x),
                round_up(self.half.y),
                round_up(self.half.z),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{AabbF, Vec3};

    #[test]
    fn min_max_roundtrip() {
        let b = AabbF::from_min_max(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(b.center, Vec3::new(0.0, 2.0, 2.5));
        assert_eq!(b.half, Vec3::new(1.0, 2.0, 0.5));
        assert_eq!(b.min_corner(), Vec3::new(-1.0, 0.0, 2.0));
        assert_eq!(b.max_corner(), Vec3::new(1.0, 4.0, 3.0));
    }

    #[test]
    fn from_min_max_tolerates_swapped_corners() {
        let a = AabbF::from_min_max(Vec3::new(1.0, 1.0, 1.0), Vec3::new(-1.0, -1.0, -1.0));
        let b = AabbF::from_min_max(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn negative_half_normalized() {
        let b = AabbF::new(Vec3::zero(), Vec3::new(-1.0, 2.0, -3.0));
        assert_eq!(b.half, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn containment() {
        let b = AabbF::new(Vec3::zero(), Vec3::splat(1.0));
        assert!(b.contains_point(Vec3::zero()));
        assert!(b.contains_point(Vec3::splat(1.0))); // boundary
        assert!(!b.contains_point(Vec3::new(1.0001, 0.0, 0.0)));
        let inner = AabbF::new(Vec3::splat(0.25), Vec3::splat(0.5));
        assert!(b.contains_aabb(&inner));
        assert!(!inner.contains_aabb(&b));
    }

    #[test]
    fn overlap_cases() {
        let a = AabbF::new(Vec3::zero(), Vec3::splat(1.0));
        let apart = AabbF::new(Vec3::new(3.0, 0.0, 0.0), Vec3::splat(0.5));
        let touching = AabbF::new(Vec3::new(2.0, 0.0, 0.0), Vec3::splat(1.0));
        let inside = AabbF::new(Vec3::zero(), Vec3::splat(0.1));
        assert!(!a.overlaps(&apart));
        assert!(a.overlaps(&touching)); // touching counts
        assert!(a.overlaps(&inside));
        assert!(inside.overlaps(&a)); // symmetric
    }

    #[test]
    fn closest_point_clamps() {
        let b = AabbF::new(Vec3::zero(), Vec3::splat(1.0));
        assert_eq!(
            b.closest_point(Vec3::new(5.0, 0.0, 0.0)),
            Vec3::new(1.0, 0.0, 0.0)
        );
        assert_eq!(
            b.closest_point(Vec3::new(0.5, 0.5, 0.5)),
            Vec3::new(0.5, 0.5, 0.5)
        );
        assert_eq!(
            b.closest_point(Vec3::new(-4.0, 2.0, 0.3)),
            Vec3::new(-1.0, 1.0, 0.3)
        );
    }

    #[test]
    fn volume_and_union() {
        let a = AabbF::new(Vec3::zero(), Vec3::splat(1.0));
        assert_eq!(a.volume(), 8.0);
        let b = AabbF::new(Vec3::new(3.0, 0.0, 0.0), Vec3::splat(1.0));
        let u = a.union(&b);
        assert_eq!(u.min_corner(), Vec3::new(-1.0, -1.0, -1.0));
        assert_eq!(u.max_corner(), Vec3::new(4.0, 1.0, 1.0));
    }

    #[test]
    fn quantization_is_conservative() {
        // Pick half-extents that are not on the Q3.12 grid.
        let b = AabbF::new(Vec3::new(0.1, 0.2, 0.3), Vec3::new(0.0001, 0.1003, 0.2001));
        let q = b.quantize();
        // Every quantized half-extent must be >= the exact one minus center shift.
        let qf = q.to_f32();
        for i in 0..3 {
            // Center may shift by at most half an LSB; half-extent must cover it.
            assert!(
                qf.half[i] + 1.0 / 8192.0 >= b.half[i],
                "axis {i} shrank: {} < {}",
                qf.half[i],
                b.half[i]
            );
        }
    }
}
