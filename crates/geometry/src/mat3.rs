//! 3×3 matrices, generic over the scalar type.

use core::ops::{Index, Mul};

use mp_fixed::Fx;

use crate::scalar::Scalar;
use crate::vec3::Vector3;

/// A 3×3 matrix stored row-major.
///
/// For rotations, the convention throughout the workspace is that the
/// *columns* of the matrix are the rotated frame's axes expressed in world
/// coordinates, so `world = m * local`.
///
/// # Examples
///
/// ```
/// use mp_geometry::{Mat3, Vec3};
///
/// let r = Mat3::rotation_z(std::f32::consts::FRAC_PI_2);
/// let v = r * Vec3::new(1.0, 0.0, 0.0);
/// assert!((v.x - 0.0).abs() < 1e-6);
/// assert!((v.y - 1.0).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Matrix3<S> {
    rows: [Vector3<S>; 3],
}

impl<S: Scalar> Matrix3<S> {
    /// Creates a matrix from three rows.
    #[inline]
    pub fn from_rows(r0: Vector3<S>, r1: Vector3<S>, r2: Vector3<S>) -> Matrix3<S> {
        Matrix3 { rows: [r0, r1, r2] }
    }

    /// Creates a matrix from three columns.
    #[inline]
    pub fn from_cols(c0: Vector3<S>, c1: Vector3<S>, c2: Vector3<S>) -> Matrix3<S> {
        Matrix3::from_rows(
            Vector3::new(c0.x, c1.x, c2.x),
            Vector3::new(c0.y, c1.y, c2.y),
            Vector3::new(c0.z, c1.z, c2.z),
        )
    }

    /// The identity matrix.
    #[inline]
    pub fn identity() -> Matrix3<S> {
        Matrix3::from_rows(
            Vector3::new(S::one(), S::zero(), S::zero()),
            Vector3::new(S::zero(), S::one(), S::zero()),
            Vector3::new(S::zero(), S::zero(), S::one()),
        )
    }

    /// Row `i` of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    #[inline]
    pub fn row(&self, i: usize) -> Vector3<S> {
        self.rows[i]
    }

    /// Column `j` of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `j > 2`.
    #[inline]
    pub fn col(&self, j: usize) -> Vector3<S> {
        Vector3::new(self.rows[0][j], self.rows[1][j], self.rows[2][j])
    }

    /// The element at row `i`, column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 2` or `j > 2`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> S {
        self.rows[i][j]
    }

    /// The transpose.
    #[inline]
    pub fn transpose(&self) -> Matrix3<S> {
        Matrix3::from_rows(self.col(0), self.col(1), self.col(2))
    }

    /// Component-wise absolute value (used to build the `|R|` matrix of the
    /// separating-axis test).
    #[inline]
    pub fn abs(&self) -> Matrix3<S> {
        Matrix3::from_rows(self.rows[0].abs(), self.rows[1].abs(), self.rows[2].abs())
    }

    /// Converts every element to `f32`.
    #[inline]
    pub fn to_f32(&self) -> Matrix3<f32> {
        Matrix3::from_rows(
            self.rows[0].to_f32(),
            self.rows[1].to_f32(),
            self.rows[2].to_f32(),
        )
    }
}

impl Matrix3<f32> {
    /// Rotation about the world X axis by `angle` radians.
    pub fn rotation_x(angle: f32) -> Matrix3<f32> {
        let (s, c) = angle.sin_cos();
        Matrix3::from_rows(
            Vector3::new(1.0, 0.0, 0.0),
            Vector3::new(0.0, c, -s),
            Vector3::new(0.0, s, c),
        )
    }

    /// Rotation about the world Y axis by `angle` radians.
    pub fn rotation_y(angle: f32) -> Matrix3<f32> {
        let (s, c) = angle.sin_cos();
        Matrix3::from_rows(
            Vector3::new(c, 0.0, s),
            Vector3::new(0.0, 1.0, 0.0),
            Vector3::new(-s, 0.0, c),
        )
    }

    /// Rotation about the world Z axis by `angle` radians.
    pub fn rotation_z(angle: f32) -> Matrix3<f32> {
        let (s, c) = angle.sin_cos();
        Matrix3::from_rows(
            Vector3::new(c, -s, 0.0),
            Vector3::new(s, c, 0.0),
            Vector3::new(0.0, 0.0, 1.0),
        )
    }

    /// Rotation of `angle` radians about an arbitrary unit `axis`
    /// (Rodrigues' formula).
    ///
    /// # Panics
    ///
    /// Panics if `axis` is not approximately unit length.
    pub fn from_axis_angle(axis: Vector3<f32>, angle: f32) -> Matrix3<f32> {
        let len = axis.length();
        assert!(
            (len - 1.0).abs() < 1e-4,
            "from_axis_angle requires a unit axis (|axis| = {len})"
        );
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        let (x, y, z) = (axis.x, axis.y, axis.z);
        Matrix3::from_rows(
            Vector3::new(t * x * x + c, t * x * y - s * z, t * x * z + s * y),
            Vector3::new(t * x * y + s * z, t * y * y + c, t * y * z - s * x),
            Vector3::new(t * x * z - s * y, t * y * z + s * x, t * z * z + c),
        )
    }

    /// Quantizes every element to fixed point.
    #[inline]
    pub fn quantize(&self) -> Matrix3<Fx> {
        Matrix3::from_rows(
            self.rows[0].quantize(),
            self.rows[1].quantize(),
            self.rows[2].quantize(),
        )
    }

    /// Measures how far this matrix is from orthonormal (0 for perfect
    /// rotation matrices). Useful for validating kinematics chains.
    pub fn orthonormality_error(&self) -> f32 {
        let t = *self * self.transpose();
        let i = Matrix3::<f32>::identity();
        let mut err: f32 = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                let d: f32 = t.at(r, c) - i.at(r, c);
                err = err.max(f32::abs(d));
            }
        }
        err
    }
}

impl<S: Scalar> Mul<Vector3<S>> for Matrix3<S> {
    type Output = Vector3<S>;
    #[inline]
    fn mul(self, v: Vector3<S>) -> Vector3<S> {
        Vector3::new(
            self.rows[0].dot(v),
            self.rows[1].dot(v),
            self.rows[2].dot(v),
        )
    }
}

impl<S: Scalar> Mul<Matrix3<S>> for Matrix3<S> {
    type Output = Matrix3<S>;
    #[inline]
    fn mul(self, rhs: Matrix3<S>) -> Matrix3<S> {
        Matrix3::from_cols(self * rhs.col(0), self * rhs.col(1), self * rhs.col(2))
    }
}

impl<S> Index<(usize, usize)> for Matrix3<S> {
    type Output = S;
    /// Indexes by `(row, column)`.
    ///
    /// # Panics
    ///
    /// Panics if either index exceeds 2.
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &S {
        &self.rows[i][j]
    }
}

#[cfg(test)]
mod tests {
    use crate::{Mat3, Vec3};
    use core::f32::consts::{FRAC_PI_2, PI};

    fn assert_vec_close(a: Vec3, b: Vec3) {
        assert!((a - b).length() < 1e-5, "{a:?} != {b:?}");
    }

    #[test]
    fn identity_is_noop() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::identity() * v, v);
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let r = Mat3::rotation_z(FRAC_PI_2);
        assert_vec_close(r * Vec3::basis(0), Vec3::basis(1));
        assert_vec_close(r * Vec3::basis(1), -Vec3::basis(0));
    }

    #[test]
    fn rotation_x_and_y() {
        assert_vec_close(Mat3::rotation_x(FRAC_PI_2) * Vec3::basis(1), Vec3::basis(2));
        assert_vec_close(Mat3::rotation_y(FRAC_PI_2) * Vec3::basis(2), Vec3::basis(0));
    }

    #[test]
    fn axis_angle_matches_dedicated_rotations() {
        for angle in [0.3f32, -1.2, PI] {
            let a = Mat3::from_axis_angle(Vec3::basis(2), angle);
            let b = Mat3::rotation_z(angle);
            for i in 0..3 {
                assert_vec_close(a.row(i), b.row(i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "unit axis")]
    fn axis_angle_rejects_non_unit_axis() {
        let _ = Mat3::from_axis_angle(Vec3::new(2.0, 0.0, 0.0), 0.5);
    }

    #[test]
    fn transpose_of_rotation_is_inverse() {
        let r = Mat3::rotation_y(0.7) * Mat3::rotation_x(-0.3);
        let should_be_identity = r * r.transpose();
        assert!(should_be_identity.orthonormality_error() < 1e-5);
        assert!((should_be_identity.at(0, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn rows_and_cols_agree() {
        let m = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.0, 5.0, 6.0),
            Vec3::new(7.0, 8.0, 9.0),
        );
        assert_eq!(m.col(0), Vec3::new(1.0, 4.0, 7.0));
        assert_eq!(m.at(1, 2), 6.0);
        assert_eq!(m[(2, 1)], 8.0);
        assert_eq!(m.transpose().row(0), Vec3::new(1.0, 4.0, 7.0));
        let rebuilt = Mat3::from_cols(m.col(0), m.col(1), m.col(2));
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn matrix_product_associates_with_vector_product() {
        let a = Mat3::rotation_z(0.5);
        let b = Mat3::rotation_x(0.25);
        let v = Vec3::new(0.3, -0.4, 0.9);
        assert_vec_close((a * b) * v, a * (b * v));
    }

    #[test]
    fn abs_matrix() {
        let m = Mat3::rotation_z(PI); // has -1 entries
        let a = m.abs();
        for i in 0..3 {
            for j in 0..3 {
                assert!(a.at(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn quantized_rotation_stays_close() {
        let r = Mat3::rotation_z(0.37) * Mat3::rotation_y(-0.81);
        let q = r.quantize().to_f32();
        for i in 0..3 {
            for j in 0..3 {
                assert!((q.at(i, j) - r.at(i, j)).abs() < 1.0 / 4096.0);
            }
        }
    }
}
