//! Oriented bounding boxes — the robot-side primitive.

use mp_fixed::Fx;

use crate::aabb::Aabb;
use crate::mat3::Matrix3;
use crate::scalar::Scalar;
use crate::sphere::Sphere;
use crate::transform::Transform;
use crate::vec3::Vector3;

/// An oriented bounding box.
///
/// Matches the hardware representation of §5.2: "Each OBB is represented by
/// 17 values (16-bit each), 3 for its center, 3 for its size, 9 for its 3×3
/// orientation, and 2 for radii of the bounding and inscribed spheres."
/// The orientation matrix's *columns* are the box's local axes in world
/// coordinates.
///
/// # Examples
///
/// ```
/// use mp_geometry::{Mat3, Obb, Vec3};
///
/// let obb = Obb::new(Vec3::zero(), Vec3::new(0.3, 0.2, 0.1), Mat3::rotation_z(0.5));
/// assert!(obb.bounding_radius > obb.inscribed_radius);
/// assert!(obb.contains_point(Vec3::zero()));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Obb<S = f32> {
    /// Center in world coordinates.
    pub center: Vector3<S>,
    /// Half-extent along each *local* axis (all non-negative).
    pub half: Vector3<S>,
    /// Orientation: columns are the local axes expressed in world frame.
    pub rotation: Matrix3<S>,
    /// Radius of the bounding sphere (contains the OBB), precomputed and
    /// stored per-link in SRAM (§5.2).
    pub bounding_radius: S,
    /// Radius of the inscribed sphere (contained in the OBB).
    pub inscribed_radius: S,
}

impl Obb<f32> {
    /// Creates an OBB, computing the bounding and inscribed sphere radii.
    ///
    /// The bounding sphere reaches the corners (`|half|`); the inscribed
    /// sphere touches the nearest pair of faces (`min(half)`).
    pub fn new(center: Vector3<f32>, half: Vector3<f32>, rotation: Matrix3<f32>) -> Obb<f32> {
        let half = half.abs();
        Obb {
            center,
            half,
            rotation,
            bounding_radius: half.length(),
            inscribed_radius: half.min_element(),
        }
    }

    /// Creates an axis-aligned OBB (identity orientation).
    pub fn axis_aligned(center: Vector3<f32>, half: Vector3<f32>) -> Obb<f32> {
        Obb::new(center, half, Matrix3::identity())
    }

    /// Places a local box (centered at `local_center`, half-extents `half`)
    /// under the rigid transform `t` — how the OBB Generation Unit turns a
    /// link's precomputed box + the link transform into a world OBB.
    pub fn from_transform(
        t: &Transform,
        local_center: Vector3<f32>,
        half: Vector3<f32>,
    ) -> Obb<f32> {
        Obb::new(t.apply(local_center), half, t.rotation)
    }

    /// The bounding sphere (Fig 9a).
    #[inline]
    pub fn bounding_sphere(&self) -> Sphere<f32> {
        Sphere::new(self.center, self.bounding_radius)
    }

    /// The inscribed sphere (Fig 9b).
    #[inline]
    pub fn inscribed_sphere(&self) -> Sphere<f32> {
        Sphere::new(self.center, self.inscribed_radius)
    }

    /// The 8 corners in world coordinates.
    pub fn corners(&self) -> [Vector3<f32>; 8] {
        let mut out = [Vector3::zero(); 8];
        for (i, corner) in out.iter_mut().enumerate() {
            let sx = if i & 1 == 0 { -1.0 } else { 1.0 };
            let sy = if i & 2 == 0 { -1.0 } else { 1.0 };
            let sz = if i & 4 == 0 { -1.0 } else { 1.0 };
            let local = Vector3::new(sx * self.half.x, sy * self.half.y, sz * self.half.z);
            *corner = self.center + self.rotation * local;
        }
        out
    }

    /// Whether the point lies inside or on the boundary.
    pub fn contains_point(&self, p: Vector3<f32>) -> bool {
        let local = self.rotation.transpose() * (p - self.center);
        local.x.abs() <= self.half.x + 1e-6
            && local.y.abs() <= self.half.y + 1e-6
            && local.z.abs() <= self.half.z + 1e-6
    }

    /// The smallest AABB containing this OBB.
    pub fn enclosing_aabb(&self) -> Aabb<f32> {
        // Project half extents through |R|.
        let abs_r = self.rotation.abs();
        let world_half = abs_r * self.half;
        Aabb::new(self.center, world_half)
    }

    /// Quantizes to the 17×16-bit hardware representation.
    ///
    /// Size and bounding radius round up, inscribed radius rounds down, so
    /// the quantized filters stay conservative.
    pub fn quantize(&self) -> Obb<Fx> {
        let round_up = |v: f32| {
            let q = Fx::from_f32(v);
            if q.to_f32() < v {
                q + Fx::EPSILON
            } else {
                q
            }
        };
        let round_down = |v: f32| {
            let q = Fx::from_f32(v);
            if q.to_f32() > v {
                q - Fx::EPSILON
            } else {
                q
            }
        };
        Obb {
            center: self.center.quantize(),
            half: Vector3::new(
                round_up(self.half.x),
                round_up(self.half.y),
                round_up(self.half.z),
            ),
            rotation: self.rotation.quantize(),
            // Pad the bounding radius by an LSB to absorb the center shift.
            bounding_radius: round_up(self.bounding_radius) + Fx::EPSILON,
            inscribed_radius: round_down(self.inscribed_radius).max(Fx::ZERO),
        }
    }
}

impl Obb<Fx> {
    /// The bounding sphere in fixed point.
    #[inline]
    pub fn bounding_sphere(&self) -> Sphere<Fx> {
        Sphere::new(self.center, self.bounding_radius)
    }

    /// The inscribed sphere in fixed point.
    #[inline]
    pub fn inscribed_sphere(&self) -> Sphere<Fx> {
        Sphere::new(self.center, self.inscribed_radius)
    }

    /// Widens back to `f32` (exact; radii keep their conservative rounding).
    pub fn to_f32(&self) -> Obb<f32> {
        Obb {
            center: self.center.to_f32(),
            half: self.half.to_f32(),
            rotation: self.rotation.to_f32(),
            bounding_radius: self.bounding_radius.to_f32(),
            inscribed_radius: self.inscribed_radius.to_f32(),
        }
    }
}

impl<S: Scalar> Obb<S> {
    /// Local axis `j` (column `j` of the orientation matrix).
    ///
    /// # Panics
    ///
    /// Panics if `j > 2`.
    #[inline]
    pub fn axis(&self, j: usize) -> Vector3<S> {
        self.rotation.col(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mat3, Vec3};
    use core::f32::consts::FRAC_PI_4;

    #[test]
    fn radii_relationship() {
        let o = Obb::new(Vec3::zero(), Vec3::new(0.3, 0.4, 0.5), Mat3::identity());
        assert!((o.bounding_radius - (0.09f32 + 0.16 + 0.25).sqrt()).abs() < 1e-6);
        assert_eq!(o.inscribed_radius, 0.3);
        assert!(o.bounding_radius >= o.inscribed_radius);
    }

    #[test]
    fn axis_aligned_contains() {
        let o = Obb::axis_aligned(Vec3::new(1.0, 0.0, 0.0), Vec3::splat(0.5));
        assert!(o.contains_point(Vec3::new(1.4, 0.4, -0.4)));
        assert!(!o.contains_point(Vec3::new(1.6, 0.0, 0.0)));
    }

    #[test]
    fn rotated_containment() {
        // 45° about Z: the corner along local x reaches sqrt(2)*0.5 in world x.
        let o = Obb::new(
            Vec3::zero(),
            Vec3::new(0.5, 0.5, 0.5),
            Mat3::rotation_z(FRAC_PI_4),
        );
        assert!(o.contains_point(Vec3::new(0.7, 0.0, 0.0)));
        // An axis-aligned box of half 0.5 would NOT contain that point.
        assert!(!Obb::axis_aligned(Vec3::zero(), Vec3::splat(0.5))
            .contains_point(Vec3::new(0.7, 0.0, 0.0)));
    }

    #[test]
    fn corners_are_contained_and_extreme() {
        let o = Obb::new(
            Vec3::new(0.1, -0.2, 0.3),
            Vec3::new(0.2, 0.3, 0.1),
            Mat3::rotation_y(0.8),
        );
        for c in o.corners() {
            assert!(o.contains_point(c));
            // Corners lie exactly on the bounding sphere.
            assert!(((c - o.center).length() - o.bounding_radius).abs() < 1e-5);
        }
    }

    #[test]
    fn enclosing_aabb_contains_corners() {
        let o = Obb::new(
            Vec3::new(-0.3, 0.4, 0.0),
            Vec3::new(0.25, 0.1, 0.05),
            Mat3::rotation_x(1.0) * Mat3::rotation_z(0.3),
        );
        // Inflate by a float-rounding tolerance: corners land exactly on the
        // boundary and may overshoot by an ulp.
        let aabb = o.enclosing_aabb();
        let inflated = Aabb::new(aabb.center, aabb.half + Vec3::splat(1e-5));
        for c in o.corners() {
            assert!(inflated.contains_point(c), "corner {c:?} outside {aabb:?}");
        }
    }

    #[test]
    fn from_transform_places_box() {
        let t = Transform::new(Mat3::rotation_z(FRAC_PI_4), Vec3::new(1.0, 0.0, 0.0));
        let o = Obb::from_transform(&t, Vec3::new(0.5, 0.0, 0.0), Vec3::splat(0.1));
        // Local center (0.5,0,0) rotates 45° then translates by (1,0,0).
        let expect = Vec3::new(1.0 + 0.5 * FRAC_PI_4.cos(), 0.5 * FRAC_PI_4.sin(), 0.0);
        assert!((o.center - expect).length() < 1e-5);
    }

    #[test]
    fn quantization_conservative_radii() {
        let o = Obb::new(
            Vec3::new(0.123, -0.456, 0.789),
            Vec3::new(0.1111, 0.2222, 0.0333),
            Mat3::rotation_z(0.7),
        );
        let q = o.quantize();
        assert!(q.bounding_radius.to_f32() >= o.bounding_radius);
        assert!(q.inscribed_radius.to_f32() <= o.inscribed_radius);
        for i in 0..3 {
            assert!(q.half.to_f32()[i] >= o.half[i]);
        }
    }

    #[test]
    fn axis_accessor_returns_columns() {
        let r = Mat3::rotation_z(0.5);
        let o = Obb::new(Vec3::zero(), Vec3::splat(0.1), r);
        assert_eq!(o.axis(0), r.col(0));
        assert_eq!(o.axis(2), Vec3::basis(2));
    }
}
