//! The 15-axis separating-axis test (SAT) between an OBB and an AABB.
//!
//! Two convex objects are disjoint iff there exists a separating axis. For
//! an OBB/AABB pair there are 15 candidate axes (§2.2): the 3 face normals
//! of the AABB (world axes), the 3 face normals of the OBB, and the 9 cross
//! products of one edge direction from each box. The boxes collide iff none
//! of the 15 candidates separates them.
//!
//! Every axis test carries an identifier (1–15, in the order above) and an
//! exact multiplication count; the paper uses "number of multiplications
//! performed" as its computation/energy estimate (§4, Fig 8), and all 15
//! axes together cost [`SAT_ALL_MULS`] = 81 multiplications, the figure
//! quoted in §4.

use crate::aabb::Aabb;
use crate::obb::Obb;
use crate::scalar::Scalar;

/// Identifier of a separating-axis candidate, 1-based as in Fig 8b.
///
/// * 1–3: AABB face normals (world X/Y/Z),
/// * 4–6: OBB face normals (local axes),
/// * 7–15: cross products `world_i × obb_j` in row-major order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AxisId(u8);

impl AxisId {
    /// Creates an axis id.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= id <= 15`.
    pub fn new(id: u8) -> AxisId {
        assert!(
            (1..=15).contains(&id),
            "axis id must be in 1..=15, got {id}"
        );
        AxisId(id)
    }

    /// The numeric id (1–15).
    #[inline]
    pub fn get(self) -> u8 {
        self.0
    }

    /// All 15 axis ids in test order.
    pub fn all() -> impl Iterator<Item = AxisId> {
        (1..=15).map(AxisId)
    }

    /// Which family this axis belongs to.
    pub fn class(self) -> AxisClass {
        match self.0 {
            1..=3 => AxisClass::AabbFace,
            4..=6 => AxisClass::ObbFace,
            _ => AxisClass::EdgeCross,
        }
    }
}

impl core::fmt::Display for AxisId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "axis{}", self.0)
    }
}

/// The three families of separating-axis candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AxisClass {
    /// A face normal of the AABB (a world axis).
    AabbFace,
    /// A face normal of the OBB (a local box axis).
    ObbFace,
    /// The cross product of one edge direction from each box.
    EdgeCross,
}

/// Multiplications needed to evaluate one axis test.
///
/// AABB faces project the OBB half-extents through one row of `|R|`
/// (3 products); OBB faces also need the `t·u_j` projection (6); cross
/// axes need 2 products each for the two radii and the distance (6).
#[inline]
pub fn axis_mult_count(axis: AxisId) -> u32 {
    match axis.class() {
        AxisClass::AabbFace => 3,
        AxisClass::ObbFace => 6,
        AxisClass::EdgeCross => 6,
    }
}

/// Total multiplications for all 15 axis tests (3×3 + 3×6 + 9×6 = 81).
pub const SAT_ALL_MULS: u32 = 81;

/// Multiplications spent by evaluating the contiguous axis range
/// `start..start + len` (1-based ids) — the cost [`sat_batch_range`]
/// reports, precomputable when the same range is swept over many pairs.
///
/// # Panics
///
/// Panics unless the range stays within `1..=15`.
#[inline]
pub fn range_mult_count(start: u8, len: u8) -> u32 {
    assert!(
        start >= 1 && len >= 1 && start + len - 1 <= 15,
        "axis range {start}+{len} out of 1..=15"
    );
    (start..start + len)
        .map(|raw| axis_mult_count(AxisId(raw)))
        .sum()
}

/// Result of a (possibly early-exiting) separating-axis test sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SatResult {
    /// The first axis found to separate the boxes, or `None` if they collide.
    pub separating: Option<AxisId>,
    /// Number of axis tests evaluated.
    pub axes_tested: u32,
    /// Total multiplications spent.
    pub mults: u32,
}

impl SatResult {
    /// Whether the boxes collide (no separating axis found).
    #[inline]
    pub fn colliding(&self) -> bool {
        self.separating.is_none()
    }
}

/// Evaluates a single axis test; `true` means this axis *separates* the
/// boxes (they do not overlap).
///
/// Robustness: the cross-product radii use `|R| + ε` so nearly-parallel
/// edges never produce a spurious separating axis (the standard
/// Gottschalk/Ericson guard), keeping the test conservative.
#[inline]
pub fn test_axis<S: Scalar>(obb: &Obb<S>, aabb: &Aabb<S>, id: AxisId) -> bool {
    let t = obb.center - aabb.center;
    let a = obb.half; // OBB half extents (local)
    let b = aabb.half; // AABB half extents (world)
    let r = &obb.rotation; // columns are OBB axes; r[(i,j)] = world_i . u_j
    let eps = S::epsilon();

    match id.0 {
        // L = world axis i.
        i @ 1..=3 => {
            let i = (i - 1) as usize;
            let ra = b[i];
            let rb = a.x * r.at(i, 0).abs() + a.y * r.at(i, 1).abs() + a.z * r.at(i, 2).abs();
            t[i].abs() > ra + rb
        }
        // L = OBB axis j.
        j @ 4..=6 => {
            let j = (j - 4) as usize;
            let dist = (t.x * r.at(0, j) + t.y * r.at(1, j) + t.z * r.at(2, j)).abs();
            let ra = b.x * r.at(0, j).abs() + b.y * r.at(1, j).abs() + b.z * r.at(2, j).abs();
            let rb = a[j];
            dist > ra + rb
        }
        // L = world_i x obb_j.
        k => {
            let k = (k - 7) as usize;
            let i = k / 3;
            let j = k % 3;
            let i1 = (i + 1) % 3;
            let i2 = (i + 2) % 3;
            let j1 = (j + 1) % 3;
            let j2 = (j + 2) % 3;
            let ra = b[i1] * (r.at(i2, j).abs() + eps) + b[i2] * (r.at(i1, j).abs() + eps);
            let rb = a[j1] * (r.at(i, j2).abs() + eps) + a[j2] * (r.at(i, j1).abs() + eps);
            let dist = (t[i2] * r.at(i1, j) - t[i1] * r.at(i2, j)).abs();
            dist > ra + rb
        }
    }
}

/// Sequential SAT with early exit: tests axes 1..15 in order and stops at
/// the first separating axis (the "sequential execution" of Fig 8a).
pub fn sat_first_separating<S: Scalar>(obb: &Obb<S>, aabb: &Aabb<S>) -> SatResult {
    let mut mults = 0;
    for id in AxisId::all() {
        mults += axis_mult_count(id);
        if test_axis(obb, aabb, id) {
            return SatResult {
                separating: Some(id),
                axes_tested: id.get() as u32,
                mults,
            };
        }
    }
    SatResult {
        separating: None,
        axes_tested: 15,
        mults,
    }
}

/// Fully parallel SAT: all 15 axis tests execute regardless of outcome (the
/// "parallel execution" of Fig 8a — faster but all 81 multiplications are
/// always spent). Returns the lowest-id separating axis, if any.
pub fn sat_all<S: Scalar>(obb: &Obb<S>, aabb: &Aabb<S>) -> SatResult {
    let mut first = None;
    for id in AxisId::all() {
        if test_axis(obb, aabb, id) && first.is_none() {
            first = Some(id);
        }
    }
    SatResult {
        separating: first,
        axes_tested: 15,
        mults: SAT_ALL_MULS,
    }
}

/// Tests a contiguous batch of axes (used by the 6-5-4 staged execution of
/// the cascaded unit). Returns the first separating axis in the batch and
/// the multiplications spent (all axes in the batch are evaluated, as the
/// stage's datapath runs them concurrently).
pub fn sat_batch<S: Scalar>(obb: &Obb<S>, aabb: &Aabb<S>, ids: &[AxisId]) -> SatResult {
    let mut first = None;
    let mut mults = 0;
    for &id in ids {
        mults += axis_mult_count(id);
        if first.is_none() && test_axis(obb, aabb, id) {
            first = Some(id);
        }
    }
    SatResult {
        separating: first,
        axes_tested: ids.len() as u32,
        mults,
    }
}

/// [`sat_batch`] over the contiguous axis range `start..start + len`
/// (1-based ids, like [`AxisId`]). Staged execution always uses contiguous
/// ranges, so the hot path takes this allocation-free form instead of
/// materializing an id slice per stage.
///
/// # Panics
///
/// Panics unless the range stays within `1..=15`.
#[inline]
pub fn sat_batch_range<S: Scalar>(obb: &Obb<S>, aabb: &Aabb<S>, start: u8, len: u8) -> SatResult {
    assert!(
        start >= 1 && len >= 1 && start + len - 1 <= 15,
        "axis range {start}+{len} out of 1..=15"
    );
    let mut first = None;
    let mut mults = 0;
    for raw in start..start + len {
        let id = AxisId(raw);
        mults += axis_mult_count(id);
        if first.is_none() && test_axis(obb, aabb, id) {
            first = Some(id);
        }
    }
    SatResult {
        separating: first,
        axes_tested: len as u32,
        mults,
    }
}

/// Convenience predicate: do the OBB and AABB overlap?
#[inline]
pub fn overlaps<S: Scalar>(obb: &Obb<S>, aabb: &Aabb<S>) -> bool {
    sat_first_separating(obb, aabb).colliding()
}

/// Signed separation gap along one SAT axis of the exact `f32` pair:
/// positive means the axis separates the boxes by that (projection-scaled)
/// amount, negative means their projections overlap on it.
/// [`test_axis`] is exactly `axis_signed_gap(..) > 0` for `f32`.
pub fn axis_signed_gap(obb: &Obb<f32>, aabb: &Aabb<f32>, id: AxisId) -> f32 {
    let t = obb.center - aabb.center;
    let a = obb.half;
    let b = aabb.half;
    let r = &obb.rotation;
    let eps = <f32 as Scalar>::epsilon();
    match id.0 {
        i @ 1..=3 => {
            let i = (i - 1) as usize;
            let ra = b[i];
            let rb = a.x * r.at(i, 0).abs() + a.y * r.at(i, 1).abs() + a.z * r.at(i, 2).abs();
            t[i].abs() - (ra + rb)
        }
        j @ 4..=6 => {
            let j = (j - 4) as usize;
            let dist = (t.x * r.at(0, j) + t.y * r.at(1, j) + t.z * r.at(2, j)).abs();
            let ra = b.x * r.at(0, j).abs() + b.y * r.at(1, j).abs() + b.z * r.at(2, j).abs();
            let rb = a[j];
            dist - (ra + rb)
        }
        k => {
            let k = (k - 7) as usize;
            let i = k / 3;
            let j = k % 3;
            let i1 = (i + 1) % 3;
            let i2 = (i + 2) % 3;
            let j1 = (j + 1) % 3;
            let j2 = (j + 2) % 3;
            let ra = b[i1] * (r.at(i2, j).abs() + eps) + b[i2] * (r.at(i1, j).abs() + eps);
            let rb = a[j1] * (r.at(i, j2).abs() + eps) + a[j2] * (r.at(i, j1).abs() + eps);
            let dist = (t[i2] * r.at(i1, j) - t[i1] * r.at(i2, j)).abs();
            dist - (ra + rb)
        }
    }
}

/// The pair's margin to the separated/colliding threshold: the largest
/// [`axis_signed_gap`] over all 15 axes. Positive iff the exact `f32` SAT
/// reports separation; its magnitude says how far the pair is from the
/// verdict flipping.
pub fn signed_separation(obb: &Obb<f32>, aabb: &Aabb<f32>) -> f32 {
    AxisId::all()
        .map(|id| axis_signed_gap(obb, aabb, id))
        .fold(f32::NEG_INFINITY, f32::max)
}

/// Worst-case amount (in [`axis_signed_gap`] units) by which Q3.12
/// quantization plus fixed-point SAT arithmetic can move any axis gap —
/// the envelope inside which the fixed-point and `f32` verdicts may
/// legitimately disagree.
///
/// Per-axis error budget, with `ε =` [`RESOLUTION`](mp_fixed::RESOLUTION)
/// `= 2⁻¹²` (see `Obb::quantize` / `Aabb::quantize`):
///
/// * centers round to nearest (≤ ε/2 per component) and enter `t` twice,
///   and `t` projects through quantized rotation entries (≤ ε/2 each), so
///   the distance term moves by `O(ε·(1 + ‖t‖₁))`;
/// * half extents round *up* by < ε per component and multiply rotation
///   entries, moving the radii by `O(ε·(1 + ‖a‖₁ + ‖b‖₁))`;
/// * the cross-axis robustness guard uses `ε` in fixed point but `10⁻⁶`
///   in `f32`, adding up to `ε·(‖a‖₁ + ‖b‖₁)`;
/// * every fixed-point multiply rounds to nearest (≤ ε/2), ≤ 6 per axis.
///
/// The constants below over-approximate all four contributions; the
/// differential property test in `tests/props.rs` validates the envelope
/// empirically and that disagreements are collision-biased (deep
/// collisions are never reported free by fixed point).
pub fn quantization_margin(obb: &Obb<f32>, aabb: &Aabb<f32>) -> f32 {
    let t = obb.center - aabb.center;
    let l1 = |v: crate::Vector3<f32>| v.x.abs() + v.y.abs() + v.z.abs();
    mp_fixed::RESOLUTION * (16.0 + 2.0 * (l1(obb.half) + l1(aabb.half) + l1(t)))
}

/// General OBB–OBB separating-axis test (Gottschalk's 15 axes), `f32`.
///
/// This is not part of the accelerator datapath (the environment side is
/// always an AABB there); it backs the *self-collision* extension in
/// `mp-collision`, where pairs of robot links — both OBBs — are tested
/// against each other.
pub fn obb_obb_overlaps(a: &Obb<f32>, b: &Obb<f32>) -> bool {
    // Work in A's local frame: C = Aᵀ·B is B's orientation there.
    let a_rot_t = a.rotation.transpose();
    let c = a_rot_t * b.rotation;
    let abs_c = {
        let eps = 1e-6;
        crate::Matrix3::from_rows(
            c.row(0).abs() + crate::Vector3::splat(eps),
            c.row(1).abs() + crate::Vector3::splat(eps),
            c.row(2).abs() + crate::Vector3::splat(eps),
        )
    };
    let t = a_rot_t * (b.center - a.center);
    let ha = a.half;
    let hb = b.half;

    // A's face axes.
    for i in 0..3 {
        let ra = ha[i];
        let rb = abs_c.row(i).dot(hb);
        if t[i].abs() > ra + rb {
            return false;
        }
    }
    // B's face axes.
    for j in 0..3 {
        let ra = abs_c.col(j).dot(ha);
        let rb = hb[j];
        let dist = (t.x * c.at(0, j) + t.y * c.at(1, j) + t.z * c.at(2, j)).abs();
        if dist > ra + rb {
            return false;
        }
    }
    // Cross products a_i × b_j.
    for i in 0..3 {
        let i1 = (i + 1) % 3;
        let i2 = (i + 2) % 3;
        for j in 0..3 {
            let j1 = (j + 1) % 3;
            let j2 = (j + 2) % 3;
            let ra = ha[i1] * abs_c.at(i2, j) + ha[i2] * abs_c.at(i1, j);
            let rb = hb[j1] * abs_c.at(i, j2) + hb[j2] * abs_c.at(i, j1);
            let dist = (t[i2] * c.at(i1, j) - t[i1] * c.at(i2, j)).abs();
            if dist > ra + rb {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AabbF, Mat3, Obb, Vec3};
    use core::f32::consts::FRAC_PI_4;

    fn unit_aabb() -> AabbF {
        AabbF::new(Vec3::zero(), Vec3::splat(0.5))
    }

    #[test]
    fn axis_id_validation() {
        assert_eq!(AxisId::new(1).get(), 1);
        assert_eq!(AxisId::new(15).get(), 15);
        assert_eq!(AxisId::all().count(), 15);
    }

    #[test]
    #[should_panic(expected = "axis id")]
    fn axis_id_zero_panics() {
        let _ = AxisId::new(0);
    }

    #[test]
    #[should_panic(expected = "axis id")]
    fn axis_id_sixteen_panics() {
        let _ = AxisId::new(16);
    }

    #[test]
    fn axis_classes_and_mult_counts() {
        assert_eq!(AxisId::new(2).class(), AxisClass::AabbFace);
        assert_eq!(AxisId::new(5).class(), AxisClass::ObbFace);
        assert_eq!(AxisId::new(7).class(), AxisClass::EdgeCross);
        let total: u32 = AxisId::all().map(axis_mult_count).sum();
        assert_eq!(total, SAT_ALL_MULS); // 81, as quoted in §4
    }

    #[test]
    fn disjoint_axis_aligned_boxes_separated_by_first_axes() {
        let obb = Obb::axis_aligned(Vec3::new(2.0, 0.0, 0.0), Vec3::splat(0.5));
        let r = sat_first_separating(&obb, &unit_aabb());
        assert_eq!(r.separating, Some(AxisId::new(1))); // world X separates
        assert_eq!(r.mults, 3);
        assert_eq!(r.axes_tested, 1);
    }

    #[test]
    fn overlapping_boxes_not_separated() {
        let obb = Obb::axis_aligned(Vec3::new(0.4, 0.0, 0.0), Vec3::splat(0.5));
        let r = sat_first_separating(&obb, &unit_aabb());
        assert!(r.colliding());
        assert_eq!(r.axes_tested, 15);
        assert_eq!(r.mults, SAT_ALL_MULS);
    }

    #[test]
    fn touching_boxes_count_as_colliding() {
        // Strict inequality in the test => touching is not separated.
        let obb = Obb::axis_aligned(Vec3::new(1.0, 0.0, 0.0), Vec3::splat(0.5));
        assert!(overlaps(&obb, &unit_aabb()));
    }

    #[test]
    fn diagonal_gap_needs_cross_axis() {
        // Rotate an OBB 45° about Z and place it diagonally off a corner so
        // that neither face-normal family separates, but an edge cross axis
        // does. Classic SAT corner case.
        let rot = Mat3::rotation_z(FRAC_PI_4);
        let obb = Obb::new(Vec3::new(0.95, 0.95, 0.0), Vec3::new(0.5, 0.1, 0.5), rot);
        let aabb = unit_aabb();
        let seq = sat_first_separating(&obb, &aabb);
        assert!(!seq.colliding(), "boxes should be disjoint");
        let all = sat_all(&obb, &aabb);
        assert_eq!(seq.separating, all.separating);
    }

    #[test]
    fn sat_all_always_costs_81() {
        let obb = Obb::axis_aligned(Vec3::new(5.0, 5.0, 5.0), Vec3::splat(0.1));
        let r = sat_all(&obb, &unit_aabb());
        assert_eq!(r.mults, 81);
        assert!(!r.colliding());
    }

    #[test]
    fn batch_matches_full_test() {
        let rot = Mat3::rotation_y(0.33) * Mat3::rotation_x(-0.71);
        let obb = Obb::new(Vec3::new(0.8, -0.3, 0.2), Vec3::new(0.3, 0.2, 0.1), rot);
        let aabb = unit_aabb();
        let stage1: Vec<AxisId> = (1..=6).map(AxisId::new).collect();
        let stage2: Vec<AxisId> = (7..=11).map(AxisId::new).collect();
        let stage3: Vec<AxisId> = (12..=15).map(AxisId::new).collect();
        let b1 = sat_batch(&obb, &aabb, &stage1);
        let b2 = sat_batch(&obb, &aabb, &stage2);
        let b3 = sat_batch(&obb, &aabb, &stage3);
        let staged_sep = b1.separating.or(b2.separating).or(b3.separating);
        assert_eq!(
            staged_sep.is_none(),
            sat_first_separating(&obb, &aabb).colliding()
        );
        assert_eq!(b1.mults + b2.mults + b3.mults, SAT_ALL_MULS);
        assert_eq!(b1.mults, 27);
        assert_eq!(b2.mults, 30);
        assert_eq!(b3.mults, 24);
    }

    #[test]
    fn rotation_rescues_overlap_detection() {
        // A long thin OBB rotated 45° overlaps the unit box even though its
        // center is outside the box's x-extent.
        let rot = Mat3::rotation_z(FRAC_PI_4);
        let obb = Obb::new(Vec3::new(0.9, 0.0, 0.0), Vec3::new(0.8, 0.05, 0.05), rot);
        assert!(overlaps(&obb, &unit_aabb()));
    }

    #[test]
    fn fixed_point_sat_agrees_on_clear_cases() {
        let rot = Mat3::rotation_z(0.6) * Mat3::rotation_x(0.25);
        let hit = Obb::new(Vec3::new(0.3, 0.2, -0.1), Vec3::new(0.25, 0.12, 0.08), rot);
        let miss = Obb::new(Vec3::new(1.8, 1.4, 0.9), Vec3::new(0.25, 0.12, 0.08), rot);
        let aabb = unit_aabb();
        assert!(overlaps(&hit, &aabb));
        assert!(overlaps(&hit.quantize(), &aabb.quantize()));
        assert!(!overlaps(&miss, &aabb));
        assert!(!overlaps(&miss.quantize(), &aabb.quantize()));
    }

    #[test]
    fn saturated_fixed_point_distances_stay_conservative() {
        // Boxes far outside the nominal workspace: the Q3.12 subtraction
        // saturates at ±8, which must still classify them as separated
        // (saturation shrinks distances toward the representable range but
        // the radii sums stay small).
        let a = Obb::axis_aligned(Vec3::new(6.0, 0.0, 0.0), Vec3::splat(0.1)).quantize();
        let b = Aabb::new(Vec3::new(-6.0, 0.0, 0.0), Vec3::splat(0.1)).quantize();
        assert!(!overlaps(&a, &b));
        // And genuinely overlapping far-out boxes stay colliding.
        let c = Obb::axis_aligned(Vec3::new(6.0, 0.0, 0.0), Vec3::splat(0.2)).quantize();
        let d = Aabb::new(Vec3::new(6.1, 0.0, 0.0), Vec3::splat(0.2)).quantize();
        assert!(overlaps(&c, &d));
    }

    #[test]
    fn obb_obb_basic_cases() {
        let a = Obb::axis_aligned(Vec3::zero(), Vec3::splat(0.5));
        // Disjoint along x.
        let far = Obb::axis_aligned(Vec3::new(2.0, 0.0, 0.0), Vec3::splat(0.5));
        assert!(!obb_obb_overlaps(&a, &far));
        // Overlapping.
        let near = Obb::axis_aligned(Vec3::new(0.7, 0.0, 0.0), Vec3::splat(0.5));
        assert!(obb_obb_overlaps(&a, &near));
        // Symmetric.
        assert!(obb_obb_overlaps(&near, &a));
        // Contained.
        let inner = Obb::axis_aligned(Vec3::zero(), Vec3::splat(0.1));
        assert!(obb_obb_overlaps(&a, &inner));
    }

    #[test]
    fn obb_obb_rotated_cases() {
        // Two thin rotated slabs crossing like an X: overlap.
        let a = Obb::new(
            Vec3::zero(),
            Vec3::new(0.6, 0.05, 0.05),
            Mat3::rotation_z(FRAC_PI_4),
        );
        let b = Obb::new(
            Vec3::zero(),
            Vec3::new(0.6, 0.05, 0.05),
            Mat3::rotation_z(-FRAC_PI_4),
        );
        assert!(obb_obb_overlaps(&a, &b));
        // Same slabs pulled apart along z: disjoint.
        let b_up = Obb::new(
            Vec3::new(0.0, 0.0, 0.2),
            Vec3::new(0.6, 0.05, 0.05),
            Mat3::rotation_z(-FRAC_PI_4),
        );
        assert!(!obb_obb_overlaps(&a, &b_up));
    }

    #[test]
    fn obb_obb_agrees_with_obb_aabb_when_one_box_is_axis_aligned() {
        let aabb = unit_aabb();
        let aabb_as_obb = Obb::axis_aligned(aabb.center, aabb.half);
        for i in 0..40 {
            let angle = i as f32 * 0.17;
            let obb = Obb::new(
                Vec3::new((i as f32 * 0.23).sin(), 0.4, -0.2),
                Vec3::new(0.3, 0.15, 0.1),
                Mat3::rotation_z(angle) * Mat3::rotation_x(angle * 0.5),
            );
            assert_eq!(
                obb_obb_overlaps(&obb, &aabb_as_obb),
                overlaps(&obb, &aabb),
                "disagreement at i={i}"
            );
        }
    }

    #[test]
    fn separating_axis_matches_geometric_truth_for_aligned_gap() {
        // Gap along world Y only.
        let obb = Obb::axis_aligned(Vec3::new(0.0, 1.5, 0.0), Vec3::splat(0.4));
        let r = sat_first_separating(&obb, &unit_aabb());
        assert_eq!(r.separating, Some(AxisId::new(2)));
    }
}
