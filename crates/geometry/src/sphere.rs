//! Spheres and the sphere–AABB overlap test used by the cascade filters.

use mp_fixed::{Acc, Fx};

use crate::aabb::Aabb;
use crate::scalar::Scalar;
use crate::vec3::Vector3;

/// Number of multiplications in one sphere–AABB overlap test.
///
/// The paper (§4): "The intersection test between a sphere and an AABB
/// requires three multiplications compared to 81 for checking all 15
/// separating axes" — the three squares of the per-axis clamped distances
/// (the radius is stored pre-squared).
pub const SPHERE_AABB_MULS: u32 = 3;

/// Sphere–AABB overlap in the scalar's native (narrow) arithmetic: the
/// cascade's filter primitive, factored out so the batched SoA kernels can
/// share the exact scalar expression. Squared distance from `center` to the
/// box's closest point is compared against `radius * radius`; touching
/// counts as overlap.
#[inline]
pub fn sphere_aabb_overlap<S: Scalar>(center: Vector3<S>, radius: S, aabb: &Aabb<S>) -> bool {
    let closest = aabb.closest_point(center);
    let d = closest - center;
    let dist2 = d.dot(d);
    let r2 = radius * radius;
    dist2 <= r2
}

/// A sphere given by center and radius.
///
/// # Examples
///
/// ```
/// use mp_geometry::{Aabb, Sphere, Vec3};
///
/// let s = Sphere::new(Vec3::zero(), 1.0);
/// let b = Aabb::new(Vec3::new(1.5, 0.0, 0.0), Vec3::splat(1.0));
/// assert!(s.overlaps_aabb(&b));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Sphere<S = f32> {
    /// Center of the sphere.
    pub center: Vector3<S>,
    /// Radius (non-negative).
    pub radius: S,
}

impl<S: Scalar> Sphere<S> {
    /// Creates a sphere.
    #[inline]
    pub fn new(center: Vector3<S>, radius: S) -> Sphere<S> {
        Sphere {
            center,
            radius: radius.abs(),
        }
    }
}

impl Sphere<f32> {
    /// Whether the sphere overlaps the AABB (touching counts).
    ///
    /// Uses Arvo's clamping algorithm: the squared distance from the sphere
    /// center to the closest point of the box is compared against `r²`.
    #[inline]
    pub fn overlaps_aabb(&self, aabb: &Aabb<f32>) -> bool {
        let closest = aabb.closest_point(self.center);
        let d = closest - self.center;
        d.length_squared() <= self.radius * self.radius
    }

    /// Quantizes to fixed point, rounding the radius *up* so the quantized
    /// sphere contains the exact one (conservative when used as a bounding
    /// volume).
    pub fn quantize_outer(&self) -> Sphere<Fx> {
        let q = Fx::from_f32(self.radius);
        let radius = if q.to_f32() < self.radius {
            q + Fx::EPSILON
        } else {
            q
        };
        Sphere::new(self.center.quantize(), radius)
    }

    /// Quantizes to fixed point, rounding the radius *down* so the quantized
    /// sphere is contained in the exact one (conservative when used as an
    /// inscribed volume).
    pub fn quantize_inner(&self) -> Sphere<Fx> {
        let q = Fx::from_f32(self.radius);
        let radius = if q.to_f32() > self.radius {
            q - Fx::EPSILON
        } else {
            q
        };
        Sphere::new(self.center.quantize(), radius.max(Fx::ZERO))
    }
}

impl Sphere<Fx> {
    /// Fixed-point sphere–AABB overlap test as computed by the Intersection
    /// Unit: per-axis clamped distance, three squares accumulated at full
    /// Q6.24 width ([`Acc`]), one wide comparison against the pre-squared
    /// radius.
    pub fn overlaps_aabb(&self, aabb: &Aabb<Fx>) -> bool {
        let closest = aabb.closest_point(self.center);
        let d = closest - self.center;
        let mut dist2 = Acc::ZERO;
        dist2 += d.x.wide_mul(d.x);
        dist2 += d.y.wide_mul(d.y);
        dist2 += d.z.wide_mul(d.z);
        let r2 = Acc::from_product(self.radius.wide_mul(self.radius));
        dist2 <= r2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AabbF, Vec3};

    #[test]
    fn radius_normalized_nonnegative() {
        let s = Sphere::new(Vec3::zero(), -2.0);
        assert_eq!(s.radius, 2.0);
    }

    #[test]
    fn overlap_center_inside() {
        let s = Sphere::new(Vec3::new(0.1, 0.1, 0.1), 0.01);
        let b = AabbF::new(Vec3::zero(), Vec3::splat(1.0));
        assert!(s.overlaps_aabb(&b));
    }

    #[test]
    fn overlap_face_touch() {
        let s = Sphere::new(Vec3::new(2.0, 0.0, 0.0), 1.0);
        let b = AabbF::new(Vec3::zero(), Vec3::splat(1.0));
        assert!(s.overlaps_aabb(&b)); // exactly touching
        let s_far = Sphere::new(Vec3::new(2.01, 0.0, 0.0), 1.0);
        assert!(!s_far.overlaps_aabb(&b));
    }

    #[test]
    fn overlap_corner_distance_matters() {
        let b = AabbF::new(Vec3::zero(), Vec3::splat(1.0));
        // Corner at (1,1,1); a sphere at (2,2,2) needs radius >= sqrt(3).
        let just_short = Sphere::new(Vec3::splat(2.0), 1.73);
        let enough = Sphere::new(Vec3::splat(2.0), 1.7321);
        assert!(!just_short.overlaps_aabb(&b));
        assert!(enough.overlaps_aabb(&b));
    }

    #[test]
    fn fixed_point_agrees_with_f32_away_from_boundary() {
        let b = AabbF::new(Vec3::new(0.25, 0.0, -0.25), Vec3::splat(0.25));
        let cases = [
            (Vec3::new(0.8, 0.0, 0.0), 0.1, false),
            (Vec3::new(0.6, 0.0, -0.2), 0.2, true),
            (Vec3::new(-0.5, 0.5, 0.5), 0.25, false),
            (Vec3::new(0.25, 0.1, -0.25), 0.05, true),
        ];
        for (c, r, expect) in cases {
            let s = Sphere::new(c, r);
            assert_eq!(s.overlaps_aabb(&b), expect, "f32 {c:?} r={r}");
            let sq = s.quantize_outer();
            assert_eq!(sq.overlaps_aabb(&b.quantize()), expect, "fx {c:?} r={r}");
        }
    }

    #[test]
    fn quantize_outer_inner_bracket_radius() {
        let s = Sphere::new(Vec3::zero(), 0.1234567);
        assert!(s.quantize_outer().radius.to_f32() >= s.radius);
        assert!(s.quantize_inner().radius.to_f32() <= s.radius);
    }
}
