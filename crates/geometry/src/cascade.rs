//! The cascaded early-exit intersection test of Fig 10.
//!
//! The flow filters "easy" cases with cheap sphere tests before falling back
//! to the staged separating-axis test:
//!
//! 1. **Bounding-sphere filter** (Fig 9a): if the OBB's bounding sphere does
//!    not touch the AABB, the boxes cannot collide → early exit
//!    *collision-free* after 3 multiplications.
//! 2. **Inscribed-sphere filter** (Fig 9b): if the OBB's inscribed sphere
//!    overlaps the AABB, the boxes definitely collide → early exit
//!    *colliding*. This captures the dominant colliding case where a large
//!    octree-level AABB swallows a small link OBB (§4: ~85 % of colliding
//!    cases involve level-1/2 octants).
//! 3. **Staged SAT**: the 15 separating-axis candidates run in batches of
//!    6‑5‑4 (chosen from the Fig 8b distribution); a later stage executes
//!    only if the previous one found no separating axis.

use crate::aabb::Aabb;
use crate::obb::Obb;
use crate::sat::{sat_batch_range, AxisId, SatResult};
use crate::scalar::Scalar;
use crate::sphere::SPHERE_AABB_MULS;

/// How the 15 axis tests are split across SAT stages.
///
/// # Examples
///
/// ```
/// use mp_geometry::cascade::StageSplit;
/// assert_eq!(StageSplit::default(), StageSplit::new([6, 5, 4]));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StageSplit {
    sizes: [u8; 3],
}

impl StageSplit {
    /// Creates a split from three stage sizes.
    ///
    /// # Panics
    ///
    /// Panics unless the sizes sum to 15 and each stage is non-empty.
    pub fn new(sizes: [u8; 3]) -> StageSplit {
        assert_eq!(
            sizes.iter().map(|&s| s as u32).sum::<u32>(),
            15,
            "stage sizes must cover all 15 axes"
        );
        assert!(sizes.iter().all(|&s| s > 0), "stages must be non-empty");
        StageSplit { sizes }
    }

    /// The stage sizes.
    #[inline]
    pub fn sizes(&self) -> [u8; 3] {
        self.sizes
    }

    /// The axis ids belonging to stage `k` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `k > 2`.
    pub fn stage_axes(&self, k: usize) -> Vec<AxisId> {
        let (start, len) = self.stage_range(k);
        (start..start + len).map(AxisId::new).collect()
    }

    /// The 1-based `(start, len)` axis range of stage `k` — the
    /// allocation-free form of [`StageSplit::stage_axes`] the cascade's
    /// inner loop uses.
    ///
    /// # Panics
    ///
    /// Panics if `k > 2`.
    #[inline]
    pub fn stage_range(&self, k: usize) -> (u8, u8) {
        assert!(k < 3, "stage index out of range: {k}");
        let start: u8 = 1 + self.sizes[..k].iter().sum::<u8>();
        (start, self.sizes[k])
    }
}

impl Default for StageSplit {
    /// The paper's 6‑5‑4 split (§4).
    fn default() -> StageSplit {
        StageSplit::new([6, 5, 4])
    }
}

/// Configuration of the cascaded test (which filters are enabled and how the
/// SAT stages are split). The default matches the paper's proposed design;
/// the other combinations reproduce the ablations of §7.2.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CascadeConfig {
    /// Enable the bounding-sphere early-out for far-apart objects.
    pub bounding_sphere_filter: bool,
    /// Enable the inscribed-sphere early-out for deeply overlapping objects.
    pub inscribed_sphere_filter: bool,
    /// The SAT stage split.
    pub split: StageSplit,
}

impl CascadeConfig {
    /// The full proposed design: both filters + 6‑5‑4 staging.
    pub fn proposed() -> CascadeConfig {
        CascadeConfig {
            bounding_sphere_filter: true,
            inscribed_sphere_filter: true,
            split: StageSplit::default(),
        }
    }

    /// Baseline without sphere filters (staged SAT only).
    pub fn without_filters() -> CascadeConfig {
        CascadeConfig {
            bounding_sphere_filter: false,
            inscribed_sphere_filter: false,
            split: StageSplit::default(),
        }
    }

    /// Only the bounding-sphere filter (the §7.2.1 intermediate ablation).
    pub fn bounding_only() -> CascadeConfig {
        CascadeConfig {
            inscribed_sphere_filter: false,
            ..CascadeConfig::proposed()
        }
    }
}

impl Default for CascadeConfig {
    fn default() -> CascadeConfig {
        CascadeConfig::proposed()
    }
}

/// Which stage of the cascade produced the final answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExitStage {
    /// The bounding-sphere filter proved the pair collision-free.
    BoundingSphere,
    /// The inscribed-sphere filter proved the pair colliding.
    InscribedSphere,
    /// SAT stage `k` (1-based) found a separating axis (collision-free).
    Sat(u8),
    /// All 15 axes were tested without finding a separating axis (colliding).
    Exhausted,
}

impl ExitStage {
    /// The cycle in which a multi-cycle Intersection Unit exits with this
    /// outcome (Fig 18b plots this "exit cycle" breakdown). Stage order:
    /// cycle 1 = spheres (both filters share the first cycle's datapath),
    /// cycles 2–4 = SAT stages, and an exhausted test leaves in cycle 4.
    pub fn exit_cycle(self) -> u32 {
        match self {
            ExitStage::BoundingSphere | ExitStage::InscribedSphere => 1,
            ExitStage::Sat(k) => 1 + k as u32,
            ExitStage::Exhausted => 4,
        }
    }
}

/// The outcome of one cascaded OBB–AABB intersection test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CascadeOutcome {
    /// Whether the boxes overlap.
    pub colliding: bool,
    /// Which stage resolved the query.
    pub exit: ExitStage,
    /// The separating axis, when SAT found one.
    pub separating_axis: Option<AxisId>,
    /// Multiplications spent (the paper's computation/energy proxy).
    pub mults: u32,
    /// Datapath stages actually executed (= busy cycles of the multi-cycle
    /// Intersection Unit).
    pub stages_executed: u32,
}

/// Runs the cascaded early-exit intersection test of Fig 10.
///
/// Works for both the `f32` reference scalars and the fixed-point hardware
/// scalars. The result is exact with respect to the *given* (possibly
/// quantized) boxes.
pub fn cascaded_obb_aabb<S: Scalar>(
    obb: &Obb<S>,
    aabb: &Aabb<S>,
    cfg: &CascadeConfig,
) -> CascadeOutcome {
    let mut mults = 0;
    let mut stages = 0;

    // Stage 1: sphere filters. The hardware evaluates both sphere tests in
    // the same cycle (shared subtract/square datapath); multiplications are
    // counted per executed test.
    if cfg.bounding_sphere_filter || cfg.inscribed_sphere_filter {
        stages += 1;
    }
    if cfg.bounding_sphere_filter {
        mults += SPHERE_AABB_MULS;
        if !sphere_overlaps(obb, aabb, obb.bounding_radius) {
            return CascadeOutcome {
                colliding: false,
                exit: ExitStage::BoundingSphere,
                separating_axis: None,
                mults,
                stages_executed: stages,
            };
        }
    }
    if cfg.inscribed_sphere_filter {
        mults += SPHERE_AABB_MULS;
        if sphere_overlaps(obb, aabb, obb.inscribed_radius) {
            return CascadeOutcome {
                colliding: true,
                exit: ExitStage::InscribedSphere,
                separating_axis: None,
                mults,
                stages_executed: stages,
            };
        }
    }

    // Stages 2-4: separating-axis batches (contiguous ranges — no per-call
    // id buffer).
    for k in 0..3 {
        let (start, len) = cfg.split.stage_range(k);
        let SatResult {
            separating,
            mults: stage_mults,
            ..
        } = sat_batch_range(obb, aabb, start, len);
        mults += stage_mults;
        stages += 1;
        if let Some(axis) = separating {
            return CascadeOutcome {
                colliding: false,
                exit: ExitStage::Sat(k as u8 + 1),
                separating_axis: Some(axis),
                mults,
                stages_executed: stages,
            };
        }
    }

    CascadeOutcome {
        colliding: true,
        exit: ExitStage::Exhausted,
        separating_axis: None,
        mults,
        stages_executed: stages,
    }
}

/// Sphere–AABB overlap with the sphere centered at the OBB center and the
/// given radius, in the scalar's native arithmetic.
///
/// For Fx the comparison stays narrow in the *test* path; the hardware
/// model in `mpaccel-core` uses the wide-accumulator fixed-point version —
/// the two agree because both are exact on Q3.12 inputs within the Q6.24
/// range.
fn sphere_overlaps<S: Scalar>(obb: &Obb<S>, aabb: &Aabb<S>, radius: S) -> bool {
    crate::sphere::sphere_aabb_overlap(obb.center, radius, aabb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::sat_first_separating;
    use crate::{AabbF, Mat3, Obb, Vec3};

    fn unit_aabb() -> AabbF {
        AabbF::new(Vec3::zero(), Vec3::splat(0.5))
    }

    #[test]
    fn stage_split_default_and_axes() {
        let s = StageSplit::default();
        assert_eq!(s.sizes(), [6, 5, 4]);
        assert_eq!(s.stage_axes(0).len(), 6);
        assert_eq!(s.stage_axes(1)[0], AxisId::new(7));
        assert_eq!(s.stage_axes(2)[3], AxisId::new(15));
    }

    #[test]
    #[should_panic(expected = "cover all 15")]
    fn stage_split_must_sum_to_15() {
        let _ = StageSplit::new([6, 5, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stage_axes_bounds() {
        let _ = StageSplit::default().stage_axes(3);
    }

    #[test]
    fn far_apart_exits_at_bounding_sphere() {
        let obb = Obb::axis_aligned(Vec3::new(3.0, 3.0, 3.0), Vec3::splat(0.2));
        let out = cascaded_obb_aabb(&obb, &unit_aabb(), &CascadeConfig::proposed());
        assert!(!out.colliding);
        assert_eq!(out.exit, ExitStage::BoundingSphere);
        assert_eq!(out.mults, 3);
        assert_eq!(out.stages_executed, 1);
        assert_eq!(out.exit.exit_cycle(), 1);
    }

    #[test]
    fn deep_overlap_exits_at_inscribed_sphere() {
        // Small OBB fully inside a big AABB: inscribed sphere overlaps.
        let big = AabbF::new(Vec3::zero(), Vec3::splat(1.0));
        let obb = Obb::axis_aligned(Vec3::new(0.1, 0.0, 0.0), Vec3::splat(0.1));
        let out = cascaded_obb_aabb(&obb, &big, &CascadeConfig::proposed());
        assert!(out.colliding);
        assert_eq!(out.exit, ExitStage::InscribedSphere);
        assert_eq!(out.mults, 6); // both sphere tests ran
        assert_eq!(out.stages_executed, 1);
    }

    #[test]
    fn near_miss_falls_through_to_sat() {
        // Bounding spheres overlap but boxes do not: diagonal near-miss.
        let rot = Mat3::rotation_z(core::f32::consts::FRAC_PI_4);
        let obb = Obb::new(Vec3::new(0.95, 0.95, 0.0), Vec3::new(0.5, 0.1, 0.5), rot);
        let out = cascaded_obb_aabb(&obb, &unit_aabb(), &CascadeConfig::proposed());
        assert!(!out.colliding);
        assert!(matches!(out.exit, ExitStage::Sat(_)));
        assert!(out.mults > 6);
    }

    #[test]
    fn grazing_collision_exhausts_all_axes() {
        // Overlapping, but too shallow for the inscribed sphere to prove it.
        let rot = Mat3::rotation_z(0.4);
        let obb = Obb::new(Vec3::new(0.62, 0.0, 0.0), Vec3::new(0.2, 0.05, 0.05), rot);
        let reference = sat_first_separating(&obb, &unit_aabb());
        assert!(reference.colliding(), "fixture must collide");
        let out = cascaded_obb_aabb(&obb, &unit_aabb(), &CascadeConfig::proposed());
        assert!(out.colliding);
        assert_eq!(out.exit, ExitStage::Exhausted);
        assert_eq!(out.exit.exit_cycle(), 4);
        // Both spheres + all 15 axes.
        assert_eq!(out.mults, 6 + 81);
        assert_eq!(out.stages_executed, 4);
    }

    #[test]
    fn cascade_agrees_with_plain_sat_on_a_grid() {
        // Exhaustive-ish sweep: cascade and plain SAT must always agree.
        let cfg = CascadeConfig::proposed();
        let aabb = unit_aabb();
        let rots = [
            Mat3::identity(),
            Mat3::rotation_z(0.7),
            Mat3::rotation_x(1.2) * Mat3::rotation_y(-0.5),
        ];
        let mut checked = 0;
        for rot in rots {
            for xi in -6..=6 {
                for yi in -4..=4 {
                    let center = Vec3::new(xi as f32 * 0.25, yi as f32 * 0.25, 0.1);
                    let obb = Obb::new(center, Vec3::new(0.3, 0.15, 0.1), rot);
                    let want = sat_first_separating(&obb, &aabb).colliding();
                    let got = cascaded_obb_aabb(&obb, &aabb, &cfg).colliding;
                    assert_eq!(got, want, "disagreement at {center:?} rot {rot:?}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 300);
    }

    #[test]
    fn disabled_filters_skip_sphere_stage() {
        let obb = Obb::axis_aligned(Vec3::new(3.0, 3.0, 3.0), Vec3::splat(0.2));
        let out = cascaded_obb_aabb(&obb, &unit_aabb(), &CascadeConfig::without_filters());
        assert!(!out.colliding);
        assert!(matches!(out.exit, ExitStage::Sat(1)));
        assert_eq!(out.mults, 27); // stage-1 axes only
        assert_eq!(out.stages_executed, 1);
    }

    #[test]
    fn bounding_only_config_detects_far_case_but_not_deep_case() {
        let cfg = CascadeConfig::bounding_only();
        let far = Obb::axis_aligned(Vec3::new(3.0, 0.0, 0.0), Vec3::splat(0.2));
        assert_eq!(
            cascaded_obb_aabb(&far, &unit_aabb(), &cfg).exit,
            ExitStage::BoundingSphere
        );
        let big = AabbF::new(Vec3::zero(), Vec3::splat(1.0));
        let deep = Obb::axis_aligned(Vec3::zero(), Vec3::splat(0.05));
        let out = cascaded_obb_aabb(&deep, &big, &cfg);
        assert!(out.colliding);
        assert_eq!(out.exit, ExitStage::Exhausted); // no inscribed shortcut
    }

    #[test]
    fn fixed_point_cascade_agrees_on_clear_cases() {
        let cfg = CascadeConfig::proposed();
        let aabb = unit_aabb();
        let rot = Mat3::rotation_y(0.9);
        let hit = Obb::new(Vec3::new(0.2, -0.1, 0.3), Vec3::new(0.3, 0.2, 0.1), rot);
        let miss = Obb::new(Vec3::new(2.0, 2.0, 2.0), Vec3::new(0.3, 0.2, 0.1), rot);
        assert!(cascaded_obb_aabb(&hit, &aabb, &cfg).colliding);
        assert!(cascaded_obb_aabb(&hit.quantize(), &aabb.quantize(), &cfg).colliding);
        assert!(!cascaded_obb_aabb(&miss, &aabb, &cfg).colliding);
        assert!(!cascaded_obb_aabb(&miss.quantize(), &aabb.quantize(), &cfg).colliding);
    }

    #[test]
    fn ablation_splits_are_equivalent_in_outcome() {
        // 5-5-5 and 6-5-4 must classify identically (only cost differs).
        let cfg_a = CascadeConfig::proposed();
        let cfg_b = CascadeConfig {
            split: StageSplit::new([5, 5, 5]),
            ..CascadeConfig::proposed()
        };
        let aabb = unit_aabb();
        for i in 0..20 {
            let angle = i as f32 * 0.3;
            let obb = Obb::new(
                Vec3::new((i as f32 * 0.11).sin(), 0.3, -0.2),
                Vec3::new(0.25, 0.15, 0.1),
                Mat3::rotation_z(angle),
            );
            assert_eq!(
                cascaded_obb_aabb(&obb, &aabb, &cfg_a).colliding,
                cascaded_obb_aabb(&obb, &aabb, &cfg_b).colliding
            );
        }
    }
}
