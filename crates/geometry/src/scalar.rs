//! The scalar abstraction shared by the `f32` reference path and the
//! fixed-point hardware path.

use core::fmt::Debug;
use core::ops::{Add, Mul, Neg, Sub};

use mp_fixed::Fx;

use crate::soa::SatConsts;
use crate::vec3::Vector3;

/// A numeric type the geometry kernels can run on.
///
/// Implemented for `f32` (exact software reference) and [`Fx`] (the Q3.12
/// fixed-point format used by the accelerator datapath). The trait is
/// deliberately tiny: the separating-axis test and sphere tests only need
/// ring operations, comparison and absolute value — the hardware never
/// divides or takes square roots.
///
/// This trait is sealed: it is not meant to be implemented outside this
/// crate, because the hardware models assume one of the two blessed
/// representations.
pub trait Scalar:
    Copy
    + Debug
    + Default
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + private::Sealed
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Smallest positive quantum used as a robustness epsilon in the
    /// cross-product axes of the separating-axis test.
    fn epsilon() -> Self;
    /// Conversion from `f32` (rounding for fixed point).
    fn from_f32(v: f32) -> Self;
    /// Conversion to `f32` (exact for both implementations).
    fn to_f32(self) -> f32;
    /// The smaller of two values.
    fn min_val(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }
    /// The larger of two values.
    fn max_val(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Batch-kernel dispatch hook: per-lane sphere–AABB verdicts (see
    /// `crate::soa`). The default generic loop is the reference; `f32`
    /// reroutes to the explicitly width-blocked path when the `simd`
    /// feature is enabled. Both produce bit-identical results — this hook
    /// only selects the code shape handed to the optimizer.
    #[doc(hidden)]
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn soa_sphere_lanes(
        p: Vector3<Self>,
        r2: Self,
        cx: &[Self],
        cy: &[Self],
        cz: &[Self],
        hx: &[Self],
        hy: &[Self],
        hz: &[Self],
        out: &mut [bool],
    ) {
        crate::soa::sphere_lanes_generic(p, r2, cx, cy, cz, hx, hy, hz, out);
    }

    /// Batch-kernel dispatch hook: one SAT axis swept across lanes (see
    /// `crate::soa`); same `simd`-feature rerouting as
    /// [`Scalar::soa_sphere_lanes`].
    #[doc(hidden)]
    #[inline]
    fn soa_sat_axis_lanes(
        raw: u8,
        c: &SatConsts<Self>,
        ts: [&[Self]; 3],
        bs: [&[Self]; 3],
        first: &mut [u8],
    ) {
        crate::soa::sat_axis_lanes_generic(raw, c, ts, bs, first);
    }
}

impl Scalar for f32 {
    #[inline]
    fn zero() -> f32 {
        0.0
    }
    #[inline]
    fn one() -> f32 {
        1.0
    }
    #[inline]
    fn abs(self) -> f32 {
        f32::abs(self)
    }
    #[inline]
    fn epsilon() -> f32 {
        1e-6
    }
    #[inline]
    fn from_f32(v: f32) -> f32 {
        v
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self
    }

    #[cfg(feature = "simd")]
    #[inline]
    fn soa_sphere_lanes(
        p: Vector3<f32>,
        r2: f32,
        cx: &[f32],
        cy: &[f32],
        cz: &[f32],
        hx: &[f32],
        hy: &[f32],
        hz: &[f32],
        out: &mut [bool],
    ) {
        crate::soa::wide::sphere_lanes_f32(p, r2, cx, cy, cz, hx, hy, hz, out);
    }

    #[cfg(feature = "simd")]
    #[inline]
    fn soa_sat_axis_lanes(
        raw: u8,
        c: &SatConsts<f32>,
        ts: [&[f32]; 3],
        bs: [&[f32]; 3],
        first: &mut [u8],
    ) {
        crate::soa::wide::sat_axis_lanes_f32(raw, c, ts, bs, first);
    }
}

impl Scalar for Fx {
    #[inline]
    fn zero() -> Fx {
        Fx::ZERO
    }
    #[inline]
    fn one() -> Fx {
        Fx::ONE
    }
    #[inline]
    fn abs(self) -> Fx {
        Fx::abs(self)
    }
    #[inline]
    fn epsilon() -> Fx {
        Fx::EPSILON
    }
    #[inline]
    fn from_f32(v: f32) -> Fx {
        Fx::from_f32(v)
    }
    #[inline]
    fn to_f32(self) -> f32 {
        Fx::to_f32(self)
    }
}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for mp_fixed::Fx {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_scalar_basics() {
        assert_eq!(<f32 as Scalar>::zero(), 0.0);
        assert_eq!(<f32 as Scalar>::one(), 1.0);
        assert_eq!(Scalar::abs(-2.0f32), 2.0);
        assert_eq!(2.0f32.min_val(3.0), 2.0);
        assert_eq!(2.0f32.max_val(3.0), 3.0);
    }

    #[test]
    fn fx_scalar_basics() {
        assert_eq!(<Fx as Scalar>::zero(), Fx::ZERO);
        assert_eq!(<Fx as Scalar>::one(), Fx::ONE);
        assert_eq!(Scalar::abs(Fx::from_f32(-2.0)), Fx::from_f32(2.0));
        assert_eq!(<Fx as Scalar>::epsilon(), Fx::EPSILON);
    }

    #[test]
    fn conversion_roundtrip() {
        let v = 0.125f32;
        assert_eq!(<Fx as Scalar>::from_f32(v).to_f32(), v);
        assert_eq!(<f32 as Scalar>::from_f32(v).to_f32(), v);
    }
}
