//! Property-based tests for the intersection kernels.

use mp_geometry::cascade::{cascaded_obb_aabb, CascadeConfig, StageSplit};
use mp_geometry::sat::{
    overlaps, quantization_margin, sat_all, sat_batch_range, sat_first_separating,
    signed_separation,
};
use mp_geometry::soa::{
    cascade_batch_soa, sat_batch_soa, sat_overlaps_hoisted, sphere_aabb_batch_soa, AabbSoa,
    CascadeBatchScratch, SatConsts,
};
use mp_geometry::sphere::sphere_aabb_overlap;
use mp_geometry::{Aabb, AabbF, Mat3, Obb, Sphere, Vec3};
use proptest::prelude::*;

fn any_vec(range: f32) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn any_half() -> impl Strategy<Value = Vec3> {
    (0.02f32..0.6, 0.02f32..0.6, 0.02f32..0.6).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn any_rot() -> impl Strategy<Value = Mat3> {
    (-3.0f32..3.0, -1.5f32..1.5, -3.0f32..3.0)
        .prop_map(|(a, b, c)| Mat3::rotation_z(a) * Mat3::rotation_y(b) * Mat3::rotation_x(c))
}

fn any_obb() -> impl Strategy<Value = Obb> {
    (any_vec(1.5), any_half(), any_rot()).prop_map(|(c, h, r)| Obb::new(c, h, r))
}

fn any_aabb() -> impl Strategy<Value = AabbF> {
    (any_vec(1.0), any_half()).prop_map(|(c, h)| Aabb::new(c, h))
}

/// Samples a dense grid of points inside the OBB; if any lies inside the
/// AABB the boxes definitely overlap (a one-sided geometric oracle).
fn sampled_overlap_witness(obb: &Obb, aabb: &AabbF) -> bool {
    let n = 6;
    for ix in 0..=n {
        for iy in 0..=n {
            for iz in 0..=n {
                let f = |i: i32, h: f32| (i as f32 / n as f32 * 2.0 - 1.0) * h;
                let local = Vec3::new(f(ix, obb.half.x), f(iy, obb.half.y), f(iz, obb.half.z));
                let world = obb.center + obb.rotation * local;
                if aabb.contains_point(world) {
                    return true;
                }
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// The cascaded early-exit flow must classify exactly like plain SAT.
    #[test]
    fn cascade_equals_sat(obb in any_obb(), aabb in any_aabb()) {
        let want = sat_first_separating(&obb, &aabb).colliding();
        let got = cascaded_obb_aabb(&obb, &aabb, &CascadeConfig::proposed()).colliding;
        prop_assert_eq!(got, want);
    }

    /// Sequential early-exit and fully-parallel SAT agree on the outcome and
    /// on the first separating axis.
    #[test]
    fn sequential_and_parallel_sat_agree(obb in any_obb(), aabb in any_aabb()) {
        let seq = sat_first_separating(&obb, &aabb);
        let all = sat_all(&obb, &aabb);
        prop_assert_eq!(seq.colliding(), all.colliding());
        prop_assert_eq!(seq.separating, all.separating);
        prop_assert!(seq.mults <= all.mults);
    }

    /// If a sampled point of the OBB lies inside the AABB, SAT must report
    /// a collision (SAT never produces false "separated" verdicts).
    #[test]
    fn sat_never_misses_witnessed_overlap(obb in any_obb(), aabb in any_aabb()) {
        if sampled_overlap_witness(&obb, &aabb) {
            prop_assert!(overlaps(&obb, &aabb));
        }
    }

    /// Disjoint enclosing AABBs imply SAT separation (necessary condition;
    /// axes 1-3 of the SAT are exactly this test).
    #[test]
    fn enclosing_aabb_disjoint_implies_separated(obb in any_obb(), aabb in any_aabb()) {
        if !obb.enclosing_aabb().overlaps(&aabb) {
            prop_assert!(!overlaps(&obb, &aabb));
        }
    }

    /// Fixed-point quantization is conservative: an f32-colliding pair with
    /// margin (witnessed by a strictly interior sample point) stays
    /// colliding after quantization.
    #[test]
    fn quantization_preserves_witnessed_collisions(obb in any_obb(), aabb in any_aabb()) {
        // Shrink the obb slightly for the witness so the overlap has margin.
        let shrunk = Obb::new(obb.center, obb.half * 0.9, obb.rotation);
        if sampled_overlap_witness(&shrunk, &aabb) {
            prop_assert!(overlaps(&obb.quantize(), &aabb.quantize()));
        }
    }

    /// The bounding sphere always contains the OBB's corners and the
    /// inscribed sphere never pokes out of it.
    #[test]
    fn sphere_radii_bracket_box(obb in any_obb()) {
        for c in obb.corners() {
            let d = (c - obb.center).length();
            prop_assert!(d <= obb.bounding_radius + 1e-4);
            prop_assert!(d >= obb.inscribed_radius - 1e-4);
        }
    }

    /// Sphere-AABB overlap agrees between f32 and fixed point on clear cases
    /// (margin larger than the quantization grid).
    #[test]
    fn sphere_test_f32_fx_agree_with_margin(c in any_vec(1.5), r in 0.05f32..0.8, aabb in any_aabb()) {
        let s = Sphere::new(c, r);
        let closest = aabb.closest_point(c);
        let margin = ((closest - c).length() - r).abs();
        prop_assume!(margin > 0.01);
        let f32_hit = s.overlaps_aabb(&aabb);
        let fx_hit = s.quantize_outer().overlaps_aabb(&aabb.quantize());
        prop_assert_eq!(f32_hit, fx_hit);
    }

    /// All stage splits classify identically (the split is an energy/latency
    /// trade-off, never a correctness knob).
    #[test]
    fn stage_splits_classify_identically(obb in any_obb(), aabb in any_aabb()) {
        let base = cascaded_obb_aabb(&obb, &aabb, &CascadeConfig::proposed()).colliding;
        for split in [[5u8, 5, 5], [6, 5, 4], [10, 3, 2], [1, 1, 13]] {
            let cfg = CascadeConfig { split: StageSplit::new(split), ..CascadeConfig::proposed() };
            prop_assert_eq!(cascaded_obb_aabb(&obb, &aabb, &cfg).colliding, base);
        }
    }

    /// Differential Q3.12-vs-f32 verdicts: the fixed-point SAT may only
    /// disagree with the exact f32 SAT when the pair sits within the
    /// documented quantization margin of the separated/colliding
    /// threshold, and any disagreement must be collision-biased — a pair
    /// separated (resp. colliding) by more than the margin classifies
    /// identically in both arithmetics.
    #[test]
    fn fx_and_f32_sat_disagree_only_inside_the_margin(obb in any_obb(), aabb in any_aabb()) {
        let f32_hit = overlaps(&obb, &aabb);
        let fx_hit = overlaps(&obb.quantize(), &aabb.quantize());
        if f32_hit != fx_hit {
            let sep = signed_separation(&obb, &aabb);
            let margin = quantization_margin(&obb, &aabb);
            prop_assert!(
                sep.abs() <= margin,
                "verdicts disagree (f32 {} vs fx {}) outside the margin: |{}| > {}",
                f32_hit, fx_hit, sep, margin
            );
        }
    }

    /// Conservatism, stated directly: a collision deeper than the margin
    /// is never reported free by fixed point (the safety direction — a
    /// false "free" verdict would let a planner drive through an
    /// obstacle).
    #[test]
    fn fx_never_frees_a_deep_collision(obb in any_obb(), aabb in any_aabb()) {
        let sep = signed_separation(&obb, &aabb);
        if sep < -quantization_margin(&obb, &aabb) {
            prop_assert!(overlaps(&obb.quantize(), &aabb.quantize()),
                "fx freed a collision with separation {sep}");
        }
    }

    /// The fixed-point cascade classifies exactly like the fixed-point
    /// SAT — the early-exit flow is arithmetic-agnostic.
    #[test]
    fn fx_cascade_equals_fx_sat(obb in any_obb(), aabb in any_aabb()) {
        let (qo, qa) = (obb.quantize(), aabb.quantize());
        let want = sat_first_separating(&qo, &qa).colliding();
        let got = cascaded_obb_aabb(&qo, &qa, &CascadeConfig::proposed()).colliding;
        prop_assert_eq!(got, want);
    }

    /// The signed separation agrees in sign with the SAT verdict.
    #[test]
    fn signed_separation_matches_the_verdict(obb in any_obb(), aabb in any_aabb()) {
        let sep = signed_separation(&obb, &aabb);
        prop_assert_eq!(sep > 0.0, !overlaps(&obb, &aabb));
    }

    /// Cascade multiplication accounting is bounded by filters + full SAT.
    #[test]
    fn cascade_mults_bounded(obb in any_obb(), aabb in any_aabb()) {
        let out = cascaded_obb_aabb(&obb, &aabb, &CascadeConfig::proposed());
        prop_assert!(out.mults >= 3);
        prop_assert!(out.mults <= 6 + 81);
        prop_assert!(out.stages_executed >= 1 && out.stages_executed <= 4);
    }

    /// The batched SoA cascade is the scalar cascade, lane for lane: the
    /// whole outcome record (verdict, exit stage, first separating axis,
    /// mult and stage counters) must match bit-identically for every lane
    /// and every cascade configuration.
    #[test]
    fn cascade_batch_is_bit_identical_to_scalar(
        obb in any_obb(),
        boxes in prop::collection::vec(any_aabb(), 1..12),
    ) {
        let mut soa = AabbSoa::with_capacity(boxes.len());
        for b in &boxes {
            soa.push(b);
        }
        let mut scratch = CascadeBatchScratch::default();
        let mut out = Vec::new();
        for cfg in [
            CascadeConfig::proposed(),
            CascadeConfig::without_filters(),
            CascadeConfig::bounding_only(),
        ] {
            cascade_batch_soa(&obb, &cfg, &soa, 0..soa.len(), &mut scratch, &mut out);
            prop_assert_eq!(out.len(), boxes.len());
            for (l, b) in boxes.iter().enumerate() {
                let want = cascaded_obb_aabb(&obb, b, &cfg);
                prop_assert_eq!(&out[l], &want, "lane {} cfg {:?}", l, cfg);
            }
        }
    }

    /// Same bit-identity contract in Q3.12: quantize both sides and the
    /// batched cascade must still replicate the scalar fixed-point cascade
    /// exactly.
    #[test]
    fn cascade_batch_is_bit_identical_in_fixed_point(
        obb in any_obb(),
        boxes in prop::collection::vec(any_aabb(), 1..12),
    ) {
        let q = obb.quantize();
        let mut soa = AabbSoa::with_capacity(boxes.len());
        let qboxes: Vec<_> = boxes.iter().map(|b| b.quantize()).collect();
        for b in &qboxes {
            soa.push(b);
        }
        let cfg = CascadeConfig::proposed();
        let mut scratch = CascadeBatchScratch::default();
        let mut out = Vec::new();
        cascade_batch_soa(&q, &cfg, &soa, 0..soa.len(), &mut scratch, &mut out);
        for (l, b) in qboxes.iter().enumerate() {
            let want = cascaded_obb_aabb(&q, b, &cfg);
            prop_assert_eq!(&out[l], &want, "lane {}", l);
        }
    }

    /// The batched SAT kernel matches the scalar ranged SAT on every lane
    /// for every stage of the 6-5-4 split, in both arithmetics: same
    /// verdict, same first separating axis, same mult count.
    #[test]
    fn sat_batch_is_bit_identical_to_scalar(
        obb in any_obb(),
        boxes in prop::collection::vec(any_aabb(), 1..10),
    ) {
        let q = obb.quantize();
        let mut soa = AabbSoa::with_capacity(boxes.len());
        let mut qsoa = AabbSoa::with_capacity(boxes.len());
        for b in &boxes {
            soa.push(b);
            qsoa.push(&b.quantize());
        }
        let mut scratch = CascadeBatchScratch::default();
        let mut qscratch = CascadeBatchScratch::default();
        let mut out = Vec::new();
        let mut qout = Vec::new();
        for (start, len) in [(1u8, 6u8), (7, 5), (12, 4), (1, 15)] {
            sat_batch_soa(&obb, &soa, 0..soa.len(), start, len, &mut scratch, &mut out);
            sat_batch_soa(&q, &qsoa, 0..qsoa.len(), start, len, &mut qscratch, &mut qout);
            for (l, b) in boxes.iter().enumerate() {
                let want = sat_batch_range(&obb, b, start, len);
                prop_assert_eq!(&out[l], &want, "f32 lane {} axes {}+{}", l, start, len);
                let qwant = sat_batch_range(&q, &b.quantize(), start, len);
                prop_assert_eq!(&qout[l], &qwant, "fx lane {} axes {}+{}", l, start, len);
            }
        }
    }

    /// The batched sphere filter matches the scalar sphere-AABB test on
    /// every lane.
    #[test]
    fn sphere_batch_is_bit_identical_to_scalar(
        obb in any_obb(),
        boxes in prop::collection::vec(any_aabb(), 1..10),
    ) {
        let mut soa = AabbSoa::with_capacity(boxes.len());
        for b in &boxes {
            soa.push(b);
        }
        let mut out = Vec::new();
        sphere_aabb_batch_soa(obb.center, obb.bounding_radius, &soa, 0..soa.len(), &mut out);
        for (l, b) in boxes.iter().enumerate() {
            let want = sphere_aabb_overlap(obb.center, obb.bounding_radius, b);
            prop_assert_eq!(out[l], want, "lane {}", l);
        }
    }

    /// The hoisted-constants overlap sweep (voxel rasterization path) is
    /// the plain 15-axis SAT verdict, pair for pair.
    #[test]
    fn hoisted_overlap_equals_plain_sat(
        obb in any_obb(),
        boxes in prop::collection::vec(any_aabb(), 1..10),
    ) {
        let consts = SatConsts::new(&obb);
        for b in &boxes {
            prop_assert_eq!(
                sat_overlaps_hoisted(&consts, obb.center, b),
                overlaps(&obb, b)
            );
        }
    }
}
