//! Cycle-level model of the Cascaded Early-exit Collision Detection Unit
//! (CECDU, Fig 13).
//!
//! A CECDU answers one robot-pose collision query. The OBB Generation Unit
//! (Fig 14a) computes the per-link transforms — a 5-stage pipelined
//! fifth-order trig unit feeding matrix multipliers — and streams the link
//! OBBs to the unit's OOCD(s). The Result Collector early-exits the pose
//! query on the first colliding link; with several OOCDs, links are
//! dispatched in synchronous waves (§7.2.2: "the collision detection time
//! for parallel intersection tests is dominated by the highest intersection
//! test time across all units as we use synchronous scheduling").

use std::cell::Cell;

use mp_collision::{CdStats, CollisionChecker};
use mp_geometry::cascade::CascadeConfig;
use mp_geometry::{Obb, Transform};
use mp_octree::Octree;
use mp_robot::fk::link_obbs_into;
use mp_robot::trig::TRIG_LATENCY_CYCLES;
use mp_robot::{JointConfig, RobotModel, TrigMode};
use mp_sim::fault::FaultKind;
use mp_sim::{CecduConfig, FaultInjector, OpCounter};

use crate::oocd::{run_oocd, run_oocd_with_faults, OocdConfig};

thread_local! {
    // FK scratch reused across pose queries (`CecduSim` is stateless by
    // design — many callers share one sim immutably — so the per-pose
    // buffers live here, like the OOCD traversal scratch).
    static FK_SCRATCH: Cell<(Vec<Transform>, Vec<Obb<f32>>)> = Cell::default();
}

/// Cycles from pose arrival until the first link OBB is ready: the trig
/// pipeline depth plus the matrix-multiply/add stage.
pub const OBB_GEN_FIRST_READY: u64 = TRIG_LATENCY_CYCLES as u64 + 3;

/// Cycles between consecutive link OBBs (the trig unit and matrix stage are
/// pipelined across links).
pub const OBB_GEN_INTERVAL: u64 = 2;

/// Multiplications per generated link OBB (4×4 transform compose + box
/// rotation): counted into the energy proxy.
const OBB_GEN_MULTS: u64 = 24;

/// Result of one robot-pose collision query on a CECDU.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CecduResult {
    /// Whether the robot collides with the environment at this pose.
    pub colliding: bool,
    /// Total cycles for the query.
    pub cycles: u64,
    /// Link OBBs actually sent to OOCDs (early exit skips the rest).
    pub links_checked: usize,
    /// Work performed.
    pub ops: OpCounter,
}

/// A CECDU bound to a robot and an environment octree.
///
/// # Examples
///
/// ```
/// use mp_octree::{Scene, SceneConfig};
/// use mp_robot::RobotModel;
/// use mp_sim::{CecduConfig, IuKind};
/// use mpaccel_core::cecdu::CecduSim;
///
/// let scene = Scene::random(SceneConfig::paper(), 0);
/// let cecdu = CecduSim::new(
///     RobotModel::jaco2(),
///     scene.octree(),
///     CecduConfig::new(4, IuKind::MultiCycle),
/// );
/// let out = cecdu.check_pose(&cecdu.robot().home());
/// assert!(!out.colliding);
/// assert!(out.cycles > 0);
/// ```
#[derive(Clone, Debug)]
pub struct CecduSim {
    robot: RobotModel,
    octree: Octree,
    config: CecduConfig,
    cascade: CascadeConfig,
    trig: TrigMode,
}

impl CecduSim {
    /// Creates a CECDU for a robot in an environment.
    pub fn new(robot: RobotModel, octree: Octree, config: CecduConfig) -> CecduSim {
        CecduSim {
            robot,
            octree,
            config,
            cascade: CascadeConfig::proposed(),
            trig: TrigMode::Hardware,
        }
    }

    /// Overrides the intersection cascade (for the §7.2.1 ablations).
    pub fn with_cascade(mut self, cascade: CascadeConfig) -> CecduSim {
        self.cascade = cascade;
        self
    }

    /// Uses exact trigonometry instead of the hardware approximation.
    pub fn with_exact_trig(mut self) -> CecduSim {
        self.trig = TrigMode::Exact;
        self
    }

    /// The robot model.
    pub fn robot(&self) -> &RobotModel {
        &self.robot
    }

    /// The environment octree.
    pub fn octree(&self) -> &Octree {
        &self.octree
    }

    /// The hardware configuration.
    pub fn config(&self) -> CecduConfig {
        self.config
    }

    /// Replaces the environment (sensor update).
    pub fn set_octree(&mut self, octree: Octree) {
        self.octree = octree;
    }

    /// Runs one robot-pose collision query, cycle by cycle.
    ///
    /// # Panics
    ///
    /// Panics if `pose.dof()` does not match the robot.
    pub fn check_pose(&self, pose: &JointConfig) -> CecduResult {
        assert_eq!(pose.dof(), self.robot.dof(), "configuration DOF mismatch");
        mp_collision::metrics::record_pose_checks(1);
        #[cfg(feature = "telemetry")]
        let tele_span = mp_telemetry::sampled_span("core", "cecdu_pose");
        let (mut frames, mut obbs) = FK_SCRATCH.with(Cell::take);
        link_obbs_into(&self.robot, pose, self.trig, &mut frames, &mut obbs);
        let oocd_cfg = OocdConfig {
            iu: self.config.iu,
            cascade: self.cascade,
        };

        let mut ops = OpCounter::default();
        let mut links_checked = 0usize;
        let mut colliding = false;
        let n = self.config.oocds.max(1);

        // Timing: links are dispatched to the OOCD array in synchronous
        // waves of `n`; a wave starts once its last OBB has been generated
        // and the previous wave has drained. Waves are evaluated lazily —
        // only links the hardware actually dispatches run their OOCD
        // traversal (early exit cancels the rest), which is what the
        // cycle/op totals counted all along.
        let ready = |i: usize| OBB_GEN_FIRST_READY + OBB_GEN_INTERVAL * i as u64;
        let mut t: u64 = 0;
        let mut i = 0usize;
        while i < obbs.len() {
            let wave_end_idx = (i + n).min(obbs.len());
            let start = t.max(ready(wave_end_idx - 1));
            let mut dur = 0u64;
            for obb in &obbs[i..wave_end_idx] {
                let r = run_oocd(&self.octree, &obb.quantize(), &oocd_cfg);
                dur = dur.max(r.cycles);
                ops += r.ops;
                ops.mults += OBB_GEN_MULTS;
                // The OBB Generation Unit fetches the link's kinematic row
                // (DH parameters + box extents) from the unit's large
                // configuration SRAM once per generated link OBB.
                ops.big_sram_reads += 1;
                links_checked += 1;
                if r.colliding {
                    colliding = true;
                }
            }
            t = start + dur;
            if colliding {
                break; // Result Collector stops subsequent waves.
            }
            i = wave_end_idx;
        }
        FK_SCRATCH.set((frames, obbs));
        // +1 cycle for the Result Collector to report back.
        ops.cd_queries += 1;
        // Feed the process-wide CD energy counters so hardware-model pose
        // queries show up in `collision::metrics::energy_pj_total` next to
        // the software oracle's (node reads land in the same small-SRAM
        // class the software walk bills).
        mp_collision::metrics::record_pose_work(ops.sram_reads, ops.box_tests, ops.mults);
        #[cfg(feature = "telemetry")]
        tele_span.end_with(|| {
            mp_telemetry::arg2(
                "links",
                mp_telemetry::ArgValue::U64(links_checked as u64),
                "colliding",
                mp_telemetry::ArgValue::U64(colliding as u64),
            )
        });
        CecduResult {
            colliding,
            cycles: t + 1,
            links_checked,
            ops,
        }
    }

    /// [`CecduSim::check_pose`] with fault injection.
    ///
    /// Each link OBB traversal runs through
    /// [`run_oocd_with_faults`](crate::oocd::run_oocd_with_faults) (SRAM
    /// upsets), and each link is additionally an opportunity for a
    /// [`FaultKind::Saturation`] event in the fixed-point intersection
    /// datapath, which inverts that link's verdict. With `detection`
    /// enabled, SRAM parity checks run and saturation raises the sticky
    /// overflow flag the Result Collector reads out; structural checks in
    /// the OOCD are always active. Early exit on a colliding link is
    /// preserved, so faults on later links may go unobserved — exactly as
    /// in hardware.
    pub fn check_pose_with_faults(
        &self,
        pose: &JointConfig,
        inj: &mut FaultInjector,
        detection: bool,
    ) -> FaultyCecduOutcome {
        assert_eq!(pose.dof(), self.robot.dof(), "configuration DOF mismatch");
        let (mut frames, mut obbs) = FK_SCRATCH.with(Cell::take);
        link_obbs_into(&self.robot, pose, self.trig, &mut frames, &mut obbs);
        let oocd_cfg = OocdConfig {
            iu: self.config.iu,
            cascade: self.cascade,
        };

        let mut ops = OpCounter::default();
        let mut links_checked = 0usize;
        let mut colliding = false;
        let mut detected = false;
        let mut faults_injected = 0u32;
        let n = self.config.oocds.max(1);

        // Waves are evaluated lazily so faults are only injected on links
        // the hardware actually dispatches (early exit cancels the rest).
        let ready = |i: usize| OBB_GEN_FIRST_READY + OBB_GEN_INTERVAL * i as u64;
        let mut t: u64 = 0;
        let mut i = 0usize;
        while i < obbs.len() {
            let wave_end_idx = (i + n).min(obbs.len());
            let start = t.max(ready(wave_end_idx - 1));
            let mut dur = 0u64;
            for obb in &obbs[i..wave_end_idx] {
                let f =
                    run_oocd_with_faults(&self.octree, &obb.quantize(), &oocd_cfg, inj, detection);
                let mut link_colliding = f.result.colliding;
                if f.detected() {
                    detected = true;
                }
                faults_injected += f.sram_upsets;
                if inj.fires(FaultKind::Saturation) {
                    faults_injected += 1;
                    link_colliding = !link_colliding;
                    if detection {
                        // The saturating adder sets a sticky overflow flag
                        // the Result Collector reads with the verdict.
                        detected = true;
                    }
                }
                dur = dur.max(f.result.cycles);
                ops += f.result.ops;
                ops.mults += OBB_GEN_MULTS;
                ops.big_sram_reads += 1;
                links_checked += 1;
                if link_colliding {
                    colliding = true;
                }
            }
            t = start + dur;
            if colliding {
                break; // Result Collector stops subsequent waves.
            }
            i = wave_end_idx;
        }
        FK_SCRATCH.set((frames, obbs));
        ops.cd_queries += 1;
        FaultyCecduOutcome {
            result: CecduResult {
                colliding,
                cycles: t + 1,
                links_checked,
                ops,
            },
            detected,
            faults_injected,
        }
    }
}

/// Outcome of one fault-injected CECDU pose query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultyCecduOutcome {
    /// The (possibly corrupted) query result. On detection the colliding
    /// verdict is the unit's conservative fallback; callers with a retry
    /// budget should re-dispatch instead.
    pub result: CecduResult,
    /// Whether any detection mechanism fired (SRAM parity, structural
    /// traversal checks, or the sticky saturation flag).
    pub detected: bool,
    /// Faults injected while evaluating this query (SRAM upsets observed
    /// by the traversals plus saturation events on checked links).
    pub faults_injected: u32,
}

/// A [`CollisionChecker`] adapter over a CECDU, so planners and the
/// software tooling can run directly on the hardware model. Accumulates
/// both functional stats and total busy cycles.
#[derive(Clone, Debug)]
pub struct CecduChecker {
    sim: CecduSim,
    stats: CdStats,
    busy_cycles: u64,
}

impl CecduChecker {
    /// Wraps a CECDU simulation.
    pub fn new(sim: CecduSim) -> CecduChecker {
        CecduChecker {
            sim,
            stats: CdStats::default(),
            busy_cycles: 0,
        }
    }

    /// Total cycles the CECDU spent on queries so far.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// The wrapped simulation.
    pub fn sim(&self) -> &CecduSim {
        &self.sim
    }
}

impl CollisionChecker for CecduChecker {
    fn robot(&self) -> &RobotModel {
        self.sim.robot()
    }

    fn check_pose(&mut self, cfg: &JointConfig) -> bool {
        let out = self.sim.check_pose(cfg);
        self.busy_cycles += out.cycles;
        self.stats.pose_queries += 1;
        self.stats.link_tests += out.links_checked as u64;
        self.stats.box_tests += out.ops.box_tests;
        self.stats.nodes_visited += out.ops.sram_reads;
        self.stats.mults += out.ops.mults;
        out.colliding
    }

    fn stats(&self) -> CdStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CdStats::default();
        self.busy_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_collision::SoftwareChecker;
    use mp_octree::{Scene, SceneConfig};
    use mp_sim::IuKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cecdu(seed: u64, oocds: usize, iu: IuKind) -> CecduSim {
        CecduSim::new(
            RobotModel::jaco2(),
            Scene::random(SceneConfig::paper(), seed).octree(),
            CecduConfig::new(oocds, iu),
        )
    }

    #[test]
    fn agrees_with_software_oracle() {
        // The hardware path (quantized geometry + approximate trig) may
        // disagree with the exact f32 oracle only on razor-thin cases.
        let mut rng = StdRng::seed_from_u64(21);
        let mut disagreements = 0;
        let mut total = 0;
        for seed in 0..4 {
            let scene = Scene::random(SceneConfig::paper(), seed);
            let hw = cecdu(seed, 4, IuKind::MultiCycle);
            let mut sw = SoftwareChecker::new(RobotModel::jaco2(), scene.octree());
            for _ in 0..100 {
                let pose = hw.robot().sample_config(&mut rng);
                let a = hw.check_pose(&pose).colliding;
                let b = sw.check_pose(&pose);
                total += 1;
                if a != b {
                    disagreements += 1;
                }
            }
        }
        assert!(
            disagreements * 50 <= total,
            "{disagreements}/{total} disagreements vs oracle"
        );
    }

    #[test]
    fn table1_latency_band() {
        // Table 1: 46–154 average cycles for the Jaco2 arm across the four
        // configurations; single/multi-cycle is the slowest, four/pipelined
        // the fastest.
        let mut rng = StdRng::seed_from_u64(5);
        let mut avg = |oocds: usize, iu: IuKind| -> f64 {
            let mut cy = 0u64;
            let mut n = 0u64;
            for seed in 0..5 {
                let unit = cecdu(seed, oocds, iu);
                for _ in 0..40 {
                    let pose = unit.robot().sample_config(&mut rng);
                    cy += unit.check_pose(&pose).cycles;
                    n += 1;
                }
            }
            cy as f64 / n as f64
        };
        let single_mc = avg(1, IuKind::MultiCycle);
        let single_p = avg(1, IuKind::Pipelined);
        let four_mc = avg(4, IuKind::MultiCycle);
        let four_p = avg(4, IuKind::Pipelined);
        // Shape: parallel < serial; pipelined <= multi-cycle.
        assert!(four_mc < single_mc, "{four_mc} !< {single_mc}");
        assert!(four_p <= four_mc + 1.0);
        assert!(single_p <= single_mc + 1.0);
        // Band: the paper reports 46–154; allow generous margins.
        assert!(
            (25.0..=220.0).contains(&single_mc),
            "single multi-cycle avg {single_mc}"
        );
        assert!(
            (20.0..=120.0).contains(&four_p),
            "four pipelined avg {four_p}"
        );
    }

    #[test]
    fn early_exit_skips_links() {
        // Bury the whole workspace in an obstacle right at the arm.
        let obs = mp_geometry::Aabb::new(
            mp_geometry::Vec3::new(0.0, 0.0, 0.35),
            mp_geometry::Vec3::splat(0.3),
        );
        let tree = mp_octree::Octree::build(&[obs], 4);
        let unit = CecduSim::new(
            RobotModel::jaco2(),
            tree,
            CecduConfig::new(1, IuKind::MultiCycle),
        );
        let out = unit.check_pose(&unit.robot().home());
        assert!(out.colliding);
        assert!(
            out.links_checked < unit.robot().link_count(),
            "checked {} links",
            out.links_checked
        );
    }

    #[test]
    fn more_oocds_never_check_fewer_links_but_run_faster() {
        let mut rng = StdRng::seed_from_u64(30);
        let one = cecdu(1, 1, IuKind::MultiCycle);
        let four = cecdu(1, 4, IuKind::MultiCycle);
        let mut t1 = 0u64;
        let mut t4 = 0u64;
        for _ in 0..80 {
            let pose = one.robot().sample_config(&mut rng);
            let a = one.check_pose(&pose);
            let b = four.check_pose(&pose);
            assert_eq!(a.colliding, b.colliding);
            t1 += a.cycles;
            t4 += b.cycles;
        }
        assert!(t4 < t1, "4-OOCD {t4} should beat 1-OOCD {t1}");
        // §7.2.2: the speedup is sub-linear (waves + early exit).
        assert!((t1 as f64 / t4 as f64) < 4.0);
    }

    #[test]
    fn checker_adapter_accumulates() {
        let mut chk = CecduChecker::new(cecdu(0, 4, IuKind::MultiCycle));
        let home = chk.robot().home();
        let _ = chk.check_pose(&home);
        let _ = chk.check_pose(&home);
        assert_eq!(chk.stats().pose_queries, 2);
        assert!(chk.busy_cycles() > 0);
        chk.reset_stats();
        assert_eq!(chk.stats().pose_queries, 0);
        assert_eq!(chk.busy_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "DOF mismatch")]
    fn wrong_dof_pose_rejected() {
        let unit = cecdu(0, 1, IuKind::MultiCycle);
        let _ = unit.check_pose(&JointConfig::zeros(9));
    }
}
