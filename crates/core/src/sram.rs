//! On-chip SRAM budget accounting.
//!
//! §5: "We find that on-chip memory of 50 KB is sufficient to solve motion
//! planning for high-DOF robots (~7) and complex environments. Hence, we
//! use on-chip SRAM for storage, and MPAccel is not connected to DRAM."
//! This module itemizes that budget for a concrete robot + environment +
//! configuration, so the claim is checkable instead of asserted.

use mp_octree::Octree;
use mp_robot::RobotModel;
use mp_sim::MpaccelConfig;

/// Bytes of SRAM required by each part of the accelerator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SramBudget {
    /// Environment octree (24-bit nodes), replicated per OOCD (§5.1: each
    /// OOCD owns its octree SRAM so traversals never contend).
    pub octree_bytes: usize,
    /// Octree replicas (total OOCD count).
    pub octree_copies: usize,
    /// Per-link constants in each OBB Generation Unit: box size (3),
    /// local center (3), bounding + inscribed radii (2) × 16 bits.
    pub link_constants_bytes: usize,
    /// Node queues: 8 entries × 24 bits per OOCD.
    pub node_queue_bytes: usize,
    /// Scheduler motion store: start pose + delta (2 × DOF × 16 bits) +
    /// count per motion, for the 16-motion group window.
    pub scheduler_bytes: usize,
}

impl SramBudget {
    /// Total bytes across the accelerator.
    pub fn total_bytes(&self) -> usize {
        self.octree_bytes * self.octree_copies
            + self.link_constants_bytes
            + self.node_queue_bytes
            + self.scheduler_bytes
    }

    /// Whether the configuration fits the paper's 50 KB on-chip budget.
    pub fn fits_50kb(&self) -> bool {
        self.total_bytes() <= 50 * 1024
    }
}

/// Computes the SRAM budget for a robot + environment + configuration.
///
/// # Examples
///
/// ```
/// use mp_octree::{Scene, SceneConfig};
/// use mp_robot::RobotModel;
/// use mp_sim::MpaccelConfig;
/// use mpaccel_core::sram::sram_budget;
///
/// let budget = sram_budget(
///     &RobotModel::baxter(),
///     &Scene::random(SceneConfig::paper(), 0).octree(),
///     &MpaccelConfig::config1(),
/// );
/// assert!(budget.fits_50kb()); // §5's claim, verified
/// ```
pub fn sram_budget(robot: &RobotModel, octree: &Octree, cfg: &MpaccelConfig) -> SramBudget {
    let oocds = cfg.cecdus * cfg.cecdu.oocds;
    let link_words = robot.link_count() * 8; // 8 × 16-bit constants per link
    let motions = 16; // MCSP group window (§5.1)
    let motion_words = 2 * robot.dof() + 1;
    SramBudget {
        octree_bytes: octree.storage_bytes(),
        octree_copies: oocds,
        link_constants_bytes: link_words * 2 * cfg.cecdus, // one store per CECDU
        node_queue_bytes: oocds * 8 * 3,                   // 8 entries × 24 bits
        scheduler_bytes: motions * motion_words * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_octree::{benchmark_scenes, Scene, SceneConfig};

    #[test]
    fn paper_claim_50kb_holds_on_every_benchmark() {
        // §5's central storage claim, for both evaluation arms and the
        // headline configuration over the whole benchmark suite.
        let cfg = MpaccelConfig::config1();
        for robot in [RobotModel::jaco2(), RobotModel::baxter()] {
            for scene in benchmark_scenes() {
                let b = sram_budget(&robot, &scene.octree(), &cfg);
                assert!(
                    b.fits_50kb(),
                    "{} on scene {} needs {} bytes",
                    robot.name(),
                    scene.seed(),
                    b.total_bytes()
                );
            }
        }
    }

    #[test]
    fn octree_replication_dominates() {
        // 64 OOCDs × ~0.2-0.75 KB octree: the replicated environment is the
        // biggest consumer, as the paper's 0.75 KB-per-OOCD figure implies.
        let b = sram_budget(
            &RobotModel::baxter(),
            &Scene::random(SceneConfig::paper(), 0).octree(),
            &MpaccelConfig::config1(),
        );
        assert_eq!(b.octree_copies, 64);
        assert!(b.octree_bytes * b.octree_copies > b.total_bytes() / 2);
    }

    #[test]
    fn deeper_octrees_can_blow_the_budget() {
        // The budget is a real constraint: a depth-6 octree on a cluttered
        // scene exceeds it at 64 replicas.
        let scene = Scene::random(SceneConfig::with_obstacles(16), 3);
        let deep = mp_octree::Octree::build(scene.obstacles(), 6);
        let b = sram_budget(&RobotModel::baxter(), &deep, &MpaccelConfig::config1());
        assert!(
            !b.fits_50kb(),
            "expected a blown budget, got {} bytes",
            b.total_bytes()
        );
    }
}
