//! Planner execution traces — the interface between the motion planning
//! algorithm (running on the controller) and the accelerator.
//!
//! The original artifact drives its microarchitectural simulator with
//! traces recorded from MPNet: per planning phase, a group of motions plus
//! a function mode is sent to SAS, interleaved with neural-network
//! inferences on the DNN accelerator and controller work (Fig 11). The
//! same structure is reproduced here: `mp-planner` emits a [`PlannerTrace`]
//! and [`crate::mpaccel::MpAccelSystem`] replays it against the hardware
//! models.

use mp_robot::MotionDescriptor;

use crate::sas::FunctionMode;

/// One event in a planner's execution trace.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A neural-network inference offloaded to the DNN accelerator
    /// (Fig 11, step 2), sized in multiply-accumulates.
    NnInference {
        /// MAC operations in the inference.
        macs: u64,
    },
    /// Controller work (running the planning algorithm itself), sized in
    /// instructions.
    Controller {
        /// Executed instruction estimate.
        instructions: u64,
    },
    /// Data movement over the 5 GB/s bus between controller, DNN
    /// accelerator and SAS (Fig 11).
    BusTransfer {
        /// Bytes moved.
        bytes: u64,
    },
    /// A batch of motions dispatched to SAS for collision detection
    /// (Fig 11, step 4).
    CdBatch {
        /// The motions, in schedule order.
        motions: Vec<MotionDescriptor>,
        /// SAS function mode for the batch.
        mode: FunctionMode,
    },
}

/// A full planner execution trace for one motion-planning query.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlannerTrace {
    /// Events in program order.
    pub events: Vec<TraceEvent>,
    /// Whether the planner ultimately found a feasible path.
    pub solved: bool,
}

impl PlannerTrace {
    /// A trace with no events.
    pub fn new() -> PlannerTrace {
        PlannerTrace::default()
    }

    /// Total CD queries implied by the trace (sum of motion pose counts —
    /// an upper bound; early exits reduce the executed count).
    pub fn max_cd_poses(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::CdBatch { motions, .. } => motions.iter().map(|m| m.count as u64).sum(),
                _ => 0,
            })
            .sum()
    }

    /// Number of CD batches.
    pub fn cd_batches(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::CdBatch { .. }))
            .count()
    }

    /// Number of NN inferences.
    pub fn nn_inferences(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::NnInference { .. }))
            .count()
    }

    /// Appends an event.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// Serializes the trace to the artifact's line-based text format, so
    /// traces can be generated once (expensive planning) and replayed many
    /// times — the workflow of the original MPAccel artifact.
    ///
    /// The format is line-oriented: `solved 0|1`, then one line per event
    /// (`nn <macs>`, `ctrl <instructions>`, `bus <bytes>`,
    /// `batch <feasibility|connectivity|complete> <n-motions>` followed by
    /// `n` lines `motion <count> <dof> <start...> <delta...>`).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "solved {}", u8::from(self.solved));
        for e in &self.events {
            match e {
                TraceEvent::NnInference { macs } => {
                    let _ = writeln!(out, "nn {macs}");
                }
                TraceEvent::Controller { instructions } => {
                    let _ = writeln!(out, "ctrl {instructions}");
                }
                TraceEvent::BusTransfer { bytes } => {
                    let _ = writeln!(out, "bus {bytes}");
                }
                TraceEvent::CdBatch { motions, mode } => {
                    let mode = match mode {
                        FunctionMode::Feasibility => "feasibility",
                        FunctionMode::Connectivity => "connectivity",
                        FunctionMode::Complete => "complete",
                    };
                    let _ = writeln!(out, "batch {mode} {}", motions.len());
                    for m in motions {
                        let _ = write!(out, "motion {} {}", m.count, m.start.dof());
                        for v in m.start.as_slice() {
                            let _ = write!(out, " {v}");
                        }
                        for v in m.delta.as_slice() {
                            let _ = write!(out, " {v}");
                        }
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// Parses a trace from the text format of [`PlannerTrace::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTraceError`] describing the offending line on any
    /// malformed input.
    pub fn from_text(text: &str) -> Result<PlannerTrace, ParseTraceError> {
        let mut trace = PlannerTrace::new();
        let mut lines = text.lines().enumerate().peekable();
        let err = |line: usize, what: &str| ParseTraceError {
            line: line + 1,
            message: what.to_string(),
        };
        // Header.
        let Some((ln, first)) = lines.next() else {
            return Err(err(0, "empty trace"));
        };
        let mut head = first.split_whitespace();
        if head.next() != Some("solved") {
            return Err(err(ln, "expected `solved 0|1` header"));
        }
        trace.solved = match head.next() {
            Some("0") => false,
            Some("1") => true,
            _ => return Err(err(ln, "expected `solved 0|1` header")),
        };
        while let Some((ln, line)) = lines.next() {
            let mut parts = line.split_whitespace();
            match parts.next() {
                None => continue,
                Some("nn") => trace.push(TraceEvent::NnInference {
                    macs: parse_u64(parts.next(), ln, "nn macs")?,
                }),
                Some("ctrl") => trace.push(TraceEvent::Controller {
                    instructions: parse_u64(parts.next(), ln, "ctrl instructions")?,
                }),
                Some("bus") => trace.push(TraceEvent::BusTransfer {
                    bytes: parse_u64(parts.next(), ln, "bus bytes")?,
                }),
                Some("batch") => {
                    let mode = match parts.next() {
                        Some("feasibility") => FunctionMode::Feasibility,
                        Some("connectivity") => FunctionMode::Connectivity,
                        Some("complete") => FunctionMode::Complete,
                        other => return Err(err(ln, &format!("unknown batch mode {other:?}"))),
                    };
                    let n = parse_u64(parts.next(), ln, "batch size")? as usize;
                    let mut motions = Vec::with_capacity(n);
                    for _ in 0..n {
                        let Some((mln, mline)) = lines.next() else {
                            return Err(err(ln, "batch truncated"));
                        };
                        motions.push(parse_motion(mline, mln)?);
                    }
                    trace.push(TraceEvent::CdBatch { motions, mode });
                }
                Some(other) => return Err(err(ln, &format!("unknown event `{other}`"))),
            }
        }
        Ok(trace)
    }
}

fn parse_u64(tok: Option<&str>, line: usize, what: &str) -> Result<u64, ParseTraceError> {
    tok.and_then(|t| t.parse().ok()).ok_or(ParseTraceError {
        line: line + 1,
        message: format!("invalid {what}"),
    })
}

fn parse_motion(line: &str, ln: usize) -> Result<MotionDescriptor, ParseTraceError> {
    let err = |what: &str| ParseTraceError {
        line: ln + 1,
        message: what.to_string(),
    };
    let mut parts = line.split_whitespace();
    if parts.next() != Some("motion") {
        return Err(err("expected `motion` line"));
    }
    let count: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err("invalid motion count"))?;
    let dof: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err("invalid motion dof"))?;
    let values: Vec<f32> = parts
        .map(|t| t.parse())
        .collect::<Result<_, _>>()
        .map_err(|_| err("invalid motion value"))?;
    if values.len() != 2 * dof || count < 2 {
        return Err(err("motion line has wrong arity"));
    }
    Ok(MotionDescriptor {
        start: mp_robot::JointConfig::new(values[..dof].to_vec()),
        delta: mp_robot::JointConfig::new(values[dof..].to_vec()),
        count,
    })
}

/// Error parsing a serialized trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_robot::{JointConfig, Motion};

    fn demo_batch(n: usize) -> TraceEvent {
        let motions = (0..n)
            .map(|i| {
                Motion::new(
                    JointConfig::zeros(2),
                    JointConfig::new(vec![1.0 + i as f32, 0.0]),
                )
                .descriptor(0.1)
            })
            .collect();
        TraceEvent::CdBatch {
            motions,
            mode: FunctionMode::Complete,
        }
    }

    #[test]
    fn counters_over_events() {
        let mut t = PlannerTrace::new();
        t.push(TraceEvent::NnInference { macs: 1000 });
        t.push(demo_batch(3));
        t.push(TraceEvent::Controller { instructions: 50 });
        t.push(TraceEvent::NnInference { macs: 1000 });
        assert_eq!(t.nn_inferences(), 2);
        assert_eq!(t.cd_batches(), 1);
        assert!(t.max_cd_poses() > 0);
    }

    #[test]
    fn empty_trace() {
        let t = PlannerTrace::new();
        assert_eq!(t.max_cd_poses(), 0);
        assert_eq!(t.cd_batches(), 0);
        assert!(!t.solved);
    }

    #[test]
    fn text_roundtrip() {
        let mut t = PlannerTrace::new();
        t.solved = true;
        t.push(TraceEvent::BusTransfer { bytes: 768 });
        t.push(TraceEvent::NnInference { macs: 3_000_000 });
        t.push(demo_batch(3));
        t.push(TraceEvent::Controller { instructions: 512 });
        t.push(TraceEvent::CdBatch {
            motions: vec![],
            mode: FunctionMode::Connectivity,
        });
        let text = t.to_text();
        let back = PlannerTrace::from_text(&text).unwrap();
        assert_eq!(back.solved, t.solved);
        assert_eq!(back.events.len(), t.events.len());
        // Motion payloads survive within float-printing precision.
        let (
            TraceEvent::CdBatch {
                motions: a,
                mode: ma,
            },
            TraceEvent::CdBatch {
                motions: b,
                mode: mb,
            },
        ) = (&t.events[2], &back.events[2])
        else {
            panic!("batch event lost");
        };
        assert_eq!(ma, mb);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.count, y.count);
            for (u, v) in x.start.as_slice().iter().zip(y.start.as_slice()) {
                assert!((u - v).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(PlannerTrace::from_text("").is_err());
        assert!(PlannerTrace::from_text("solved 2").is_err());
        assert!(PlannerTrace::from_text("solved 1\nwat 3").is_err());
        assert!(PlannerTrace::from_text("solved 1\nnn notanumber").is_err());
        assert!(PlannerTrace::from_text("solved 1\nbatch feasibility 1").is_err()); // truncated
        assert!(PlannerTrace::from_text("solved 1\nbatch bogus 0").is_err());
        let e = PlannerTrace::from_text("solved 1\nnn x").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn parse_motion_arity_checked() {
        let text = "solved 0\nbatch complete 1\nmotion 5 2 0.0 1.0 0.1\n"; // missing one value
        assert!(PlannerTrace::from_text(text).is_err());
    }
}
