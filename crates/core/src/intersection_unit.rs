//! Cycle-level model of the Intersection Unit (§5.2).
//!
//! The Intersection Unit executes the cascaded early-exit flow of Fig 10 on
//! 16-bit fixed-point operands. Two designs exist (§5.2):
//!
//! * **multi-cycle** — one cascade stage per cycle; the unit is busy until
//!   the test exits (1–4 cycles), and the Node Processing Unit only issues
//!   the next query when the unit is free;
//! * **pipelined** — the four stages form a pipeline with initiation
//!   interval 1, so a query can be issued every cycle at a fixed latency.

use mp_geometry::cascade::{cascaded_obb_aabb, CascadeConfig, CascadeOutcome, ExitStage};
use mp_geometry::sat::{sat_first_separating, SAT_ALL_MULS};
use mp_geometry::{FxAabb, FxObb};
use mp_sim::{IuKind, OpCounter};

/// Pipeline depth of the pipelined Intersection Unit: sphere filters + three
/// SAT stages.
pub const IU_PIPELINE_DEPTH: u32 = 4;

/// The outcome of one intersection test executed by the unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IuOutcome {
    /// Whether the OBB and AABB overlap.
    pub colliding: bool,
    /// Which cascade stage resolved the test.
    pub exit: ExitStage,
    /// Cycles from issue until the result is available.
    pub latency: u32,
    /// Cycles until the unit can accept the next query (multi-cycle:
    /// = stages executed; pipelined: 1).
    pub initiation_interval: u32,
    /// Work spent.
    pub ops: OpCounter,
}

/// Executes one cascaded intersection test (Fig 10) on the fixed-point
/// datapath.
///
/// # Examples
///
/// ```
/// use mp_geometry::cascade::CascadeConfig;
/// use mp_geometry::{Aabb, Obb, Vec3};
/// use mp_sim::IuKind;
/// use mpaccel_core::intersection_unit::execute;
///
/// let obb = Obb::axis_aligned(Vec3::new(0.9, 0.9, 0.9), Vec3::splat(0.05)).quantize();
/// let aabb = Aabb::new(Vec3::zero(), Vec3::splat(0.25)).quantize();
/// let out = execute(&obb, &aabb, &CascadeConfig::proposed(), IuKind::MultiCycle);
/// assert!(!out.colliding);
/// assert_eq!(out.latency, 1); // far apart: bounding-sphere filter, 1 cycle
/// ```
pub fn execute(obb: &FxObb, aabb: &FxAabb, cfg: &CascadeConfig, kind: IuKind) -> IuOutcome {
    outcome_from_cascade(&cascaded_obb_aabb(obb, aabb, cfg), cfg, kind)
}

/// Applies the unit's timing model to an already-evaluated cascade outcome.
///
/// [`execute`] is the single-pair form; the batched OOCD traversal
/// evaluates whole candidate ranges with `mp_geometry::soa` kernels and
/// feeds each lane's [`CascadeOutcome`] through here, so the cycle/op
/// accounting is shared (and stays bit-identical) between the two paths.
pub fn outcome_from_cascade(out: &CascadeOutcome, cfg: &CascadeConfig, kind: IuKind) -> IuOutcome {
    let ops = OpCounter {
        mults: out.mults as u64,
        box_tests: 1,
        ..OpCounter::default()
    };
    match kind {
        IuKind::MultiCycle => {
            // The multi-cycle unit iterates its SAT stages over a narrow
            // multiplier array (hence its smaller area in Table 2): the
            // sphere filters take one cycle, each executed SAT batch two.
            let sphere_ran = (cfg.bounding_sphere_filter || cfg.inscribed_sphere_filter) as u32;
            let sat_stages = out.stages_executed - sphere_ran;
            let latency = sphere_ran + 2 * sat_stages;
            IuOutcome {
                colliding: out.colliding,
                exit: out.exit,
                latency,
                initiation_interval: latency,
                ops,
            }
        }
        IuKind::Pipelined => IuOutcome {
            colliding: out.colliding,
            exit: out.exit,
            latency: IU_PIPELINE_DEPTH,
            initiation_interval: 1,
            ops,
        },
    }
}

/// Executes a *sequential* separating-axis test without sphere filters: one
/// axis per cycle, early exit (the "sequential execution" baseline of
/// Fig 8a / §7.2.1).
pub fn execute_sat_sequential(obb: &FxObb, aabb: &FxAabb) -> IuOutcome {
    let r = sat_first_separating(obb, aabb);
    let ops = OpCounter {
        mults: r.mults as u64,
        box_tests: 1,
        ..OpCounter::default()
    };
    IuOutcome {
        colliding: r.colliding(),
        exit: if r.colliding() {
            ExitStage::Exhausted
        } else {
            ExitStage::Sat(1)
        },
        latency: r.axes_tested,
        initiation_interval: r.axes_tested,
        ops,
    }
}

/// Executes a *fully parallel* separating-axis test: all 15 axes in one
/// cycle, always 81 multiplications (the "parallel execution" of Fig 8a).
pub fn execute_sat_parallel(obb: &FxObb, aabb: &FxAabb) -> IuOutcome {
    let r = sat_first_separating(obb, aabb);
    IuOutcome {
        colliding: r.colliding(),
        exit: if r.colliding() {
            ExitStage::Exhausted
        } else {
            ExitStage::Sat(1)
        },
        latency: 1,
        initiation_interval: 1,
        ops: OpCounter {
            mults: SAT_ALL_MULS as u64,
            box_tests: 1,
            ..OpCounter::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_geometry::{Aabb, Mat3, Obb, Vec3};

    fn fx(obb: Obb, aabb: Aabb<f32>) -> (FxObb, FxAabb) {
        (obb.quantize(), aabb.quantize())
    }

    #[test]
    fn multi_cycle_latency_tracks_exit_stage() {
        let (far, aabb) = fx(
            Obb::axis_aligned(Vec3::new(0.9, 0.9, 0.9), Vec3::splat(0.05)),
            Aabb::new(Vec3::zero(), Vec3::splat(0.2)),
        );
        let out = execute(&far, &aabb, &CascadeConfig::proposed(), IuKind::MultiCycle);
        assert_eq!(out.latency, 1);
        assert_eq!(out.initiation_interval, 1);
        assert_eq!(out.ops.mults, 3);
        assert!(!out.colliding);
    }

    #[test]
    fn pipelined_latency_is_fixed() {
        let (far, aabb) = fx(
            Obb::axis_aligned(Vec3::new(0.9, 0.9, 0.9), Vec3::splat(0.05)),
            Aabb::new(Vec3::zero(), Vec3::splat(0.2)),
        );
        let out = execute(&far, &aabb, &CascadeConfig::proposed(), IuKind::Pipelined);
        assert_eq!(out.latency, IU_PIPELINE_DEPTH);
        assert_eq!(out.initiation_interval, 1);
    }

    #[test]
    fn deep_overlap_resolves_in_one_cycle() {
        let (deep, aabb) = fx(
            Obb::axis_aligned(Vec3::zero(), Vec3::splat(0.05)),
            Aabb::new(Vec3::zero(), Vec3::splat(0.5)),
        );
        let out = execute(&deep, &aabb, &CascadeConfig::proposed(), IuKind::MultiCycle);
        assert!(out.colliding);
        assert_eq!(out.exit, ExitStage::InscribedSphere);
        assert_eq!(out.latency, 1);
        assert_eq!(out.ops.mults, 6);
    }

    #[test]
    fn sequential_vs_parallel_sat_cost_shapes() {
        // Far apart: sequential finds axis 1 fast (1 cycle, 3 mults);
        // parallel takes 1 cycle but all 81 mults.
        let (far, aabb) = fx(
            Obb::axis_aligned(Vec3::new(1.5, 0.0, 0.0), Vec3::splat(0.1)),
            Aabb::new(Vec3::zero(), Vec3::splat(0.3)),
        );
        let seq = execute_sat_sequential(&far, &aabb);
        let par = execute_sat_parallel(&far, &aabb);
        assert!(!seq.colliding && !par.colliding);
        assert_eq!(seq.latency, 1);
        assert_eq!(seq.ops.mults, 3);
        assert_eq!(par.latency, 1);
        assert_eq!(par.ops.mults, 81);
    }

    #[test]
    fn colliding_case_costs_all_axes_either_way() {
        let (hit, aabb) = fx(
            Obb::new(
                Vec3::new(0.1, 0.05, 0.0),
                Vec3::splat(0.2),
                Mat3::rotation_z(0.5),
            ),
            Aabb::new(Vec3::zero(), Vec3::splat(0.25)),
        );
        let seq = execute_sat_sequential(&hit, &aabb);
        let par = execute_sat_parallel(&hit, &aabb);
        assert!(seq.colliding && par.colliding);
        assert_eq!(seq.ops.mults, 81);
        assert_eq!(seq.latency, 15);
        assert_eq!(par.latency, 1);
    }

    #[test]
    fn cascade_and_sat_agree_on_outcome() {
        let boxes = [
            (Vec3::new(0.3, 0.2, -0.1), 0.2f32),
            (Vec3::new(0.9, -0.8, 0.4), 0.1),
            (Vec3::new(0.0, 0.0, 0.0), 0.15),
            (Vec3::new(0.45, 0.45, 0.45), 0.12),
        ];
        let aabb = Aabb::new(Vec3::new(0.2, 0.1, 0.0), Vec3::splat(0.25)).quantize();
        for (c, h) in boxes {
            let obb = Obb::new(c, Vec3::splat(h), Mat3::rotation_y(0.3)).quantize();
            let a = execute(&obb, &aabb, &CascadeConfig::proposed(), IuKind::MultiCycle);
            let b = execute_sat_sequential(&obb, &aabb);
            assert_eq!(a.colliding, b.colliding, "at {c:?}");
        }
    }
}
