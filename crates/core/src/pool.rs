//! Per-instance busy/fault bookkeeping for a pool of MPAccel instances.
//!
//! The planning service (`mp-service`) dispatches queries onto N simulated
//! accelerators. This module owns the pool-side state: which instance is
//! busy until when, which is quarantined by the circuit breaker, and the
//! per-instance fault/served statistics the breaker's strike logic reads.
//! Mirrors the per-*unit* strike/quarantine bookkeeping of
//! [`FaultTolerantCduArray`](crate::fault::FaultTolerantCduArray), lifted
//! from CECDUs inside one accelerator to whole accelerator instances
//! inside a service.
//!
//! All timestamps are virtual nanoseconds (`mp_sim::vtime`); the pool is
//! pure bookkeeping and never consults wall time, so service runs are
//! deterministic.

/// Lifetime statistics for one accelerator instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstanceStats {
    /// Dispatches begun on this instance.
    pub served: u64,
    /// Faulted dispatches observed on this instance.
    pub faults: u64,
    /// Times the circuit breaker quarantined this instance.
    pub quarantines: u64,
    /// Total virtual time this instance spent busy (ns).
    pub busy_ns: u64,
}

/// A pool of N simulated MPAccel instances with per-instance busy,
/// quarantine, and fault-strike state.
#[derive(Clone, Debug)]
pub struct AcceleratorPool {
    busy_until: Vec<u64>,
    quarantined_until: Vec<u64>,
    strikes: Vec<u32>,
    stats: Vec<InstanceStats>,
}

impl AcceleratorPool {
    /// A pool of `n` idle, healthy instances.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> AcceleratorPool {
        assert!(n > 0, "a pool needs at least one instance");
        AcceleratorPool {
            busy_until: vec![0; n],
            quarantined_until: vec![0; n],
            strikes: vec![0; n],
            stats: vec![InstanceStats::default(); n],
        }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.busy_until.len()
    }

    /// Always false (the constructor rejects empty pools); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.busy_until.is_empty()
    }

    /// Whether instance `i` is quarantined at `now`.
    pub fn is_quarantined(&self, i: usize, now: u64) -> bool {
        self.quarantined_until[i] > now
    }

    /// Instances not quarantined at `now`.
    pub fn healthy(&self, now: u64) -> usize {
        (0..self.len())
            .filter(|&i| !self.is_quarantined(i, now))
            .count()
    }

    /// Lowest-indexed instance that is idle and healthy at `now`
    /// (deterministic tie-break: index order).
    pub fn acquire(&self, now: u64) -> Option<usize> {
        (0..self.len()).find(|&i| self.busy_until[i] <= now && !self.is_quarantined(i, now))
    }

    /// Earliest future time (strictly after `now`) at which some instance
    /// becomes dispatchable: a busy instance finishing or a quarantine
    /// expiring. `None` when every instance is idle and healthy (nothing
    /// to wait for).
    pub fn next_dispatchable_at(&self, now: u64) -> Option<u64> {
        (0..self.len())
            .filter_map(|i| {
                let t = self.busy_until[i].max(self.quarantined_until[i]);
                (t > now).then_some(t)
            })
            .min()
    }

    /// Marks instance `i` busy for `service_ns` starting at `now` and
    /// counts the dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the instance is still busy (the service dispatched onto
    /// an occupied instance — a scheduler bug).
    pub fn begin(&mut self, i: usize, now: u64, service_ns: u64) {
        assert!(
            self.busy_until[i] <= now,
            "instance {i} is busy until {} (now {now})",
            self.busy_until[i]
        );
        self.busy_until[i] = now + service_ns;
        self.stats[i].served += 1;
        self.stats[i].busy_ns += service_ns;
    }

    /// Records a clean completion on instance `i`, clearing its fault
    /// strike streak.
    pub fn record_success(&mut self, i: usize) {
        self.strikes[i] = 0;
    }

    /// Records a faulted completion on instance `i`; returns the
    /// consecutive-fault streak (the circuit breaker's strike count).
    pub fn record_fault(&mut self, i: usize) -> u32 {
        self.strikes[i] += 1;
        self.stats[i].faults += 1;
        self.strikes[i]
    }

    /// Quarantines instance `i` until the given virtual time and clears
    /// its streak (it re-enters service on probation).
    pub fn quarantine(&mut self, i: usize, until: u64) {
        self.quarantined_until[i] = self.quarantined_until[i].max(until);
        self.strikes[i] = 0;
        self.stats[i].quarantines += 1;
    }

    /// Ends instance `i`'s quarantine at `now` (scrub readmission): the
    /// instance becomes dispatchable immediately. A no-op when the
    /// quarantine already expired.
    pub fn readmit(&mut self, i: usize, now: u64) {
        self.quarantined_until[i] = self.quarantined_until[i].min(now);
    }

    /// Per-instance statistics.
    pub fn stats(&self, i: usize) -> &InstanceStats {
        &self.stats[i]
    }

    /// Sum of quarantine episodes across the pool.
    pub fn total_quarantines(&self) -> u64 {
        self.stats.iter().map(|s| s.quarantines).sum()
    }

    /// Sum of busy virtual time across the pool (for utilization).
    pub fn total_busy_ns(&self) -> u64 {
        self.stats.iter().map(|s| s.busy_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_prefers_lowest_index_and_skips_busy() {
        let mut p = AcceleratorPool::new(3);
        assert_eq!(p.acquire(0), Some(0));
        p.begin(0, 0, 100);
        assert_eq!(p.acquire(0), Some(1));
        p.begin(1, 0, 50);
        p.begin(2, 0, 10);
        assert_eq!(p.acquire(0), None);
        assert_eq!(p.next_dispatchable_at(0), Some(10));
        assert_eq!(p.acquire(10), Some(2));
        assert_eq!(p.acquire(100), Some(0));
    }

    #[test]
    fn quarantine_hides_an_instance_until_expiry() {
        let mut p = AcceleratorPool::new(2);
        p.quarantine(0, 500);
        assert!(p.is_quarantined(0, 499));
        assert!(!p.is_quarantined(0, 500));
        assert_eq!(p.healthy(0), 1);
        assert_eq!(p.acquire(0), Some(1));
        p.begin(1, 0, 1_000);
        // Nothing dispatchable now; the quarantine expiry comes first.
        assert_eq!(p.acquire(0), None);
        assert_eq!(p.next_dispatchable_at(0), Some(500));
        assert_eq!(p.acquire(500), Some(0));
        assert_eq!(p.total_quarantines(), 1);
    }

    #[test]
    fn readmit_cuts_a_quarantine_short() {
        let mut p = AcceleratorPool::new(2);
        p.quarantine(0, 10_000);
        assert!(p.is_quarantined(0, 100));
        p.readmit(0, 100);
        assert!(!p.is_quarantined(0, 100));
        assert_eq!(p.acquire(100), Some(0));
        // Readmitting an already-healthy instance changes nothing.
        p.readmit(1, 100);
        assert_eq!(p.healthy(100), 2);
        assert_eq!(p.total_quarantines(), 1);
    }

    #[test]
    fn strikes_accumulate_and_reset() {
        let mut p = AcceleratorPool::new(1);
        assert_eq!(p.record_fault(0), 1);
        assert_eq!(p.record_fault(0), 2);
        p.record_success(0);
        assert_eq!(p.record_fault(0), 1);
        p.quarantine(0, 10);
        assert_eq!(p.record_fault(0), 1, "quarantine clears the streak");
        assert_eq!(p.stats(0).faults, 4);
    }

    #[test]
    fn busy_accounting_accumulates() {
        let mut p = AcceleratorPool::new(2);
        p.begin(0, 0, 100);
        p.begin(1, 0, 40);
        p.begin(1, 40, 60);
        assert_eq!(p.total_busy_ns(), 200);
        assert_eq!(p.stats(1).served, 2);
    }

    #[test]
    #[should_panic(expected = "busy until")]
    fn double_dispatch_panics() {
        let mut p = AcceleratorPool::new(1);
        p.begin(0, 0, 100);
        p.begin(0, 50, 10);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_pool_rejected() {
        let _ = AcceleratorPool::new(0);
    }
}
