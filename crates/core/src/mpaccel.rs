//! The full MPAccel system model (Fig 11): controller + DNN accelerator +
//! bus + SAS + CECDU array.

use mp_octree::Octree;
use mp_robot::RobotModel;
use mp_sim::{EnergyLedger, MpaccelConfig, OpCounter};

use crate::cecdu::CecduSim;
use crate::sas::{run_sas, CecduCdu, SasConfig};
use crate::trace::{PlannerTrace, TraceEvent};

/// System-level parameters (§5, §7.4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemConfig {
    /// The accelerator configuration (CECDU count and type).
    pub accel: MpaccelConfig,
    /// DNN accelerator throughput in TOPS (§7.4: 12 TOPS, an edge-TPU
    /// class device).
    pub dnn_tops: f64,
    /// Bus bandwidth in GB/s (§5: 5 GB/s, achievable over PCIe).
    pub bus_gbps: f64,
    /// Controller clock in GHz (a simple CPU core, §5).
    pub controller_ghz: f64,
}

impl SystemConfig {
    /// The paper's headline system: 16 CECDUs × 4 multi-cycle OOCDs,
    /// 12 TOPS DNN accelerator, 5 GB/s bus, 1 GHz controller.
    pub fn paper_default() -> SystemConfig {
        SystemConfig {
            accel: MpaccelConfig::config1(),
            dnn_tops: 12.0,
            bus_gbps: 5.0,
            controller_ghz: 1.0,
        }
    }

    /// Same system with a different accelerator configuration (Fig 20).
    pub fn with_accel(accel: MpaccelConfig) -> SystemConfig {
        SystemConfig {
            accel,
            ..SystemConfig::paper_default()
        }
    }
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig::paper_default()
    }
}

/// Timing/energy report of one trace replay.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunReport {
    /// End-to-end time in milliseconds.
    pub total_ms: f64,
    /// Time in DNN inference.
    pub nn_ms: f64,
    /// Time in collision detection (SAS + CECDUs).
    pub cd_ms: f64,
    /// Time in the controller.
    pub controller_ms: f64,
    /// Time on the bus.
    pub bus_ms: f64,
    /// Total CD cycles.
    pub cd_cycles: u64,
    /// CD queries dispatched.
    pub cd_queries: u64,
    /// Accumulated datapath work.
    pub ops: OpCounter,
    /// Accelerator energy in millijoules (power × CD time).
    pub accel_energy_mj: f64,
    /// Bottom-up dynamic datapath energy in microjoules (per-operation
    /// energies × operation counts; see `mp_sim::energy`). Cross-checks
    /// the top-down `accel_energy_mj` figure.
    pub datapath_energy_uj: f64,
}

impl RunReport {
    /// Fraction of time spent in collision detection.
    pub fn cd_fraction(&self) -> f64 {
        if self.total_ms <= 0.0 {
            0.0
        } else {
            self.cd_ms / self.total_ms
        }
    }
}

/// The MPAccel system bound to a robot and environment.
///
/// # Examples
///
/// ```
/// use mp_octree::{Scene, SceneConfig};
/// use mp_robot::{Motion, RobotModel};
/// use mpaccel_core::mpaccel::{MpAccelSystem, SystemConfig};
/// use mpaccel_core::sas::FunctionMode;
/// use mpaccel_core::trace::{PlannerTrace, TraceEvent};
///
/// let robot = RobotModel::baxter();
/// let scene = Scene::random(SceneConfig::paper(), 0);
/// let sys = MpAccelSystem::new(robot.clone(), scene.octree(), SystemConfig::paper_default());
///
/// let mut home2 = robot.home();
/// home2.as_mut_slice()[0] += 0.5;
/// let mut trace = PlannerTrace::new();
/// trace.push(TraceEvent::NnInference { macs: 1_000_000 });
/// trace.push(TraceEvent::CdBatch {
///     motions: vec![Motion::new(robot.home(), home2).descriptor(0.04)],
///     mode: FunctionMode::Complete,
/// });
/// let report = sys.run_trace(&trace);
/// assert!(report.total_ms > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct MpAccelSystem {
    robot: RobotModel,
    octree: Octree,
    config: SystemConfig,
    sas: SasConfig,
}

impl MpAccelSystem {
    /// Creates the system with the proposed MCSP scheduler sized to the
    /// accelerator's CECDU count.
    pub fn new(robot: RobotModel, octree: Octree, config: SystemConfig) -> MpAccelSystem {
        let sas = SasConfig::mcsp(config.accel.cecdus);
        MpAccelSystem {
            robot,
            octree,
            config,
            sas,
        }
    }

    /// Overrides the scheduler configuration (for policy comparisons).
    pub fn with_scheduler(mut self, sas: SasConfig) -> MpAccelSystem {
        self.sas = sas;
        self
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Replaces the environment octree (sensor update path, Fig 11 step 1).
    pub fn set_octree(&mut self, octree: Octree) {
        self.octree = octree;
    }

    /// Replays a planner trace against the hardware models and returns the
    /// timing/energy report.
    pub fn run_trace(&self, trace: &PlannerTrace) -> RunReport {
        self.run_trace_ledgered(trace).0
    }

    /// [`MpAccelSystem::run_trace`] with per-subsystem energy attribution.
    ///
    /// The returned [`EnergyLedger`] bills each trace event's datapath work
    /// to a scope — `"nn"` (MLP MACs on the DNN accelerator), `"bus"`
    /// (off-chip DRAM bytes moved) and `"cd"` (SAS + CECDU array ops) — so
    /// `ledger.total_energy_pj()` equals the report's bottom-up
    /// `datapath_energy_uj` figure by construction (integer op counters are
    /// summed before pricing; see `mp_sim::ledger`).
    pub fn run_trace_ledgered(&self, trace: &PlannerTrace) -> (RunReport, EnergyLedger) {
        // Cold per-trace span: always compiled (a trace replay is not a hot
        // kernel), no-op unless a telemetry sink is installed.
        let tele_span = mp_telemetry::span_args(
            "core",
            "run_trace",
            mp_telemetry::arg1(
                "events",
                mp_telemetry::ArgValue::U64(trace.events.len() as u64),
            ),
        );
        let clock = self.config.accel.cecdu.iu.clock();
        let mut report = RunReport::default();
        let mut ledger = EnergyLedger::new();

        for event in &trace.events {
            match event {
                TraceEvent::NnInference { macs } => {
                    // 1 MAC = 2 ops; TOPS = 1e12 ops/s.
                    let s = (*macs as f64 * 2.0) / (self.config.dnn_tops * 1e12);
                    report.nn_ms += s * 1e3;
                    let ops = OpCounter {
                        mlp_macs: *macs,
                        ..OpCounter::default()
                    };
                    report.ops += ops;
                    ledger.bill("nn", ops);
                }
                TraceEvent::Controller { instructions } => {
                    let s = *instructions as f64 / (self.config.controller_ghz * 1e9);
                    report.controller_ms += s * 1e3;
                }
                TraceEvent::BusTransfer { bytes } => {
                    let s = *bytes as f64 / (self.config.bus_gbps * 1e9);
                    report.bus_ms += s * 1e3;
                    let ops = OpCounter {
                        dram_bytes: *bytes,
                        ..OpCounter::default()
                    };
                    report.ops += ops;
                    ledger.bill("bus", ops);
                }
                TraceEvent::CdBatch { motions, mode } => {
                    if motions.is_empty() {
                        continue;
                    }
                    let sim = CecduSim::new(
                        self.robot.clone(),
                        self.octree.clone(),
                        self.config.accel.cecdu,
                    );
                    let mut cdu = CecduCdu::new(sim);
                    let r = run_sas(motions, *mode, &self.sas, &mut cdu);
                    report.cd_cycles += r.cycles;
                    report.cd_queries += r.queries;
                    report.ops += r.ops;
                    ledger.bill("cd", r.ops);
                    report.cd_ms += clock.cycles_to_ms(r.cycles);
                }
            }
        }

        report.total_ms = report.nn_ms + report.cd_ms + report.controller_ms + report.bus_ms;
        report.accel_energy_mj = self.config.accel.area_power().power_w * report.cd_ms; // mJ = W × ms
        report.datapath_energy_uj = mp_sim::energy::dynamic_energy_uj(&report.ops);
        tele_span.end_with(|| {
            mp_telemetry::arg2(
                "cd_cycles",
                mp_telemetry::ArgValue::U64(report.cd_cycles),
                "cd_queries",
                mp_telemetry::ArgValue::U64(report.cd_queries),
            )
        });
        (report, ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sas::FunctionMode;
    use mp_octree::{Scene, SceneConfig};
    use mp_robot::Motion;
    use mp_sim::{CecduConfig, IuKind, MpaccelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_trace(robot: &RobotModel, seed: u64, motions: usize) -> PlannerTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = PlannerTrace::new();
        t.push(TraceEvent::NnInference { macs: 3_000_000 });
        t.push(TraceEvent::BusTransfer { bytes: 4096 });
        t.push(TraceEvent::Controller {
            instructions: 2_000,
        });
        let batch: Vec<_> = (0..motions)
            .map(|_| {
                Motion::new(robot.sample_config(&mut rng), robot.sample_config(&mut rng))
                    .descriptor(0.05)
            })
            .collect();
        t.push(TraceEvent::CdBatch {
            motions: batch,
            mode: FunctionMode::Complete,
        });
        t.solved = true;
        t
    }

    #[test]
    fn report_components_sum() {
        let robot = RobotModel::baxter();
        let sys = MpAccelSystem::new(
            robot.clone(),
            Scene::random(SceneConfig::paper(), 0).octree(),
            SystemConfig::paper_default(),
        );
        let r = sys.run_trace(&demo_trace(&robot, 1, 4));
        let sum = r.nn_ms + r.cd_ms + r.controller_ms + r.bus_ms;
        assert!((r.total_ms - sum).abs() < 1e-12);
        assert!(r.cd_ms > 0.0 && r.nn_ms > 0.0);
        assert!(r.accel_energy_mj > 0.0);
    }

    #[test]
    fn cd_dominates_nn_as_profiled() {
        // §2.1: NN inference is ~2% and collision detection ~95% of MPNet
        // time on CPU-GPU; on MPAccel CD still dominates the NN share.
        let robot = RobotModel::baxter();
        let sys = MpAccelSystem::new(
            robot.clone(),
            Scene::random(SceneConfig::paper(), 3).octree(),
            SystemConfig::paper_default(),
        );
        let r = sys.run_trace(&demo_trace(&robot, 2, 8));
        assert!(r.cd_ms > r.nn_ms);
    }

    #[test]
    fn more_cecdus_reduce_cd_time() {
        let robot = RobotModel::baxter();
        let tree = Scene::random(SceneConfig::paper(), 5).octree();
        let trace = demo_trace(&robot, 3, 8);
        let small = MpAccelSystem::new(
            robot.clone(),
            tree.clone(),
            SystemConfig::with_accel(MpaccelConfig::new(
                2,
                CecduConfig::new(4, IuKind::MultiCycle),
            )),
        )
        .run_trace(&trace);
        let big = MpAccelSystem::new(
            robot.clone(),
            tree,
            SystemConfig::with_accel(MpaccelConfig::new(
                16,
                CecduConfig::new(4, IuKind::MultiCycle),
            )),
        )
        .run_trace(&trace);
        assert!(big.cd_ms < small.cd_ms, "{} !< {}", big.cd_ms, small.cd_ms);
    }

    #[test]
    fn realtime_budget_for_modest_queries() {
        // A single-batch query should land well under the 1 ms actuator
        // budget (§7.4) on the headline configuration.
        let robot = RobotModel::baxter();
        let sys = MpAccelSystem::new(
            robot.clone(),
            Scene::random(SceneConfig::paper(), 7).octree(),
            SystemConfig::paper_default(),
        );
        let r = sys.run_trace(&demo_trace(&robot, 9, 6));
        assert!(r.total_ms < 1.0, "took {} ms", r.total_ms);
    }

    #[test]
    fn ledgered_replay_conserves_datapath_energy() {
        let robot = RobotModel::baxter();
        let sys = MpAccelSystem::new(
            robot.clone(),
            Scene::random(SceneConfig::paper(), 2).octree(),
            SystemConfig::paper_default(),
        );
        let (r, ledger) = sys.run_trace_ledgered(&demo_trace(&robot, 4, 4));
        // Every billed op landed in exactly one scope, so the ledger's
        // integer totals match the report's and the energy is bit-exact.
        assert_eq!(ledger.total_ops(), r.ops);
        assert_eq!(
            ledger.total_energy_pj(),
            mp_sim::energy::dynamic_energy_pj(&r.ops)
        );
        assert!(ledger.scope_energy_pj("nn").unwrap() > 0.0);
        assert!(ledger.scope_energy_pj("bus").unwrap() > 0.0);
        assert!(ledger.scope_energy_pj("cd").unwrap() > 0.0);
    }

    #[test]
    fn empty_trace_costs_nothing() {
        let robot = RobotModel::jaco2();
        let sys = MpAccelSystem::new(
            robot,
            Scene::random(SceneConfig::paper(), 0).octree(),
            SystemConfig::paper_default(),
        );
        let r = sys.run_trace(&PlannerTrace::new());
        assert_eq!(r.total_ms, 0.0);
        assert_eq!(r.cd_queries, 0);
    }
}
