//! Cycle-level model of the Spatially Aware Scheduler (SAS, §3 and §5.1).
//!
//! SAS exploits coarse-grained (inter-collision-detection-query)
//! parallelism *work-efficiently*: because obstacles have physical spatial
//! locality, collision results of nearby poses are correlated, so the
//! scheduler batches *spatially distant* poses. The scheduling policies of
//! Fig 7 are all implemented:
//!
//! | name | intra-motion order        | inter-motion |
//! |------|---------------------------|--------------|
//! | NP   | in order (naive)          | no           |
//! | RND  | random                    | no           |
//! | CSP  | coarse step               | no           |
//! | BRP  | binary recursive          | no           |
//! | MS   | in order, 1 CDU per motion| yes          |
//! | MNP  | in order                  | yes          |
//! | MBRP | binary recursive          | yes          |
//! | MCSP | coarse step (proposed)    | yes          |
//!
//! The scheduler dispatches at most one query per cycle (§7.1), removes a
//! motion from the schedule as soon as any of its poses collides, and
//! honours the three function modes of §5.1 (feasibility / connectivity /
//! complete).

use mp_robot::{JointConfig, MotionDescriptor};
use mp_sim::OpCounter;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The three SAS function modes (§5.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FunctionMode {
    /// Stop at the first colliding pose: answers "are *all* motions free?".
    Feasibility,
    /// Stop at the first motion proven collision-free: answers "is at least
    /// one motion free?" (used by shortcutting, §2.1).
    Connectivity,
    /// Produce a result for every motion.
    #[default]
    Complete,
}

/// Intra-motion pose ordering policies (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IntraPolicy {
    /// Naive: poses in path order.
    InOrder,
    /// Random shuffle (the RND baseline of Fig 7).
    Random {
        /// Shuffle seed (deterministic runs).
        seed: u64,
    },
    /// Coarse-step policy: offsets 0, s, 2s, … then 1, 1+s, … (CSP).
    CoarseStep {
        /// The step size (the paper sets 8 in hardware, §5.1).
        step: usize,
    },
    /// Binary-recursive policy: endpoints, then midpoints, coarse-to-fine
    /// (BRP; needs a queue in hardware, which is why CSP is preferred).
    BinaryRecursive,
}

impl IntraPolicy {
    /// The pose visit order for a motion of `n` poses.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or a coarse step of 0 is configured.
    pub fn order(&self, n: usize, motion_index: usize) -> Vec<usize> {
        assert!(n > 0, "a motion has at least one pose");
        match *self {
            IntraPolicy::InOrder => (0..n).collect(),
            IntraPolicy::Random { seed } => {
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (motion_index as u64).wrapping_mul(0x9E37_79B9));
                order.shuffle(&mut rng);
                order
            }
            IntraPolicy::CoarseStep { step } => {
                assert!(step > 0, "coarse step must be positive");
                let mut order = Vec::with_capacity(n);
                for offset in 0..step.min(n) {
                    let mut i = offset;
                    while i < n {
                        order.push(i);
                        i += step;
                    }
                }
                order
            }
            IntraPolicy::BinaryRecursive => {
                let mut order = Vec::with_capacity(n);
                if n == 1 {
                    return vec![0];
                }
                order.push(0);
                order.push(n - 1);
                let mut queue = std::collections::VecDeque::new();
                queue.push_back((0usize, n - 1));
                while let Some((lo, hi)) = queue.pop_front() {
                    if hi - lo > 1 {
                        let mid = lo + (hi - lo) / 2;
                        order.push(mid);
                        queue.push_back((lo, mid));
                        queue.push_back((mid, hi));
                    }
                }
                debug_assert_eq!(order.len(), n);
                order
            }
        }
    }
}

/// Scheduler configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SasConfig {
    /// Intra-motion pose ordering.
    pub intra: IntraPolicy,
    /// Whether to schedule several motions concurrently.
    pub inter_motion: bool,
    /// Motions considered together when `inter_motion` (paper: 16, §5.1).
    pub group_size: usize,
    /// Number of collision-detection units.
    pub num_cdus: usize,
    /// Queries dispatched per cycle: 1 for the real SAS (§7.1); set to
    /// `num_cdus` for the idealized limit study of §3.
    pub dispatch_per_cycle: usize,
    /// Cap on in-flight queries per motion: `usize::MAX` normally; 1 for
    /// the MS policy of Fig 7 (pure inter-motion parallelism: one CDU per
    /// motion, poses in order).
    pub max_outstanding_per_motion: usize,
}

impl SasConfig {
    /// Sequential baseline: one CDU, in-order poses.
    pub fn sequential() -> SasConfig {
        SasConfig {
            intra: IntraPolicy::InOrder,
            inter_motion: false,
            group_size: 1,
            num_cdus: 1,
            dispatch_per_cycle: 1,
            max_outstanding_per_motion: usize::MAX,
        }
    }

    /// Naive parallelization (NP) over `n` CDUs.
    pub fn naive_parallel(n: usize) -> SasConfig {
        SasConfig {
            intra: IntraPolicy::InOrder,
            inter_motion: false,
            group_size: 1,
            num_cdus: n,
            dispatch_per_cycle: 1,
            max_outstanding_per_motion: usize::MAX,
        }
    }

    /// The proposed MCSP: coarse step 8 + inter-motion group 16 (§5.1).
    pub fn mcsp(n: usize) -> SasConfig {
        SasConfig {
            intra: IntraPolicy::CoarseStep { step: 8 },
            inter_motion: true,
            group_size: 16,
            num_cdus: n,
            dispatch_per_cycle: 1,
            max_outstanding_per_motion: usize::MAX,
        }
    }

    /// Coarse-step policy without inter-motion parallelism (CSP).
    pub fn csp(n: usize) -> SasConfig {
        SasConfig {
            intra: IntraPolicy::CoarseStep { step: 8 },
            inter_motion: false,
            group_size: 1,
            num_cdus: n,
            dispatch_per_cycle: 1,
            max_outstanding_per_motion: usize::MAX,
        }
    }

    /// Only inter-motion parallelism (MP in Fig 15 / MS in Fig 7).
    pub fn inter_only(n: usize) -> SasConfig {
        SasConfig {
            intra: IntraPolicy::InOrder,
            inter_motion: true,
            group_size: 16,
            num_cdus: n,
            dispatch_per_cycle: 1,
            max_outstanding_per_motion: usize::MAX,
        }
    }

    /// Pure inter-motion parallelism with at most one in-flight query per
    /// motion and in-order poses (MS in Fig 7).
    pub fn ms(n: usize) -> SasConfig {
        SasConfig {
            max_outstanding_per_motion: 1,
            ..SasConfig::inter_only(n)
        }
    }

    /// Sets the inter-motion group size.
    pub fn with_group_size(mut self, g: usize) -> SasConfig {
        self.group_size = g.max(1);
        self
    }

    /// Switches to the idealized limit-study dispatcher (§3: zero-latency
    /// scheduler able to feed every CDU each cycle).
    pub fn idealized(mut self) -> SasConfig {
        self.dispatch_per_cycle = self.num_cdus;
        self
    }
}

/// Response of a collision-detection unit to one pose query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CduResponse {
    /// Whether the pose collides.
    pub colliding: bool,
    /// Cycles from dispatch to result.
    pub latency: u64,
    /// Work performed.
    pub ops: OpCounter,
}

/// A collision-detection unit the scheduler can dispatch to.
pub trait CduModel {
    /// Evaluates one pose query.
    fn query(&mut self, pose: &JointConfig) -> CduResponse;
}

/// The idealized 1-cycle CDU of the §3 limit study, wrapping any
/// functional checker.
pub struct IdealCdu<C> {
    checker: C,
}

impl<C: mp_collision::CollisionChecker> IdealCdu<C> {
    /// Wraps a checker.
    pub fn new(checker: C) -> IdealCdu<C> {
        IdealCdu { checker }
    }
}

impl<C: mp_collision::CollisionChecker> CduModel for IdealCdu<C> {
    fn query(&mut self, pose: &JointConfig) -> CduResponse {
        let colliding = self.checker.check_pose(pose);
        CduResponse {
            colliding,
            latency: 1,
            ops: OpCounter {
                cd_queries: 1,
                ..OpCounter::default()
            },
        }
    }
}

/// A CECDU array element as the CDU (the real hardware).
pub struct CecduCdu {
    sim: crate::cecdu::CecduSim,
}

impl CecduCdu {
    /// Wraps a CECDU simulation.
    pub fn new(sim: crate::cecdu::CecduSim) -> CecduCdu {
        CecduCdu { sim }
    }
}

impl CduModel for CecduCdu {
    fn query(&mut self, pose: &JointConfig) -> CduResponse {
        let out = self.sim.check_pose(pose);
        CduResponse {
            colliding: out.colliding,
            latency: out.cycles,
            ops: out.ops,
        }
    }
}

/// How a SAS run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SasOutcome {
    /// Feasibility mode: a colliding pose was found in this motion.
    CollisionFound(usize),
    /// Feasibility mode: every motion is collision-free.
    AllFree,
    /// Connectivity mode: this motion was proven collision-free.
    FreeMotionFound(usize),
    /// Connectivity mode: every motion collides.
    NoFreeMotion,
    /// Complete mode: all motions resolved.
    Completed,
}

/// Result of one SAS batch execution.
#[derive(Clone, Debug, PartialEq)]
pub struct SasRunResult {
    /// Total cycles until the scheduler reported back.
    pub cycles: u64,
    /// Collision-detection queries dispatched.
    pub queries: u64,
    /// Accumulated work.
    pub ops: OpCounter,
    /// Per-motion verdicts (`None` if unresolved due to early stop).
    pub motion_results: Vec<Option<bool>>,
    /// How the run ended.
    pub outcome: SasOutcome,
}

impl SasRunResult {
    /// Whether motion `i` was proven colliding.
    pub fn is_colliding(&self, i: usize) -> Option<bool> {
        self.motion_results[i]
    }
}

/// Per-motion scheduling state.
struct MotionState {
    descriptor: MotionDescriptor,
    order: Vec<usize>,
    next: usize,
    outstanding: usize,
    checked: usize,
    result: Option<bool>,
}

impl MotionState {
    fn resolved(&self) -> bool {
        self.result.is_some()
    }
    fn has_pending(&self) -> bool {
        self.result.is_none() && self.next < self.order.len()
    }
}

/// Runs one batch of motions through SAS, cycle by cycle.
///
/// # Panics
///
/// Panics if `motions` is empty or the configuration is degenerate
/// (`num_cdus == 0`, `group_size == 0`).
pub fn run_sas(
    motions: &[MotionDescriptor],
    mode: FunctionMode,
    cfg: &SasConfig,
    cdu: &mut impl CduModel,
) -> SasRunResult {
    assert!(!motions.is_empty(), "SAS needs at least one motion");
    assert!(cfg.num_cdus >= 1, "SAS needs at least one CDU");
    assert!(cfg.group_size >= 1, "group size must be at least 1");

    // Cycle-level scheduler loop: instrumentation only exists under the
    // `telemetry` feature so the default build's hot loop is untouched.
    #[cfg(feature = "telemetry")]
    let batch_span = mp_telemetry::span_args(
        "core",
        "sas_batch",
        mp_telemetry::arg1("motions", mp_telemetry::ArgValue::U64(motions.len() as u64)),
    );

    let mut states: Vec<MotionState> = motions
        .iter()
        .enumerate()
        .map(|(i, d)| MotionState {
            descriptor: d.clone(),
            order: cfg.intra.order(d.count, i),
            next: 0,
            outstanding: 0,
            checked: 0,
            result: None,
        })
        .collect();

    // CDU array: busy-until time and the in-flight completion.
    struct InFlight {
        finish: u64,
        motion: usize,
        colliding: bool,
        ops: OpCounter,
    }
    let mut cdus: Vec<Option<InFlight>> = (0..cfg.num_cdus).map(|_| None).collect();

    let mut t: u64 = 0;
    let mut queries: u64 = 0;
    let mut ops = OpCounter::default();
    let mut rr_cursor = 0usize; // round-robin over the motion window

    let outcome = 'run: loop {
        // 1. Retire completions due at or before t.
        for slot in cdus.iter_mut() {
            let Some(f) = slot else { continue };
            if f.finish > t {
                continue;
            }
            let m = &mut states[f.motion];
            m.outstanding -= 1;
            m.checked += 1;
            ops += f.ops;
            if f.colliding && m.result.is_none() {
                // Remove the motion from the schedule (§5.1: "It removes a
                // motion from the scheduling list if an intermediate pose
                // for this motion is found to be colliding").
                m.result = Some(true);
                m.next = m.order.len();
                if mode == FunctionMode::Feasibility {
                    let idx = f.motion;
                    *slot = None;
                    break 'run SasOutcome::CollisionFound(idx);
                }
            } else if m.result.is_none() && m.checked == m.descriptor.count && m.outstanding == 0 {
                m.result = Some(false);
                if mode == FunctionMode::Connectivity {
                    let idx = f.motion;
                    *slot = None;
                    break 'run SasOutcome::FreeMotionFound(idx);
                }
            }
            *slot = None;
        }

        // 2. Build the dispatch window.
        let window: Vec<usize> = if cfg.inter_motion {
            states
                .iter()
                .enumerate()
                .filter(|(_, m)| !m.resolved())
                .map(|(i, _)| i)
                .take(cfg.group_size)
                .collect()
        } else {
            states
                .iter()
                .enumerate()
                .find(|(_, m)| m.has_pending() || m.outstanding > 0)
                .map(|(i, _)| vec![i])
                .unwrap_or_default()
        };

        // 3. Dispatch up to dispatch_per_cycle queries to free CDUs. The
        // slot index only feeds the telemetry CDU-lane events.
        let mut dispatched = 0usize;
        if !window.is_empty() {
            #[cfg_attr(not(feature = "telemetry"), allow(clippy::unused_enumerate_index))]
            for (_slot_idx, slot) in cdus.iter_mut().enumerate() {
                if dispatched >= cfg.dispatch_per_cycle {
                    break;
                }
                if slot.is_some() {
                    continue;
                }
                // Round-robin over window members that still have poses.
                let mut chosen = None;
                for k in 0..window.len() {
                    let mi = window[(rr_cursor + k) % window.len()];
                    if states[mi].has_pending()
                        && states[mi].outstanding < cfg.max_outstanding_per_motion
                    {
                        chosen = Some(mi);
                        rr_cursor = (rr_cursor + k + 1) % window.len();
                        break;
                    }
                }
                let Some(mi) = chosen else { break };
                let m = &mut states[mi];
                let pose_idx = m.order[m.next];
                m.next += 1;
                m.outstanding += 1;
                let pose = m.descriptor.pose(pose_idx);
                let resp = cdu.query(&pose);
                queries += 1;
                dispatched += 1;
                // One Perfetto row per CDU dispatch slot, timestamped in
                // cycles (the SAS clock), showing lane occupancy.
                #[cfg(feature = "telemetry")]
                mp_telemetry::complete_at(
                    mp_telemetry::Lane::new("cdu", _slot_idx as u32),
                    "core",
                    "cd_query",
                    t,
                    resp.latency.max(1),
                    mp_telemetry::arg2(
                        "motion",
                        mp_telemetry::ArgValue::U64(mi as u64),
                        "colliding",
                        mp_telemetry::ArgValue::U64(resp.colliding as u64),
                    ),
                );
                *slot = Some(InFlight {
                    finish: t + resp.latency.max(1),
                    motion: mi,
                    colliding: resp.colliding,
                    ops: resp.ops,
                });
            }
        }

        // 4. Check global termination.
        let all_resolved = states.iter().all(MotionState::resolved);
        let any_inflight = cdus.iter().any(Option::is_some);
        if all_resolved && !any_inflight {
            break match mode {
                FunctionMode::Feasibility => SasOutcome::AllFree,
                FunctionMode::Connectivity => SasOutcome::NoFreeMotion,
                FunctionMode::Complete => SasOutcome::Completed,
            };
        }

        // 5. Advance time: next cycle if we can still dispatch, else jump
        // to the earliest completion.
        let can_dispatch_next =
            states.iter().any(MotionState::has_pending) && cdus.iter().any(Option::is_none);
        if can_dispatch_next {
            t += 1;
        } else {
            // Loop invariant: the batch is not finished (checked above),
            // so either a motion has pending work and a CDU is free
            // (handled in the branch above) or some CDU is busy — an
            // empty in-flight set here would mean lost work.
            let next_finish = cdus
                .iter()
                .flatten()
                .map(|f| f.finish)
                .min()
                .expect("in-flight work must exist if nothing can dispatch");
            t = next_finish.max(t + 1);
        }
    };

    // Account for the result aggregation cycle (§5.1, step 6).
    #[cfg(feature = "telemetry")]
    batch_span.end_with(|| {
        mp_telemetry::arg2(
            "cycles",
            mp_telemetry::ArgValue::U64(t + 1),
            "queries",
            mp_telemetry::ArgValue::U64(queries),
        )
    });
    SasRunResult {
        cycles: t + 1,
        queries,
        ops,
        motion_results: states.into_iter().map(|m| m.result).collect(),
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_collision::{CollisionChecker, SoftwareChecker};
    use mp_octree::{Octree, Scene, SceneConfig};
    use mp_robot::{Motion, RobotModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const STEP: f32 = 0.05;

    fn fixture(seed: u64, n_motions: usize) -> (Vec<MotionDescriptor>, SoftwareChecker) {
        let robot = RobotModel::jaco2();
        let scene = Scene::random(SceneConfig::paper(), seed);
        let checker = SoftwareChecker::new(robot.clone(), scene.octree());
        let mut rng = StdRng::seed_from_u64(seed + 1000);
        let motions = (0..n_motions)
            .map(|_| {
                Motion::new(robot.sample_config(&mut rng), robot.sample_config(&mut rng))
                    .descriptor(STEP)
            })
            .collect();
        (motions, checker)
    }

    /// Ground-truth per-motion verdicts via exhaustive checking.
    fn ground_truth(motions: &[MotionDescriptor], checker: &mut SoftwareChecker) -> Vec<bool> {
        motions
            .iter()
            .map(|d| (0..d.count).any(|i| checker.check_pose(&d.pose(i))))
            .collect()
    }

    #[test]
    fn policy_orders_are_permutations() {
        for n in [1usize, 2, 7, 64, 101] {
            for p in [
                IntraPolicy::InOrder,
                IntraPolicy::Random { seed: 3 },
                IntraPolicy::CoarseStep { step: 8 },
                IntraPolicy::BinaryRecursive,
            ] {
                let mut o = p.order(n, 0);
                o.sort_unstable();
                assert_eq!(o, (0..n).collect::<Vec<_>>(), "{p:?} n={n}");
            }
        }
    }

    #[test]
    fn coarse_step_order_shape() {
        let o = IntraPolicy::CoarseStep { step: 4 }.order(10, 0);
        assert_eq!(o, vec![0, 4, 8, 1, 5, 9, 2, 6, 3, 7]);
    }

    #[test]
    fn binary_recursive_starts_with_extremes_and_midpoint() {
        let o = IntraPolicy::BinaryRecursive.order(9, 0);
        assert_eq!(&o[..3], &[0, 8, 4]);
    }

    #[test]
    fn complete_mode_matches_ground_truth_for_all_policies() {
        let (motions, checker) = fixture(1, 6);
        let truth = ground_truth(&motions, &mut checker.clone());
        for cfg in [
            SasConfig::sequential(),
            SasConfig::naive_parallel(8),
            SasConfig::csp(8),
            SasConfig::mcsp(8),
            SasConfig::inter_only(8),
            SasConfig {
                intra: IntraPolicy::BinaryRecursive,
                inter_motion: true,
                group_size: 16,
                num_cdus: 8,
                dispatch_per_cycle: 1,
                max_outstanding_per_motion: usize::MAX,
            },
            SasConfig {
                intra: IntraPolicy::Random { seed: 5 },
                inter_motion: false,
                group_size: 1,
                num_cdus: 4,
                dispatch_per_cycle: 1,
                max_outstanding_per_motion: usize::MAX,
            },
            SasConfig::ms(8),
        ] {
            let mut cdu = IdealCdu::new(checker.clone());
            let r = run_sas(&motions, FunctionMode::Complete, &cfg, &mut cdu);
            assert_eq!(r.outcome, SasOutcome::Completed);
            for (i, want) in truth.iter().enumerate() {
                assert_eq!(
                    r.motion_results[i],
                    Some(*want),
                    "cfg {cfg:?} motion {i} mismatch"
                );
            }
        }
    }

    #[test]
    fn feasibility_mode_agrees_with_truth() {
        let (motions, checker) = fixture(2, 8);
        let truth = ground_truth(&motions, &mut checker.clone());
        let any_collision = truth.iter().any(|&c| c);
        let mut cdu = IdealCdu::new(checker);
        let r = run_sas(
            &motions,
            FunctionMode::Feasibility,
            &SasConfig::mcsp(8),
            &mut cdu,
        );
        match r.outcome {
            SasOutcome::CollisionFound(i) => {
                assert!(any_collision);
                assert!(truth[i]);
            }
            SasOutcome::AllFree => assert!(!any_collision),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn connectivity_mode_agrees_with_truth() {
        let (motions, checker) = fixture(3, 8);
        let truth = ground_truth(&motions, &mut checker.clone());
        let any_free = truth.iter().any(|&c| !c);
        let mut cdu = IdealCdu::new(checker);
        let r = run_sas(
            &motions,
            FunctionMode::Connectivity,
            &SasConfig::mcsp(8),
            &mut cdu,
        );
        match r.outcome {
            SasOutcome::FreeMotionFound(i) => {
                assert!(any_free);
                assert!(!truth[i]);
            }
            SasOutcome::NoFreeMotion => assert!(!any_free),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn parallel_is_faster_but_costs_more_queries() {
        let (motions, checker) = fixture(4, 8);
        let mut seq_cdu = IdealCdu::new(checker.clone());
        let seq = run_sas(
            &motions,
            FunctionMode::Complete,
            &SasConfig::sequential(),
            &mut seq_cdu,
        );
        let mut np_cdu = IdealCdu::new(checker.clone());
        let np = run_sas(
            &motions,
            FunctionMode::Complete,
            &SasConfig::naive_parallel(16).idealized(),
            &mut np_cdu,
        );
        assert!(
            np.cycles < seq.cycles,
            "np {} vs seq {}",
            np.cycles,
            seq.cycles
        );
        assert!(np.queries >= seq.queries);
    }

    #[test]
    fn mcsp_is_more_work_efficient_than_np() {
        // Aggregate over several batches: MCSP should issue fewer queries
        // than NP at the same CDU count (the paper's central claim).
        let mut np_total = 0u64;
        let mut mcsp_total = 0u64;
        for seed in 0..6 {
            let (motions, checker) = fixture(seed, 8);
            let mut a = IdealCdu::new(checker.clone());
            np_total += run_sas(
                &motions,
                FunctionMode::Complete,
                &SasConfig::naive_parallel(16).idealized(),
                &mut a,
            )
            .queries;
            let mut b = IdealCdu::new(checker.clone());
            mcsp_total += run_sas(
                &motions,
                FunctionMode::Complete,
                &SasConfig::mcsp(16).idealized(),
                &mut b,
            )
            .queries;
        }
        assert!(
            mcsp_total < np_total,
            "MCSP {mcsp_total} queries vs NP {np_total}"
        );
    }

    #[test]
    fn sequential_on_free_space_checks_everything_once() {
        let robot = RobotModel::jaco2();
        let tree = Octree::build(&[], 3);
        let checker = SoftwareChecker::new(robot.clone(), tree);
        let m = Motion::new(robot.home(), {
            let mut c = robot.home();
            c.as_mut_slice()[0] += 1.0;
            c
        })
        .descriptor(STEP);
        let total: u64 = m.count as u64;
        let mut cdu = IdealCdu::new(checker);
        let r = run_sas(
            std::slice::from_ref(&m),
            FunctionMode::Complete,
            &SasConfig::sequential(),
            &mut cdu,
        );
        assert_eq!(r.queries, total);
        assert_eq!(r.motion_results[0], Some(false));
        // 1 query/cycle + latency-1 completion + aggregation.
        assert!(r.cycles >= total && r.cycles <= total + 3);
    }

    #[test]
    #[should_panic(expected = "at least one motion")]
    fn empty_batch_rejected() {
        let (_, checker) = fixture(0, 1);
        let mut cdu = IdealCdu::new(checker);
        let _ = run_sas(
            &[],
            FunctionMode::Complete,
            &SasConfig::sequential(),
            &mut cdu,
        );
    }
}
