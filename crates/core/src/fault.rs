//! Fault detection and recovery across the CDU array.
//!
//! [`FaultTolerantCduArray`] wraps a CECDU array as a single
//! [`CduModel`](crate::sas::CduModel) the SAS can dispatch to, injecting
//! hardware faults from a seeded [`FaultPlan`] and recovering per the
//! configured [`RecoveryMode`]:
//!
//! * **Detection** — SRAM parity over each 24-bit node word, structural
//!   traversal checks (undecodable words, out-of-range pointers, read
//!   caps), result-bus parity on verdicts, per-query sequence tags
//!   (catching stuck units replaying stale results), a dispatch watchdog
//!   (catching dropped results), and the sticky saturation flag.
//! * **Recovery** — a detected fault re-dispatches the query to a
//!   different unit, up to a bounded budget; a unit accumulating
//!   [`RecoveryPolicy::quarantine_strikes`] detections is quarantined
//!   (never the last healthy unit). When the budget runs out the query is
//!   resolved conservatively: *collision wins*.
//! * **Voter** — [`RecoveryMode::DetectRetryVoter`] additionally
//!   spot-checks a fraction of *free* verdicts against the software
//!   oracle, promoting free → collision on disagreement (conservative:
//!   the voter can add false positives but never a false negative).
//!
//! Every query is also evaluated on a clean (fault-free) reference model
//! purely for classification: undetected faults whose verdict still came
//! out right are **masked**, undetected wrong verdicts **escaped**. With
//! detection enabled every modeled fault kind is covered by a mechanism,
//! so escapes — and in particular wrong-free **false negatives** — are
//! structurally zero; the fault campaign in `mp-bench` asserts this.

use mp_collision::{CollisionChecker, SoftwareChecker};
use mp_robot::JointConfig;
use mp_sim::fault::FaultKind;
use mp_sim::{FaultInjector, FaultPlan, OpCounter, ResilienceCounters};

use crate::cecdu::CecduSim;
use crate::sas::{CduModel, CduResponse};

/// Scheduler cycles to hand a detected-faulty query to another unit.
pub const REDISPATCH_CYCLES: u64 = 4;

/// Cycles a stuck unit takes to replay its stale latched result.
pub const STUCK_REPLAY_CYCLES: u64 = 4;

/// How the system responds to hardware faults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RecoveryMode {
    /// No detection hardware: faults propagate (structural traversal
    /// checks still fire — the decoder physically cannot follow a
    /// reserved occupancy pattern or an out-of-range pointer).
    None,
    /// Detection plus bounded re-dispatch and quarantine.
    #[default]
    DetectRetry,
    /// [`RecoveryMode::DetectRetry`] plus the software-oracle spot-check
    /// voter on free verdicts.
    DetectRetryVoter,
}

impl RecoveryMode {
    /// Whether detection hardware (parity, tags, watchdog, flags) is on.
    pub fn detection(self) -> bool {
        !matches!(self, RecoveryMode::None)
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryMode::None => "no-recovery",
            RecoveryMode::DetectRetry => "detect+retry",
            RecoveryMode::DetectRetryVoter => "detect+retry+voter",
        }
    }
}

/// Recovery parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// The recovery mode.
    pub mode: RecoveryMode,
    /// Re-dispatches allowed per query before the conservative fallback.
    pub max_redispatches: u32,
    /// Detections charged to one unit before it is quarantined.
    pub quarantine_strikes: u32,
    /// Latency multiplier for [`FaultKind::SlowUnit`] events.
    pub slow_factor: u64,
    /// Cycles the watchdog waits before declaring a result dropped.
    pub watchdog_cycles: u64,
    /// In voter mode, every `voter_period`-th free verdict is
    /// oracle-checked (1 checks every free verdict).
    pub voter_period: u64,
}

impl RecoveryPolicy {
    /// Default parameters for a mode.
    pub fn new(mode: RecoveryMode) -> RecoveryPolicy {
        RecoveryPolicy {
            mode,
            max_redispatches: 3,
            quarantine_strikes: 3,
            slow_factor: 4,
            watchdog_cycles: 512,
            voter_period: 4,
        }
    }
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy::new(RecoveryMode::default())
    }
}

/// Per-unit health state.
#[derive(Clone, Copy, Debug, Default)]
struct UnitState {
    strikes: u32,
    quarantined: bool,
    stuck: bool,
    last_verdict: Option<bool>,
    queries: u64,
}

/// A fault-injected CECDU array with detection, re-dispatch, quarantine,
/// and an optional oracle voter, usable anywhere a
/// [`CduModel`](crate::sas::CduModel) is expected.
///
/// The clean reference evaluation used to classify verdicts is an
/// accounting device, not simulated hardware: its work is excluded from
/// the reported latency and [`OpCounter`]s.
///
/// # Examples
///
/// ```
/// use mp_octree::{Scene, SceneConfig};
/// use mp_robot::RobotModel;
/// use mp_sim::{CecduConfig, FaultPlan, IuKind};
/// use mpaccel_core::cecdu::CecduSim;
/// use mpaccel_core::fault::{FaultTolerantCduArray, RecoveryMode, RecoveryPolicy};
/// use mpaccel_core::sas::CduModel;
///
/// let scene = Scene::random(SceneConfig::paper(), 0);
/// let sim = CecduSim::new(
///     RobotModel::jaco2(),
///     scene.octree(),
///     CecduConfig::new(4, IuKind::MultiCycle),
/// );
/// let mut array = FaultTolerantCduArray::new(
///     sim,
///     4,
///     FaultPlan::uniform(0.05, 11),
///     RecoveryPolicy::new(RecoveryMode::DetectRetry),
/// );
/// let home = array.sim().robot().home();
/// let _resp = array.query(&home);
/// // Detection may fall back to "collision wins", but never a wrong free.
/// assert_eq!(array.counters().false_negatives, 0);
/// assert_eq!(array.counters().escaped, 0);
/// ```
pub struct FaultTolerantCduArray {
    sim: CecduSim,
    oracle: Option<SoftwareChecker>,
    injector: FaultInjector,
    policy: RecoveryPolicy,
    units: Vec<UnitState>,
    next_unit: usize,
    free_verdicts_seen: u64,
}

impl FaultTolerantCduArray {
    /// Creates an array of `num_units` CECDUs sharing one hardware model.
    /// Voter mode builds its software oracle from the sim's robot and
    /// octree.
    ///
    /// # Panics
    ///
    /// Panics if `num_units == 0`.
    pub fn new(
        sim: CecduSim,
        num_units: usize,
        plan: FaultPlan,
        policy: RecoveryPolicy,
    ) -> FaultTolerantCduArray {
        assert!(num_units > 0, "the array needs at least one unit");
        let oracle = (policy.mode == RecoveryMode::DetectRetryVoter)
            .then(|| SoftwareChecker::new(sim.robot().clone(), sim.octree().clone()));
        FaultTolerantCduArray {
            sim,
            oracle,
            injector: FaultInjector::new(plan),
            policy,
            units: vec![UnitState::default(); num_units],
            next_unit: 0,
            free_verdicts_seen: 0,
        }
    }

    /// The underlying CECDU model.
    pub fn sim(&self) -> &CecduSim {
        &self.sim
    }

    /// The recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// The resilience counters accumulated so far.
    pub fn counters(&self) -> &ResilienceCounters {
        self.injector.counters()
    }

    /// Zeroes the resilience counters (unit health is kept).
    pub fn reset_counters(&mut self) {
        self.injector.reset_counters();
    }

    /// Number of units in the array.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Units currently not quarantined.
    pub fn healthy_units(&self) -> usize {
        self.units.iter().filter(|u| !u.quarantined).count()
    }

    /// Round-robin over healthy units, skipping `avoid` when another
    /// healthy unit exists.
    fn pick_unit(&mut self, avoid: Option<usize>) -> usize {
        let n = self.units.len();
        for k in 0..n {
            let u = (self.next_unit + k) % n;
            if self.units[u].quarantined {
                continue;
            }
            if avoid == Some(u) && self.healthy_units() > 1 {
                continue;
            }
            self.next_unit = (u + 1) % n;
            return u;
        }
        // All units quarantined is unreachable: quarantine preserves one
        // healthy unit. Fall back defensively to unit 0.
        0
    }

    /// Charges a detection to a unit, quarantining it after the strike
    /// budget — unless it is the last healthy unit.
    fn strike(&mut self, u: usize) {
        self.units[u].strikes += 1;
        if self.units[u].strikes >= self.policy.quarantine_strikes
            && !self.units[u].quarantined
            && self.healthy_units() > 1
        {
            self.units[u].quarantined = true;
            self.injector.counters_mut().quarantined += 1;
        }
    }
}

/// One dispatch attempt's outcome, before recovery decides what to do.
struct Attempt {
    colliding: bool,
    cycles: u64,
    ops: OpCounter,
    /// Any fault touched this attempt (even if undetected).
    faulty: bool,
    /// A detection mechanism fired.
    detected: bool,
    /// The verdict was resolved conservatively inside the unit
    /// (structural detection fallback), i.e. deliberately, not silently.
    conservative: bool,
}

impl FaultTolerantCduArray {
    /// Evaluates one attempt on unit `u`, applying unit- and bus-level
    /// faults around the CECDU-level injection.
    fn attempt(&mut self, u: usize, pose: &JointConfig) -> Attempt {
        let detection = self.policy.mode.detection();
        self.units[u].queries += 1;

        if self.injector.fires(FaultKind::StuckUnit) {
            self.units[u].stuck = true;
        }

        let mut a = if self.units[u].stuck {
            // The latched unit replays its previous result instead of
            // evaluating the dispatched pose.
            match self.units[u].last_verdict {
                Some(stale) => Attempt {
                    colliding: stale,
                    cycles: STUCK_REPLAY_CYCLES,
                    ops: OpCounter::default(),
                    faulty: true,
                    // The replayed result carries the previous query's
                    // sequence tag.
                    detected: detection,
                    conservative: false,
                },
                // Nothing latched yet: the unit never answers, which is a
                // dropped result (handled by the watchdog below).
                None => Attempt {
                    colliding: false,
                    cycles: self.policy.watchdog_cycles,
                    ops: OpCounter::default(),
                    faulty: true,
                    detected: detection,
                    conservative: false,
                },
            }
        } else {
            let f = self
                .sim
                .check_pose_with_faults(pose, &mut self.injector, detection);
            self.units[u].last_verdict = Some(f.result.colliding);
            Attempt {
                colliding: f.result.colliding,
                cycles: f.result.cycles,
                ops: f.result.ops,
                faulty: f.faults_injected > 0 || f.detected,
                detected: f.detected,
                // Structural detections resolve conservatively in-unit.
                conservative: f.detected,
            }
        };

        if self.injector.fires(FaultKind::SlowUnit) {
            a.faulty = true;
            a.cycles *= self.policy.slow_factor.max(1);
        }
        if self.injector.fires(FaultKind::CorruptedVerdict) {
            a.faulty = true;
            a.colliding = !a.colliding;
            if detection {
                a.detected = true; // result-bus parity mismatch
            }
        }
        if self.injector.fires(FaultKind::DroppedResult) {
            a.faulty = true;
            if detection {
                // The watchdog times out and flags the dispatch slot.
                a.cycles += self.policy.watchdog_cycles;
                a.detected = true;
            } else {
                // The result silently never arrives; the scheduler's
                // dispatch slot is reclaimed with the default "free"
                // verdict — the false-negative source of this study.
                a.colliding = false;
                a.conservative = false;
            }
        }
        a
    }
}

impl CduModel for FaultTolerantCduArray {
    fn query(&mut self, pose: &JointConfig) -> CduResponse {
        self.injector.counters_mut().queries += 1;
        // Clean reference for classification only (no ops/latency).
        let clean = self.sim.check_pose(pose).colliding;
        let detection = self.policy.mode.detection();

        let mut latency = 0u64;
        let mut ops = OpCounter::default();
        let mut redispatches = 0u32;
        let mut last_unit: Option<usize> = None;
        let (verdict, deliberate, final_attempt) = loop {
            let u = self.pick_unit(last_unit);
            last_unit = Some(u);
            let a = self.attempt(u, pose);
            latency += a.cycles;
            ops += a.ops;
            if a.detected {
                self.injector.counters_mut().detected += 1;
                self.strike(u);
                if detection && redispatches < self.policy.max_redispatches {
                    redispatches += 1;
                    self.injector.counters_mut().redispatches += 1;
                    latency += REDISPATCH_CYCLES;
                    continue;
                }
                // Budget exhausted (or no retry hardware): collision wins.
                self.injector.counters_mut().conservative_promotions += 1;
                break (true, true, a);
            }
            break (a.colliding, a.conservative, a);
        };

        // Voter: spot-check free verdicts against the software oracle,
        // promoting only free -> collision (conservative by construction).
        let mut verdict = verdict;
        let mut deliberate = deliberate;
        if !verdict && self.policy.mode == RecoveryMode::DetectRetryVoter {
            self.free_verdicts_seen += 1;
            if self
                .free_verdicts_seen
                .is_multiple_of(self.policy.voter_period.max(1))
            {
                if let Some(oracle) = self.oracle.as_mut() {
                    self.injector.counters_mut().oracle_checks += 1;
                    if oracle.check_pose(pose) {
                        self.injector.counters_mut().oracle_overrides += 1;
                        verdict = true;
                        deliberate = true;
                    }
                }
            }
        }

        // Classification against the clean reference.
        let c = self.injector.counters_mut();
        if verdict == clean {
            if final_attempt.faulty && !final_attempt.detected {
                c.masked += 1;
            }
        } else {
            if verdict {
                c.false_positives += 1;
            } else {
                c.false_negatives += 1;
            }
            if !deliberate {
                c.escaped += 1;
            }
        }

        CduResponse {
            colliding: verdict,
            latency: latency.max(1),
            ops,
        }
    }
}

/// Convenience wrapper: runs one SAS batch on a fault-tolerant array.
/// Plain [`run_sas`](crate::sas::run_sas) works too — the array is a
/// [`CduModel`] — but this keeps the unit counts consistent.
///
/// # Panics
///
/// Panics if `cfg.num_cdus` does not match the array's unit count.
pub fn run_sas_with_faults(
    motions: &[mp_robot::MotionDescriptor],
    mode: crate::sas::FunctionMode,
    cfg: &crate::sas::SasConfig,
    array: &mut FaultTolerantCduArray,
) -> crate::sas::SasRunResult {
    assert_eq!(
        cfg.num_cdus,
        array.unit_count(),
        "SAS CDU count must match the fault-tolerant array"
    );
    crate::sas::run_sas(motions, mode, cfg, array)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sas::{run_sas, FunctionMode, SasConfig};
    use mp_octree::{Scene, SceneConfig};
    use mp_robot::{Motion, RobotModel};
    use mp_sim::{CecduConfig, IuKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sim(seed: u64) -> CecduSim {
        CecduSim::new(
            RobotModel::jaco2(),
            Scene::random(SceneConfig::paper(), seed).octree(),
            CecduConfig::new(4, IuKind::MultiCycle),
        )
    }

    fn poses(n: usize, seed: u64) -> Vec<JointConfig> {
        let robot = RobotModel::jaco2();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| robot.sample_config(&mut rng)).collect()
    }

    #[test]
    fn fault_free_array_matches_clean_sim() {
        let s = sim(0);
        let mut array = FaultTolerantCduArray::new(
            s.clone(),
            4,
            FaultPlan::none(1),
            RecoveryPolicy::new(RecoveryMode::DetectRetry),
        );
        for pose in poses(40, 2) {
            let resp = array.query(&pose);
            assert_eq!(resp.colliding, s.check_pose(&pose).colliding);
        }
        let c = *array.counters();
        assert_eq!(c.queries, 40);
        assert_eq!(c.injected_total(), 0);
        assert_eq!(c.detected, 0);
        assert_eq!(c.escaped, 0);
        assert_eq!(c.false_negatives, 0);
        assert_eq!(c.false_positives, 0);
    }

    #[test]
    fn detection_keeps_false_negatives_at_zero() {
        for mode in [RecoveryMode::DetectRetry, RecoveryMode::DetectRetryVoter] {
            let mut array = FaultTolerantCduArray::new(
                sim(1),
                4,
                FaultPlan::uniform(0.05, 7),
                RecoveryPolicy::new(mode),
            );
            for pose in poses(120, 3) {
                let _ = array.query(&pose);
            }
            let c = *array.counters();
            assert!(c.injected_total() > 0, "campaign injected nothing");
            assert!(c.detected > 0, "nothing detected at 5% rates");
            assert_eq!(c.escaped, 0, "{mode:?} let a fault escape");
            assert_eq!(c.false_negatives, 0, "{mode:?} delivered a wrong free");
        }
    }

    #[test]
    fn no_recovery_mode_lets_faults_escape() {
        let mut array = FaultTolerantCduArray::new(
            sim(2),
            4,
            // Dropped results and corrupted verdicts are the silent
            // killers without detection hardware.
            FaultPlan::none(9)
                .with_rate(FaultKind::DroppedResult, 0.15)
                .with_rate(FaultKind::CorruptedVerdict, 0.15),
            RecoveryPolicy::new(RecoveryMode::None),
        );
        for pose in poses(200, 4) {
            let _ = array.query(&pose);
        }
        let c = *array.counters();
        assert!(c.injected_total() > 0);
        assert!(
            c.escaped > 0,
            "undetected drops/corruptions must escape: {c:?}"
        );
        assert!(c.false_negatives + c.false_positives > 0);
        assert_eq!(c.redispatches, 0, "no retry hardware in None mode");
    }

    #[test]
    fn stuck_unit_is_quarantined_but_never_the_last_one() {
        let mut array = FaultTolerantCduArray::new(
            sim(3),
            2,
            FaultPlan::none(5).with_rate(FaultKind::StuckUnit, 0.35),
            RecoveryPolicy::new(RecoveryMode::DetectRetry),
        );
        for pose in poses(150, 6) {
            let _ = array.query(&pose);
        }
        let c = *array.counters();
        assert!(c.injected(FaultKind::StuckUnit) > 0);
        assert!(array.healthy_units() >= 1, "quarantine emptied the array");
        assert!(c.quarantined <= 1, "only one of two units may be benched");
        assert_eq!(c.false_negatives, 0);
    }

    #[test]
    fn voter_spot_checks_free_verdicts() {
        let mut array = FaultTolerantCduArray::new(
            sim(4),
            4,
            FaultPlan::uniform(0.02, 3),
            RecoveryPolicy::new(RecoveryMode::DetectRetryVoter),
        );
        for pose in poses(100, 8) {
            let _ = array.query(&pose);
        }
        let c = *array.counters();
        assert!(c.oracle_checks > 0, "voter never consulted the oracle");
        assert_eq!(c.false_negatives, 0);
    }

    #[test]
    fn faulty_array_drives_sas_batches() {
        let robot = RobotModel::jaco2();
        let mut rng = StdRng::seed_from_u64(31);
        let motions: Vec<_> = (0..4)
            .map(|_| {
                Motion::new(robot.sample_config(&mut rng), robot.sample_config(&mut rng))
                    .descriptor(0.1)
            })
            .collect();
        let mut array = FaultTolerantCduArray::new(
            sim(5),
            8,
            FaultPlan::uniform(0.01, 13),
            RecoveryPolicy::new(RecoveryMode::DetectRetry),
        );
        let r = run_sas_with_faults(
            &motions,
            FunctionMode::Complete,
            &SasConfig::mcsp(8),
            &mut array,
        );
        assert!(r.motion_results.iter().all(Option::is_some));
        assert_eq!(array.counters().false_negatives, 0);
        // The generic entry point accepts the array as a CduModel too.
        let mut array2 = FaultTolerantCduArray::new(
            sim(5),
            8,
            FaultPlan::uniform(0.01, 13),
            RecoveryPolicy::new(RecoveryMode::DetectRetry),
        );
        let r2 = run_sas(
            &motions,
            FunctionMode::Complete,
            &SasConfig::mcsp(8),
            &mut array2,
        );
        assert_eq!(r.motion_results, r2.motion_results);
    }

    #[test]
    fn runs_are_deterministic_given_a_seed() {
        let run = || {
            let mut array = FaultTolerantCduArray::new(
                sim(6),
                4,
                FaultPlan::uniform(0.04, 21),
                RecoveryPolicy::new(RecoveryMode::DetectRetry),
            );
            let mut verdicts = Vec::new();
            for pose in poses(60, 9) {
                verdicts.push(array.query(&pose).colliding);
            }
            (verdicts, *array.counters())
        };
        let (va, ca) = run();
        let (vb, cb) = run();
        assert_eq!(va, vb);
        assert_eq!(ca, cb);
    }

    #[test]
    fn retries_cost_latency_and_energy() {
        let clean_run = || {
            let mut array = FaultTolerantCduArray::new(
                sim(7),
                4,
                FaultPlan::none(2),
                RecoveryPolicy::new(RecoveryMode::DetectRetry),
            );
            let mut cycles = 0u64;
            let mut mults = 0u64;
            for pose in poses(60, 10) {
                let r = array.query(&pose);
                cycles += r.latency;
                mults += r.ops.mults;
            }
            (cycles, mults)
        };
        let faulty_run = || {
            let mut array = FaultTolerantCduArray::new(
                sim(7),
                4,
                FaultPlan::uniform(0.08, 2),
                RecoveryPolicy::new(RecoveryMode::DetectRetry),
            );
            let mut cycles = 0u64;
            let mut mults = 0u64;
            for pose in poses(60, 10) {
                let r = array.query(&pose);
                cycles += r.latency;
                mults += r.ops.mults;
            }
            assert!(array.counters().redispatches > 0);
            (cycles, mults)
        };
        let (c0, _m0) = clean_run();
        let (c1, m1) = faulty_run();
        assert!(c1 > c0, "faulty campaign not slower: {c1} vs {c0}");
        assert!(m1 > 0);
    }
}
