//! Fault detection and recovery across the CDU array.
//!
//! [`FaultTolerantCduArray`] wraps a CECDU array as a single
//! [`CduModel`](crate::sas::CduModel) the SAS can dispatch to, injecting
//! hardware faults from a seeded [`FaultPlan`] and recovering per the
//! configured [`RecoveryMode`]:
//!
//! * **Detection** — SRAM parity over each 24-bit node word, structural
//!   traversal checks (undecodable words, out-of-range pointers, read
//!   caps), result-bus parity on verdicts, per-query sequence tags
//!   (catching stuck units replaying stale results), a dispatch watchdog
//!   (catching dropped results), and the sticky saturation flag.
//! * **Recovery** — a detected fault re-dispatches the query to a
//!   different unit, up to a bounded budget; a unit accumulating
//!   [`RecoveryPolicy::quarantine_strikes`] detections is quarantined
//!   (never the last healthy unit). When the budget runs out the query is
//!   resolved conservatively: *collision wins*.
//! * **Voter** — [`RecoveryMode::DetectRetryVoter`] additionally
//!   spot-checks a fraction of *free* verdicts against the software
//!   oracle, promoting free → collision on disagreement (conservative:
//!   the voter can add false positives but never a false negative).
//!
//! Every query is also evaluated on a clean (fault-free) reference model
//! purely for classification: undetected faults whose verdict still came
//! out right are **masked**, undetected wrong verdicts **escaped**. With
//! detection enabled every modeled fault kind is covered by a mechanism,
//! so escapes — and in particular wrong-free **false negatives** — are
//! structurally zero; the fault campaign in `mp-bench` asserts this.

use mp_collision::{CollisionChecker, SoftwareChecker};
use mp_robot::JointConfig;
use mp_sim::fault::FaultKind;
use mp_sim::{
    FaultInjector, FaultPlan, IntegrityCounters, OpCounter, ResilienceCounters, SdcInjector,
    SdcPlan,
};

use crate::cecdu::CecduSim;
use crate::sas::{CduModel, CduResponse};

/// Scheduler cycles to hand a detected-faulty query to another unit.
pub const REDISPATCH_CYCLES: u64 = 4;

/// Cycles a stuck unit takes to replay its stale latched result.
pub const STUCK_REPLAY_CYCLES: u64 = 4;

/// How the system responds to hardware faults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RecoveryMode {
    /// No detection hardware: faults propagate (structural traversal
    /// checks still fire — the decoder physically cannot follow a
    /// reserved occupancy pattern or an out-of-range pointer).
    None,
    /// Detection plus bounded re-dispatch and quarantine.
    #[default]
    DetectRetry,
    /// [`RecoveryMode::DetectRetry`] plus the software-oracle spot-check
    /// voter on free verdicts.
    DetectRetryVoter,
}

impl RecoveryMode {
    /// Whether detection hardware (parity, tags, watchdog, flags) is on.
    pub fn detection(self) -> bool {
        !matches!(self, RecoveryMode::None)
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryMode::None => "no-recovery",
            RecoveryMode::DetectRetry => "detect+retry",
            RecoveryMode::DetectRetryVoter => "detect+retry+voter",
        }
    }
}

/// Recovery parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// The recovery mode.
    pub mode: RecoveryMode,
    /// Re-dispatches allowed per query before the conservative fallback.
    pub max_redispatches: u32,
    /// Detections charged to one unit before it is quarantined.
    pub quarantine_strikes: u32,
    /// Latency multiplier for [`FaultKind::SlowUnit`] events.
    pub slow_factor: u64,
    /// Cycles the watchdog waits before declaring a result dropped.
    pub watchdog_cycles: u64,
    /// In voter mode, every `voter_period`-th free verdict is
    /// oracle-checked (1 checks every free verdict).
    pub voter_period: u64,
}

impl RecoveryPolicy {
    /// Default parameters for a mode.
    pub fn new(mode: RecoveryMode) -> RecoveryPolicy {
        RecoveryPolicy {
            mode,
            max_redispatches: 3,
            quarantine_strikes: 3,
            slow_factor: 4,
            watchdog_cycles: 512,
            voter_period: 4,
        }
    }
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy::new(RecoveryMode::default())
    }
}

/// Parameters of the silent-fault defense ladder layered on top of
/// [`RecoveryPolicy`]: suspicion-scored duplicate-dispatch voting plus
/// known-answer scrub probes. Kept separate from `RecoveryPolicy` so
/// existing construction sites are untouched; attach it with
/// [`FaultTolerantCduArray::with_integrity`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntegrityPolicy {
    /// Suspicion score at/above which a unit's queries are
    /// duplicate-dispatched to a majority vote.
    pub vote_threshold: u32,
    /// Suspicion charged per certification-failure accusation (and per
    /// vote override).
    pub accuse_weight: u32,
    /// Geometric decay per exoneration: `s -= max(1, s >> decay_shift)`,
    /// so scores decay fast from high values and still reach zero.
    pub decay_shift: u32,
    /// Vote overrides charged to one unit before it is quarantined as a
    /// persistent liar.
    pub liar_strikes: u32,
    /// Consecutive clean known-answer probes before a quarantined unit is
    /// readmitted.
    pub scrub_clean_target: u32,
}

impl Default for IntegrityPolicy {
    fn default() -> IntegrityPolicy {
        IntegrityPolicy {
            vote_threshold: 8,
            accuse_weight: 4,
            decay_shift: 2,
            liar_strikes: 3,
            scrub_clean_target: 4,
        }
    }
}

/// Per-unit health state.
#[derive(Clone, Copy, Debug, Default)]
struct UnitState {
    strikes: u32,
    quarantined: bool,
    stuck: bool,
    last_verdict: Option<bool>,
    queries: u64,
    /// Decayed suspicion score from certify-failure accusations and vote
    /// overrides (see [`IntegrityPolicy`]).
    suspicion: u32,
    /// Vote overrides charged against this unit (the liar evidence).
    lies: u32,
    /// Consecutive clean scrub probes while quarantined.
    scrub_streak: u32,
}

/// A fault-injected CECDU array with detection, re-dispatch, quarantine,
/// and an optional oracle voter, usable anywhere a
/// [`CduModel`](crate::sas::CduModel) is expected.
///
/// The clean reference evaluation used to classify verdicts is an
/// accounting device, not simulated hardware: its work is excluded from
/// the reported latency and [`OpCounter`]s.
///
/// # Examples
///
/// ```
/// use mp_octree::{Scene, SceneConfig};
/// use mp_robot::RobotModel;
/// use mp_sim::{CecduConfig, FaultPlan, IuKind};
/// use mpaccel_core::cecdu::CecduSim;
/// use mpaccel_core::fault::{FaultTolerantCduArray, RecoveryMode, RecoveryPolicy};
/// use mpaccel_core::sas::CduModel;
///
/// let scene = Scene::random(SceneConfig::paper(), 0);
/// let sim = CecduSim::new(
///     RobotModel::jaco2(),
///     scene.octree(),
///     CecduConfig::new(4, IuKind::MultiCycle),
/// );
/// let mut array = FaultTolerantCduArray::new(
///     sim,
///     4,
///     FaultPlan::uniform(0.05, 11),
///     RecoveryPolicy::new(RecoveryMode::DetectRetry),
/// );
/// let home = array.sim().robot().home();
/// let _resp = array.query(&home);
/// // Detection may fall back to "collision wins", but never a wrong free.
/// assert_eq!(array.counters().false_negatives, 0);
/// assert_eq!(array.counters().escaped, 0);
/// ```
pub struct FaultTolerantCduArray {
    sim: CecduSim,
    oracle: Option<SoftwareChecker>,
    injector: FaultInjector,
    policy: RecoveryPolicy,
    units: Vec<UnitState>,
    next_unit: usize,
    free_verdicts_seen: u64,
    /// Silent-corruption source, when the campaign injects SDC.
    sdc: Option<SdcInjector>,
    /// When set, silent flips only land on this unit (a "lemon lane").
    /// The RNG is still drawn for every attempt so the stream stays
    /// aligned with the uniform-SDC configuration.
    sdc_unit: Option<usize>,
    integrity: IntegrityPolicy,
    /// Defense-side integrity bookkeeping (votes, scrubs); injection-side
    /// counts live in the [`SdcInjector`] and are merged on read.
    icounters: IntegrityCounters,
}

impl FaultTolerantCduArray {
    /// Creates an array of `num_units` CECDUs sharing one hardware model.
    /// Voter mode builds its software oracle from the sim's robot and
    /// octree.
    ///
    /// # Panics
    ///
    /// Panics if `num_units == 0`.
    pub fn new(
        sim: CecduSim,
        num_units: usize,
        plan: FaultPlan,
        policy: RecoveryPolicy,
    ) -> FaultTolerantCduArray {
        assert!(num_units > 0, "the array needs at least one unit");
        let oracle = (policy.mode == RecoveryMode::DetectRetryVoter)
            .then(|| SoftwareChecker::new(sim.robot().clone(), sim.octree().clone()));
        FaultTolerantCduArray {
            sim,
            oracle,
            injector: FaultInjector::new(plan),
            policy,
            units: vec![UnitState::default(); num_units],
            next_unit: 0,
            free_verdicts_seen: 0,
            sdc: None,
            sdc_unit: None,
            integrity: IntegrityPolicy::default(),
            icounters: IntegrityCounters::default(),
        }
    }

    /// Attaches a silent-data-corruption plan: delivered verdicts can be
    /// inverted *past* every detection mechanism (the bus parity is
    /// recomputed over the corrupt payload). Only the integrity ladder —
    /// certification, voting, scrub — can catch these.
    pub fn with_sdc(mut self, plan: SdcPlan) -> FaultTolerantCduArray {
        self.sdc = Some(SdcInjector::new(plan));
        self
    }

    /// Like [`with_sdc`](Self::with_sdc), but restricts the silent flips
    /// to a single "lemon lane": a marginal unit that lies while its
    /// peers stay honest — the scenario duplicate-dispatch voting is
    /// built to contain.
    pub fn with_sdc_on_unit(mut self, plan: SdcPlan, unit: usize) -> FaultTolerantCduArray {
        self.sdc = Some(SdcInjector::new(plan));
        self.sdc_unit = Some(unit);
        self
    }

    /// Overrides the silent-fault defense parameters.
    pub fn with_integrity(mut self, integrity: IntegrityPolicy) -> FaultTolerantCduArray {
        self.integrity = integrity;
        self
    }

    /// The underlying CECDU model.
    pub fn sim(&self) -> &CecduSim {
        &self.sim
    }

    /// The recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// The resilience counters accumulated so far.
    pub fn counters(&self) -> &ResilienceCounters {
        self.injector.counters()
    }

    /// Zeroes the resilience counters (unit health is kept).
    pub fn reset_counters(&mut self) {
        self.injector.reset_counters();
    }

    /// Number of units in the array.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Units currently not quarantined.
    pub fn healthy_units(&self) -> usize {
        self.units.iter().filter(|u| !u.quarantined).count()
    }

    /// Round-robin over healthy units, skipping `avoid` when another
    /// healthy unit exists.
    fn pick_unit(&mut self, avoid: Option<usize>) -> usize {
        let n = self.units.len();
        for k in 0..n {
            let u = (self.next_unit + k) % n;
            if self.units[u].quarantined {
                continue;
            }
            if avoid == Some(u) && self.healthy_units() > 1 {
                continue;
            }
            self.next_unit = (u + 1) % n;
            return u;
        }
        // All units quarantined is unreachable: quarantine preserves one
        // healthy unit. Fall back defensively to unit 0.
        0
    }

    /// Charges a detection to a unit, quarantining it after the strike
    /// budget — unless it is the last healthy unit.
    fn strike(&mut self, u: usize) {
        self.units[u].strikes += 1;
        if self.units[u].strikes >= self.policy.quarantine_strikes
            && !self.units[u].quarantined
            && self.healthy_units() > 1
        {
            self.bench(u);
        }
    }

    /// Quarantines a unit: power-cycled out of the serving set (which
    /// clears a latch-up) until the scrub loop readmits it.
    fn bench(&mut self, u: usize) {
        self.units[u].quarantined = true;
        self.units[u].stuck = false;
        self.units[u].scrub_streak = 0;
        self.injector.counters_mut().quarantined += 1;
    }

    /// The integrity counters: injection-side (from the SDC plan) merged
    /// with defense-side (votes, scrubs, accusations recorded here).
    pub fn integrity_counters(&self) -> IntegrityCounters {
        let mut c = self.icounters;
        if let Some(sdc) = &self.sdc {
            c.merge(sdc.counters());
        }
        c
    }

    /// A unit's current suspicion score.
    pub fn suspicion(&self, u: usize) -> u32 {
        self.units[u].suspicion
    }

    /// Whether a unit's queries are escalated to duplicate-dispatch
    /// voting.
    pub fn is_suspect(&self, u: usize) -> bool {
        self.units[u].suspicion >= self.integrity.vote_threshold
    }

    /// Attributes a certification failure to a unit: its suspicion rises
    /// by [`IntegrityPolicy::accuse_weight`], escalating it toward the
    /// voting threshold.
    pub fn accuse(&mut self, u: usize) {
        self.units[u].suspicion = self.units[u]
            .suspicion
            .saturating_add(self.integrity.accuse_weight);
    }

    /// Decays a unit's suspicion after a clean certification:
    /// `s -= max(1, s >> decay_shift)` — monotone non-increasing, reaches
    /// zero in finitely many steps (the proptests in `mp-service` pin
    /// both properties on the shared decay rule).
    pub fn exonerate(&mut self, u: usize) {
        let s = self.units[u].suspicion;
        if s > 0 {
            self.units[u].suspicion = s - (s >> self.integrity.decay_shift).max(1);
        }
    }

    /// Runs one known-answer scrub round: every quarantined unit
    /// evaluates `pose` and is compared against the clean reference; a
    /// correct, undetected answer extends its clean streak, anything else
    /// resets it, and a unit reaching
    /// [`IntegrityPolicy::scrub_clean_target`] consecutive clean probes
    /// is readmitted (suspicion held at the voting threshold, so a
    /// readmitted liar stays under majority voting until it re-earns
    /// trust). Returns the number of units readmitted by this round.
    pub fn scrub_probe(&mut self, pose: &JointConfig) -> usize {
        let expected = self.sim.check_pose(pose).colliding;
        let mut readmitted = 0;
        for u in 0..self.units.len() {
            if !self.units[u].quarantined {
                continue;
            }
            self.icounters.scrub_probes += 1;
            let a = self.attempt(u, pose);
            if a.colliding == expected && !a.detected {
                self.units[u].scrub_streak += 1;
            } else {
                self.units[u].scrub_streak = 0;
            }
            if self.units[u].scrub_streak >= self.integrity.scrub_clean_target {
                self.units[u].quarantined = false;
                self.units[u].strikes = 0;
                self.units[u].lies = 0;
                self.units[u].scrub_streak = 0;
                self.units[u].suspicion =
                    self.units[u].suspicion.max(self.integrity.vote_threshold);
                self.icounters.scrub_readmits += 1;
                readmitted += 1;
            }
        }
        readmitted
    }
}

/// One dispatch attempt's outcome, before recovery decides what to do.
struct Attempt {
    colliding: bool,
    cycles: u64,
    ops: OpCounter,
    /// Any fault touched this attempt (even if undetected).
    faulty: bool,
    /// A detection mechanism fired.
    detected: bool,
    /// The verdict was resolved conservatively inside the unit
    /// (structural detection fallback), i.e. deliberately, not silently.
    conservative: bool,
}

impl FaultTolerantCduArray {
    /// Evaluates one attempt on unit `u`, applying unit- and bus-level
    /// faults around the CECDU-level injection.
    fn attempt(&mut self, u: usize, pose: &JointConfig) -> Attempt {
        let detection = self.policy.mode.detection();
        self.units[u].queries += 1;

        if self.injector.fires(FaultKind::StuckUnit) {
            self.units[u].stuck = true;
        }

        let mut a = if self.units[u].stuck {
            // The latched unit replays its previous result instead of
            // evaluating the dispatched pose.
            match self.units[u].last_verdict {
                Some(stale) => Attempt {
                    colliding: stale,
                    cycles: STUCK_REPLAY_CYCLES,
                    ops: OpCounter::default(),
                    faulty: true,
                    // The replayed result carries the previous query's
                    // sequence tag.
                    detected: detection,
                    conservative: false,
                },
                // Nothing latched yet: the unit never answers, which is a
                // dropped result (handled by the watchdog below).
                None => Attempt {
                    colliding: false,
                    cycles: self.policy.watchdog_cycles,
                    ops: OpCounter::default(),
                    faulty: true,
                    detected: detection,
                    conservative: false,
                },
            }
        } else {
            let f = self
                .sim
                .check_pose_with_faults(pose, &mut self.injector, detection);
            self.units[u].last_verdict = Some(f.result.colliding);
            Attempt {
                colliding: f.result.colliding,
                cycles: f.result.cycles,
                ops: f.result.ops,
                faulty: f.faults_injected > 0 || f.detected,
                detected: f.detected,
                // Structural detections resolve conservatively in-unit.
                conservative: f.detected,
            }
        };

        if self.injector.fires(FaultKind::SlowUnit) {
            a.faulty = true;
            a.cycles *= self.policy.slow_factor.max(1);
        }
        if self.injector.fires(FaultKind::CorruptedVerdict) {
            a.faulty = true;
            a.colliding = !a.colliding;
            if detection {
                a.detected = true; // result-bus parity mismatch
            }
        }
        if self.injector.fires(FaultKind::DroppedResult) {
            a.faulty = true;
            if detection {
                // The watchdog times out and flags the dispatch slot.
                a.cycles += self.policy.watchdog_cycles;
                a.detected = true;
            } else {
                // The result silently never arrives; the scheduler's
                // dispatch slot is reclaimed with the default "free"
                // verdict — the false-negative source of this study.
                a.colliding = false;
                a.conservative = false;
            }
        }
        // Silent data corruption: the verdict inverts in the completion
        // datapath *after* the checker, and the result-bus parity is
        // recomputed over the corrupt payload — so `detected` stays
        // false no matter the recovery mode. Only the integrity ladder
        // (certification / voting / scrub) can see this.
        if let Some(sdc) = self.sdc.as_mut() {
            // Draw unconditionally so the RNG stream does not depend on
            // which unit was dispatched.
            if sdc.flips_verdict() {
                if self.sdc_unit.is_none_or(|lemon| lemon == u) {
                    a.colliding = !a.colliding;
                    a.faulty = true;
                    a.conservative = false;
                } else {
                    // The draw landed on an honest unit: no corruption
                    // was delivered, so it must not count as injected.
                    sdc.counters_mut().verdict_flips -= 1;
                }
            }
        }
        a
    }
}

impl CduModel for FaultTolerantCduArray {
    fn query(&mut self, pose: &JointConfig) -> CduResponse {
        self.injector.counters_mut().queries += 1;
        // Clean reference for classification only (no ops/latency).
        let clean = self.sim.check_pose(pose).colliding;
        let detection = self.policy.mode.detection();

        let mut latency = 0u64;
        let mut ops = OpCounter::default();
        let mut redispatches = 0u32;
        let mut last_unit: Option<usize> = None;
        let (verdict, deliberate, final_attempt) = loop {
            let u = self.pick_unit(last_unit);
            last_unit = Some(u);
            let a = self.attempt(u, pose);
            latency += a.cycles;
            ops += a.ops;
            if a.detected {
                self.injector.counters_mut().detected += 1;
                self.strike(u);
                if detection && redispatches < self.policy.max_redispatches {
                    redispatches += 1;
                    self.injector.counters_mut().redispatches += 1;
                    latency += REDISPATCH_CYCLES;
                    continue;
                }
                // Budget exhausted (or no retry hardware): collision wins.
                self.injector.counters_mut().conservative_promotions += 1;
                break (true, true, a);
            }
            break (a.colliding, a.conservative, a);
        };

        let mut verdict = verdict;
        let mut deliberate = deliberate;

        // Suspicion-scored duplicate-dispatch voting: a unit accused past
        // the voting threshold (by certify failures or prior overrides)
        // has its verdict cross-checked on up to two other healthy units;
        // the majority wins, a tie resolves conservatively (collision
        // wins). A unit overruled liar_strikes times is benched until the
        // scrub loop readmits it.
        if let Some(u) = last_unit.filter(|&u| self.is_suspect(u)) {
            self.icounters.votes += 1;
            let extras: Vec<usize> = (0..self.units.len())
                .filter(|&v| v != u && !self.units[v].quarantined)
                .take(2)
                .collect();
            let mut colliding_votes = u32::from(verdict);
            let mut total = 1u32;
            for v in extras {
                let b = self.attempt(v, pose);
                latency += b.cycles;
                ops += b.ops;
                colliding_votes += u32::from(b.colliding);
                total += 1;
            }
            let majority = colliding_votes * 2 >= total;
            if majority != verdict {
                self.icounters.vote_overrides += 1;
                self.units[u].lies += 1;
                self.units[u].suspicion = self.units[u]
                    .suspicion
                    .saturating_add(self.integrity.accuse_weight);
                if self.units[u].lies >= self.integrity.liar_strikes
                    && !self.units[u].quarantined
                    && self.healthy_units() > 1
                {
                    self.bench(u);
                }
                verdict = majority;
                deliberate = true;
            }
        }

        // Voter: spot-check free verdicts against the software oracle,
        // promoting only free -> collision (conservative by construction).
        if !verdict && self.policy.mode == RecoveryMode::DetectRetryVoter {
            self.free_verdicts_seen += 1;
            if self
                .free_verdicts_seen
                .is_multiple_of(self.policy.voter_period.max(1))
            {
                if let Some(oracle) = self.oracle.as_mut() {
                    self.injector.counters_mut().oracle_checks += 1;
                    if oracle.check_pose(pose) {
                        self.injector.counters_mut().oracle_overrides += 1;
                        verdict = true;
                        deliberate = true;
                    }
                }
            }
        }

        // Classification against the clean reference.
        let c = self.injector.counters_mut();
        if verdict == clean {
            if final_attempt.faulty && !final_attempt.detected {
                c.masked += 1;
            }
        } else {
            if verdict {
                c.false_positives += 1;
            } else {
                c.false_negatives += 1;
            }
            if !deliberate {
                c.escaped += 1;
            }
        }

        CduResponse {
            colliding: verdict,
            latency: latency.max(1),
            ops,
        }
    }
}

/// Convenience wrapper: runs one SAS batch on a fault-tolerant array.
/// Plain [`run_sas`](crate::sas::run_sas) works too — the array is a
/// [`CduModel`] — but this keeps the unit counts consistent.
///
/// # Panics
///
/// Panics if `cfg.num_cdus` does not match the array's unit count.
pub fn run_sas_with_faults(
    motions: &[mp_robot::MotionDescriptor],
    mode: crate::sas::FunctionMode,
    cfg: &crate::sas::SasConfig,
    array: &mut FaultTolerantCduArray,
) -> crate::sas::SasRunResult {
    assert_eq!(
        cfg.num_cdus,
        array.unit_count(),
        "SAS CDU count must match the fault-tolerant array"
    );
    crate::sas::run_sas(motions, mode, cfg, array)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sas::{run_sas, FunctionMode, SasConfig};
    use mp_octree::{Scene, SceneConfig};
    use mp_robot::{Motion, RobotModel};
    use mp_sim::{CecduConfig, IuKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sim(seed: u64) -> CecduSim {
        CecduSim::new(
            RobotModel::jaco2(),
            Scene::random(SceneConfig::paper(), seed).octree(),
            CecduConfig::new(4, IuKind::MultiCycle),
        )
    }

    fn poses(n: usize, seed: u64) -> Vec<JointConfig> {
        let robot = RobotModel::jaco2();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| robot.sample_config(&mut rng)).collect()
    }

    #[test]
    fn fault_free_array_matches_clean_sim() {
        let s = sim(0);
        let mut array = FaultTolerantCduArray::new(
            s.clone(),
            4,
            FaultPlan::none(1),
            RecoveryPolicy::new(RecoveryMode::DetectRetry),
        );
        for pose in poses(40, 2) {
            let resp = array.query(&pose);
            assert_eq!(resp.colliding, s.check_pose(&pose).colliding);
        }
        let c = *array.counters();
        assert_eq!(c.queries, 40);
        assert_eq!(c.injected_total(), 0);
        assert_eq!(c.detected, 0);
        assert_eq!(c.escaped, 0);
        assert_eq!(c.false_negatives, 0);
        assert_eq!(c.false_positives, 0);
    }

    #[test]
    fn detection_keeps_false_negatives_at_zero() {
        for mode in [RecoveryMode::DetectRetry, RecoveryMode::DetectRetryVoter] {
            let mut array = FaultTolerantCduArray::new(
                sim(1),
                4,
                FaultPlan::uniform(0.05, 7),
                RecoveryPolicy::new(mode),
            );
            for pose in poses(120, 3) {
                let _ = array.query(&pose);
            }
            let c = *array.counters();
            assert!(c.injected_total() > 0, "campaign injected nothing");
            assert!(c.detected > 0, "nothing detected at 5% rates");
            assert_eq!(c.escaped, 0, "{mode:?} let a fault escape");
            assert_eq!(c.false_negatives, 0, "{mode:?} delivered a wrong free");
        }
    }

    #[test]
    fn no_recovery_mode_lets_faults_escape() {
        let mut array = FaultTolerantCduArray::new(
            sim(2),
            4,
            // Dropped results and corrupted verdicts are the silent
            // killers without detection hardware.
            FaultPlan::none(9)
                .with_rate(FaultKind::DroppedResult, 0.15)
                .with_rate(FaultKind::CorruptedVerdict, 0.15),
            RecoveryPolicy::new(RecoveryMode::None),
        );
        for pose in poses(200, 4) {
            let _ = array.query(&pose);
        }
        let c = *array.counters();
        assert!(c.injected_total() > 0);
        assert!(
            c.escaped > 0,
            "undetected drops/corruptions must escape: {c:?}"
        );
        assert!(c.false_negatives + c.false_positives > 0);
        assert_eq!(c.redispatches, 0, "no retry hardware in None mode");
    }

    #[test]
    fn stuck_unit_is_quarantined_but_never_the_last_one() {
        let mut array = FaultTolerantCduArray::new(
            sim(3),
            2,
            FaultPlan::none(5).with_rate(FaultKind::StuckUnit, 0.35),
            RecoveryPolicy::new(RecoveryMode::DetectRetry),
        );
        for pose in poses(150, 6) {
            let _ = array.query(&pose);
        }
        let c = *array.counters();
        assert!(c.injected(FaultKind::StuckUnit) > 0);
        assert!(array.healthy_units() >= 1, "quarantine emptied the array");
        assert!(c.quarantined <= 1, "only one of two units may be benched");
        assert_eq!(c.false_negatives, 0);
    }

    #[test]
    fn voter_spot_checks_free_verdicts() {
        let mut array = FaultTolerantCduArray::new(
            sim(4),
            4,
            FaultPlan::uniform(0.02, 3),
            RecoveryPolicy::new(RecoveryMode::DetectRetryVoter),
        );
        for pose in poses(100, 8) {
            let _ = array.query(&pose);
        }
        let c = *array.counters();
        assert!(c.oracle_checks > 0, "voter never consulted the oracle");
        assert_eq!(c.false_negatives, 0);
    }

    #[test]
    fn faulty_array_drives_sas_batches() {
        let robot = RobotModel::jaco2();
        let mut rng = StdRng::seed_from_u64(31);
        let motions: Vec<_> = (0..4)
            .map(|_| {
                Motion::new(robot.sample_config(&mut rng), robot.sample_config(&mut rng))
                    .descriptor(0.1)
            })
            .collect();
        let mut array = FaultTolerantCduArray::new(
            sim(5),
            8,
            FaultPlan::uniform(0.01, 13),
            RecoveryPolicy::new(RecoveryMode::DetectRetry),
        );
        let r = run_sas_with_faults(
            &motions,
            FunctionMode::Complete,
            &SasConfig::mcsp(8),
            &mut array,
        );
        assert!(r.motion_results.iter().all(Option::is_some));
        assert_eq!(array.counters().false_negatives, 0);
        // The generic entry point accepts the array as a CduModel too.
        let mut array2 = FaultTolerantCduArray::new(
            sim(5),
            8,
            FaultPlan::uniform(0.01, 13),
            RecoveryPolicy::new(RecoveryMode::DetectRetry),
        );
        let r2 = run_sas(
            &motions,
            FunctionMode::Complete,
            &SasConfig::mcsp(8),
            &mut array2,
        );
        assert_eq!(r.motion_results, r2.motion_results);
    }

    #[test]
    fn runs_are_deterministic_given_a_seed() {
        let run = || {
            let mut array = FaultTolerantCduArray::new(
                sim(6),
                4,
                FaultPlan::uniform(0.04, 21),
                RecoveryPolicy::new(RecoveryMode::DetectRetry),
            );
            let mut verdicts = Vec::new();
            for pose in poses(60, 9) {
                verdicts.push(array.query(&pose).colliding);
            }
            (verdicts, *array.counters())
        };
        let (va, ca) = run();
        let (vb, cb) = run();
        assert_eq!(va, vb);
        assert_eq!(ca, cb);
    }

    #[test]
    fn sdc_flips_escape_every_detection_mechanism() {
        // Detection at full strength, but the corruption is silent: the
        // escape/false-verdict counters must go nonzero — the gap the
        // plan certifier exists to close.
        let mut array = FaultTolerantCduArray::new(
            sim(8),
            4,
            FaultPlan::none(3),
            RecoveryPolicy::new(RecoveryMode::DetectRetry),
        )
        .with_sdc(SdcPlan::uniform(0.3, 41));
        for pose in poses(200, 11) {
            let _ = array.query(&pose);
        }
        let c = *array.counters();
        let ic = array.integrity_counters();
        assert!(ic.verdict_flips > 0, "no silent flips injected");
        assert_eq!(c.detected, 0, "silent flips must not trip detection");
        assert!(c.escaped > 0, "silent flips must escape");
        assert!(c.false_negatives + c.false_positives > 0);
    }

    #[test]
    fn suspect_units_get_outvoted() {
        // A single lemon lane lies on ~30% of its verdicts while its
        // peers stay honest. Once accused past the voting threshold,
        // every one of its queries is duplicate-dispatched to two honest
        // peers — the 2-of-3 majority corrects every lie it tells.
        let run = |accused: bool| {
            let mut array = FaultTolerantCduArray::new(
                sim(9),
                4,
                FaultPlan::none(4),
                RecoveryPolicy::new(RecoveryMode::DetectRetry),
            )
            .with_sdc_on_unit(SdcPlan::uniform(0.3, 17), 0)
            .with_integrity(IntegrityPolicy {
                // Keep the liar in service so the vote keeps firing.
                liar_strikes: u32::MAX,
                ..IntegrityPolicy::default()
            });
            if accused {
                array.accuse(0);
                array.accuse(0);
            }
            for pose in poses(150, 12) {
                let _ = array.query(&pose);
            }
            (*array.counters(), array.integrity_counters())
        };
        let (undefended, ic0) = run(false);
        let (voted, ic1) = run(true);
        assert_eq!(ic0.votes, 0);
        assert!(undefended.escaped > 0, "lemon lane must leak undefended");
        assert!(ic1.votes > 0, "suspects must be duplicate-dispatched");
        assert!(
            ic1.vote_overrides > 0,
            "votes must overrule corrupt verdicts"
        );
        assert_eq!(
            voted.escaped, 0,
            "honest 2-of-3 majority must correct every lie"
        );
    }

    #[test]
    fn suspicion_decays_monotonically_to_zero() {
        let mut array = FaultTolerantCduArray::new(
            sim(10),
            2,
            FaultPlan::none(5),
            RecoveryPolicy::new(RecoveryMode::DetectRetry),
        );
        for _ in 0..5 {
            array.accuse(0);
        }
        assert!(array.is_suspect(0));
        assert_eq!(array.suspicion(1), 0);
        let mut prev = array.suspicion(0);
        for _ in 0..64 {
            array.exonerate(0);
            let s = array.suspicion(0);
            assert!(s < prev || (s == 0 && prev == 0), "decay must shrink");
            prev = s;
        }
        assert_eq!(array.suspicion(0), 0, "decay must reach zero");
        assert!(!array.is_suspect(0));
    }

    #[test]
    fn persistent_liar_is_benched_and_scrub_readmits_it() {
        // One shared SDC stream lying on a quarter of verdicts, every
        // unit pre-accused: overrides accumulate until some unit crosses
        // liar_strikes and is benched.
        let mut array = FaultTolerantCduArray::new(
            sim(11),
            4,
            FaultPlan::none(6),
            RecoveryPolicy::new(RecoveryMode::DetectRetry),
        )
        .with_sdc(SdcPlan::uniform(0.35, 23))
        .with_integrity(IntegrityPolicy {
            liar_strikes: 2,
            ..IntegrityPolicy::default()
        });
        for u in 0..4 {
            array.accuse(u);
            array.accuse(u);
        }
        for pose in poses(200, 13) {
            let _ = array.query(&pose);
        }
        let benched = 4 - array.healthy_units();
        assert!(benched > 0, "persistent liars must be quarantined");

        // Scrub: known-answer probes readmit after the clean streak. The
        // SDC stream keeps lying occasionally, so a probe can reset the
        // streak — probe until readmission to show liveness, bounded to
        // prove it terminates.
        let probes = poses(400, 14);
        let mut readmitted = 0;
        for pose in &probes {
            readmitted += array.scrub_probe(pose);
            if readmitted >= benched {
                break;
            }
        }
        assert_eq!(readmitted, benched, "scrub must eventually readmit");
        assert_eq!(array.healthy_units(), 4);
        let ic = array.integrity_counters();
        assert!(ic.scrub_probes >= ic.scrub_readmits * 4);
        assert!(ic.scrub_readmits as usize >= benched);
        // Readmission is cautious: the unit comes back still under
        // voting, not fully trusted.
        assert!((0..4).any(|u| array.is_suspect(u)));
    }

    #[test]
    fn retries_cost_latency_and_energy() {
        let clean_run = || {
            let mut array = FaultTolerantCduArray::new(
                sim(7),
                4,
                FaultPlan::none(2),
                RecoveryPolicy::new(RecoveryMode::DetectRetry),
            );
            let mut cycles = 0u64;
            let mut mults = 0u64;
            for pose in poses(60, 10) {
                let r = array.query(&pose);
                cycles += r.latency;
                mults += r.ops.mults;
            }
            (cycles, mults)
        };
        let faulty_run = || {
            let mut array = FaultTolerantCduArray::new(
                sim(7),
                4,
                FaultPlan::uniform(0.08, 2),
                RecoveryPolicy::new(RecoveryMode::DetectRetry),
            );
            let mut cycles = 0u64;
            let mut mults = 0u64;
            for pose in poses(60, 10) {
                let r = array.query(&pose);
                cycles += r.latency;
                mults += r.ops.mults;
            }
            assert!(array.counters().redispatches > 0);
            (cycles, mults)
        };
        let (c0, _m0) = clean_run();
        let (c1, m1) = faulty_run();
        assert!(c1 > c0, "faulty campaign not slower: {c1} vs {c0}");
        assert!(m1 > 0);
    }
}
