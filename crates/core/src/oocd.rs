//! Cycle-level model of the OBB–octree Collision Detector (OOCD, Fig 14b).
//!
//! The OOCD traverses the environment octree for one robot-link OBB:
//!
//! 1. the Octree Traverser stores the root address in the Address Register;
//! 2. the Memory Request Generator reads the 24-bit node word from SRAM
//!    (one cycle per read) into the Node Queue;
//! 3. the Node Processing Unit issues one intersection query per occupied
//!    octant to the Intersection Unit (every cycle for the pipelined unit,
//!    when free for the multi-cycle unit);
//! 4. colliding *partially occupied* octants push their child address for
//!    further traversal; a colliding *fully occupied* octant terminates the
//!    query with `colliding = true`.

use std::cell::Cell;

use mp_geometry::cascade::CascadeConfig;
use mp_geometry::soa::HoistedCascade;
use mp_geometry::{AabbF, FxObb, Obb};
use mp_octree::{Node, Occupancy, Octree};
use mp_sim::fault::{parity24, FaultKind, SRAM_WORD_BITS};
use mp_sim::{FaultInjector, IuKind, OpCounter};

use crate::intersection_unit::{self, IU_PIPELINE_DEPTH};

thread_local! {
    // Reusable traversal stacks, taken out of the cell per query and put
    // back afterwards, like the octree's own traversal stack:
    // allocation-free in steady state, reentrancy-safe.
    static OOCD_STACK: Cell<Vec<u32>> = Cell::default();
}

/// Configuration of one OOCD.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OocdConfig {
    /// Intersection Unit design.
    pub iu: IuKind,
    /// Cascade configuration (the proposed flow by default; ablations for
    /// §7.2.1 disable the sphere filters).
    pub cascade: CascadeConfig,
}

impl OocdConfig {
    /// The proposed design with the given IU kind.
    pub fn new(iu: IuKind) -> OocdConfig {
        OocdConfig {
            iu,
            cascade: CascadeConfig::proposed(),
        }
    }
}

/// Result of one OBB–octree collision query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OocdResult {
    /// Whether the OBB touches occupied space.
    pub colliding: bool,
    /// Total cycles from request to result (13 in Fig 14b).
    pub cycles: u64,
    /// Work performed.
    pub ops: OpCounter,
}

/// Simulates one OBB–octree collision query, cycle by cycle.
///
/// # Examples
///
/// ```
/// use mp_geometry::{Obb, Vec3};
/// use mp_octree::{Scene, SceneConfig};
/// use mp_sim::IuKind;
/// use mpaccel_core::oocd::{run_oocd, OocdConfig};
///
/// let tree = Scene::random(SceneConfig::paper(), 0).octree();
/// let obb = Obb::axis_aligned(Vec3::zero(), Vec3::splat(0.05)).quantize();
/// let out = run_oocd(&tree, &obb, &OocdConfig::new(IuKind::MultiCycle));
/// assert!(!out.colliding); // scenes keep the base region clear
/// assert!(out.cycles >= 2);
/// ```
pub fn run_oocd(octree: &Octree, obb: &FxObb, cfg: &OocdConfig) -> OocdResult {
    #[cfg(feature = "telemetry")]
    let _tele_span = mp_telemetry::sampled_span("core", "oocd_query");
    let mut cycles: u64 = 1; // root address into the Address Register
    let mut ops = OpCounter::default();
    let flat = octree.flat();

    let mut stack = OOCD_STACK.with(Cell::take);
    // The traversal stack models the Address Register + Node Queue.
    stack.clear();
    stack.push(0u32);
    let mut hit = false;

    // The node entries' Q3.12 boxes are precomputed in the arena (same
    // quantize-roundtrip chain the per-octant walk derived); each lane
    // runs the hoisted cascade kernel — squared radii and SAT constants
    // derived once per link query, reused across every visited node — and
    // is committed in octant order with the unit's timing model, so
    // cycle/op totals replicate the scalar walk exactly.
    let [cx, cy, cz, hx, hy, hz] = flat.aabbs_oocd().coord_lanes();
    let mut cascade = HoistedCascade::new(obb, &cfg.cascade);

    'walk: while let Some(addr) = stack.pop() {
        // SRAM read of the 24-bit node word.
        cycles += 1;
        ops.sram_reads += 1;

        for e in flat.entries(addr) {
            let lane = cascade.outcome(cx[e], cy[e], cz[e], hx[e], hy[e], hz[e]);
            let out = intersection_unit::outcome_from_cascade(&lane, &cfg.cascade, cfg.iu);
            ops += out.ops;
            match cfg.iu {
                // The unit is busy for the whole cascade.
                IuKind::MultiCycle => cycles += out.initiation_interval as u64,
                // One issue slot per query; drain latency added below.
                IuKind::Pipelined => cycles += 1,
            }
            if out.colliding {
                if flat.is_full(e) {
                    // Terminal: report collision once this result drains.
                    hit = true;
                    break 'walk;
                }
                stack.push(flat.child(e));
            }
        }
        // The Node Queue lets the traverser prefetch the next stacked node
        // while pipelined results drain, hiding the pipeline latency
        // between nodes entirely; only the final drain (below) is exposed.
    }

    stack.clear();
    OOCD_STACK.with(|cell| cell.set(stack));

    if cfg.iu == IuKind::Pipelined {
        // Drain: for a hit, the terminal result must leave the pipeline;
        // for a miss, the last in-flight result must before the traverser
        // can report "no collision".
        cycles += (IU_PIPELINE_DEPTH - 1) as u64;
    }

    OocdResult {
        colliding: hit,
        cycles,
        ops,
    }
}

/// Software cross-check: the same traversal evaluated functionally (no
/// timing), used to validate [`run_oocd`] in tests and debug assertions.
pub fn reference_outcome(octree: &Octree, obb: &FxObb, cascade: &CascadeConfig) -> bool {
    // Note this quantizes the *pure* f32 octant chain per query box — a
    // deliberately independent derivation from the OOCD's level-by-level
    // quantize-roundtrip chain, which is what makes it a cross-check.
    let obb_q = obb.to_f32().quantize();
    octree.collides_with(|aabb| {
        mp_geometry::cascade::cascaded_obb_aabb(&obb_q, &aabb.quantize(), cascade).colliding
    })
}

/// Convenience: quantizes an `f32` OBB and runs the query.
pub fn run_oocd_f32(octree: &Octree, obb: &Obb<f32>, cfg: &OocdConfig) -> OocdResult {
    run_oocd(octree, &obb.quantize(), cfg)
}

/// Outcome of one fault-injected OBB–octree query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultyOocdOutcome {
    /// The (possibly corrupted) query result. When a fault was detected,
    /// `result.colliding` holds the unit's conservative in-place fallback
    /// ("collision wins"); callers with a retry budget should re-dispatch
    /// instead of trusting it.
    pub result: OocdResult,
    /// SRAM words corrupted during this traversal.
    pub sram_upsets: u32,
    /// An SRAM parity check caught an upset (only when parity checking
    /// was enabled).
    pub parity_detected: bool,
    /// A structural check fired: undecodable node word, out-of-range node
    /// or child address, or the traversal read cap. These checks are part
    /// of the decoder/traverser and stay active even with detection off.
    pub structural_detected: bool,
}

impl FaultyOocdOutcome {
    /// Whether any detection mechanism fired.
    pub fn detected(&self) -> bool {
        self.parity_detected || self.structural_detected
    }
}

/// [`run_oocd`] with SRAM fault injection (Fig 14b datapath under upset).
///
/// Each node word read from SRAM is an injection opportunity for
/// [`FaultKind::SramBitFlip`]: the packed 24-bit word (plus its parity
/// bit) suffers a single-bit upset *before* `Node::unpack`. With
/// `parity_checking` the stored even parity catches every single-bit
/// upset and the unit aborts (detected). Without it, the corrupted word
/// is decoded: reserved occupancy patterns surface as decode errors,
/// corrupted child pointers as out-of-range addresses or traversal loops
/// (bounded by a read cap of `2 * node_count + 8`) — all structural
/// detections resolved conservatively as collisions. Upsets that survive
/// decoding silently alter the verdict; the recovery layer classifies
/// those as masked or escaped against a clean reference run.
///
/// Nodes whose word cannot be packed (octree beyond the 256-node hardware
/// budget) are read fault-free: there is no hardware word to corrupt.
pub fn run_oocd_with_faults(
    octree: &Octree,
    obb: &FxObb,
    cfg: &OocdConfig,
    inj: &mut FaultInjector,
    parity_checking: bool,
) -> FaultyOocdOutcome {
    let mut cycles: u64 = 1; // root address into the Address Register
    let mut ops = OpCounter::default();
    let mut out = FaultyOocdOutcome::default();
    let node_count = octree.node_count() as u32;
    let read_cap = 2 * node_count as u64 + 8;
    let flat = octree.flat();

    // Each stack entry carries the node's OOCD-chain parent box plus a
    // `clean` flag: a node reached through uncorrupted words along the
    // builder's own chain can serve its precomputed arena boxes (the fast,
    // batched path of `run_oocd`); once an upset corrupts a word, every box
    // downstream is derived from the corrupted path on the fly, exactly as
    // the hardware would.
    let mut stack: Vec<(u32, AabbF, bool)> = vec![(0, octree.root_aabb(), true)];
    let mut cascade = HoistedCascade::new(obb, &cfg.cascade);

    let detect = |mut o: FaultyOocdOutcome, cycles: u64, ops: OpCounter| {
        // Conservative in-unit fallback: report the octant occupied.
        o.result = OocdResult {
            colliding: true,
            cycles,
            ops,
        };
        o
    };

    while let Some((addr, node_aabb, clean)) = stack.pop() {
        cycles += 1;
        ops.sram_reads += 1;

        // Structural check: the Memory Request Generator rejects
        // addresses beyond the octree's SRAM extent (corrupted pointer).
        if addr >= node_count {
            out.structural_detected = true;
            return detect(out, cycles, ops);
        }
        // Structural check: a traversal visiting far more words than the
        // SRAM holds is cycling through corrupted pointers.
        if ops.sram_reads > read_cap {
            out.structural_detected = true;
            return detect(out, cycles, ops);
        }

        let stored = octree.node(addr);
        let mut corrupted = false;
        let node = match stored.pack() {
            Err(_) => *stored, // no 24-bit word to corrupt
            Ok(word) => {
                let (word, stored_parity) = if inj.fires(FaultKind::SramBitFlip) {
                    out.sram_upsets += 1;
                    corrupted = true;
                    // The stored parity bit covered the original word; the
                    // upset flipped either a data bit or the parity bit.
                    let upset = inj.corrupt_sram_word(word);
                    let parity = parity24(word) ^ u32::from(upset.flipped_bit == SRAM_WORD_BITS);
                    (upset.word, parity)
                } else {
                    (word, parity24(word))
                };
                if parity_checking && parity24(word) != stored_parity {
                    out.parity_detected = true;
                    return detect(out, cycles, ops);
                }
                match Node::unpack(word) {
                    Ok(n) => n,
                    Err(_) => {
                        // Reserved occupancy pattern: the decoder cannot
                        // proceed (structural detection, even without
                        // parity checking).
                        out.structural_detected = true;
                        return detect(out, cycles, ops);
                    }
                }
            }
        };

        if clean && !corrupted {
            // Decoded word equals the stored node and the parent box is on
            // the builder's chain: the arena's precomputed Q3.12 boxes are
            // exactly what the per-octant walk would derive. Batch them.
            let [cx, cy, cz, hx, hy, hz] = flat.aabbs_oocd().coord_lanes();
            for e in flat.entries(addr) {
                let lane = cascade.outcome(cx[e], cy[e], cz[e], hx[e], hy[e], hz[e]);
                let iu_out = intersection_unit::outcome_from_cascade(&lane, &cfg.cascade, cfg.iu);
                ops += iu_out.ops;
                match cfg.iu {
                    IuKind::MultiCycle => cycles += iu_out.initiation_interval as u64,
                    IuKind::Pipelined => cycles += 1,
                }
                if iu_out.colliding {
                    if flat.is_full(e) {
                        if cfg.iu == IuKind::Pipelined {
                            cycles += (IU_PIPELINE_DEPTH - 1) as u64;
                        }
                        out.result = OocdResult {
                            colliding: true,
                            cycles,
                            ops,
                        };
                        return out;
                    }
                    let child = flat.child(e);
                    stack.push((child, flat.node_aabb_oocd(child), true));
                }
            }
            continue;
        }

        for octant in 0..8 {
            let occ = node.occupancy(octant);
            if !occ.is_occupied() {
                continue;
            }
            let oct_aabb = Octree::octant_aabb(&node_aabb, octant).quantize();
            let iu_out = intersection_unit::execute(obb, &oct_aabb, &cfg.cascade, cfg.iu);
            ops += iu_out.ops;
            match cfg.iu {
                IuKind::MultiCycle => cycles += iu_out.initiation_interval as u64,
                IuKind::Pipelined => cycles += 1,
            }
            if iu_out.colliding {
                match occ {
                    Occupancy::Full => {
                        if cfg.iu == IuKind::Pipelined {
                            cycles += (IU_PIPELINE_DEPTH - 1) as u64;
                        }
                        out.result = OocdResult {
                            colliding: true,
                            cycles,
                            ops,
                        };
                        return out;
                    }
                    Occupancy::Partial => {
                        // A corrupted word can report Partial where the
                        // real node had no child; the decoded child
                        // address is pushed regardless (hardware follows
                        // the bits) and the address checks above catch
                        // out-of-range pointers.
                        if let Some(child) = node.child_address(octant) {
                            stack.push((child, oct_aabb.to_f32(), false));
                        }
                    }
                    Occupancy::Empty => unreachable!(),
                }
            }
        }
    }

    if cfg.iu == IuKind::Pipelined {
        cycles += (IU_PIPELINE_DEPTH - 1) as u64;
    }

    out.result = OocdResult {
        colliding: false,
        cycles,
        ops,
    };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_geometry::{Aabb, Vec3};
    use mp_octree::{Scene, SceneConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_obb(rng: &mut StdRng) -> Obb<f32> {
        let c = Vec3::new(
            rng.gen_range(-0.9..0.9),
            rng.gen_range(-0.9..0.9),
            rng.gen_range(-0.9..0.9),
        );
        let h = Vec3::new(
            rng.gen_range(0.02..0.3),
            rng.gen_range(0.02..0.12),
            rng.gen_range(0.02..0.12),
        );
        let r = mp_geometry::Mat3::rotation_z(rng.gen_range(-3.0..3.0))
            * mp_geometry::Mat3::rotation_y(rng.gen_range(-1.5..1.5));
        Obb::new(c, h, r)
    }

    #[test]
    fn agrees_with_reference_traversal() {
        let mut rng = StdRng::seed_from_u64(3);
        for seed in 0..5 {
            let tree = Scene::random(SceneConfig::paper(), seed).octree();
            for _ in 0..60 {
                let obb = random_obb(&mut rng).quantize();
                for iu in [IuKind::MultiCycle, IuKind::Pipelined] {
                    let cfg = OocdConfig::new(iu);
                    let got = run_oocd(&tree, &obb, &cfg);
                    let want = reference_outcome(&tree, &obb, &cfg.cascade);
                    assert_eq!(got.colliding, want, "seed {seed} iu {iu:?}");
                }
            }
        }
    }

    #[test]
    fn empty_tree_costs_root_visit_only() {
        let tree = Octree::build(&[], 4);
        let obb = Obb::axis_aligned(Vec3::zero(), Vec3::splat(0.1)).quantize();
        let out = run_oocd(&tree, &obb, &OocdConfig::new(IuKind::MultiCycle));
        assert!(!out.colliding);
        assert_eq!(out.ops.sram_reads, 1);
        assert_eq!(out.ops.box_tests, 0); // nothing occupied
        assert_eq!(out.cycles, 2); // address + node read
    }

    #[test]
    fn typical_queries_stay_under_40_cycles() {
        // §7.2.2: "OOCD ... performs collision detection between
        // OBB-environment in < 40 cycles with 0.75KB on-chip SRAM."
        let mut rng = StdRng::seed_from_u64(9);
        let mut total = 0u64;
        let mut n = 0u64;
        for seed in 0..10 {
            let tree = Scene::random(SceneConfig::paper(), seed).octree();
            assert!(tree.storage_bytes() <= 768);
            for _ in 0..100 {
                let obb = random_obb(&mut rng).quantize();
                let out = run_oocd(&tree, &obb, &OocdConfig::new(IuKind::MultiCycle));
                total += out.cycles;
                n += 1;
            }
        }
        let avg = total as f64 / n as f64;
        assert!(avg < 40.0, "average OOCD latency {avg} cycles");
    }

    #[test]
    fn pipelined_is_no_slower_on_busy_nodes() {
        // A big OBB near obstacles issues many queries per node; the
        // pipelined unit should win or tie on average.
        let tree = Scene::random(SceneConfig::with_obstacles(9), 2).octree();
        let mut rng = StdRng::seed_from_u64(4);
        let mut mc = 0u64;
        let mut p = 0u64;
        for _ in 0..200 {
            let obb = random_obb(&mut rng).quantize();
            mc += run_oocd(&tree, &obb, &OocdConfig::new(IuKind::MultiCycle)).cycles;
            p += run_oocd(&tree, &obb, &OocdConfig::new(IuKind::Pipelined)).cycles;
        }
        assert!(p <= mc, "pipelined {p} vs multi-cycle {mc}");
    }

    #[test]
    fn colliding_query_early_exits() {
        // OBB sitting inside an obstacle: should terminate quickly.
        let obs = Aabb::new(Vec3::new(0.5, 0.5, 0.5), Vec3::splat(0.1));
        let tree = Octree::build(&[obs], 4);
        let obb = Obb::axis_aligned(obs.center, Vec3::splat(0.02)).quantize();
        let out = run_oocd(&tree, &obb, &OocdConfig::new(IuKind::MultiCycle));
        assert!(out.colliding);
        assert!(out.cycles < 30, "early exit took {} cycles", out.cycles);
    }

    #[test]
    fn fault_free_injector_matches_plain_run() {
        use mp_sim::{FaultInjector, FaultPlan};
        let mut rng = StdRng::seed_from_u64(11);
        let tree = Scene::random(SceneConfig::paper(), 1).octree();
        let mut inj = FaultInjector::new(FaultPlan::none(0));
        for _ in 0..50 {
            let obb = random_obb(&mut rng).quantize();
            let cfg = OocdConfig::new(IuKind::MultiCycle);
            let plain = run_oocd(&tree, &obb, &cfg);
            let faulty = run_oocd_with_faults(&tree, &obb, &cfg, &mut inj, true);
            assert_eq!(faulty.result, plain);
            assert!(!faulty.detected());
            assert_eq!(faulty.sram_upsets, 0);
        }
        assert_eq!(inj.counters().injected_total(), 0);
    }

    #[test]
    fn parity_checking_detects_every_upset() {
        use mp_sim::fault::FaultKind;
        use mp_sim::{FaultInjector, FaultPlan};
        let mut rng = StdRng::seed_from_u64(12);
        let tree = Scene::random(SceneConfig::paper(), 2).octree();
        let plan = FaultPlan::none(4).with_rate(FaultKind::SramBitFlip, 1.0);
        let mut inj = FaultInjector::new(plan);
        for _ in 0..50 {
            let obb = random_obb(&mut rng).quantize();
            let cfg = OocdConfig::new(IuKind::MultiCycle);
            let f = run_oocd_with_faults(&tree, &obb, &cfg, &mut inj, true);
            // Every word read is upset, so the very first read trips
            // parity and the unit answers conservatively.
            assert!(f.parity_detected);
            assert!(f.result.colliding);
            assert_eq!(f.sram_upsets, 1);
        }
        assert_eq!(inj.counters().injected(FaultKind::SramBitFlip), 50);
    }

    #[test]
    fn unchecked_upsets_never_hang_or_panic() {
        use mp_sim::fault::FaultKind;
        use mp_sim::{FaultInjector, FaultPlan};
        let mut rng = StdRng::seed_from_u64(13);
        let tree = Scene::random(SceneConfig::paper(), 3).octree();
        let cap = 2 * tree.node_count() as u64 + 8;
        let plan = FaultPlan::none(6).with_rate(FaultKind::SramBitFlip, 0.5);
        let mut inj = FaultInjector::new(plan);
        let mut structural = 0;
        for _ in 0..300 {
            let obb = random_obb(&mut rng).quantize();
            let cfg = OocdConfig::new(IuKind::MultiCycle);
            // Detection off: corrupted words are decoded and followed.
            let f = run_oocd_with_faults(&tree, &obb, &cfg, &mut inj, false);
            assert!(!f.parity_detected);
            assert!(f.result.ops.sram_reads <= cap + 1, "read cap breached");
            if f.structural_detected {
                structural += 1;
                assert!(f.result.colliding, "structural detection is conservative");
            }
        }
        assert!(
            structural > 0,
            "50% upset rate never tripped a structural check"
        );
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        use mp_sim::{FaultInjector, FaultPlan};
        let tree = Scene::random(SceneConfig::paper(), 4).octree();
        let run = || {
            let mut rng = StdRng::seed_from_u64(14);
            let mut inj = FaultInjector::new(FaultPlan::uniform(0.3, 8));
            let mut outs = Vec::new();
            for _ in 0..40 {
                let obb = random_obb(&mut rng).quantize();
                let cfg = OocdConfig::new(IuKind::Pipelined);
                outs.push(run_oocd_with_faults(&tree, &obb, &cfg, &mut inj, false));
            }
            (outs, *inj.counters())
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(a, b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn mults_track_cascade_filters() {
        // Far-away OBB: every issued test should cost only the 3-mult
        // bounding sphere filter at the root.
        let obs = Aabb::new(Vec3::new(0.7, 0.7, 0.7), Vec3::splat(0.05));
        let tree = Octree::build(&[obs], 4);
        let obb = Obb::axis_aligned(Vec3::new(-0.7, -0.7, -0.7), Vec3::splat(0.03)).quantize();
        let out = run_oocd(&tree, &obb, &OocdConfig::new(IuKind::MultiCycle));
        assert!(!out.colliding);
        assert_eq!(out.ops.mults, 3 * out.ops.box_tests);
    }
}
