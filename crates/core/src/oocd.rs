//! Cycle-level model of the OBB–octree Collision Detector (OOCD, Fig 14b).
//!
//! The OOCD traverses the environment octree for one robot-link OBB:
//!
//! 1. the Octree Traverser stores the root address in the Address Register;
//! 2. the Memory Request Generator reads the 24-bit node word from SRAM
//!    (one cycle per read) into the Node Queue;
//! 3. the Node Processing Unit issues one intersection query per occupied
//!    octant to the Intersection Unit (every cycle for the pipelined unit,
//!    when free for the multi-cycle unit);
//! 4. colliding *partially occupied* octants push their child address for
//!    further traversal; a colliding *fully occupied* octant terminates the
//!    query with `colliding = true`.

use mp_geometry::cascade::CascadeConfig;
use mp_geometry::{FxObb, Obb};
use mp_octree::{Occupancy, Octree};
use mp_sim::{IuKind, OpCounter};

use crate::intersection_unit::{self, IU_PIPELINE_DEPTH};

/// Configuration of one OOCD.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OocdConfig {
    /// Intersection Unit design.
    pub iu: IuKind,
    /// Cascade configuration (the proposed flow by default; ablations for
    /// §7.2.1 disable the sphere filters).
    pub cascade: CascadeConfig,
}

impl OocdConfig {
    /// The proposed design with the given IU kind.
    pub fn new(iu: IuKind) -> OocdConfig {
        OocdConfig {
            iu,
            cascade: CascadeConfig::proposed(),
        }
    }
}

/// Result of one OBB–octree collision query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OocdResult {
    /// Whether the OBB touches occupied space.
    pub colliding: bool,
    /// Total cycles from request to result (13 in Fig 14b).
    pub cycles: u64,
    /// Work performed.
    pub ops: OpCounter,
}

/// Simulates one OBB–octree collision query, cycle by cycle.
///
/// # Examples
///
/// ```
/// use mp_geometry::{Obb, Vec3};
/// use mp_octree::{Scene, SceneConfig};
/// use mp_sim::IuKind;
/// use mpaccel_core::oocd::{run_oocd, OocdConfig};
///
/// let tree = Scene::random(SceneConfig::paper(), 0).octree();
/// let obb = Obb::axis_aligned(Vec3::zero(), Vec3::splat(0.05)).quantize();
/// let out = run_oocd(&tree, &obb, &OocdConfig::new(IuKind::MultiCycle));
/// assert!(!out.colliding); // scenes keep the base region clear
/// assert!(out.cycles >= 2);
/// ```
pub fn run_oocd(octree: &Octree, obb: &FxObb, cfg: &OocdConfig) -> OocdResult {
    let mut cycles: u64 = 1; // root address into the Address Register
    let mut ops = OpCounter::default();

    // The traversal stack models the Address Register + Node Queue.
    let mut stack: Vec<(u32, mp_geometry::AabbF)> = vec![(0, octree.root_aabb())];

    while let Some((addr, node_aabb)) = stack.pop() {
        // SRAM read of the 24-bit node word.
        cycles += 1;
        ops.sram_reads += 1;

        let node = octree.node(addr);
        let mut issued: u64 = 0;
        for octant in 0..8 {
            let occ = node.occupancy(octant);
            if !occ.is_occupied() {
                continue;
            }
            let oct_aabb = Octree::octant_aabb(&node_aabb, octant).quantize();
            let out = intersection_unit::execute(obb, &oct_aabb, &cfg.cascade, cfg.iu);
            ops += out.ops;
            issued += 1;
            match cfg.iu {
                IuKind::MultiCycle => {
                    // The unit is busy for the whole cascade.
                    cycles += out.initiation_interval as u64;
                }
                IuKind::Pipelined => {
                    // One issue slot per query; drain latency added below.
                    cycles += 1;
                }
            }
            let colliding = out.colliding;
            if colliding {
                match occ {
                    Occupancy::Full => {
                        // Terminal: report collision once this result drains.
                        if cfg.iu == IuKind::Pipelined {
                            cycles += (IU_PIPELINE_DEPTH - 1) as u64;
                        }
                        return OocdResult {
                            colliding: true,
                            cycles,
                            ops,
                        };
                    }
                    Occupancy::Partial => {
                        let child = node
                            .child_address(octant)
                            .expect("partial octant must have a child");
                        stack.push((child, oct_aabb.to_f32()));
                    }
                    Occupancy::Empty => unreachable!(),
                }
            }
        }
        // The Node Queue lets the traverser prefetch the next stacked node
        // while pipelined results drain, hiding the pipeline latency
        // between nodes entirely; only the final drain (below) is exposed.
        let _ = issued;
    }

    if cfg.iu == IuKind::Pipelined {
        // Final drain: the last in-flight result must leave the pipeline
        // before the traverser can report "no collision".
        cycles += (IU_PIPELINE_DEPTH - 1) as u64;
    }

    OocdResult {
        colliding: false,
        cycles,
        ops,
    }
}

/// Software cross-check: the same traversal evaluated functionally (no
/// timing), used to validate [`run_oocd`] in tests and debug assertions.
pub fn reference_outcome(octree: &Octree, obb: &FxObb, cascade: &CascadeConfig) -> bool {
    let obb_f = obb.to_f32();
    octree.collides_with(|aabb| {
        mp_geometry::cascade::cascaded_obb_aabb(&obb_f.quantize(), &aabb.quantize(), cascade)
            .colliding
    })
}

/// Convenience: quantizes an `f32` OBB and runs the query.
pub fn run_oocd_f32(octree: &Octree, obb: &Obb<f32>, cfg: &OocdConfig) -> OocdResult {
    run_oocd(octree, &obb.quantize(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_geometry::{Aabb, Vec3};
    use mp_octree::{Scene, SceneConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_obb(rng: &mut StdRng) -> Obb<f32> {
        let c = Vec3::new(
            rng.gen_range(-0.9..0.9),
            rng.gen_range(-0.9..0.9),
            rng.gen_range(-0.9..0.9),
        );
        let h = Vec3::new(
            rng.gen_range(0.02..0.3),
            rng.gen_range(0.02..0.12),
            rng.gen_range(0.02..0.12),
        );
        let r = mp_geometry::Mat3::rotation_z(rng.gen_range(-3.0..3.0))
            * mp_geometry::Mat3::rotation_y(rng.gen_range(-1.5..1.5));
        Obb::new(c, h, r)
    }

    #[test]
    fn agrees_with_reference_traversal() {
        let mut rng = StdRng::seed_from_u64(3);
        for seed in 0..5 {
            let tree = Scene::random(SceneConfig::paper(), seed).octree();
            for _ in 0..60 {
                let obb = random_obb(&mut rng).quantize();
                for iu in [IuKind::MultiCycle, IuKind::Pipelined] {
                    let cfg = OocdConfig::new(iu);
                    let got = run_oocd(&tree, &obb, &cfg);
                    let want = reference_outcome(&tree, &obb, &cfg.cascade);
                    assert_eq!(got.colliding, want, "seed {seed} iu {iu:?}");
                }
            }
        }
    }

    #[test]
    fn empty_tree_costs_root_visit_only() {
        let tree = Octree::build(&[], 4);
        let obb = Obb::axis_aligned(Vec3::zero(), Vec3::splat(0.1)).quantize();
        let out = run_oocd(&tree, &obb, &OocdConfig::new(IuKind::MultiCycle));
        assert!(!out.colliding);
        assert_eq!(out.ops.sram_reads, 1);
        assert_eq!(out.ops.box_tests, 0); // nothing occupied
        assert_eq!(out.cycles, 2); // address + node read
    }

    #[test]
    fn typical_queries_stay_under_40_cycles() {
        // §7.2.2: "OOCD ... performs collision detection between
        // OBB-environment in < 40 cycles with 0.75KB on-chip SRAM."
        let mut rng = StdRng::seed_from_u64(9);
        let mut total = 0u64;
        let mut n = 0u64;
        for seed in 0..10 {
            let tree = Scene::random(SceneConfig::paper(), seed).octree();
            assert!(tree.storage_bytes() <= 768);
            for _ in 0..100 {
                let obb = random_obb(&mut rng).quantize();
                let out = run_oocd(&tree, &obb, &OocdConfig::new(IuKind::MultiCycle));
                total += out.cycles;
                n += 1;
            }
        }
        let avg = total as f64 / n as f64;
        assert!(avg < 40.0, "average OOCD latency {avg} cycles");
    }

    #[test]
    fn pipelined_is_no_slower_on_busy_nodes() {
        // A big OBB near obstacles issues many queries per node; the
        // pipelined unit should win or tie on average.
        let tree = Scene::random(SceneConfig::with_obstacles(9), 2).octree();
        let mut rng = StdRng::seed_from_u64(4);
        let mut mc = 0u64;
        let mut p = 0u64;
        for _ in 0..200 {
            let obb = random_obb(&mut rng).quantize();
            mc += run_oocd(&tree, &obb, &OocdConfig::new(IuKind::MultiCycle)).cycles;
            p += run_oocd(&tree, &obb, &OocdConfig::new(IuKind::Pipelined)).cycles;
        }
        assert!(p <= mc, "pipelined {p} vs multi-cycle {mc}");
    }

    #[test]
    fn colliding_query_early_exits() {
        // OBB sitting inside an obstacle: should terminate quickly.
        let obs = Aabb::new(Vec3::new(0.5, 0.5, 0.5), Vec3::splat(0.1));
        let tree = Octree::build(&[obs], 4);
        let obb = Obb::axis_aligned(obs.center, Vec3::splat(0.02)).quantize();
        let out = run_oocd(&tree, &obb, &OocdConfig::new(IuKind::MultiCycle));
        assert!(out.colliding);
        assert!(out.cycles < 30, "early exit took {} cycles", out.cycles);
    }

    #[test]
    fn mults_track_cascade_filters() {
        // Far-away OBB: every issued test should cost only the 3-mult
        // bounding sphere filter at the root.
        let obs = Aabb::new(Vec3::new(0.7, 0.7, 0.7), Vec3::splat(0.05));
        let tree = Octree::build(&[obs], 4);
        let obb = Obb::axis_aligned(Vec3::new(-0.7, -0.7, -0.7), Vec3::splat(0.03)).quantize();
        let out = run_oocd(&tree, &obb, &OocdConfig::new(IuKind::MultiCycle));
        assert!(!out.colliding);
        assert_eq!(out.ops.mults, 3 * out.ops.box_tests);
    }
}
