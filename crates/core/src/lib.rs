//! The MPAccel accelerator — the primary contribution of *Energy-Efficient
//! Realtime Motion Planning* (ISCA '23), as cycle-level simulation models.
//!
//! MPAccel improves the *work efficiency* (and therefore energy) of
//! parallel collision detection in sampling-based motion planning:
//!
//! * [`sas`] — the **Spatially Aware Scheduler** exploits coarse-grained
//!   (inter-query) parallelism by batching spatially distant poses (§3), in
//!   three function modes (§5.1);
//! * [`cecdu`] — the **Cascaded Early-exit Collision Detection Unit**
//!   exploits fine-grained (intra-query) parallelism while filtering easy
//!   far-apart/deep-overlap cases with sphere tests (§4);
//! * [`oocd`] — the OBB–octree Collision Detector each CECDU instantiates
//!   1 or 4 of (Fig 14b);
//! * [`intersection_unit`] — the staged separating-axis datapath (Fig 10),
//!   in multi-cycle and pipelined variants;
//! * [`mpaccel`] — the full system of Fig 11 (controller, DNN accelerator,
//!   bus, SAS, CECDU array) replaying planner [`trace`]s;
//! * [`fault`] — fault injection across the stack (SRAM upsets, stuck/slow
//!   units, dropped/corrupted results, saturation) with detection,
//!   bounded re-dispatch, quarantine, and a conservative oracle voter;
//! * [`pool`] — per-instance busy/quarantine bookkeeping for a *pool* of
//!   MPAccel instances serving a multi-tenant planning service
//!   (`mp-service`).
//!
//! All models are validated against the software oracle in `mp-collision`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cecdu;
pub mod fault;
pub mod intersection_unit;
pub mod mpaccel;
pub mod oocd;
pub mod pool;
pub mod sas;
pub mod sram;
pub mod trace;

pub use cecdu::{CecduChecker, CecduResult, CecduSim};
pub use fault::{run_sas_with_faults, FaultTolerantCduArray, RecoveryMode, RecoveryPolicy};
pub use mpaccel::{MpAccelSystem, RunReport, SystemConfig};
pub use oocd::{run_oocd, OocdConfig, OocdResult};
pub use pool::{AcceleratorPool, InstanceStats};
pub use sas::{run_sas, FunctionMode, IntraPolicy, SasConfig, SasRunResult};
pub use sram::{sram_budget, SramBudget};
pub use trace::{PlannerTrace, TraceEvent};
