//! Property-based tests of the SAS scheduler against a scripted mock CDU:
//! scheduling policy must never change *verdicts*, only cost and order.

use mp_robot::{JointConfig, Motion, MotionDescriptor};
use mp_sim::OpCounter;
use mpaccel_core::sas::{
    run_sas, CduModel, CduResponse, FunctionMode, IntraPolicy, SasConfig, SasOutcome,
};
use proptest::prelude::*;

/// A deterministic mock: pose `x`-coordinate ≥ threshold collides; latency
/// is scripted per query.
struct MockCdu {
    threshold: f32,
    latency: u64,
}

impl CduModel for MockCdu {
    fn query(&mut self, pose: &JointConfig) -> CduResponse {
        CduResponse {
            colliding: pose[0] >= self.threshold,
            latency: self.latency,
            ops: OpCounter {
                cd_queries: 1,
                ..OpCounter::default()
            },
        }
    }
}

/// Builds motions along joint 0 from `start` to `end`; a motion collides
/// iff it crosses the threshold.
fn motion(start: f32, end: f32, poses: usize) -> MotionDescriptor {
    let m = Motion::new(
        JointConfig::new(vec![start, 0.0]),
        JointConfig::new(vec![end, 0.0]),
    );
    let n = poses.max(2);
    MotionDescriptor {
        start: m.pose(0, n),
        delta: JointConfig::new(vec![(end - start) / (n - 1) as f32, 0.0]),
        count: n,
    }
}

fn any_motions() -> impl Strategy<Value = Vec<MotionDescriptor>> {
    prop::collection::vec(
        (-1.0f32..1.0, -1.0f32..1.0, 2usize..40).prop_map(|(a, b, n)| motion(a, b, n)),
        1..10,
    )
}

fn any_config() -> impl Strategy<Value = SasConfig> {
    (
        prop_oneof![
            Just(IntraPolicy::InOrder),
            Just(IntraPolicy::CoarseStep { step: 8 }),
            Just(IntraPolicy::CoarseStep { step: 3 }),
            Just(IntraPolicy::BinaryRecursive),
            Just(IntraPolicy::Random { seed: 9 }),
        ],
        any::<bool>(),
        1usize..6,
        1usize..24,
        any::<bool>(),
    )
        .prop_map(|(intra, inter, group, cdus, ideal)| {
            let mut cfg = SasConfig {
                intra,
                inter_motion: inter,
                group_size: group * 4,
                num_cdus: cdus,
                dispatch_per_cycle: 1,
                max_outstanding_per_motion: usize::MAX,
            };
            if ideal {
                cfg = cfg.idealized();
            }
            cfg
        })
}

/// Ground truth: does motion `m` contain a pose with x >= threshold?
fn truth(m: &MotionDescriptor, threshold: f32) -> bool {
    (0..m.count).any(|i| m.pose(i)[0] >= threshold)
}

#[test]
fn very_long_motion_schedules_every_pose_once() {
    // A 5000-pose motion (finely discretized long sweep) in Complete mode:
    // every pose is visited exactly once under MCSP.
    let m = motion(-1.0, 1.0, 5000);
    let mut cdu = MockCdu {
        threshold: 2.0, // never collides
        latency: 4,
    };
    let r = run_sas(
        std::slice::from_ref(&m),
        FunctionMode::Complete,
        &SasConfig::mcsp(16),
        &mut cdu,
    );
    assert_eq!(r.queries, 5000);
    assert_eq!(r.motion_results[0], Some(false));
    // Dispatch-limited: at 1 query/cycle the run needs >= 5000 cycles.
    assert!(r.cycles >= 5000);
    assert!(r.cycles < 5100, "excessive overhead: {}", r.cycles);
}

#[test]
fn more_cdus_than_poses_is_harmless() {
    let m = motion(0.0, 0.1, 3);
    let mut cdu = MockCdu {
        threshold: 2.0,
        latency: 2,
    };
    let r = run_sas(
        std::slice::from_ref(&m),
        FunctionMode::Complete,
        &SasConfig::mcsp(64),
        &mut cdu,
    );
    assert_eq!(r.queries, 3);
    assert_eq!(r.motion_results[0], Some(false));
}

#[test]
fn group_size_larger_than_batch_is_harmless() {
    let motions: Vec<_> = (0..3).map(|i| motion(i as f32 * 0.1, 0.5, 10)).collect();
    let mut cdu = MockCdu {
        threshold: 2.0,
        latency: 1,
    };
    let cfg = SasConfig::mcsp(8).with_group_size(1000);
    let r = run_sas(&motions, FunctionMode::Complete, &cfg, &mut cdu);
    assert!(r.motion_results.iter().all(|v| *v == Some(false)));
}

#[test]
fn immediate_collision_at_first_pose_is_cheap() {
    // Every motion collides at pose 0: feasibility mode should resolve in
    // a handful of cycles even with slow CDUs.
    let motions: Vec<_> = (0..8).map(|_| motion(0.9, 1.0, 100)).collect();
    let mut cdu = MockCdu {
        threshold: 0.5,
        latency: 10,
    };
    let r = run_sas(
        &motions,
        FunctionMode::Feasibility,
        &SasConfig::mcsp(8),
        &mut cdu,
    );
    assert!(matches!(r.outcome, SasOutcome::CollisionFound(_)));
    assert!(
        r.queries <= 16,
        "{} queries for an immediate hit",
        r.queries
    );
    assert!(r.cycles <= 40, "{} cycles for an immediate hit", r.cycles);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Complete mode: every motion's verdict equals ground truth under any
    /// policy, CDU count, latency, and group size.
    #[test]
    fn complete_mode_verdicts_invariant(
        motions in any_motions(),
        cfg in any_config(),
        threshold in -0.5f32..0.9,
        latency in 1u64..30,
    ) {
        let mut cdu = MockCdu { threshold, latency };
        let r = run_sas(&motions, FunctionMode::Complete, &cfg, &mut cdu);
        prop_assert_eq!(r.outcome, SasOutcome::Completed);
        for (i, m) in motions.iter().enumerate() {
            prop_assert_eq!(r.motion_results[i], Some(truth(m, threshold)),
                "motion {} misverdicted under {:?}", i, cfg);
        }
        // Work is bounded by the pose population.
        let max: u64 = motions.iter().map(|m| m.count as u64).sum();
        prop_assert!(r.queries <= max);
        prop_assert!(r.cycles >= 1);
    }

    /// Feasibility mode agrees with ground truth regardless of scheduling.
    #[test]
    fn feasibility_mode_invariant(
        motions in any_motions(),
        cfg in any_config(),
        threshold in -0.5f32..0.9,
        latency in 1u64..20,
    ) {
        let mut cdu = MockCdu { threshold, latency };
        let r = run_sas(&motions, FunctionMode::Feasibility, &cfg, &mut cdu);
        let any_collision = motions.iter().any(|m| truth(m, threshold));
        match r.outcome {
            SasOutcome::CollisionFound(i) => {
                prop_assert!(any_collision);
                prop_assert!(truth(&motions[i], threshold));
            }
            SasOutcome::AllFree => prop_assert!(!any_collision),
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    /// Connectivity mode finds a free motion iff one exists.
    #[test]
    fn connectivity_mode_invariant(
        motions in any_motions(),
        cfg in any_config(),
        threshold in -0.5f32..0.9,
        latency in 1u64..20,
    ) {
        let mut cdu = MockCdu { threshold, latency };
        let r = run_sas(&motions, FunctionMode::Connectivity, &cfg, &mut cdu);
        let any_free = motions.iter().any(|m| !truth(m, threshold));
        match r.outcome {
            SasOutcome::FreeMotionFound(i) => {
                prop_assert!(any_free);
                prop_assert!(!truth(&motions[i], threshold));
            }
            SasOutcome::NoFreeMotion => prop_assert!(!any_free),
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    /// More CDUs never slow the schedule down (with fixed unit latency).
    #[test]
    fn cdus_monotonically_help(
        motions in any_motions(),
        threshold in -0.5f32..0.9,
    ) {
        let mut last = u64::MAX;
        for n in [1usize, 4, 16] {
            let mut cdu = MockCdu { threshold, latency: 8 };
            let cfg = SasConfig::mcsp(n);
            let r = run_sas(&motions, FunctionMode::Complete, &cfg, &mut cdu);
            prop_assert!(
                r.cycles <= last.saturating_add(8),
                "{} CDUs slower: {} > {}",
                n,
                r.cycles,
                last
            );
            last = r.cycles;
        }
    }

    /// The sequential schedule visits exactly the sequential-early-exit
    /// number of poses per motion.
    #[test]
    fn sequential_query_count_exact(
        motions in any_motions(),
        threshold in -0.5f32..0.9,
    ) {
        let mut cdu = MockCdu { threshold, latency: 1 };
        let r = run_sas(&motions, FunctionMode::Complete, &SasConfig::sequential(), &mut cdu);
        let expect: u64 = motions
            .iter()
            .map(|m| {
                (0..m.count)
                    .position(|i| m.pose(i)[0] >= threshold)
                    .map(|p| p as u64 + 1)
                    .unwrap_or(m.count as u64)
            })
            .sum();
        prop_assert_eq!(r.queries, expect);
    }
}
