//! Property-based tests of energy-ledger conservation through the
//! Q3.12 hardware chain: billing each CECDU pose query's op counter to
//! a scope must lose nothing, whatever the partitioning — the integer
//! scope counters sum field-by-field to the whole-run counter, so the
//! priced energy matches bit-for-bit (the ledger's core contract).

use mp_geometry::{Aabb, AabbF, Vec3};
use mp_octree::Octree;
use mp_robot::{JointConfig, RobotModel};
use mp_sim::{energy, CecduConfig, EnergyLedger, IuKind, OpCounter};
use mpaccel_core::cecdu::CecduSim;
use proptest::prelude::*;

fn any_obstacles() -> impl Strategy<Value = Vec<AabbF>> {
    prop::collection::vec(
        (
            -0.7f32..0.7,
            -0.7f32..0.7,
            -0.7f32..0.7,
            0.03f32..0.12,
            0.03f32..0.12,
            0.03f32..0.12,
        )
            .prop_map(|(x, y, z, a, b, c)| Aabb::new(Vec3::new(x, y, z), Vec3::new(a, b, c))),
        0..7,
    )
}

fn any_pose() -> impl Strategy<Value = JointConfig> {
    prop::collection::vec(-2.8f32..2.8, 6).prop_map(JointConfig::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation through the CECDU: scope-partitioned billing of the
    /// Q3.12 datapath ops (OBB generation, big-SRAM fetches, SAT mults)
    /// reconstructs the whole-run counter and energy exactly.
    #[test]
    fn ledger_conserves_the_q312_chain(
        obstacles in any_obstacles(),
        poses in prop::collection::vec(any_pose(), 1..10),
        stripe in 1usize..4,
    ) {
        let sim = CecduSim::new(
            RobotModel::jaco2(),
            Octree::build(&obstacles, 4),
            CecduConfig::new(4, IuKind::MultiCycle),
        );
        let scopes = ["obb_gen", "octree", "intersect"];
        let mut ledger = EnergyLedger::new();
        let mut whole = OpCounter::default();
        for (i, pose) in poses.iter().enumerate() {
            let r = sim.check_pose(pose);
            ledger.bill(scopes[(i / stripe) % scopes.len()], r.ops);
            whole += r.ops;
        }
        prop_assert_eq!(ledger.total_ops(), whole);
        prop_assert_eq!(
            ledger.total_energy_pj(),
            energy::dynamic_energy_pj(&whole),
            "ledger total must price identically to the whole-run counter"
        );
        // The hardware chain actually exercises the Q3.12-specific op
        // classes the ledger must carry.
        prop_assert!(whole.big_sram_reads > 0, "CECDU pays large-SRAM fetches");
        prop_assert!(whole.mults > 0, "CECDU pays fixed-point mults");
    }

    /// Merging ledgers (`absorb`) conserves too: splitting the same pose
    /// stream across two ledgers and merging equals billing one ledger.
    #[test]
    fn absorb_conserves(
        obstacles in any_obstacles(),
        poses in prop::collection::vec(any_pose(), 2..10),
        at_ in 1usize..9,
    ) {
        let sim = CecduSim::new(
            RobotModel::jaco2(),
            Octree::build(&obstacles, 4),
            CecduConfig::new(4, IuKind::MultiCycle),
        );
        let cut = at_.min(poses.len() - 1);
        let mut one = EnergyLedger::new();
        let mut front = EnergyLedger::new();
        let mut back = EnergyLedger::new();
        for (i, pose) in poses.iter().enumerate() {
            let r = sim.check_pose(pose);
            one.bill("cd", r.ops);
            if i < cut { &mut front } else { &mut back }.bill("cd", r.ops);
        }
        front.absorb(&back);
        prop_assert_eq!(front.total_ops(), one.total_ops());
        prop_assert_eq!(front.total_energy_pj(), one.total_energy_pj());
    }
}
