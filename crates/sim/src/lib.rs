//! Cycle/energy/area simulation framework for the MPAccel reproduction.
//!
//! The paper's evaluation is built on three kinds of cost accounting:
//!
//! 1. **Cycles** — the microarchitectural simulator's timing model, with
//!    clock periods taken from the synthesized critical paths (§7.3:
//!    1.48 ns pipelined / 2.24 ns multi-cycle OOCD). See [`time`].
//! 2. **Work counts** — "we use the number of multiplications as an
//!    estimate of computation" (§4) and "the number of collision detection
//!    tests is used as a measure of energy" (§7.1). See [`counters`].
//! 3. **Area/power** — per-block 45 nm synthesis results (Table 2),
//!    composed structurally into unit and system totals. See [`power`].
//!
//! The resilience study adds a fourth ingredient: seeded hardware [`fault`]
//! plans (SRAM bit flips, stuck/slow units, dropped or corrupted results,
//! saturation events) with the counters the recovery layers maintain.
//!
//! The service study (overload robustness) adds simulated-time machinery:
//! a deterministic discrete-event queue over integer-nanosecond [`vtime`]
//! and seeded open-loop [`arrival`] processes (Poisson, bursty,
//! adversarial) driving the multi-tenant planning service in `mp-service`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod counters;
pub mod energy;
pub mod fault;
pub mod ledger;
pub mod power;
pub mod time;
pub mod vtime;

pub use arrival::{ArrivalKind, ArrivalProcess};
pub use counters::OpCounter;
pub use fault::{
    FaultInjector, FaultKind, FaultPlan, IntegrityCounters, ResilienceCounters, SdcInjector,
    SdcPlan,
};
pub use ledger::EnergyLedger;
pub use power::{AreaPower, CecduConfig, IuKind, MpaccelConfig};
pub use time::ClockDomain;
pub use vtime::{EventQueue, VirtualNs};
