//! Fault models for the resilience study: seeded fault plans, a
//! deterministic injector, and the counters the recovery layers maintain.
//!
//! The fault surface is MPAccel-specific: single-bit upsets in the packed
//! 24-bit octree node words (§5.2's SRAM encoding), stuck-at and slowed
//! CECDUs, collision-detection results dropped or corrupted on the result
//! bus, and fixed-point saturation events in the intersection datapath.
//! The injector is a pure function of its [`FaultPlan`] seed, so every
//! campaign is reproducible bit-for-bit.
//!
//! Detection mechanisms live with the hardware models (`mpaccel-core`);
//! this module only decides *when* a fault strikes and keeps the books.

/// The kinds of hardware fault the injector can introduce.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A single-bit upset in a packed 24-bit octree node word (or its
    /// parity bit) read from the on-chip SRAM.
    SramBitFlip,
    /// A CECDU latches up and replays its previous result instead of
    /// evaluating the dispatched pose.
    StuckUnit,
    /// A CECDU completes correctly but several times slower than modeled
    /// (voltage droop / thermal throttling).
    SlowUnit,
    /// A collision-detection result is lost on the result bus and never
    /// reaches the scheduler.
    DroppedResult,
    /// A collision-detection verdict arrives with its collision bit
    /// inverted.
    CorruptedVerdict,
    /// A fixed-point saturation event in the intersection datapath flips
    /// one link's verdict.
    Saturation,
}

impl FaultKind {
    /// Number of fault kinds.
    pub const COUNT: usize = 6;

    /// All fault kinds, in a fixed order.
    pub const ALL: [FaultKind; FaultKind::COUNT] = [
        FaultKind::SramBitFlip,
        FaultKind::StuckUnit,
        FaultKind::SlowUnit,
        FaultKind::DroppedResult,
        FaultKind::CorruptedVerdict,
        FaultKind::Saturation,
    ];

    /// Stable index of this kind (for counter arrays).
    pub fn index(self) -> usize {
        match self {
            FaultKind::SramBitFlip => 0,
            FaultKind::StuckUnit => 1,
            FaultKind::SlowUnit => 2,
            FaultKind::DroppedResult => 3,
            FaultKind::CorruptedVerdict => 4,
            FaultKind::Saturation => 5,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::SramBitFlip => "sram-bit-flip",
            FaultKind::StuckUnit => "stuck-unit",
            FaultKind::SlowUnit => "slow-unit",
            FaultKind::DroppedResult => "dropped-result",
            FaultKind::CorruptedVerdict => "corrupted-verdict",
            FaultKind::Saturation => "saturation",
        }
    }
}

/// Per-kind fault probabilities plus the campaign seed.
///
/// Rates are per *opportunity*: per SRAM word read for
/// [`FaultKind::SramBitFlip`], per dispatched query for the unit- and
/// bus-level kinds, per link for [`FaultKind::Saturation`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's RNG.
    pub seed: u64,
    rates: [f64; FaultKind::COUNT],
}

impl FaultPlan {
    /// A fault-free plan (rates all zero).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0.0; FaultKind::COUNT],
        }
    }

    /// The same rate for every fault kind.
    pub fn uniform(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [rate.clamp(0.0, 1.0); FaultKind::COUNT],
        }
    }

    /// The configured rate for one kind.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        self.rates[kind.index()]
    }

    /// Overrides the rate for one kind (clamped to `0.0..=1.0`).
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> FaultPlan {
        self.rates[kind.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// Whether every rate is zero.
    pub fn is_fault_free(&self) -> bool {
        self.rates.iter().all(|&r| r == 0.0)
    }
}

/// Resilience bookkeeping shared by the injector and the recovery layers.
///
/// The injector records injections; the hardware models and the recovery
/// wrapper (`mpaccel-core::fault`) record everything else. `escaped`
/// counts *undetected wrong verdicts*; undetected faults whose verdict
/// still came out right are `masked`. Conservative "collision wins"
/// resolutions are counted as `conservative_promotions` (and as
/// `false_positives` when the pose was actually free) — never as escapes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceCounters {
    /// Pose queries evaluated through the fault-tolerant path.
    pub queries: u64,
    /// Injected faults, indexed by [`FaultKind::index`].
    pub injected_by_kind: [u64; FaultKind::COUNT],
    /// Faults caught by a detection mechanism (parity, structural checks,
    /// sequence tags, watchdog, sticky saturation flags).
    pub detected: u64,
    /// Undetected faults whose final verdict was still correct.
    pub masked: u64,
    /// Undetected faults that changed the final verdict.
    pub escaped: u64,
    /// Query re-dispatches to a different unit after a detection.
    pub redispatches: u64,
    /// Queries resolved conservatively ("collision wins") after the
    /// re-dispatch budget ran out.
    pub conservative_promotions: u64,
    /// Units quarantined after repeated strikes.
    pub quarantined: u64,
    /// Software-oracle spot checks performed by the voter.
    pub oracle_checks: u64,
    /// Voter overrides (free verdict promoted to collision).
    pub oracle_overrides: u64,
    /// Wrong-free verdicts delivered to the scheduler (the safety metric;
    /// must be zero whenever detection is enabled).
    pub false_negatives: u64,
    /// Wrong-colliding verdicts delivered (includes conservative
    /// promotions of actually-free poses).
    pub false_positives: u64,
}

impl ResilienceCounters {
    /// Injected faults of one kind.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected_by_kind[kind.index()]
    }

    /// Total injected faults across all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected_by_kind.iter().sum()
    }

    /// Accumulates another counter set into this one (campaigns aggregate
    /// per-scene injector counters into a sweep-point total).
    pub fn merge(&mut self, other: &ResilienceCounters) {
        self.queries += other.queries;
        for (into, from) in self
            .injected_by_kind
            .iter_mut()
            .zip(other.injected_by_kind.iter())
        {
            *into += from;
        }
        self.detected += other.detected;
        self.masked += other.masked;
        self.escaped += other.escaped;
        self.redispatches += other.redispatches;
        self.conservative_promotions += other.conservative_promotions;
        self.quarantined += other.quarantined;
        self.oracle_checks += other.oracle_checks;
        self.oracle_overrides += other.oracle_overrides;
        self.false_negatives += other.false_negatives;
        self.false_positives += other.false_positives;
    }

    /// Exports the counters into a telemetry registry under
    /// `<prefix>.<field>` names (per-kind injections under
    /// `<prefix>.injected.<kind label>`).
    pub fn export_into(&self, prefix: &str, registry: &mp_telemetry::Registry) {
        registry.set_counter(&format!("{prefix}.queries"), self.queries);
        for kind in FaultKind::ALL {
            registry.set_counter(
                &format!("{prefix}.injected.{}", kind.label()),
                self.injected(kind),
            );
        }
        registry.set_counter(&format!("{prefix}.detected"), self.detected);
        registry.set_counter(&format!("{prefix}.masked"), self.masked);
        registry.set_counter(&format!("{prefix}.escaped"), self.escaped);
        registry.set_counter(&format!("{prefix}.redispatches"), self.redispatches);
        registry.set_counter(
            &format!("{prefix}.conservative_promotions"),
            self.conservative_promotions,
        );
        registry.set_counter(&format!("{prefix}.quarantined"), self.quarantined);
        registry.set_counter(&format!("{prefix}.oracle_checks"), self.oracle_checks);
        registry.set_counter(&format!("{prefix}.oracle_overrides"), self.oracle_overrides);
        registry.set_counter(&format!("{prefix}.false_negatives"), self.false_negatives);
        registry.set_counter(&format!("{prefix}.false_positives"), self.false_positives);
    }
}

/// The kinds of *shard-level* failure the fleet chaos injector can
/// introduce. Component-level faults ([`FaultKind`]) strike one dispatch
/// on one accelerator; shard failures take a whole service shard — its
/// queue, its accelerator pool, its in-flight requests — out of the
/// serving set at once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShardFaultKind {
    /// The shard dies outright: queued and in-flight requests are lost
    /// unless the fleet fails them over, and the ring must route around
    /// it until it rejoins.
    Crash,
    /// The shard keeps serving but every dispatch runs several times
    /// slower than modeled (event-loop stall, thermal throttling, a noisy
    /// neighbor on the host) — the latency-tail case hedging exists for.
    Stall,
    /// The shard flaps: a burst of short crash/rejoin cycles, the worst
    /// case for failover bookkeeping and catch-up admission.
    Flap,
}

impl ShardFaultKind {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ShardFaultKind::Crash => "crash",
            ShardFaultKind::Stall => "stall",
            ShardFaultKind::Flap => "flap",
        }
    }
}

/// One scheduled shard failure: at `at_ns`, shard `shard` suffers `kind`
/// for `duration_ns` (for [`ShardFaultKind::Stall`], dispatches begun in
/// the window run `slow_factor`× slower; a `Flap` is expanded into short
/// crashes by [`ShardFaultPlan::schedule`], so schedules only ever
/// contain crashes and stalls).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardFaultEvent {
    /// Virtual time the failure begins (ns).
    pub at_ns: u64,
    /// Index of the afflicted shard.
    pub shard: usize,
    /// What happens to it.
    pub kind: ShardFaultKind,
    /// How long the failure lasts (ns).
    pub duration_ns: u64,
    /// Service-time multiplier while stalled (ignored for crashes).
    pub slow_factor: u64,
}

/// A seeded shard-failure campaign: scripted kills (the reproducible
/// "kill 2 of 16 shards mid-run" scenario) plus per-shard random crash /
/// stall / flap processes. A plan is a pure function of its seed, so a
/// chaos soak replays identically on any machine.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardFaultPlan {
    /// Seed for the random failure processes.
    pub seed: u64,
    /// Explicitly scheduled failures, applied verbatim (flaps expanded).
    pub scripted: Vec<ShardFaultEvent>,
    /// Poisson rate of random crashes per shard per second.
    pub crash_rate_per_s: f64,
    /// Downtime of a random crash (µs).
    pub crash_down_us: u64,
    /// Poisson rate of random stalls per shard per second.
    pub stall_rate_per_s: f64,
    /// Length of a random stall (µs).
    pub stall_dur_us: u64,
    /// Service-time multiplier while stalled.
    pub stall_factor: u64,
    /// Poisson rate of random flap episodes per shard per second.
    pub flap_rate_per_s: f64,
    /// Crash/rejoin cycles per flap episode.
    pub flap_cycles: u32,
    /// Length of one flap cycle (µs); the shard is down for half of it.
    pub flap_period_us: u64,
}

impl ShardFaultPlan {
    /// A failure-free plan.
    pub fn none(seed: u64) -> ShardFaultPlan {
        ShardFaultPlan {
            seed,
            scripted: Vec::new(),
            crash_rate_per_s: 0.0,
            crash_down_us: 10_000,
            stall_rate_per_s: 0.0,
            stall_dur_us: 5_000,
            stall_factor: 8,
            flap_rate_per_s: 0.0,
            flap_cycles: 3,
            flap_period_us: 2_000,
        }
    }

    /// A plan with only the given scripted failures.
    pub fn scripted(seed: u64, events: Vec<ShardFaultEvent>) -> ShardFaultPlan {
        ShardFaultPlan {
            scripted: events,
            ..ShardFaultPlan::none(seed)
        }
    }

    /// Whether the plan can produce any failure at all.
    pub fn is_failure_free(&self) -> bool {
        self.scripted.is_empty()
            && self.crash_rate_per_s <= 0.0
            && self.stall_rate_per_s <= 0.0
            && self.flap_rate_per_s <= 0.0
    }

    /// Expands the plan into the failure schedule for a fleet of
    /// `shards` shards over `duration_ns` of virtual time: scripted
    /// events plus seeded Poisson draws per shard per kind, flaps
    /// unrolled into short crashes, sorted by `(at_ns, shard, kind)` so
    /// the schedule is deterministic and stable.
    pub fn schedule(&self, shards: usize, duration_ns: u64) -> Vec<ShardFaultEvent> {
        let mut out = Vec::new();
        for ev in &self.scripted {
            if ev.shard >= shards || ev.at_ns >= duration_ns {
                continue;
            }
            if ev.kind == ShardFaultKind::Flap {
                self.push_flap(&mut out, ev.shard, ev.at_ns);
            } else {
                out.push(*ev);
            }
        }
        for shard in 0..shards {
            let base = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(shard as u64);
            for at in poisson_times(base ^ 0xC4A5, self.crash_rate_per_s, duration_ns) {
                out.push(ShardFaultEvent {
                    at_ns: at,
                    shard,
                    kind: ShardFaultKind::Crash,
                    duration_ns: self.crash_down_us * 1_000,
                    slow_factor: 1,
                });
            }
            for at in poisson_times(base ^ 0x57A1, self.stall_rate_per_s, duration_ns) {
                out.push(ShardFaultEvent {
                    at_ns: at,
                    shard,
                    kind: ShardFaultKind::Stall,
                    duration_ns: self.stall_dur_us * 1_000,
                    slow_factor: self.stall_factor.max(2),
                });
            }
            for at in poisson_times(base ^ 0xF1A9, self.flap_rate_per_s, duration_ns) {
                self.push_flap(&mut out, shard, at);
            }
        }
        out.sort_by_key(|e| (e.at_ns, e.shard, e.kind.label()));
        out
    }

    /// Unrolls one flap episode into its crash/rejoin cycles.
    fn push_flap(&self, out: &mut Vec<ShardFaultEvent>, shard: usize, at_ns: u64) {
        let period = self.flap_period_us.max(2) * 1_000;
        for cycle in 0..self.flap_cycles.max(1) as u64 {
            out.push(ShardFaultEvent {
                at_ns: at_ns + cycle * period,
                shard,
                kind: ShardFaultKind::Crash,
                duration_ns: period / 2,
                slow_factor: 1,
            });
        }
    }
}

/// A seeded silent-data-corruption campaign: faults that evade every
/// detection mechanism PR 1 installed (parity, structural decode checks,
/// result-bus tags) and can only be caught end-to-end, by revalidating
/// the *plan* the accelerator's verdicts produced.
///
/// Three corruption surfaces, rates per opportunity:
///
/// * **Verdict flips** — a delivered CD verdict arrives inverted with its
///   result-bus parity recomputed over the corrupt payload, so the bus
///   check passes (an upset in the completion datapath *after* the
///   checker, the classic SDC case).
/// * **Memo corruption** — a memoized CDU response is corrupted at rest
///   and replayed with a self-consistent checksum.
/// * **Node-word corruption** — a packed octree node word suffers an
///   even-weight two-bit upset confined to the occupancy payload, chosen
///   so every 2-bit field still decodes: even parity is preserved *and*
///   the structural decode check passes (see
///   [`SdcInjector::corrupt_node_word`]).
///
/// Like [`FaultPlan`], a plan is a pure function of its fields, so a
/// campaign replays bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SdcPlan {
    /// Seed for the injector's RNG stream.
    pub seed: u64,
    /// Probability a delivered CD verdict is silently inverted, per
    /// dispatched query.
    pub verdict_flip_rate: f64,
    /// Probability a memoized response read is corrupt, per memo hit.
    pub memo_corrupt_rate: f64,
    /// Probability of a parity-preserving two-bit upset, per node-word
    /// read.
    pub node_corrupt_rate: f64,
}

impl SdcPlan {
    /// A silent-fault-free plan.
    pub fn none(seed: u64) -> SdcPlan {
        SdcPlan {
            seed,
            verdict_flip_rate: 0.0,
            memo_corrupt_rate: 0.0,
            node_corrupt_rate: 0.0,
        }
    }

    /// The same rate on every corruption surface.
    pub fn uniform(rate: f64, seed: u64) -> SdcPlan {
        let r = rate.clamp(0.0, 1.0);
        SdcPlan {
            seed,
            verdict_flip_rate: r,
            memo_corrupt_rate: r,
            node_corrupt_rate: r,
        }
    }

    /// Whether every rate is zero.
    pub fn is_silent_free(&self) -> bool {
        self.verdict_flip_rate == 0.0
            && self.memo_corrupt_rate == 0.0
            && self.node_corrupt_rate == 0.0
    }

    /// All rates multiplied by `factor` (clamped to `0.0..=1.0`): the
    /// per-instance corruption knob — a fleet gives its "liar" instance a
    /// scaled copy of the shared plan.
    pub fn scaled(mut self, factor: f64) -> SdcPlan {
        self.verdict_flip_rate = (self.verdict_flip_rate * factor).clamp(0.0, 1.0);
        self.memo_corrupt_rate = (self.memo_corrupt_rate * factor).clamp(0.0, 1.0);
        self.node_corrupt_rate = (self.node_corrupt_rate * factor).clamp(0.0, 1.0);
        self
    }

    /// The same plan on a decorrelated per-instance RNG stream.
    pub fn stream(mut self, instance: u64) -> SdcPlan {
        let mut z = self.seed ^ 0x5DC0_5DC0_5DC0_5DC0 ^ instance.wrapping_mul(0x9E37_79B9);
        self.seed = splitmix64(&mut z);
        self
    }
}

/// Bookkeeping for the integrity pipeline: silent corruptions injected
/// (by the [`SdcInjector`]) and the defense-side outcomes (recorded by
/// the certifier, the voter, and the scrub loop).
///
/// `sdc_escaped` is the safety metric — corrupt plans shipped to a
/// tenant; it must be zero whenever certification is on, because the
/// certifier revalidates every edge through an independent exact cascade.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrityCounters {
    /// Completions that rolled for silent corruption.
    pub opportunities: u64,
    /// CD verdicts silently inverted past the bus parity check.
    pub verdict_flips: u64,
    /// Memoized responses corrupted at rest.
    pub memo_corruptions: u64,
    /// Parity-preserving two-bit node-word upsets.
    pub node_corruptions: u64,
    /// Plans revalidated end-to-end by the certifier.
    pub certified: u64,
    /// Corrupt plans the certifier caught before shipping.
    pub certify_failed: u64,
    /// Corrupt plans shipped to a tenant (the safety metric).
    pub sdc_escaped: u64,
    /// Duplicate-dispatch majority votes run on suspect instances.
    pub votes: u64,
    /// Votes that outvoted a corrupt verdict.
    pub vote_overrides: u64,
    /// Known-answer probes run against quarantined instances.
    pub scrub_probes: u64,
    /// Instances readmitted after a clean probe streak.
    pub scrub_readmits: u64,
}

impl IntegrityCounters {
    /// Total silent corruptions injected across the three surfaces.
    pub fn injected_total(&self) -> u64 {
        self.verdict_flips + self.memo_corruptions + self.node_corruptions
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &IntegrityCounters) {
        self.opportunities += other.opportunities;
        self.verdict_flips += other.verdict_flips;
        self.memo_corruptions += other.memo_corruptions;
        self.node_corruptions += other.node_corruptions;
        self.certified += other.certified;
        self.certify_failed += other.certify_failed;
        self.sdc_escaped += other.sdc_escaped;
        self.votes += other.votes;
        self.vote_overrides += other.vote_overrides;
        self.scrub_probes += other.scrub_probes;
        self.scrub_readmits += other.scrub_readmits;
    }

    /// Exports the counters into a telemetry registry under
    /// `<prefix>.<field>` names.
    pub fn export_into(&self, prefix: &str, registry: &mp_telemetry::Registry) {
        registry.set_counter(&format!("{prefix}.opportunities"), self.opportunities);
        registry.set_counter(&format!("{prefix}.verdict_flips"), self.verdict_flips);
        registry.set_counter(&format!("{prefix}.memo_corruptions"), self.memo_corruptions);
        registry.set_counter(&format!("{prefix}.node_corruptions"), self.node_corruptions);
        registry.set_counter(&format!("{prefix}.certified"), self.certified);
        registry.set_counter(&format!("{prefix}.certify_failed"), self.certify_failed);
        registry.set_counter(&format!("{prefix}.sdc_escaped"), self.sdc_escaped);
        registry.set_counter(&format!("{prefix}.votes"), self.votes);
        registry.set_counter(&format!("{prefix}.vote_overrides"), self.vote_overrides);
        registry.set_counter(&format!("{prefix}.scrub_probes"), self.scrub_probes);
        registry.set_counter(&format!("{prefix}.scrub_readmits"), self.scrub_readmits);
    }
}

/// Number of data bits in a packed octree node word.
pub const SRAM_WORD_BITS: u32 = 24;

/// Data bits plus the even-parity bit stored alongside each word.
pub const SRAM_PROTECTED_BITS: u32 = SRAM_WORD_BITS + 1;

/// Even parity over the 24 data bits of a packed node word.
pub fn parity24(word: u32) -> u32 {
    (word & 0x00FF_FFFF).count_ones() & 1
}

/// One single-bit SRAM upset applied to a packed node word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SramUpset {
    /// The (possibly corrupted) 24-bit data word after the upset.
    pub word: u32,
    /// Which of the 25 protected bits flipped (24 = the parity bit).
    pub flipped_bit: u32,
    /// Whether the stored parity still matches the data. A single-bit
    /// upset always breaks even parity, so this is `false`; kept explicit
    /// so multi-bit extensions stay honest.
    pub parity_ok: bool,
}

/// One parity-preserving two-bit upset applied to a packed node word:
/// the silent counterpart of [`SramUpset`]. Both flipped bits live in the
/// 16-bit occupancy payload and each afflicted 2-bit field still decodes,
/// so neither the even-parity check nor the structural decode check can
/// see it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SilentUpset {
    /// The corrupted 24-bit data word after the upset.
    pub word: u32,
    /// The two flipped payload bits (distinct, both `< 16`).
    pub bits: [u32; 2],
    /// Whether the stored parity still matches the data. An even-weight
    /// flip preserves even parity, so this is always `true` — the dual of
    /// [`SramUpset::parity_ok`].
    pub parity_ok: bool,
}

/// A deterministic, seeded fault injector.
///
/// # Examples
///
/// ```
/// use mp_sim::fault::{FaultInjector, FaultKind, FaultPlan};
///
/// let mut inj = FaultInjector::new(FaultPlan::uniform(1.0, 7));
/// assert!(inj.fires(FaultKind::SramBitFlip));
/// let upset = inj.corrupt_sram_word(0x00AB_CDEF);
/// assert!(!upset.parity_ok);
/// assert_eq!(inj.counters().injected(FaultKind::SramBitFlip), 1);
/// ```
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: [u64; 4],
    counters: ResilienceCounters,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sorted Poisson event times in `[0, duration_ns)` at `rate_per_s`,
/// seeded (splitmix64 stream; one draw per event).
fn poisson_times(seed: u64, rate_per_s: f64, duration_ns: u64) -> Vec<u64> {
    if rate_per_s <= 0.0 || duration_ns == 0 {
        return Vec::new();
    }
    let rate_per_ns = rate_per_s * 1e-9;
    let mut state = seed;
    let mut t = 0.0f64;
    let mut out = Vec::new();
    loop {
        let u = (splitmix64(&mut state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        t += -(1.0 - u).ln() / rate_per_ns;
        if t >= duration_ns as f64 {
            return out;
        }
        out.push(t as u64);
    }
}

/// Expands a seed into a non-degenerate xoshiro256++ state.
fn seed_state(seed: u64) -> [u64; 4] {
    let mut sm = seed;
    let mut state = [0u64; 4];
    for s in &mut state {
        *s = splitmix64(&mut sm);
    }
    if state.iter().all(|&s| s == 0) {
        state[0] = 0x4D50_4163_6365_6C21; // avoid the xoshiro fixed point
    }
    state
}

/// One xoshiro256++ step (public domain reference constants).
fn xoshiro_next(s: &mut [u64; 4]) -> u64 {
    let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
    let t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = s[3].rotate_left(45);
    result
}

impl FaultInjector {
    /// Creates an injector for a plan; identical plans yield identical
    /// fault sequences.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            state: seed_state(plan.seed),
            plan,
            counters: ResilienceCounters::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The accumulated resilience counters.
    pub fn counters(&self) -> &ResilienceCounters {
        &self.counters
    }

    /// Mutable counters, for the recovery layers to record detections,
    /// retries, and verdict classifications.
    pub fn counters_mut(&mut self) -> &mut ResilienceCounters {
        &mut self.counters
    }

    /// Zeroes the counters (the RNG stream is unaffected).
    pub fn reset_counters(&mut self) {
        self.counters = ResilienceCounters::default();
    }

    fn next_u64(&mut self) -> u64 {
        xoshiro_next(&mut self.state)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform pick in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Decides whether a fault of `kind` strikes at this opportunity and
    /// records the injection when it does. Only call this at points where
    /// the fault can actually be applied.
    pub fn fires(&mut self, kind: FaultKind) -> bool {
        let rate = self.plan.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        let fire = self.unit_f64() < rate;
        if fire {
            self.counters.injected_by_kind[kind.index()] += 1;
        }
        fire
    }

    /// Flips exactly one of the 25 protected bits (24 data + 1 parity) of
    /// a packed node word. Flipping the parity bit leaves the data intact
    /// but still breaks the stored parity.
    pub fn corrupt_sram_word(&mut self, word: u32) -> SramUpset {
        let bit = self.pick(SRAM_PROTECTED_BITS as usize) as u32;
        let corrupted = if bit < SRAM_WORD_BITS {
            word ^ (1 << bit)
        } else {
            word
        };
        SramUpset {
            word: corrupted & 0x00FF_FFFF,
            flipped_bit: bit,
            parity_ok: false,
        }
    }
}

/// A deterministic, seeded *silent*-fault injector: the corruption
/// source the integrity pipeline (certification → voting → scrub)
/// exists to defend against. Kept separate from [`FaultInjector`] so
/// adding SDC to a campaign never perturbs the detected-fault streams.
///
/// # Examples
///
/// ```
/// use mp_sim::fault::{parity24, SdcInjector, SdcPlan};
///
/// let mut inj = SdcInjector::new(SdcPlan::uniform(1.0, 7));
/// assert!(inj.flips_verdict());
/// let upset = inj.corrupt_node_word(0x00AB_4589);
/// assert!(upset.parity_ok);
/// assert_eq!(parity24(upset.word), parity24(0x00AB_4589));
/// ```
#[derive(Clone, Debug)]
pub struct SdcInjector {
    plan: SdcPlan,
    state: [u64; 4],
    counters: IntegrityCounters,
}

impl SdcInjector {
    /// Creates an injector for a plan; identical plans yield identical
    /// corruption sequences.
    pub fn new(plan: SdcPlan) -> SdcInjector {
        SdcInjector {
            state: seed_state(plan.seed),
            plan,
            counters: IntegrityCounters::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &SdcPlan {
        &self.plan
    }

    /// The accumulated integrity counters.
    pub fn counters(&self) -> &IntegrityCounters {
        &self.counters
    }

    /// Mutable counters, for the defense layers to record certifications,
    /// votes, and scrub outcomes.
    pub fn counters_mut(&mut self) -> &mut IntegrityCounters {
        &mut self.counters
    }

    /// Zeroes the counters (the RNG stream is unaffected).
    pub fn reset_counters(&mut self) {
        self.counters = IntegrityCounters::default();
    }

    fn unit_f64(&mut self) -> f64 {
        (xoshiro_next(&mut self.state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "cannot pick from an empty range");
        (xoshiro_next(&mut self.state) % n as u64) as usize
    }

    fn roll(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        self.unit_f64() < rate
    }

    /// Whether this dispatch's delivered verdict is silently inverted.
    /// One RNG draw per call, fired or not, so streams stay aligned
    /// across policies.
    pub fn flips_verdict(&mut self) -> bool {
        self.counters.opportunities += 1;
        let fire = self.roll(self.plan.verdict_flip_rate);
        if fire {
            self.counters.verdict_flips += 1;
        }
        fire
    }

    /// Whether this memo read returns a corrupted entry.
    pub fn corrupts_memo(&mut self) -> bool {
        let fire = self.roll(self.plan.memo_corrupt_rate);
        if fire {
            self.counters.memo_corruptions += 1;
        }
        fire
    }

    /// Whether this node-word read suffers a silent upset (pair with
    /// [`SdcInjector::corrupt_node_word`]).
    pub fn corrupts_node(&mut self) -> bool {
        self.roll(self.plan.node_corrupt_rate)
    }

    /// Applies a parity-preserving two-bit upset to a packed node word.
    ///
    /// Exactly two distinct occupancy-payload bits flip (even weight, so
    /// even parity over the 24 data bits is unchanged), and each flip is
    /// chosen per-field so the afflicted 2-bit occupancy still decodes:
    /// the low bit toggles `Empty ↔ Partial`, the high bit toggles
    /// `Empty ↔ Full`, and neither ever produces the reserved `0b11`
    /// pattern. The result sails through both detection mechanisms PR 1
    /// installed — this is the honest silent-data-corruption case the
    /// [`SramUpset`] doc comment promised to keep explicit.
    pub fn corrupt_node_word(&mut self, word: u32) -> SilentUpset {
        self.counters.node_corruptions += 1;
        // Two distinct octant fields of the 8 in the payload.
        let o1 = self.pick(8) as u32;
        let o2 = (o1 + 1 + self.pick(7) as u32) % 8;
        let mut corrupted = word & 0x00FF_FFFF;
        let mut bits = [0u32; 2];
        for (slot, octant) in bits.iter_mut().zip([o1, o2]) {
            let field = (corrupted >> (2 * octant)) & 0b11;
            // Full (0b10) only tolerates a high-bit flip; Partial (0b01)
            // only a low-bit flip; Empty (0b00) tolerates either.
            let bit = match field {
                0b10 => 2 * octant + 1,
                0b01 => 2 * octant,
                _ => 2 * octant + self.pick(2) as u32,
            };
            corrupted ^= 1 << bit;
            *slot = bit;
        }
        debug_assert_eq!(parity24(corrupted), parity24(word), "upset must be silent");
        SilentUpset {
            word: corrupted,
            bits,
            parity_ok: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_deterministic() {
        let plan = FaultPlan::uniform(0.3, 42);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for _ in 0..500 {
            for kind in FaultKind::ALL {
                assert_eq!(a.fires(kind), b.fires(kind));
            }
        }
        assert_eq!(a.counters(), b.counters());
        assert_eq!(a.corrupt_sram_word(0x123456), b.corrupt_sram_word(0x123456));
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut inj = FaultInjector::new(FaultPlan::uniform(0.25, 9));
        let n = 4000;
        let hits = (0..n)
            .filter(|_| inj.fires(FaultKind::DroppedResult))
            .count();
        let frac = hits as f64 / n as f64;
        assert!((0.2..0.3).contains(&frac), "hit rate {frac}");
        assert_eq!(
            inj.counters().injected(FaultKind::DroppedResult),
            hits as u64
        );
        assert_eq!(inj.counters().injected_total(), hits as u64);
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::none(1));
        assert!(inj.plan().is_fault_free());
        for _ in 0..1000 {
            for kind in FaultKind::ALL {
                assert!(!inj.fires(kind));
            }
        }
        assert_eq!(inj.counters().injected_total(), 0);
    }

    #[test]
    fn per_kind_rates_are_independent() {
        let plan = FaultPlan::none(5).with_rate(FaultKind::StuckUnit, 1.0);
        let mut inj = FaultInjector::new(plan);
        assert!(inj.fires(FaultKind::StuckUnit));
        assert!(!inj.fires(FaultKind::SramBitFlip));
        assert_eq!(inj.counters().injected(FaultKind::StuckUnit), 1);
        assert_eq!(inj.counters().injected(FaultKind::SramBitFlip), 0);
    }

    #[test]
    fn sram_upsets_flip_exactly_one_protected_bit() {
        let mut inj = FaultInjector::new(FaultPlan::uniform(1.0, 3));
        let word = 0x00A5_C3F0;
        let mut parity_hits = 0;
        for _ in 0..200 {
            let upset = inj.corrupt_sram_word(word);
            assert!(!upset.parity_ok);
            assert!(upset.flipped_bit < SRAM_PROTECTED_BITS);
            if upset.flipped_bit == SRAM_WORD_BITS {
                parity_hits += 1;
                assert_eq!(upset.word, word);
            } else {
                assert_eq!((upset.word ^ word).count_ones(), 1);
            }
            // An even-parity check against the original word's parity bit
            // always catches the single-bit upset.
            let stored_parity = parity24(word) ^ u32::from(upset.flipped_bit == SRAM_WORD_BITS);
            assert_ne!(parity24(upset.word), stored_parity);
        }
        assert!(parity_hits > 0, "parity bit never targeted in 200 upsets");
    }

    #[test]
    fn shard_plan_schedule_is_deterministic_and_sorted() {
        let plan = ShardFaultPlan {
            crash_rate_per_s: 40.0,
            stall_rate_per_s: 20.0,
            flap_rate_per_s: 10.0,
            ..ShardFaultPlan::none(9)
        };
        let a = plan.schedule(8, 200_000_000);
        let b = plan.schedule(8, 200_000_000);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "rates this high must draw events");
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns), "unsorted");
        assert!(a.iter().all(|e| e.shard < 8 && e.at_ns < 200_000_000));
        // Flaps were unrolled: only crashes and stalls survive expansion.
        assert!(a.iter().all(|e| e.kind != ShardFaultKind::Flap));
        let other = ShardFaultPlan { seed: 10, ..plan };
        assert_ne!(other.schedule(8, 200_000_000), a);
    }

    #[test]
    fn scripted_kills_survive_and_flaps_unroll() {
        let kill = |shard, at_ns| ShardFaultEvent {
            at_ns,
            shard,
            kind: ShardFaultKind::Crash,
            duration_ns: 5_000_000,
            slow_factor: 1,
        };
        let flap = ShardFaultEvent {
            at_ns: 1_000,
            shard: 1,
            kind: ShardFaultKind::Flap,
            duration_ns: 0,
            slow_factor: 1,
        };
        let plan = ShardFaultPlan::scripted(3, vec![kill(2, 10_000), kill(9, 10_000), flap]);
        assert!(!plan.is_failure_free());
        let sched = plan.schedule(4, 100_000_000);
        // Shard 9 is out of range for a 4-shard fleet and is dropped.
        assert!(sched.iter().all(|e| e.shard < 4));
        assert_eq!(
            sched
                .iter()
                .filter(|e| e.shard == 1 && e.kind == ShardFaultKind::Crash)
                .count(),
            plan.flap_cycles as usize,
            "the flap unrolls into its crash cycles"
        );
        assert!(sched.iter().any(|e| e.shard == 2 && e.at_ns == 10_000));
        assert!(ShardFaultPlan::none(0).schedule(16, 1_000_000).is_empty());
    }

    #[test]
    fn sdc_injector_is_deterministic() {
        let plan = SdcPlan::uniform(0.3, 77);
        let mut a = SdcInjector::new(plan);
        let mut b = SdcInjector::new(plan);
        for _ in 0..500 {
            assert_eq!(a.flips_verdict(), b.flips_verdict());
            assert_eq!(a.corrupts_memo(), b.corrupts_memo());
            assert_eq!(a.corrupts_node(), b.corrupts_node());
        }
        assert_eq!(a.counters(), b.counters());
        assert_eq!(
            a.corrupt_node_word(0x003C_9A55),
            b.corrupt_node_word(0x003C_9A55)
        );
        let mut c = SdcInjector::new(plan.stream(1));
        let flips: Vec<bool> = (0..64).map(|_| c.flips_verdict()).collect();
        let mut d = SdcInjector::new(plan);
        assert_ne!(
            flips,
            (0..64).map(|_| d.flips_verdict()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn silent_upsets_evade_parity_and_decode() {
        let mut inj = SdcInjector::new(SdcPlan::uniform(1.0, 3));
        // Exercise valid packed words covering all occupancy values,
        // including an all-Full payload where only high-bit flips are
        // silent and an all-Partial one where only low-bit flips are.
        for word in [0x0000_0000u32, 0x00AB_9249, 0x00FF_AAAA, 0x0012_5555] {
            for _ in 0..100 {
                let upset = inj.corrupt_node_word(word);
                assert!(upset.parity_ok);
                assert_eq!((upset.word ^ word).count_ones(), 2, "exactly two bits flip");
                assert_ne!(upset.bits[0], upset.bits[1]);
                assert!(upset.bits.iter().all(|&b| b < 16), "payload-only");
                // Even parity over the data bits is preserved: the PR 1
                // parity check cannot see this upset.
                assert_eq!(parity24(upset.word), parity24(word));
                // Every 2-bit occupancy field still decodes (no reserved
                // 0b11 pattern): the structural check cannot see it either.
                for octant in 0..8 {
                    assert_ne!(
                        (upset.word >> (2 * octant)) & 0b11,
                        0b11,
                        "upset must not create a reserved occupancy"
                    );
                }
            }
        }
        assert_eq!(inj.counters().node_corruptions, 400);
    }

    #[test]
    fn sdc_zero_rate_never_fires_and_scaling_clamps() {
        let mut inj = SdcInjector::new(SdcPlan::none(4));
        assert!(inj.plan().is_silent_free());
        for _ in 0..500 {
            assert!(!inj.flips_verdict());
            assert!(!inj.corrupts_memo());
            assert!(!inj.corrupts_node());
        }
        assert_eq!(inj.counters().injected_total(), 0);
        assert_eq!(inj.counters().opportunities, 500);
        let hot = SdcPlan::uniform(0.4, 4).scaled(10.0);
        assert_eq!(hot.verdict_flip_rate, 1.0);
        assert!(SdcPlan::uniform(0.4, 4).scaled(0.0).is_silent_free());
    }

    #[test]
    fn integrity_counters_merge_and_export() {
        let mut a = IntegrityCounters {
            opportunities: 10,
            verdict_flips: 2,
            memo_corruptions: 1,
            node_corruptions: 3,
            certified: 8,
            certify_failed: 2,
            sdc_escaped: 0,
            votes: 4,
            vote_overrides: 1,
            scrub_probes: 6,
            scrub_readmits: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.opportunities, 20);
        assert_eq!(a.injected_total(), 12);
        assert_eq!(a.scrub_readmits, 2);
        let r = mp_telemetry::Registry::new();
        a.export_into("integrity", &r);
        assert_eq!(r.counter_value("integrity.verdict_flips"), Some(4));
        assert_eq!(r.counter_value("integrity.sdc_escaped"), Some(0));
        assert_eq!(r.counter_value("integrity.scrub_probes"), Some(12));
    }

    #[test]
    fn counters_track_recovery_fields() {
        let mut inj = FaultInjector::new(FaultPlan::uniform(1.0, 2));
        let _ = inj.fires(FaultKind::Saturation);
        inj.counters_mut().detected += 2;
        inj.counters_mut().redispatches += 1;
        inj.counters_mut().masked += 1;
        let c = *inj.counters();
        assert_eq!(c.detected, 2);
        assert_eq!(c.redispatches, 1);
        assert_eq!(c.masked, 1);
        inj.reset_counters();
        assert_eq!(*inj.counters(), ResilienceCounters::default());
    }
}
