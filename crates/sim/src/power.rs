//! Area and power modelling from the paper's 45 nm synthesis results.
//!
//! Table 2 reports per-block area/power from Synopsys DC + OpenRAM at 45 nm
//! (FreePDK). We embed those constants and compose them structurally — the
//! same arithmetic the paper uses for its MPAccel rows (e.g. config 1 =
//! scheduler + 16 × CECDU = 0.110 + 16 × 0.694 = 11.21 mm², 3.51 W).
//!
//! The power numbers compose exactly (Table 1's four CECDU configurations
//! are reproduced to within 0.1 mW by summing Table 2 blocks); the area
//! numbers include a small amount of shared logic, so for the four CECDU
//! configurations we use Table 1's synthesized values directly and fall
//! back to structural composition elsewhere.

use core::ops::{Add, Mul};

use crate::time::ClockDomain;

/// An (area, power) pair.
///
/// # Examples
///
/// ```
/// use mp_sim::AreaPower;
///
/// let total = AreaPower::new(0.110, 0.0607) + AreaPower::new(0.694, 0.2157) * 16.0;
/// assert!((total.area_mm2 - 11.21).abs() < 0.01);
/// assert!((total.power_w - 3.51).abs() < 0.01);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AreaPower {
    /// Silicon area in mm² (45 nm).
    pub area_mm2: f64,
    /// Power in watts.
    pub power_w: f64,
}

impl AreaPower {
    /// Creates an (area, power) pair. Power in **watts**.
    pub fn new(area_mm2: f64, power_w: f64) -> AreaPower {
        AreaPower { area_mm2, power_w }
    }
}

impl Add for AreaPower {
    type Output = AreaPower;
    fn add(self, rhs: AreaPower) -> AreaPower {
        AreaPower::new(self.area_mm2 + rhs.area_mm2, self.power_w + rhs.power_w)
    }
}

impl Mul<f64> for AreaPower {
    type Output = AreaPower;
    fn mul(self, n: f64) -> AreaPower {
        AreaPower::new(self.area_mm2 * n, self.power_w * n)
    }
}

/// Table 2 constants (area mm², power W).
pub mod blocks {
    use super::AreaPower;

    /// SAS scheduler.
    pub const SCHEDULER: AreaPower = AreaPower {
        area_mm2: 0.110,
        power_w: 0.0607,
    };
    /// OBB Transformation (Generation) Unit.
    pub const OBB_UNIT: AreaPower = AreaPower {
        area_mm2: 0.054,
        power_w: 0.0516,
    };
    /// Octree Traversal Unit (the OOCD FSM + queues, excluding the IU).
    pub const TRAVERSAL_UNIT: AreaPower = AreaPower {
        area_mm2: 0.029,
        power_w: 0.0167,
    };
    /// Multi-cycle Intersection Unit.
    pub const IU_MULTI_CYCLE: AreaPower = AreaPower {
        area_mm2: 0.143,
        power_w: 0.02434,
    };
    /// Pipelined Intersection Unit.
    pub const IU_PIPELINED: AreaPower = AreaPower {
        area_mm2: 0.251,
        power_w: 0.03257,
    };
}

/// Intersection Unit microarchitecture (§5.2 explores both).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum IuKind {
    /// One cascade stage per cycle; the unit is busy until the test exits.
    #[default]
    MultiCycle,
    /// 5-stage pipeline; a new test can start every cycle.
    Pipelined,
}

impl IuKind {
    /// Area/power of one Intersection Unit of this kind (Table 2).
    pub fn area_power(self) -> AreaPower {
        match self {
            IuKind::MultiCycle => blocks::IU_MULTI_CYCLE,
            IuKind::Pipelined => blocks::IU_PIPELINED,
        }
    }

    /// The clock domain this design closes timing at (§7.3).
    pub fn clock(self) -> ClockDomain {
        match self {
            IuKind::MultiCycle => ClockDomain::multi_cycle(),
            IuKind::Pipelined => ClockDomain::pipelined(),
        }
    }
}

impl core::fmt::Display for IuKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IuKind::MultiCycle => write!(f, "mc"),
            IuKind::Pipelined => write!(f, "p"),
        }
    }
}

/// A CECDU configuration: how many OOCDs it instantiates and which
/// Intersection Unit design they use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CecduConfig {
    /// Number of OOCD units (the paper evaluates 1 and 4).
    pub oocds: usize,
    /// Intersection Unit kind.
    pub iu: IuKind,
}

impl CecduConfig {
    /// Creates a CECDU configuration.
    ///
    /// # Panics
    ///
    /// Panics if `oocds` is 0.
    pub fn new(oocds: usize, iu: IuKind) -> CecduConfig {
        assert!(oocds >= 1, "a CECDU needs at least one OOCD");
        CecduConfig { oocds, iu }
    }

    /// Area/power of this CECDU. The four configurations of Table 1 use the
    /// synthesized values verbatim; other sizes compose structurally.
    pub fn area_power(&self) -> AreaPower {
        match (self.oocds, self.iu) {
            // Table 1 rows.
            (1, IuKind::MultiCycle) => AreaPower::new(0.21, 0.0926),
            (1, IuKind::Pipelined) => AreaPower::new(0.32, 0.1008),
            (4, IuKind::MultiCycle) => AreaPower::new(0.694, 0.2157),
            (4, IuKind::Pipelined) => AreaPower::new(1.126, 0.2487),
            // Structural estimate.
            (n, iu) => blocks::OBB_UNIT + (blocks::TRAVERSAL_UNIT + iu.area_power()) * n as f64,
        }
    }
}

impl Default for CecduConfig {
    /// The paper's headline configuration: 4 multi-cycle OOCDs.
    fn default() -> CecduConfig {
        CecduConfig::new(4, IuKind::MultiCycle)
    }
}

/// A full MPAccel configuration (scheduler + CECDU array), named
/// `X_Y_mc/p` in Fig 20 for `X` CECDUs of `Y` OOCDs each.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MpaccelConfig {
    /// Number of CECDUs.
    pub cecdus: usize,
    /// Per-CECDU configuration.
    pub cecdu: CecduConfig,
}

impl MpaccelConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cecdus` is 0.
    pub fn new(cecdus: usize, cecdu: CecduConfig) -> MpaccelConfig {
        assert!(cecdus >= 1, "MPAccel needs at least one CECDU");
        MpaccelConfig { cecdus, cecdu }
    }

    /// Table 2's "Config 1": scheduler + 16 CECDUs of 4 multi-cycle OOCDs.
    pub fn config1() -> MpaccelConfig {
        MpaccelConfig::new(16, CecduConfig::new(4, IuKind::MultiCycle))
    }

    /// Table 2's "Config 2": scheduler + 16 CECDUs of 4 pipelined OOCDs.
    pub fn config2() -> MpaccelConfig {
        MpaccelConfig::new(16, CecduConfig::new(4, IuKind::Pipelined))
    }

    /// Total area/power (scheduler + CECDU array).
    pub fn area_power(&self) -> AreaPower {
        blocks::SCHEDULER + self.cecdu.area_power() * self.cecdus as f64
    }

    /// The Fig 20 configuration label, e.g. `16_4_mc`.
    pub fn label(&self) -> String {
        format!("{}_{}_{}", self.cecdus, self.cecdu.oocds, self.cecdu.iu)
    }

    /// The performance metric of Fig 20: motion-planning queries per
    /// (second × watt × mm²).
    pub fn perf_metric(&self, queries: u64, seconds: f64) -> f64 {
        let ap = self.area_power();
        queries as f64 / (seconds * ap.power_w * ap.area_mm2)
    }
}

impl Default for MpaccelConfig {
    fn default() -> MpaccelConfig {
        MpaccelConfig::config1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_config1_totals() {
        let ap = MpaccelConfig::config1().area_power();
        assert!((ap.area_mm2 - 11.21).abs() < 0.02, "area {}", ap.area_mm2);
        assert!((ap.power_w - 3.51).abs() < 0.01, "power {}", ap.power_w);
    }

    #[test]
    fn table2_config2_totals() {
        let ap = MpaccelConfig::config2().area_power();
        assert!((ap.area_mm2 - 18.12).abs() < 0.1, "area {}", ap.area_mm2);
        assert!((ap.power_w - 4.03).abs() < 0.02, "power {}", ap.power_w);
    }

    #[test]
    fn table1_power_composes_from_table2_blocks() {
        // Structural power (OBB unit + n × (traversal + IU)) must land
        // within a milliwatt of the synthesized Table 1 values.
        let structural =
            |n: f64, iu: AreaPower| (blocks::OBB_UNIT + (blocks::TRAVERSAL_UNIT + iu) * n).power_w;
        assert!((structural(1.0, blocks::IU_MULTI_CYCLE) - 0.0926).abs() < 1e-3);
        assert!((structural(1.0, blocks::IU_PIPELINED) - 0.1008).abs() < 1e-3);
        assert!((structural(4.0, blocks::IU_MULTI_CYCLE) - 0.2157).abs() < 1e-3);
        assert!((structural(4.0, blocks::IU_PIPELINED) - 0.2487).abs() < 1e-3);
    }

    #[test]
    fn labels_match_fig20_naming() {
        assert_eq!(MpaccelConfig::config1().label(), "16_4_mc");
        assert_eq!(
            MpaccelConfig::new(8, CecduConfig::new(1, IuKind::Pipelined)).label(),
            "8_1_p"
        );
    }

    #[test]
    fn perf_metric_dimensional_sanity() {
        let cfg = MpaccelConfig::config1();
        let p1 = cfg.perf_metric(1000, 1.0);
        let p2 = cfg.perf_metric(2000, 1.0);
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
        // Bigger hardware lowers the metric for the same throughput.
        let big = MpaccelConfig::config2().perf_metric(1000, 1.0);
        assert!(big < p1);
    }

    #[test]
    fn structural_estimate_used_for_unlisted_sizes() {
        let two = CecduConfig::new(2, IuKind::MultiCycle).area_power();
        let expect = blocks::OBB_UNIT + (blocks::TRAVERSAL_UNIT + blocks::IU_MULTI_CYCLE) * 2.0;
        assert_eq!(two, expect);
    }

    #[test]
    #[should_panic(expected = "at least one OOCD")]
    fn zero_oocds_rejected() {
        let _ = CecduConfig::new(0, IuKind::MultiCycle);
    }

    #[test]
    fn iu_clocks_match_critical_paths() {
        assert_eq!(IuKind::MultiCycle.clock().period_ns(), 2.24);
        assert_eq!(IuKind::Pipelined.clock().period_ns(), 1.48);
    }
}
