//! Clocking: cycle-count to wall-clock conversion.

/// Critical-path delay of the multi-cycle OOCD design (§7.3), nanoseconds.
pub const MULTI_CYCLE_PERIOD_NS: f64 = 2.24;

/// Critical-path delay of the pipelined OOCD design (§7.3), nanoseconds.
pub const PIPELINED_PERIOD_NS: f64 = 1.48;

/// A clock domain: converts cycle counts into wall-clock time.
///
/// # Examples
///
/// ```
/// use mp_sim::ClockDomain;
///
/// let clk = ClockDomain::multi_cycle();
/// assert!((clk.frequency_ghz() - 0.446).abs() < 0.01);
/// assert!((clk.cycles_to_us(1000) - 2.24).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClockDomain {
    period_ns: f64,
}

impl ClockDomain {
    /// Creates a clock domain from its period in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive and finite.
    pub fn from_period_ns(period_ns: f64) -> ClockDomain {
        assert!(
            period_ns.is_finite() && period_ns > 0.0,
            "clock period must be positive, got {period_ns}"
        );
        ClockDomain { period_ns }
    }

    /// The clock of the multi-cycle OOCD design (446 MHz).
    pub fn multi_cycle() -> ClockDomain {
        ClockDomain::from_period_ns(MULTI_CYCLE_PERIOD_NS)
    }

    /// The clock of the pipelined OOCD design (676 MHz).
    pub fn pipelined() -> ClockDomain {
        ClockDomain::from_period_ns(PIPELINED_PERIOD_NS)
    }

    /// Clock period in nanoseconds.
    pub fn period_ns(&self) -> f64 {
        self.period_ns
    }

    /// Clock frequency in GHz.
    pub fn frequency_ghz(&self) -> f64 {
        1.0 / self.period_ns
    }

    /// Converts cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.period_ns
    }

    /// Converts cycles to microseconds.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        self.cycles_to_ns(cycles) / 1e3
    }

    /// Converts cycles to milliseconds.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        self.cycles_to_ns(cycles) / 1e6
    }

    /// Converts a duration in nanoseconds to whole cycles (rounding up).
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns / self.period_ns).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clock_frequencies() {
        // 1/2.24 ns ≈ 446 MHz; 1/1.48 ns ≈ 676 MHz.
        assert!((ClockDomain::multi_cycle().frequency_ghz() - 0.4464).abs() < 1e-3);
        assert!((ClockDomain::pipelined().frequency_ghz() - 0.6757).abs() < 1e-3);
    }

    #[test]
    fn conversions_roundtrip() {
        let clk = ClockDomain::from_period_ns(2.0);
        assert_eq!(clk.cycles_to_ns(5), 10.0);
        assert_eq!(clk.cycles_to_us(5000), 10.0);
        assert_eq!(clk.cycles_to_ms(5_000_000), 10.0);
        assert_eq!(clk.ns_to_cycles(10.0), 5);
        assert_eq!(clk.ns_to_cycles(10.1), 6); // rounds up
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = ClockDomain::from_period_ns(0.0);
    }
}
