//! Virtual time and a deterministic discrete-event queue.
//!
//! The planning-service simulation (`mp-service`) advances a *simulated*
//! clock, decoupled from wall time, so campaigns are reproducible
//! bit-for-bit on any machine and at any thread count. Events are ordered
//! by `(timestamp, insertion sequence)`: ties are broken by insertion
//! order, never by heap internals, which is what makes the event loop
//! deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual timestamps are integer nanoseconds from simulation start.
/// Integer (not float) so event ordering has no rounding ambiguity.
pub type VirtualNs = u64;

/// Nanoseconds per microsecond (the planner's modeled costs are in µs).
pub const NS_PER_US: u64 = 1_000;

struct Entry<E> {
    at: VirtualNs,
    seq: u64,
    event: E,
}

// `BinaryHeap` is a max-heap; reverse the ordering to pop the earliest
// `(at, seq)` first.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Entry<E>) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Entry<E>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Entry<E>) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// # Examples
///
/// ```
/// use mp_sim::vtime::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(20, "late");
/// q.push(10, "early");
/// q.push(10, "early-tie");
/// assert_eq!(q.pop(), Some((10, "early")));
/// assert_eq!(q.pop(), Some((10, "early-tie")));
/// assert_eq!(q.pop(), Some((20, "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at virtual time `at`. Events with equal
    /// timestamps pop in insertion order.
    pub fn push(&mut self, at: VirtualNs, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event and its timestamp.
    pub fn pop(&mut self) -> Option<(VirtualNs, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<VirtualNs> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, 'c');
        q.push(1, 'a');
        q.push(5, 'd');
        q.push(3, 'b');
        let order: Vec<(VirtualNs, char)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(1, 'a'), (3, 'b'), (5, 'c'), (5, 'd')]);
    }

    #[test]
    fn interleaved_push_pop_keeps_sequence_ties_stable() {
        let mut q = EventQueue::new();
        q.push(10, 0);
        q.push(10, 1);
        assert_eq!(q.pop(), Some((10, 0)));
        q.push(10, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((10, 2)));
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_and_peek_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(7, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2));
    }
}
