//! Per-scope energy attribution: the pJ-accurate energy ledger.
//!
//! The leaf models already count every operation ([`OpCounter`]) and
//! [`crate::energy`] prices each op class in picojoules; what was missing
//! is *attribution* — which planner phase, quality tier, or query spent
//! the joules. An [`EnergyLedger`] holds one `OpCounter` per named scope,
//! billed by counter deltas at scope boundaries (the same trick
//! `mp_planner::batch` uses for per-lane stats).
//!
//! # Conservation
//!
//! Scopes store *integer* op counts, not floats, so attribution is exact
//! by construction: the per-scope counters sum field-by-field to the
//! whole-run counter, and therefore
//! `dynamic_energy_pj(&ledger.total_ops())` equals the whole-run energy
//! bit-for-bit — no float-accumulation drift between "sum of parts" and
//! "the whole". The ledger-conservation proptests pin this in both the
//! f32 and Q3.12 checker chains.

use crate::counters::OpCounter;
use crate::energy::dynamic_energy_pj;

/// An insertion-ordered set of named scopes, each accumulating an
/// [`OpCounter`].
///
/// Scope order is the order of first billing, so rendering a ledger is
/// deterministic for a deterministic workload. Billing the same scope
/// repeatedly accumulates.
///
/// # Examples
///
/// ```
/// use mp_sim::{energy, EnergyLedger, OpCounter};
///
/// let mut ledger = EnergyLedger::new();
/// let phase1 = OpCounter { mults: 100, ..OpCounter::default() };
/// let phase2 = OpCounter { mults: 40, adds: 7, ..OpCounter::default() };
/// ledger.bill("phase1_neural", phase1);
/// ledger.bill("phase2_replan", phase2);
/// assert_eq!(ledger.total_ops(), phase1 + phase2);
/// assert_eq!(
///     ledger.total_energy_pj(),
///     energy::dynamic_energy_pj(&(phase1 + phase2)),
/// );
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnergyLedger {
    scopes: Vec<(String, OpCounter)>,
}

impl EnergyLedger {
    /// An empty ledger.
    pub fn new() -> EnergyLedger {
        EnergyLedger::default()
    }

    /// Adds `ops` to the named scope, creating it (at the end of the
    /// scope order) on first use.
    pub fn bill(&mut self, scope: &str, ops: OpCounter) {
        match self.scopes.iter_mut().find(|(name, _)| name == scope) {
            Some((_, acc)) => *acc += ops,
            None => self.scopes.push((scope.to_string(), ops)),
        }
    }

    /// The accumulated ops of one scope, if it has been billed.
    pub fn scope_ops(&self, scope: &str) -> Option<OpCounter> {
        self.scopes
            .iter()
            .find(|(name, _)| name == scope)
            .map(|(_, ops)| *ops)
    }

    /// The accumulated dynamic energy of one scope, in picojoules.
    pub fn scope_energy_pj(&self, scope: &str) -> Option<f64> {
        self.scope_ops(scope).map(|ops| dynamic_energy_pj(&ops))
    }

    /// Field-by-field sum of every scope's ops — exactly the whole-run
    /// counter when every operation was billed to some scope.
    pub fn total_ops(&self) -> OpCounter {
        self.scopes.iter().map(|(_, ops)| *ops).sum()
    }

    /// Total dynamic energy across scopes, in picojoules. Computed from
    /// the *summed integer counters*, so it equals the whole-run
    /// `dynamic_energy_pj` bit-for-bit (see the module docs).
    pub fn total_energy_pj(&self) -> f64 {
        dynamic_energy_pj(&self.total_ops())
    }

    /// Iterates `(scope, ops)` in first-billed order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &OpCounter)> {
        self.scopes.iter().map(|(name, ops)| (name.as_str(), ops))
    }

    /// Number of scopes billed so far.
    pub fn len(&self) -> usize {
        self.scopes.len()
    }

    /// Whether nothing has been billed.
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    /// Merges another ledger's scopes into this one (scope-wise add).
    pub fn absorb(&mut self, other: &EnergyLedger) {
        for (scope, ops) in other.iter() {
            self.bill(scope, *ops);
        }
    }

    /// Exports per-scope op counters and energies into a telemetry
    /// registry under `<prefix>.<scope>.*` names, plus the totals under
    /// `<prefix>.total.*`.
    pub fn export_into(&self, prefix: &str, registry: &mp_telemetry::Registry) {
        for (scope, ops) in self.iter() {
            ops.export_into(&format!("{prefix}.{scope}"), registry);
            registry.set_gauge(
                &format!("{prefix}.{scope}.energy_pj"),
                dynamic_energy_pj(ops),
            );
        }
        let total = self.total_ops();
        total.export_into(&format!("{prefix}.total"), registry);
        registry.set_gauge(&format!("{prefix}.total.energy_pj"), self.total_energy_pj());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(mults: u64, adds: u64, sram: u64) -> OpCounter {
        OpCounter {
            mults,
            adds,
            sram_reads: sram,
            ..OpCounter::default()
        }
    }

    #[test]
    fn billing_accumulates_per_scope_in_first_billed_order() {
        let mut l = EnergyLedger::new();
        l.bill("tier.full", ops(10, 0, 0));
        l.bill("tier.degraded", ops(1, 2, 3));
        l.bill("tier.full", ops(5, 5, 0));
        assert_eq!(l.len(), 2);
        assert_eq!(l.scope_ops("tier.full"), Some(ops(15, 5, 0)));
        assert_eq!(l.scope_ops("tier.degraded"), Some(ops(1, 2, 3)));
        assert_eq!(l.scope_ops("tier.missing"), None);
        let order: Vec<&str> = l.iter().map(|(s, _)| s).collect();
        assert_eq!(order, ["tier.full", "tier.degraded"]);
    }

    #[test]
    fn totals_equal_whole_run_energy_exactly() {
        // Adversarial op mix: adds are priced at 0.05 pJ (inexact in
        // binary), so summing per-scope *energies* would drift; summing
        // counters first must not.
        let parts = [ops(3, 7, 1), ops(0, 13, 5), ops(1000, 1, 0)];
        let mut l = EnergyLedger::new();
        let mut whole = OpCounter::default();
        for (i, p) in parts.iter().enumerate() {
            l.bill(&format!("phase{i}"), *p);
            whole += *p;
        }
        assert_eq!(l.total_ops(), whole);
        assert_eq!(l.total_energy_pj(), dynamic_energy_pj(&whole));
    }

    #[test]
    fn absorb_merges_scopewise() {
        let mut a = EnergyLedger::new();
        a.bill("cd", ops(1, 0, 0));
        let mut b = EnergyLedger::new();
        b.bill("cd", ops(2, 0, 0));
        b.bill("nn", ops(0, 0, 9));
        a.absorb(&b);
        assert_eq!(a.scope_ops("cd"), Some(ops(3, 0, 0)));
        assert_eq!(a.scope_ops("nn"), Some(ops(0, 0, 9)));
    }

    #[test]
    fn registry_export_names() {
        let mut l = EnergyLedger::new();
        l.bill("cd", ops(4, 0, 2));
        let r = mp_telemetry::Registry::new();
        l.export_into("ledger", &r);
        assert_eq!(r.counter_value("ledger.cd.mults"), Some(4));
        assert_eq!(r.counter_value("ledger.total.sram_reads"), Some(2));
        assert!(r.gauge_value("ledger.total.energy_pj").unwrap() > 0.0);
    }
}
