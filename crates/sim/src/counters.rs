//! Work counters — the paper's computation/energy proxies.

use core::ops::{Add, AddAssign};

/// Operation counters accumulated by the hardware models.
///
/// §4 uses multiplications as the computation estimate; §7.1 uses the
/// number of collision-detection tests as the energy measure (energy is
/// linear in tests because the benchmark octrees live entirely in on-chip
/// SRAM with no coalescing). The counter additionally tracks the off-array
/// op classes of Table 2 — large-SRAM reads (the 576 KB octree store),
/// DRAM transfer bytes (environment/query upload), and DNN-accelerator
/// MACs — so [`crate::energy::dynamic_energy_pj`] covers the whole
/// datapath, not just the intersection cascade.
///
/// # Examples
///
/// ```
/// use mp_sim::OpCounter;
///
/// let mut a = OpCounter::default();
/// a.mults += 81;
/// a.sram_reads += 3;
/// let b = a + a;
/// assert_eq!(b.mults, 162);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct OpCounter {
    /// Fixed-point multiplications.
    pub mults: u64,
    /// Fixed-point additions/subtractions.
    pub adds: u64,
    /// On-chip SRAM reads (octree nodes, link constants) from small
    /// (≤1 KB) arrays.
    pub sram_reads: u64,
    /// OBB–AABB primitive intersection tests started.
    pub box_tests: u64,
    /// Robot-pose collision-detection queries completed.
    pub cd_queries: u64,
    /// Reads from large on-chip SRAM arrays (8–576 KB: the octree store,
    /// trace buffers) — several times costlier per word than the small
    /// node stores.
    pub big_sram_reads: u64,
    /// Bytes moved over the DRAM/bus interface (environment + query
    /// upload, result readback).
    pub dram_bytes: u64,
    /// Multiply-accumulates executed by the DNN accelerator (MPNet
    /// sampler inference).
    pub mlp_macs: u64,
}

impl OpCounter {
    /// A zeroed counter.
    pub fn new() -> OpCounter {
        OpCounter::default()
    }

    /// Relative dynamic energy versus a baseline, using the weighted
    /// per-op-class picojoule model ([`crate::energy::dynamic_energy_pj`])
    /// rather than the raw multiplication count — mult-only ratios
    /// misrank workloads whose op mix differs (e.g. SRAM-read-heavy OOCD
    /// traversal versus SAT-heavy narrow phase). Returns `None` if the
    /// baseline spent no energy.
    ///
    /// The coarser per-*query* ratio of §7.1 lives in the bench crate's
    /// `SasAggregate::energy_vs`, which the figure experiments print.
    pub fn energy_vs(&self, baseline: &OpCounter) -> Option<f64> {
        let base = crate::energy::dynamic_energy_pj(baseline);
        if base == 0.0 {
            None
        } else {
            Some(crate::energy::dynamic_energy_pj(self) / base)
        }
    }

    /// Exports the counters into a telemetry registry under
    /// `<prefix>.<field>` names.
    pub fn export_into(&self, prefix: &str, registry: &mp_telemetry::Registry) {
        registry.set_counter(&format!("{prefix}.mults"), self.mults);
        registry.set_counter(&format!("{prefix}.adds"), self.adds);
        registry.set_counter(&format!("{prefix}.sram_reads"), self.sram_reads);
        registry.set_counter(&format!("{prefix}.box_tests"), self.box_tests);
        registry.set_counter(&format!("{prefix}.cd_queries"), self.cd_queries);
        registry.set_counter(&format!("{prefix}.big_sram_reads"), self.big_sram_reads);
        registry.set_counter(&format!("{prefix}.dram_bytes"), self.dram_bytes);
        registry.set_counter(&format!("{prefix}.mlp_macs"), self.mlp_macs);
    }
}

impl Add for OpCounter {
    type Output = OpCounter;
    fn add(self, rhs: OpCounter) -> OpCounter {
        OpCounter {
            mults: self.mults + rhs.mults,
            adds: self.adds + rhs.adds,
            sram_reads: self.sram_reads + rhs.sram_reads,
            box_tests: self.box_tests + rhs.box_tests,
            cd_queries: self.cd_queries + rhs.cd_queries,
            big_sram_reads: self.big_sram_reads + rhs.big_sram_reads,
            dram_bytes: self.dram_bytes + rhs.dram_bytes,
            mlp_macs: self.mlp_macs + rhs.mlp_macs,
        }
    }
}

impl AddAssign for OpCounter {
    fn add_assign(&mut self, rhs: OpCounter) {
        *self = *self + rhs;
    }
}

impl core::iter::Sum for OpCounter {
    fn sum<I: Iterator<Item = OpCounter>>(iter: I) -> OpCounter {
        iter.fold(OpCounter::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sum() {
        let a = OpCounter {
            mults: 1,
            adds: 2,
            sram_reads: 3,
            box_tests: 4,
            cd_queries: 5,
            big_sram_reads: 6,
            dram_bytes: 7,
            mlp_macs: 8,
        };
        let s: OpCounter = [a, a, a].into_iter().sum();
        assert_eq!(s.mults, 3);
        assert_eq!(s.cd_queries, 15);
        assert_eq!(s.big_sram_reads, 18);
        assert_eq!(s.dram_bytes, 21);
        assert_eq!(s.mlp_macs, 24);
    }

    #[test]
    fn energy_ratio_is_weighted_not_mult_only() {
        let base = OpCounter {
            mults: 100,
            ..OpCounter::default()
        };
        let twice = OpCounter {
            mults: 200,
            ..OpCounter::default()
        };
        assert_eq!(twice.energy_vs(&base), Some(2.0));
        assert_eq!(base.energy_vs(&OpCounter::default()), None);
        // A mult-free but SRAM-heavy workload has nonzero relative energy;
        // the old mults-only ratio reported 0.0 here.
        let sram_heavy = OpCounter {
            sram_reads: 40,
            ..OpCounter::default()
        };
        let r = sram_heavy.energy_vs(&base).unwrap();
        assert!(r > 0.0, "weighted ratio must see non-mult work, got {r}");
        assert_eq!(r, crate::energy::SRAM_READ_PJ * 40.0 / 100.0);
    }
}
