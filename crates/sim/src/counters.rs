//! Work counters — the paper's computation/energy proxies.

use core::ops::{Add, AddAssign};

/// Operation counters accumulated by the hardware models.
///
/// §4 uses multiplications as the computation estimate; §7.1 uses the
/// number of collision-detection tests as the energy measure (energy is
/// linear in tests because the benchmark octrees live entirely in on-chip
/// SRAM with no coalescing).
///
/// # Examples
///
/// ```
/// use mp_sim::OpCounter;
///
/// let mut a = OpCounter::default();
/// a.mults += 81;
/// a.sram_reads += 3;
/// let b = a + a;
/// assert_eq!(b.mults, 162);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct OpCounter {
    /// Fixed-point multiplications.
    pub mults: u64,
    /// Fixed-point additions/subtractions.
    pub adds: u64,
    /// On-chip SRAM reads (octree nodes, link constants).
    pub sram_reads: u64,
    /// OBB–AABB primitive intersection tests started.
    pub box_tests: u64,
    /// Robot-pose collision-detection queries completed.
    pub cd_queries: u64,
}

impl OpCounter {
    /// A zeroed counter.
    pub fn new() -> OpCounter {
        OpCounter::default()
    }

    /// Relative energy versus a baseline, using multiplications as the
    /// proxy (§4). Returns `None` if the baseline spent no multiplications.
    pub fn energy_vs(&self, baseline: &OpCounter) -> Option<f64> {
        if baseline.mults == 0 {
            None
        } else {
            Some(self.mults as f64 / baseline.mults as f64)
        }
    }

    /// Exports the counters into a telemetry registry under
    /// `<prefix>.<field>` names.
    pub fn export_into(&self, prefix: &str, registry: &mp_telemetry::Registry) {
        registry.set_counter(&format!("{prefix}.mults"), self.mults);
        registry.set_counter(&format!("{prefix}.adds"), self.adds);
        registry.set_counter(&format!("{prefix}.sram_reads"), self.sram_reads);
        registry.set_counter(&format!("{prefix}.box_tests"), self.box_tests);
        registry.set_counter(&format!("{prefix}.cd_queries"), self.cd_queries);
    }
}

impl Add for OpCounter {
    type Output = OpCounter;
    fn add(self, rhs: OpCounter) -> OpCounter {
        OpCounter {
            mults: self.mults + rhs.mults,
            adds: self.adds + rhs.adds,
            sram_reads: self.sram_reads + rhs.sram_reads,
            box_tests: self.box_tests + rhs.box_tests,
            cd_queries: self.cd_queries + rhs.cd_queries,
        }
    }
}

impl AddAssign for OpCounter {
    fn add_assign(&mut self, rhs: OpCounter) {
        *self = *self + rhs;
    }
}

impl core::iter::Sum for OpCounter {
    fn sum<I: Iterator<Item = OpCounter>>(iter: I) -> OpCounter {
        iter.fold(OpCounter::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sum() {
        let a = OpCounter {
            mults: 1,
            adds: 2,
            sram_reads: 3,
            box_tests: 4,
            cd_queries: 5,
        };
        let s: OpCounter = [a, a, a].into_iter().sum();
        assert_eq!(s.mults, 3);
        assert_eq!(s.cd_queries, 15);
    }

    #[test]
    fn energy_ratio() {
        let base = OpCounter {
            mults: 100,
            ..OpCounter::default()
        };
        let twice = OpCounter {
            mults: 200,
            ..OpCounter::default()
        };
        assert_eq!(twice.energy_vs(&base), Some(2.0));
        assert_eq!(base.energy_vs(&OpCounter::default()), None);
    }
}
