//! Physical energy model: converting operation counts into joules.
//!
//! The paper uses two proxies — #CD tests (§7.1) and #multiplications
//! (§4) — because its benchmark octrees live in on-chip SRAM and energy is
//! linear in the work counts. This module grounds those proxies in
//! per-operation energies typical of 45 nm logic, so `OpCounter` totals can
//! be reported in joules and cross-checked against the Table 2 power ×
//! runtime products.

use crate::counters::OpCounter;

/// Energy of one 16-bit fixed-point multiplication at 45 nm, picojoules.
///
/// Scaled from the widely used Horowitz ISSCC'14 numbers (0.2 pJ for an
/// 8-bit and ~3 pJ for a 32-bit multiply at 45 nm): a 16-bit multiply lands
/// near 1 pJ.
pub const MULT_PJ: f64 = 1.0;

/// Energy of one 16-bit add at 45 nm, picojoules (Horowitz: 0.03 pJ for
/// 8-bit, 0.1 pJ for 32-bit).
pub const ADD_PJ: f64 = 0.05;

/// Energy of one small-SRAM read (24-bit word from a ≤1 KB array), pJ
/// (Horowitz: ~5 pJ for an 8 KB cache access, scaled down for the OOCD's
/// 0.75 KB node store).
pub const SRAM_READ_PJ: f64 = 2.5;

/// Energy of one large-SRAM read (word from an 8–576 KB array such as the
/// Table 2 octree store), pJ. Horowitz puts an 8 KB cache access at ~5 pJ
/// and a 32 KB one at ~10 pJ; the banked 576 KB octree SRAM lands a bit
/// above that.
pub const BIG_SRAM_READ_PJ: f64 = 12.0;

/// Energy per byte moved over the DRAM/bus interface, pJ (Horowitz:
/// ~1.3–2.6 nJ per 64-bit DRAM access ⇒ ~20 pJ/bit ⇒ ~160 pJ/byte).
pub const DRAM_BYTE_PJ: f64 = 160.0;

/// Energy of one 16-bit multiply-accumulate on the DNN accelerator, pJ
/// (one multiply plus one add).
pub const MLP_MAC_PJ: f64 = MULT_PJ + ADD_PJ;

/// Fixed per-test control overhead (FSM, muxes, registers), pJ.
pub const TEST_OVERHEAD_PJ: f64 = 1.0;

/// Converts an operation counter into picojoules of dynamic energy.
///
/// # Examples
///
/// ```
/// use mp_sim::{energy, OpCounter};
///
/// let ops = OpCounter { mults: 81, adds: 60, sram_reads: 1, box_tests: 1, ..OpCounter::default() };
/// let pj = energy::dynamic_energy_pj(&ops);
/// assert!(pj > 81.0); // at least the multiplier energy
/// ```
pub fn dynamic_energy_pj(ops: &OpCounter) -> f64 {
    ops.mults as f64 * MULT_PJ
        + ops.adds as f64 * ADD_PJ
        + ops.sram_reads as f64 * SRAM_READ_PJ
        + ops.box_tests as f64 * TEST_OVERHEAD_PJ
        + ops.big_sram_reads as f64 * BIG_SRAM_READ_PJ
        + ops.dram_bytes as f64 * DRAM_BYTE_PJ
        + ops.mlp_macs as f64 * MLP_MAC_PJ
}

/// Converts the counter into microjoules.
pub fn dynamic_energy_uj(ops: &OpCounter) -> f64 {
    dynamic_energy_pj(ops) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_linear_in_work() {
        let a = OpCounter {
            mults: 100,
            adds: 50,
            sram_reads: 10,
            box_tests: 5,
            cd_queries: 1,
            big_sram_reads: 7,
            dram_bytes: 64,
            mlp_macs: 33,
        };
        let double = a + a;
        assert!((dynamic_energy_pj(&double) - 2.0 * dynamic_energy_pj(&a)).abs() < 1e-9);
    }

    #[test]
    fn mults_dominate_for_sat_heavy_work() {
        // A full 15-axis SAT (81 mults) costs far more than its bookkeeping.
        let sat = OpCounter {
            mults: 81,
            adds: 60,
            box_tests: 1,
            ..OpCounter::default()
        };
        let e = dynamic_energy_pj(&sat);
        assert!(e > 80.0 && e < 100.0, "{e} pJ");
        // A sphere filter (3 mults) is ~20x cheaper — the cascade's point.
        let sphere = OpCounter {
            mults: 3,
            adds: 6,
            box_tests: 1,
            ..OpCounter::default()
        };
        assert!(dynamic_energy_pj(&sphere) * 15.0 < e);
    }

    #[test]
    fn offchip_classes_are_priced() {
        // A DRAM byte costs more than a big-SRAM read, which costs more
        // than a small-SRAM read — the memory-hierarchy ordering the new
        // op classes exist to capture.
        const { assert!(DRAM_BYTE_PJ > BIG_SRAM_READ_PJ) };
        const { assert!(BIG_SRAM_READ_PJ > SRAM_READ_PJ) };
        let upload = OpCounter {
            dram_bytes: 768,
            ..OpCounter::default()
        };
        assert!((dynamic_energy_pj(&upload) - 768.0 * DRAM_BYTE_PJ).abs() < 1e-9);
        let nn = OpCounter {
            mlp_macs: 1000,
            ..OpCounter::default()
        };
        assert!((dynamic_energy_pj(&nn) - 1000.0 * MLP_MAC_PJ).abs() < 1e-9);
    }

    #[test]
    fn unit_conversion() {
        let ops = OpCounter {
            mults: 1_000_000,
            ..OpCounter::default()
        };
        assert!((dynamic_energy_uj(&ops) - 1.0).abs() < 1e-9);
    }
}
