//! Seeded open-loop arrival processes for the planning-service study.
//!
//! The service simulation drives a pool of MPAccel instances with streams
//! of planning queries. Three arrival shapes cover the regimes a realtime
//! service must survive:
//!
//! * **Poisson** — memoryless background traffic (exponential
//!   inter-arrivals at a target rate),
//! * **Bursty** — an on/off modulated Poisson process (periodic bursts at
//!   a multiple of the base rate, silence in between, same average rate),
//! * **Adversarial** — synchronized batches: `batch` requests arrive at
//!   the same instant, the worst case for a bounded queue.
//!
//! Every stream is a pure function of its seed (the RNG is the same
//! splitmix64-seeded xoshiro256++ as [`crate::fault::FaultInjector`]), so
//! a campaign replays identically on any machine and thread count.
//! `mp-sim` is dependency-free, hence the self-contained generator.

use crate::vtime::VirtualNs;

/// Self-contained xoshiro256++ stream (seeded via splitmix64), identical
/// in construction to the fault injector's RNG but kept separate so fault
/// draws and arrival draws never perturb each other.
#[derive(Clone, Debug)]
struct ArrivalRng {
    state: [u64; 4],
}

impl ArrivalRng {
    fn new(seed: u64) -> ArrivalRng {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = splitmix64(&mut sm);
        }
        if state.iter().all(|&s| s == 0) {
            state[0] = 0x4D50_4163_6365_6C21;
        }
        ArrivalRng { state }
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential variate with the given rate (events per nanosecond).
    fn exp_ns(&mut self, rate_per_ns: f64) -> f64 {
        // 1 - u is in (0, 1], so ln() is finite and the variate positive.
        -(1.0 - self.unit_f64()).ln() / rate_per_ns
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shape of an arrival stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalKind {
    /// Memoryless traffic: exponential inter-arrival times.
    Poisson,
    /// On/off modulated Poisson: bursts at `burst_factor`× the base rate
    /// for `duty` of each `period_us`, silent otherwise. The *average*
    /// rate matches the configured rate when `burst_factor * duty == 1`.
    Bursty {
        /// Rate multiplier while the burst is on.
        burst_factor: f64,
        /// Burst cycle length in microseconds.
        period_us: u64,
        /// Fraction of the period the burst is on (`0 < duty <= 1`).
        duty: f64,
    },
    /// Synchronized batches: `batch` requests at the same instant, one
    /// batch every `batch / rate` seconds.
    Adversarial {
        /// Requests per synchronized batch.
        batch: u32,
    },
}

/// A seeded open-loop arrival process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArrivalProcess {
    /// Stream shape.
    pub kind: ArrivalKind,
    /// Average offered rate in requests per second.
    pub rate_per_s: f64,
    /// Stream seed; identical seeds reproduce identical streams.
    pub seed: u64,
}

impl ArrivalProcess {
    /// Generates the sorted arrival timestamps in `[0, duration_ns)`.
    ///
    /// The stream is open-loop: arrivals do not react to service state,
    /// which is exactly the overload regime the admission controller has
    /// to handle.
    pub fn generate(&self, duration_ns: VirtualNs) -> Vec<VirtualNs> {
        if self.rate_per_s <= 0.0 || duration_ns == 0 {
            return Vec::new();
        }
        let rate_per_ns = self.rate_per_s * 1e-9;
        let mut rng = ArrivalRng::new(self.seed);
        let mut out = Vec::new();
        match self.kind {
            ArrivalKind::Poisson => {
                let mut t = 0.0f64;
                loop {
                    t += rng.exp_ns(rate_per_ns);
                    if t >= duration_ns as f64 {
                        break;
                    }
                    out.push(t as VirtualNs);
                }
            }
            ArrivalKind::Bursty {
                burst_factor,
                period_us,
                duty,
            } => {
                let duty = duty.clamp(1e-3, 1.0);
                let period = (period_us.max(1) * 1_000) as f64;
                let on_len = period * duty;
                let on_rate = rate_per_ns * burst_factor.max(0.0);
                // Walk virtual time phase by phase; the exponential
                // clock restarts at each boundary (memoryless, so the
                // stream stays a Poisson process within each phase).
                let mut t = 0.0f64;
                while t < duration_ns as f64 {
                    let phase = t - (t / period).floor() * period;
                    let (rate, phase_end) = if phase < on_len {
                        (on_rate, t - phase + on_len)
                    } else {
                        (0.0, t - phase + period)
                    };
                    if rate <= 0.0 {
                        t = phase_end;
                        continue;
                    }
                    let dt = rng.exp_ns(rate);
                    if t + dt >= phase_end {
                        t = phase_end;
                        continue;
                    }
                    t += dt;
                    if t < duration_ns as f64 {
                        out.push(t as VirtualNs);
                    }
                }
            }
            ArrivalKind::Adversarial { batch } => {
                let batch = batch.max(1);
                let spacing_ns = batch as f64 / rate_per_ns;
                // Seeded phase offset so co-scheduled adversarial streams
                // don't trivially align with each other.
                let mut t = rng.unit_f64() * spacing_ns;
                while t < duration_ns as f64 {
                    for _ in 0..batch {
                        out.push(t as VirtualNs);
                    }
                    t += spacing_ns;
                }
            }
        }
        out
    }

    /// Generates the stream inside the window `[start_ns, end_ns)`: the
    /// process runs for `end_ns - start_ns` and is shifted to begin at
    /// `start_ns`. Used for traffic that switches on mid-run — e.g. an
    /// adversarial tenant attacking a fleet partway through a soak — while
    /// keeping the stream a pure function of `(seed, window)`.
    pub fn generate_between(&self, start_ns: VirtualNs, end_ns: VirtualNs) -> Vec<VirtualNs> {
        if end_ns <= start_ns {
            return Vec::new();
        }
        let mut out = self.generate(end_ns - start_ns);
        for t in &mut out {
            *t += start_ns;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_hits_the_target_rate() {
        let p = ArrivalProcess {
            kind: ArrivalKind::Poisson,
            rate_per_s: 10_000.0,
            seed: 7,
        };
        let dur = 1_000_000_000; // 1 s
        let ts = p.generate(dur);
        let n = ts.len() as f64;
        assert!((8_500.0..11_500.0).contains(&n), "rate off: {n}");
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "unsorted");
        assert!(*ts.last().unwrap() < dur);
    }

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        for kind in [
            ArrivalKind::Poisson,
            ArrivalKind::Bursty {
                burst_factor: 4.0,
                period_us: 2_000,
                duty: 0.25,
            },
            ArrivalKind::Adversarial { batch: 16 },
        ] {
            let p = ArrivalProcess {
                kind,
                rate_per_s: 5_000.0,
                seed: 42,
            };
            assert_eq!(p.generate(50_000_000), p.generate(50_000_000));
            let other = ArrivalProcess { seed: 43, ..p };
            assert_ne!(p.generate(50_000_000), other.generate(50_000_000));
        }
    }

    #[test]
    fn bursty_concentrates_arrivals_in_the_duty_window() {
        let period_us = 1_000;
        let duty = 0.2;
        let p = ArrivalProcess {
            kind: ArrivalKind::Bursty {
                burst_factor: 1.0 / duty, // average rate == configured rate
                period_us,
                duty,
            },
            rate_per_s: 20_000.0,
            seed: 3,
        };
        let dur = 500_000_000;
        let ts = p.generate(dur);
        let period_ns = period_us * 1_000;
        let on_len = (period_ns as f64 * duty) as u64;
        assert!(
            ts.iter().all(|t| t % period_ns < on_len),
            "arrival outside the on-phase"
        );
        // Average rate stays near the configured rate.
        let n = ts.len() as f64 / 0.5;
        assert!((15_000.0..25_000.0).contains(&n), "avg rate {n}");
    }

    #[test]
    fn adversarial_arrives_in_synchronized_batches() {
        let p = ArrivalProcess {
            kind: ArrivalKind::Adversarial { batch: 8 },
            rate_per_s: 8_000.0,
            seed: 11,
        };
        let ts = p.generate(100_000_000);
        assert!(!ts.is_empty());
        assert_eq!(ts.len() % 8, 0, "partial batch emitted");
        for chunk in ts.chunks(8) {
            assert!(chunk.iter().all(|&t| t == chunk[0]), "batch not aligned");
        }
        // Batches are spaced by batch/rate = 1 ms.
        assert_eq!(ts[8] - ts[0], 1_000_000);
    }

    #[test]
    fn generate_between_shifts_the_window() {
        let p = ArrivalProcess {
            kind: ArrivalKind::Poisson,
            rate_per_s: 50_000.0,
            seed: 5,
        };
        let shifted = p.generate_between(10_000_000, 30_000_000);
        assert!(!shifted.is_empty());
        assert!(shifted
            .iter()
            .all(|&t| (10_000_000..30_000_000).contains(&t)));
        let base = p.generate(20_000_000);
        assert_eq!(shifted.len(), base.len());
        assert!(shifted
            .iter()
            .zip(&base)
            .all(|(&s, &b)| s == b + 10_000_000));
        assert!(p.generate_between(5, 5).is_empty());
    }

    #[test]
    fn zero_rate_or_duration_is_empty() {
        let p = ArrivalProcess {
            kind: ArrivalKind::Poisson,
            rate_per_s: 0.0,
            seed: 1,
        };
        assert!(p.generate(1_000_000).is_empty());
        let q = ArrivalProcess {
            rate_per_s: 100.0,
            ..p
        };
        assert!(q.generate(0).is_empty());
    }
}
